// Command benchjson converts `go test -bench` output into a JSON benchmark
// report. The figure benchmarks attach the paper's query-count metrics as
// custom benchmark metrics, so the resulting file carries both the cost
// measure (queries, bit-stable across engine changes) and the performance
// measure (ns/op, B/op, allocs/op) for each benchmark — one snapshot of the
// perf trajectory per PR (BENCH_1.json, BENCH_2.json, ...).
//
// With -baseline it also diffs the fresh snapshot against a previous one:
// every custom "*_queries" metric — the paper's cost measure, which must be
// bit-stable across engine changes — and every "*_hitrate" metric — the
// fleet ablation's deterministic cache-hit ratio, built from the same pinned
// counts — has to match the baseline exactly, or the command fails listing
// the drift. Perf metrics (ns/op, B/op) are expected to move and are not
// compared. Benchmarks present only in the
// fresh snapshot (a PR's new microbenchmarks) are announced rather than
// silently skipped; baseline cost metrics absent from the fresh run warn.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -benchtime 1x ./... | tee bench.out
//	go run ./scripts/benchjson -in bench.out -out BENCH_2.json -baseline BENCH_1.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark's name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value, e.g. "ns/op", "allocs/op", and the
	// figures' "<series>_<x>_queries" custom metrics.
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	in := flag.String("in", "bench.out", "benchmark output to parse")
	out := flag.String("out", "BENCH_1.json", "JSON file to write")
	baseline := flag.String("baseline", "", "previous snapshot to compare *_queries metrics against (skipped if absent)")
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var benches []Benchmark
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20) // figure lines carry many metrics
	for sc.Scan() {
		b, ok := parseLine(sc.Text())
		if ok {
			benches = append(benches, b)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(benches) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in %s", *in))
	}

	doc := map[string]any{"benchmarks": benches}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(benches), *out)

	if *baseline != "" {
		if err := compareQueries(benches, *baseline); err != nil {
			fatal(err)
		}
	}
}

// pinned reports whether a metric unit must stay bit-identical across PRs:
// the "*_queries" cost metrics and the "*_hitrate" ratios (deterministic by
// construction — each is 1 - paid/asks over counts the single-flight pins).
func pinned(unit string) bool {
	return strings.HasSuffix(unit, "_queries") || strings.HasSuffix(unit, "_hitrate")
}

// compareQueries verifies that every pinned metric ("*_queries" and
// "*_hitrate") of the fresh run matches the baseline snapshot bit for bit.
// Benchmarks or metrics present on only one side are ignored (figures come
// and go across PRs); a value that exists on both sides and differs is a
// cost regression.
func compareQueries(benches []Benchmark, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("benchjson: baseline %s not found, comparison skipped\n", path)
			return nil
		}
		return err
	}
	var doc struct {
		Benchmarks []Benchmark `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	base := make(map[string]map[string]float64, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		base[b.Name] = b.Metrics
	}
	fresh := make(map[string]map[string]float64, len(benches))
	for _, b := range benches {
		fresh[b.Name] = b.Metrics
	}
	compared, drifted, missing := 0, 0, 0
	var newOnly []string
	for _, b := range benches {
		old, ok := base[b.Name]
		if !ok {
			// A benchmark with no baseline counterpart is expected when a PR
			// introduces new microbenchmarks; it is announced (never compared,
			// never failed) so the next baseline bump is a conscious step.
			newOnly = append(newOnly, b.Name)
			continue
		}
		for unit, v := range b.Metrics {
			if !pinned(unit) {
				continue
			}
			want, ok := old[unit]
			if !ok {
				continue
			}
			compared++
			if v != want {
				drifted++
				fmt.Fprintf(os.Stderr, "benchjson: %s %s = %v, baseline %v\n", b.Name, unit, v, want)
			}
		}
	}
	// A baseline cost metric that vanished from the fresh run (a point gone
	// unsolvable, a renamed series) is not a silent pass: it is reported
	// loudly so a lost figure point cannot hide behind "all match". It is a
	// warning, not a failure, because series do legitimately come and go
	// across PRs.
	for name, old := range base {
		cur, ok := fresh[name]
		if !ok {
			continue
		}
		for unit := range old {
			if !pinned(unit) {
				continue
			}
			if _, ok := cur[unit]; !ok {
				missing++
				fmt.Fprintf(os.Stderr, "benchjson: warning: baseline metric %s %s absent from this run\n", name, unit)
			}
		}
	}
	if len(newOnly) > 0 {
		fmt.Printf("benchjson: %d benchmarks new in this snapshot (no baseline entry): %s\n",
			len(newOnly), strings.Join(newOnly, ", "))
	}
	if drifted > 0 {
		return fmt.Errorf("%d of %d pinned metrics drifted from %s", drifted, compared, path)
	}
	if missing > 0 {
		fmt.Printf("benchjson: %d pinned metrics match %s (%d baseline metrics absent — see warnings)\n", compared, path, missing)
	} else {
		fmt.Printf("benchjson: %d pinned metrics match %s\n", compared, path)
	}
	return nil
}

// parseLine parses "BenchmarkX-8  1  123 ns/op  4 B/op  ..." lines: the
// name, the iteration count, then (value, unit) pairs.
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	metrics := make(map[string]float64)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		metrics[fields[i+1]] = v
	}
	return Benchmark{Name: name, Iterations: iters, Metrics: metrics}, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
