package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkSelect3WayIntersect1M-8   	       5	     46224 ns/op	    1792 B/op	       1 allocs/op")
	if !ok {
		t.Fatal("benchmark line not parsed")
	}
	if b.Name != "BenchmarkSelect3WayIntersect1M" {
		t.Errorf("name %q: -GOMAXPROCS suffix should be stripped", b.Name)
	}
	if b.Iterations != 5 {
		t.Errorf("iterations = %d, want 5", b.Iterations)
	}
	if b.Metrics["ns/op"] != 46224 || b.Metrics["allocs/op"] != 1 {
		t.Errorf("metrics = %v", b.Metrics)
	}

	// Custom figure metrics ride as extra (value, unit) pairs.
	b, ok = parseLine("BenchmarkFigure9-8   1   100 ns/op   5417 yahoo_1000_queries")
	if !ok || b.Metrics["yahoo_1000_queries"] != 5417 {
		t.Errorf("custom metric lost: ok=%v metrics=%v", ok, b.Metrics)
	}

	for _, line := range []string{
		"PASS",
		"ok  	hidb	1.2s",
		"goos: linux",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"BenchmarkTooShort 1",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q should not parse as a benchmark", line)
		}
	}
}

// writeBaseline marshals benchmarks into a snapshot file compareQueries
// can read back.
func writeBaseline(t *testing.T, dir string, benches []Benchmark) string {
	t.Helper()
	data, err := json.Marshal(map[string]any{"benchmarks": benches})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareQueries(t *testing.T) {
	base := []Benchmark{
		{Name: "BenchmarkFig", Metrics: map[string]float64{
			"a_queries": 100, "b_queries": 200, "c_hitrate": 0.9375, "ns/op": 5,
		}},
	}
	path := writeBaseline(t, t.TempDir(), base)

	// Identical cost metrics pass; ns/op drift is ignored.
	fresh := []Benchmark{
		{Name: "BenchmarkFig", Metrics: map[string]float64{
			"a_queries": 100, "b_queries": 200, "c_hitrate": 0.9375, "ns/op": 9999,
		}},
	}
	if err := compareQueries(fresh, path); err != nil {
		t.Errorf("identical cost metrics should pass: %v", err)
	}

	// A drifted *_queries metric fails.
	fresh[0].Metrics["a_queries"] = 101
	if err := compareQueries(fresh, path); err == nil {
		t.Error("drifted cost metric should fail the comparison")
	}
	fresh[0].Metrics["a_queries"] = 100

	// *_hitrate metrics are pinned exactly like *_queries.
	fresh[0].Metrics["c_hitrate"] = 0.9374
	if err := compareQueries(fresh, path); err == nil {
		t.Error("drifted hit-rate metric should fail the comparison")
	}
	fresh[0].Metrics["c_hitrate"] = 0.9375

	// Benchmarks only in the fresh snapshot are tolerated: a PR may add
	// microbenchmarks with no baseline counterpart.
	fresh = append(fresh, Benchmark{
		Name:    "BenchmarkNewIndexPath",
		Metrics: map[string]float64{"ns/op": 1, "new_queries": 7},
	})
	if err := compareQueries(fresh, path); err != nil {
		t.Errorf("new-snapshot-only benchmark should not fail: %v", err)
	}

	// A baseline cost metric missing from the fresh run warns but passes.
	delete(fresh[0].Metrics, "b_queries")
	if err := compareQueries(fresh, path); err != nil {
		t.Errorf("missing baseline metric should warn, not fail: %v", err)
	}

	// A missing baseline file skips the comparison entirely.
	if err := compareQueries(fresh, filepath.Join(t.TempDir(), "absent.json")); err != nil {
		t.Errorf("absent baseline should skip: %v", err)
	}
}
