// Command hidb-server serves a synthetic hidden database over HTTP,
// emulating a real site's form-based search interface: GET /schema describes
// the form, POST /query answers at most k tuples plus an overflow signal,
// and POST /batch answers B queries in one round trip — exactly as if they
// had been submitted to /query one by one, so the query cost is identical.
//
// Usage:
//
//	hidb-server -dataset yahoo -k 1000 -addr :8080
//	hidb-server -dataset nsf -k 256 -quota 50000
//	hidb-server -dataset yahoo -shards 8      # priority-range-sharded store
//	hidb-server -dataset adult -quota-per-client 20000 -session-ttl 24h \
//	    -journal-dir ./journals               # per-client sessions
//
// With -shards N the store is partitioned into N priority-rank ranges and a
// /batch request fans out across the shards in parallel (each shard with
// its own scratch memory) — the configuration for serving many concurrent
// batched crawls from one process. Responses are bit-identical to the
// unsharded store.
//
// -engine disk serves the dataset from a persistent columnar store file,
// <data-dir>/<dataset>.hidb, mapped read-only and queried straight off
// disk pages — the configuration for datasets larger than RAM. The file is
// built on first run (in the same priority permutation the in-memory
// engine uses, partitioned into -shards bands) and reused thereafter, so
// restarts skip dataset generation entirely. Responses and query counts
// are bit-identical to -engine mem; GET /stats reports the engine kind and
// the disk block cache's hit/miss counters:
//
//	hidb-server -dataset yahoo -engine disk -data-dir ./data -shards 8
//
// Any of -quota-per-client, -rate-per-client, -session-ttl or -journal-dir
// switches the server to per-client sessions: each API token
// (Authorization: Bearer) gets its own quota, token-bucket rate limit
// (-rate-per-client queries/second sustained, throttled queries wait
// inside the request and cancel with it), memo and journal over the
// shared store; GET /stats
// reports per-session and aggregate counters; and POST /crawl runs the
// optimal crawl server-side, streaming (tuple, paid-queries) progress as
// NDJSON. -session-ttl is the budget window (an idle session expires and
// the token's next request starts a fresh budget), and -journal-dir makes
// crawls resumable across windows: an evicted session's journal is
// persisted — also on shutdown — and reloaded when its token returns, so
// already-paid queries replay for free. The global -quota is mutually
// exclusive with session mode.
//
// -rate-class name=qps[:burst] (repeatable; also enables sessions) names
// per-token QoS tiers: a token joins the class named by its prefix before
// the first '-' ("gold-alice" joins class "gold"), tokens with no listed
// class fall back to the flat -rate-per-client, and a class with qps 0 is
// an explicit unlimited tier. Classes shape timing only — budgets,
// journals and the paper's query counts are untouched:
//
//	hidb-server -dataset adult -rate-class gold=50:100 -rate-class free=2
//
// GET /metrics exposes the QoS counters (quota 429s, shed 503s by reason,
// the /batch width histogram, in-flight depth, live sessions by rate
// class) plus the engine, shared-cache and plan-cache counters in the
// Prometheus text format; GET /stats reports the same introspection as
// JSON. Both stay served while draining.
//
// -shared-cache free|charged (also enables sessions) adds the fleet-wide
// shared answer tier under every session's stack: the first token to issue
// a query pays for it and the answer serves the whole fleet, with
// concurrent askers blocking on the in-flight fetch instead of re-issuing
// it. Under free a shared hit costs the asker nothing (M crawlers of one
// store at ~1x total cost); under charged it saves the store's work but is
// still debited, preserving the paper's per-client accounting.
// -shared-cache-bytes bounds the tier's memory with LRU eviction. The
// default, off, is paper mode: bit-identical per-client costs.
//
// -max-inflight N sheds query-carrying requests beyond N concurrent with
// 503 + Retry-After instead of queueing them, and makes a full session
// table turn new tokens away rather than evict an established client's
// session. GET /healthz reports readiness as JSON; on SIGINT/SIGTERM the
// server drains — new requests shed, /healthz goes not-ready, in-flight
// work finishes within -drain-timeout — and persists every session journal
// before exiting, so reconnecting crawlers resume for free.
//
// Crawl it with `hidb-crawl -url http://localhost:8080` (add -workers N to
// crawl with batches of up to N queries per round trip; add -retries to
// ride out transient failures).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hidb"
	"hidb/internal/datagen"
	"hidb/internal/httpserver"
	"hidb/internal/session"
	"hidb/internal/tableload"
)

// rateClassFlag collects repeated -rate-class values, each a named
// qps tier in the form name=qps[:burst].
type rateClassFlag []session.RateClass

func (f *rateClassFlag) String() string {
	parts := make([]string, len(*f))
	for i, c := range *f {
		parts[i] = fmt.Sprintf("%s=%g:%d", c.Name, c.PerSecond, c.Burst)
	}
	return strings.Join(parts, ",")
}

func (f *rateClassFlag) Set(s string) error {
	name, spec, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=qps[:burst], got %q", s)
	}
	qpsPart, burstPart, hasBurst := strings.Cut(spec, ":")
	qps, err := strconv.ParseFloat(qpsPart, 64)
	if err != nil {
		return fmt.Errorf("rate %q: %v", qpsPart, err)
	}
	burst := 0
	if hasBurst {
		if burst, err = strconv.Atoi(burstPart); err != nil {
			return fmt.Errorf("burst %q: %v", burstPart, err)
		}
	}
	*f = append(*f, session.RateClass{Name: name, PerSecond: qps, Burst: burst})
	return nil
}

// loadFile serves a user-supplied CSV/TSV file as the hidden database.
func loadFile(path string) (*datagen.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	loaded, err := tableload.Read(f, tableload.Options{
		Name: filepath.Base(path),
	})
	if err != nil {
		return nil, err
	}
	return loaded.Dataset, nil
}

// openDiskServer serves the dataset from a disk-resident store under dir:
// <dir>/<name>.hidb, built on first run from the dataset in the same
// priority permutation the in-memory engine would use, so responses — and
// the paper's query counts — are bit-identical across -engine values. The
// band count is fixed at build time; a rebuilt store (delete the file)
// picks up a changed -shards.
func openDiskServer(dir string, ds *datagen.Dataset, k int, prioritySeed uint64, shards int) (*hidb.LocalServer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, ds.Name+".hidb")
	store, err := hidb.OpenDisk(path, hidb.DiskOpenOptions{})
	if errors.Is(err, os.ErrNotExist) {
		log.Printf("building disk store %s (n=%d, bands=%d)", path, ds.N(), shards)
		byRank := hidb.RankOrder(ds.Tuples, prioritySeed)
		if err := hidb.BuildDisk(path, ds.Schema, slices.Values(byRank), hidb.DiskBuildOptions{Bands: shards}); err != nil {
			return nil, err
		}
		store, err = hidb.OpenDisk(path, hidb.DiskOpenOptions{})
	}
	if err != nil {
		var ce *hidb.DiskCorruptionError
		if errors.As(err, &ce) {
			return nil, fmt.Errorf("%w (quarantined as %s.corrupt; restart to rebuild)", ce, path)
		}
		return nil, err
	}
	return hidb.NewDiskLocalServer(store, k)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hidb-server: ")

	dataset := flag.String("dataset", "yahoo", "dataset to serve: yahoo, nsf, adult, adult-numeric")
	file := flag.String("file", "", "serve a CSV/TSV file (header row required; overrides -dataset)")
	k := flag.Int("k", 1000, "server return limit (tuples per query)")
	n := flag.Int("n", 0, "override dataset cardinality (0 = paper size)")
	seed := flag.Uint64("seed", 11, "dataset generator seed")
	prioritySeed := flag.Uint64("priority-seed", 42, "tuple priority permutation seed")
	addr := flag.String("addr", ":8080", "listen address")
	quota := flag.Int("quota", 0, "global max queries served (0 = unlimited; exclusive with per-client sessions)")
	shards := flag.Int("shards", 1, "priority-range shards of the store (>1 answers /batch with a parallel fan-out)")
	engine := flag.String("engine", "mem", "store engine: mem (in-memory columnar store) or disk (persistent columnar store under -data-dir, built on first run; responses bit-identical)")
	dataDir := flag.String("data-dir", "", "directory holding disk-engine store files (required with -engine disk)")
	quotaPerClient := flag.Int("quota-per-client", 0, "per-token query budget per session window (0 = unlimited; enables sessions)")
	ratePerClient := flag.Float64("rate-per-client", 0, "per-token sustained queries/second, token-bucket throttled (0 = unthrottled; enables sessions)")
	rateBurst := flag.Int("rate-burst", 0, "token-bucket burst for -rate-per-client (0 = ceil of the rate)")
	var rateClasses rateClassFlag
	flag.Var(&rateClasses, "rate-class", "named qps tier, name=qps[:burst], repeatable (e.g. -rate-class gold=50:100 -rate-class free=2); a token's class is its prefix before the first '-', unlisted prefixes fall back to -rate-per-client; enables sessions")
	sessionTTL := flag.Duration("session-ttl", 0, "idle session expiry — the budget window (0 = never; enables sessions)")
	journalDir := flag.String("journal-dir", "", "persist each session's journal here on eviction/shutdown, reload on reconnect (enables sessions)")
	maxSessions := flag.Int("max-sessions", 0, "live session cap, LRU-evicted beyond it (0 = default)")
	sharedCache := flag.String("shared-cache", "off", "fleet-wide shared answer cache: off (paper mode), free (a hit another token paid for costs the asker nothing), or charged (a hit saves the store's work but is still debited); enables sessions")
	sharedCacheBytes := flag.Int64("shared-cache-bytes", 0, "bound the shared cache's resident size, LRU-evicted beyond it (0 = unbounded)")
	maxInFlight := flag.Int("max-inflight", 0, "shed query-carrying requests beyond this concurrency with 503 + Retry-After (0 = unbounded; any value enables shedding: a full session table turns new tokens away instead of evicting)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a SIGINT/SIGTERM shutdown waits for in-flight requests to finish")
	flag.Parse()

	sharedPolicy, err := hidb.ParseSharedCachePolicy(*sharedCache)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	sessions := *quotaPerClient > 0 || *ratePerClient > 0 || len(rateClasses) > 0 || *sessionTTL > 0 ||
		*journalDir != "" || *maxSessions > 0 || sharedPolicy != hidb.SharedCacheOff
	if sessions && *quota > 0 {
		log.Print("-quota is the sessionless global budget; with sessions use -quota-per-client")
		os.Exit(2)
	}

	var ds *datagen.Dataset
	if *file != "" {
		ds, err = loadFile(*file)
	} else {
		ds, err = datagen.ByName(*dataset, *n, *seed)
	}
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	var srv *hidb.LocalServer
	switch *engine {
	case "mem":
		if *shards > 1 {
			srv, err = hidb.NewShardedLocalServer(ds.Schema, ds.Tuples, *k, *prioritySeed, *shards)
		} else {
			srv, err = hidb.NewLocalServer(ds.Schema, ds.Tuples, *k, *prioritySeed)
		}
	case "disk":
		if *dataDir == "" {
			log.Print("-engine disk requires -data-dir")
			os.Exit(2)
		}
		srv, err = openDiskServer(*dataDir, ds, *k, *prioritySeed, *shards)
	default:
		log.Printf("unknown -engine %q (want mem or disk)", *engine)
		os.Exit(2)
	}
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	var opts []httpserver.Option
	if sessions {
		opts = append(opts, httpserver.WithSessions(session.Config{
			Quota:            *quotaPerClient,
			RatePerSecond:    *ratePerClient,
			RateBurst:        *rateBurst,
			RateClasses:      rateClasses,
			TTL:              *sessionTTL,
			MaxSessions:      *maxSessions,
			JournalDir:       *journalDir,
			SharedCache:      sharedPolicy,
			SharedCacheBytes: *sharedCacheBytes,
		}))
	} else if *quota > 0 {
		opts = append(opts, httpserver.WithQuota(*quota))
	}
	if *maxInFlight > 0 {
		opts = append(opts, httpserver.WithShedding(*maxInFlight))
	}
	handler := httpserver.New(srv, opts...)

	mode := "global"
	if sessions {
		mode = "per-client"
	}
	log.Printf("serving %s (n=%d, k=%d, max duplicates=%d, engine=%s, shards=%d, quota mode=%s) on %s",
		ds.Name, ds.N(), *k, ds.Tuples.MaxMultiplicity(), srv.EngineStats().Kind, srv.Shards(), mode, *addr)
	// A clean shutdown persists live sessions' journals, so resumable
	// crawls survive a server restart, not just an eviction. The signal
	// ctx is also every request's base context: on SIGINT/SIGTERM the
	// in-flight crawls and batches cancel at their next query boundary
	// (their paid prefixes are journaled), so Shutdown drains promptly
	// instead of waiting out a long-running /crawl stream.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	server := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Print(err)
		os.Exit(1)
	case <-ctx.Done():
		stop()
		log.Print("draining, then shutting down")
		// Flip the handler into drain mode first: new query-carrying
		// requests are shed with 503 + Retry-After and /healthz goes
		// not-ready, so load balancers stop routing here while the
		// in-flight work finishes inside the drain budget.
		handler.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("shutdown: %v", err)
		}
		if tbl := handler.Sessions(); tbl != nil {
			if err := tbl.Close(); err != nil {
				log.Printf("persisting session journals: %v", err)
				os.Exit(1)
			}
		}
	}
}
