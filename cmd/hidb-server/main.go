// Command hidb-server serves a synthetic hidden database over HTTP,
// emulating a real site's form-based search interface: GET /schema describes
// the form, POST /query answers at most k tuples plus an overflow signal,
// and POST /batch answers B queries in one round trip — exactly as if they
// had been submitted to /query one by one, so the query cost is identical.
//
// Usage:
//
//	hidb-server -dataset yahoo -k 1000 -addr :8080
//	hidb-server -dataset nsf -k 256 -quota 50000
//	hidb-server -dataset yahoo -shards 8      # priority-range-sharded store
//
// With -shards N the store is partitioned into N priority-rank ranges and a
// /batch request fans out across the shards in parallel (each shard with
// its own scratch memory) — the configuration for serving many concurrent
// batched crawls from one process. Responses are bit-identical to the
// unsharded store.
//
// Crawl it with `hidb-crawl -url http://localhost:8080` (add -workers N to
// crawl with batches of up to N queries per round trip).
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"hidb"
	"hidb/internal/datagen"
	"hidb/internal/httpserver"
	"hidb/internal/tableload"
)

// loadFile serves a user-supplied CSV/TSV file as the hidden database.
func loadFile(path string) (*datagen.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	loaded, err := tableload.Read(f, tableload.Options{
		Name: filepath.Base(path),
	})
	if err != nil {
		return nil, err
	}
	return loaded.Dataset, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hidb-server: ")

	dataset := flag.String("dataset", "yahoo", "dataset to serve: yahoo, nsf, adult, adult-numeric")
	file := flag.String("file", "", "serve a CSV/TSV file (header row required; overrides -dataset)")
	k := flag.Int("k", 1000, "server return limit (tuples per query)")
	n := flag.Int("n", 0, "override dataset cardinality (0 = paper size)")
	seed := flag.Uint64("seed", 11, "dataset generator seed")
	prioritySeed := flag.Uint64("priority-seed", 42, "tuple priority permutation seed")
	addr := flag.String("addr", ":8080", "listen address")
	quota := flag.Int("quota", 0, "max queries served (0 = unlimited)")
	shards := flag.Int("shards", 1, "priority-range shards of the store (>1 answers /batch with a parallel fan-out)")
	flag.Parse()

	var ds *datagen.Dataset
	var err error
	if *file != "" {
		ds, err = loadFile(*file)
	} else {
		ds, err = datagen.ByName(*dataset, *n, *seed)
	}
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	var srv *hidb.LocalServer
	if *shards > 1 {
		srv, err = hidb.NewShardedLocalServer(ds.Schema, ds.Tuples, *k, *prioritySeed, *shards)
	} else {
		srv, err = hidb.NewLocalServer(ds.Schema, ds.Tuples, *k, *prioritySeed)
	}
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	var opts []httpserver.Option
	if *quota > 0 {
		opts = append(opts, httpserver.WithQuota(*quota))
	}
	handler := httpserver.New(srv, opts...)

	log.Printf("serving %s (n=%d, k=%d, max duplicates=%d, shards=%d) on %s",
		ds.Name, ds.N(), *k, ds.Tuples.MaxMultiplicity(), srv.Shards(), *addr)
	server := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := server.ListenAndServe(); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}
