// Command hidb-loadgen drives synthetic token-session traffic against the
// HTTP hidden-database server and writes a benchjson-shaped JSON artifact:
// p50/p95/p99/max op latency, qps, shed 503 and quota 429 counts, crawl
// tuples and the paid query total.
//
// Each of -sessions virtual clients owns an API token and walks -ops
// schedule ops drawn from -mix: form queries (/query), batched queries
// (/batch), server-side crawls (/crawl) — including deliberate mid-stream
// aborts reconnecting with the resume cursor — and queries under unseen
// tokens, which a shedding server with a full session table must refuse.
//
// Two modes, one schedule:
//
//	hidb-loadgen -mode sim -sessions 1000 -ops 20 -latency 5ms -out load.json
//	hidb-loadgen -mode socket -url http://localhost:8080 -sessions 100
//
// sim serves the traffic in-process under a virtual clock: thousands of
// sessions run in milliseconds of real time, the simulated round-trip
// latency is exact, and the whole artifact — sheds and rejections
// included — is bit-reproducible from -seed, which is what makes latency
// ablations diffable. socket drives a real server (or, with no -url, a
// self-served loopback listener) with real sleeps for actual throughput.
//
//	hidb-loadgen -check load.json
//
// schema-checks an artifact and exits; CI's loadgen smoke gate runs the
// sim mode twice and insists on identical bytes plus a passing -check.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"hidb/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hidb-loadgen: ")

	mode := flag.String("mode", "sim", "sim (in-process, virtual clock, deterministic) or socket (real HTTP, real time)")
	url := flag.String("url", "", "socket mode: base URL of a running server (empty = self-serve the dataset on a loopback listener)")
	sessions := flag.Int("sessions", 0, "virtual token sessions (0 = 64)")
	ops := flag.Int("ops", 0, "schedule ops per session (0 = 8)")
	seed := flag.Uint64("seed", 0, "schedule seed; in sim mode the whole artifact is reproducible from it (0 = 1)")
	dataset := flag.String("dataset", "", "served dataset: yahoo, nsf, adult, adult-numeric (default adult; ignored with -url)")
	n := flag.Int("n", 0, "dataset cardinality (0 = 2000; ignored with -url)")
	k := flag.Int("k", 0, "server return limit (0 = 64; ignored with -url)")
	batch := flag.Int("batch", 0, "queries per /batch op (0 = 8)")
	latency := flag.Duration("latency", 0, "sim mode: virtual round-trip latency (0 = 2ms)")
	think := flag.Duration("think", 0, "per-client pause bound between ops, drawn from [think/2, think) (0 = 10ms)")
	quota := flag.Int("quota", 0, "per-session query budget (0 = unlimited; ignored with -url)")
	maxInFlight := flag.Int("max-inflight", 0, "shed requests beyond this concurrency (0 = unbounded; ignored with -url)")
	algo := flag.String("algo", "", "crawl algorithm for /crawl ops (empty = server's default for the schema)")
	mix := flag.String("mix", "", "op mix weights query,batch,crawl,abort,badtoken (default 6,2,1,1,1)")
	out := flag.String("out", "-", "artifact file (- = stdout)")
	check := flag.String("check", "", "schema-check this artifact file and exit")
	flag.Parse()

	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			log.Fatal(err)
		}
		if err := loadgen.Validate(data); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: ok\n", *check)
		return
	}

	cfg := loadgen.Config{
		Sessions:    *sessions,
		Ops:         *ops,
		Seed:        *seed,
		Dataset:     *dataset,
		N:           *n,
		K:           *k,
		BatchWidth:  *batch,
		Latency:     *latency,
		Think:       *think,
		Quota:       *quota,
		MaxInFlight: *maxInFlight,
		Algorithm:   *algo,
	}
	if *mix != "" {
		m, err := parseMix(*mix)
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		cfg.Mix = m
	}

	var rep *loadgen.Report
	var err error
	start := time.Now()
	switch *mode {
	case "sim":
		if *url != "" {
			log.Print("-url is a socket-mode flag; sim serves in-process")
			os.Exit(2)
		}
		rep, err = loadgen.RunSim(cfg)
	case "socket":
		rep, err = loadgen.RunSocket(cfg, *url)
	default:
		log.Printf("unknown -mode %q (want sim or socket)", *mode)
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}

	art, err := rep.Artifact()
	if err != nil {
		log.Fatal(err)
	}
	if *out == "-" {
		os.Stdout.Write(art)
	} else if err := os.WriteFile(*out, art, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("%s: %d ops, %d paid queries, %d shed, %d quota-rejected, elapsed %v (%v real)",
		rep.Name, rep.Ops, rep.PaidQueries, rep.Shed503, rep.Quota429, rep.Elapsed, time.Since(start).Round(time.Millisecond))
}

// parseMix reads the five comma-separated op weights.
func parseMix(s string) (loadgen.Mix, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 5 {
		return loadgen.Mix{}, fmt.Errorf("-mix wants 5 comma-separated weights (query,batch,crawl,abort,badtoken), got %q", s)
	}
	w := make([]int, 5)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return loadgen.Mix{}, fmt.Errorf("-mix weight %q: want a non-negative integer", p)
		}
		w[i] = v
	}
	m := loadgen.Mix{Query: w[0], Batch: w[1], Crawl: w[2], Abort: w[3], BadToken: w[4]}
	if m.Query+m.Batch+m.Crawl+m.Abort+m.BadToken == 0 {
		return loadgen.Mix{}, fmt.Errorf("-mix %q: all weights are zero", s)
	}
	return m, nil
}
