// Command hidb-experiments regenerates every table and figure of the
// paper's evaluation section (§6), the theorem verifications, and the
// ablation studies, printing them as aligned text tables or CSV.
//
// Usage:
//
//	hidb-experiments [-csv] [-scale f] [-seed n] [-priority-seed n] [fig ...]
//
// With no figure arguments everything runs. Figure names: 9, 10a, 10b, 10c,
// 11a, 11b, 11c, 12, 13, theorems, ablations.
package main

import (
	"flag"
	"fmt"
	"os"

	"hidb/internal/experiments"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	scale := flag.Float64("scale", 1.0, "dataset size multiplier (1.0 = paper sizes)")
	seed := flag.Uint64("seed", 11, "dataset generator seed")
	prioritySeed := flag.Uint64("priority-seed", 42, "server priority permutation seed")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: hidb-experiments [flags] [fig ...]\n"+
				"figures: 9 10a 10b 10c 11a 11b 11c 12 13 theorems ablations (default: all)\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	cfg := experiments.Config{
		DataSeed:     *seed,
		PrioritySeed: *prioritySeed,
		Scale:        *scale,
	}
	only := map[string]bool{}
	for _, a := range flag.Args() {
		only[a] = true
	}
	if err := experiments.Report(os.Stdout, cfg, only, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "hidb-experiments:", err)
		os.Exit(1)
	}
}
