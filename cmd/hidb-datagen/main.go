// Command hidb-datagen materializes the synthetic workloads as TSV files,
// so they can be inspected, loaded elsewhere, or diffed across seeds.
//
// Usage:
//
//	hidb-datagen -dataset nsf -out nsf.tsv
//	hidb-datagen -dataset hard-numeric -m 50 -d 4 -k 16 -out hard.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"hidb/internal/datagen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hidb-datagen: ")

	dataset := flag.String("dataset", "yahoo", "dataset: yahoo, nsf, adult, adult-numeric, hard-numeric, hard-categorical")
	out := flag.String("out", "", "output TSV path (default: stdout)")
	n := flag.Int("n", 0, "override cardinality (0 = paper size)")
	seed := flag.Uint64("seed", 11, "generator seed")
	m := flag.Int("m", 50, "hard-numeric: number of groups")
	d := flag.Int("d", 4, "hard-numeric: dimensionality")
	k := flag.Int("k", 16, "hard instances: server return limit parameter")
	u := flag.Int("u", 8, "hard-categorical: domain size")
	flag.Parse()

	ds, err := makeDataset(*dataset, *n, *seed, *m, *d, *k, *u)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Print(err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	for i := 0; i < ds.Schema.Dims(); i++ {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, ds.Schema.Attr(i).Name)
	}
	fmt.Fprintln(w)
	for _, t := range ds.Tuples {
		for i, v := range t {
			if i > 0 {
				fmt.Fprint(w, "\t")
			}
			fmt.Fprint(w, v)
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		log.Print(err)
		os.Exit(1)
	}
	log.Printf("%s: %d tuples, %d attributes", ds.Name, ds.N(), ds.Schema.Dims())
}

func makeDataset(name string, n int, seed uint64, m, d, k, u int) (*datagen.Dataset, error) {
	switch name {
	case "hard-numeric":
		return datagen.HardNumeric(m, d, k)
	case "hard-categorical":
		return datagen.HardCategorical(u, k)
	default:
		return datagen.ByName(name, n, seed)
	}
}
