// Command hidb-datagen materializes the synthetic workloads as TSV files,
// so they can be inspected, loaded elsewhere, or diffed across seeds — or,
// with -disk, writes them straight into a disk-resident store file that
// hidb-server's -engine disk (or hidb.OpenDisk) serves without a build
// step.
//
// Usage:
//
//	hidb-datagen -dataset nsf -out nsf.tsv
//	hidb-datagen -dataset hard-numeric -m 50 -d 4 -k 16 -out hard.tsv
//	hidb-datagen -pattern path -tier 1m -out path-1m.tsv
//	hidb-datagen -pattern rand -tier 10m -disk rand-10m.hidb -bands 8
//
// -pattern plus -tier selects the scale-tier factory (patterns seq, rand,
// real, path; tiers 10k, 100k, 1m, 10m) instead of -dataset. Tiered
// datasets stream: writing the 10m tier — TSV or disk store — holds only a
// few tuples in memory at a time, so it works on any machine. Tier tuples
// are emitted in rank order; a disk store written with -disk therefore
// serves them with identity priority (no permutation seed).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"iter"
	"log"
	"os"
	"slices"

	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/diskstore"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hidb-datagen: ")

	dataset := flag.String("dataset", "yahoo", "dataset: yahoo, nsf, adult, adult-numeric, hard-numeric, hard-categorical")
	pattern := flag.String("pattern", "", "scale-tier pattern: seq, rand, real, path (with -tier; overrides -dataset)")
	tier := flag.String("tier", "1m", "scale-tier size: 10k, 100k, 1m, 10m (with -pattern)")
	out := flag.String("out", "", "output TSV path (default: stdout)")
	disk := flag.String("disk", "", "write a disk-resident store file here instead of TSV")
	bands := flag.Int("bands", 1, "priority-band partitions of the -disk store (match the server's -shards)")
	n := flag.Int("n", 0, "override cardinality (0 = paper size)")
	seed := flag.Uint64("seed", 11, "generator seed")
	m := flag.Int("m", 50, "hard-numeric: number of groups")
	d := flag.Int("d", 4, "hard-numeric: dimensionality")
	k := flag.Int("k", 16, "hard instances: server return limit parameter")
	u := flag.Int("u", 8, "hard-categorical: domain size")
	flag.Parse()

	name, schema, rows, total, err := makeSource(*dataset, *pattern, *tier, *n, *seed, *m, *d, *k, *u)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	if *disk != "" {
		if err := diskstore.Build(*disk, schema, rows, diskstore.BuildOptions{Bands: *bands}); err != nil {
			log.Print(err)
			os.Exit(1)
		}
		log.Printf("%s: %d tuples, %d attributes -> %s", name, total, schema.Dims(), *disk)
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Print(err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	for i := 0; i < schema.Dims(); i++ {
		if i > 0 {
			fmt.Fprint(bw, "\t")
		}
		fmt.Fprint(bw, schema.Attr(i).Name)
	}
	fmt.Fprintln(bw)
	for t := range rows {
		for i, v := range t {
			if i > 0 {
				fmt.Fprint(bw, "\t")
			}
			fmt.Fprint(bw, v)
		}
		fmt.Fprintln(bw)
	}
	if err := bw.Flush(); err != nil {
		log.Print(err)
		os.Exit(1)
	}
	log.Printf("%s: %d tuples, %d attributes", name, total, schema.Dims())
}

// makeSource resolves the flags to a named tuple stream. Classic datasets
// materialize (their generators build bags); tiered datasets stream.
func makeSource(dataset, pattern, tier string, n int, seed uint64, m, d, k, u int) (string, *dataspace.Schema, iter.Seq[dataspace.Tuple], int, error) {
	if pattern != "" {
		p, t, err := parseTier(pattern, tier)
		if err != nil {
			return "", nil, nil, 0, err
		}
		name := fmt.Sprintf("%s-%s", p, t)
		return name, datagen.TierSchema(t), datagen.TieredSeq(p, t, seed), t.N(), nil
	}
	ds, err := makeDataset(dataset, n, seed, m, d, k, u)
	if err != nil {
		return "", nil, nil, 0, err
	}
	return ds.Name, ds.Schema, slices.Values([]dataspace.Tuple(ds.Tuples)), ds.N(), nil
}

func parseTier(pattern, tier string) (datagen.Pattern, datagen.Tier, error) {
	var p datagen.Pattern
	var found bool
	for _, c := range datagen.Patterns {
		if c.String() == pattern {
			p, found = c, true
		}
	}
	if !found {
		return 0, 0, fmt.Errorf("unknown -pattern %q (want seq, rand, real or path)", pattern)
	}
	for _, c := range datagen.Tiers {
		if c.String() == tier {
			return p, c, nil
		}
	}
	return 0, 0, fmt.Errorf("unknown -tier %q (want 10k, 100k, 1m or 10m)", tier)
}

func makeDataset(name string, n int, seed uint64, m, d, k, u int) (*datagen.Dataset, error) {
	switch name {
	case "hard-numeric":
		return datagen.HardNumeric(m, d, k)
	case "hard-categorical":
		return datagen.HardCategorical(u, k)
	default:
		return datagen.ByName(name, n, seed)
	}
}
