// Command hidb-crawl extracts a complete hidden database, either from a
// remote HTTP server (see hidb-server) or from an in-process synthetic
// dataset, and reports the query cost — the paper's efficiency metric.
//
// Usage:
//
//	hidb-crawl -url http://localhost:8080                  # remote crawl
//	hidb-crawl -dataset yahoo -k 1000                      # in-process
//	hidb-crawl -dataset nsf -k 256 -algo dfs -progress
//	hidb-crawl -dataset adult -k 256 -out tuples.tsv
//	hidb-crawl -url ... -journal state.jnl                 # resumable
//	hidb-crawl -url ... -workers 16                        # parallel, batched
//	hidb-crawl -url ... -workers 16 -batch 8               # cap batch size
//	hidb-crawl -url ... -workers 16 -inflight 4            # deepen the pipeline
//	hidb-crawl -url ... -workers 16 -inflight -1           # adaptive depth
//
// With -workers N the crawler drains ready queries into batches of up to N
// (or -batch, if set) per round trip and keeps up to -inflight round trips
// (default 2) flying at once — the next batch departs the moment a flight
// slot frees, so the connection never idles between round trips. The query
// cost is identical to the sequential crawl, the round-trip count
// ~batch-size times smaller; -inflight 1 restores the flush-on-completion
// batcher that waits out each round trip before dispatching the next, and
// -inflight -1 lets the dispatcher pick the depth itself: it widens by one
// whenever a full-width batch is ready while every flight slot is busy —
// each widening saves that batch a full round trip of latency — and stops
// when that signal stops, with neither the query count nor the round-trip
// count ever exceeding a fixed depth's.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hidb"
	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/progress"
)

// loadJournal reads the journal file or starts a fresh one matching srv.
// A torn or corrupted file (crash mid-persist) is recovered to its longest
// valid prefix — the damaged original is quarantined as <path>.corrupt —
// so an interrupted session never loses everything it paid for.
func loadJournal(path string, srv hidb.Server) *hidb.Journal {
	j, err := hidb.LoadJournalFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return hidb.NewJournal(srv.Schema(), srv.K())
	}
	var ce *hidb.JournalCorruptionError
	if errors.As(err, &ce) {
		log.Printf("journal %s was damaged (%v); recovered %d entries, damaged tail quarantined as %s.corrupt", path, ce.Reason, ce.Entries, path)
		if j == nil {
			return hidb.NewJournal(srv.Schema(), srv.K())
		}
		return j
	}
	if err != nil {
		log.Printf("reading journal %s: %v", path, err)
		os.Exit(1)
	}
	return j
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hidb-crawl: ")

	url := flag.String("url", "", "remote hidden database base URL (overrides -dataset)")
	dataset := flag.String("dataset", "yahoo", "in-process dataset: yahoo, nsf, adult, adult-numeric")
	algo := flag.String("algo", "", "algorithm: "+strings.Join(core.Names(), ", ")+" (default: best for the schema)")
	k := flag.Int("k", 1000, "return limit for in-process serving")
	n := flag.Int("n", 0, "override in-process dataset cardinality (0 = paper size)")
	seed := flag.Uint64("seed", 11, "dataset generator seed")
	prioritySeed := flag.Uint64("priority-seed", 42, "priority permutation seed")
	out := flag.String("out", "", "write extracted tuples as TSV to this file")
	showProgress := flag.Bool("progress", false, "print the progressiveness curve deciles")
	journalPath := flag.String("journal", "", "journal file for resumable crawls (created if absent)")
	workers := flag.Int("workers", 1, "concurrent in-flight queries (same cost, less wall-clock)")
	batch := flag.Int("batch", 0, "max queries per AnswerBatch round trip (0 = worker count; capped at -workers)")
	inflight := flag.Int("inflight", 0, "pipeline depth: overlapped AnswerBatch round trips (0 = default 2; 1 = flush-on-completion; -1 = adaptive — widen while widening keeps saving round trips)")
	token := flag.String("token", "", "API token sent as Authorization: Bearer (per-session quota/journal on the server)")
	retries := flag.Int("retries", 0, "retry transient remote failures up to this many attempts per operation, with backoff (0 = fail fast); against a per-session server retried queries replay from its journal for free")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "after SIGINT/SIGTERM, force-exit if the crawl has not wound down within this long (the journal saved so far stays intact)")
	flag.Parse()

	// SIGINT/SIGTERM cancel the crawl between queries instead of killing
	// the process: with -journal, everything already paid is persisted
	// below, so the next run resumes for free. A watchdog force-exits if
	// the wind-down (a stuck round trip, a slow journal write) outlives
	// -drain-timeout — the atomic journal save guarantees the last
	// complete snapshot survives even then.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		timer := time.NewTimer(*drainTimeout)
		defer timer.Stop()
		<-timer.C
		log.Printf("wind-down exceeded -drain-timeout %v; forcing exit", *drainTimeout)
		os.Exit(1)
	}()

	var srv hidb.Server
	var groundTruth hidb.Bag
	if *url != "" {
		var c *hidb.RemoteClient
		var err error
		if *retries > 0 {
			c, err = hidb.DialHTTPRetry(ctx, *url, *token, nil, hidb.RetryPolicy{MaxAttempts: *retries})
		} else {
			c, err = hidb.DialHTTPToken(ctx, *url, *token, nil)
		}
		if err != nil {
			log.Print(err)
			os.Exit(1)
		}
		srv = c
		log.Printf("remote schema: %s (k=%d)", c.Schema(), c.K())
	} else {
		ds, err := datagen.ByName(*dataset, *n, *seed)
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		local, err := hidb.NewLocalServer(ds.Schema, ds.Tuples, *k, *prioritySeed)
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		srv = local
		groundTruth = ds.Tuples
		log.Printf("in-process %s: n=%d, k=%d", ds.Name, ds.N(), *k)
	}

	crawler := hidb.BestCrawler(srv.Schema())
	if *algo != "" {
		var err error
		crawler, err = hidb.NewCrawler(*algo)
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
	}
	if *workers > 1 {
		if *algo != "" {
			log.Printf("-workers overrides -algo: the parallel engine runs the hybrid family")
		}
		crawler = hidb.ParallelCrawler(*workers)
	}

	// Resumable crawls: replay the journal in front of the server, and
	// persist it afterwards — even when the crawl dies on a quota.
	var jnl *hidb.Journal
	if *journalPath != "" {
		jnl = loadJournal(*journalPath, srv)
		before := jnl.Len()
		wrapped, err := hidb.WithJournal(srv, jnl)
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		srv = wrapped
		log.Printf("journal %s: %d queries already paid for", *journalPath, before)
	}

	opts := &hidb.CrawlOptions{CollectCurve: *showProgress, BatchSize: *batch, InFlight: *inflight}
	start := time.Now()
	res, err := crawler.Crawl(ctx, srv, opts)
	if jnl != nil {
		if serr := hidb.SaveJournalFile(*journalPath, jnl); serr != nil {
			log.Printf("saving journal: %v", serr)
		} else {
			log.Printf("journal saved: %d total paid queries", jnl.Len())
		}
	}
	if err != nil {
		log.Printf("crawl failed: %v", err)
		if (errors.Is(err, hidb.ErrQuotaExceeded) || errors.Is(err, context.Canceled)) && jnl != nil {
			log.Print("re-run with the same -journal to resume where this session stopped")
		}
		os.Exit(1)
	}
	elapsed := time.Since(start)

	fmt.Printf("algorithm   %s\n", crawler.Name())
	fmt.Printf("tuples      %d\n", len(res.Tuples))
	fmt.Printf("queries     %d (%d resolved, %d overflowed, %d skipped)\n",
		res.Queries, res.Resolved, res.Overflowed, res.Skipped)
	fmt.Printf("elapsed     %v\n", elapsed.Round(time.Millisecond))
	if groundTruth != nil {
		fmt.Printf("complete    %v\n", res.Tuples.EqualMultiset(groundTruth))
	}
	if *showProgress {
		curve := progress.Normalize(res.Curve)
		fmt.Printf("progress    %s (max deviation from linear: %.1f%%)\n",
			curve, curve.MaxDeviation()*100)
	}

	if *out != "" {
		if err := writeTSV(*out, srv.Schema(), res.Tuples); err != nil {
			log.Print(err)
			os.Exit(1)
		}
		log.Printf("wrote %d tuples to %s", len(res.Tuples), *out)
	}
}

func writeTSV(path string, schema *hidb.Schema, tuples hidb.Bag) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for i := 0; i < schema.Dims(); i++ {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, schema.Attr(i).Name)
	}
	fmt.Fprintln(w)
	for _, t := range tuples {
		for i, v := range t {
			if i > 0 {
				fmt.Fprint(w, "\t")
			}
			fmt.Fprint(w, v)
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}
