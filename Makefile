# Build, verify, and benchmark targets for the hidb reproduction.

GO ?= go
BENCH_OUT ?= bench.out
BENCH_JSON ?= BENCH_1.json

.PHONY: all build test bench clean

all: build test

build:
	$(GO) build ./...

# Tier-1 verification: everything must build and every test must pass.
test: build
	$(GO) test ./...

# bench runs the full benchmark suite — the figure/theorem harness (whose
# custom metrics are the paper's query counts) plus the index engine's
# microbenchmarks — and snapshots it as JSON for the perf trajectory.
# Output goes to the file first (not through tee) so a failing benchmark
# run aborts the target instead of writing a partial snapshot.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . ./internal/index > $(BENCH_OUT) || { cat $(BENCH_OUT); exit 1; }
	cat $(BENCH_OUT)
	$(GO) run ./scripts/benchjson -in $(BENCH_OUT) -out $(BENCH_JSON)

clean:
	rm -f $(BENCH_OUT)
