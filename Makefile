# Build, verify, and benchmark targets for the hidb reproduction.

GO ?= go
BENCH_OUT ?= bench.out
# One benchmark snapshot per perf PR; bench compares the fresh snapshot's
# query-count metrics against the committed baseline of the previous PR.
BENCH_JSON ?= BENCH_8.json
BENCH_BASELINE ?= BENCH_7.json
# Minimum statement coverage (percent) for the algorithm, server-contract,
# pipelined-dispatcher, session, fault-injection, retrying-transport,
# index-engine, disk-engine, dataset-factory and shared-memo packages,
# enforced by `make cover`. Raise as the suite grows; never lower it to
# ship.
COVER_PKGS ?= ./internal/core ./internal/hiddendb ./internal/parallel ./internal/session ./internal/chaos ./internal/httpclient ./internal/index ./internal/diskstore ./internal/datagen ./internal/memo ./internal/loadgen
COVER_MIN ?= 80
COVER_OUT ?= cover.out

.PHONY: all build check test race cover bench chaos loadgen-smoke clean

all: build check test race cover

build:
	$(GO) build ./...

# check runs the static gates: go vet and gofmt. It fails listing the
# offending files if any file is not gofmt-clean.
check:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

# Tier-1 verification: everything must build and every test must pass.
test: build
	$(GO) test ./...

# race runs the whole suite under the race detector — the concurrent
# session table, sharded store fan-out, and batching dispatcher all carry
# lock-discipline invariants that only -race can check.
race: build
	$(GO) test -race ./...

# cover gates statement coverage of the crawling algorithms (internal/core)
# and the server contract + decorators (internal/hiddendb): the two
# packages every invariant in this repo leans on. Fails below COVER_MIN%.
cover:
	$(GO) test -coverprofile=$(COVER_OUT) $(COVER_PKGS)
	@total=$$($(GO) tool cover -func=$(COVER_OUT) | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "total statement coverage: $$total% (minimum $(COVER_MIN)%)"; \
	awk "BEGIN {exit !($$total >= $(COVER_MIN))}" || { \
		echo "coverage $$total% is below the $(COVER_MIN)% gate"; exit 1; \
	}

# bench runs the full benchmark suite — the figure/theorem harness (whose
# custom metrics are the paper's query counts) plus the index engine's
# microbenchmarks — and snapshots it as JSON for the perf trajectory.
# Output goes to the file first (not through tee) so a failing benchmark
# run aborts the target instead of writing a partial snapshot. The snapshot
# is then diffed against the previous PR's baseline: all *_queries metrics
# (the paper's cost measure) and *_hitrate metrics (the fleet ablation's
# deterministic cache-hit ratios) must be bit-identical.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . ./internal/index ./internal/diskstore > $(BENCH_OUT) || { cat $(BENCH_OUT); exit 1; }
	cat $(BENCH_OUT)
	$(GO) run ./scripts/benchjson -in $(BENCH_OUT) -out $(BENCH_JSON) -baseline $(BENCH_BASELINE)

# chaos runs the resilience suites under the race detector in short mode:
# the end-to-end soak (every algorithm through a hostile network and two
# server crash/restarts, paid queries bit-equal to the fault-free
# reference), the fleet-mode pass (a shared-cache leader crashing mid-crawl
# and resuming with followers attached, store-paid bit-equal to the
# fault-free fleet), the retrying transport, the crash-safe journal
# recovery and the load-shedding server.
chaos: build
	$(GO) test -race -short ./internal/chaos/ ./internal/httpclient/ ./internal/journal/ ./internal/httpserver/ ./internal/session/

# loadgen-smoke is the load-driver determinism gate: the sim mode must
# produce byte-identical artifacts for the same seed (sheds, rejections
# and percentiles included) and the artifact must pass its own schema
# check — the properties CI leans on when diffing latency ablations.
loadgen-smoke: build
	$(GO) run ./cmd/hidb-loadgen -mode sim -sessions 48 -ops 6 -seed 11 -quota 12 -max-inflight 8 -out loadgen-a.json
	$(GO) run ./cmd/hidb-loadgen -mode sim -sessions 48 -ops 6 -seed 11 -quota 12 -max-inflight 8 -out loadgen-b.json
	cmp loadgen-a.json loadgen-b.json
	$(GO) run ./cmd/hidb-loadgen -check loadgen-a.json
	rm -f loadgen-a.json loadgen-b.json

clean:
	rm -f $(BENCH_OUT) $(COVER_OUT) loadgen-a.json loadgen-b.json
