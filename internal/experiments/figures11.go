package experiments

import (
	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/dataspace"
)

// categoricalAlgs are the contenders of Figure 11.
func categoricalAlgs() []core.Crawler {
	return []core.Crawler{core.DFS{}, core.SliceCover{}, core.LazySliceCover{}}
}

// nsfProjected returns the NSF-like workload restricted to the d categorical
// attributes with the most distinct values, as the paper does for its
// dimensionality-controlled categorical experiments.
func nsfProjected(cfg Config, d int) (*datagen.Dataset, error) {
	full := nsfLike(cfg)
	if d >= full.Schema.Dims() {
		return full, nil
	}
	cols := full.TopDistinct(d, dataspace.Categorical)
	return memoProject(full, cols)
}

// Figure11a reproduces "Query cost of categorical algorithms — cost vs k
// (d = 6)": DFS vs slice-cover vs lazy-slice-cover on the 6-attribute NSF
// projection across the k sweep.
func Figure11a(cfg Config) (*Figure, error) {
	ds, err := nsfProjected(cfg, 6)
	if err != nil {
		return nil, err
	}
	ks := PaperKs()
	series, err := kSweep(cfg, categoricalAlgs(), ds, ks)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:      "11a",
		Caption: "query cost of categorical algorithms vs k (NSF, d=6)",
		XLabel:  "k",
		X:       floats(ks),
		Series:  series,
	}, nil
}

// Figure11b reproduces "cost vs dimensionality (k = 256)": d ∈ [5,9]
// projections of NSF keeping the attributes with the most distinct values.
func Figure11b(cfg Config) (*Figure, error) {
	dims := []int{5, 6, 7, 8, 9}
	datasets := make([]*datagen.Dataset, 0, len(dims))
	for _, d := range dims {
		ds, err := nsfProjected(cfg, d)
		if err != nil {
			return nil, err
		}
		datasets = append(datasets, ds)
	}
	series, err := costSweep(cfg, categoricalAlgs(), datasets, 256)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:      "11b",
		Caption: "query cost of categorical algorithms vs dimensionality (NSF, k=256)",
		XLabel:  "d",
		X:       floats(dims),
		Series:  series,
	}, nil
}

// Figure11c reproduces "cost vs dataset size (k = 256, d = 9)": Bernoulli
// samples of the full NSF workload at 20%…100%.
func Figure11c(cfg Config) (*Figure, error) {
	full := nsfLike(cfg)
	pcts := PaperSamplePercents()
	datasets := make([]*datagen.Dataset, 0, len(pcts))
	for _, p := range pcts {
		datasets = append(datasets, memoSample(full, p, cfg.DataSeed+uint64(p)))
	}
	series, err := costSweep(cfg, categoricalAlgs(), datasets, 256)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:      "11c",
		Caption: "query cost of categorical algorithms vs dataset size (NSF, k=256, d=9)",
		XLabel:  "size%",
		X:       floats(pcts),
		Series:  series,
	}, nil
}
