package experiments

import (
	"fmt"
	"io"
	"time"

	"hidb/internal/tabulate"
)

// Report runs every experiment and writes the rendered tables to w. When
// csv is true, CSV is emitted instead of aligned text. Figure names:
// "9", "10a", "10b", "10c", "11a", "11b", "11c", "12", "13", "theorems",
// "ablations". An empty filter runs everything.
func Report(w io.Writer, cfg Config, only map[string]bool, csv bool) error {
	want := func(name string) bool { return len(only) == 0 || only[name] }
	emit := func(t *tabulate.Table) {
		if csv {
			fmt.Fprintln(w, t.Title)
			io.WriteString(w, t.CSV())
		} else {
			io.WriteString(w, t.String())
		}
		fmt.Fprintln(w)
	}

	if want("9") {
		for _, t := range Figure9(cfg) {
			emit(t)
		}
	}
	type figFn struct {
		name string
		fn   func(Config) (*Figure, error)
	}
	for _, f := range []figFn{
		{"10a", Figure10a}, {"10b", Figure10b}, {"10c", Figure10c},
		{"11a", Figure11a}, {"11b", Figure11b}, {"11c", Figure11c},
		{"12", Figure12}, {"13", Figure13},
	} {
		if !want(f.name) {
			continue
		}
		fig, err := f.fn(cfg)
		if err != nil {
			return fmt.Errorf("experiments: figure %s: %w", f.name, err)
		}
		emit(fig.Table())
	}
	if want("theorems") {
		t, err := TheoremTable(cfg)
		if err != nil {
			return fmt.Errorf("experiments: theorems: %w", err)
		}
		emit(t)
	}
	if want("ablations") {
		for _, f := range []figFn{
			{"A1", AblationSplitThreshold},
			{"A2", AblationEagerVsLazy},
			{"A3", AblationDependencyFilter},
			{"A4", AblationAttributeOrder},
			{"A5", func(c Config) (*Figure, error) { return AblationParallel(c, 2*time.Millisecond) }},
			{"A6", AblationFleet},
		} {
			fig, err := f.fn(cfg)
			if err != nil {
				return fmt.Errorf("experiments: ablation %s: %w", f.name, err)
			}
			emit(fig.Table())
		}
		t, err := AblationPrioritySeeds(cfg)
		if err != nil {
			return fmt.Errorf("experiments: ablation seeds: %w", err)
		}
		emit(t)
	}
	return nil
}
