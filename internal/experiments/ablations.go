package experiments

import (
	"context"
	"fmt"
	"time"

	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/parallel"
	"hidb/internal/tabulate"
)

// The ablations quantify the design choices DESIGN.md calls out: the
// 3-way-split multiplicity threshold (the paper's k/4), the lazy vs eager
// slice phase, the §1.3 attribute-dependency heuristic, sensitivity to the
// server's priority permutation, and the categorical attribute ordering.

// AblationSplitThreshold varies rank-shrink's 3-way-split threshold
// denominator on Adult-numeric at k = 256. The paper's proof needs k/4; the
// measurement shows how performance degrades (or not) around it.
func AblationSplitThreshold(cfg Config) (*Figure, error) {
	ds := adultNumeric(cfg)
	denoms := []int{2, 4, 8, 16}
	s := Series{Label: "rank-shrink", Values: make([]float64, len(denoms))}
	for i, den := range denoms {
		v, err := runCost(cfg, core.RankShrink{SplitDenom: den}, ds, 256)
		if err != nil {
			return nil, err
		}
		s.Values[i] = v
	}
	return &Figure{
		ID:      "A1",
		Caption: "ablation: rank-shrink 3-way-split threshold k/denom (Adult-numeric, k=256)",
		XLabel:  "denom",
		X:       floats(denoms),
		Series:  []Series{s},
	}, nil
}

// AblationEagerVsLazy compares hybrid's lazy slice phase (the paper's
// choice) with an eager one that prefetches every slice query, across the
// two mixed workloads at k = 256.
func AblationEagerVsLazy(cfg Config) (*Figure, error) {
	datasets := mixedDatasets(cfg)
	fig := &Figure{
		ID:      "A2",
		Caption: "ablation: lazy vs eager slice phase of hybrid (k=256)",
		XLabel:  "dataset#",
		X:       floats([]int{1, 2}),
	}
	for _, alg := range []core.Crawler{core.Hybrid{}, core.Hybrid{EagerSlices: true}} {
		s := Series{Label: alg.Name(), Values: make([]float64, len(datasets))}
		for i, ds := range datasets {
			v, err := runCost(cfg, alg, ds, 256)
			if err != nil {
				return nil, err
			}
			s.Values[i] = v
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// DependencyFilter builds the §1.3 heuristic for a dataset: a query that
// pins two categorical attributes to a value combination absent from the
// data is skipped. The knowledge is derived from the ground truth here —
// standing in for the "external knowledge" (e.g. BMW sells no trucks) a
// real crawler would bring.
func DependencyFilter(ds *datagen.Dataset, attrA, attrB int) func(dataspace.Query) bool {
	valid := make(map[[2]int64]bool)
	for _, t := range ds.Tuples {
		valid[[2]int64{t[attrA], t[attrB]}] = true
	}
	return func(q dataspace.Query) bool {
		pa, pb := q.Pred(attrA), q.Pred(attrB)
		if pa.Wild || pb.Wild {
			return true
		}
		return valid[[2]int64{pa.Value, pb.Value}]
	}
}

// AblationDependencyFilter measures the §1.3 heuristic on the Yahoo
// workload: hybrid with and without Body-style×Make dependency knowledge.
// The paper's claim — the query cost can only go down and the upper bounds
// still hold — is asserted by the test suite.
func AblationDependencyFilter(cfg Config) (*Figure, error) {
	ds := yahooLike(cfg)
	ks := []int{128, 256, 512, 1024}
	fig := &Figure{
		ID:      "A3",
		Caption: "ablation: §1.3 attribute-dependency heuristic (Yahoo, hybrid)",
		XLabel:  "k",
		X:       floats(ks),
	}
	filter := DependencyFilter(ds, 1, 2) // Body-style × Make

	plain := Series{Label: "hybrid", Values: make([]float64, len(ks))}
	filtered := Series{Label: "hybrid+deps", Values: make([]float64, len(ks))}
	for i, k := range ks {
		v, err := runCost(cfg, core.Hybrid{}, ds, k)
		if err != nil {
			return nil, err
		}
		plain.Values[i] = v

		srv, err := localServer(ds, k, cfg.PrioritySeed)
		if err != nil {
			return nil, err
		}
		res, err := core.Hybrid{}.Crawl(context.Background(), srv, &core.Options{QueryFilter: filter})
		if err != nil {
			return nil, err
		}
		if !res.Tuples.EqualMultiset(ds.Tuples) {
			return nil, fmt.Errorf("experiments: dependency-filtered hybrid incomplete at k=%d", k)
		}
		filtered.Values[i] = float64(res.Queries)
	}
	fig.Series = append(fig.Series, plain, filtered)
	return fig, nil
}

// AblationPrioritySeeds measures how sensitive the costs are to the
// server's priority permutation: the same crawl under several seeds. The
// paper assigns priorities randomly once; this quantifies the spread that
// choice hides.
func AblationPrioritySeeds(cfg Config) (*tabulate.Table, error) {
	seeds := []uint64{1, 7, 42, 1234, 99991}
	type job struct {
		alg core.Crawler
		ds  *datagen.Dataset
		k   int
	}
	jobs := []job{
		{core.RankShrink{}, adultNumeric(cfg), 256},
		{core.LazySliceCover{}, nsfLike(cfg), 256},
		{core.Hybrid{}, yahooLike(cfg), 256},
	}
	t := tabulate.New("Ablation: cost sensitivity to the priority permutation (k=256)",
		"algorithm", "dataset", "min", "mean", "max")
	for _, j := range jobs {
		min, max, sum := int(^uint(0)>>1), 0, 0
		for _, seed := range seeds {
			c := cfg
			c.PrioritySeed = seed
			v, err := runCost(c, j.alg, j.ds, j.k)
			if err != nil {
				return nil, err
			}
			q := int(v)
			if q < min {
				min = q
			}
			if q > max {
				max = q
			}
			sum += q
		}
		t.AddRow(j.alg.Name(), j.ds.Name, min, sum/len(seeds), max)
	}
	return t, nil
}

// AblationParallel measures the parallel engine: wall-clock time of a full
// Yahoo crawl (k=256) under a simulated per-round-trip network latency, as
// the number of in-flight queries grows — once with the pipeline disabled
// (inflight=1, the flush-on-completion batcher) and once double-buffered
// (inflight=2, the default). The latency is virtual: each crawl runs under
// a deterministic hiddendb.SimClock, so the wall-clock series are exact
// properties of the crawl's dependency structure — reproducible bit for
// bit, and measured in microseconds of real time instead of minutes of
// sleeping. The query cost stays exactly the sequential algorithms' (the
// "queries" series, pinned by the bench baseline); only elapsed time and
// round trips respond to the pipeline. Wall-clock values are milliseconds
// of virtual time.
func AblationParallel(cfg Config, latency time.Duration) (*Figure, error) {
	ds := yahooLike(cfg)
	workerCounts := []int{1, 2, 4, 8, 16, 32}
	flush := Series{Label: "wall-clock-inflight1-ms", Values: make([]float64, len(workerCounts))}
	piped := Series{Label: "wall-clock-inflight2-ms", Values: make([]float64, len(workerCounts))}
	queries := Series{Label: "queries", Values: make([]float64, len(workerCounts))}
	for i, w := range workerCounts {
		for _, depth := range []int{1, 2} {
			srv, err := localServer(ds, 256, cfg.PrioritySeed)
			if err != nil {
				return nil, err
			}
			clock := hiddendb.NewSimClock()
			delayed := hiddendb.NewSimLatency(srv, latency, clock)
			res, err := parallel.Crawler{Workers: w}.Crawl(context.Background(), delayed, &core.Options{
				InFlight: depth,
				Clock:    clock,
			})
			if err != nil {
				return nil, err
			}
			if !res.Tuples.EqualMultiset(ds.Tuples) {
				return nil, fmt.Errorf("experiments: parallel crawl incomplete at %d workers", w)
			}
			ms := float64(clock.Now()) / float64(time.Millisecond)
			if depth == 1 {
				flush.Values[i] = ms
			} else {
				piped.Values[i] = ms
				queries.Values[i] = float64(res.Queries)
			}
		}
	}
	return &Figure{
		ID:      "A5",
		Caption: fmt.Sprintf("ablation: parallel crawl virtual wall-clock vs workers (Yahoo, k=256, %v/round-trip latency, inflight 1 vs 2)", latency),
		XLabel:  "workers",
		X:       floats(workerCounts),
		Series:  []Series{flush, piped, queries},
	}, nil
}

// AblationAttributeOrder measures lazy-slice-cover on the 6-attribute NSF
// projection under two categorical attribute orderings: ascending domain
// size (small domains first, the Figure-9 order) and descending. The
// ordering changes which tree levels fan out first and thus the practical
// cost, while Lemma 4's bound holds for both.
func AblationAttributeOrder(cfg Config) (*Figure, error) {
	ds, err := nsfProjected(cfg, 6)
	if err != nil {
		return nil, err
	}
	d := ds.Schema.Dims()
	asc := make([]int, d)
	desc := make([]int, d)
	for i := 0; i < d; i++ {
		asc[i] = i
		desc[i] = d - 1 - i
	}
	reversed, err := ds.Project(desc)
	if err != nil {
		return nil, err
	}
	ks := []int{64, 256, 1024}
	fig := &Figure{
		ID:      "A4",
		Caption: "ablation: categorical attribute order for lazy-slice-cover (NSF d=6)",
		XLabel:  "k",
		X:       floats(ks),
	}
	for _, v := range []struct {
		label string
		ds    *datagen.Dataset
	}{{"ascending-domains", ds}, {"descending-domains", reversed}} {
		s := Series{Label: v.label, Values: make([]float64, len(ks))}
		for i, k := range ks {
			cost, err := runCost(cfg, core.LazySliceCover{}, v.ds, k)
			if err != nil {
				return nil, err
			}
			s.Values[i] = cost
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
