package experiments

import (
	"fmt"
	"sync"

	"hidb/internal/datagen"
	"hidb/internal/hiddendb"
)

// Dataset generation and server construction are deterministic in their
// parameters, and the harness re-runs them with identical parameters for
// every figure point (the same Adult bag for each k of Figure 10a, the
// same Yahoo bag for Figures 12, 13 and three ablations, ...). These memo
// tables make each (generator, n, seed) bag — and each (bag, k, seed)
// server with its freshly indexed store — exist once per process. They
// cannot change any result: equal parameters already produced bit-identical
// bags and servers, and crawls never mutate either (Local is read-only
// after construction; every crawl gets its own Counting wrapper).

type datasetKey struct {
	kind string
	n    int
	seed uint64
}

// derivedKey memoizes projections/samples of an already-cached dataset, so
// repeated figure runs also reuse the derived bags (and therefore hit the
// server cache, which is keyed by dataset identity).
type derivedKey struct {
	parent *datagen.Dataset
	op     string
}

type serverKey struct {
	ds   *datagen.Dataset
	k    int
	seed uint64
}

var (
	memoMu      sync.Mutex
	datasetMemo = map[datasetKey]*datagen.Dataset{}
	derivedMemo = map[derivedKey]*datagen.Dataset{}
	serverMemo  = map[serverKey]*hiddendb.Local{}
)

func memoDataset(kind string, n int, seed uint64, gen func(int, uint64) *datagen.Dataset) *datagen.Dataset {
	key := datasetKey{kind: kind, n: n, seed: seed}
	memoMu.Lock()
	defer memoMu.Unlock()
	if ds, ok := datasetMemo[key]; ok {
		return ds
	}
	ds := gen(n, seed)
	datasetMemo[key] = ds
	return ds
}

func yahooLike(cfg Config) *datagen.Dataset {
	return memoDataset("yahoo", cfg.scaled(datagen.YahooN), cfg.DataSeed, datagen.YahooLikeN)
}

func nsfLike(cfg Config) *datagen.Dataset {
	return memoDataset("nsf", cfg.scaled(datagen.NSFN), cfg.DataSeed, datagen.NSFLikeN)
}

func adultLike(cfg Config) *datagen.Dataset {
	return memoDataset("adult", cfg.scaled(datagen.AdultN), cfg.DataSeed, datagen.AdultLikeN)
}

func adultNumeric(cfg Config) *datagen.Dataset {
	return memoDataset("adult-numeric", cfg.scaled(datagen.AdultN), cfg.DataSeed, datagen.AdultNumericN)
}

// memoProject is Dataset.Project through the derived-dataset memo.
func memoProject(parent *datagen.Dataset, cols []int) (*datagen.Dataset, error) {
	key := derivedKey{parent: parent, op: fmt.Sprintf("project%v", cols)}
	memoMu.Lock()
	defer memoMu.Unlock()
	if ds, ok := derivedMemo[key]; ok {
		return ds, nil
	}
	ds, err := parent.Project(cols)
	if err != nil {
		return nil, err
	}
	derivedMemo[key] = ds
	return ds, nil
}

// memoSample is Dataset.Sample through the derived-dataset memo.
func memoSample(parent *datagen.Dataset, pct int, seed uint64) *datagen.Dataset {
	key := derivedKey{parent: parent, op: fmt.Sprintf("sample%d:%d", pct, seed)}
	memoMu.Lock()
	defer memoMu.Unlock()
	if ds, ok := derivedMemo[key]; ok {
		return ds
	}
	ds := parent.Sample(float64(pct)/100, seed)
	derivedMemo[key] = ds
	return ds
}

// localServer returns the memoized hidden-database server for the dataset:
// the priority permutation and the store's indexes are built once per
// (dataset, k, seed) instead of once per figure point.
func localServer(ds *datagen.Dataset, k int, seed uint64) (*hiddendb.Local, error) {
	key := serverKey{ds: ds, k: k, seed: seed}
	memoMu.Lock()
	defer memoMu.Unlock()
	if srv, ok := serverMemo[key]; ok {
		return srv, nil
	}
	srv, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, seed)
	if err != nil {
		return nil, err
	}
	serverMemo[key] = srv
	return srv, nil
}
