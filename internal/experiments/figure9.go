package experiments

import (
	"fmt"

	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/tabulate"
)

// Figure9 reproduces the paper's dataset table: every workload's attributes
// with their domain sizes (categorical) or realized distinct counts
// (numeric), plus cardinality and duplicate structure. Because the datasets
// are synthetic stand-ins, this table doubles as the fidelity report for the
// substitution documented in DESIGN.md.
func Figure9(cfg Config) []*tabulate.Table {
	datasets := []*datagen.Dataset{
		yahooLike(cfg),
		nsfLike(cfg),
		adultLike(cfg),
	}
	var tables []*tabulate.Table
	for _, ds := range datasets {
		t := tabulate.New(
			fmt.Sprintf("Figure 9 (%s): n=%d, max point multiplicity=%d",
				ds.Name, ds.N(), ds.Tuples.MaxMultiplicity()),
			"attribute", "kind", "domain", "distinct-in-data")
		distinct := ds.Tuples.DistinctValues(ds.Schema.Dims())
		for i := 0; i < ds.Schema.Dims(); i++ {
			a := ds.Schema.Attr(i)
			domain := "num"
			if a.Kind == dataspace.Categorical {
				domain = fmt.Sprintf("%d", a.DomainSize)
			}
			t.AddRow(a.Name, a.Kind.String(), domain, distinct[i])
		}
		tables = append(tables, t)
	}
	return tables
}
