package experiments

import (
	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/dataspace"
)

// numericAlgs are the contenders of Figure 10.
func numericAlgs() []core.Crawler {
	return []core.Crawler{core.BinaryShrink{}, core.RankShrink{}}
}

// Figure10a reproduces "Query cost of numeric algorithms — cost vs k
// (d = 6)": binary-shrink vs rank-shrink on Adult-numeric across the k
// sweep.
func Figure10a(cfg Config) (*Figure, error) {
	ds := adultNumeric(cfg)
	ks := PaperKs()
	series, err := kSweep(cfg, numericAlgs(), ds, ks)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:      "10a",
		Caption: "query cost of numeric algorithms vs k (Adult-numeric, d=6)",
		XLabel:  "k",
		X:       floats(ks),
		Series:  series,
	}, nil
}

// Figure10b reproduces "cost vs dimensionality (k = 256)": for each
// d ∈ [3,6], the workload keeps the d numeric attributes with the most
// distinct values (Fnalwgt, then Cap-gain, Cap-loss, Wrk-hr, Age, Edu-num).
func Figure10b(cfg Config) (*Figure, error) {
	full := adultNumeric(cfg)
	dims := []int{3, 4, 5, 6}
	datasets := make([]*datagen.Dataset, 0, len(dims))
	for _, d := range dims {
		cols := full.TopDistinct(d, dataspace.Numeric)
		proj, err := memoProject(full, cols)
		if err != nil {
			return nil, err
		}
		datasets = append(datasets, proj)
	}
	series, err := costSweep(cfg, numericAlgs(), datasets, 256)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:      "10b",
		Caption: "query cost of numeric algorithms vs dimensionality (Adult-numeric, k=256)",
		XLabel:  "d",
		X:       floats(dims),
		Series:  series,
	}, nil
}

// Figure10c reproduces "cost vs dataset size (k = 256, d = 6)": Bernoulli
// samples of Adult-numeric at 20%…100%.
func Figure10c(cfg Config) (*Figure, error) {
	full := adultNumeric(cfg)
	pcts := PaperSamplePercents()
	datasets := make([]*datagen.Dataset, 0, len(pcts))
	for _, p := range pcts {
		datasets = append(datasets, memoSample(full, p, cfg.DataSeed+uint64(p)))
	}
	series, err := costSweep(cfg, numericAlgs(), datasets, 256)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:      "10c",
		Caption: "query cost of numeric algorithms vs dataset size (Adult-numeric, k=256, d=6)",
		XLabel:  "size%",
		X:       floats(pcts),
		Series:  series,
	}, nil
}
