// Package experiments regenerates every table and figure of the paper's
// evaluation section (§6) plus the lower-bound verifications and this
// repository's own ablation studies. Each experiment returns a Figure — a
// set of labeled series over a common x-axis — that can be rendered as an
// aligned table or CSV, asserted on by tests, or reported from benchmarks.
//
// Absolute query counts differ from the paper's because the datasets are
// synthetic stand-ins (see datagen), but the qualitative shapes — which
// algorithm wins, how costs scale with k, d and n, where crawling becomes
// infeasible — are reproduced and asserted by the test suite.
package experiments

import (
	"context"
	"fmt"
	"math"

	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/tabulate"
)

// Unsolvable marks a series point where Problem 1 has no solution (the
// dataset holds more than k copies of some point), matching the paper's
// missing Yahoo value at k = 64 in Figure 12.
var Unsolvable = math.NaN()

// Config controls dataset generation and server behaviour for a harness run.
type Config struct {
	// DataSeed seeds the dataset generators.
	DataSeed uint64
	// PrioritySeed seeds the server's tuple-priority permutation.
	PrioritySeed uint64
	// Scale multiplies dataset cardinalities; 1.0 reproduces the paper's
	// sizes (45,222 / 47,816 / 69,768 tuples). Tests use smaller scales to
	// stay fast; the benchmarks use 1.0.
	Scale float64
}

// DefaultConfig reproduces the paper's workload sizes with fixed seeds.
func DefaultConfig() Config {
	return Config{DataSeed: 11, PrioritySeed: 42, Scale: 1.0}
}

func (c Config) scaled(n int) int {
	if c.Scale <= 0 || c.Scale == 1.0 {
		return n
	}
	s := int(float64(n) * c.Scale)
	if s < 1 {
		s = 1
	}
	return s
}

// Series is one plotted line: an algorithm's cost at each x value.
type Series struct {
	// Label names the line, e.g. "rank-shrink".
	Label string
	// Values holds one y value (query count) per x; Unsolvable (NaN) marks
	// points where no algorithm can extract the dataset.
	Values []float64
}

// Figure is the result of one experiment.
type Figure struct {
	// ID is the paper's figure/table number, e.g. "10a".
	ID string
	// Caption describes the experiment.
	Caption string
	// XLabel names the x-axis, e.g. "k".
	XLabel string
	// X holds the x values.
	X []float64
	// Series holds one line per algorithm.
	Series []Series
}

// Value returns the y value of the labeled series at x index i.
func (f *Figure) Value(label string, i int) (float64, error) {
	for _, s := range f.Series {
		if s.Label == label {
			if i < 0 || i >= len(s.Values) {
				return 0, fmt.Errorf("experiments: index %d out of range for series %q", i, label)
			}
			return s.Values[i], nil
		}
	}
	return 0, fmt.Errorf("experiments: no series %q in figure %s", label, f.ID)
}

// Table renders the figure as an aligned text table, one row per x value.
func (f *Figure) Table() *tabulate.Table {
	header := append([]string{f.XLabel}, labels(f.Series)...)
	t := tabulate.New(fmt.Sprintf("Figure %s: %s", f.ID, f.Caption), header...)
	for i, x := range f.X {
		row := make([]any, 0, 1+len(f.Series))
		row = append(row, trimFloat(x))
		for _, s := range f.Series {
			v := s.Values[i]
			if math.IsNaN(v) {
				row = append(row, "unsolvable")
			} else {
				row = append(row, trimFloat(v))
			}
		}
		t.AddRow(row...)
	}
	return t
}

func labels(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Label
	}
	return out
}

func trimFloat(v float64) any {
	if v == math.Trunc(v) {
		return int64(v)
	}
	return v
}

// runCost crawls the dataset with the algorithm at the given k and returns
// the query cost. It verifies completeness: a crawl that terminates without
// retrieving the exact bag is a bug, not a data point. The server comes
// from the per-config memo, so sweeping k or the algorithm over one dataset
// builds each priority permutation and index once.
func runCost(cfg Config, c core.Crawler, ds *datagen.Dataset, k int) (float64, error) {
	srv, err := localServer(ds, k, cfg.PrioritySeed)
	if err != nil {
		return 0, err
	}
	res, err := c.Crawl(context.Background(), srv, nil)
	if err == core.ErrUnsolvable {
		return Unsolvable, nil
	}
	if err != nil {
		return 0, err
	}
	if !res.Tuples.EqualMultiset(ds.Tuples) {
		return 0, fmt.Errorf("experiments: %s returned an incomplete bag on %s (k=%d): got %d tuples, want %d",
			c.Name(), ds.Name, k, len(res.Tuples), len(ds.Tuples))
	}
	return float64(res.Queries), nil
}

// costSweep runs each algorithm over each dataset in datasets order, one
// dataset per x value.
func costSweep(cfg Config, algs []core.Crawler, datasets []*datagen.Dataset, k int) ([]Series, error) {
	out := make([]Series, len(algs))
	for ai, alg := range algs {
		out[ai] = Series{Label: alg.Name(), Values: make([]float64, len(datasets))}
		for di, ds := range datasets {
			v, err := runCost(cfg, alg, ds, k)
			if err != nil {
				return nil, err
			}
			out[ai].Values[di] = v
		}
	}
	return out, nil
}

// kSweep runs each algorithm over one dataset at each k.
func kSweep(cfg Config, algs []core.Crawler, ds *datagen.Dataset, ks []int) ([]Series, error) {
	out := make([]Series, len(algs))
	for ai, alg := range algs {
		out[ai] = Series{Label: alg.Name(), Values: make([]float64, len(ks))}
		for ki, k := range ks {
			v, err := runCost(cfg, alg, ds, k)
			if err != nil {
				return nil, err
			}
			out[ai].Values[ki] = v
		}
	}
	return out, nil
}

func floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// PaperKs is the k sweep used throughout §6: 64, 128, 256, 512, 1024.
func PaperKs() []int { return []int{64, 128, 256, 512, 1024} }

// PaperSamplePercents is the dataset-size sweep of Figures 10c and 11c.
func PaperSamplePercents() []int { return []int{20, 40, 60, 80, 100} }
