package experiments

import (
	"fmt"

	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/tabulate"
)

// TheoremCheck is the outcome of running an algorithm on one of the paper's
// adversarial lower-bound instances.
type TheoremCheck struct {
	// Instance describes the constructed dataset.
	Instance string
	// Algorithm is the crawler evaluated.
	Algorithm string
	// N and K are the instance parameters.
	N, K int
	// LowerBound is the theorem's minimum query count for any algorithm.
	LowerBound int
	// UpperBound is the theorem-1 cost bound for this algorithm (0 when
	// the paper gives none, e.g. for baselines).
	UpperBound int
	// Cost is the measured query count.
	Cost int
}

// Theorem3 builds the hard numeric dataset of Figure 7 with the given
// parameters and measures rank-shrink against the d·m lower bound and the
// Lemma 2 upper bound (20·d·n/k, the constant from the paper's inductive
// proof).
func Theorem3(cfg Config, m, d, k int) (*TheoremCheck, error) {
	ds, err := datagen.HardNumeric(m, d, k)
	if err != nil {
		return nil, err
	}
	cost, err := runCost(cfg, core.RankShrink{}, ds, k)
	if err != nil {
		return nil, err
	}
	n := ds.N()
	return &TheoremCheck{
		Instance:   ds.Name,
		Algorithm:  "rank-shrink",
		N:          n,
		K:          k,
		LowerBound: datagen.HardNumericLowerBound(m, d),
		UpperBound: 20 * d * n / k,
		Cost:       int(cost),
	}, nil
}

// Theorem4 builds the hard categorical dataset of Figure 8 (d = 2k, every
// domain of size U) and measures a slice-cover-family algorithm against the
// Lemma 4 upper bound Σ Ui + (n/k)·Σ min{Ui, n/k}.
func Theorem4(cfg Config, uSize, k int, alg core.Crawler) (*TheoremCheck, error) {
	ds, err := datagen.HardCategorical(uSize, k)
	if err != nil {
		return nil, err
	}
	cost, err := runCost(cfg, alg, ds, k)
	if err != nil {
		return nil, err
	}
	d := 2 * k
	n := ds.N() // = d*U
	upper := lemma4Upper(d, uSize, n, k)
	return &TheoremCheck{
		Instance:   ds.Name,
		Algorithm:  alg.Name(),
		N:          n,
		K:          k,
		LowerBound: 0, // the Ω(dU²) bound binds only when dU² <= 2^(d/4)
		UpperBound: upper,
		Cost:       int(cost),
	}, nil
}

// lemma4Upper evaluates Σ Ui + (n/k)·Σ min{Ui, n/k} for d equal-size
// domains.
func lemma4Upper(d, u, n, k int) int {
	nk := n / k
	m := u
	if nk < m {
		m = nk
	}
	return d*u + nk*d*m
}

// TheoremTable runs the standard theorem checks and renders them.
func TheoremTable(cfg Config) (*tabulate.Table, error) {
	t := tabulate.New("Lower/upper bound verification (Theorems 1–4)",
		"instance", "algorithm", "n", "k", "lower", "cost", "upper")
	t3, err := Theorem3(cfg, 50, 4, 16)
	if err != nil {
		return nil, err
	}
	addCheck(t, t3)
	t3b, err := Theorem3(cfg, 100, 8, 32)
	if err != nil {
		return nil, err
	}
	addCheck(t, t3b)
	for _, alg := range []core.Crawler{core.SliceCover{}, core.LazySliceCover{}} {
		t4, err := Theorem4(cfg, 8, 4, alg)
		if err != nil {
			return nil, err
		}
		addCheck(t, t4)
	}
	return t, nil
}

func addCheck(t *tabulate.Table, c *TheoremCheck) {
	lower := "-"
	if c.LowerBound > 0 {
		lower = fmt.Sprintf("%d", c.LowerBound)
	}
	t.AddRow(c.Instance, c.Algorithm, c.N, c.K, lower, c.Cost, c.UpperBound)
}
