package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"hidb/internal/core"
)

// testConfig scales the workloads down so the full suite stays fast while
// the qualitative shapes (who wins, how costs scale) remain assertable.
func testConfig() Config {
	return Config{DataSeed: 11, PrioritySeed: 42, Scale: 0.08}
}

func seriesByLabel(t *testing.T, f *Figure, label string) []float64 {
	t.Helper()
	for _, s := range f.Series {
		if s.Label == label {
			return s.Values
		}
	}
	t.Fatalf("figure %s has no series %q", f.ID, label)
	return nil
}

func TestFigure10aShape(t *testing.T) {
	fig, err := Figure10a(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rank := seriesByLabel(t, fig, "rank-shrink")
	bin := seriesByLabel(t, fig, "binary-shrink")
	for i := range fig.X {
		// The optimal algorithm must not lose to the baseline.
		if rank[i] > bin[i] {
			t.Errorf("k=%v: rank-shrink %v > binary-shrink %v", fig.X[i], rank[i], bin[i])
		}
	}
	// Costs fall as k grows (inverse scaling, Lemma 2).
	for i := 1; i < len(rank); i++ {
		if rank[i] > rank[i-1] {
			t.Errorf("rank-shrink cost rose with k: %v -> %v", rank[i-1], rank[i])
		}
	}
	// Doubling k should roughly halve the cost at the small-k end.
	if rank[0] < rank[1]*1.4 {
		t.Errorf("rank-shrink not ~inverse in k: k=64 cost %v vs k=128 cost %v", rank[0], rank[1])
	}
}

func TestFigure10bShape(t *testing.T) {
	fig, err := Figure10b(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rank := seriesByLabel(t, fig, "rank-shrink")
	// The paper's observation: rank-shrink stays nearly flat in d. Allow a
	// generous 3x band to keep the test robust across seeds.
	min, max := rank[0], rank[0]
	for _, v := range rank {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if max > 3*min {
		t.Errorf("rank-shrink cost varies %vx across d, want near-flat", max/min)
	}
}

func TestFigure10cShape(t *testing.T) {
	fig, err := Figure10c(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rank := seriesByLabel(t, fig, "rank-shrink")
	// Cost grows with n...
	for i := 1; i < len(rank); i++ {
		if rank[i] < rank[i-1] {
			t.Errorf("rank-shrink cost fell as n grew: %v -> %v", rank[i-1], rank[i])
		}
	}
	// ...and roughly linearly: the 100% dataset should cost no more than
	// ~8x the 20% dataset (5x tuples, generous slack).
	if rank[len(rank)-1] > 8*rank[0] {
		t.Errorf("rank-shrink super-linear in n: %v at 20%% vs %v at 100%%", rank[0], rank[len(rank)-1])
	}
}

func TestFigure11aShape(t *testing.T) {
	fig, err := Figure11a(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	dfs := seriesByLabel(t, fig, "dfs")
	eager := seriesByLabel(t, fig, "slice-cover")
	lazy := seriesByLabel(t, fig, "lazy-slice-cover")
	for i := range fig.X {
		// Lazy never issues more than eager (+1 root query).
		if lazy[i] > eager[i]+1 {
			t.Errorf("k=%v: lazy %v > eager %v", fig.X[i], lazy[i], eager[i])
		}
	}
	// At the largest k, lazy must clearly beat slice-cover (whose
	// preprocessing cost is flat at Σ Ui) — the paper's headline finding.
	last := len(fig.X) - 1
	if lazy[last]*2 > eager[last] {
		t.Errorf("lazy (%v) not clearly below slice-cover (%v) at k=1024", lazy[last], eager[last])
	}
	// DFS must be the worst at the smallest k.
	if dfs[0] < lazy[0] {
		t.Errorf("k=64: dfs %v beat lazy %v", dfs[0], lazy[0])
	}
}

func TestFigure11cShape(t *testing.T) {
	fig, err := Figure11c(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	lazy := seriesByLabel(t, fig, "lazy-slice-cover")
	for i := 1; i < len(lazy); i++ {
		if lazy[i] < lazy[i-1] {
			t.Errorf("lazy-slice-cover cost fell as n grew: %v -> %v", lazy[i-1], lazy[i])
		}
	}
}

func TestFigure12Shape(t *testing.T) {
	cfg := testConfig()
	// At this scale the Yahoo duplicate block shrinks below 64, so every k
	// is solvable; the full-size unsolvability is asserted in
	// TestFigure12FullScaleUnsolvable.
	fig, err := Figure12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		for i := 1; i < len(s.Values); i++ {
			if math.IsNaN(s.Values[i]) || math.IsNaN(s.Values[i-1]) {
				continue
			}
			if s.Values[i] > s.Values[i-1] {
				t.Errorf("%s: hybrid cost rose with k: %v -> %v", s.Label, s.Values[i-1], s.Values[i])
			}
		}
	}
}

func TestFigure12FullScaleUnsolvable(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run skipped in -short mode")
	}
	fig, err := Figure12(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	yahoo := seriesByLabel(t, fig, "yahoo-like")
	if !math.IsNaN(yahoo[0]) {
		t.Errorf("yahoo at k=64 = %v, want unsolvable (the dataset holds >64 duplicates)", yahoo[0])
	}
	for _, v := range yahoo[1:] {
		if math.IsNaN(v) {
			t.Error("yahoo unsolvable above k=64")
		}
	}
	adult := seriesByLabel(t, fig, "adult-like")
	for _, v := range adult {
		if math.IsNaN(v) {
			t.Error("adult should be solvable at every k")
		}
	}
	// Render path for the unsolvable marker.
	if !strings.Contains(fig.Table().String(), "unsolvable") {
		t.Error("table does not render the unsolvable marker")
	}
}

func TestFigure13NearLinear(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.2
	fig, err := Figure13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		// Deciles are cumulative percentages: monotone, ending at 100.
		for i := 1; i < len(s.Values); i++ {
			if s.Values[i] < s.Values[i-1] {
				t.Errorf("%s: progress decreased: %v -> %v", s.Label, s.Values[i-1], s.Values[i])
			}
		}
		if last := s.Values[len(s.Values)-1]; math.Abs(last-100) > 1e-9 {
			t.Errorf("%s: final decile %v, want 100", s.Label, last)
		}
		// Near-linearity: no decile may deviate from the diagonal by more
		// than 35 percentage points (the paper's curves stay well within).
		for i, v := range s.Values {
			diag := float64((i + 1) * 10)
			if math.Abs(v-diag) > 35 {
				t.Errorf("%s: decile %d%% at %v%%, too far from linear", s.Label, (i+1)*10, v)
			}
		}
	}
}

func TestProgressCurveComplete(t *testing.T) {
	cfg := testConfig()
	ds := mixedDatasets(cfg)[1] // adult-like
	curve, err := ProgressCurve(cfg, ds, 128)
	if err != nil {
		t.Fatal(err)
	}
	if curve.At(1.0) != 1.0 {
		t.Errorf("curve does not reach 100%%: %v", curve.At(1.0))
	}
}

func TestTheorem3Sandwich(t *testing.T) {
	c, err := Theorem3(testConfig(), 20, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cost < c.LowerBound {
		t.Errorf("cost %d below the information-theoretic lower bound %d", c.Cost, c.LowerBound)
	}
	if c.Cost > c.UpperBound {
		t.Errorf("cost %d above the Lemma-2 upper bound %d", c.Cost, c.UpperBound)
	}
}

func TestTheorem4WithinBound(t *testing.T) {
	for _, alg := range []string{"slice-cover", "lazy-slice-cover"} {
		crawler, err := core.ByName(alg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Theorem4(testConfig(), 6, 3, crawler)
		if err != nil {
			t.Fatal(err)
		}
		if c.Cost > c.UpperBound {
			t.Errorf("%s cost %d above Lemma-4 bound %d", alg, c.Cost, c.UpperBound)
		}
	}
}

func TestAblationDependencyFilterNeverWorse(t *testing.T) {
	cfg := testConfig()
	fig, err := AblationDependencyFilter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain := seriesByLabel(t, fig, "hybrid")
	filtered := seriesByLabel(t, fig, "hybrid+deps")
	for i := range fig.X {
		if filtered[i] > plain[i] {
			t.Errorf("k=%v: dependency knowledge increased cost %v -> %v",
				fig.X[i], plain[i], filtered[i])
		}
	}
}

func TestAblationSplitThresholdComplete(t *testing.T) {
	fig, err := AblationSplitThreshold(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range fig.Series[0].Values {
		if v <= 0 {
			t.Error("threshold ablation produced a non-positive cost")
		}
	}
}

func TestFigure9Tables(t *testing.T) {
	tables := Figure9(testConfig())
	if len(tables) != 3 {
		t.Fatalf("Figure9 returned %d tables, want 3", len(tables))
	}
	for _, tb := range tables {
		if tb.NumRows() == 0 {
			t.Errorf("table %q empty", tb.Title)
		}
	}
	// NSF table must list the 29042-value attribute.
	if !strings.Contains(tables[1].String(), "29042") {
		t.Error("NSF table missing the PI-name domain size")
	}
}

func TestReportSmoke(t *testing.T) {
	var sb strings.Builder
	cfg := testConfig()
	cfg.Scale = 0.03
	err := Report(&sb, cfg, map[string]bool{"9": true, "10a": true, "13": true}, false)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 9", "Figure 10a", "Figure 13"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "Figure 12") {
		t.Error("report ran an unrequested figure")
	}
	// CSV mode.
	sb.Reset()
	if err := Report(&sb, cfg, map[string]bool{"10a": true}, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "k,binary-shrink,rank-shrink") {
		t.Errorf("CSV header missing:\n%s", sb.String())
	}
}

func TestFigureValue(t *testing.T) {
	fig := &Figure{
		ID: "t", X: []float64{1, 2},
		Series: []Series{{Label: "a", Values: []float64{10, 20}}},
	}
	v, err := fig.Value("a", 1)
	if err != nil || v != 20 {
		t.Errorf("Value = %v, %v", v, err)
	}
	if _, err := fig.Value("b", 0); err == nil {
		t.Error("unknown series accepted")
	}
	if _, err := fig.Value("a", 5); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestFigure11bShape(t *testing.T) {
	fig, err := Figure11b(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	eager := seriesByLabel(t, fig, "slice-cover")
	lazy := seriesByLabel(t, fig, "lazy-slice-cover")
	for i := range fig.X {
		// The lazy variant wins at every dimensionality (k=256).
		if lazy[i] >= eager[i] {
			t.Errorf("d=%v: lazy %v >= slice-cover %v", fig.X[i], lazy[i], eager[i])
		}
	}
}

func TestAblationParallelShape(t *testing.T) {
	cfg := testConfig()
	fig, err := AblationParallel(cfg, 500*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	queries := seriesByLabel(t, fig, "queries")
	for i := 1; i < len(queries); i++ {
		if queries[i] != queries[0] {
			t.Errorf("query cost changed with workers: %v vs %v", queries[i], queries[0])
		}
	}
	// The wall clock is virtual and deterministic, so the assertions are
	// exact, not tolerance-padded: parallelism helps, and the pipelined
	// dispatcher is never slower than flush-on-completion.
	flush := seriesByLabel(t, fig, "wall-clock-inflight1-ms")
	piped := seriesByLabel(t, fig, "wall-clock-inflight2-ms")
	if last := piped[len(piped)-1]; last > flush[0] {
		t.Errorf("32 pipelined workers (%vms) slower than 1 worker (%vms)", last, flush[0])
	}
	for i := range piped {
		if piped[i] > flush[i] {
			t.Errorf("inflight=2 slower than inflight=1 at point %d: %vms vs %vms", i, piped[i], flush[i])
		}
	}
}

func TestReportTheoremsAndAblations(t *testing.T) {
	var sb strings.Builder
	cfg := testConfig()
	cfg.Scale = 0.03
	err := Report(&sb, cfg, map[string]bool{"theorems": true, "ablations": true}, false)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Lower/upper bound verification",
		"Figure A1", "Figure A2", "Figure A3", "Figure A4", "Figure A5",
		"priority permutation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestReportAllFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full report skipped in -short mode")
	}
	var sb strings.Builder
	cfg := testConfig()
	cfg.Scale = 0.03
	only := map[string]bool{
		"10b": true, "10c": true, "11b": true, "11c": true, "12": true,
	}
	if err := Report(&sb, cfg, only, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 10b", "Figure 10c", "Figure 11b", "Figure 11c", "Figure 12"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestAblationEagerVsLazyRuns(t *testing.T) {
	fig, err := AblationEagerVsLazy(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	lazy := seriesByLabel(t, fig, "hybrid")
	eager := seriesByLabel(t, fig, "hybrid-eager")
	if len(lazy) != 2 || len(eager) != 2 {
		t.Fatal("eager-vs-lazy ablation missing datasets")
	}
}

func TestAblationAttributeOrderRuns(t *testing.T) {
	fig, err := AblationAttributeOrder(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	asc := seriesByLabel(t, fig, "ascending-domains")
	desc := seriesByLabel(t, fig, "descending-domains")
	for i := range asc {
		if asc[i] <= 0 || desc[i] <= 0 {
			t.Error("attribute-order ablation produced non-positive costs")
		}
	}
}

func TestAblationPrioritySeedsRuns(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.03
	tb, err := AblationPrioritySeeds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 3 {
		t.Fatalf("priority-seed table has %d rows, want 3", tb.NumRows())
	}
}

// TestAblationFleetShape: the fleet ablation's acceptance invariants at
// test scale — the fleet pays the store exactly one solo crawl regardless
// of size, the naive paper-mode cost grows linearly, and the measured hit
// rate clears 0.9 from fleet size 8 up.
func TestAblationFleetShape(t *testing.T) {
	fig, err := AblationFleet(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	paid := seriesByLabel(t, fig, "fleet-paid")
	naive := seriesByLabel(t, fig, "fleet-naive")
	hitrate := seriesByLabel(t, fig, "fleet-hitrate")
	for i, m := range fig.X {
		if paid[i] != paid[0] {
			t.Errorf("fleet of %v paid %v, want the flat solo cost %v", m, paid[i], paid[0])
		}
		if want := m * (naive[0] / fig.X[0]); naive[i] != want {
			t.Errorf("naive cost at %v = %v, want %v", m, naive[i], want)
		}
		if m >= 8 && hitrate[i] < 0.9 {
			t.Errorf("fleet of %v hit rate %v, want >= 0.9", m, hitrate[i])
		}
		if i > 0 && hitrate[i] <= hitrate[i-1] {
			t.Errorf("hit rate not increasing in fleet size: %v after %v", hitrate[i], hitrate[i-1])
		}
	}
}
