package experiments

import (
	"context"
	"fmt"

	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/progress"
)

// mixedDatasets returns the two mixed workloads of Figures 12 and 13.
func mixedDatasets(cfg Config) []*datagen.Dataset {
	return []*datagen.Dataset{
		yahooLike(cfg),
		adultLike(cfg),
	}
}

// Figure12 reproduces "Cost of the mixed algorithm hybrid": hybrid's query
// cost on the Yahoo and Adult workloads as k ranges over the paper sweep.
// The Yahoo value at k = 64 is Unsolvable — the dataset holds more than 64
// identical tuples, so no algorithm can extract it (§1.1), exactly as the
// paper reports.
func Figure12(cfg Config) (*Figure, error) {
	ks := PaperKs()
	fig := &Figure{
		ID:      "12",
		Caption: "query cost of the mixed algorithm hybrid vs k (Yahoo and Adult)",
		XLabel:  "k",
		X:       floats(ks),
	}
	for _, ds := range mixedDatasets(cfg) {
		s := Series{Label: ds.Name, Values: make([]float64, len(ks))}
		for ki, k := range ks {
			v, err := runCost(cfg, core.Hybrid{}, ds, k)
			if err != nil {
				return nil, err
			}
			s.Values[ki] = v
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure13 reproduces "Output progressiveness of hybrid (k = 256)": the
// percentage of tuples extracted after each decile of the eventually-needed
// queries. The paper observes near-linear progressiveness on both datasets.
func Figure13(cfg Config) (*Figure, error) {
	fig := &Figure{
		ID:      "13",
		Caption: "output progressiveness of hybrid (k=256): % tuples extracted per decile of queries",
		XLabel:  "queries%",
		X:       []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
	}
	for _, ds := range mixedDatasets(cfg) {
		curve, err := ProgressCurve(cfg, ds, 256)
		if err != nil {
			return nil, err
		}
		deciles := curve.Deciles()
		vals := make([]float64, len(deciles))
		for i, v := range deciles {
			vals[i] = v * 100
		}
		fig.Series = append(fig.Series, Series{Label: ds.Name, Values: vals})
	}
	return fig, nil
}

// ProgressCurve runs hybrid with curve collection and returns the
// normalized progressiveness curve.
func ProgressCurve(cfg Config, ds *datagen.Dataset, k int) (progress.Curve, error) {
	srv, err := localServer(ds, k, cfg.PrioritySeed)
	if err != nil {
		return nil, err
	}
	res, err := core.Hybrid{}.Crawl(context.Background(), srv, &core.Options{CollectCurve: true})
	if err != nil {
		return nil, err
	}
	if !res.Tuples.EqualMultiset(ds.Tuples) {
		return nil, fmt.Errorf("experiments: hybrid incomplete on %s (k=%d)", ds.Name, k)
	}
	return progress.Normalize(res.Curve), nil
}
