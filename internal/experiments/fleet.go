package experiments

import (
	"context"
	"fmt"
	"sync"

	"hidb/internal/core"
	"hidb/internal/hiddendb"
	"hidb/internal/session"
)

// AblationFleet measures the fleet-scale shared answer cache: M tokens,
// each running a complete crawl of the Yahoo workload plus one refresh
// pass (re-running the crawl against its own session — the journal-replay
// behaviour real crawlers exhibit across budget windows), through one
// session table with the SharedFree tier. Three series per fleet size:
//
//   - fleet-paid: queries the store actually answered — with the pace-car
//     tier the whole fleet pays one solo crawl's cost, flat in M;
//   - fleet-naive: M x the solo cost — what the same fleet pays in paper
//     mode, where every client buys its own copy of the knowledge;
//   - fleet-hitrate: the fraction of all fleet-issued queries answered
//     without paying the store (journal replays, private memo hits, shared
//     hits and in-flight waits). Every count it is built from is
//     deterministic — the split between shared hits and waits is
//     scheduling-dependent, but their sum is pinned by the single-flight —
//     so the series is bit-stable across runs and tracked by benchjson
//     exactly like the _queries metrics.
//
// The crawls run concurrently, so the measurement also exercises the
// pace-car path: followers ride the leader's in-flight fetches query by
// query. The function fails rather than reporting if the fleet overpays
// (> 1.05x solo, the acceptance bound; single-flight makes it exactly 1x)
// or if any crawl is incomplete.
func AblationFleet(cfg Config) (*Figure, error) {
	ds := yahooLike(cfg)
	const k = 256
	alg := core.ForSchema(ds.Schema)
	fleetSizes := []int{1, 2, 4, 8, 16, 32}

	// Solo reference: one paper-mode session, crawl + refresh.
	srv, err := localServer(ds, k, cfg.PrioritySeed)
	if err != nil {
		return nil, err
	}
	soloCounting := hiddendb.NewCounting(srv)
	soloTbl := session.NewTable(soloCounting, session.Config{})
	soloSess, err := soloTbl.Get("solo")
	if err != nil {
		return nil, err
	}
	for pass := 0; pass < 2; pass++ {
		res, err := alg.Crawl(context.Background(), soloSess.Server(), nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: fleet solo reference: %w", err)
		}
		if !res.Tuples.EqualMultiset(ds.Tuples) {
			return nil, fmt.Errorf("experiments: fleet solo reference incomplete: %d of %d tuples", len(res.Tuples), len(ds.Tuples))
		}
	}
	soloPaid := soloCounting.Queries()

	paid := Series{Label: "fleet-paid", Values: make([]float64, len(fleetSizes))}
	naive := Series{Label: "fleet-naive", Values: make([]float64, len(fleetSizes))}
	hitrate := Series{Label: "fleet-hitrate", Values: make([]float64, len(fleetSizes))}
	for i, m := range fleetSizes {
		counting := hiddendb.NewCounting(srv)
		tbl := session.NewTable(counting, session.Config{SharedCache: hiddendb.SharedFree})

		var wg sync.WaitGroup
		errs := make([]error, m)
		for j := 0; j < m; j++ {
			sess, err := tbl.Get(fmt.Sprintf("tok-%d", j))
			if err != nil {
				return nil, err
			}
			wg.Add(1)
			go func(j int, srv hiddendb.Server) {
				defer wg.Done()
				for pass := 0; pass < 2; pass++ {
					res, err := alg.Crawl(context.Background(), srv, nil)
					if err != nil {
						errs[j] = err
						return
					}
					if !res.Tuples.EqualMultiset(ds.Tuples) {
						errs[j] = fmt.Errorf("incomplete crawl: %d of %d tuples", len(res.Tuples), len(ds.Tuples))
						return
					}
				}
			}(j, sess.Server())
		}
		wg.Wait()
		for j, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("experiments: fleet size %d, token %d: %w", m, j, err)
			}
		}

		totalPaid := counting.Queries()
		totalAsks := 0
		for j := 0; j < m; j++ {
			sess, err := tbl.Get(fmt.Sprintf("tok-%d", j))
			if err != nil {
				return nil, err
			}
			totalAsks += sess.Queries() + sess.Replays() + sess.CacheHits() +
				sess.SharedHits() + sess.SharedWaits()
		}
		if float64(totalPaid) > 1.05*float64(soloPaid) {
			return nil, fmt.Errorf("experiments: fleet of %d paid %d queries, over the 1.05x bound of the solo reference %d", m, totalPaid, soloPaid)
		}
		paid.Values[i] = float64(totalPaid)
		naive.Values[i] = float64(m * soloPaid)
		hitrate.Values[i] = 1 - float64(totalPaid)/float64(totalAsks)
	}

	return &Figure{
		ID:      "A6",
		Caption: "ablation: fleet-wide shared answer cache — store-paid queries and fleet hit rate vs fleet size (Yahoo, k=256, hybrid, crawl + refresh per token, shared-cache=free)",
		XLabel:  "fleet-size",
		X:       floats(fleetSizes),
		Series:  []Series{paid, naive, hitrate},
	}, nil
}
