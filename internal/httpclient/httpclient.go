// Package httpclient implements hiddendb.Server over the HTTP wire
// protocol of internal/httpserver, so every crawling algorithm can run
// unmodified against a remote hidden database: Dial fetches the search
// form's schema once, each Answer call is one POST /query round-trip, and
// AnswerBatch packs B queries into one POST /batch round-trip — keeping the
// crawler's query count equal to the server's while dividing the network
// cost by the batch size. Against a pre-batching server whose /batch
// returns 404, AnswerBatch transparently falls back to per-query requests.
//
// DialToken identifies the client to a per-session server: the token rides
// every request as "Authorization: Bearer <token>", and the server keys
// its quota, journal and counters by it — two clients with distinct tokens
// never touch each other's budgets. Crawl consumes the server-side
// streaming /crawl endpoint: the server runs the algorithm itself against
// the caller's session and streams every extracted tuple back over a
// single round trip.
package httpclient

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/wire"
)

// Client is a remote hidden database. It implements hiddendb.Server.
type Client struct {
	base   string
	token  string
	http   *http.Client
	schema *dataspace.Schema
	k      int
	// legacyBatch records a 404 from /batch so a pre-batching server pays
	// the probe round trip once, not once per batch.
	legacyBatch atomic.Bool
}

// Dial fetches the remote schema and returns a ready client. baseURL is the
// server root, e.g. "http://localhost:8080". Passing a nil httpClient uses
// http.DefaultClient.
func Dial(baseURL string, httpClient *http.Client) (*Client, error) {
	return DialToken(baseURL, "", httpClient)
}

// DialToken is Dial with a client identity: every request carries the API
// token in the Authorization: Bearer header, so a per-session server
// resolves it to this client's own quota, journal and counters. An empty
// token shares the server's anonymous session.
func DialToken(baseURL, token string, httpClient *http.Client) (*Client, error) {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{base: baseURL, token: token, http: httpClient}
	resp, err := c.do(http.MethodGet, "/schema", nil)
	if err != nil {
		return nil, fmt.Errorf("httpclient: fetching schema: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpclient: schema endpoint returned %s", resp.Status)
	}
	var msg wire.SchemaMsg
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&msg); err != nil {
		return nil, fmt.Errorf("httpclient: decoding schema: %w", err)
	}
	c.schema, c.k, err = wire.DecodeSchema(msg)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Token returns the API token this client identifies as ("" when
// anonymous).
func (c *Client) Token() string { return c.token }

// do issues one request against the server root, stamping the token.
func (c *Client) do(method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	wire.SetBearer(req.Header, c.token)
	return c.http.Do(req)
}

// Answer implements hiddendb.Server with one POST /query round-trip.
func (c *Client) Answer(q dataspace.Query) (hiddendb.Result, error) {
	body, err := json.Marshal(wire.EncodeQuery(q))
	if err != nil {
		return hiddendb.Result{}, fmt.Errorf("httpclient: encoding query: %w", err)
	}
	resp, err := c.do(http.MethodPost, "/query", body)
	if err != nil {
		return hiddendb.Result{}, fmt.Errorf("httpclient: query round-trip: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		return hiddendb.Result{}, hiddendb.ErrQuotaExceeded
	default:
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return hiddendb.Result{}, fmt.Errorf("httpclient: query returned %s: %s", resp.Status, snippet)
	}
	var msg wire.ResultMsg
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&msg); err != nil {
		return hiddendb.Result{}, fmt.Errorf("httpclient: decoding result: %w", err)
	}
	return wire.DecodeResult(c.schema, msg)
}

// AnswerBatch implements hiddendb.Server with one POST /batch round-trip.
// The server answers the batch exactly as if the queries had been issued
// sequentially; a batch cut short — by the server's quota or by a server
// failure mid-batch — returns the answered (and paid-for) prefix plus
// hiddendb.ErrQuotaExceeded or the server's error, respectively. When the
// remote predates the batch endpoint (404), the batch degrades to
// per-query round trips.
func (c *Client) AnswerBatch(qs []dataspace.Query) ([]hiddendb.Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	if c.legacyBatch.Load() {
		return c.answerSequentially(qs)
	}
	body, err := json.Marshal(wire.EncodeBatchRequest(qs))
	if err != nil {
		return nil, fmt.Errorf("httpclient: encoding batch: %w", err)
	}
	resp, err := c.do(http.MethodPost, "/batch", body)
	if err != nil {
		return nil, fmt.Errorf("httpclient: batch round-trip: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		return nil, hiddendb.ErrQuotaExceeded
	case http.StatusNotFound:
		// Pre-batching server: preserve the contract one query at a time,
		// and remember so later batches skip the doomed probe.
		c.legacyBatch.Store(true)
		return c.answerSequentially(qs)
	default:
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("httpclient: batch returned %s: %s", resp.Status, snippet)
	}
	var msg wire.BatchResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(&msg); err != nil {
		return nil, fmt.Errorf("httpclient: decoding batch result: %w", err)
	}
	results, quotaExceeded, err := wire.DecodeBatchResponse(c.schema, msg)
	if err != nil {
		return nil, err
	}
	if msg.Error != "" {
		// A mid-batch server failure: the prefix was answered and paid
		// for — deliver it with the error, per the Server contract.
		return results, fmt.Errorf("httpclient: server failed mid-batch: %s", msg.Error)
	}
	if quotaExceeded {
		return results, hiddendb.ErrQuotaExceeded
	}
	if len(results) != len(qs) {
		return nil, fmt.Errorf("httpclient: batch answered %d of %d queries with no quota signal", len(results), len(qs))
	}
	return results, nil
}

func (c *Client) answerSequentially(qs []dataspace.Query) ([]hiddendb.Result, error) {
	out := make([]hiddendb.Result, 0, len(qs))
	for _, q := range qs {
		res, err := c.Answer(q)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// CrawlResult is the outcome of a server-side streaming crawl.
type CrawlResult struct {
	// Tuples is the extracted bag, in the server's output order.
	Tuples dataspace.Bag
	// Queries is the session's paid query count reported by the server's
	// terminal event — the paper's cost metric for this client.
	Queries int
	// Resolved and Overflowed split the crawl's queries by outcome.
	Resolved, Overflowed int
}

// Crawl asks the server to run the named crawling algorithm against this
// client's session and consumes the NDJSON progress stream — the whole
// extraction for one HTTP round trip. An empty algorithm selects the
// server's recommended one. onEvent, when non-nil, observes every stream
// line (tuple progress and the terminal summary) as it arrives.
//
// A crawl the server could not finish returns the tuples streamed so far
// plus an error — hiddendb.ErrQuotaExceeded when the session's budget ran
// dry, in which case re-calling Crawl after the budget window resets
// resumes from the server-side journal for free.
func (c *Client) Crawl(algorithm string, onEvent func(wire.CrawlEvent)) (*CrawlResult, error) {
	body, err := json.Marshal(wire.CrawlRequest{Algorithm: algorithm})
	if err != nil {
		return nil, fmt.Errorf("httpclient: encoding crawl request: %w", err)
	}
	resp, err := c.do(http.MethodPost, "/crawl", body)
	if err != nil {
		return nil, fmt.Errorf("httpclient: crawl round-trip: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		return nil, hiddendb.ErrQuotaExceeded
	case http.StatusNotFound:
		return nil, errors.New("httpclient: server has no /crawl endpoint (pre-session server?)")
	default:
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("httpclient: crawl returned %s: %s", resp.Status, snippet)
	}

	out := &CrawlResult{}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev wire.CrawlEvent
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) {
				return out, errors.New("httpclient: crawl stream ended without a terminal event (truncated?)")
			}
			return out, fmt.Errorf("httpclient: decoding crawl stream: %w", err)
		}
		if onEvent != nil {
			onEvent(ev)
		}
		if ev.Done {
			out.Queries = ev.Queries
			out.Resolved = ev.Resolved
			out.Overflowed = ev.Overflowed
			if ev.Error != "" {
				if ev.QuotaExceeded {
					return out, hiddendb.ErrQuotaExceeded
				}
				return out, fmt.Errorf("httpclient: server-side crawl failed: %s", ev.Error)
			}
			return out, nil
		}
		if ev.Tuple != nil {
			t := dataspace.Tuple(ev.Tuple)
			if err := t.Validate(c.schema); err != nil {
				return out, fmt.Errorf("httpclient: crawl tuple %d: %w", len(out.Tuples), err)
			}
			out.Tuples = append(out.Tuples, t)
			out.Queries = ev.Queries
		}
	}
}

// K implements hiddendb.Server.
func (c *Client) K() int { return c.k }

// Schema implements hiddendb.Server.
func (c *Client) Schema() *dataspace.Schema { return c.schema }
