// Package httpclient implements hiddendb.Server over the HTTP wire
// protocol of internal/httpserver, so every crawling algorithm can run
// unmodified against a remote hidden database: Dial fetches the search
// form's schema once, and each Answer call is one POST /query round-trip —
// keeping the crawler's query count equal to the server's.
package httpclient

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/wire"
)

// Client is a remote hidden database. It implements hiddendb.Server.
type Client struct {
	base   string
	http   *http.Client
	schema *dataspace.Schema
	k      int
}

// Dial fetches the remote schema and returns a ready client. baseURL is the
// server root, e.g. "http://localhost:8080". Passing a nil httpClient uses
// http.DefaultClient.
func Dial(baseURL string, httpClient *http.Client) (*Client, error) {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{base: baseURL, http: httpClient}
	resp, err := httpClient.Get(baseURL + "/schema")
	if err != nil {
		return nil, fmt.Errorf("httpclient: fetching schema: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpclient: schema endpoint returned %s", resp.Status)
	}
	var msg wire.SchemaMsg
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&msg); err != nil {
		return nil, fmt.Errorf("httpclient: decoding schema: %w", err)
	}
	c.schema, c.k, err = wire.DecodeSchema(msg)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Answer implements hiddendb.Server with one POST /query round-trip.
func (c *Client) Answer(q dataspace.Query) (hiddendb.Result, error) {
	body, err := json.Marshal(wire.EncodeQuery(q))
	if err != nil {
		return hiddendb.Result{}, fmt.Errorf("httpclient: encoding query: %w", err)
	}
	resp, err := c.http.Post(c.base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return hiddendb.Result{}, fmt.Errorf("httpclient: query round-trip: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		return hiddendb.Result{}, hiddendb.ErrQuotaExceeded
	default:
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return hiddendb.Result{}, fmt.Errorf("httpclient: query returned %s: %s", resp.Status, snippet)
	}
	var msg wire.ResultMsg
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&msg); err != nil {
		return hiddendb.Result{}, fmt.Errorf("httpclient: decoding result: %w", err)
	}
	return wire.DecodeResult(c.schema, msg)
}

// K implements hiddendb.Server.
func (c *Client) K() int { return c.k }

// Schema implements hiddendb.Server.
func (c *Client) Schema() *dataspace.Schema { return c.schema }
