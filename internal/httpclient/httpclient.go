// Package httpclient implements hiddendb.Server over the HTTP wire
// protocol of internal/httpserver, so every crawling algorithm can run
// unmodified against a remote hidden database: Dial fetches the search
// form's schema once, each Answer call is one POST /query round-trip, and
// AnswerBatch packs B queries into one POST /batch round-trip — keeping the
// crawler's query count equal to the server's while dividing the network
// cost by the batch size. Against a pre-batching server whose /batch
// returns 404, AnswerBatch transparently falls back to per-query requests.
package httpclient

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/wire"
)

// Client is a remote hidden database. It implements hiddendb.Server.
type Client struct {
	base   string
	http   *http.Client
	schema *dataspace.Schema
	k      int
	// legacyBatch records a 404 from /batch so a pre-batching server pays
	// the probe round trip once, not once per batch.
	legacyBatch atomic.Bool
}

// Dial fetches the remote schema and returns a ready client. baseURL is the
// server root, e.g. "http://localhost:8080". Passing a nil httpClient uses
// http.DefaultClient.
func Dial(baseURL string, httpClient *http.Client) (*Client, error) {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{base: baseURL, http: httpClient}
	resp, err := httpClient.Get(baseURL + "/schema")
	if err != nil {
		return nil, fmt.Errorf("httpclient: fetching schema: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpclient: schema endpoint returned %s", resp.Status)
	}
	var msg wire.SchemaMsg
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&msg); err != nil {
		return nil, fmt.Errorf("httpclient: decoding schema: %w", err)
	}
	c.schema, c.k, err = wire.DecodeSchema(msg)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Answer implements hiddendb.Server with one POST /query round-trip.
func (c *Client) Answer(q dataspace.Query) (hiddendb.Result, error) {
	body, err := json.Marshal(wire.EncodeQuery(q))
	if err != nil {
		return hiddendb.Result{}, fmt.Errorf("httpclient: encoding query: %w", err)
	}
	resp, err := c.http.Post(c.base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return hiddendb.Result{}, fmt.Errorf("httpclient: query round-trip: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		return hiddendb.Result{}, hiddendb.ErrQuotaExceeded
	default:
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return hiddendb.Result{}, fmt.Errorf("httpclient: query returned %s: %s", resp.Status, snippet)
	}
	var msg wire.ResultMsg
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&msg); err != nil {
		return hiddendb.Result{}, fmt.Errorf("httpclient: decoding result: %w", err)
	}
	return wire.DecodeResult(c.schema, msg)
}

// AnswerBatch implements hiddendb.Server with one POST /batch round-trip.
// The server answers the batch exactly as if the queries had been issued
// sequentially; a batch cut short by the server's quota returns the
// answered prefix plus hiddendb.ErrQuotaExceeded. When the remote predates
// the batch endpoint (404), the batch degrades to per-query round trips.
func (c *Client) AnswerBatch(qs []dataspace.Query) ([]hiddendb.Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	if c.legacyBatch.Load() {
		return c.answerSequentially(qs)
	}
	body, err := json.Marshal(wire.EncodeBatchRequest(qs))
	if err != nil {
		return nil, fmt.Errorf("httpclient: encoding batch: %w", err)
	}
	resp, err := c.http.Post(c.base+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("httpclient: batch round-trip: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		return nil, hiddendb.ErrQuotaExceeded
	case http.StatusNotFound:
		// Pre-batching server: preserve the contract one query at a time,
		// and remember so later batches skip the doomed probe.
		c.legacyBatch.Store(true)
		return c.answerSequentially(qs)
	default:
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("httpclient: batch returned %s: %s", resp.Status, snippet)
	}
	var msg wire.BatchResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(&msg); err != nil {
		return nil, fmt.Errorf("httpclient: decoding batch result: %w", err)
	}
	results, quotaExceeded, err := wire.DecodeBatchResponse(c.schema, msg)
	if err != nil {
		return nil, err
	}
	if quotaExceeded {
		return results, hiddendb.ErrQuotaExceeded
	}
	if len(results) != len(qs) {
		return nil, fmt.Errorf("httpclient: batch answered %d of %d queries with no quota signal", len(results), len(qs))
	}
	return results, nil
}

func (c *Client) answerSequentially(qs []dataspace.Query) ([]hiddendb.Result, error) {
	out := make([]hiddendb.Result, 0, len(qs))
	for _, q := range qs {
		res, err := c.Answer(q)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// K implements hiddendb.Server.
func (c *Client) K() int { return c.k }

// Schema implements hiddendb.Server.
func (c *Client) Schema() *dataspace.Schema { return c.schema }
