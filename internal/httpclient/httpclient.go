// Package httpclient implements hiddendb.Server over the HTTP wire
// protocol of internal/httpserver, so every crawling algorithm can run
// unmodified against a remote hidden database: Dial fetches the search
// form's schema once, each Answer call is one POST /query round-trip, and
// AnswerBatch packs B queries into one POST /batch round-trip — keeping the
// crawler's query count equal to the server's while dividing the network
// cost by the batch size. Against a pre-batching server whose /batch
// returns 404, AnswerBatch transparently falls back to per-query requests.
//
// Every round trip is issued with http.NewRequestWithContext under the
// caller's ctx: cancelling a crawl aborts its in-flight request at the
// transport, and a deadline bounds each remote query.
//
// DialToken identifies the client to a per-session server: the token rides
// every request as "Authorization: Bearer <token>", and the server keys
// its quota, journal and counters by it — two clients with distinct tokens
// never touch each other's budgets. Crawl consumes the server-side
// streaming /crawl endpoint (the server runs the algorithm itself against
// the caller's session and streams every extracted tuple back over a
// single round trip); CrawlSeq exposes the same stream as a Go iterator,
// and the skip cursor lets a reconnecting client resume a broken stream
// without re-receiving tuples it already holds.
package httpclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"net/http"
	"sync/atomic"

	"hidb/internal/core"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/wire"
)

// Client is a remote hidden database. It implements hiddendb.Server.
type Client struct {
	base   string
	token  string
	http   *http.Client
	schema *dataspace.Schema
	k      int
	// retry, when non-nil, makes every round trip fault-tolerant (see
	// DialRetry and retry.go) and lets Crawl/CrawlSeq resume severed
	// streams.
	retry *retrier
	// legacyBatch records a 404 from /batch so a pre-batching server pays
	// the probe round trip once, not once per batch.
	legacyBatch atomic.Bool
}

// Dial fetches the remote schema and returns a ready client. baseURL is the
// server root, e.g. "http://localhost:8080". The ctx bounds only the schema
// fetch; later calls carry their own. Passing a nil httpClient uses
// http.DefaultClient.
func Dial(ctx context.Context, baseURL string, httpClient *http.Client) (*Client, error) {
	return DialToken(ctx, baseURL, "", httpClient)
}

// DialToken is Dial with a client identity: every request carries the API
// token in the Authorization: Bearer header, so a per-session server
// resolves it to this client's own quota, journal and counters. An empty
// token shares the server's anonymous session.
func DialToken(ctx context.Context, baseURL, token string, httpClient *http.Client) (*Client, error) {
	return dial(ctx, baseURL, token, httpClient, nil)
}

// DialRetry is DialToken over a fault-tolerant transport: transient
// failures — refused or reset connections, timeouts, 5xx responses,
// overload shedding (503 + Retry-After) — are retried per the policy with
// exponential backoff and seeded jitter, and a severed /crawl stream is
// resumed via the skip cursor instead of failing the extraction. Retrying
// never costs extra queries against a session-mode server: a request the
// server already served is replayed free from the session journal, one it
// never saw is paid once on the attempt that lands. A round trip that
// stays down past the policy's attempts (or the client-wide retry budget)
// fails with a *TransportError wrapping the last attempt's error.
func DialRetry(ctx context.Context, baseURL, token string, httpClient *http.Client, policy RetryPolicy) (*Client, error) {
	return dial(ctx, baseURL, token, httpClient, newRetrier(policy))
}

func dial(ctx context.Context, baseURL, token string, httpClient *http.Client, retry *retrier) (*Client, error) {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{base: baseURL, token: token, http: httpClient, retry: retry}
	resp, err := c.doRetry(ctx, "schema", http.MethodGet, "/schema", nil)
	if err != nil {
		return nil, fmt.Errorf("httpclient: fetching schema: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpclient: schema endpoint returned %s", resp.Status)
	}
	var msg wire.SchemaMsg
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&msg); err != nil {
		return nil, fmt.Errorf("httpclient: decoding schema: %w", err)
	}
	c.schema, c.k, err = wire.DecodeSchema(msg)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Token returns the API token this client identifies as ("" when
// anonymous).
func (c *Client) Token() string { return c.token }

// do issues one request against the server root under ctx, stamping the
// token.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	wire.SetBearer(req.Header, c.token)
	return c.http.Do(req)
}

// doRetry is do under the client's retry policy (a plain do when no policy
// is configured). op names the call in *TransportError reports.
func (c *Client) doRetry(ctx context.Context, op, method, path string, body []byte) (*http.Response, error) {
	if c.retry == nil {
		return c.do(ctx, method, path, body)
	}
	return c.retry.do(ctx, op, func(actx context.Context) (*http.Response, error) {
		return c.do(actx, method, path, body)
	})
}

// ctxErr surfaces a cancellation hidden inside a transport error as the
// bare ctx error, so callers (and budget accounting) see the typed signal
// rather than a wrapped *url.Error. The classification is hiddendb's —
// the same predicate Quota's refunds use — so client and server can never
// disagree on what counts as cancelled.
func ctxErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil && hiddendb.Cancelled(err) {
		return cerr
	}
	return err
}

// Answer implements hiddendb.Server with one POST /query round-trip.
func (c *Client) Answer(ctx context.Context, q dataspace.Query) (hiddendb.Result, error) {
	body, err := json.Marshal(wire.EncodeQuery(q))
	if err != nil {
		return hiddendb.Result{}, fmt.Errorf("httpclient: encoding query: %w", err)
	}
	resp, err := c.doRetry(ctx, "query", http.MethodPost, "/query", body)
	if err != nil {
		return hiddendb.Result{}, ctxErr(ctx, fmt.Errorf("httpclient: query round-trip: %w", err))
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		return hiddendb.Result{}, hiddendb.ErrQuotaExceeded
	default:
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return hiddendb.Result{}, fmt.Errorf("httpclient: query returned %s: %s", resp.Status, snippet)
	}
	var msg wire.ResultMsg
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&msg); err != nil {
		return hiddendb.Result{}, ctxErr(ctx, fmt.Errorf("httpclient: decoding result: %w", err))
	}
	return wire.DecodeResult(c.schema, msg)
}

// AnswerBatch implements hiddendb.Server with one POST /batch round-trip.
// The server answers the batch exactly as if the queries had been issued
// sequentially; a batch cut short — by the server's quota or by a server
// failure mid-batch — returns the answered (and paid-for) prefix plus
// hiddendb.ErrQuotaExceeded or the server's error, respectively. When the
// remote predates the batch endpoint (404), the batch degrades to
// per-query round trips. Cancelling ctx aborts the in-flight round trip.
func (c *Client) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]hiddendb.Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	if c.legacyBatch.Load() {
		return c.answerSequentially(ctx, qs)
	}
	body, err := json.Marshal(wire.EncodeBatchRequest(qs))
	if err != nil {
		return nil, fmt.Errorf("httpclient: encoding batch: %w", err)
	}
	resp, err := c.doRetry(ctx, "batch", http.MethodPost, "/batch", body)
	if err != nil {
		return nil, ctxErr(ctx, fmt.Errorf("httpclient: batch round-trip: %w", err))
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		return nil, hiddendb.ErrQuotaExceeded
	case http.StatusNotFound:
		// Pre-batching server: preserve the contract one query at a time,
		// and remember so later batches skip the doomed probe.
		c.legacyBatch.Store(true)
		return c.answerSequentially(ctx, qs)
	default:
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("httpclient: batch returned %s: %s", resp.Status, snippet)
	}
	var msg wire.BatchResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(&msg); err != nil {
		return nil, ctxErr(ctx, fmt.Errorf("httpclient: decoding batch result: %w", err))
	}
	results, quotaExceeded, err := wire.DecodeBatchResponse(c.schema, msg)
	if err != nil {
		return nil, err
	}
	if msg.Error != "" {
		// A mid-batch server failure: the prefix was answered and paid
		// for — deliver it with the error, per the Server contract.
		return results, fmt.Errorf("httpclient: server failed mid-batch: %s", msg.Error)
	}
	if quotaExceeded {
		return results, hiddendb.ErrQuotaExceeded
	}
	if len(results) != len(qs) {
		return nil, fmt.Errorf("httpclient: batch answered %d of %d queries with no quota signal", len(results), len(qs))
	}
	return results, nil
}

func (c *Client) answerSequentially(ctx context.Context, qs []dataspace.Query) ([]hiddendb.Result, error) {
	out := make([]hiddendb.Result, 0, len(qs))
	for _, q := range qs {
		res, err := c.Answer(ctx, q)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// CrawlResult is the outcome of a server-side streaming crawl.
type CrawlResult struct {
	// Tuples is the extracted bag, in the server's output order. With a
	// resume cursor, only the tuples past the cursor appear.
	Tuples dataspace.Bag
	// Queries is the session's paid query count reported by the server's
	// terminal event — the paper's cost metric for this client.
	Queries int
	// Resolved and Overflowed split the crawl's queries by outcome.
	Resolved, Overflowed int
	// Skipped is how many already-delivered tuples the resume cursor
	// suppressed server-side.
	Skipped int
}

// crawlStream decodes an NDJSON /crawl response stream: the shared engine
// of Crawl and CrawlSeq, factored out so the decoder can be fuzzed
// directly against truncated, interleaved and duplicate-event inputs. Per
// event, onEvent (when non-nil) observes the raw line; each valid tuple
// line is handed to emit, which may return false to stop consuming (a
// client-side break — stopped reports it, with no error). The stream ends
// at the first terminal (Done) line: anything after it is ignored, exactly
// as a sequential reader would never read past it. The returned
// CrawlResult carries the terminal line's counters — or, on a truncated or
// malformed stream, whatever the last event reported, alongside the error.
func crawlStream(schema *dataspace.Schema, r io.Reader, onEvent func(wire.CrawlEvent), emit func(dataspace.Tuple) bool) (out CrawlResult, stopped bool, err error) {
	dec := json.NewDecoder(r)
	tuples := 0
	for {
		var ev wire.CrawlEvent
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) {
				return out, false, fmt.Errorf("httpclient: crawl stream ended without a terminal event (truncated?): %w", errStreamSevered)
			}
			return out, false, fmt.Errorf("httpclient: decoding crawl stream: %w: %w", err, errStreamSevered)
		}
		if onEvent != nil {
			onEvent(ev)
		}
		if ev.Done {
			out.Queries = ev.Queries
			out.Resolved = ev.Resolved
			out.Overflowed = ev.Overflowed
			out.Skipped = ev.Skipped
			if ev.Error != "" {
				if ev.QuotaExceeded {
					return out, false, hiddendb.ErrQuotaExceeded
				}
				return out, false, fmt.Errorf("httpclient: server-side crawl failed: %s", ev.Error)
			}
			return out, false, nil
		}
		out.Queries = ev.Queries
		if ev.Tuple == nil {
			continue
		}
		t := dataspace.Tuple(ev.Tuple)
		if err := t.Validate(schema); err != nil {
			return out, false, fmt.Errorf("httpclient: crawl tuple %d: %w", tuples, err)
		}
		tuples++
		if !emit(t) {
			return out, true, nil
		}
	}
}

// errStreamSevered marks a /crawl stream that died mid-flight — truncated
// or garbled by the transport rather than ended by the server's terminal
// event. A retry-enabled client resumes such a stream with the skip
// cursor; everything else (quota, server-reported failure, cancellation)
// is terminal.
var errStreamSevered = errors.New("stream severed")

// resumable reports whether a crawl-stream failure should be retried by
// reconnecting with the resume cursor.
func (c *Client) resumable(ctx context.Context, err error) bool {
	return c.retry != nil && ctx.Err() == nil && errors.Is(err, errStreamSevered)
}

// Crawl asks the server to run the named crawling algorithm against this
// client's session and consumes the NDJSON progress stream — the whole
// extraction for one HTTP round trip. An empty algorithm selects the
// server's recommended one. skip is the resume cursor: the number of
// tuples already received from an earlier, interrupted stream of this
// same crawl (0 starts from the beginning); the server suppresses that
// prefix instead of re-sending it. onEvent, when non-nil, observes every
// stream line (tuple progress and the terminal summary) as it arrives.
//
// A retry-enabled client (DialRetry) rides out a severed stream: the
// connection is reopened with the cursor advanced past every tuple
// already received, so nothing is delivered twice and — the queries
// already answered being journaled server-side — nothing is paid twice.
// Only consecutive reconnects that deliver no progress count against the
// policy's attempts.
//
// A crawl the server could not finish returns the tuples streamed so far
// plus an error — hiddendb.ErrQuotaExceeded when the session's budget ran
// dry, in which case re-calling Crawl after the budget window resets
// resumes from the server-side journal for free. Cancelling ctx tears
// down the stream; the server cancels this session's crawl and journals
// everything already paid.
func (c *Client) Crawl(ctx context.Context, algorithm string, skip int, onEvent func(wire.CrawlEvent)) (*CrawlResult, error) {
	out := &CrawlResult{}
	received := 0 // tuples delivered to out across all connections
	failures := 0 // consecutive reconnects with no progress
	for {
		resp, err := c.openCrawl(ctx, algorithm, skip+received)
		if err != nil {
			if received == 0 {
				return nil, err
			}
			return out, err
		}
		progressed := false
		res, _, err := crawlStream(c.schema, resp.Body, onEvent, func(t dataspace.Tuple) bool {
			out.Tuples = append(out.Tuples, t)
			received++
			progressed = true
			return true
		})
		resp.Body.Close()
		res.Tuples = out.Tuples
		*out = res
		if err == nil {
			return out, nil
		}
		if !c.resumable(ctx, err) {
			return out, ctxErr(ctx, err)
		}
		if progressed {
			failures = 0
		}
		failures++
		if failures >= c.retry.policy.MaxAttempts {
			return out, &TransportError{Op: "crawl", Attempts: failures, Err: err}
		}
		if !c.retry.spend() {
			return out, &TransportError{Op: "crawl", Attempts: failures, Err: fmt.Errorf("retry budget exhausted: %w", err)}
		}
		if serr := c.retry.sleep(ctx, c.retry.backoff(failures, 0)); serr != nil {
			return out, serr
		}
	}
}

// openCrawl POSTs the /crawl request and verifies the stream started,
// translating the failure statuses into their typed errors.
func (c *Client) openCrawl(ctx context.Context, algorithm string, skip int) (*http.Response, error) {
	body, err := json.Marshal(wire.CrawlRequest{Algorithm: algorithm, Skip: skip})
	if err != nil {
		return nil, fmt.Errorf("httpclient: encoding crawl request: %w", err)
	}
	resp, err := c.doRetry(ctx, "crawl", http.MethodPost, "/crawl", body)
	if err != nil {
		return nil, ctxErr(ctx, fmt.Errorf("httpclient: crawl round-trip: %w", err))
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return resp, nil
	case http.StatusTooManyRequests:
		resp.Body.Close()
		return nil, hiddendb.ErrQuotaExceeded
	case http.StatusNotFound:
		resp.Body.Close()
		return nil, errors.New("httpclient: server has no /crawl endpoint (pre-session server?)")
	default:
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		resp.Body.Close()
		return nil, fmt.Errorf("httpclient: crawl returned %s: %s", resp.Status, snippet)
	}
}

// CrawlSeq is the iterator form of Crawl: the server-side crawl's tuples
// arrive as an iter.Seq2 stream, in extraction order. Breaking out of the
// range loop cancels the request — the server aborts this session's crawl
// and journals the queries already paid, so a later CrawlSeq with the
// count of tuples received as skip finishes the extraction without paying
// for or re-receiving anything already delivered. A retry-enabled client
// (DialRetry) absorbs severed streams transparently: the iterator
// reconnects with the cursor advanced past the tuples already yielded, so
// the consumer never sees a duplicate. A crawl that fails yields one
// final (nil, error) pair: a *core.PartialError wrapping
// hiddendb.ErrQuotaExceeded (resumable after the budget window) or the
// transport/server failure, with the paid query count attached.
func (c *Client) CrawlSeq(ctx context.Context, algorithm string, skip int) iter.Seq2[dataspace.Tuple, error] {
	return func(yield func(dataspace.Tuple, error) bool) {
		fail := func(queries int, err error) {
			yield(nil, &core.PartialError{Queries: queries, Err: err})
		}
		cctx, cancel := context.WithCancel(ctx)
		defer cancel()
		received := 0 // tuples yielded across all connections
		failures := 0 // consecutive reconnects with no progress
		for {
			resp, err := c.openCrawl(cctx, algorithm, skip+received)
			if err != nil {
				fail(0, err)
				return
			}
			progressed := false
			res, stopped, err := crawlStream(c.schema, resp.Body, nil, func(t dataspace.Tuple) bool {
				received++
				progressed = true
				return yield(t, nil)
				// A false yield stops the stream; defer cancel() then
				// aborts it server-side.
			})
			resp.Body.Close()
			if err == nil || stopped {
				return
			}
			if !c.resumable(cctx, err) {
				fail(res.Queries, ctxErr(ctx, err))
				return
			}
			if progressed {
				failures = 0
			}
			failures++
			if failures >= c.retry.policy.MaxAttempts {
				fail(res.Queries, &TransportError{Op: "crawl", Attempts: failures, Err: err})
				return
			}
			if !c.retry.spend() {
				fail(res.Queries, &TransportError{Op: "crawl", Attempts: failures, Err: fmt.Errorf("retry budget exhausted: %w", err)})
				return
			}
			if serr := c.retry.sleep(cctx, c.retry.backoff(failures, 0)); serr != nil {
				fail(res.Queries, serr)
				return
			}
		}
	}
}

// K implements hiddendb.Server.
func (c *Client) K() int { return c.k }

// Schema implements hiddendb.Server.
func (c *Client) Schema() *dataspace.Schema { return c.schema }
