package httpclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/httpserver"
	"hidb/internal/simrand"
)

func clientBatch(sch *dataspace.Schema, n int, seed uint64) []dataspace.Query {
	rng := simrand.New(seed)
	qs := make([]dataspace.Query, n)
	for i := range qs {
		q := dataspace.UniverseQuery(sch)
		if rng.Bool(0.5) {
			q = q.WithValue(0, rng.IntRange(1, 4))
		}
		if rng.Bool(0.5) {
			q = q.WithValue(1, rng.IntRange(1, 9))
		}
		if rng.Bool(0.7) {
			lo := rng.IntRange(0, 4500)
			q = q.WithRange(2, lo, lo+rng.IntRange(0, 500))
		}
		qs[i] = q
	}
	return qs
}

// TestAnswerBatchMatchesAnswer: one /batch round trip returns exactly what
// N /query round trips do.
func TestAnswerBatchMatchesAnswer(t *testing.T) {
	ds := mixedDataset(t, 800)
	ts, _ := startServer(t, ds, 16, 0)
	c, err := Dial(context.Background(), ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	qs := clientBatch(c.Schema(), 20, 61)
	want := make([]hiddendb.Result, len(qs))
	for i, q := range qs {
		want[i], err = c.Answer(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.AnswerBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("batch answered %d of %d", len(got), len(qs))
	}
	for i := range got {
		if got[i].Overflow != want[i].Overflow || len(got[i].Tuples) != len(want[i].Tuples) {
			t.Fatalf("batch result %d diverges from single round trips", i)
		}
		for j := range got[i].Tuples {
			if !got[i].Tuples[j].Equal(want[i].Tuples[j]) {
				t.Fatalf("batch result %d tuple %d differs", i, j)
			}
		}
	}
	// An empty batch never touches the network.
	if res, err := c.AnswerBatch(context.Background(), nil); err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v %d", err, len(res))
	}
}

// TestAnswerBatchQuotaPrefix: a server-side quota cuts the batch to the
// affordable prefix and surfaces the typed error.
func TestAnswerBatchQuotaPrefix(t *testing.T) {
	ds := mixedDataset(t, 500)
	ts, _ := startServer(t, ds, 16, 6)
	c, err := Dial(context.Background(), ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	qs := clientBatch(c.Schema(), 10, 63)
	res, err := c.AnswerBatch(context.Background(), qs)
	if !errors.Is(err, hiddendb.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	if len(res) != 6 {
		t.Fatalf("answered %d queries, want the 6-query budget", len(res))
	}
	// Spent budget: the next batch fails outright with the typed error.
	if _, err := c.AnswerBatch(context.Background(), qs[:2]); !errors.Is(err, hiddendb.ErrQuotaExceeded) {
		t.Fatalf("post-budget batch err = %v", err)
	}
}

// TestAnswerBatchFallsBackOn404: against a pre-batching server the client
// degrades to per-query round trips, preserving the contract.
func TestAnswerBatchFallsBackOn404(t *testing.T) {
	ds := mixedDataset(t, 300)
	local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	modern := httpserver.New(local)
	// legacy proxies /schema and /query but pretends /batch doesn't exist.
	batchProbes := 0
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/batch" {
			batchProbes++
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		modern.ServeHTTP(w, r)
	}))
	defer legacy.Close()

	c, err := Dial(context.Background(), legacy.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	qs := clientBatch(c.Schema(), 8, 65)
	res, err := c.AnswerBatch(context.Background(), qs)
	if err != nil {
		t.Fatalf("fallback batch: %v", err)
	}
	if len(res) != len(qs) {
		t.Fatalf("fallback answered %d of %d", len(res), len(qs))
	}
	for i, q := range qs {
		want, _ := c.Answer(context.Background(), q)
		if res[i].Overflow != want.Overflow || len(res[i].Tuples) != len(want.Tuples) {
			t.Fatalf("fallback result %d differs", i)
		}
	}
	// The 404 is remembered: later batches go straight to per-query
	// round trips instead of re-probing /batch every time.
	if _, err := c.AnswerBatch(context.Background(), qs[:3]); err != nil {
		t.Fatal(err)
	}
	if batchProbes != 1 {
		t.Fatalf("/batch probed %d times across two batches, want 1", batchProbes)
	}
}
