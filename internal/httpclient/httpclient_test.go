package httpclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/httpserver"
)

func startServer(t *testing.T, ds *datagen.Dataset, k, quota int) (*httptest.Server, *hiddendb.Local) {
	t.Helper()
	local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, 42)
	if err != nil {
		t.Fatal(err)
	}
	var opts []httpserver.Option
	if quota > 0 {
		opts = append(opts, httpserver.WithQuota(quota))
	}
	ts := httptest.NewServer(httpserver.New(local, opts...))
	t.Cleanup(ts.Close)
	return ts, local
}

func mixedDataset(t *testing.T, n int) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          n,
		CatDomains: []int{4, 9},
		NumRanges:  [][2]int64{{0, 5000}},
		Skew:       0.6,
		DupRate:    0.05,
	}, 17)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDialDiscoversSchema(t *testing.T) {
	ds := mixedDataset(t, 200)
	ts, _ := startServer(t, ds, 16, 0)
	c, err := Dial(context.Background(), ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 16 {
		t.Fatalf("K = %d, want 16", c.K())
	}
	if c.Schema().String() != ds.Schema.String() {
		t.Fatalf("schema mismatch: %s", c.Schema())
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial(context.Background(), "http://127.0.0.1:1", nil); err == nil {
		t.Error("dial to dead address succeeded")
	}
	// A server that serves garbage on /schema.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json"))
	}))
	defer bad.Close()
	if _, err := Dial(context.Background(), bad.URL, nil); err == nil {
		t.Error("garbage schema accepted")
	}
	// A server that 500s.
	boom := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer boom.Close()
	if _, err := Dial(context.Background(), boom.URL, nil); err == nil {
		t.Error("500 schema accepted")
	}
}

func TestAnswerMatchesLocal(t *testing.T) {
	ds := mixedDataset(t, 500)
	ts, local := startServer(t, ds, 16, 0)
	c, err := Dial(context.Background(), ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := []dataspace.Query{
		dataspace.UniverseQuery(c.Schema()),
		dataspace.UniverseQuery(c.Schema()).WithValue(0, 2),
		dataspace.UniverseQuery(c.Schema()).WithRange(2, 100, 400),
		dataspace.UniverseQuery(c.Schema()).WithValue(0, 1).WithValue(1, 3).WithRange(2, 0, 50),
	}
	for _, q := range queries {
		remote, err := c.Answer(context.Background(), q)
		if err != nil {
			t.Fatalf("remote answer for %s: %v", q, err)
		}
		// Re-ask locally with a schema-matched query (the remote client
		// has its own schema instance).
		lq := dataspace.UniverseQuery(local.Schema())
		for i := 0; i < local.Schema().Dims(); i++ {
			p := q.Pred(i)
			if local.Schema().Attr(i).Kind == dataspace.Categorical {
				if !p.Wild {
					lq = lq.WithValue(i, p.Value)
				}
			} else {
				lq = lq.WithRange(i, p.Lo, p.Hi)
			}
		}
		want, err := local.Answer(context.Background(), lq)
		if err != nil {
			t.Fatal(err)
		}
		if remote.Overflow != want.Overflow || len(remote.Tuples) != len(want.Tuples) {
			t.Fatalf("remote/local divergence on %s: (%v,%d) vs (%v,%d)",
				q, remote.Overflow, len(remote.Tuples), want.Overflow, len(want.Tuples))
		}
		for i := range remote.Tuples {
			if !remote.Tuples[i].Equal(want.Tuples[i]) {
				t.Fatalf("tuple %d differs over the wire", i)
			}
		}
	}
}

// TestRemoteCrawlEqualsLocal is the end-to-end property: the full crawl
// through HTTP retrieves the same bag with the same query count as the
// in-process crawl.
func TestRemoteCrawlEqualsLocal(t *testing.T) {
	ds := mixedDataset(t, 2000)
	ts, local := startServer(t, ds, 32, 0)
	c, err := Dial(context.Background(), ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	remoteRes, err := core.Hybrid{}.Crawl(context.Background(), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	localRes, err := core.Hybrid{}.Crawl(context.Background(), local, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !remoteRes.Tuples.EqualMultiset(ds.Tuples) {
		t.Fatal("remote crawl incomplete")
	}
	if remoteRes.Queries != localRes.Queries {
		t.Fatalf("remote crawl cost %d != local %d", remoteRes.Queries, localRes.Queries)
	}
}

func TestQuotaSurfacesTyped(t *testing.T) {
	ds := mixedDataset(t, 2000)
	ts, _ := startServer(t, ds, 16, 5)
	c, err := Dial(context.Background(), ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Hybrid{}.Crawl(context.Background(), c, nil)
	if !errors.Is(err, hiddendb.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
}
