package httpclient

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hidb/internal/dataspace"
	"hidb/internal/wire"
)

// stubServer serves a fixed schema and a scripted /batch response, and
// records the Authorization headers it sees.
func stubServer(t *testing.T, sch *dataspace.Schema, k int, batch wire.BatchResponse) (*httptest.Server, *[]string) {
	t.Helper()
	var auths []string
	mux := http.NewServeMux()
	mux.HandleFunc("/schema", func(w http.ResponseWriter, r *http.Request) {
		auths = append(auths, r.Header.Get("Authorization"))
		json.NewEncoder(w).Encode(wire.EncodeSchema(sch, k))
	})
	mux.HandleFunc("/batch", func(w http.ResponseWriter, r *http.Request) {
		auths = append(auths, r.Header.Get("Authorization"))
		json.NewEncoder(w).Encode(batch)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &auths
}

// TestTokenRidesEveryRequest: DialToken stamps Authorization: Bearer on
// the schema fetch and every query-carrying request.
func TestTokenRidesEveryRequest(t *testing.T) {
	sch := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "x", Kind: dataspace.Numeric, Min: 0, Max: 100},
	})
	ts, auths := stubServer(t, sch, 5, wire.BatchResponse{Results: []wire.ResultMsg{{}}})
	c, err := DialToken(context.Background(), ts.URL, "secret-tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Token() != "secret-tok" {
		t.Fatalf("Token() = %q", c.Token())
	}
	if _, err := c.AnswerBatch(context.Background(), []dataspace.Query{dataspace.UniverseQuery(sch)}); err != nil {
		t.Fatal(err)
	}
	if len(*auths) != 2 {
		t.Fatalf("saw %d requests, want 2", len(*auths))
	}
	for i, a := range *auths {
		if a != "Bearer secret-tok" {
			t.Errorf("request %d Authorization = %q", i, a)
		}
	}
}

// TestBatchErrorDeliversPrefix: a BatchResponse carrying an Error is the
// answered-prefix-plus-error contract on the wire — the client must hand
// back the prefix with a non-quota error.
func TestBatchErrorDeliversPrefix(t *testing.T) {
	sch := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "x", Kind: dataspace.Numeric, Min: 0, Max: 100},
	})
	ts, _ := stubServer(t, sch, 5, wire.BatchResponse{
		Results: []wire.ResultMsg{{Tuples: [][]int64{{7}}}},
		Error:   "backend on fire",
	})
	c, err := Dial(context.Background(), ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	u := dataspace.UniverseQuery(sch)
	res, err := c.AnswerBatch(context.Background(), []dataspace.Query{u, u, u})
	if err == nil || !strings.Contains(err.Error(), "backend on fire") {
		t.Fatalf("err = %v, want the server's failure", err)
	}
	if len(res) != 1 || len(res[0].Tuples) != 1 || res[0].Tuples[0][0] != 7 {
		t.Fatalf("prefix = %+v, want the single answered result", res)
	}
}
