// Fault-tolerant transport. A remote crawl spanning hours of rate-limited
// queries will see the network fail: connections reset, servers restart,
// proxies time out, overloaded servers shed load. None of those failures
// need cost the crawl anything — the server journals every answered query
// per session, so a retried request that the server already served replays
// from the journal for free, and one that never arrived is simply paid
// once, on the attempt that lands. The retrier below therefore only has to
// make the round trip *eventually* happen; the cost model takes care of
// itself.
//
// Retries are policy-driven: capped attempts with exponential backoff and
// seeded jitter, an optional cross-call retry budget (a storm brake), an
// optional per-attempt time-to-response bound, and Retry-After honoured
// when an overloaded server sheds the request with a 503. Backoff sleeps
// run on hiddendb.SimClock virtual time when one is configured, so tests
// exercise real retry schedules in microseconds, deterministically.
package httpclient

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hidb/internal/hiddendb"
	"hidb/internal/simrand"
)

// RetryPolicy configures the fault-tolerant transport (see DialRetry).
// The zero value of any field selects its default.
type RetryPolicy struct {
	// MaxAttempts is the total tries per round trip (first attempt
	// included); default 4. For stream resumption it bounds *consecutive*
	// failed reconnects — a reconnect that makes progress resets the count.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; default 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff; default 5s.
	MaxDelay time.Duration
	// Multiplier grows the backoff per retry; default 2.
	Multiplier float64
	// JitterSeed seeds the deterministic jitter generator. Equal seeds give
	// equal retry schedules — the chaos tests depend on it.
	JitterSeed uint64
	// PerAttempt, when positive, bounds each attempt's time to response
	// headers (wall clock); an attempt that exceeds it is abandoned and
	// retried. It never cuts short a streaming response body.
	PerAttempt time.Duration
	// Budget, when positive, caps the total retries across the client's
	// lifetime — a brake on retry storms. Exhausting it fails the call
	// with a *TransportError immediately.
	Budget int
	// Clock, when non-nil, runs backoff sleeps on virtual time.
	Clock *hiddendb.SimClock
}

// withDefaults fills in the zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	return p
}

// TransportError reports a round trip that failed even after retrying: the
// attempts are exhausted (or the client's retry budget is). It wraps the
// last attempt's failure. Quota, cancellation and server-logic errors are
// never wrapped in it — those are terminal on the first occurrence.
type TransportError struct {
	// Op names the failing call: "schema", "query", "batch" or "crawl".
	Op string
	// Attempts is how many tries were made.
	Attempts int
	// Err is the last attempt's failure.
	Err error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("httpclient: %s failed after %d attempts: %v", e.Op, e.Attempts, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// retrier executes attempts under a RetryPolicy. One per Client; safe for
// concurrent calls.
type retrier struct {
	policy RetryPolicy

	mu     sync.Mutex
	rng    *simrand.RNG
	budget int // remaining retries when the policy caps them; -1 = unlimited
}

func newRetrier(policy RetryPolicy) *retrier {
	p := policy.withDefaults()
	budget := -1
	if p.Budget > 0 {
		budget = p.Budget
	}
	return &retrier{policy: p, rng: simrand.New(p.JitterSeed), budget: budget}
}

// spend consumes one unit of the retry budget, reporting false when the
// storm brake has engaged.
func (r *retrier) spend() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.budget == 0 {
		return false
	}
	if r.budget > 0 {
		r.budget--
	}
	return true
}

// backoff returns the delay before retry number n (1-based): exponential
// with seeded half-jitter, capped, and never below what the server's
// Retry-After asked for.
func (r *retrier) backoff(n int, retryAfter time.Duration) time.Duration {
	p := r.policy
	d := float64(p.BaseDelay)
	for i := 1; i < n; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	r.mu.Lock()
	jittered := time.Duration(d/2 + r.rng.Float64()*d/2)
	r.mu.Unlock()
	if retryAfter > jittered {
		return retryAfter
	}
	return jittered
}

// sleep waits d under ctx, on the policy's virtual clock when one is set.
func (r *retrier) sleep(ctx context.Context, d time.Duration) error {
	if r.policy.Clock != nil {
		return r.policy.Clock.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// transientStatus reports whether a response status is worth retrying:
// the server-side failures (5xx) that a later attempt may not see. 501
// (Not Implemented) is permanent by definition. Everything below 500 —
// including 429, the quota signal, and 404, the legacy-endpoint probe —
// is a protocol answer, not a transport failure.
func transientStatus(code int) bool {
	return code >= 500 && code != http.StatusNotImplemented
}

// retryAfter parses the response's Retry-After seconds, if any.
func retryAfter(h http.Header) time.Duration {
	secs, err := strconv.Atoi(h.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// do runs one logical round trip, retrying transient failures per the
// policy. attempt must issue the request under the ctx it is handed and
// return the raw response. On success the response is returned with its
// body intact (a transient 5xx body is drained and closed before the
// retry). Parent-ctx cancellation is surfaced as the ctx error; exhausted
// attempts or budget come back as a *TransportError wrapping the last
// failure.
func (r *retrier) do(ctx context.Context, op string, attempt func(context.Context) (*http.Response, error)) (*http.Response, error) {
	var lastErr error
	for n := 1; ; n++ {
		resp, err := r.try(ctx, attempt)
		var wait time.Duration
		switch {
		case err == nil && !transientStatus(resp.StatusCode):
			return resp, nil
		case err == nil:
			wait = retryAfter(resp.Header)
			snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			resp.Body.Close()
			lastErr = fmt.Errorf("server returned %s: %s", resp.Status, snippet)
		default:
			if cerr := ctx.Err(); cerr != nil {
				// The caller hung up; not the transport's failure to report.
				return nil, cerr
			}
			// Everything else — refused connections, resets, a timed-out
			// attempt — is transient: the server may be restarting, and a
			// request it did serve before the failure costs nothing to
			// retry (the session journal replays it for free).
			lastErr = err
		}
		if n >= r.policy.MaxAttempts {
			return nil, &TransportError{Op: op, Attempts: n, Err: lastErr}
		}
		if !r.spend() {
			return nil, &TransportError{Op: op, Attempts: n, Err: fmt.Errorf("retry budget exhausted: %w", lastErr)}
		}
		if err := r.sleep(ctx, r.backoff(n, wait)); err != nil {
			return nil, err
		}
	}
}

// try runs one attempt, bounding its time to response headers when the
// policy asks for it. The bound must not cut short a streaming body, so it
// is an AfterFunc cancelled once the headers are in, not a ctx deadline
// spanning the response; the attempt ctx then lives until the body is
// closed.
func (r *retrier) try(ctx context.Context, attempt func(context.Context) (*http.Response, error)) (*http.Response, error) {
	if r.policy.PerAttempt <= 0 {
		return attempt(ctx)
	}
	actx, cancel := context.WithCancel(ctx)
	timer := time.AfterFunc(r.policy.PerAttempt, cancel)
	resp, err := attempt(actx)
	if err != nil {
		timer.Stop()
		cancel()
		if ctx.Err() == nil && hiddendb.Cancelled(err) {
			// The per-attempt bound fired, not the caller: report a plain
			// timeout so the retry loop treats it as transient.
			return nil, fmt.Errorf("attempt exceeded %v to response", r.policy.PerAttempt)
		}
		return nil, err
	}
	timer.Stop()
	resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelOnClose releases an attempt's ctx when its response body is done.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelOnClose) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}
