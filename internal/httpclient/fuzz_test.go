package httpclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/httpserver"
	"hidb/internal/session"
	"hidb/internal/wire"
)

func fuzzSchema() *dataspace.Schema {
	return dataspace.MustSchema([]dataspace.Attribute{
		{Name: "C", Kind: dataspace.Categorical, DomainSize: 4},
		{Name: "N", Kind: dataspace.Numeric, Min: -100, Max: 100},
	})
}

// FuzzCrawlStream feeds arbitrary byte streams — seeded with truncated,
// interleaved, duplicate-event and malformed-tuple corpora — through the
// /crawl NDJSON decoder and checks its contract: it never panics, every
// emitted tuple validates against the schema, a nil error implies the
// stream carried a terminal event whose counters were surfaced, and
// nothing after the first terminal line is ever emitted.
func FuzzCrawlStream(f *testing.F) {
	seeds := []string{
		// Well-formed: two tuples and a terminal summary.
		`{"tuple":[1,5],"queries":3}` + "\n" + `{"tuple":[2,-7],"queries":4}` + "\n" + `{"done":true,"queries":4,"tuples":2,"resolved":3,"overflowed":1}`,
		// Truncated: no terminal event.
		`{"tuple":[1,5],"queries":3}`,
		// Truncated mid-line.
		`{"tuple":[1,5],"quer`,
		// Empty stream.
		``,
		// Interleaved: tuples after the terminal line must be ignored.
		`{"done":true,"queries":2}` + "\n" + `{"tuple":[1,5],"queries":9}`,
		// Duplicate terminal events: only the first counts.
		`{"done":true,"queries":2,"skipped":1}` + "\n" + `{"done":true,"queries":77}`,
		// Quota terminal.
		`{"tuple":[3,0],"queries":1}` + "\n" + `{"done":true,"queries":1,"error":"quota","quotaExceeded":true}`,
		// Server failure terminal.
		`{"done":true,"queries":5,"error":"store exploded"}`,
		// Malformed tuples: wrong arity, out-of-domain value.
		`{"tuple":[1],"queries":1}`,
		`{"tuple":[9,5],"queries":1}`,
		`{"tuple":[1,101],"queries":1}`,
		// Tuple-less progress lines are legal.
		`{"queries":7}` + "\n" + `{"done":true,"queries":7}`,
		// Garbage.
		`not json at all`,
		`[1,2,3]`,
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add(s, uint8(0))
	}
	schema := fuzzSchema()
	f.Fuzz(func(t *testing.T, stream string, stopAfter uint8) {
		var emitted []dataspace.Tuple
		emit := func(tu dataspace.Tuple) bool {
			emitted = append(emitted, tu)
			// Exercise the client-side break path at a fuzzed position.
			return stopAfter == 0 || len(emitted) < int(stopAfter)
		}
		events := 0
		sawDone := false
		var term wire.CrawlEvent
		res, stopped, err := crawlStream(schema, strings.NewReader(stream), func(ev wire.CrawlEvent) {
			events++
			if ev.Done && !sawDone {
				sawDone, term = true, ev
			}
		}, emit)

		for i, tu := range emitted {
			if verr := tu.Validate(schema); verr != nil {
				t.Fatalf("emitted tuple %d does not validate: %v", i, verr)
			}
		}
		if stopped && err != nil {
			t.Fatalf("stopped stream still returned an error: %v", err)
		}
		if err == nil && !stopped {
			if !sawDone {
				t.Fatal("nil error without a terminal event")
			}
			if res.Queries != term.Queries || res.Skipped != term.Skipped ||
				res.Resolved != term.Resolved || res.Overflowed != term.Overflowed {
				t.Fatalf("terminal counters not surfaced: got %+v, terminal %+v", res, term)
			}
		}
		if errors.Is(err, hiddendb.ErrQuotaExceeded) && (!sawDone || !term.QuotaExceeded) {
			t.Fatal("quota error without a quota terminal event")
		}
		if sawDone && stopAfter == 0 {
			// Nothing after the first terminal line is consumed: the
			// decoder returns at the Done event, so the event count can
			// exceed the tuple count only by lines before it.
			if len(emitted) > events {
				t.Fatalf("emitted %d tuples from %d events", len(emitted), events)
			}
		}
	})
}

// FuzzCrawlReconnectSchedule drives the real auto-resume loop — DialRetry,
// Crawl, the skip cursor — against a live server whose /crawl responses
// are truncated per a fuzzed chaos schedule (one byte per connection: the
// fraction of the stream allowed through, 255 = undisturbed). However the
// schedule severs the streams, the stitched crawl must deliver the exact
// dataset bag once — no duplicates, no losses — and pay exactly the
// fault-free query count, since every reconnect replays the journaled
// prefix for free.
func FuzzCrawlReconnectSchedule(f *testing.F) {
	f.Add([]byte{128})
	f.Add([]byte{0, 0, 64})
	f.Add([]byte{20, 255, 90})
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6})

	ds, err := datagen.Random(datagen.RandomSpec{
		N:          80,
		CatDomains: []int{4},
		NumRanges:  [][2]int64{{0, 300}},
		DupRate:    0.05,
	}, 29)
	if err != nil {
		f.Fatal(err)
	}
	const k = 8

	// Fault-free reference cost, computed once.
	refLocal, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, 42)
	if err != nil {
		f.Fatal(err)
	}
	refHandler := httpserver.New(refLocal, httpserver.WithSessions(session.Config{}))
	refTS := httptest.NewServer(refHandler)
	refClient, err := DialToken(context.Background(), refTS.URL, "tok", nil)
	if err != nil {
		f.Fatal(err)
	}
	ref, err := refClient.Crawl(context.Background(), "", 0, nil)
	refTS.Close()
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, schedule []byte) {
		if len(schedule) > 8 {
			schedule = schedule[:8] // keep reconnect storms bounded
		}
		local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, 42)
		if err != nil {
			t.Fatal(err)
		}
		h := httpserver.New(local, httpserver.WithSessions(session.Config{}))
		// Translate the schedule into byte cut points lazily: a connection's
		// allowance is fraction/255 of however much it would have streamed.
		cuts := make([]int, len(schedule))
		for i, frac := range schedule {
			if frac == 255 {
				cuts[i] = -1 // undisturbed
			} else {
				cuts[i] = int(frac) * 40 // 0..~10KB into the stream
			}
		}
		front := &cuttingFront{inner: h, cuts: cuts}
		ts := httptest.NewServer(front)
		defer ts.Close()

		clock := hiddendb.NewSimClock()
		c, err := DialRetry(context.Background(), ts.URL, "tok", nil, RetryPolicy{
			MaxAttempts: len(schedule) + 2, // the schedule can never outlast the policy
			Clock:       clock,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Crawl(context.Background(), "", 0, nil)
		if err != nil {
			t.Fatalf("schedule %v: crawl failed: %v", schedule, err)
		}
		if !res.Tuples.EqualMultiset(ref.Tuples) {
			t.Fatalf("schedule %v: stitched bag has %d tuples, reference %d (duplicate or lost tuples)", schedule, len(res.Tuples), len(ref.Tuples))
		}
		if res.Queries != ref.Queries {
			t.Fatalf("schedule %v: paid %d queries, fault-free reference %d", schedule, res.Queries, ref.Queries)
		}
		if got := h.Sessions().TotalQueries(); got != ref.Queries {
			t.Fatalf("schedule %v: server-side paid count %d, want %d", schedule, got, ref.Queries)
		}
	})
}

// FuzzCrawlResumeStitching is the resume-cursor property: however a
// well-formed stream of n tuples is cut (the client breaks after cut
// tuples) and resumed (the server suppresses the skip=cut prefix and
// reports it in Skipped), the stitched sequence equals the uninterrupted
// stream — no tuple re-received, none lost. The fuzzer controls the tuple
// values, the stream length and the cut point.
func FuzzCrawlResumeStitching(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, uint8(2))
	f.Add([]byte{7, 7, 7}, uint8(0))
	f.Add([]byte{}, uint8(3))
	f.Add([]byte{255, 0, 128, 9}, uint8(200))
	schema := fuzzSchema()
	f.Fuzz(func(t *testing.T, vals []byte, cutRaw uint8) {
		if len(vals) > 64 {
			vals = vals[:64]
		}
		// Build the full, well-formed stream: one tuple per input byte.
		tuples := make([]dataspace.Tuple, len(vals))
		var full strings.Builder
		for i, v := range vals {
			tuples[i] = dataspace.Tuple{int64(1 + int(v)%4), int64(int(v)%201 - 100)}
			line, _ := json.Marshal(wire.CrawlEvent{Tuple: tuples[i], Queries: i + 1})
			full.Write(line)
			full.WriteByte('\n')
		}
		terminal := func(skipped int) string {
			line, _ := json.Marshal(wire.CrawlEvent{Done: true, Queries: len(vals), Tuples: len(vals) - skipped, Skipped: skipped})
			return string(line)
		}

		cut := int(cutRaw)
		if cut > len(tuples) {
			cut = len(tuples)
		}

		// First pass: the client breaks after cut tuples.
		var got []dataspace.Tuple
		_, stopped, err := crawlStream(schema, strings.NewReader(full.String()+terminal(0)), nil, func(tu dataspace.Tuple) bool {
			got = append(got, tu)
			return len(got) < cut || cut == 0
		})
		if cut > 0 && cut <= len(tuples) {
			if err != nil {
				t.Fatalf("first pass: %v", err)
			}
			if !stopped && cut < len(tuples) {
				t.Fatal("break did not stop the stream")
			}
		}

		// Resume pass: the server suppresses the first len(got) tuples.
		skip := len(got)
		var resume strings.Builder
		for i := skip; i < len(tuples); i++ {
			line, _ := json.Marshal(wire.CrawlEvent{Tuple: tuples[i], Queries: i + 1})
			resume.Write(line)
			resume.WriteByte('\n')
		}
		res, _, err := crawlStream(schema, strings.NewReader(resume.String()+terminal(skip)), nil, func(tu dataspace.Tuple) bool {
			got = append(got, tu)
			return true
		})
		if err != nil {
			t.Fatalf("resume pass: %v", err)
		}
		if res.Skipped != skip {
			t.Fatalf("resume reported %d skipped, want %d", res.Skipped, skip)
		}
		if len(got) != len(tuples) {
			t.Fatalf("stitched stream has %d tuples, want %d", len(got), len(tuples))
		}
		for i := range got {
			if !got[i].Equal(tuples[i]) {
				t.Fatalf("stitched tuple %d differs (duplicate or lost tuple at the cursor)", i)
			}
		}
	})
}
