package httpclient

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/httpserver"
	"hidb/internal/session"
	"hidb/internal/wire"
)

// flakyFront fronts a real handler, failing the first fail requests per
// path with the given status (0 = drop the connection instead).
type flakyFront struct {
	inner http.Handler

	mu     sync.Mutex
	fails  map[string]int
	status int
	header http.Header
	seen   map[string]int
}

func newFlakyFront(inner http.Handler, status int) *flakyFront {
	return &flakyFront{
		inner:  inner,
		fails:  make(map[string]int),
		status: status,
		header: make(http.Header),
		seen:   make(map[string]int),
	}
}

func (f *flakyFront) failNext(path string, n int) {
	f.mu.Lock()
	f.fails[path] = n
	f.mu.Unlock()
}

func (f *flakyFront) requests(path string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen[path]
}

func (f *flakyFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.seen[r.URL.Path]++
	inject := f.fails[r.URL.Path] > 0
	if inject {
		f.fails[r.URL.Path]--
	}
	status := f.status
	hdr := f.header.Clone()
	f.mu.Unlock()
	if !inject {
		f.inner.ServeHTTP(w, r)
		return
	}
	if status == 0 {
		panic(http.ErrAbortHandler) // sever the connection mid-request
	}
	for k, vs := range hdr {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	http.Error(w, "injected failure", status)
}

// retryClient dials through the flaky front with a fast deterministic
// policy on a virtual clock.
func retryClient(t *testing.T, front *flakyFront, policy RetryPolicy) *Client {
	t.Helper()
	ts := httptest.NewServer(front)
	t.Cleanup(ts.Close)
	c, err := DialRetry(context.Background(), ts.URL, "tok", nil, policy)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sessionHandler(t *testing.T, n, k int) *httpserver.Handler {
	t.Helper()
	ds := mixedDataset(t, n)
	local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, 42)
	if err != nil {
		t.Fatal(err)
	}
	return httpserver.New(local, httpserver.WithSessions(session.Config{}))
}

// TestRetryTransient5xx: a 500 burst shorter than the attempt cap is
// absorbed; queries succeed and pay exactly once.
func TestRetryTransient5xx(t *testing.T) {
	h := sessionHandler(t, 200, 16)
	front := newFlakyFront(h, http.StatusInternalServerError)
	clock := hiddendb.NewSimClock()
	c := retryClient(t, front, RetryPolicy{MaxAttempts: 4, Clock: clock})

	front.failNext("/query", 2)
	q := dataspace.UniverseQuery(c.Schema())
	if _, err := c.Answer(context.Background(), q); err != nil {
		t.Fatalf("answer through 500 burst: %v", err)
	}
	if got := front.requests("/query"); got != 3 {
		t.Fatalf("query took %d requests, want 3 (2 failures + success)", got)
	}
	if h.Queries() != 1 {
		t.Fatalf("server charged %d queries, want 1", h.Queries())
	}
	if clock.Now() == 0 {
		t.Fatal("retries slept no virtual time")
	}
}

// TestRetrySeveredConnection: a connection dropped mid-request (no
// response at all) is retried like any transient failure.
func TestRetrySeveredConnection(t *testing.T) {
	h := sessionHandler(t, 200, 16)
	front := newFlakyFront(h, 0) // panic(http.ErrAbortHandler)
	c := retryClient(t, front, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})

	front.failNext("/query", 1)
	if _, err := c.Answer(context.Background(), dataspace.UniverseQuery(c.Schema())); err != nil {
		t.Fatalf("answer through dropped connection: %v", err)
	}
	if got := front.requests("/query"); got != 2 {
		t.Fatalf("query took %d requests, want 2", got)
	}
}

// TestRetryExhaustionIsTyped: a failure outlasting MaxAttempts surfaces as
// a *TransportError wrapping the last attempt's error.
func TestRetryExhaustionIsTyped(t *testing.T) {
	h := sessionHandler(t, 200, 16)
	front := newFlakyFront(h, http.StatusBadGateway)
	clock := hiddendb.NewSimClock()
	c := retryClient(t, front, RetryPolicy{MaxAttempts: 3, Clock: clock})

	front.failNext("/query", 100)
	_, err := c.Answer(context.Background(), dataspace.UniverseQuery(c.Schema()))
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TransportError", err)
	}
	if te.Op != "query" || te.Attempts != 3 {
		t.Fatalf("TransportError{Op: %q, Attempts: %d}, want query/3", te.Op, te.Attempts)
	}
	if got := front.requests("/query"); got != 3 {
		t.Fatalf("made %d requests, want 3", got)
	}
}

// TestRetryBudgetBrakesStorm: the client-wide budget caps retries across
// calls, so a long outage cannot multiply into a request storm.
func TestRetryBudgetBrakesStorm(t *testing.T) {
	h := sessionHandler(t, 200, 16)
	front := newFlakyFront(h, http.StatusServiceUnavailable)
	clock := hiddendb.NewSimClock()
	c := retryClient(t, front, RetryPolicy{MaxAttempts: 10, Budget: 3, Clock: clock})

	front.failNext("/query", 100)
	q := dataspace.UniverseQuery(c.Schema())
	_, err := c.Answer(context.Background(), q)
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TransportError", err)
	}
	// 1 first attempt + 3 budgeted retries.
	if got := front.requests("/query"); got != 4 {
		t.Fatalf("made %d requests, want 4 (budget of 3 retries)", got)
	}
	// The budget is spent for good: the next call fails after its first try.
	_, err = c.Answer(context.Background(), q)
	if !errors.As(err, &te) || te.Attempts != 1 {
		t.Fatalf("post-budget call: err = %v, want 1-attempt *TransportError", err)
	}
}

// TestRetryHonorsRetryAfter: an overloaded server's Retry-After stretches
// the backoff to at least what it asked for.
func TestRetryHonorsRetryAfter(t *testing.T) {
	h := sessionHandler(t, 200, 16)
	front := newFlakyFront(h, http.StatusServiceUnavailable)
	front.header.Set("Retry-After", "7")
	clock := hiddendb.NewSimClock()
	c := retryClient(t, front, RetryPolicy{MaxAttempts: 2, Clock: clock})

	front.failNext("/query", 1)
	if _, err := c.Answer(context.Background(), dataspace.UniverseQuery(c.Schema())); err != nil {
		t.Fatalf("answer through shed request: %v", err)
	}
	if clock.Now() < 7*time.Second {
		t.Fatalf("slept %v of virtual time, want >= 7s (Retry-After)", clock.Now())
	}
}

// TestRetryDeterministicSchedule: equal seeds give equal backoff
// schedules; different seeds differ (jitter is real but reproducible).
func TestRetryDeterministicSchedule(t *testing.T) {
	elapsed := func(seed uint64) time.Duration {
		h := sessionHandler(t, 200, 16)
		front := newFlakyFront(h, http.StatusInternalServerError)
		clock := hiddendb.NewSimClock()
		c := retryClient(t, front, RetryPolicy{MaxAttempts: 5, JitterSeed: seed, Clock: clock})
		front.failNext("/query", 3)
		if _, err := c.Answer(context.Background(), dataspace.UniverseQuery(c.Schema())); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return clock.Now()
	}
	a1, a2, b := elapsed(1), elapsed(1), elapsed(2)
	if a1 != a2 {
		t.Fatalf("same seed, different schedules: %v vs %v", a1, a2)
	}
	if a1 == b {
		t.Fatalf("different seeds, identical schedules: %v", a1)
	}
}

// TestNoRetryOnProtocolAnswers: 429 (quota) and 404 (legacy probe) are
// answers, not failures — they must not burn retries.
func TestNoRetryOnProtocolAnswers(t *testing.T) {
	ds := mixedDataset(t, 200)
	local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	h := httpserver.New(local, httpserver.WithSessions(session.Config{Quota: 1}))
	front := newFlakyFront(h, 0)
	clock := hiddendb.NewSimClock()
	c := retryClient(t, front, RetryPolicy{MaxAttempts: 5, Clock: clock})

	qs := distinctRetryQueries(ds.Schema, 3)
	if _, err := c.Answer(context.Background(), qs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Answer(context.Background(), qs[1]); !errors.Is(err, hiddendb.ErrQuotaExceeded) {
		t.Fatalf("over-quota answer: %v, want ErrQuotaExceeded", err)
	}
	if got := front.requests("/query"); got != 2 {
		t.Fatalf("429 was retried: %d requests to /query, want 2", got)
	}
	if clock.Now() != 0 {
		t.Fatalf("protocol answers slept %v of backoff", clock.Now())
	}
}

// TestNoRetryOnCancel: the caller hanging up surfaces as the ctx error
// immediately — no retries, no TransportError.
func TestNoRetryOnCancel(t *testing.T) {
	h := sessionHandler(t, 200, 16)
	front := newFlakyFront(h, http.StatusInternalServerError)
	c := retryClient(t, front, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Answer(ctx, dataspace.UniverseQuery(c.Schema()))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var te *TransportError
	if errors.As(err, &te) {
		t.Fatal("cancellation wrapped in TransportError")
	}
}

// distinctRetryQueries builds n distinct single-range queries.
func distinctRetryQueries(sch *dataspace.Schema, n int) []dataspace.Query {
	qs := make([]dataspace.Query, n)
	for i := range qs {
		lo := int64(i * 3)
		qs[i] = dataspace.UniverseQuery(sch).WithRange(2, lo, lo+2)
	}
	return qs
}

// cuttingFront fronts a handler and truncates /crawl response bodies at a
// scripted sequence of byte counts (one per request; -1 = no cut).
type cuttingFront struct {
	inner http.Handler

	mu    sync.Mutex
	cuts  []int
	crawl atomic.Int64
}

func (f *cuttingFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/crawl" {
		f.inner.ServeHTTP(w, r)
		return
	}
	n := f.crawl.Add(1)
	f.mu.Lock()
	cut := -1
	if int(n)-1 < len(f.cuts) {
		cut = f.cuts[n-1]
	}
	f.mu.Unlock()
	if cut < 0 {
		f.inner.ServeHTTP(w, r)
		return
	}
	f.inner.ServeHTTP(&truncatingWriter{ResponseWriter: w, limit: cut}, r)
}

// truncatingWriter silently discards everything past limit bytes, then
// aborts the connection when the handler finishes — the wire picture of a
// stream severed mid-flight.
type truncatingWriter struct {
	http.ResponseWriter
	written int
	limit   int
}

func (tw *truncatingWriter) Write(p []byte) (int, error) {
	room := tw.limit - tw.written
	if room <= 0 {
		return len(p), nil // swallowed; caller sees success
	}
	if room > len(p) {
		room = len(p)
	}
	n, err := tw.ResponseWriter.Write(p[:room])
	tw.written += n
	if err != nil {
		return n, err
	}
	return len(p), nil
}

// TestCrawlResumesSeveredStream: a /crawl stream cut mid-flight is
// resumed via the skip cursor — the full bag arrives exactly once, and
// the extraction pays no more queries than an undisturbed crawl.
func TestCrawlResumesSeveredStream(t *testing.T) {
	ds := mixedDataset(t, 300)
	k := 16

	// Fault-free reference cost.
	refLocal, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, 42)
	if err != nil {
		t.Fatal(err)
	}
	refHandler := httpserver.New(refLocal, httpserver.WithSessions(session.Config{}))
	refTS := httptest.NewServer(refHandler)
	refClient, err := DialToken(context.Background(), refTS.URL, "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refClient.Crawl(context.Background(), "", 0, nil)
	refTS.Close()
	if err != nil {
		t.Fatal(err)
	}

	for _, cuts := range [][]int{
		{900},            // one mid-stream cut
		{900, 2000, 100}, // repeated cuts, including an early one
		{0, 0, 500},      // cut before any payload, twice
		{900, -1, 700},   // recover, then cut a later reconnect
	} {
		t.Run(fmt.Sprintf("cuts=%v", cuts), func(t *testing.T) {
			local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, 42)
			if err != nil {
				t.Fatal(err)
			}
			h := httpserver.New(local, httpserver.WithSessions(session.Config{}))
			front := &cuttingFront{inner: h, cuts: cuts}
			ts := httptest.NewServer(front)
			defer ts.Close()
			clock := hiddendb.NewSimClock()
			c, err := DialRetry(context.Background(), ts.URL, "tok", nil, RetryPolicy{MaxAttempts: 4, Clock: clock})
			if err != nil {
				t.Fatal(err)
			}

			res, err := c.Crawl(context.Background(), "", 0, nil)
			if err != nil {
				t.Fatalf("resumed crawl failed: %v", err)
			}
			if !res.Tuples.EqualMultiset(ref.Tuples) {
				t.Fatalf("stitched bag differs from reference: %d vs %d tuples", len(res.Tuples), len(ref.Tuples))
			}
			if res.Queries != ref.Queries {
				t.Fatalf("resumption cost extra: %d paid queries, fault-free reference %d", res.Queries, ref.Queries)
			}
			if got := h.Sessions().TotalQueries(); got != ref.Queries {
				t.Fatalf("server-side paid count %d, want %d", got, ref.Queries)
			}
		})
	}
}

// TestCrawlSeqResumesWithoutDuplicates: the iterator form reconnects
// transparently and never yields a tuple twice.
func TestCrawlSeqResumesWithoutDuplicates(t *testing.T) {
	ds := mixedDataset(t, 300)
	local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	h := httpserver.New(local, httpserver.WithSessions(session.Config{}))
	front := &cuttingFront{inner: h, cuts: []int{700, 2500}}
	ts := httptest.NewServer(front)
	defer ts.Close()
	clock := hiddendb.NewSimClock()
	c, err := DialRetry(context.Background(), ts.URL, "tok", nil, RetryPolicy{MaxAttempts: 4, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}

	var got dataspace.Bag
	for tu, err := range c.CrawlSeq(context.Background(), "", 0) {
		if err != nil {
			t.Fatalf("iterator failed: %v", err)
		}
		got = append(got, tu)
	}
	if !got.EqualMultiset(ds.Tuples) {
		t.Fatalf("stitched bag has %d tuples, dataset %d (duplicate or lost tuples)", len(got), len(ds.Tuples))
	}
	if front.crawl.Load() != 3 {
		t.Fatalf("crawl opened %d connections, want 3", front.crawl.Load())
	}
}

// TestCrawlSeveredWithoutRetryStillFails pins the pre-retry behavior: a
// plain DialToken client reports the truncation instead of resuming.
func TestCrawlSeveredWithoutRetryStillFails(t *testing.T) {
	h := sessionHandler(t, 200, 16)
	front := &cuttingFront{inner: h, cuts: []int{500}}
	ts := httptest.NewServer(front)
	defer ts.Close()
	c, err := DialToken(context.Background(), ts.URL, "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Crawl(context.Background(), "", 0, nil)
	if err == nil || !strings.Contains(err.Error(), "crawl stream") {
		t.Fatalf("severed stream without retry: err = %v, want stream error", err)
	}
}

// TestCrawlGivesUpAfterNoProgress: reconnects that never advance the
// cursor stop at the policy's attempt cap with a typed error.
func TestCrawlGivesUpAfterNoProgress(t *testing.T) {
	h := sessionHandler(t, 200, 16)
	cuts := make([]int, 32)
	for i := range cuts {
		cuts[i] = 0 // every stream dies before its first byte
	}
	front := &cuttingFront{inner: h, cuts: cuts}
	ts := httptest.NewServer(front)
	defer ts.Close()
	clock := hiddendb.NewSimClock()
	c, err := DialRetry(context.Background(), ts.URL, "tok", nil, RetryPolicy{MaxAttempts: 3, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Crawl(context.Background(), "", 0, nil)
	var te *TransportError
	if !errors.As(err, &te) || te.Op != "crawl" {
		t.Fatalf("err = %v, want crawl *TransportError", err)
	}
	if n := front.crawl.Load(); n != 3 {
		t.Fatalf("opened %d streams, want 3 (MaxAttempts)", n)
	}
}

// TestPerAttemptTimeout: an attempt that never responds is abandoned
// after PerAttempt and retried; the caller's ctx stays intact.
func TestPerAttemptTimeout(t *testing.T) {
	h := sessionHandler(t, 200, 16)
	var hang atomic.Int64
	hang.Store(1)
	front := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/query" && hang.Add(-1) >= 0 {
			// Drain the body so the server's background read can detect
			// the client abandoning the attempt and cancel the ctx.
			io.Copy(io.Discard, r.Body)
			select {
			case <-r.Context().Done(): // hang until the attempt is abandoned
			case <-time.After(5 * time.Second): // test-failure backstop
			}
			return
		}
		h.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(front)
	defer ts.Close()
	c, err := DialRetry(context.Background(), ts.URL, "tok", nil, RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		PerAttempt:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Answer(context.Background(), dataspace.UniverseQuery(c.Schema())); err != nil {
		t.Fatalf("answer through hung attempt: %v", err)
	}
}

// TestStreamEventsSurviveResume: onEvent keeps observing lines across
// reconnects, and the terminal event arrives exactly once.
func TestStreamEventsSurviveResume(t *testing.T) {
	h := sessionHandler(t, 200, 16)
	front := &cuttingFront{inner: h, cuts: []int{800}}
	ts := httptest.NewServer(front)
	defer ts.Close()
	clock := hiddendb.NewSimClock()
	c, err := DialRetry(context.Background(), ts.URL, "tok", nil, RetryPolicy{MaxAttempts: 3, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	terminals := 0
	c.Crawl(context.Background(), "", 0, func(ev wire.CrawlEvent) {
		if ev.Done {
			terminals++
		}
	})
	if terminals != 1 {
		t.Fatalf("observed %d terminal events, want 1", terminals)
	}
}

// drainingFront answers the first /query with a genuinely draining
// handler — real drain shed, real Retry-After hint — and hands everything
// after it to a healthy twin, modelling a load balancer flipping away
// from a node mid-restart.
type drainingFront struct {
	draining, healthy http.Handler
	served            atomic.Int32
}

func (f *drainingFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/query" && f.served.Add(1) == 1 {
		f.draining.ServeHTTP(w, r)
		return
	}
	f.healthy.ServeHTTP(w, r)
}

// TestRetryHonorsDrainHint: a drain shed's Retry-After is deliberately
// much larger than a capacity shed's — one-way drains are not worth
// hammering — and the retrying client must actually stay away that long.
// This pins the server hint and the client obedience together: shrinking
// either breaks the bargain.
func TestRetryHonorsDrainHint(t *testing.T) {
	drained := sessionHandler(t, 200, 16)
	drained.Drain()
	front := &drainingFront{draining: drained, healthy: sessionHandler(t, 200, 16)}

	ts := httptest.NewServer(front)
	t.Cleanup(ts.Close)
	clock := hiddendb.NewSimClock()
	c, err := DialRetry(context.Background(), ts.URL, "tok", nil, RetryPolicy{MaxAttempts: 2, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := c.Answer(context.Background(), dataspace.UniverseQuery(c.Schema())); err != nil {
		t.Fatalf("answer through draining node: %v", err)
	}
	// The drain hint is 30s vs the capacity shed's 1s; riding the real
	// header proves the distinct hint survives the whole stack.
	if clock.Now() < 30*time.Second {
		t.Fatalf("slept %v of virtual time, want >= 30s (the drain Retry-After)", clock.Now())
	}
	if got := front.served.Load(); got != 2 {
		t.Fatalf("served %d /query requests, want 2 (the shed + the retry)", got)
	}
}
