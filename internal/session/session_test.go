package session

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// testShared builds a small shared server plus a counting wrapper so tests
// can observe exactly how many queries reached the store.
func testShared(t *testing.T, n, k int) (*hiddendb.Counting, *datagen.Dataset) {
	t.Helper()
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          n,
		CatDomains: []int{4},
		NumRanges:  [][2]int64{{0, 1000}},
		DupRate:    0.05,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, 42)
	if err != nil {
		t.Fatal(err)
	}
	return hiddendb.NewCounting(local), ds
}

// distinctQueries builds n distinct single-value queries.
func distinctQueries(sch *dataspace.Schema, n int) []dataspace.Query {
	qs := make([]dataspace.Query, n)
	for i := range qs {
		lo := int64(i * 3)
		qs[i] = dataspace.UniverseQuery(sch).WithRange(1, lo, lo+2)
	}
	return qs
}

// TestPerTokenIsolation: two tokens draw on separate budgets and journals
// over one shared store.
func TestPerTokenIsolation(t *testing.T) {
	shared, ds := testShared(t, 200, 10)
	tbl := NewTable(shared, Config{Quota: 3})

	a, err := tbl.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	b, err := tbl.Get("bob")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("distinct tokens share a session")
	}
	if again, _ := tbl.Get("alice"); again != a {
		t.Fatal("same token resolved to a different session")
	}

	qs := distinctQueries(ds.Schema, 5)
	// Alice exhausts her budget.
	res, err := a.Server().AnswerBatch(context.Background(), qs)
	if !errors.Is(err, hiddendb.ErrQuotaExceeded) || len(res) != 3 {
		t.Fatalf("alice: %d results, err=%v; want 3 + quota", len(res), err)
	}
	if a.Queries() != 3 || a.Remaining() != 0 {
		t.Fatalf("alice counters: queries=%d remaining=%d", a.Queries(), a.Remaining())
	}
	// Bob's budget is untouched.
	if b.Queries() != 0 || b.Remaining() != 3 {
		t.Fatalf("bob corrupted by alice: queries=%d remaining=%d", b.Queries(), b.Remaining())
	}
	if _, err := b.Server().Answer(context.Background(), qs[0]); err != nil {
		t.Fatalf("bob blocked by alice's quota: %v", err)
	}
	// Journals are private too.
	if a.JournalLen() != 3 || b.JournalLen() != 1 {
		t.Fatalf("journal lengths: alice=%d bob=%d, want 3/1", a.JournalLen(), b.JournalLen())
	}
}

// TestReplaysAndHitsAreFree: a query already journaled or memoized does
// not debit the budget and does not touch the shared store.
func TestReplaysAndHitsAreFree(t *testing.T) {
	shared, ds := testShared(t, 200, 10)
	tbl := NewTable(shared, Config{Quota: 2})
	sess, err := tbl.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	q := distinctQueries(ds.Schema, 1)[0]
	if _, err := sess.Server().Answer(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	storeBefore := shared.Queries()
	for i := 0; i < 5; i++ {
		if _, err := sess.Server().Answer(context.Background(), q); err != nil {
			t.Fatalf("repeat %d: %v", i, err)
		}
	}
	if shared.Queries() != storeBefore {
		t.Errorf("repeats reached the store: %d extra", shared.Queries()-storeBefore)
	}
	if sess.Remaining() != 1 {
		t.Errorf("repeats debited the budget: remaining=%d, want 1", sess.Remaining())
	}
	if sess.Queries() != 1 {
		t.Errorf("repeats were counted as paid: %d, want 1", sess.Queries())
	}
	if sess.Replays() == 0 {
		t.Error("no replay recorded for a journaled repeat")
	}
}

// TestTTLEviction: a session idle past the TTL is evicted; the token's
// next request builds a fresh session with a fresh budget, and aggregate
// counters survive the eviction.
func TestTTLEviction(t *testing.T) {
	shared, ds := testShared(t, 200, 10)
	tbl := NewTable(shared, Config{Quota: 2, TTL: time.Hour})
	clock := time.Unix(1_700_000_000, 0)
	tbl.now = func() time.Time { return clock }

	sess, err := tbl.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	qs := distinctQueries(ds.Schema, 3)
	if _, err := sess.Server().AnswerBatch(context.Background(), qs); !errors.Is(err, hiddendb.ErrQuotaExceeded) {
		t.Fatalf("want quota exhaustion, got %v", err)
	}

	// Within the TTL the same (exhausted) session is returned.
	clock = clock.Add(30 * time.Minute)
	same, _ := tbl.Get("alice")
	if same != sess {
		t.Fatal("session evicted before its TTL")
	}

	// Past the TTL the budget window has reset.
	clock = clock.Add(2 * time.Hour)
	fresh, err := tbl.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	if fresh == sess {
		t.Fatal("expired session not evicted")
	}
	if fresh.Remaining() != 2 {
		t.Fatalf("fresh session remaining=%d, want a full budget of 2", fresh.Remaining())
	}
	if tbl.Evicted() != 1 {
		t.Fatalf("evicted count %d, want 1", tbl.Evicted())
	}
	if got := tbl.TotalQueries(); got != 2 {
		t.Fatalf("aggregate queries %d after eviction, want the 2 paid", got)
	}
}

// TestTouchKeepsSessionAlive: in-request activity (a long server-side
// crawl touching its session per paid query) refreshes the TTL exactly as
// new requests do, so an actively crawling session is never evicted.
func TestTouchKeepsSessionAlive(t *testing.T) {
	shared, _ := testShared(t, 100, 10)
	tbl := NewTable(shared, Config{TTL: time.Hour})
	clock := time.Unix(1_700_000_000, 0)
	tbl.now = func() time.Time { return clock }

	sess, err := tbl.Get("crawler")
	if err != nil {
		t.Fatal(err)
	}
	// Touch every 45 minutes across a 3-hour "crawl": the session must
	// survive well past its 1-hour idle TTL.
	for i := 0; i < 4; i++ {
		clock = clock.Add(45 * time.Minute)
		tbl.Touch("crawler")
	}
	if got, _ := tbl.Get("crawler"); got != sess {
		t.Fatal("actively touched session was evicted")
	}
	// Silence falls: the TTL applies again.
	clock = clock.Add(2 * time.Hour)
	if got, _ := tbl.Get("crawler"); got == sess {
		t.Fatal("idle session survived its TTL")
	}
	// Touching an absent token is a no-op, not a create.
	tbl.Touch("ghost")
	if tbl.Len() != 1 {
		t.Fatalf("Touch created a session: %d live", tbl.Len())
	}
}

// TestLRUCap: the table evicts least-recently-used tokens beyond
// MaxSessions.
func TestLRUCap(t *testing.T) {
	shared, _ := testShared(t, 50, 10)
	tbl := NewTable(shared, Config{MaxSessions: 2})
	a, _ := tbl.Get("a")
	if _, err := tbl.Get("b"); err != nil {
		t.Fatal(err)
	}
	// Touch a so b is the LRU victim when c arrives.
	if got, _ := tbl.Get("a"); got != a {
		t.Fatal("touch rebuilt the session")
	}
	if _, err := tbl.Get("c"); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 || tbl.Evicted() != 1 {
		t.Fatalf("len=%d evicted=%d, want 2/1", tbl.Len(), tbl.Evicted())
	}
	if got, _ := tbl.Get("a"); got != a {
		t.Error("recently used session was evicted instead of the LRU one")
	}
}

// TestJournalPersistence: an evicted session's journal is reloaded on
// reconnect, and the fresh budget is spent only on new queries.
func TestJournalPersistence(t *testing.T) {
	shared, ds := testShared(t, 200, 10)
	dir := t.TempDir()
	tbl := NewTable(shared, Config{Quota: 3, TTL: time.Hour, JournalDir: dir})
	clock := time.Unix(1_700_000_000, 0)
	tbl.now = func() time.Time { return clock }

	qs := distinctQueries(ds.Schema, 5)
	sess, err := tbl.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Server().AnswerBatch(context.Background(), qs)
	if !errors.Is(err, hiddendb.ErrQuotaExceeded) || len(res) != 3 {
		t.Fatalf("first window: %d results, err=%v", len(res), err)
	}
	want := make([]hiddendb.Result, len(res))
	copy(want, res)

	// Next budget window: the journal fast-forwards the first 3 queries
	// for free and the fresh budget pays only for the remaining 2.
	clock = clock.Add(2 * time.Hour)
	fresh, err := tbl.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	if fresh == sess {
		t.Fatal("session survived the TTL")
	}
	if fresh.JournalLen() != 3 {
		t.Fatalf("reloaded journal has %d entries, want 3", fresh.JournalLen())
	}
	storeBefore := shared.Queries()
	res2, err := fresh.Server().AnswerBatch(context.Background(), qs)
	if err != nil || len(res2) != 5 {
		t.Fatalf("second window: %d results, err=%v; want all 5", len(res2), err)
	}
	for i := range want {
		if !res2[i].Tuples.EqualMultiset(want[i].Tuples) || res2[i].Overflow != want[i].Overflow {
			t.Fatalf("replayed response %d differs from the paid one", i)
		}
	}
	if fresh.Queries() != 2 || fresh.Replays() != 3 {
		t.Fatalf("second window paid %d queries with %d replays, want 2/3", fresh.Queries(), fresh.Replays())
	}
	if shared.Queries() != storeBefore+2 {
		t.Fatalf("store saw %d new queries, want 2", shared.Queries()-storeBefore)
	}
	if err := tbl.PersistErr(); err != nil {
		t.Fatalf("persistence error: %v", err)
	}
}

// TestClosePersistsLiveJournals: Close flushes live sessions' journals so a
// server shutdown loses nothing.
func TestClosePersistsLiveJournals(t *testing.T) {
	shared, ds := testShared(t, 200, 10)
	dir := t.TempDir()
	tbl := NewTable(shared, Config{JournalDir: dir})
	sess, err := tbl.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Server().Answer(context.Background(), distinctQueries(ds.Schema, 1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 0 {
		t.Fatalf("close left %d live sessions", tbl.Len())
	}
	// A second table over the same dir sees the journal.
	tbl2 := NewTable(shared, Config{JournalDir: dir})
	again, err := tbl2.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	if again.JournalLen() != 1 {
		t.Fatalf("journal not persisted on Close: len=%d", again.JournalLen())
	}
}

// TestTokenFilenames: tokens with filesystem-hostile characters persist
// without collisions.
func TestTokenFilenames(t *testing.T) {
	shared, ds := testShared(t, 100, 10)
	dir := t.TempDir()
	tbl := NewTable(shared, Config{JournalDir: dir})
	tokens := []string{"", "a/b", "a\\b", "..", "käse?*|", "a b"}
	q := distinctQueries(ds.Schema, 1)[0]
	for _, tok := range tokens {
		sess, err := tbl.Get(tok)
		if err != nil {
			t.Fatalf("token %q: %v", tok, err)
		}
		if _, err := sess.Server().Answer(context.Background(), q); err != nil {
			t.Fatalf("token %q: %v", tok, err)
		}
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	tbl2 := NewTable(shared, Config{JournalDir: dir})
	for _, tok := range tokens {
		sess, err := tbl2.Get(tok)
		if err != nil {
			t.Fatalf("reload token %q: %v", tok, err)
		}
		if sess.JournalLen() != 1 {
			t.Errorf("token %q journal len %d, want 1", tok, sess.JournalLen())
		}
	}
}

// TestConcurrentGets: many goroutines resolving overlapping tokens get
// exactly one session per token, with batches in flight.
func TestConcurrentGets(t *testing.T) {
	shared, ds := testShared(t, 300, 10)
	tbl := NewTable(shared, Config{Quota: 1000})
	const tokens = 8
	const perToken = 4
	qs := distinctQueries(ds.Schema, 6)

	var wg sync.WaitGroup
	got := make([][]*Session, tokens)
	for i := 0; i < tokens; i++ {
		got[i] = make([]*Session, perToken)
		for g := 0; g < perToken; g++ {
			wg.Add(1)
			go func(i, g int) {
				defer wg.Done()
				sess, err := tbl.Get(fmt.Sprintf("tok-%d", i))
				if err != nil {
					t.Error(err)
					return
				}
				got[i][g] = sess
				if _, err := sess.Server().AnswerBatch(context.Background(), qs); err != nil {
					t.Error(err)
				}
			}(i, g)
		}
	}
	wg.Wait()
	for i := 0; i < tokens; i++ {
		for g := 1; g < perToken; g++ {
			if got[i][g] != got[i][0] {
				t.Fatalf("token %d resolved to multiple sessions", i)
			}
		}
		// All goroutines of a token issued the same 6 distinct queries.
		// Concurrent identical batches may each pay before the memo is
		// populated (the memo is not a singleflight), but every distinct
		// query is paid at least once and no more than once per batch.
		if q := got[i][0].Queries(); q < 6 || q > perToken*6 {
			t.Errorf("token %d paid %d queries, want 6..%d", i, q, perToken*6)
		}
	}
	if total := tbl.TotalQueries(); total < tokens*6 {
		t.Errorf("aggregate %d queries, want at least %d", total, tokens*6)
	}
}
