package session

import (
	"bytes"
	"context"
	"os"
	"testing"
)

// payQueries runs n distinct queries through the token's session and
// returns how many reached the shared store for them.
func payQueries(t *testing.T, tbl *Table, token string, n int) int {
	t.Helper()
	sess, err := tbl.Get(token)
	if err != nil {
		t.Fatal(err)
	}
	before := sess.Queries()
	qs := distinctQueries(tbl.shared.Schema(), n)
	for _, q := range qs {
		if _, err := sess.Server().Answer(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	return sess.Queries() - before
}

// TestCrashMidPersistLosesOnlyTail is the crash-safety regression test: a
// journal file torn mid-persist (the classic crash-during-write) must cost
// the client at most the unflushed tail on reload — never the whole
// session. The damaged file is quarantined, the recovery is counted, and a
// re-crawl re-pays exactly the lost queries.
func TestCrashMidPersistLosesOnlyTail(t *testing.T) {
	shared, _ := testShared(t, 200, 10)
	dir := t.TempDir()
	cfg := Config{JournalDir: dir}

	const n = 12
	tbl := NewTable(shared, cfg)
	paid := payQueries(t, tbl, "carol", n)
	if paid != n {
		t.Fatalf("fresh session paid %d of %d queries", paid, n)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}

	path := tbl.journalPath("carol")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Crash scenarios: the tear's position bounds the loss. Cutting inside
	// the trailer loses nothing; cutting mid-file loses only the tail.
	tears := []struct {
		name    string
		cut     int
		minKeep int
	}{
		{"inside trailer", len(raw) - 3, n},
		{"mid file", 3 * len(raw) / 5, 1},
	}
	for _, tear := range tears {
		t.Run(tear.name, func(t *testing.T) {
			if err := os.WriteFile(path, raw[:tear.cut], 0o644); err != nil {
				t.Fatal(err)
			}
			os.Remove(path + ".corrupt")

			reborn := NewTable(shared, cfg)
			sess, err := reborn.Get("carol")
			if err != nil {
				t.Fatalf("torn journal failed the session: %v", err)
			}
			if reborn.RecoveredJournals() != 1 {
				t.Fatalf("RecoveredJournals = %d, want 1", reborn.RecoveredJournals())
			}
			kept := sess.JournalLen()
			if kept < tear.minKeep || kept > n {
				t.Fatalf("recovered %d entries, want between %d and %d", kept, tear.minKeep, n)
			}
			if _, err := os.Stat(path + ".corrupt"); err != nil {
				t.Fatalf("damaged journal not quarantined: %v", err)
			}

			// Resuming the same workload re-pays exactly the lost tail.
			repaid := payQueries(t, reborn, "carol", n)
			if repaid != n-kept {
				t.Fatalf("resume re-paid %d queries, want %d (the lost tail)", repaid, n-kept)
			}
			if err := reborn.Close(); err != nil {
				t.Fatal(err)
			}
			// The re-persisted journal is complete again.
			again, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again, raw) {
				// Same queries in the same order produce the same bytes;
				// allow a superset only if lengths differ (ordering of the
				// re-paid tail may interleave) — but entry count must match.
				final := NewTable(shared, cfg)
				s, err := final.Get("carol")
				if err != nil {
					t.Fatal(err)
				}
				if s.JournalLen() != n {
					t.Fatalf("re-persisted journal holds %d entries, want %d", s.JournalLen(), n)
				}
			}
		})
	}
}

// TestHeaderDestroyedStartsFresh pins the worst case: when not even the
// journal header survives, the session starts from scratch (recovery has
// nothing to offer) but still works, and the wreck is quarantined.
func TestHeaderDestroyedStartsFresh(t *testing.T) {
	shared, _ := testShared(t, 200, 10)
	dir := t.TempDir()
	cfg := Config{JournalDir: dir}

	tbl := NewTable(shared, cfg)
	payQueries(t, tbl, "dave", 5)
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	path := tbl.journalPath("dave")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the magic but destroy the header record.
	if err := os.WriteFile(path, raw[:10], 0o644); err != nil {
		t.Fatal(err)
	}

	reborn := NewTable(shared, cfg)
	sess, err := reborn.Get("dave")
	if err != nil {
		t.Fatalf("destroyed journal failed the session: %v", err)
	}
	if sess.JournalLen() != 0 {
		t.Fatalf("fresh session has %d journal entries", sess.JournalLen())
	}
	if reborn.RecoveredJournals() != 1 {
		t.Fatalf("RecoveredJournals = %d, want 1", reborn.RecoveredJournals())
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("wreck not quarantined: %v", err)
	}
	if repaid := payQueries(t, reborn, "dave", 5); repaid != 5 {
		t.Fatalf("fresh session paid %d of 5", repaid)
	}
}
