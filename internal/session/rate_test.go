package session

import (
	"context"
	"errors"
	"testing"
	"time"

	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// rateTable builds a session table with per-client throttling over a small
// random store.
func rateTable(t *testing.T, cfg Config) (*Table, *datagen.Dataset) {
	t.Helper()
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          300,
		CatDomains: []int{4},
		NumRanges:  [][2]int64{{0, 1000}},
		DupRate:    0.05,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	return NewTable(srv, cfg), ds
}

// TestSessionRateLimitFreeTiers: burst queries pass immediately, and
// journal replays ride above the limiter — a replayed query needs no
// token, so resuming a journaled crawl is never throttled.
func TestSessionRateLimitFreeTiers(t *testing.T) {
	tbl, ds := rateTable(t, Config{RatePerSecond: 0.5, RateBurst: 2})
	sess, err := tbl.Get("tok")
	if err != nil {
		t.Fatal(err)
	}
	q1 := dataspace.UniverseQuery(ds.Schema).WithRange(1, 0, 10)
	q2 := dataspace.UniverseQuery(ds.Schema).WithRange(1, 11, 20)

	start := time.Now()
	if _, err := sess.Server().Answer(context.Background(), q1); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Server().Answer(context.Background(), q2); err != nil {
		t.Fatal(err)
	}
	// Replays of both paid queries: above the limiter, so no token and no
	// wait even though the bucket is now empty (refill is 2s/query).
	for _, q := range []dataspace.Query{q1, q2} {
		if _, err := sess.Server().Answer(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("burst + replays took %v — replays are being throttled", elapsed)
	}
	if sess.Queries() != 2 || sess.Replays() != 2 {
		t.Fatalf("paid %d / replayed %d, want 2 / 2", sess.Queries(), sess.Replays())
	}
}

// TestSessionRateLimitCancelsPromptly: a query waiting out the bucket
// aborts the moment its request ctx dies — a throttled client hanging up
// does not park a goroutine for the rest of the refill.
func TestSessionRateLimitCancelsPromptly(t *testing.T) {
	tbl, ds := rateTable(t, Config{RatePerSecond: 0.1, RateBurst: 1}) // 10s/query refill
	sess, err := tbl.Get("tok")
	if err != nil {
		t.Fatal(err)
	}
	u := dataspace.UniverseQuery(ds.Schema)
	if _, err := sess.Server().Answer(context.Background(), u); err != nil {
		t.Fatal(err) // burst token
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = sess.Server().Answer(ctx, dataspace.UniverseQuery(ds.Schema).WithRange(1, 0, 5))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled throttle wait blocked %v", elapsed)
	}
	if sess.Queries() != 1 {
		t.Fatalf("cancelled wait paid a query: %d, want 1", sess.Queries())
	}
}
