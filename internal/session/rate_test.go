package session

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// rateTable builds a session table with per-client throttling over a small
// random store.
func rateTable(t *testing.T, cfg Config) (*Table, *datagen.Dataset) {
	t.Helper()
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          300,
		CatDomains: []int{4},
		NumRanges:  [][2]int64{{0, 1000}},
		DupRate:    0.05,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	return NewTable(srv, cfg), ds
}

// TestSessionRateLimitFreeTiers: burst queries pass immediately, and
// journal replays ride above the limiter — a replayed query needs no
// token, so resuming a journaled crawl is never throttled.
func TestSessionRateLimitFreeTiers(t *testing.T) {
	tbl, ds := rateTable(t, Config{RatePerSecond: 0.5, RateBurst: 2})
	sess, err := tbl.Get("tok")
	if err != nil {
		t.Fatal(err)
	}
	q1 := dataspace.UniverseQuery(ds.Schema).WithRange(1, 0, 10)
	q2 := dataspace.UniverseQuery(ds.Schema).WithRange(1, 11, 20)

	start := time.Now()
	if _, err := sess.Server().Answer(context.Background(), q1); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Server().Answer(context.Background(), q2); err != nil {
		t.Fatal(err)
	}
	// Replays of both paid queries: above the limiter, so no token and no
	// wait even though the bucket is now empty (refill is 2s/query).
	for _, q := range []dataspace.Query{q1, q2} {
		if _, err := sess.Server().Answer(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("burst + replays took %v — replays are being throttled", elapsed)
	}
	if sess.Queries() != 2 || sess.Replays() != 2 {
		t.Fatalf("paid %d / replayed %d, want 2 / 2", sess.Queries(), sess.Replays())
	}
}

// TestSessionRateLimitCancelsPromptly: a query waiting out the bucket
// aborts the moment its request ctx dies — a throttled client hanging up
// does not park a goroutine for the rest of the refill.
func TestSessionRateLimitCancelsPromptly(t *testing.T) {
	tbl, ds := rateTable(t, Config{RatePerSecond: 0.1, RateBurst: 1}) // 10s/query refill
	sess, err := tbl.Get("tok")
	if err != nil {
		t.Fatal(err)
	}
	u := dataspace.UniverseQuery(ds.Schema)
	if _, err := sess.Server().Answer(context.Background(), u); err != nil {
		t.Fatal(err) // burst token
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = sess.Server().Answer(ctx, dataspace.UniverseQuery(ds.Schema).WithRange(1, 0, 5))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled throttle wait blocked %v", elapsed)
	}
	if sess.Queries() != 1 {
		t.Fatalf("cancelled wait paid a query: %d, want 1", sess.Queries())
	}
}

// TestRateClassResolution: tokens resolve to a named tier by prefix
// (before the first '-'), a resolved class replaces the table-wide rate
// wholesale — including an explicit unlimited tier — and everything else
// falls back to the flat rate. Classes shape timing only; Stats and
// ClassCounts expose who landed where.
func TestRateClassResolution(t *testing.T) {
	tbl, ds := rateTable(t, Config{
		// Flat rate so slow that any default-tier session issuing two
		// distinct queries would stall for seconds.
		RatePerSecond: 0.2,
		RateBurst:     1,
		RateClasses: []RateClass{
			{Name: "gold"},                           // PerSecond 0: explicit unlimited
			{Name: "slow", PerSecond: 0.1, Burst: 1}, // even tighter than flat
		},
	})
	qs := distinctQueries(ds.Schema, 3)

	cases := []struct {
		token, class string
	}{
		{"gold-alice", "gold"}, // prefix match
		{"gold", ""},           // no '-': default tier
		{"-gold", ""},          // empty prefix: default tier
		{"silver-bob", ""},     // unknown prefix: default tier
		{"slow-carol", "slow"},
	}
	for _, c := range cases {
		sess, err := tbl.Get(c.token)
		if err != nil {
			t.Fatal(err)
		}
		if got := sess.RateClass(); got != c.class {
			t.Errorf("token %q resolved to class %q, want %q", c.token, got, c.class)
		}
	}

	// The unlimited class must really be unthrottled: three distinct paid
	// queries, no waiting, while the flat rate would allow one per 5s.
	gold, _ := tbl.Get("gold-alice")
	start := time.Now()
	for _, q := range qs {
		if _, err := gold.Server().Answer(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("unlimited class waited %v; the flat rate leaked through", elapsed)
	}
	if gold.Queries() != 3 {
		t.Fatalf("gold session paid %d queries, want 3 (classes change timing, never counts)", gold.Queries())
	}

	// Snapshots carry the resolved class, and ClassCounts aggregates only
	// classed sessions — default-tier tokens are not listed.
	byToken := map[string]string{}
	for _, st := range tbl.Stats() {
		byToken[st.Token] = st.RateClass
	}
	if byToken["gold-alice"] != "gold" || byToken["slow-carol"] != "slow" || byToken["silver-bob"] != "" {
		t.Errorf("Stats rate classes wrong: %v", byToken)
	}
	counts := tbl.ClassCounts()
	if counts["gold"] != 1 || counts["slow"] != 1 || len(counts) != 2 {
		t.Errorf("ClassCounts = %v, want map[gold:1 slow:1]", counts)
	}
}

// TestRateClassCustomResolver: Config.RateClassFor overrides the prefix
// rule entirely — here a suffix convention routes tokens to their tier.
func TestRateClassCustomResolver(t *testing.T) {
	tbl, _ := rateTable(t, Config{
		RateClasses: []RateClass{{Name: "vip"}},
		RateClassFor: func(token string) string {
			if strings.HasSuffix(token, "!") {
				return "vip"
			}
			return ""
		},
	})
	vip, err := tbl.Get("alice!")
	if err != nil {
		t.Fatal(err)
	}
	if vip.RateClass() != "vip" {
		t.Errorf("suffix token resolved to %q, want vip", vip.RateClass())
	}
	// With a custom resolver the prefix rule must not apply.
	plain, err := tbl.Get("vip-bob")
	if err != nil {
		t.Fatal(err)
	}
	if plain.RateClass() != "" {
		t.Errorf("prefix rule leaked through custom resolver: %q", plain.RateClass())
	}
}
