// Package session gives each API token its own view of one shared hidden
// database — the server-side counterpart of the paper's per-client cost
// model. A real hidden site enforces its query budget per IP or API key;
// a server that kept one global quota and one shared replay log would let
// two crawlers corrupt each other's budgets and journals. Here every token
// owns a private decorator stack over the shared (possibly sharded) store:
//
//	journal wrapper → Caching → Quota → RateLimited → Counting → shared store
//
// reading left to right in wrapping order, outermost first. A query the
// session has already paid for is answered from its journal or memo table
// for free — above the rate limiter, so replays and cache hits are never
// throttled; a new query must be admitted by the token's budget first and
// only then waits for the token bucket (when Config.RatePerSecond is
// set), so an over-budget request 429s immediately instead of waiting out
// a throttle for queries that would be rejected anyway. Once answered it
// is journaled; a wait cancelled mid-batch refunds both the budget and
// the rate tokens, since nothing was issued. Config.RateClasses names
// qps/burst tiers resolved per token — gold keys faster than free keys —
// without touching budgets or counts. The Counting innermost layer is therefore exactly the paper's
// cost metric, per client: queries that actually reached the hidden
// database on this token's budget. Every layer honours the request ctx, so
// one client hanging up cancels only its own in-flight work — including a
// rate-limit wait — never another session's.
//
// Sessions live in a Table — an LRU with TTL safe for concurrent batches.
// An idle session expires after the TTL (modelling the budget window of
// real sites: evicting the session resets the token's quota, the way a
// per-day budget resets overnight), and the table caps the number of live
// sessions, evicting least-recently-used tokens under pressure. When a
// journal directory is configured, an evicted session's journal is
// persisted and reloaded on the token's next request, so a crawl that
// exhausted one budget fast-forwards for free through everything already
// paid and spends the fresh budget only on new queries — the journal
// package's resumability contract, now enforced server-side per client.
//
// Config.SharedCache opts a table into fleet mode: one hiddendb.Shared
// answer tier under every session's private stack, so knowledge any token
// paid for once serves the whole fleet. SharedFree splices it between the
// memo table and the quota (shared hits and waits cost the asker nothing);
// SharedCharged splices it between the counter and the store (hits save
// the store's work but are still debited). The default, SharedOff, builds
// exactly the stack above — paper-mode accounting is bit-identical.
package session

import (
	"container/list"
	"encoding/base64"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"hidb/internal/hiddendb"
	"hidb/internal/journal"
)

// DefaultMaxSessions caps the live-session count when Config.MaxSessions
// is zero.
const DefaultMaxSessions = 1024

// Config tunes a Table. The zero value means: no per-client quota, no TTL
// expiry, DefaultMaxSessions live sessions, no journal persistence.
type Config struct {
	// Quota is each client's query budget per session lifetime; zero
	// means unlimited. Cache hits and journal replays are free — the
	// budget counts only queries that reach the shared store.
	Quota int
	// RatePerSecond throttles each client's quota-admitted queries to a
	// sustained rate (token bucket with RateBurst capacity); zero
	// disables throttling. A throttled query waits inside its own
	// request ctx, so a client that hangs up stops waiting immediately,
	// and the wait's budget and rate tokens are refunded.
	RatePerSecond float64
	// RateBurst is the token-bucket capacity when RatePerSecond is set:
	// how many queries a client may issue back-to-back after idling.
	// Zero means the ceiling of RatePerSecond (at least 1).
	RateBurst int
	// RateClasses names per-token qps/burst tiers — the QoS knob of a
	// real API: gold keys sustain more queries per second than free
	// keys. Each token is resolved to a class name by RateClassFor (or,
	// when nil, by its prefix up to the first '-': token "gold-alice"
	// joins class "gold"); a token resolving to no listed class falls
	// back to the flat RatePerSecond/RateBurst. Classes shape timing
	// only — budgets, journals and the paper's query counts are
	// untouched. A duplicated class name is resolved by the last entry.
	RateClasses []RateClass
	// RateClassFor, when non-nil, overrides the default prefix resolver:
	// it maps a token to the name of its rate class ("" for none).
	RateClassFor func(token string) string
	// TTL evicts a session idle for longer; zero disables expiry. With a
	// quota, the TTL is the budget window: a token returning after expiry
	// gets a fresh session, hence a fresh budget (and its reloaded
	// journal, when persistence is on).
	TTL time.Duration
	// MaxSessions bounds the live sessions; the least recently used is
	// evicted beyond it. Zero means DefaultMaxSessions.
	MaxSessions int
	// JournalDir, when non-empty, persists each session's journal there
	// on eviction and reloads it when the token reconnects. The
	// directory is created on first use.
	JournalDir string
	// SharedCache selects the fleet-wide shared answer tier. SharedOff
	// (the default) keeps every stack exactly as documented above — paper
	// mode, bit-identical accounting. SharedFree inserts the tier between
	// each session's memo table and its quota, so an answer some other
	// token already paid for is served free; SharedCharged inserts it
	// between the counter and the store, so a hit saves the store's work
	// but still debits the asking token.
	SharedCache hiddendb.SharedCachePolicy
	// SharedCacheBytes bounds the shared tier's resident size (LRU
	// eviction beyond it); zero is unbounded. Ignored when SharedCache is
	// SharedOff.
	SharedCacheBytes int64
}

// RateClass is one named qps/burst tier of Config.RateClasses.
type RateClass struct {
	// Name is the class identifier tokens resolve to.
	Name string
	// PerSecond is the class's sustained query rate; zero or negative
	// leaves class members unthrottled (an explicit "unlimited" tier).
	PerSecond float64
	// Burst is the token-bucket capacity; zero means the ceiling of
	// PerSecond (at least 1), as with Config.RateBurst.
	Burst int
}

// Session is one token's private view of the shared server. Its Server
// stack is safe for concurrent batches, so one client may overlap
// requests.
type Session struct {
	token    string
	srv      hiddendb.Server
	journal  *journal.Journal
	jsrv     *journal.Server
	caching  *hiddendb.Caching
	quota    *hiddendb.Quota
	counting *hiddendb.Counting
	// shared is this session's window onto the fleet-wide answer tier;
	// nil in paper mode (Config.SharedCache == SharedOff).
	shared *hiddendb.SharedView
	// rateClass is the name of the resolved rate class, "" when the
	// token fell back to the table-wide rate.
	rateClass string

	lastSeen time.Time // guarded by the owning Table's mutex
}

// RateClass returns the name of the session's resolved rate class, ""
// when the token uses the table-wide rate.
func (s *Session) RateClass() string { return s.rateClass }

// Token returns the session's API token ("" for the anonymous session).
func (s *Session) Token() string { return s.token }

// Server returns the session's decorator stack. All queries of this token
// must flow through it.
func (s *Session) Server() hiddendb.Server { return s.srv }

// Queries returns the queries this client paid for — the paper's cost
// metric, per token. Cache hits and journal replays are not counted.
func (s *Session) Queries() int { return s.counting.Queries() }

// Resolved returns how many paid queries resolved.
func (s *Session) Resolved() int { return s.counting.Resolved() }

// Overflowed returns how many paid queries overflowed.
func (s *Session) Overflowed() int { return s.counting.Overflowed() }

// Remaining returns the unused budget, or -1 when the session is
// unlimited.
func (s *Session) Remaining() int {
	if s.quota == nil {
		return -1
	}
	return s.quota.Remaining()
}

// Replays returns how many queries were answered from the journal.
func (s *Session) Replays() int { return s.jsrv.Replays() }

// CacheHits returns how many queries were answered from the memo table.
func (s *Session) CacheHits() int { return s.caching.Hits() }

// SharedHits returns how many of this session's queries were answered
// from an already-populated shared-tier entry (0 in paper mode).
func (s *Session) SharedHits() int {
	if s.shared == nil {
		return 0
	}
	return s.shared.Hits()
}

// SharedWaits returns how many of this session's queries were answered by
// waiting out another session's in-flight fetch (0 in paper mode).
func (s *Session) SharedWaits() int {
	if s.shared == nil {
		return 0
	}
	return s.shared.Waits()
}

// SharedLeads returns how many shared-tier entries this session led — paid
// on its own budget and published for the fleet (0 in paper mode).
func (s *Session) SharedLeads() int {
	if s.shared == nil {
		return 0
	}
	return s.shared.Leads()
}

// JournalLen returns the number of (query, response) pairs journaled.
func (s *Session) JournalLen() int { return s.journal.Len() }

// Journal exposes the session's journal (tests and persistence).
func (s *Session) Journal() *journal.Journal { return s.journal }

// Stats is a point-in-time snapshot of one session's counters.
type Stats struct {
	Token      string
	Queries    int
	Resolved   int
	Overflowed int
	Remaining  int // -1 when unlimited
	Replays    int
	CacheHits  int
	JournalLen int
	// SharedHits, SharedWaits and SharedLeads are the session's traffic
	// through the fleet-wide shared tier; all zero in paper mode.
	SharedHits  int
	SharedWaits int
	SharedLeads int
	// RateClass names the token's resolved qps tier, "" for the default.
	RateClass string
}

func (s *Session) stats() Stats {
	return Stats{
		Token:       s.token,
		RateClass:   s.rateClass,
		Queries:     s.Queries(),
		Resolved:    s.Resolved(),
		Overflowed:  s.Overflowed(),
		Remaining:   s.Remaining(),
		Replays:     s.Replays(),
		CacheHits:   s.CacheHits(),
		JournalLen:  s.JournalLen(),
		SharedHits:  s.SharedHits(),
		SharedWaits: s.SharedWaits(),
		SharedLeads: s.SharedLeads(),
	}
}

// Table maps API tokens to live sessions: an LRU with TTL over one shared
// server. Safe for concurrent use; the per-session server stacks it hands
// out are safe for concurrent batches.
type Table struct {
	shared hiddendb.Server
	cfg    Config
	// fleet is the table-wide shared answer tier every session's stack
	// reads through; nil in paper mode (cfg.SharedCache == SharedOff).
	fleet *hiddendb.Shared
	// classes indexes cfg.RateClasses by name (later entries win).
	classes map[string]RateClass

	mu       sync.Mutex
	sessions map[string]*list.Element // token → lru element holding *Session
	lru      *list.List               // front = most recently used
	// evicted and evictedQueries accumulate the sessions (and their paid
	// queries) already evicted, so aggregate stats survive eviction.
	evicted        int
	evictedQueries int
	// persistErr remembers the last journal-persistence failure (evictions
	// happen inside unrelated Gets and cannot surface an error to that
	// caller).
	persistErr error
	// recovered counts journals reloaded from a torn/corrupted file via
	// longest-valid-prefix recovery.
	recovered int

	// now is the table's clock, swappable in tests.
	now func() time.Time
}

// NewTable builds a session table over the shared server.
func NewTable(shared hiddendb.Server, cfg Config) *Table {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	t := &Table{
		shared:   shared,
		cfg:      cfg,
		sessions: make(map[string]*list.Element),
		lru:      list.New(),
		now:      time.Now,
	}
	if cfg.SharedCache != hiddendb.SharedOff {
		t.fleet = hiddendb.NewShared(cfg.SharedCacheBytes)
	}
	if len(cfg.RateClasses) > 0 {
		t.classes = make(map[string]RateClass, len(cfg.RateClasses))
		for _, cls := range cfg.RateClasses {
			t.classes[cls.Name] = cls
		}
	}
	return t
}

// resolveClass maps a token to its rate class, if any: the configured
// resolver (or the default '-'-prefix rule) names a class, and the name
// must be listed in Config.RateClasses.
func (t *Table) resolveClass(token string) (RateClass, bool) {
	if len(t.classes) == 0 {
		return RateClass{}, false
	}
	var name string
	if t.cfg.RateClassFor != nil {
		name = t.cfg.RateClassFor(token)
	} else if i := strings.IndexByte(token, '-'); i > 0 {
		name = token[:i]
	}
	if name == "" {
		return RateClass{}, false
	}
	cls, ok := t.classes[name]
	return cls, ok
}

// ClassCounts returns the live sessions per resolved rate class (tokens
// on the default rate are not listed); nil when no class is in use.
func (t *Table) ClassCounts() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out map[string]int
	for el := t.lru.Front(); el != nil; el = el.Next() {
		if c := el.Value.(*Session).rateClass; c != "" {
			if out == nil {
				out = make(map[string]int)
			}
			out[c]++
		}
	}
	return out
}

// SharedCache returns the table-wide shared answer tier, or nil in paper
// mode. The tier outlives every session: evicting a token discards its
// stack but never the answers it led, and its in-flight fetches complete
// normally (or hand leadership to a waiting follower), so eviction can
// never orphan the fleet.
func (t *Table) SharedCache() *hiddendb.Shared { return t.fleet }

// Get returns the token's live session, creating it (and reloading its
// persisted journal, if any) on first use. Every call counts as activity:
// it refreshes the TTL and the LRU position. Expired and over-cap sessions
// are evicted on the way. Journal file I/O — loading on a miss, persisting
// the evicted — happens outside the table lock, so one token's disk never
// stalls every other client's request.
func (t *Table) Get(token string) (*Session, error) {
	t.mu.Lock()
	now := t.now()
	victims := t.sweepLocked(now)
	if el, ok := t.sessions[token]; ok {
		sess := el.Value.(*Session)
		sess.lastSeen = now
		t.lru.MoveToFront(el)
		t.mu.Unlock()
		t.persistAll(victims)
		return sess, nil
	}
	t.mu.Unlock()
	t.persistAll(victims)

	// Build the session (and read its persisted journal) unlocked; when
	// two requests race on a fresh token, the first to insert wins and
	// the loser's build is discarded — safe, since nothing was journaled
	// by the discarded incarnation.
	sess, err := t.newSession(token)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if el, ok := t.sessions[token]; ok {
		existing := el.Value.(*Session)
		existing.lastSeen = t.now()
		t.lru.MoveToFront(el)
		t.mu.Unlock()
		return existing, nil
	}
	sess.lastSeen = t.now()
	t.sessions[token] = t.lru.PushFront(sess)
	victims = victims[:0]
	for t.lru.Len() > t.cfg.MaxSessions {
		victims = append(victims, t.evictLocked(t.lru.Back()))
	}
	t.mu.Unlock()
	t.persistAll(victims)
	return sess, nil
}

// Touch refreshes the token's TTL and LRU position without creating a
// session. A long-running server-side crawl touches its session per paid
// query, so activity inside one request keeps the session live exactly as
// activity across requests does.
func (t *Table) Touch(token string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.sessions[token]; ok {
		el.Value.(*Session).lastSeen = t.now()
		t.lru.MoveToFront(el)
	}
}

// newSession builds the token's decorator stack over the shared server,
// reloading a persisted journal when one exists.
func (t *Table) newSession(token string) (*Session, error) {
	jnl, err := t.loadJournal(token)
	if err != nil {
		return nil, err
	}
	if jnl == nil {
		jnl = journal.New(t.shared.Schema(), t.shared.K())
	}
	// store is the innermost layer below the counter. In paper mode and
	// SharedFree it is the shared store itself; under SharedCharged the
	// fleet tier sits here, below the counter, so a shared hit saves the
	// store's work but is still counted and debited like any paid query.
	store := t.shared
	var sharedView *hiddendb.SharedView
	if t.cfg.SharedCache == hiddendb.SharedCharged {
		sharedView = t.fleet.View(store)
		store = sharedView
	}
	counting := hiddendb.NewCounting(store)
	var view hiddendb.Server = counting
	// The token's rate class, when one resolves, replaces the table-wide
	// rate wholesale — including an explicit "unlimited" class with
	// PerSecond 0. Classes change timing only, never counts.
	rate, burst, className := t.cfg.RatePerSecond, t.cfg.RateBurst, ""
	if cls, ok := t.resolveClass(token); ok {
		rate, burst, className = cls.PerSecond, cls.Burst, cls.Name
	}
	if rate > 0 {
		if burst <= 0 {
			burst = int(math.Ceil(rate))
		}
		limited, err := hiddendb.NewRateLimited(view, rate, burst)
		if err != nil {
			return nil, fmt.Errorf("session: token %q: %w", token, err)
		}
		view = limited
	}
	var quota *hiddendb.Quota
	if t.cfg.Quota > 0 {
		quota = hiddendb.NewQuota(view, t.cfg.Quota)
		view = quota
	}
	// Under SharedFree the fleet tier sits above the quota and counter:
	// a shared hit or a wait on another token's in-flight fetch returns
	// before touching either, so only the leading token pays.
	if t.cfg.SharedCache == hiddendb.SharedFree {
		sharedView = t.fleet.View(view)
		view = sharedView
	}
	caching := hiddendb.NewCaching(view)
	jsrv, err := journal.Wrap(caching, jnl)
	if err != nil {
		return nil, fmt.Errorf("session: token %q: %w", token, err)
	}
	return &Session{
		token:     token,
		srv:       jsrv,
		journal:   jnl,
		jsrv:      jsrv,
		caching:   caching,
		quota:     quota,
		counting:  counting,
		shared:    sharedView,
		rateClass: className,
	}, nil
}

// sweepLocked evicts every session idle past the TTL, returning them for
// the caller to persist once the lock is released. Expired sessions
// cluster at the LRU tail, since last-use order is idle order.
func (t *Table) sweepLocked(now time.Time) []*Session {
	if t.cfg.TTL <= 0 {
		return nil
	}
	var victims []*Session
	for el := t.lru.Back(); el != nil; el = t.lru.Back() {
		if now.Sub(el.Value.(*Session).lastSeen) < t.cfg.TTL {
			break
		}
		victims = append(victims, t.evictLocked(el))
	}
	return victims
}

// evictLocked removes one session, folding its counters into the evicted
// accumulators, and returns it for persistence outside the lock. Queries
// still in flight on the evicted stack complete safely; they are merely no
// longer captured by the persisted journal snapshot (they would be re-paid
// on reconnect, which is always safe — the journal is an optimization,
// never the source of truth).
func (t *Table) evictLocked(el *list.Element) *Session {
	sess := el.Value.(*Session)
	t.lru.Remove(el)
	delete(t.sessions, sess.token)
	t.evicted++
	t.evictedQueries += sess.Queries()
	return sess
}

// persistAll writes the evicted sessions' journals, recording the last
// failure. Must be called without the table lock held.
func (t *Table) persistAll(victims []*Session) {
	for _, sess := range victims {
		if err := t.persistJournal(sess); err != nil {
			t.mu.Lock()
			t.persistErr = err
			t.mu.Unlock()
		}
	}
}

// Len returns the number of live sessions.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.Len()
}

// Has reports whether the token currently owns a live session, without
// creating one or refreshing its TTL.
func (t *Table) Has(token string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.sessions[token]
	return ok
}

// Full reports whether the table is at its live-session cap, i.e. whether
// admitting a new token would evict the least recently used session. A
// load-shedding server checks this to turn away new clients instead of
// churning established ones.
func (t *Table) Full() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.Len() >= t.cfg.MaxSessions
}

// Evicted returns how many sessions have been evicted so far.
func (t *Table) Evicted() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// TotalQueries returns the aggregate paid query count across live and
// evicted sessions.
func (t *Table) TotalQueries() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := t.evictedQueries
	for el := t.lru.Front(); el != nil; el = el.Next() {
		total += el.Value.(*Session).Queries()
	}
	return total
}

// Stats snapshots every live session's counters, sorted by token.
func (t *Table) Stats() []Stats {
	t.mu.Lock()
	out := make([]Stats, 0, t.lru.Len())
	for el := t.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Session).stats())
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Token < out[j].Token })
	return out
}

// RecoveredJournals returns how many sessions were reloaded from a
// damaged journal file via longest-valid-prefix recovery (the damaged
// originals are quarantined next to the journal directory's files).
func (t *Table) RecoveredJournals() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recovered
}

// PersistErr returns the last journal-persistence failure observed during
// an eviction, if any (evictions run inside unrelated requests and cannot
// report errors inline).
func (t *Table) PersistErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.persistErr
}

// Close persists every live session's journal (when a journal directory is
// configured) and empties the table. It returns the last persistence
// error, including any pending one from earlier evictions.
func (t *Table) Close() error {
	t.mu.Lock()
	var victims []*Session
	for el := t.lru.Back(); el != nil; el = t.lru.Back() {
		victims = append(victims, t.evictLocked(el))
	}
	t.mu.Unlock()
	t.persistAll(victims)
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.persistErr
}

// journalPath names the token's journal file. Tokens are arbitrary
// strings, so the name is the URL-safe base64 of the token — collision
// free and filesystem safe.
func (t *Table) journalPath(token string) string {
	name := "s-" + base64.RawURLEncoding.EncodeToString([]byte(token)) + ".journal"
	return filepath.Join(t.cfg.JournalDir, name)
}

// loadJournal reloads the token's persisted journal, or returns nil when
// persistence is off or no journal exists. A torn or corrupted file — a
// crash mid-persist, a flipped bit — never fails the session: the longest
// valid prefix is recovered (journal.LoadFile quarantines the damaged
// original as <path>.corrupt), the recovery is counted in
// RecoveredJournals, and only the damaged tail's queries are re-paid. A
// journal recorded against a different schema or return limit is an
// operator error and is reported, not silently discarded.
func (t *Table) loadJournal(token string) (*journal.Journal, error) {
	if t.cfg.JournalDir == "" {
		return nil, nil
	}
	jnl, err := journal.LoadFile(t.journalPath(token))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	var ce *journal.CorruptionError
	if errors.As(err, &ce) {
		t.mu.Lock()
		t.recovered++
		t.mu.Unlock()
		return jnl, nil // jnl is the recovered prefix; nil means start fresh
	}
	if err != nil {
		return nil, fmt.Errorf("session: token %q journal: %w", token, err)
	}
	return jnl, nil
}

// persistJournal crash-safely writes the session's journal next to its
// final path (write temp, fsync, rename — see journal.SaveFile). Empty
// journals are skipped — nothing to resume.
func (t *Table) persistJournal(sess *Session) error {
	if t.cfg.JournalDir == "" || sess.journal.Len() == 0 {
		return nil
	}
	if err := journal.SaveFile(t.journalPath(sess.token), sess.journal); err != nil {
		return fmt.Errorf("session: persisting %q: %w", sess.token, err)
	}
	return nil
}
