package session

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hidb/internal/core"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// TestFleetOracle is the tentpole's machine check: M concurrent tokens
// crawling the same store through the SharedFree tier together pay exactly
// one solo crawl's query count — knowledge is bought once and serves the
// fleet — while every token's own counter, quota and journal agree with
// each other, and each token's journal replays its crawl for free on
// resume.
func TestFleetOracle(t *testing.T) {
	for _, m := range []int{2, 8, 32} {
		t.Run(fmt.Sprintf("M=%d", m), func(t *testing.T) {
			store, ds := testShared(t, 200, 10)
			// Solo reference: the paper-mode cost of one complete crawl.
			ref, err := (core.Hybrid{}).Crawl(context.Background(), store, nil)
			if err != nil {
				t.Fatal(err)
			}
			refPaid := store.Queries()
			if refPaid != ref.Queries {
				t.Fatalf("reference disagrees with its own counter: %d vs %d", ref.Queries, refPaid)
			}

			fleetStore, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, 10, 42)
			if err != nil {
				t.Fatal(err)
			}
			counting := hiddendb.NewCounting(fleetStore)
			quota := refPaid + 1 // ample for any single token, tight enough to detect leaks
			tbl := NewTable(counting, Config{
				Quota:       quota,
				SharedCache: hiddendb.SharedFree,
				JournalDir:  t.TempDir(),
			})

			var wg sync.WaitGroup
			results := make([]*core.Result, m)
			for i := 0; i < m; i++ {
				sess, err := tbl.Get(fmt.Sprintf("tok-%d", i))
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(i int, srv hiddendb.Server) {
					defer wg.Done()
					res, err := (core.Hybrid{}).Crawl(context.Background(), srv, nil)
					if err != nil {
						t.Errorf("token %d crawl: %v", i, err)
						return
					}
					results[i] = res
				}(i, sess.Server())
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}

			// The fleet invariant: the store was paid exactly one crawl's
			// cost, no matter how many tokens crawled (<= 1.05x is the
			// acceptance bound; single-flight over a permanent cache makes
			// it exact).
			if got := counting.Queries(); got != refPaid {
				t.Fatalf("fleet of %d paid the store %d queries, want exactly the solo reference %d", m, got, refPaid)
			}

			// Per-token agreement: counter vs quota vs journal, and the
			// crawl results themselves.
			totalPaid, jlen0 := 0, -1
			for i := 0; i < m; i++ {
				if len(results[i].Tuples) != len(ref.Tuples) {
					t.Fatalf("token %d extracted %d tuples, want %d", i, len(results[i].Tuples), len(ref.Tuples))
				}
				sess, err := tbl.Get(fmt.Sprintf("tok-%d", i))
				if err != nil {
					t.Fatal(err)
				}
				paid := sess.Queries()
				totalPaid += paid
				if want := quota - paid; sess.Remaining() != want {
					t.Fatalf("token %d: counter says %d paid but quota has %d remaining of %d", i, paid, sess.Remaining(), quota)
				}
				// Every answer the crawl consumed — led, shared, or private —
				// is journaled; the ask sequence is deterministic, so every
				// token's journal has identical length.
				if jlen0 < 0 {
					jlen0 = sess.JournalLen()
				} else if sess.JournalLen() != jlen0 {
					t.Fatalf("token %d journaled %d pairs, token 0 journaled %d", i, sess.JournalLen(), jlen0)
				}
				// Paid + shared = the queries that reached below the private
				// memo; a query is never both.
				if paid != sess.SharedLeads() {
					t.Fatalf("token %d: %d paid but %d leads — a paid query must be a lead under SharedFree", i, paid, sess.SharedLeads())
				}
			}
			// Each of the reference's queries was led (paid) by exactly one
			// token.
			if totalPaid != refPaid {
				t.Fatalf("tokens' counters sum to %d, want %d — some query was paid twice or not charged", totalPaid, refPaid)
			}

			// Resume: persist every journal, rebuild the table (fresh,
			// empty shared tier), re-crawl each token — the journal replays
			// everything, so nobody pays anything.
			dir := tbl.cfg.JournalDir
			if err := tbl.Close(); err != nil {
				t.Fatal(err)
			}
			counting2 := hiddendb.NewCounting(fleetStore)
			tbl2 := NewTable(counting2, Config{
				Quota:       quota,
				SharedCache: hiddendb.SharedFree,
				JournalDir:  dir,
			})
			for i := 0; i < m; i++ {
				sess, err := tbl2.Get(fmt.Sprintf("tok-%d", i))
				if err != nil {
					t.Fatal(err)
				}
				res, err := (core.Hybrid{}).Crawl(context.Background(), sess.Server(), nil)
				if err != nil {
					t.Fatalf("token %d resume: %v", i, err)
				}
				if len(res.Tuples) != len(ref.Tuples) {
					t.Fatalf("token %d resume extracted %d tuples, want %d", i, len(res.Tuples), len(ref.Tuples))
				}
				if sess.Queries() != 0 {
					t.Fatalf("token %d paid %d on resume, want 0 — journal must replay the whole crawl", i, sess.Queries())
				}
			}
			if counting2.Queries() != 0 {
				t.Fatalf("store paid %d on resume, want 0", counting2.Queries())
			}
		})
	}
}

// TestFleetChargedAccounting: under SharedCharged a shared hit saves the
// store's work but still debits the asking token — the paper's per-client
// costs preserved while the fleet shares compute.
func TestFleetChargedAccounting(t *testing.T) {
	store, ds := testShared(t, 200, 10)
	tbl := NewTable(store, Config{Quota: 50, SharedCache: hiddendb.SharedCharged})
	qs := distinctQueries(ds.Schema, 10)

	a, err := tbl.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Server().AnswerBatch(context.Background(), qs); err != nil {
		t.Fatal(err)
	}
	b, err := tbl.Get("bob")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Server().AnswerBatch(context.Background(), qs); err != nil {
		t.Fatal(err)
	}

	// Both tokens are charged in full...
	if a.Queries() != 10 || b.Queries() != 10 {
		t.Fatalf("charged mode: alice paid %d, bob paid %d, want 10 each", a.Queries(), b.Queries())
	}
	if a.Remaining() != 40 || b.Remaining() != 40 {
		t.Fatalf("charged mode: remaining %d/%d, want 40/40", a.Remaining(), b.Remaining())
	}
	// ...but the store answered each distinct query once.
	if store.Queries() != 10 {
		t.Fatalf("store answered %d, want 10 — bob's asks must come from the tier", store.Queries())
	}
	if b.SharedHits()+b.SharedWaits() != 10 {
		t.Fatalf("bob's shared hits+waits = %d, want 10", b.SharedHits()+b.SharedWaits())
	}
}

// TestFleetOffIsPaperMode: the default policy builds no tier and surfaces
// no counters — the bit-identical paper-mode stack.
func TestFleetOffIsPaperMode(t *testing.T) {
	store, ds := testShared(t, 100, 10)
	tbl := NewTable(store, Config{Quota: 10})
	if tbl.SharedCache() != nil {
		t.Fatal("paper mode built a shared tier")
	}
	sess, err := tbl.Get("tok")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Server().AnswerBatch(context.Background(), distinctQueries(ds.Schema, 3)); err != nil {
		t.Fatal(err)
	}
	st := sess.stats()
	if st.SharedHits != 0 || st.SharedWaits != 0 || st.SharedLeads != 0 {
		t.Fatalf("paper-mode stats carry shared counters: %+v", st)
	}
	if sess.Queries() != 3 {
		t.Fatalf("paid %d, want 3", sess.Queries())
	}
}

// gatedStore blocks the first Answer that reaches it until released, so a
// test can hold a leader mid-fetch while it rearranges the world around it.
type gatedStore struct {
	hiddendb.Server
	once    sync.Once
	entered chan struct{}
	release chan struct{}
}

func (g *gatedStore) Answer(ctx context.Context, q dataspace.Query) (hiddendb.Result, error) {
	gate := false
	g.once.Do(func() { gate = true })
	if gate {
		close(g.entered)
		<-g.release
	}
	return g.Server.Answer(ctx, q)
}

func (g *gatedStore) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]hiddendb.Result, error) {
	out := make([]hiddendb.Result, 0, len(qs))
	for _, q := range qs {
		res, err := g.Answer(ctx, q)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// TestFleetEvictionMidFlight: a leader whose session is evicted (LRU
// pressure) while its fetch is in flight neither deadlocks its followers
// nor loses the answer — the fetch completes on the evicted stack, the
// tier publishes it, and every waiting follower reads it without paying.
func TestFleetEvictionMidFlight(t *testing.T) {
	store, ds := testShared(t, 200, 10)
	gated := &gatedStore{
		Server:  store,
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	tbl := NewTable(gated, Config{SharedCache: hiddendb.SharedFree, MaxSessions: 1})
	q := distinctQueries(ds.Schema, 1)[0]

	leader, err := tbl.Get("leader")
	if err != nil {
		t.Fatal(err)
	}
	leaderDone := make(chan error, 1)
	go func() {
		_, err := leader.Server().Answer(context.Background(), q)
		leaderDone <- err
	}()
	<-gated.entered // the leader is now mid-fetch inside the store

	// A second token arrives; MaxSessions=1 evicts the leader's session.
	follower, err := tbl.Get("follower")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Has("leader") {
		t.Fatal("leader session survived the LRU cap")
	}
	followerDone := make(chan error, 1)
	go func() {
		_, err := follower.Server().Answer(context.Background(), q)
		followerDone <- err
	}()

	// Both are parked: the leader inside the gated store, the follower on
	// the tier's in-flight entry. Release the gate; both must finish.
	close(gated.release)
	for name, ch := range map[string]chan error{"leader": leaderDone, "follower": followerDone} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s deadlocked after the leader's eviction", name)
		}
	}
	// The evicted leader's fetch was published: the store answered once.
	if store.Queries() != 1 {
		t.Fatalf("store paid %d, want 1 — the follower must ride the evicted leader's fetch", store.Queries())
	}
	if tbl.SharedCache().Entries() != 1 {
		t.Fatalf("tier holds %d entries, want the evicted leader's 1", tbl.SharedCache().Entries())
	}
}

// TestFleetQuotaStarvedLeaderHandsOver: a leader whose budget dies
// mid-lead fails alone; the key is not poisoned and the next asker with
// budget leads it successfully.
func TestFleetQuotaStarvedLeaderHandsOver(t *testing.T) {
	store, ds := testShared(t, 200, 10)
	tbl := NewTable(store, Config{Quota: 1, SharedCache: hiddendb.SharedFree})
	qs := distinctQueries(ds.Schema, 2)

	poor, err := tbl.Get("poor")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := poor.Server().Answer(context.Background(), qs[0]); err != nil {
		t.Fatal(err) // spends poor's whole budget
	}
	if _, err := poor.Server().Answer(context.Background(), qs[1]); !errors.Is(err, hiddendb.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	// The failed lead published nothing and poisoned nothing.
	if got := tbl.SharedCache().Entries(); got != 1 {
		t.Fatalf("tier holds %d entries after a starved lead, want 1", got)
	}
	rich, err := tbl.Get("rich")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rich.Server().Answer(context.Background(), qs[1]); err != nil {
		t.Fatalf("successor lead: %v", err)
	}
	// rich paid only the query poor could not: qs[0] came from the tier.
	if _, err := rich.Server().Answer(context.Background(), qs[0]); err != nil {
		t.Fatal(err)
	}
	if rich.Queries() != 1 || rich.SharedHits() != 1 {
		t.Fatalf("rich paid %d with %d shared hits, want 1 and 1", rich.Queries(), rich.SharedHits())
	}
}
