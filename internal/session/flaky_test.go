package session

import (
	"context"
	"testing"

	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/hiddendb"
)

// TestSessionSurvivesFlakyStore: a transient store fault mid-crawl leaves
// the session's layers agreeing — the journal holds exactly the paid
// queries, the budget was debited per the quota contract — and the same
// token's next crawl resumes from the journal for free, finishing at the
// sequential reference cost. This is the answered-prefix stitching
// regression through the per-client session stack (journal → caching →
// quota → counting) over a shared fault-injecting store.
func TestSessionSurvivesFlakyStore(t *testing.T) {
	ds, err := datagen.Random(datagen.RandomSpec{
		N: 3000, CatDomains: []int{5, 9}, NumRanges: [][2]int64{{0, 9999}}, Skew: 0.5, DupRate: 0.05,
	}, 29)
	if err != nil {
		t.Fatal(err)
	}
	k := 32
	if m := ds.Tuples.MaxMultiplicity(); m > k {
		k = m
	}
	clean, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, 42)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := (core.Hybrid{}).Crawl(context.Background(), clean, nil)
	if err != nil {
		t.Fatal(err)
	}

	// One abort window: exactly one fault, after which the store heals —
	// the shape of a client disconnect or a transient 5xx.
	flaky := hiddendb.NewFlaky(clean, hiddendb.FlakyConfig{AbortFrom: 10, AbortUntil: 11})
	const budget = 1_000_000
	table := NewTable(flaky, Config{Quota: budget})

	sess, err := table.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (core.Hybrid{}).Crawl(context.Background(), sess.Server(), nil); err == nil {
		t.Fatal("crawl survived the injected abort")
	} else if !hiddendb.Cancelled(err) {
		t.Fatalf("err = %v, want a cancellation", err)
	}
	paid := sess.Queries()
	if paid != 10 {
		t.Fatalf("session paid %d queries before the abort, want 10", paid)
	}
	if sess.JournalLen() != paid {
		t.Fatalf("journal %d entries for %d paid queries", sess.JournalLen(), paid)
	}
	// The abort was refunded: the remaining budget agrees with the paid
	// count exactly.
	if sess.Remaining() != budget-paid {
		t.Fatalf("remaining %d, want %d", sess.Remaining(), budget-paid)
	}

	// The same token retries: journal replays the paid prefix free, the
	// healed store serves the rest, and the combined cost is exactly the
	// sequential reference.
	sess2, err := table.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	if sess2 != sess {
		t.Fatal("token resolved to a different session")
	}
	res, err := (core.Hybrid{}).Crawl(context.Background(), sess2.Server(), nil)
	if err != nil {
		t.Fatalf("resumed crawl: %v", err)
	}
	if !res.Tuples.EqualMultiset(ds.Tuples) {
		t.Fatal("resumed crawl incomplete")
	}
	if sess2.Queries() != ref.Queries {
		t.Fatalf("total paid %d, want the sequential reference %d", sess2.Queries(), ref.Queries)
	}
	if sess2.Replays() != paid {
		t.Fatalf("resume replayed %d journal entries, want %d", sess2.Replays(), paid)
	}
	if sess2.JournalLen() != ref.Queries {
		t.Fatalf("final journal %d entries, want %d", sess2.JournalLen(), ref.Queries)
	}
}
