package datagen

import (
	"hidb/internal/dataspace"
	"hidb/internal/simrand"
)

// YahooN is the cardinality of the paper's Yahoo! Autos workload: 69,768
// tuples.
const YahooN = 69768

// YahooDuplicates is the multiplicity of the most-repeated point in the
// Yahoo stand-in. The real dataset has more than 64 identical tuples —
// which is why Figure 12 reports no Yahoo value at k = 64 — and is fully
// crawlable at k = 128, so the stand-in plants 80 copies of one listing.
const YahooDuplicates = 80

// yahooSchema is the Figure-9 Yahoo schema: three categorical attributes
// (Owner 2, Body-style 7, Make 85) followed by three numeric ones (Mileage,
// Year, Price).
func yahooSchema() *dataspace.Schema {
	return dataspace.MustSchema([]dataspace.Attribute{
		{Name: "Owner", Kind: dataspace.Categorical, DomainSize: 2},
		{Name: "Body-style", Kind: dataspace.Categorical, DomainSize: 7},
		{Name: "Make", Kind: dataspace.Categorical, DomainSize: 85},
		{Name: "Mileage", Kind: dataspace.Numeric, Min: 0, Max: 320000},
		{Name: "Year", Kind: dataspace.Numeric, Min: 1980, Max: 2012},
		{Name: "Price", Kind: dataspace.Numeric, Min: 200, Max: 250000},
	})
}

// YahooLike synthesizes the Yahoo! Autos stand-in: Figure-9 schema, 69,768
// tuples, Zipf-skewed makes, correlated year/mileage/price (newer cars have
// lower mileage and higher prices), and a block of YahooDuplicates identical
// tuples reproducing the real dataset's > 64-fold duplicate point.
func YahooLike(seed uint64) *Dataset {
	return YahooLikeN(YahooN, seed)
}

// YahooLikeN is YahooLike with an explicit cardinality, for scaled-down test
// runs. The duplicate block shrinks with n but never below 3 tuples, so the
// "unsolvable below the duplicate count" behaviour remains testable.
func YahooLikeN(n int, seed uint64) *Dataset {
	rng := simrand.New(seed)
	sch := yahooSchema()

	bodyStyle := simrand.NewZipf(rng, 7, 0.9)
	make_ := simrand.NewZipf(rng, 85, 1.1)

	dups := YahooDuplicates
	if n < YahooN {
		dups = YahooDuplicates * n / YahooN
		if dups < 3 {
			dups = 3
		}
	}
	if dups > n {
		dups = n
	}
	tuples := make(dataspace.Bag, 0, n)

	// The duplicate block: one dealer listing the same new car many times.
	dup := dataspace.Tuple{1, 1, 3, 12, 2011, 21500}
	for i := 0; i < dups; i++ {
		tuples = append(tuples, dup)
	}

	for i := dups; i < n; i++ {
		t := make(dataspace.Tuple, sch.Dims())
		// Owner: dealer vs private, roughly 4:1.
		if rng.Bool(0.8) {
			t[0] = 1
		} else {
			t[0] = 2
		}
		t[2] = make_.Draw()
		// Attribute dependency (§1.3): a make sells only a subset of body
		// styles (BMW sells no trucks). Each make offers 3–5 of the 7
		// styles, chosen deterministically from the make id.
		for {
			b := bodyStyle.Draw()
			if makeSellsBody(t[2], b) {
				t[1] = b
				break
			}
		}

		// Year skews recent: most inventory is a few years old.
		age := rng.Geometric(0.22)
		if age > 32 {
			age = 32
		}
		year := int64(2012) - age

		// Mileage grows with age, ~13k/year with spread; round to a
		// realistic granularity so some listings collide.
		miles := age*13000 + rng.Int64n(14000) - 7000
		if miles < 0 {
			miles = rng.Int64n(500)
		}
		if rng.Bool(0.25) {
			miles = (miles / 1000) * 1000 // owners often round to 1k
		}

		// Price: base by make prestige, depreciating ~13%/year.
		base := 12000 + (t[2]%17)*3500 + rng.Int64n(9000)
		price := base
		for y := int64(0); y < age; y++ {
			price = price * 87 / 100
		}
		if price < 200 {
			price = 200 + rng.Int64n(800)
		}
		if rng.Bool(0.5) {
			price = (price / 100) * 100 // sticker prices end in 00
		}

		t[3] = clamp(miles, 0, 320000)
		t[4] = year
		t[5] = clamp(price, 200, 250000)
		tuples = append(tuples, t)
	}
	return &Dataset{Name: "yahoo-like", Schema: sch, Tuples: tuples}
}

// makeSellsBody encodes the Yahoo stand-in's attribute dependency: make m
// offers body style b iff this predicate holds. Every make offers styles
// 1–3; the four niche styles (4–7) are each offered by a different
// two-thirds of the makes. The §1.3 dependency-filter ablation derives its
// external knowledge from exactly this rule.
func makeSellsBody(m, b int64) bool {
	if b <= 3 {
		return true
	}
	return (m+b)%3 != 0
}
