package datagen

import (
	"testing"

	"hidb/internal/dataspace"
)

func TestAdultLikeShape(t *testing.T) {
	ds := AdultLike(11)
	if ds.N() != AdultN {
		t.Fatalf("n = %d, want %d", ds.N(), AdultN)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	sch := ds.Schema
	if sch.Dims() != 14 || sch.Cat() != 8 {
		t.Fatalf("schema dims=%d cat=%d, want 14/8", sch.Dims(), sch.Cat())
	}
	// Figure 9 domain sizes, left to right.
	wantDomains := []int{2, 5, 6, 6, 7, 8, 14, 41}
	for i, want := range wantDomains {
		if got := sch.Attr(i).DomainSize; got != want {
			t.Errorf("attr %s domain = %d, want %d", sch.Attr(i).Name, got, want)
		}
	}
}

func TestAdultNumericDistinctOrdering(t *testing.T) {
	ds := AdultNumeric(11)
	if ds.Schema.Dims() != 6 || !ds.Schema.IsNumeric() {
		t.Fatalf("adult-numeric schema wrong: %s", ds.Schema)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's distinct-count order: Fnalwgt > Cap-gain > Cap-loss >
	// Wrk-hr > Age > Edu-num. Figure 10b's d sweep depends on it.
	counts := ds.Tuples.DistinctValues(6)
	name := func(i int) string { return ds.Schema.Attr(i).Name }
	order := map[string]int{}
	for i := 0; i < 6; i++ {
		order[name(i)] = counts[i]
	}
	chain := []string{"Fnalwgt", "Cap-gain", "Cap-loss", "Wrk-hr", "Age", "Edu-num"}
	for i := 0; i+1 < len(chain); i++ {
		if order[chain[i]] <= order[chain[i+1]] {
			t.Errorf("distinct(%s)=%d not > distinct(%s)=%d",
				chain[i], order[chain[i]], chain[i+1], order[chain[i+1]])
		}
	}
	// Heavy zero mass on capital gain/loss (the 3-way-split trigger).
	zeroLoss := 0
	li := ds.Schema.IndexOf("Cap-loss")
	for _, tu := range ds.Tuples {
		if tu[li] == 0 {
			zeroLoss++
		}
	}
	if frac := float64(zeroLoss) / float64(ds.N()); frac < 0.90 {
		t.Errorf("Cap-loss zero fraction %v, want >= 0.90", frac)
	}
}

func TestNSFLikeShape(t *testing.T) {
	ds := NSFLike(11)
	if ds.N() != NSFN {
		t.Fatalf("n = %d, want %d", ds.N(), NSFN)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if !ds.Schema.IsCategorical() || ds.Schema.Dims() != 9 {
		t.Fatalf("NSF schema wrong: %s", ds.Schema)
	}
	wantDomains := []int{5, 8, 49, 58, 58, 654, 1093, 3110, 29042}
	for i, want := range wantDomains {
		if got := ds.Schema.Attr(i).DomainSize; got != want {
			t.Errorf("attr %s domain = %d, want %d", ds.Schema.Attr(i).Name, got, want)
		}
	}
	if got := ds.Schema.SliceQueryCount(); got != 5+8+49+58+58+654+1093+3110+29042 {
		t.Errorf("slice query count = %d", got)
	}
}

func TestYahooLikeShape(t *testing.T) {
	ds := YahooLike(11)
	if ds.N() != YahooN {
		t.Fatalf("n = %d, want %d", ds.N(), YahooN)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Schema.Cat() != 3 || ds.Schema.Dims() != 6 {
		t.Fatalf("Yahoo schema wrong: %s", ds.Schema)
	}
	// The duplicate block makes k=64 unsolvable and k=128 solvable.
	mult := ds.Tuples.MaxMultiplicity()
	if mult != YahooDuplicates {
		t.Fatalf("max multiplicity = %d, want %d", mult, YahooDuplicates)
	}
	if mult <= 64 || mult > 128 {
		t.Fatalf("duplicate count %d must lie in (64,128] for Figure 12", mult)
	}
	// The body-style dependency must hold everywhere.
	for _, tu := range ds.Tuples {
		if !makeSellsBody(tu[2], tu[1]) {
			t.Fatalf("tuple %v violates the make->body-style dependency", tu)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, b := YahooLikeN(2000, 5), YahooLikeN(2000, 5)
	if !a.Tuples.EqualMultiset(b.Tuples) {
		t.Error("YahooLikeN not deterministic")
	}
	c := YahooLikeN(2000, 6)
	if a.Tuples.EqualMultiset(c.Tuples) {
		t.Error("different seeds gave identical Yahoo data")
	}
}

func TestSample(t *testing.T) {
	ds := NSFLikeN(10000, 3)
	s := ds.Sample(0.3, 7)
	frac := float64(s.N()) / float64(ds.N())
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("30%% sample kept %v", frac)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	full := ds.Sample(1.0, 7)
	if full.N() != ds.N() {
		t.Error("100% sample dropped tuples")
	}
}

func TestProjectDataset(t *testing.T) {
	ds := AdultLikeN(1000, 3)
	p, err := ds.Project([]int{0, 1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema.Dims() != 3 || p.N() != 1000 {
		t.Fatalf("projection shape wrong: dims=%d n=%d", p.Schema.Dims(), p.N())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTopDistinct(t *testing.T) {
	ds := AdultNumericN(5000, 3)
	cols := ds.TopDistinct(3, dataspace.Numeric)
	if len(cols) != 3 {
		t.Fatalf("TopDistinct returned %d cols", len(cols))
	}
	counts := ds.Tuples.DistinctValues(ds.Schema.Dims())
	// Every selected column must have at least as many distinct values as
	// every unselected one.
	sel := map[int]bool{}
	minSel := 1 << 30
	for _, c := range cols {
		sel[c] = true
		if counts[c] < minSel {
			minSel = counts[c]
		}
	}
	for i := 0; i < ds.Schema.Dims(); i++ {
		if !sel[i] && counts[i] > minSel {
			t.Errorf("unselected attr %d has %d distinct > selected min %d", i, counts[i], minSel)
		}
	}
	// Results keep schema order.
	for i := 1; i < len(cols); i++ {
		if cols[i] <= cols[i-1] {
			t.Error("TopDistinct columns not in schema order")
		}
	}
	// Asking for more than available truncates.
	if got := ds.TopDistinct(99, dataspace.Numeric); len(got) != 6 {
		t.Errorf("TopDistinct(99) returned %d cols, want 6", len(got))
	}
	if got := ds.TopDistinct(2, dataspace.Categorical); len(got) != 0 {
		t.Errorf("TopDistinct on absent kind returned %d cols", len(got))
	}
}

func TestHardNumericStructure(t *testing.T) {
	m, d, k := 10, 3, 8
	ds, err := HardNumeric(m, d, k)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != m*(k+d) {
		t.Fatalf("n = %d, want m(k+d) = %d", ds.N(), m*(k+d))
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each group: k diagonal duplicates + d distinct off-diagonal points.
	if got := ds.Tuples.MaxMultiplicity(); got != k {
		t.Fatalf("max multiplicity = %d, want k = %d", got, k)
	}
	if got := ds.Tuples.DistinctPoints(); got != m*(d+1) {
		t.Fatalf("distinct points = %d, want m(d+1) = %d", got, m*(d+1))
	}
	if lb := HardNumericLowerBound(m, d); lb != 30 {
		t.Fatalf("lower bound = %d, want 30", lb)
	}
	// Constructor constraints.
	if _, err := HardNumeric(5, 10, 4); err == nil {
		t.Error("d > k accepted")
	}
	if _, err := HardNumeric(0, 1, 1); err == nil {
		t.Error("m = 0 accepted")
	}
}

func TestHardCategoricalStructure(t *testing.T) {
	u, k := 6, 3
	ds, err := HardCategorical(u, k)
	if err != nil {
		t.Fatal(err)
	}
	d := 2 * k
	if ds.N() != d*u {
		t.Fatalf("n = %d, want dU = %d", ds.N(), d*u)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Schema.Dims() != d || !ds.Schema.IsCategorical() {
		t.Fatalf("schema wrong: %s", ds.Schema)
	}
	// Every tuple takes one value on d-1 attributes (the group value) and
	// a different value on exactly one attribute.
	for _, tu := range ds.Tuples {
		freq := map[int64]int{}
		for _, v := range tu {
			freq[v]++
		}
		if len(freq) != 2 {
			t.Fatalf("tuple %v has %d distinct values, want 2", tu, len(freq))
		}
		counts := []int{}
		for _, c := range freq {
			counts = append(counts, c)
		}
		if !(counts[0] == 1 && counts[1] == d-1) && !(counts[0] == d-1 && counts[1] == 1) {
			t.Fatalf("tuple %v value counts %v, want {1, d-1}", tu, counts)
		}
	}
	if _, err := HardCategorical(2, 3); err == nil {
		t.Error("U < 3 accepted")
	}
}

func TestRandomSpecValidation(t *testing.T) {
	if _, err := Random(RandomSpec{N: 10}, 1); err == nil {
		t.Error("spec without attributes accepted")
	}
	if _, err := Random(RandomSpec{N: -1, CatDomains: []int{2}}, 1); err == nil {
		t.Error("negative N accepted")
	}
	if _, err := Random(RandomSpec{N: 1, CatDomains: []int{0}}, 1); err == nil {
		t.Error("zero domain accepted")
	}
	if _, err := Random(RandomSpec{N: 1, NumRanges: [][2]int64{{5, 1}}}, 1); err == nil {
		t.Error("inverted range accepted")
	}
	ds, err := Random(RandomSpec{
		N:          500,
		CatDomains: []int{3, 7},
		NumRanges:  [][2]int64{{-10, 10}},
		Skew:       1.0,
		DupRate:    0.2,
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 500 {
		t.Fatalf("n = %d", ds.N())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Tuples.MaxMultiplicity() < 2 {
		t.Error("DupRate 0.2 produced no duplicates in 500 tuples")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"yahoo", "nsf", "adult", "adult-numeric"} {
		ds, err := ByName(name, 500, 3)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if ds.N() != 500 {
			t.Errorf("%s: n = %d, want 500", name, ds.N())
		}
		if err := ds.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// n = 0 means the paper's cardinality.
	ds, err := ByName("nsf", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != NSFN {
		t.Errorf("default n = %d, want %d", ds.N(), NSFN)
	}
	if _, err := ByName("mystery", 0, 3); err == nil {
		t.Error("unknown dataset name accepted")
	}
}
