package datagen

import (
	"hidb/internal/dataspace"
	"hidb/internal/simrand"
)

// AdultN is the cardinality of the paper's Adult workload (UCI census
// extract with incomplete rows removed): 45,222 tuples.
const AdultN = 45222

// adultSchema is the Figure-9 Adult schema: eight categorical attributes
// followed by six numeric ones, in the paper's left-to-right order.
func adultSchema() *dataspace.Schema {
	return dataspace.MustSchema([]dataspace.Attribute{
		{Name: "Sex", Kind: dataspace.Categorical, DomainSize: 2},
		{Name: "Race", Kind: dataspace.Categorical, DomainSize: 5},
		{Name: "Rel", Kind: dataspace.Categorical, DomainSize: 6},
		{Name: "Edu", Kind: dataspace.Categorical, DomainSize: 6},
		{Name: "Marital", Kind: dataspace.Categorical, DomainSize: 7},
		{Name: "Wrk-class", Kind: dataspace.Categorical, DomainSize: 8},
		{Name: "Occ", Kind: dataspace.Categorical, DomainSize: 14},
		{Name: "Country", Kind: dataspace.Categorical, DomainSize: 41},
		{Name: "Edu-num", Kind: dataspace.Numeric, Min: 1, Max: 16},
		{Name: "Age", Kind: dataspace.Numeric, Min: 17, Max: 90},
		{Name: "Wrk-hr", Kind: dataspace.Numeric, Min: 1, Max: 99},
		{Name: "Cap-loss", Kind: dataspace.Numeric, Min: 0, Max: 4356},
		{Name: "Cap-gain", Kind: dataspace.Numeric, Min: 0, Max: 99999},
		{Name: "Fnalwgt", Kind: dataspace.Numeric, Min: 12285, Max: 1490400},
	})
}

// AdultLike synthesizes the Adult census stand-in: Figure-9 schema, 45,222
// tuples, marginals shaped like the real extract. The numeric attributes
// reproduce the two properties the numeric algorithms are sensitive to:
//
//   - heavy point masses (capital-gain/loss are overwhelmingly 0, work
//     hours spike at 40), which trigger rank-shrink's 3-way splits; and
//   - a distinct-count ordering of Fnalwgt > Cap-gain > Cap-loss > Wrk-hr >
//     Age > Edu-num, which Figure 10b's dimensionality sweep relies on.
func AdultLike(seed uint64) *Dataset {
	return adultLikeN("adult-like", AdultN, seed)
}

// AdultLikeN is AdultLike with an explicit cardinality, for scaled-down test
// runs.
func AdultLikeN(n int, seed uint64) *Dataset {
	return adultLikeN("adult-like", n, seed)
}

func adultLikeN(name string, n int, seed uint64) *Dataset {
	rng := simrand.New(seed)
	sch := adultSchema()

	race := simrand.NewZipf(rng, 5, 1.8) // one dominant race value
	rel := simrand.NewZipf(rng, 6, 0.9)
	edu := simrand.NewZipf(rng, 6, 0.7)
	marital := simrand.NewZipf(rng, 7, 0.9)
	wrkClass := simrand.NewZipf(rng, 8, 1.6) // most rows are "Private"
	occ := simrand.NewZipf(rng, 14, 0.4)
	country := simrand.NewZipf(rng, 41, 2.6) // ~90% from one country

	// Capital gain/loss take one of a small set of reportable amounts, as
	// in the real data (~120 and ~100 distinct values respectively).
	gainVals := distinctAmounts(rng, 140, 114, 99999)
	lossVals := distinctAmounts(rng, 110, 155, 4356)

	tuples := make(dataspace.Bag, 0, n)
	for i := 0; i < n; i++ {
		t := make(dataspace.Tuple, sch.Dims())
		// Sex: two values, roughly 2:1.
		if rng.Bool(0.67) {
			t[0] = 1
		} else {
			t[0] = 2
		}
		t[1] = race.Draw()
		t[2] = rel.Draw()
		t[3] = edu.Draw()
		t[4] = marital.Draw()
		t[5] = wrkClass.Draw()
		t[6] = occ.Draw()
		t[7] = country.Draw()

		// Edu-num 1..16, correlated with the Edu category and peaked in
		// the middle (high-school / some-college levels).
		eduNum := 6 + int64(float64(t[3])) + rng.Int64n(4)
		t[8] = clamp(eduNum, 1, 16)

		// Age 17..90, right-skewed around the late 30s.
		age := int64(17 + absInt(rng.NormFloat64())*14)
		t[9] = clamp(age, 17, 90)

		// Work hours 1..99 with a large spike at 40.
		switch {
		case rng.Bool(0.46):
			t[10] = 40
		case rng.Bool(0.5):
			t[10] = clamp(40+rng.Int64n(25)-12, 1, 99)
		default:
			t[10] = 1 + rng.Int64n(99)
		}

		// Capital loss: ~95% exactly 0, else one of the preset amounts.
		if rng.Bool(0.953) {
			t[11] = 0
		} else {
			t[11] = lossVals[rng.Intn(len(lossVals))]
		}

		// Capital gain: ~92% exactly 0, else one of the preset amounts.
		if rng.Bool(0.916) {
			t[12] = 0
		} else {
			t[12] = gainVals[rng.Intn(len(gainVals))]
		}

		// Final sampling weight: wide, nearly all-distinct.
		t[13] = 12285 + rng.Int64n(1490400-12285+1)

		tuples = append(tuples, t)
	}
	return &Dataset{Name: name, Schema: sch, Tuples: tuples}
}

// AdultNumeric projects the Adult stand-in onto its six numeric attributes,
// matching the paper's Adult-numeric workload ("the same cardinality and
// dimensionality as Adult" restricted to numeric columns).
func AdultNumeric(seed uint64) *Dataset {
	return AdultNumericN(AdultN, seed)
}

// AdultNumericN is AdultNumeric with an explicit cardinality.
func AdultNumericN(n int, seed uint64) *Dataset {
	full := adultLikeN("adult-like", n, seed)
	cols := []int{8, 9, 10, 11, 12, 13}
	ds, err := full.Project(cols)
	if err != nil {
		panic(err) // static projection over a static schema cannot fail
	}
	ds.Name = "adult-numeric"
	return ds
}

// distinctAmounts returns count distinct values spread over [min, max],
// spaced quadratically so small amounts are denser, like real capital
// gain/loss codes.
func distinctAmounts(rng *simrand.RNG, count int, min, max int64) []int64 {
	vals := make([]int64, count)
	span := float64(max - min)
	for i := range vals {
		f := float64(i) / float64(count-1)
		vals[i] = min + int64(span*f*f)
	}
	// Nudge interior points so the grid is not perfectly regular.
	for i := 1; i < count-1; i++ {
		vals[i] += rng.Int64n(7) - 3
	}
	return vals
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absInt(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
