package datagen

import (
	"fmt"

	"hidb/internal/dataspace"
)

// HardNumeric constructs the adversarial numeric instance of Theorem 3
// (Figure 7): m groups of k+d tuples in the space [1, m+1]^d. Group i holds
// k "diagonal" tuples at the point (i, …, i) and, for each attribute Aj, one
// "non-diagonal" tuple equal to the diagonal point except for value i+1 on
// Aj. Any correct algorithm must cover each of the d·m non-diagonal points
// with a distinct resolved query, so its cost is at least d·m queries.
func HardNumeric(m, d, k int) (*Dataset, error) {
	if m < 1 || d < 1 || k < 1 {
		return nil, fmt.Errorf("datagen: HardNumeric needs m, d, k >= 1, got m=%d d=%d k=%d", m, d, k)
	}
	if d > k {
		return nil, fmt.Errorf("datagen: Theorem 3 requires d <= k, got d=%d k=%d", d, k)
	}
	attrs := make([]dataspace.Attribute, d)
	for i := range attrs {
		attrs[i] = dataspace.Attribute{
			Name: fmt.Sprintf("A%d", i+1),
			Kind: dataspace.Numeric,
			Min:  1,
			Max:  int64(m + 1),
		}
	}
	sch := dataspace.MustSchema(attrs)

	tuples := make(dataspace.Bag, 0, m*(k+d))
	for g := 1; g <= m; g++ {
		diag := make(dataspace.Tuple, d)
		for j := range diag {
			diag[j] = int64(g)
		}
		for c := 0; c < k; c++ {
			tuples = append(tuples, diag)
		}
		for j := 0; j < d; j++ {
			t := diag.Clone()
			t[j] = int64(g + 1)
			tuples = append(tuples, t)
		}
	}
	return &Dataset{
		Name:   fmt.Sprintf("hard-numeric-m%d-d%d-k%d", m, d, k),
		Schema: sch,
		Tuples: tuples,
	}, nil
}

// HardNumericLowerBound returns the Theorem-3 query lower bound d·m for the
// instance built by HardNumeric.
func HardNumericLowerBound(m, d int) int { return d * m }

// HardCategorical constructs the adversarial categorical instance of
// Theorem 4 (Figure 8): U groups of d tuples in a d-dimensional space where
// every attribute has domain size U. In group i (0-based), the j-th tuple
// takes value (i+1) mod U on attribute Aj and value i on every other
// attribute. The theorem requires d = 2k, U >= 3, k >= 3 and dU² <= 2^(d/4)
// for the Ω(dU²) bound to bind; the constructor enforces only the structural
// constraints (d = 2k and U >= 3) so small instances remain testable.
//
// Domain values are shifted from the paper's 0..U-1 to this package's
// 1..U convention.
func HardCategorical(uSize, k int) (*Dataset, error) {
	d := 2 * k
	if uSize < 3 {
		return nil, fmt.Errorf("datagen: HardCategorical needs U >= 3, got %d", uSize)
	}
	if k < 1 {
		return nil, fmt.Errorf("datagen: HardCategorical needs k >= 1, got %d", k)
	}
	attrs := make([]dataspace.Attribute, d)
	for i := range attrs {
		attrs[i] = dataspace.Attribute{
			Name:       fmt.Sprintf("A%d", i+1),
			Kind:       dataspace.Categorical,
			DomainSize: uSize,
		}
	}
	sch := dataspace.MustSchema(attrs)

	tuples := make(dataspace.Bag, 0, d*uSize)
	for g := 0; g < uSize; g++ {
		for j := 0; j < d; j++ {
			t := make(dataspace.Tuple, d)
			for a := range t {
				t[a] = int64(g + 1) // value i, shifted to 1-based
			}
			t[j] = int64((g+1)%uSize + 1) // value (i+1) mod U, shifted
			tuples = append(tuples, t)
		}
	}
	return &Dataset{
		Name:   fmt.Sprintf("hard-categorical-U%d-k%d", uSize, k),
		Schema: sch,
		Tuples: tuples,
	}, nil
}
