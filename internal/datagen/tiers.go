package datagen

import (
	"fmt"
	"iter"

	"hidb/internal/dataspace"
	"hidb/internal/simrand"
)

// Pattern selects the tuple distribution of the scale-tier factory. The
// four patterns stress different parts of the query planner: Sequential
// produces long runs of equal values in rank order (run containers,
// perfectly clustered posting lists), Random produces uniform iid values
// (array/bitmap containers, no clustering), Realistic produces the skew the
// paper's datasets show (Zipf categorical marginals, numeric point masses),
// and Pathological hides every match of a specific 3-way conjunction at the
// bottom of the rank space, defeating both the scan's early exit and the
// posting walk's hope of finding k+1 matches near the top.
type Pattern int

const (
	PatternSequential Pattern = iota
	PatternRandom
	PatternRealistic
	PatternPathological
)

// Patterns lists every pattern, in declaration order.
var Patterns = []Pattern{PatternSequential, PatternRandom, PatternRealistic, PatternPathological}

func (p Pattern) String() string {
	switch p {
	case PatternSequential:
		return "seq"
	case PatternRandom:
		return "rand"
	case PatternRealistic:
		return "real"
	case PatternPathological:
		return "path"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Tier selects the dataset size of the scale-tier factory.
type Tier int

const (
	Tier10K Tier = iota
	Tier100K
	Tier1M
	// Tier10M is the larger-than-RAM tier: materializing it costs
	// gigabytes, so it is meant to be streamed (TieredSeq) into the disk
	// engine rather than built with Tiered.
	Tier10M
)

// Tiers lists every tier, smallest first. Code that materializes every
// tier should stop before Tier10M (see its comment).
var Tiers = []Tier{Tier10K, Tier100K, Tier1M, Tier10M}

// N returns the tier's tuple count.
func (t Tier) N() int {
	switch t {
	case Tier10K:
		return 10_000
	case Tier100K:
		return 100_000
	case Tier1M:
		return 1_000_000
	case Tier10M:
		return 10_000_000
	default:
		return 0
	}
}

func (t Tier) String() string {
	switch t {
	case Tier10K:
		return "10k"
	case Tier100K:
		return "100k"
	case Tier1M:
		return "1m"
	case Tier10M:
		return "10m"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// tierDomain sizes the three low-cardinality categorical attributes of the
// tier schema. 32 keeps them inside the planner's bitmap-index gate while
// making any single equality predicate match ~3% of the relation — broad
// enough that intersecting two or three of them is genuinely cheaper than
// walking one posting list.
const tierDomain = 32

// tierWideDomain sizes the high-cardinality categorical attribute, which
// stays on posting lists (beyond the bitmap gate).
const tierWideDomain = 1024

// pathoTailFrac is the fraction of Pathological ranks (at the bottom)
// holding the needle conjunction; see PathoNeedle.
const pathoTailFrac = 1024

// PathoNeedle is the categorical value v such that C1=v ∧ C2=v ∧ C3=v
// matches only the bottom 1/1024 of a Pathological dataset's ranks, while
// each predicate alone matches ~1/6 of the relation (the needle value is
// skewed: a sixth of all head tuples carry it in each needle attribute).
// Broad single predicates with a vanishing conjunction are the worst case
// the bitmap intersection exists for: every single-attribute access path
// must enumerate ~17% of the store, and the dense per-block bitmaps the
// skew produces make the word-parallel AND maximally profitable.
const PathoNeedle int64 = 1

// pathoNeedleProb is the per-attribute frequency of the needle value in
// Pathological head tuples: high enough that needle posting lists hold
// ~n/6 ranks and their per-block cardinality (~65536/6) crosses the
// bitmap-container threshold, low enough that the tightest list stays
// under the v1 planner's n/4 scan margin (so v1 picks the posting walk,
// not the scan, and the benchmark comparison is plan against plan).
const pathoNeedleProb = 1.0 / 6

// TierSchema returns the fixed schema every tiered dataset shares: three
// low-cardinality categorical attributes C1..C3 (domain 32, bitmap-
// indexable), one high-cardinality categorical C4 (domain 1024, posting
// lists only), and two numeric attributes N1 (one distinct value per rank)
// and N2 (20-bit range).
func TierSchema(tier Tier) *dataspace.Schema {
	n := int64(tier.N())
	sch, err := dataspace.NewSchema([]dataspace.Attribute{
		{Name: "C1", Kind: dataspace.Categorical, DomainSize: tierDomain},
		{Name: "C2", Kind: dataspace.Categorical, DomainSize: tierDomain},
		{Name: "C3", Kind: dataspace.Categorical, DomainSize: tierDomain},
		{Name: "C4", Kind: dataspace.Categorical, DomainSize: tierWideDomain},
		{Name: "N1", Kind: dataspace.Numeric, Min: 0, Max: n - 1},
		{Name: "N2", Kind: dataspace.Numeric, Min: 0, Max: 1 << 20},
	})
	if err != nil {
		panic(fmt.Sprintf("datagen: tier schema: %v", err)) // static schema; cannot fail
	}
	return sch
}

// TieredSeq streams the tuples of one deterministic tiered dataset in
// descending priority order — tuple r of the iteration is rank r — without
// ever materializing the relation. It yields exactly the tuples Tiered
// materializes for the same (pattern, tier, seed) triple, bit for bit
// (Tiered is implemented on top of it), which is what lets the disk
// builder write a Tier10M store, and a crawl verify it, on a small heap.
// Each range over the sequence restarts the generator from the seed.
func TieredSeq(p Pattern, tier Tier, seed uint64) iter.Seq[dataspace.Tuple] {
	n := tier.N()
	sch := TierSchema(tier)
	return func(yield func(dataspace.Tuple) bool) {
		rng := simrand.New(seed ^ uint64(p)<<32 ^ uint64(tier)<<40)
		var zipfs []*simrand.Zipf
		if p == PatternRealistic {
			zipfs = []*simrand.Zipf{
				simrand.NewZipf(rng, tierDomain, 1.07),
				simrand.NewZipf(rng, tierDomain, 1.07),
				simrand.NewZipf(rng, tierDomain, 1.07),
				simrand.NewZipf(rng, tierWideDomain, 1.2),
			}
		}
		tail := n - n/pathoTailFrac
		for r := 0; r < n; r++ {
			t := make(dataspace.Tuple, sch.Dims())
			switch p {
			case PatternSequential:
				// Nested cycles: C1 flips every rank, C2 every 32 ranks, C3
				// every 1024 — long runs of equal values at every level.
				t[0] = int64(r%tierDomain) + 1
				t[1] = int64(r/tierDomain%tierDomain) + 1
				t[2] = int64(r/(tierDomain*tierDomain)%tierDomain) + 1
				t[3] = int64(r%tierWideDomain) + 1
				t[4] = int64(r)
				t[5] = int64(r % (1 << 20))
			case PatternRandom:
				t[0] = rng.IntRange(1, tierDomain)
				t[1] = rng.IntRange(1, tierDomain)
				t[2] = rng.IntRange(1, tierDomain)
				t[3] = rng.IntRange(1, tierWideDomain)
				t[4] = rng.IntRange(0, int64(n-1))
				t[5] = rng.IntRange(0, 1<<20)
			case PatternRealistic:
				t[0] = zipfs[0].Draw()
				t[1] = zipfs[1].Draw()
				t[2] = zipfs[2].Draw()
				t[3] = zipfs[3].Draw()
				t[4] = int64(r) // price-like: correlated with priority
				t[5] = rng.IntRange(0, 1<<20)
			case PatternPathological:
				if r >= tail {
					// The needle conjunction lives only here, at the very
					// bottom of the priority order.
					t[0], t[1], t[2] = PathoNeedle, PathoNeedle, PathoNeedle
				} else {
					for i := 0; i < 3; i++ {
						if rng.Bool(pathoNeedleProb) {
							t[i] = PathoNeedle
						} else {
							t[i] = rng.IntRange(PathoNeedle+1, tierDomain)
						}
					}
					if t[0] == PathoNeedle && t[1] == PathoNeedle && t[2] == PathoNeedle {
						t[2] = PathoNeedle + 1
					}
				}
				t[3] = rng.IntRange(1, tierWideDomain)
				t[4] = int64(r)
				t[5] = rng.IntRange(0, 1<<20)
			}
			if !yield(t) {
				return
			}
		}
	}
}

// Tiered builds one deterministic dataset of the given pattern and size:
// the same (pattern, tier, seed) triple always yields the same tuples.
// Tuple order is the intended priority order — rank r is Tuples[r] — so the
// slice can feed index.New directly. It materializes TieredSeq; prefer the
// sequence for Tier10M (see the tier's comment).
func Tiered(p Pattern, tier Tier, seed uint64) *Dataset {
	tuples := make(dataspace.Bag, 0, tier.N())
	for t := range TieredSeq(p, tier, seed) {
		tuples = append(tuples, t)
	}
	return &Dataset{
		Name:   fmt.Sprintf("%s-%s", p, tier),
		Schema: TierSchema(tier),
		Tuples: tuples,
	}
}
