// Package datagen generates the hidden databases the experiments crawl.
//
// The paper evaluates on three real datasets (Figure 9): a Yahoo! Autos
// crawl, the NSF award search database, and the UCI Adult census extract.
// None of those can ship with this repository, so datagen builds synthetic
// stand-ins that match what the crawling algorithms actually observe: the
// tuple count, the exact Figure-9 schema and domain-size vector, the value
// skew (Zipf marginals for categorical attributes, realistic spreads and
// heavy point masses for numeric ones), and the duplicate structure (the
// Yahoo dataset contains a point with more than 64 identical tuples, which
// is why the paper reports no Yahoo value at k = 64).
//
// It also constructs the adversarial lower-bound instances of Figures 7 and
// 8 used to verify Theorems 3 and 4.
package datagen

import (
	"fmt"
	"sort"

	"hidb/internal/dataspace"
	"hidb/internal/simrand"
)

// ByName returns one of the named standard workloads: "yahoo", "nsf",
// "adult" or "adult-numeric". n overrides the cardinality; 0 means the
// paper's size. The CLIs and examples resolve their -dataset flags here.
func ByName(name string, n int, seed uint64) (*Dataset, error) {
	switch name {
	case "yahoo":
		if n == 0 {
			n = YahooN
		}
		return YahooLikeN(n, seed), nil
	case "nsf":
		if n == 0 {
			n = NSFN
		}
		return NSFLikeN(n, seed), nil
	case "adult":
		if n == 0 {
			n = AdultN
		}
		return AdultLikeN(n, seed), nil
	case "adult-numeric":
		if n == 0 {
			n = AdultN
		}
		return AdultNumericN(n, seed), nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q (want yahoo, nsf, adult or adult-numeric)", name)
	}
}

// Dataset bundles a schema with a bag of tuples over it.
type Dataset struct {
	// Name identifies the dataset in harness output, e.g. "yahoo-like".
	Name string
	// Schema is the data space, attribute order matching Figure 9.
	Schema *dataspace.Schema
	// Tuples is the hidden database's content (a bag; duplicates allowed).
	Tuples dataspace.Bag
}

// N returns the number of tuples.
func (d *Dataset) N() int { return len(d.Tuples) }

// Validate checks every tuple against the schema.
func (d *Dataset) Validate() error {
	for i, t := range d.Tuples {
		if err := t.Validate(d.Schema); err != nil {
			return fmt.Errorf("datagen: dataset %q tuple %d: %w", d.Name, i, err)
		}
	}
	return nil
}

// Sample returns a Bernoulli sample of the dataset: each tuple is kept
// independently with probability p, mirroring how the paper built its 20%…
// 100% workloads for Figures 10c and 11c.
func (d *Dataset) Sample(p float64, seed uint64) *Dataset {
	if p >= 1 {
		return &Dataset{Name: d.Name, Schema: d.Schema, Tuples: d.Tuples}
	}
	rng := simrand.New(seed)
	out := make(dataspace.Bag, 0, int(float64(len(d.Tuples))*p)+16)
	for _, t := range d.Tuples {
		if rng.Bool(p) {
			out = append(out, t)
		}
	}
	return &Dataset{
		Name:   fmt.Sprintf("%s-%d%%", d.Name, int(p*100+0.5)),
		Schema: d.Schema,
		Tuples: out,
	}
}

// Project returns the dataset restricted to the given attribute positions
// (in the given order), as the paper does when varying dimensionality in
// Figures 10b and 11b.
func (d *Dataset) Project(cols []int) (*Dataset, error) {
	sch, err := d.Schema.Project(cols)
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Name:   fmt.Sprintf("%s-d%d", d.Name, len(cols)),
		Schema: sch,
		Tuples: d.Tuples.Project(cols),
	}, nil
}

// TopDistinct returns the positions of the dims attributes of the given
// kind with the most distinct values in the bag, keeping the schema's
// original relative order. This is how the paper derives its
// lower-dimensional workloads ("taking the d attributes … that have the
// highest numbers of distinct values").
func (d *Dataset) TopDistinct(dims int, kind dataspace.Kind) []int {
	counts := d.Tuples.DistinctValues(d.Schema.Dims())
	type attrCount struct{ pos, count int }
	var eligible []attrCount
	for i := 0; i < d.Schema.Dims(); i++ {
		if d.Schema.Attr(i).Kind == kind {
			eligible = append(eligible, attrCount{pos: i, count: counts[i]})
		}
	}
	sort.SliceStable(eligible, func(a, b int) bool {
		return eligible[a].count > eligible[b].count
	})
	if dims > len(eligible) {
		dims = len(eligible)
	}
	cols := make([]int, 0, dims)
	for _, e := range eligible[:dims] {
		cols = append(cols, e.pos)
	}
	sort.Ints(cols)
	return cols
}
