package datagen

import (
	"testing"
)

func TestTieredDeterministic(t *testing.T) {
	for _, p := range Patterns {
		a := Tiered(p, Tier10K, 7)
		b := Tiered(p, Tier10K, 7)
		if len(a.Tuples) != len(b.Tuples) {
			t.Fatalf("%v: lengths differ: %d vs %d", p, len(a.Tuples), len(b.Tuples))
		}
		for i := range a.Tuples {
			if !a.Tuples[i].Equal(b.Tuples[i]) {
				t.Fatalf("%v: tuple %d differs between identical seeds: %v vs %v",
					p, i, a.Tuples[i], b.Tuples[i])
			}
		}
		c := Tiered(p, Tier10K, 8)
		same := true
		for i := range a.Tuples {
			if !a.Tuples[i].Equal(c.Tuples[i]) {
				same = false
				break
			}
		}
		if p != PatternSequential && same {
			t.Errorf("%v: different seeds produced identical datasets", p)
		}
	}
}

func TestTieredValidatesAtEveryTier(t *testing.T) {
	for _, p := range Patterns {
		for _, tier := range []Tier{Tier10K, Tier100K} {
			d := Tiered(p, tier, 1)
			if d.N() != tier.N() {
				t.Fatalf("%v/%v: got %d tuples, want %d", p, tier, d.N(), tier.N())
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("%v/%v: %v", p, tier, err)
			}
			want := p.String() + "-" + tier.String()
			if d.Name != want {
				t.Errorf("%v/%v: name %q, want %q", p, tier, d.Name, want)
			}
		}
	}
}

// TestPathologicalNeedle pins the property the planner benchmarks rely on:
// the needle conjunction matches exactly the bottom 1/1024 of the ranks and
// nothing above them, while each needle predicate alone stays ~1/6
// selective.
func TestPathologicalNeedle(t *testing.T) {
	d := Tiered(PatternPathological, Tier10K, 3)
	n := d.N()
	tail := n - n/pathoTailFrac
	single := 0
	for r, tu := range d.Tuples {
		needle := tu[0] == PathoNeedle && tu[1] == PathoNeedle && tu[2] == PathoNeedle
		if r < tail && needle {
			t.Fatalf("needle conjunction above the tail, at rank %d", r)
		}
		if r >= tail && !needle {
			t.Fatalf("non-needle tuple inside the tail, at rank %d", r)
		}
		if tu[0] == PathoNeedle {
			single++
		}
	}
	// C1 = needle alone should match roughly n/6 (tail included) — broad
	// enough to hurt a posting walk, under the v1 planner's n/4 margin.
	// Accept a generous band so the test never flakes on seed choice.
	if single < n/10 || single > n/4 {
		t.Errorf("single-predicate needle matches = %d, want about n/6 = %d", single, n/6)
	}
}

func TestTierAndPatternStrings(t *testing.T) {
	if Tier1M.N() != 1_000_000 || Tier100K.N() != 100_000 || Tier10K.N() != 10_000 {
		t.Fatalf("tier sizes wrong: %d %d %d", Tier10K.N(), Tier100K.N(), Tier1M.N())
	}
	if Tier(99).N() != 0 {
		t.Errorf("unknown tier should size 0")
	}
	if s := Pattern(99).String(); s != "pattern(99)" {
		t.Errorf("unknown pattern string = %q", s)
	}
	if s := Tier(99).String(); s != "tier(99)" {
		t.Errorf("unknown tier string = %q", s)
	}
}

// TestSequentialRuns pins the clustering property that makes the sequential
// pattern exercise run containers: C3 is constant over kilorank blocks.
func TestSequentialRuns(t *testing.T) {
	d := Tiered(PatternSequential, Tier10K, 0)
	for r := 1; r < 1024 && r < d.N(); r++ {
		if d.Tuples[r][2] != d.Tuples[0][2] {
			t.Fatalf("C3 changed at rank %d within the first kilorank block", r)
		}
	}
	if d.Tuples[0][4] != 0 || d.Tuples[1][4] != 1 {
		t.Errorf("N1 should enumerate ranks, got %d, %d", d.Tuples[0][4], d.Tuples[1][4])
	}
}
