package datagen

import (
	"fmt"

	"hidb/internal/dataspace"
	"hidb/internal/simrand"
)

// RandomSpec describes a randomly generated dataset for property-based
// tests: an arbitrary mixed schema and value distribution.
type RandomSpec struct {
	// N is the number of tuples.
	N int
	// CatDomains lists the domain sizes of the leading categorical
	// attributes (may be empty).
	CatDomains []int
	// NumRanges lists [min, max] bounds of the trailing numeric attributes
	// (may be empty).
	NumRanges [][2]int64
	// Skew is the Zipf exponent for categorical draws (0 = uniform).
	Skew float64
	// DupRate is the probability that a tuple is a copy of an earlier one,
	// producing a bag with genuine duplicates.
	DupRate float64
}

// Random builds a dataset from the spec. It is the workhorse of the
// property-based tests, which assert that every algorithm retrieves exactly
// the generated bag.
func Random(spec RandomSpec, seed uint64) (*Dataset, error) {
	if spec.N < 0 {
		return nil, fmt.Errorf("datagen: Random needs N >= 0, got %d", spec.N)
	}
	if len(spec.CatDomains)+len(spec.NumRanges) == 0 {
		return nil, fmt.Errorf("datagen: Random needs at least one attribute")
	}
	rng := simrand.New(seed)

	attrs := make([]dataspace.Attribute, 0, len(spec.CatDomains)+len(spec.NumRanges))
	for i, u := range spec.CatDomains {
		if u < 1 {
			return nil, fmt.Errorf("datagen: categorical domain %d must be >= 1, got %d", i, u)
		}
		attrs = append(attrs, dataspace.Attribute{
			Name:       fmt.Sprintf("C%d", i+1),
			Kind:       dataspace.Categorical,
			DomainSize: u,
		})
	}
	for i, r := range spec.NumRanges {
		if r[0] > r[1] {
			return nil, fmt.Errorf("datagen: numeric range %d has min > max", i)
		}
		attrs = append(attrs, dataspace.Attribute{
			Name: fmt.Sprintf("N%d", i+1),
			Kind: dataspace.Numeric,
			Min:  r[0],
			Max:  r[1],
		})
	}
	sch, err := dataspace.NewSchema(attrs)
	if err != nil {
		return nil, err
	}

	zipfs := make([]*simrand.Zipf, len(spec.CatDomains))
	for i, u := range spec.CatDomains {
		zipfs[i] = simrand.NewZipf(rng, u, spec.Skew)
	}

	tuples := make(dataspace.Bag, 0, spec.N)
	for i := 0; i < spec.N; i++ {
		if len(tuples) > 0 && rng.Bool(spec.DupRate) {
			tuples = append(tuples, tuples[rng.Intn(len(tuples))])
			continue
		}
		t := make(dataspace.Tuple, sch.Dims())
		for a := 0; a < sch.Dims(); a++ {
			if a < len(spec.CatDomains) {
				t[a] = zipfs[a].Draw()
			} else {
				r := spec.NumRanges[a-len(spec.CatDomains)]
				t[a] = rng.IntRange(r[0], r[1])
			}
		}
		tuples = append(tuples, t)
	}
	return &Dataset{Name: "random", Schema: sch, Tuples: tuples}, nil
}
