package datagen

import (
	"hidb/internal/dataspace"
	"hidb/internal/simrand"
)

// NSFN is the cardinality of the paper's NSF award workload: 47,816 tuples.
const NSFN = 47816

// nsfSchema is the Figure-9 NSF schema: nine categorical attributes with
// domain sizes 5, 8, 49, 58, 58, 654, 1093, 3110 and 29042, in the paper's
// left-to-right order.
func nsfSchema() *dataspace.Schema {
	return dataspace.MustSchema([]dataspace.Attribute{
		{Name: "Amnt", Kind: dataspace.Categorical, DomainSize: 5},
		{Name: "Instru", Kind: dataspace.Categorical, DomainSize: 8},
		{Name: "Field", Kind: dataspace.Categorical, DomainSize: 49},
		{Name: "PI-state", Kind: dataspace.Categorical, DomainSize: 58},
		{Name: "NSF-org", Kind: dataspace.Categorical, DomainSize: 58},
		{Name: "Prog-mgr", Kind: dataspace.Categorical, DomainSize: 654},
		{Name: "City", Kind: dataspace.Categorical, DomainSize: 1093},
		{Name: "PI-org", Kind: dataspace.Categorical, DomainSize: 3110},
		{Name: "PI-name", Kind: dataspace.Categorical, DomainSize: 29042},
	})
}

// NSFLike synthesizes the NSF award-search stand-in: the exact Figure-9
// domain-size vector, 47,816 tuples, Zipf-skewed marginals, and the
// correlations a real award database exhibits (a PI name is nearly
// functionally determined by one organization and city; a program manager
// belongs to one NSF organization). Those correlations matter because they
// control how many deep data-space-tree nodes overflow, which is what
// separates DFS from the slice-cover family in Figure 11.
func NSFLike(seed uint64) *Dataset {
	return nsfLikeN("nsf-like", NSFN, seed)
}

// NSFLikeN is NSFLike with an explicit cardinality, for scaled-down test
// runs.
func NSFLikeN(n int, seed uint64) *Dataset {
	return nsfLikeN("nsf-like", n, seed)
}

func nsfLikeN(name string, n int, seed uint64) *Dataset {
	rng := simrand.New(seed)
	sch := nsfSchema()

	amnt := simrand.NewZipf(rng, 5, 0.8)
	instru := simrand.NewZipf(rng, 8, 1.4)
	field := simrand.NewZipf(rng, 49, 1.0)
	state := simrand.NewZipf(rng, 58, 1.0)
	org := simrand.NewZipf(rng, 58, 0.9)
	mgr := simrand.NewZipf(rng, 654, 0.6)
	city := simrand.NewZipf(rng, 1093, 0.9)
	piOrg := simrand.NewZipf(rng, 3110, 0.7)
	piName := simrand.NewZipf(rng, 29042, 0.4)

	// Correlation tables: each program manager works within one NSF org;
	// each PI org sits in one state and one city; each PI name belongs to
	// one org and has a home field.
	mgrOrg := make([]int64, 654+1)
	for i := range mgrOrg {
		mgrOrg[i] = org.Draw()
	}
	orgState := make([]int64, 3110+1)
	orgCity := make([]int64, 3110+1)
	for i := range orgState {
		orgState[i] = state.Draw()
		orgCity[i] = city.Draw()
	}
	nameOrg := make([]int64, 29042+1)
	nameField := make([]int64, 29042+1)
	for i := range nameOrg {
		nameOrg[i] = piOrg.Draw()
		nameField[i] = field.Draw()
	}

	tuples := make(dataspace.Bag, 0, n)
	for i := 0; i < n; i++ {
		t := make(dataspace.Tuple, sch.Dims())
		name := piName.Draw()
		po := nameOrg[name]
		if rng.Bool(0.05) { // PIs occasionally move institutions
			po = piOrg.Draw()
		}
		m := mgr.Draw()

		t[0] = amnt.Draw()
		t[1] = instru.Draw()
		t[2] = nameField[name]
		if rng.Bool(0.15) { // interdisciplinary awards
			t[2] = field.Draw()
		}
		t[3] = orgState[po]
		t[4] = mgrOrg[m]
		t[5] = m
		t[6] = orgCity[po]
		t[7] = po
		t[8] = name
		tuples = append(tuples, t)
	}
	return &Dataset{Name: name, Schema: sch, Tuples: tuples}
}
