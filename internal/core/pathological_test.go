package core

import (
	"context"
	"testing"

	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// The tests in this file drive the algorithms over adversarially shaped
// data: heavy point masses (the 3-way-split trigger), constant columns,
// all-duplicate-but-solvable bags, single-value domains, and the paper's
// own Figure-3 example.

// TestFigure3Example reproduces the paper's 1-d walkthrough dataset: values
// 10, 20, 30, 35, 45 and three duplicates at 55 with k = 4.
func TestFigure3Example(t *testing.T) {
	sch := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "A1", Kind: dataspace.Numeric, Min: 0, Max: 100},
	})
	bag := dataspace.Bag{{10}, {20}, {30}, {35}, {45}, {55}, {55}, {55}}
	srv, err := hiddendb.NewLocal(sch, bag, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (RankShrink{}).Crawl(context.Background(), srv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tuples.EqualMultiset(bag) {
		t.Fatal("Figure 3 dataset not fully extracted")
	}
	// The paper's walkthrough uses 6 queries; the exact count depends on
	// the priority permutation, but it must stay within the same ballpark
	// (Lemma 1: O(n/k) with constant 20 ⇒ 40 for n=8, k=4).
	if res.Queries > 40 {
		t.Errorf("cost %d far above Lemma-1 ballpark", res.Queries)
	}
}

// TestHeavyPointMass forces 3-way splits: 90% of tuples share one value on
// the first attribute (like capital-gain = 0 in the census data).
func TestHeavyPointMass(t *testing.T) {
	sch := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "Gain", Kind: dataspace.Numeric, Min: 0, Max: 100000},
		{Name: "Wgt", Kind: dataspace.Numeric, Min: 0, Max: 1 << 30},
	})
	bag := make(dataspace.Bag, 0, 5000)
	for i := 0; i < 5000; i++ {
		g := int64(0)
		if i%10 == 0 {
			g = int64(i * 17 % 100000)
		}
		bag = append(bag, dataspace.Tuple{g, int64(i) * 7919})
	}
	ds := &datagen.Dataset{Name: "point-mass", Schema: sch, Tuples: bag}
	k := 32
	res := crawl(t, RankShrink{}, ds, k, nil)
	bound := 20*2*len(bag)/k + 1
	if res.Queries > bound {
		t.Errorf("point-mass cost %d > Lemma-2 bound %d", res.Queries, bound)
	}
	// A 3-way split must actually have fired: with 4500 tuples at Gain=0
	// and k=32, the multiplicity threshold k/4=8 is always exceeded there.
	if res.Overflowed == 0 {
		t.Error("no overflows on a 5000-tuple bag with k=32?")
	}
}

// TestConstantColumn exhausts an attribute immediately: every tuple has the
// same value on A1, so all splitting happens on A2.
func TestConstantColumn(t *testing.T) {
	sch := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "A1", Kind: dataspace.Numeric, Min: 5, Max: 5},
		{Name: "A2", Kind: dataspace.Numeric, Min: 0, Max: 101000},
	})
	bag := make(dataspace.Bag, 0, 1000)
	for i := 0; i < 1000; i++ {
		bag = append(bag, dataspace.Tuple{5, int64(i * 101)})
	}
	ds := &datagen.Dataset{Name: "constant-col", Schema: sch, Tuples: bag}
	for _, alg := range []Crawler{RankShrink{}, BinaryShrink{}} {
		res := crawl(t, alg, ds, 16, nil)
		if res.Queries == 0 {
			t.Errorf("%s: zero queries", alg.Name())
		}
	}
}

// TestAllDuplicatesSolvable: the whole bag sits at one point with exactly k
// copies — the extreme the solvability condition permits.
func TestAllDuplicatesSolvable(t *testing.T) {
	sch := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "C", Kind: dataspace.Categorical, DomainSize: 3},
		{Name: "N", Kind: dataspace.Numeric, Min: 0, Max: 10},
	})
	k := 8
	bag := make(dataspace.Bag, 0, k)
	for i := 0; i < k; i++ {
		bag = append(bag, dataspace.Tuple{2, 7})
	}
	ds := &datagen.Dataset{Name: "all-dups", Schema: sch, Tuples: bag}
	res := crawl(t, Hybrid{}, ds, k, nil)
	if len(res.Tuples) != k {
		t.Fatalf("retrieved %d of %d duplicates", len(res.Tuples), k)
	}
}

// TestSingleValueDomains: every categorical domain has size 1, so the tree
// has a single path.
func TestSingleValueDomains(t *testing.T) {
	sch := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "C1", Kind: dataspace.Categorical, DomainSize: 1},
		{Name: "C2", Kind: dataspace.Categorical, DomainSize: 1},
	})
	bag := dataspace.Bag{{1, 1}, {1, 1}, {1, 1}}
	ds := &datagen.Dataset{Name: "single-value", Schema: sch, Tuples: bag}
	for _, alg := range []Crawler{DFS{}, SliceCover{}, LazySliceCover{}, Hybrid{}} {
		res := crawl(t, alg, ds, 4, nil)
		if len(res.Tuples) != 3 {
			t.Errorf("%s: got %d tuples", alg.Name(), len(res.Tuples))
		}
	}
}

// TestNegativeAndExtremeValues exercises the sentinel arithmetic: values at
// the far ends of the int64 range (within the sentinel slack).
func TestNegativeAndExtremeValues(t *testing.T) {
	sch := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "N", Kind: dataspace.Numeric},
	})
	bag := dataspace.Bag{
		{dataspace.NegInf}, {dataspace.NegInf + 1}, {0},
		{dataspace.PosInf - 1}, {dataspace.PosInf},
	}
	srv, err := hiddendb.NewLocal(sch, bag, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (RankShrink{}).Crawl(context.Background(), srv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tuples.EqualMultiset(bag) {
		t.Fatal("extreme-value bag not fully extracted")
	}
}

// TestManyEmptyRegions: tuples cluster in two far-apart blobs; the space
// between them must not blow up the cost (this is where binary-shrink
// suffers and rank-shrink does not).
func TestManyEmptyRegions(t *testing.T) {
	sch := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "N", Kind: dataspace.Numeric, Min: 0, Max: 1 << 40},
	})
	bag := make(dataspace.Bag, 0, 2000)
	for i := 0; i < 1000; i++ {
		bag = append(bag, dataspace.Tuple{int64(i)})
		bag = append(bag, dataspace.Tuple{1<<40 - int64(i)})
	}
	ds := &datagen.Dataset{Name: "two-blobs", Schema: sch, Tuples: bag}
	k := 16
	rank := crawl(t, RankShrink{}, ds, k, nil)
	bin := crawl(t, BinaryShrink{}, ds, k, nil)
	if rank.Queries > 20*2000/k+1 {
		t.Errorf("rank-shrink cost %d above bound", rank.Queries)
	}
	if bin.Queries < rank.Queries {
		t.Errorf("binary-shrink (%d) beat rank-shrink (%d) on its own worst case",
			bin.Queries, rank.Queries)
	}
}
