package core

import (
	"context"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// Hybrid is the paper's algorithm for mixed data spaces (§5): it runs
// lazy-slice-cover over the categorical prefix (with every numeric predicate
// pinned to the full range, emulating a categorical server) and, upon
// reaching a categorical point whose slice could not answer it locally,
// invokes rank-shrink over the numeric subspace with the categorical
// coordinates fixed (emulating a numeric server).
//
// Cost (Lemma 9): (n/k)·Σ min{Ui, n/k} + Σ Ui + O((d−cat)·n/k) for cat > 1,
// and U1 + O(d·n/k) for cat = 1. Degenerate cases are handled naturally:
// cat = 0 is exactly rank-shrink and cat = d exactly lazy-slice-cover.
type Hybrid struct {
	// EagerSlices switches the categorical phase from lazy-slice-cover to
	// eager slice-cover (all slice queries issued up front). The paper's
	// hybrid uses the lazy variant; the eager one exists for the ablation
	// study.
	EagerSlices bool
}

// Name implements Crawler.
func (h Hybrid) Name() string {
	if h.EagerSlices {
		return "hybrid-eager"
	}
	return "hybrid"
}

// Crawl implements Crawler. Any schema is accepted.
func (h Hybrid) Crawl(ctx context.Context, srv hiddendb.Server, opts *Options) (*Result, error) {
	sch := srv.Schema()
	cat := sch.Cat()

	if cat == 0 {
		// Purely numeric: hybrid degenerates to rank-shrink.
		s := newSession(ctx, srv, opts, false)
		if err := rankShrink(s, dataspace.UniverseQuery(sch)); err != nil {
			return nil, err
		}
		return s.finish(), nil
	}

	s := newSession(ctx, srv, opts, true)
	oracle := sliceOracle{s: s}

	if h.EagerSlices {
		for i := 0; i < cat; i++ {
			for v := int64(1); v <= int64(sch.Attr(i).DomainSize); v++ {
				if _, err := oracle.get(i, v); err != nil {
					return nil, err
				}
			}
		}
	}

	if cat == 1 {
		// cat = 1 (Theorem 1, fourth bullet): the slice queries on A1 are
		// the level-1 node queries; each overflowing one is finished by
		// rank-shrink. Total cost U1 + O(d·n/k).
		for v := int64(1); v <= int64(sch.Attr(0).DomainSize); v++ {
			res, err := oracle.get(0, v)
			if err != nil {
				return nil, err
			}
			if res.Resolved() {
				s.emit(res.Tuples)
				continue
			}
			if err := numericSolve(s, dataspace.UniverseQuery(sch).WithValue(0, v)); err != nil {
				return nil, err
			}
		}
		return s.finish(), nil
	}

	root := dataspace.UniverseQuery(sch)
	if !h.EagerSlices {
		res, err := s.issue(root)
		if err != nil {
			return nil, err
		}
		if res.Resolved() {
			s.emit(res.Tuples)
			return s.finish(), nil
		}
	}
	if err := extendedDFS(s, oracle, root, 0, cat); err != nil {
		return nil, err
	}
	return s.finish(), nil
}
