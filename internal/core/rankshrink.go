package core

import (
	"context"
	"fmt"
	"sort"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// RankShrink is the paper's optimal algorithm for numeric data spaces
// (§2.2–2.3). Instead of splitting an overflowing rectangle at its
// geometric midpoint, it splits at the value of the (k/2)-th returned tuple,
// guaranteeing at least k/4 returned tuples on each side (a 2-way split) —
// or, when that value has multiplicity above k/4 in the response, performs a
// 3-way split whose middle band exhausts the split attribute and is solved
// as a (d−1)-dimensional sub-problem.
//
// Cost: O(d·n/k) queries (Lemma 2), independent of the attribute domain
// sizes, and asymptotically optimal (Theorem 3).
type RankShrink struct {
	// SplitDenom is the denominator of the multiplicity threshold that
	// chooses between a 2-way and a 3-way split: a 3-way split fires when
	// the pivot value's multiplicity in the response exceeds k/SplitDenom.
	// Zero means the paper's constant 4 (which the cost proof of Lemma 1
	// relies on); other values exist for the ablation study.
	SplitDenom int
}

// Name implements Crawler.
func (r RankShrink) Name() string {
	if r.SplitDenom != 0 && r.SplitDenom != 4 {
		return fmt.Sprintf("rank-shrink(k/%d)", r.SplitDenom)
	}
	return "rank-shrink"
}

// Crawl implements Crawler. The server's schema must be purely numeric.
func (r RankShrink) Crawl(ctx context.Context, srv hiddendb.Server, opts *Options) (*Result, error) {
	if !srv.Schema().IsNumeric() {
		return nil, ErrWrongSpace
	}
	s := newSession(ctx, srv, opts, false)
	denom := r.SplitDenom
	if denom <= 0 {
		denom = 4
	}
	s.splitDenom = denom
	if err := rankShrink(s, dataspace.UniverseQuery(s.schema)); err != nil {
		return nil, err
	}
	return s.finish(), nil
}

// rankShrink extracts every tuple covered by q. All categorical attributes
// of q (if any — the hybrid algorithm pins them) must be exhausted; the
// remaining free dimensions are numeric.
func rankShrink(s *session, q dataspace.Query) error {
	res, err := s.issue(q)
	if err != nil {
		return err
	}
	if res.Resolved() {
		s.emit(res.Tuples)
		return nil
	}

	// The paper splits on A1 until it is exhausted, then recurses on the
	// (d−1)-dimensional suffix; equivalently, always split the first
	// non-exhausted numeric attribute.
	dim := firstOpenNumeric(q)
	if dim < 0 {
		// q is a point (up to exhausted attributes) yet overflowed: more
		// than k duplicates live there.
		return ErrUnsolvable
	}

	x, c := splitPivot(res.Tuples, dim, s.k)
	lo, _ := q.Extent(dim)

	if c <= s.k/s.splitThreshold() && x > lo {
		// Case 1: 2-way split at x. At least k/2−c ≥ k/4 returned tuples
		// are strictly below x, so x > lo always holds when k ≥ 4; the
		// guard only matters for degenerate k.
		left, right, err := q.Split2(dim, x)
		if err != nil {
			return err
		}
		if err := rankShrink(s, left); err != nil {
			return err
		}
		return rankShrink(s, right)
	}

	// Case 2: 3-way split at x. The middle band exhausts dim and becomes a
	// (d−1)-dimensional problem; at d = 1 it is a point query, resolved by
	// the solvability assumption.
	left, mid, right, hasLeft, hasRight, err := q.Split3(dim, x)
	if err != nil {
		return err
	}
	if hasLeft {
		if err := rankShrink(s, left); err != nil {
			return err
		}
	}
	if err := rankShrink(s, mid); err != nil {
		return err
	}
	if hasRight {
		return rankShrink(s, right)
	}
	return nil
}

// splitPivot sorts the response on attribute dim, picks the value x of the
// (k/2)-th tuple (1-based; the paper breaks ties arbitrarily) and returns it
// together with its multiplicity c in the response.
func splitPivot(resp dataspace.Bag, dim, k int) (x int64, c int) {
	vals := make([]int64, len(resp))
	for i, t := range resp {
		vals[i] = t[dim]
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	idx := k/2 - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	x = vals[idx]
	for _, v := range vals {
		if v == x {
			c++
		}
	}
	return x, c
}
