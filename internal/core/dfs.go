package core

import (
	"context"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// DFS is the paper's baseline for categorical spaces (§3.1), and the
// crawling approach outlined in Jin et al. [15]: traverse the data-space
// tree depth-first, issuing each node's query and pruning a subtree as soon
// as its node query resolves.
type DFS struct{}

// Name implements Crawler.
func (DFS) Name() string { return "dfs" }

// Crawl implements Crawler. The server's schema must be purely categorical.
func (DFS) Crawl(ctx context.Context, srv hiddendb.Server, opts *Options) (*Result, error) {
	sch := srv.Schema()
	if !sch.IsCategorical() {
		return nil, ErrWrongSpace
	}
	s := newSession(ctx, srv, opts, false)
	if err := dfs(s, dataspace.UniverseQuery(sch), 0); err != nil {
		return nil, err
	}
	return s.finish(), nil
}

// dfs processes the data-space-tree node at the given level, whose query has
// attributes 0..level-1 pinned to constants.
func dfs(s *session, q dataspace.Query, level int) error {
	res, err := s.issue(q)
	if err != nil {
		return err
	}
	if res.Resolved() {
		s.emit(res.Tuples)
		return nil
	}
	if level == s.schema.Dims() {
		// A leaf (a single point of the data space) overflowed.
		return ErrUnsolvable
	}
	u := s.schema.Attr(level).DomainSize
	for v := int64(1); v <= int64(u); v++ {
		if err := dfs(s, q.WithValue(level, v), level+1); err != nil {
			return err
		}
	}
	return nil
}
