package core

import (
	"context"
	"fmt"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// BinaryShrink is the paper's baseline for numeric spaces (§2.1): repeatedly
// 2-way split an overflowing rectangle at the midpoint of the extent of a
// non-exhausted attribute. Its cost depends on the attribute domain sizes
// (it may probe empty half-spaces all the way down), which is exactly the
// weakness rank-shrink removes.
//
// Because midpoints of unbounded extents are undefined, binary-shrink
// requires every numeric attribute to declare finite Min/Max bounds, and it
// only explores the declared bounding box: tuples lying outside it are
// silently unreachable. (rank-shrink has neither limitation — one of the
// reasons it is the recommended algorithm.)
type BinaryShrink struct{}

// Name implements Crawler.
func (BinaryShrink) Name() string { return "binary-shrink" }

// Crawl implements Crawler. The server's schema must be purely numeric with
// declared bounds on every attribute.
func (BinaryShrink) Crawl(ctx context.Context, srv hiddendb.Server, opts *Options) (*Result, error) {
	sch := srv.Schema()
	if !sch.IsNumeric() {
		return nil, ErrWrongSpace
	}
	for i := 0; i < sch.Dims(); i++ {
		a := sch.Attr(i)
		if a.Min == 0 && a.Max == 0 {
			return nil, fmt.Errorf("binary-shrink: numeric attribute %q needs declared Min/Max bounds: %w", a.Name, ErrWrongSpace)
		}
	}
	s := newSession(ctx, srv, opts, false)

	// Start from the bounding rectangle declared by the schema.
	q := dataspace.UniverseQuery(sch)
	for i := 0; i < sch.Dims(); i++ {
		lo, hi := sch.Attr(i).Bounds()
		q = q.WithRange(i, lo, hi)
	}
	if err := binaryShrink(s, q, 0); err != nil {
		return nil, err
	}
	return s.finish(), nil
}

// binaryShrink splits round-robin (kd-tree style): the split dimension
// cycles through the non-exhausted attributes, starting from the hint. The
// paper only requires "an attribute Ai that has not been exhausted";
// cycling keeps the recursion balanced across dimensions.
func binaryShrink(s *session, q dataspace.Query, hint int) error {
	res, err := s.issue(q)
	if err != nil {
		return err
	}
	if res.Resolved() {
		s.emit(res.Tuples)
		return nil
	}
	dim := nextOpenNumeric(q, hint)
	if dim < 0 {
		return ErrUnsolvable
	}
	lo, hi := q.Extent(dim)
	// Split at ceil((lo+hi)/2), written to avoid int64 overflow on large
	// extents: mid = lo + ceil((hi-lo)/2) and hi > lo here.
	mid := lo + (hi-lo+1)/2
	left, right, err := q.Split2(dim, mid)
	if err != nil {
		return err
	}
	if err := binaryShrink(s, left, dim+1); err != nil {
		return err
	}
	return binaryShrink(s, right, dim+1)
}

// nextOpenNumeric returns the first non-exhausted numeric attribute at or
// cyclically after the hint position, or -1 when all are exhausted.
func nextOpenNumeric(q dataspace.Query, hint int) int {
	sch := q.Schema()
	d := sch.Dims()
	for off := 0; off < d; off++ {
		i := (hint + off) % d
		if sch.Attr(i).Kind == dataspace.Numeric && !q.Exhausted(i) {
			return i
		}
	}
	return -1
}
