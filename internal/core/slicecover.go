package core

import (
	"context"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// SliceCover is the paper's optimal algorithm for categorical spaces (§3.2).
// A preprocessing phase issues every slice query (Ai = c with wildcards
// elsewhere) and records the responses in a lookup table; extended-DFS then
// walks the data-space tree, answering a child's query locally — without a
// server round-trip — whenever the slice query matching the child's new
// predicate resolved.
//
// Cost: at most Σ Ui + (n/k)·Σ min{Ui, n/k} queries for d > 1, and exactly
// U1 for d = 1 (Lemma 4); asymptotically optimal (Theorem 4).
type SliceCover struct{}

// Name implements Crawler.
func (SliceCover) Name() string { return "slice-cover" }

// Crawl implements Crawler. The server's schema must be purely categorical.
func (SliceCover) Crawl(ctx context.Context, srv hiddendb.Server, opts *Options) (*Result, error) {
	if !srv.Schema().IsCategorical() {
		return nil, ErrWrongSpace
	}
	return sliceCoverCrawl(ctx, srv, opts, true)
}

// LazySliceCover is slice-cover with the paper's laziness heuristic: slice
// queries are issued only when extended-DFS first needs them, and memoized
// so later consultations are free. It never issues more queries than
// slice-cover (Lemma 4 applies unchanged) and was the clear practical winner
// in the paper's Figure 11.
type LazySliceCover struct{}

// Name implements Crawler.
func (LazySliceCover) Name() string { return "lazy-slice-cover" }

// Crawl implements Crawler. The server's schema must be purely categorical.
func (LazySliceCover) Crawl(ctx context.Context, srv hiddendb.Server, opts *Options) (*Result, error) {
	if !srv.Schema().IsCategorical() {
		return nil, ErrWrongSpace
	}
	return sliceCoverCrawl(ctx, srv, opts, false)
}

// sliceQuery builds the slice query "attr = value, wildcard elsewhere"
// (numeric attributes, present only under hybrid, get full ranges).
func sliceQuery(sch *dataspace.Schema, attr int, value int64) dataspace.Query {
	return dataspace.UniverseQuery(sch).WithValue(attr, value)
}

// sliceOracle hands extended-DFS the response of a slice query. Both the
// eager table and the lazy variant are just the memoizing session view; the
// only difference is whether a preprocessing pass has already populated it.
type sliceOracle struct {
	s *session
}

func (o sliceOracle) get(attr int, value int64) (hiddendb.Result, error) {
	return o.s.issue(sliceQuery(o.s.schema, attr, value))
}

// sliceCoverCrawl runs slice-cover (eager=true) or lazy-slice-cover
// (eager=false) over a purely categorical server.
func sliceCoverCrawl(ctx context.Context, srv hiddendb.Server, opts *Options, eager bool) (*Result, error) {
	s := newSession(ctx, srv, opts, true) // memoized: repeated queries are free
	sch := s.schema
	oracle := sliceOracle{s: s}

	anyOverflow := false
	if eager {
		// Preprocessing phase: run every slice query up front.
		for i := 0; i < sch.Dims(); i++ {
			if sch.Attr(i).Kind != dataspace.Categorical {
				continue
			}
			for v := int64(1); v <= int64(sch.Attr(i).DomainSize); v++ {
				res, err := oracle.get(i, v)
				if err != nil {
					return nil, err
				}
				if res.Overflow {
					anyOverflow = true
				}
			}
		}
	}

	if sch.Dims() == 1 {
		// d = 1: the slice queries are the level-1 point queries; the
		// lookup table IS the database (cost exactly U1). The lazy variant
		// still needs to issue them.
		for v := int64(1); v <= int64(sch.Attr(0).DomainSize); v++ {
			res, err := oracle.get(0, v)
			if err != nil {
				return nil, err
			}
			if res.Overflow {
				return nil, ErrUnsolvable
			}
			s.emit(res.Tuples)
		}
		return s.finish(), nil
	}

	root := dataspace.UniverseQuery(sch)
	if eager && !anyOverflow {
		// Every slice resolved, so every child of the root is answerable
		// locally; extendedDFS below will not contact the server at all.
		if err := extendedDFS(s, oracle, root, 0, sch.Dims()); err != nil {
			return nil, err
		}
		return s.finish(), nil
	}
	if eager && anyOverflow {
		// The paper's trick: some slice overflowed, so the root certainly
		// overflows — skip its query and descend directly.
		if err := extendedDFS(s, oracle, root, 0, sch.Dims()); err != nil {
			return nil, err
		}
		return s.finish(), nil
	}

	// Lazy variant: nothing is known yet, so the root query is issued.
	res, err := s.issue(root)
	if err != nil {
		return nil, err
	}
	if res.Resolved() {
		s.emit(res.Tuples)
		return s.finish(), nil
	}
	if err := extendedDFS(s, oracle, root, 0, sch.Dims()); err != nil {
		return nil, err
	}
	return s.finish(), nil
}

// extendedDFS explores the children of an overflowing data-space-tree node
// at the given level (0-based: the node has attributes 0..level-1 pinned).
// catDims is the number of leading categorical attributes; a child at depth
// catDims is a categorical point and is finished with numericSolve, which
// degenerates to a single (necessarily resolved) point query in a purely
// categorical space.
//
// For each child, the oracle's slice response is consulted first: if the
// slice resolved, the child's answer is computed locally with no server
// round-trip (Lemma 3 guarantees the slice's bag contains the child's bag).
func extendedDFS(s *session, oracle sliceOracle, q dataspace.Query, level, catDims int) error {
	u := s.schema.Attr(level).DomainSize
	for v := int64(1); v <= int64(u); v++ {
		child := q.WithValue(level, v)
		slice, err := oracle.get(level, v)
		if err != nil {
			return err
		}
		if slice.Resolved() {
			// Answer locally: the child's result is the subset of the
			// slice's result satisfying the child's other predicates.
			s.emitMatching(slice.Tuples, child)
			continue
		}
		if level+1 == catDims {
			// Categorical point reached. Pure categorical: one point
			// query, which must resolve. Mixed (hybrid): rank-shrink over
			// the numeric subspace with the categorical prefix pinned.
			if err := numericSolve(s, child); err != nil {
				return err
			}
			continue
		}
		res, err := s.issue(child)
		if err != nil {
			return err
		}
		if res.Resolved() {
			s.emit(res.Tuples)
			continue
		}
		if err := extendedDFS(s, oracle, child, level+1, catDims); err != nil {
			return err
		}
	}
	return nil
}

// numericSolve finishes a query whose categorical attributes are all pinned.
// With no numeric attributes it is a single point query; otherwise it is an
// instance of rank-shrink over the numeric subspace (§5).
func numericSolve(s *session, q dataspace.Query) error {
	return rankShrink(s, q)
}
