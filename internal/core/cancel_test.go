package core

import (
	"context"
	"errors"
	"testing"

	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/journal"
)

// cancelAfter is a Server wrapper that cancels the given cancel func once
// the wrapped server has served `serve` queries, and fails everything past
// that point with the (then-cancelled) ctx's error. It simulates a
// cancellation landing while a query (or mid-batch, a batch) is in flight
// — the hardest case for budget accounting, since the layers above have
// already debited work the store will never do.
type cancelAfter struct {
	hiddendb.Server
	cancel context.CancelFunc
	serve  int
}

func (c *cancelAfter) Answer(ctx context.Context, q dataspace.Query) (hiddendb.Result, error) {
	if c.serve == 0 {
		c.cancel()
		return hiddendb.Result{}, ctx.Err()
	}
	c.serve--
	return c.Server.Answer(ctx, q)
}

func (c *cancelAfter) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]hiddendb.Result, error) {
	out := make([]hiddendb.Result, 0, len(qs))
	for _, q := range qs {
		res, err := c.Answer(ctx, q)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// sessionStack builds the per-client stack of the session package —
// journal wrapper → Caching → Quota → Counting → srv — around an
// arbitrary innermost server, exposing each layer for the invariant
// checks.
func sessionStack(t *testing.T, inner hiddendb.Server, jnl *journal.Journal, budget int) (srv hiddendb.Server, counting *hiddendb.Counting, quota *hiddendb.Quota) {
	t.Helper()
	counting = hiddendb.NewCounting(inner)
	quota = hiddendb.NewQuota(counting, budget)
	caching := hiddendb.NewCaching(quota)
	jsrv, err := journal.Wrap(caching, jnl)
	if err != nil {
		t.Fatal(err)
	}
	return jsrv, counting, quota
}

// TestCancelMidCrawlInvariants cancels a sequential crawl while a query is
// in flight and asserts the counting wrapper, the quota, and the journal
// agree exactly: every query the store served is journaled, every
// journaled query was debited, and nothing else was — no query paid
// twice, no refund leaked. The crawl then resumes with the same journal
// and the combined cost equals an uninterrupted reference crawl's.
func TestCancelMidCrawlInvariants(t *testing.T) {
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          3000,
		CatDomains: []int{4, 9},
		NumRanges:  [][2]int64{{0, 9999}},
		Skew:       0.5,
		DupRate:    0.05,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	k := 32
	if m := ds.Tuples.MaxMultiplicity(); m > k {
		k = m
	}

	ref, err := Hybrid{}.Crawl(context.Background(), newServer(t, ds, k, 42), nil)
	if err != nil {
		t.Fatal(err)
	}

	const budget = 1_000_000
	for _, cutoff := range []int{0, 1, 7, 40} {
		local := newServer(t, ds, k, 42)
		jnl := journal.New(ds.Schema, k)
		ctx, cancel := context.WithCancel(context.Background())
		srv, counting, quota := sessionStack(t, &cancelAfter{Server: local, cancel: cancel, serve: cutoff}, jnl, budget)

		_, err := Hybrid{}.Crawl(ctx, srv, nil)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cutoff %d: err = %v, want context.Canceled", cutoff, err)
		}

		paid := counting.Queries()
		if paid != cutoff {
			t.Errorf("cutoff %d: store served %d queries", cutoff, paid)
		}
		if jnl.Len() != paid {
			t.Errorf("cutoff %d: journal holds %d entries, store served %d — a paid query went unrecorded or a free one was journaled",
				cutoff, jnl.Len(), paid)
		}
		if spent := budget - quota.Remaining(); spent != paid {
			t.Errorf("cutoff %d: quota debited %d for %d served queries — cancelled query charged or refund leaked",
				cutoff, spent, paid)
		}

		// Resume with the same journal over a fresh stack: the replays are
		// free, and the combined cost is exactly the reference crawl's.
		srv2, counting2, _ := sessionStack(t, newServer(t, ds, k, 42), jnl, budget)
		res, err := Hybrid{}.Crawl(context.Background(), srv2, nil)
		if err != nil {
			t.Fatalf("cutoff %d: resume: %v", cutoff, err)
		}
		checkComplete(t, ds, res)
		if paid+counting2.Queries() != ref.Queries {
			t.Errorf("cutoff %d: interrupted %d + resumed %d queries != reference %d — a query was paid twice or skipped",
				cutoff, paid, counting2.Queries(), ref.Queries)
		}
	}
}

// TestCancelBetweenQueries cancels from a progress callback — i.e. between
// queries, with nothing in flight — and asserts the same agreement plus a
// prompt stop (no further queries after the cancellation).
func TestCancelBetweenQueries(t *testing.T) {
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          2000,
		CatDomains: []int{5, 12, 80},
		Skew:       0.8,
		DupRate:    0.05,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	k := 32
	if m := ds.Tuples.MaxMultiplicity(); m > k {
		k = m
	}
	const budget = 1_000_000
	const stopAt = 9
	jnl := journal.New(ds.Schema, k)
	srv, counting, quota := sessionStack(t, newServer(t, ds, k, 42), jnl, budget)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = LazySliceCover{}.Crawl(ctx, srv, &Options{OnProgress: func(p CurvePoint) {
		if p.Queries == stopAt {
			cancel()
		}
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if counting.Queries() != stopAt {
		t.Errorf("store served %d queries after cancelling at %d", counting.Queries(), stopAt)
	}
	if jnl.Len() != stopAt || budget-quota.Remaining() != stopAt {
		t.Errorf("journal %d / debited %d, want both %d", jnl.Len(), budget-quota.Remaining(), stopAt)
	}
}
