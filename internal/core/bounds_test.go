package core

import (
	"context"
	"testing"

	"hidb/internal/datagen"
	"hidb/internal/dataspace"
)

// crawl is a test helper that runs the crawler and requires success plus a
// complete bag.
func crawl(t *testing.T, c Crawler, ds *datagen.Dataset, k int, opts *Options) *Result {
	t.Helper()
	srv := newServer(t, ds, k, 42)
	res, err := c.Crawl(context.Background(), srv, opts)
	if err != nil {
		t.Fatalf("%s on %s (k=%d): %v", c.Name(), ds.Name, k, err)
	}
	checkComplete(t, ds, res)
	return res
}

// TestRankShrinkCostBound asserts Lemma 2: rank-shrink performs at most
// 20·d·n/k queries (the constant from the paper's inductive proof), plus a
// small additive slack for the root query on tiny inputs.
func TestRankShrinkCostBound(t *testing.T) {
	for _, tc := range []struct {
		n, k int
		dims [][2]int64
	}{
		{2000, 16, [][2]int64{{0, 1 << 20}}},
		{2000, 16, [][2]int64{{0, 1000}, {0, 1000}}},
		{5000, 64, [][2]int64{{0, 100}, {-50, 50}, {0, 10}}},
		{3000, 8, [][2]int64{{0, 1 << 30}, {0, 1 << 30}, {0, 5}, {0, 5}}},
	} {
		ds, err := datagen.Random(datagen.RandomSpec{
			N: tc.n, NumRanges: tc.dims, DupRate: 0.05,
		}, uint64(tc.n)+uint64(tc.k))
		if err != nil {
			t.Fatal(err)
		}
		if ds.Tuples.MaxMultiplicity() > tc.k {
			t.Fatalf("test instance unsolvable at k=%d", tc.k)
		}
		res := crawl(t, RankShrink{}, ds, tc.k, nil)
		d := len(tc.dims)
		bound := 20*d*tc.n/tc.k + 1
		if res.Queries > bound {
			t.Errorf("rank-shrink d=%d n=%d k=%d: %d queries > Lemma-2 bound %d",
				d, tc.n, tc.k, res.Queries, bound)
		}
	}
}

// TestTheorem3LowerBound asserts that on the hard numeric instance every
// complete algorithm — including ours — performs at least d·m queries, and
// that rank-shrink stays within its upper bound: the sandwich that proves
// Theorems 1 and 3 bite.
func TestTheorem3LowerBound(t *testing.T) {
	for _, tc := range []struct{ m, d, k int }{
		{20, 2, 8},
		{50, 4, 16},
		{30, 8, 8},
	} {
		ds, err := datagen.HardNumeric(tc.m, tc.d, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		lower := datagen.HardNumericLowerBound(tc.m, tc.d)
		for _, alg := range []Crawler{RankShrink{}, BinaryShrink{}} {
			res := crawl(t, alg, ds, tc.k, nil)
			if res.Queries < lower {
				t.Errorf("%s on %s: %d queries < lower bound %d — the instance or the counting is broken",
					alg.Name(), ds.Name, res.Queries, lower)
			}
		}
		res := crawl(t, RankShrink{}, ds, tc.k, nil)
		n := ds.N()
		upper := 20*tc.d*n/tc.k + 1
		if res.Queries > upper {
			t.Errorf("rank-shrink on %s: %d queries > upper bound %d", ds.Name, res.Queries, upper)
		}
	}
}

// lemma4Bound evaluates Σ Ui + (n/k)·Σ min{Ui, n/k} for a schema.
func lemma4Bound(s *dataspace.Schema, n, k int) int {
	sumU := 0
	sumMin := 0
	nk := n / k
	for i := 0; i < s.Dims(); i++ {
		u := s.Attr(i).DomainSize
		sumU += u
		m := u
		if nk < m {
			m = nk
		}
		sumMin += m
	}
	return sumU + nk*sumMin
}

// TestSliceCoverLemma4Bound asserts the categorical upper bound for both
// slice-cover variants on random and adversarial instances.
func TestSliceCoverLemma4Bound(t *testing.T) {
	specs := []datagen.RandomSpec{
		{N: 3000, CatDomains: []int{5, 9, 30}, Skew: 1.0},
		{N: 2000, CatDomains: []int{50, 50}, Skew: 0.5, DupRate: 0.1},
		{N: 1000, CatDomains: []int{4, 4, 4, 4}, Skew: 0},
	}
	k := 16
	var datasets []*datagen.Dataset
	for i, spec := range specs {
		ds, err := datagen.Random(spec, uint64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		datasets = append(datasets, ds)
	}
	hard, err := datagen.HardCategorical(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	datasets = append(datasets, hard)

	for _, ds := range datasets {
		kk := k
		if ds.Tuples.MaxMultiplicity() > kk {
			kk = ds.Tuples.MaxMultiplicity()
		}
		// The hard instance is built for k=4; use its own k.
		if ds == hard {
			kk = 4
		}
		bound := lemma4Bound(ds.Schema, ds.N(), kk) + 1 // +1 for the lazy root query
		for _, alg := range []Crawler{SliceCover{}, LazySliceCover{}} {
			res := crawl(t, alg, ds, kk, nil)
			if res.Queries > bound {
				t.Errorf("%s on %s (k=%d): %d queries > Lemma-4 bound %d",
					alg.Name(), ds.Name, kk, res.Queries, bound)
			}
		}
	}
}

// TestLazyNeverWorseThanEager asserts the paper's claim that
// lazy-slice-cover "does not require any more query than slice-cover".
func TestLazyNeverWorseThanEager(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		ds, err := datagen.Random(datagen.RandomSpec{
			N:          1500,
			CatDomains: []int{6, 11, 40, 150},
			Skew:       0.9,
			DupRate:    0.05,
		}, 200+seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{8, 32, 128} {
			if ds.Tuples.MaxMultiplicity() > k {
				continue
			}
			eager := crawl(t, SliceCover{}, ds, k, nil)
			lazy := crawl(t, LazySliceCover{}, ds, k, nil)
			// +1 tolerance: the lazy variant issues the root query, which
			// the eager variant can skip using its prefetched table.
			if lazy.Queries > eager.Queries+1 {
				t.Errorf("seed %d k=%d: lazy %d > eager %d queries",
					seed, k, lazy.Queries, eager.Queries)
			}
		}
	}
}

// TestCategorical1DCost asserts the d=1 special case of Lemma 4: the cost
// is exactly U1 (plus the root query for the lazy variant).
func TestCategorical1DCost(t *testing.T) {
	u := 37
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          900,
		CatDomains: []int{u},
		Skew:       0.7,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	k := 128
	if ds.Tuples.MaxMultiplicity() > k {
		t.Fatal("unsolvable test instance")
	}
	res := crawl(t, SliceCover{}, ds, k, nil)
	if res.Queries != u {
		t.Errorf("slice-cover d=1: %d queries, want exactly U1 = %d", res.Queries, u)
	}
	res = crawl(t, LazySliceCover{}, ds, k, nil)
	if res.Queries != u {
		t.Errorf("lazy-slice-cover d=1: %d queries, want U1 = %d", res.Queries, u)
	}
}

// TestHybridCat1Bound asserts Theorem 1's fourth bullet: for cat = 1 the
// hybrid cost is at most U1 + 20·d·n/k.
func TestHybridCat1Bound(t *testing.T) {
	u := 25
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          4000,
		CatDomains: []int{u},
		NumRanges:  [][2]int64{{0, 100000}, {0, 500}},
		Skew:       1.2,
		DupRate:    0.02,
	}, 77)
	if err != nil {
		t.Fatal(err)
	}
	k := 32
	if ds.Tuples.MaxMultiplicity() > k {
		t.Fatal("unsolvable test instance")
	}
	res := crawl(t, Hybrid{}, ds, k, nil)
	bound := u + 20*3*ds.N()/k
	if res.Queries > bound {
		t.Errorf("hybrid cat=1: %d queries > bound %d", res.Queries, bound)
	}
}

// TestIdealCostFloor sanity-checks the trivial lower bound: no crawl can
// finish in fewer than n/k queries.
func TestIdealCostFloor(t *testing.T) {
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          5000,
		CatDomains: []int{3},
		NumRanges:  [][2]int64{{0, 1000000}},
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	k := 50
	res := crawl(t, Hybrid{}, ds, k, nil)
	if res.Queries < ds.N()/k {
		t.Errorf("hybrid finished in %d queries < n/k = %d — impossible", res.Queries, ds.N()/k)
	}
}
