package core

import (
	"context"
	"fmt"
	"iter"
	"sync/atomic"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// PartialError is the terminal error of a CrawlSeq stream: the underlying
// crawl failure plus the cost already paid when it happened. The tuples
// yielded before the error are a valid prefix of the extraction — behind a
// journal wrapper or a per-session server their queries are recorded, so
// a resumed crawl pays only for what comes after.
type PartialError struct {
	// Queries is the number of queries the crawl had paid for when it
	// failed — the paper's cost metric for the partial extraction.
	Queries int
	// Err is the crawl's failure, e.g. hiddendb.ErrQuotaExceeded or the
	// ctx's cancellation error.
	Err error
}

// Error implements error.
func (e *PartialError) Error() string {
	return fmt.Sprintf("crawl failed after %d queries: %v", e.Queries, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *PartialError) Unwrap() error { return e.Err }

// CrawlSeq runs the crawler as an incremental, cancelable stream: it
// returns an iterator over the extracted tuples, in exactly the output
// order (and number) of c.Crawl's Result.Tuples. Consuming the whole
// stream without error is a complete extraction at the crawler's usual
// query cost — streaming is delivery, not a different algorithm, so the
// paper's cost metric is untouched.
//
// Breaking out of the range loop cancels the crawl: CrawlSeq stops the
// underlying crawler (via a context derived from ctx), waits for it to
// wind down, and returns. If the crawl fails — the server's quota runs
// dry, ctx is cancelled, a round trip errors — the iterator yields one
// final (nil, *PartialError) pair carrying the failure and the queries
// already paid, then stops.
//
// The stream is built on Options.OnTuples; a caller-provided OnTuples
// callback still fires (before each chunk is streamed). opts is read once
// at call time and not retained.
func CrawlSeq(ctx context.Context, c Crawler, srv hiddendb.Server, opts *Options) iter.Seq2[dataspace.Tuple, error] {
	var base Options
	if opts != nil {
		base = *opts
	}
	return func(yield func(dataspace.Tuple, error) bool) {
		cctx, cancel := context.WithCancel(ctx)
		defer cancel()

		// paid tracks the highest query count any progress callback has
		// reported, so a failure can state the partial cost even though
		// the crawler returns no Result alongside its error. Progress
		// callbacks may be concurrent (the parallel crawler), hence the
		// atomic max.
		var paid atomic.Int64
		o := base
		prevProgress := base.OnProgress
		o.OnProgress = func(p CurvePoint) {
			for {
				cur := paid.Load()
				if int64(p.Queries) <= cur || paid.CompareAndSwap(cur, int64(p.Queries)) {
					break
				}
			}
			if prevProgress != nil {
				prevProgress(p)
			}
		}

		type outcome struct {
			res *Result
			err error
		}
		tuples := make(chan dataspace.Tuple)
		done := make(chan outcome, 1)
		// dropped records an emit aborted by cancellation: those tuples
		// never reached the consumer, so even if the crawl itself manages
		// to finish cleanly, the stream must not end looking complete.
		var dropped atomic.Bool
		prevTuples := base.OnTuples
		o.OnTuples = func(chunk dataspace.Bag) {
			if prevTuples != nil {
				prevTuples(chunk)
			}
			for _, t := range chunk {
				select {
				case tuples <- t:
				case <-cctx.Done():
					dropped.Store(true)
					return
				}
			}
		}
		go func() {
			res, err := c.Crawl(cctx, srv, &o)
			done <- outcome{res, err}
			close(tuples)
		}()

		for t := range tuples {
			if !yield(t, nil) {
				cancel()
				// Drain until the crawl goroutine closes the channel, so
				// no goroutine outlives the range loop.
				for range tuples {
				}
				<-done
				return
			}
		}
		out := <-done
		if out.err == nil && dropped.Load() {
			// The parent ctx died during the crawl's final emits: the
			// crawler saw no more queries to fail on, but the consumer is
			// missing tuples. Surface the cancellation instead of ending
			// the stream indistinguishably from a complete one.
			out.err = ctx.Err()
			if out.err == nil {
				out.err = context.Canceled
			}
		}
		if out.err != nil {
			pe := &PartialError{Queries: int(paid.Load()), Err: out.err}
			if out.res != nil {
				pe.Queries = out.res.Queries
			}
			yield(nil, pe)
		}
	}
}
