package core

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

func numericDS(t *testing.T, n int, seed uint64) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Random(datagen.RandomSpec{
		N:         n,
		NumRanges: [][2]int64{{0, 10000}, {0, 100}},
		DupRate:   0.05,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func categoricalDS(t *testing.T, n int, seed uint64) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          n,
		CatDomains: []int{5, 12, 60},
		Skew:       0.8,
		DupRate:    0.05,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func mixedDS(t *testing.T, n int, seed uint64) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          n,
		CatDomains: []int{4, 9},
		NumRanges:  [][2]int64{{0, 5000}},
		Skew:       0.5,
		DupRate:    0.05,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestWrongSpaceRejected(t *testing.T) {
	num := numericDS(t, 100, 1)
	cat := categoricalDS(t, 100, 2)
	mixed := mixedDS(t, 100, 3)

	cases := []struct {
		alg Crawler
		ds  *datagen.Dataset
	}{
		{RankShrink{}, cat},
		{RankShrink{}, mixed},
		{BinaryShrink{}, cat},
		{BinaryShrink{}, mixed},
		{DFS{}, num},
		{DFS{}, mixed},
		{SliceCover{}, num},
		{SliceCover{}, mixed},
		{LazySliceCover{}, num},
		{LazySliceCover{}, mixed},
	}
	for _, c := range cases {
		srv := newServer(t, c.ds, 32, 1)
		if _, err := c.alg.Crawl(context.Background(), srv, nil); !errors.Is(err, ErrWrongSpace) {
			t.Errorf("%s on %s: err = %v, want ErrWrongSpace", c.alg.Name(), c.ds.Schema, err)
		}
	}
}

func TestBinaryShrinkNeedsBounds(t *testing.T) {
	sch := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "N", Kind: dataspace.Numeric}, // unbounded
	})
	srv, err := hiddendb.NewLocal(sch, dataspace.Bag{{5}}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (BinaryShrink{}).Crawl(context.Background(), srv, nil); !errors.Is(err, ErrWrongSpace) {
		t.Errorf("unbounded attribute: err = %v, want ErrWrongSpace", err)
	}
}

func TestRankShrinkHandlesUnboundedDomains(t *testing.T) {
	// rank-shrink must not need declared bounds — that is its point.
	sch := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "N", Kind: dataspace.Numeric},
	})
	bag := dataspace.Bag{
		{-1 << 40}, {0}, {1 << 40}, {1 << 40}, {7}, {7}, {7}, {-3},
	}
	srv, err := hiddendb.NewLocal(sch, bag, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (RankShrink{}).Crawl(context.Background(), srv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tuples.EqualMultiset(bag) {
		t.Fatal("incomplete crawl over unbounded domain")
	}
}

func TestEmptyDatabase(t *testing.T) {
	num := &datagen.Dataset{Name: "empty-num", Schema: numericDS(t, 1, 1).Schema}
	cat := &datagen.Dataset{Name: "empty-cat", Schema: categoricalDS(t, 1, 1).Schema}
	mixed := &datagen.Dataset{Name: "empty-mixed", Schema: mixedDS(t, 1, 1).Schema}
	cases := []struct {
		alg Crawler
		ds  *datagen.Dataset
	}{
		{RankShrink{}, num}, {BinaryShrink{}, num},
		{DFS{}, cat}, {SliceCover{}, cat}, {LazySliceCover{}, cat},
		{Hybrid{}, mixed}, {Hybrid{}, num}, {Hybrid{}, cat},
	}
	for _, c := range cases {
		srv := newServer(t, c.ds, 8, 1)
		res, err := c.alg.Crawl(context.Background(), srv, nil)
		if err != nil {
			t.Fatalf("%s on empty db: %v", c.alg.Name(), err)
		}
		if len(res.Tuples) != 0 {
			t.Fatalf("%s conjured %d tuples from an empty db", c.alg.Name(), len(res.Tuples))
		}
	}
}

func TestSingleTupleAndTinyK(t *testing.T) {
	// k=1: the harshest return limit that is still solvable for distinct
	// tuples.
	ds, err := datagen.Random(datagen.RandomSpec{
		N:         40,
		NumRanges: [][2]int64{{0, 1000000}},
	}, 31)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Tuples.MaxMultiplicity() > 1 {
		t.Skip("collision at n=40 over a million values")
	}
	res := crawl(t, RankShrink{}, ds, 1, nil)
	if res.Queries < 40 {
		t.Errorf("k=1 crawl of 40 tuples took only %d queries", res.Queries)
	}
}

func TestOnProgressMonotone(t *testing.T) {
	ds := mixedDS(t, 3000, 8)
	srv := newServer(t, ds, 32, 42)
	var last CurvePoint
	calls := 0
	res, err := (Hybrid{}).Crawl(context.Background(), srv, &Options{
		OnProgress: func(p CurvePoint) {
			calls++
			if p.Queries < last.Queries || p.Tuples < last.Tuples {
				t.Fatalf("progress went backwards: %+v after %+v", p, last)
			}
			if p.Queries != last.Queries+1 {
				t.Fatalf("progress skipped queries: %+v after %+v", p, last)
			}
			last = p
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Queries {
		t.Errorf("OnProgress fired %d times for %d queries", calls, res.Queries)
	}
}

func TestCollectCurve(t *testing.T) {
	ds := mixedDS(t, 3000, 9)
	srv := newServer(t, ds, 32, 42)
	res, err := (Hybrid{}).Crawl(context.Background(), srv, &Options{CollectCurve: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != res.Queries {
		t.Fatalf("curve has %d points for %d queries", len(res.Curve), res.Queries)
	}
	final := res.Curve[len(res.Curve)-1]
	if final.Queries != res.Queries || final.Tuples != len(res.Tuples) {
		t.Fatalf("final curve point %+v does not match totals (%d, %d)",
			final, res.Queries, len(res.Tuples))
	}
	// Without the flag, no curve is collected.
	srv2 := newServer(t, ds, 32, 42)
	res2, err := (Hybrid{}).Crawl(context.Background(), srv2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Curve != nil {
		t.Error("curve collected without CollectCurve")
	}
}

func TestQuotaErrorPropagates(t *testing.T) {
	ds := mixedDS(t, 3000, 10)
	srv := newServer(t, ds, 16, 42)
	quota := hiddendb.NewQuota(srv, 10)
	_, err := (Hybrid{}).Crawl(context.Background(), quota, nil)
	if !errors.Is(err, hiddendb.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
}

func TestDependencyFilterSkipsAndStaysComplete(t *testing.T) {
	ds := mixedDS(t, 2000, 11)
	// Knowledge: valid (C1, C2) combos from the ground truth.
	valid := map[[2]int64]bool{}
	for _, tu := range ds.Tuples {
		valid[[2]int64{tu[0], tu[1]}] = true
	}
	if len(valid) == 4*9 {
		t.Skip("every combo occurs; filter would be a no-op")
	}
	filter := func(q dataspace.Query) bool {
		a, b := q.Pred(0), q.Pred(1)
		if a.Wild || b.Wild {
			return true
		}
		return valid[[2]int64{a.Value, b.Value}]
	}
	plain := crawl(t, Hybrid{}, ds, 16, nil)
	srv := newServer(t, ds, 16, 42)
	res, err := (Hybrid{}).Crawl(context.Background(), srv, &Options{QueryFilter: filter})
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, ds, res)
	if res.Queries > plain.Queries {
		t.Errorf("dependency filter increased cost: %d > %d", res.Queries, plain.Queries)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, c.Name())
		}
	}
	if _, err := ByName("quantum-crawl"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestForSchema(t *testing.T) {
	if ForSchema(numericDS(t, 1, 1).Schema).Name() != "rank-shrink" {
		t.Error("numeric space should pick rank-shrink")
	}
	if ForSchema(categoricalDS(t, 1, 1).Schema).Name() != "lazy-slice-cover" {
		t.Error("categorical space should pick lazy-slice-cover")
	}
	if ForSchema(mixedDS(t, 1, 1).Schema).Name() != "hybrid" {
		t.Error("mixed space should pick hybrid")
	}
}

func TestRankShrinkThresholdVariants(t *testing.T) {
	ds := numericDS(t, 2000, 12)
	for _, denom := range []int{2, 4, 8, 16} {
		res := crawl(t, RankShrink{SplitDenom: denom}, ds, 32, nil)
		if res.Queries == 0 {
			t.Errorf("denom %d: no queries", denom)
		}
	}
	// Name reflects non-default thresholds.
	if (RankShrink{SplitDenom: 8}).Name() != "rank-shrink(k/8)" {
		t.Error("threshold variant name wrong")
	}
	if (RankShrink{}).Name() != "rank-shrink" || (RankShrink{SplitDenom: 4}).Name() != "rank-shrink" {
		t.Error("default name wrong")
	}
}

// TestPropertyAllAlgorithmsComplete is the repository's central property
// test: for arbitrary small instances, every applicable algorithm must
// retrieve exactly the generated bag.
func TestPropertyAllAlgorithmsComplete(t *testing.T) {
	f := func(seed uint64, nRaw uint16, u1Raw, u2Raw, kRaw uint8) bool {
		n := int(nRaw%800) + 1
		u1 := int(u1Raw%9) + 2
		u2 := int(u2Raw%30) + 2
		k := int(kRaw%40) + 2
		ds, err := datagen.Random(datagen.RandomSpec{
			N:          n,
			CatDomains: []int{u1, u2},
			NumRanges:  [][2]int64{{0, 300}},
			Skew:       1.0,
			DupRate:    0.1,
		}, seed)
		if err != nil {
			return false
		}
		if ds.Tuples.MaxMultiplicity() > k {
			return true // genuinely unsolvable; covered elsewhere
		}
		srv, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, seed^0xABCD)
		if err != nil {
			return false
		}
		for _, alg := range []Crawler{Hybrid{}, Hybrid{EagerSlices: true}} {
			res, err := alg.Crawl(context.Background(), srv, nil)
			if err != nil {
				return false
			}
			if !res.Tuples.EqualMultiset(ds.Tuples) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNumericComplete drives rank-shrink and binary-shrink over
// random purely numeric instances.
func TestPropertyNumericComplete(t *testing.T) {
	f := func(seed uint64, nRaw uint16, spanRaw uint16, kRaw uint8) bool {
		n := int(nRaw%600) + 1
		span := int64(spanRaw%2000) + 1
		k := int(kRaw%30) + 2
		ds, err := datagen.Random(datagen.RandomSpec{
			N:         n,
			NumRanges: [][2]int64{{0, span}, {-span, 0}},
			DupRate:   0.15,
		}, seed)
		if err != nil {
			return false
		}
		if ds.Tuples.MaxMultiplicity() > k {
			return true
		}
		srv, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, seed^0x1234)
		if err != nil {
			return false
		}
		for _, alg := range []Crawler{RankShrink{}, BinaryShrink{}} {
			res, err := alg.Crawl(context.Background(), srv, nil)
			if err != nil {
				return false
			}
			if !res.Tuples.EqualMultiset(ds.Tuples) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCategoricalComplete drives the categorical trio over random
// instances.
func TestPropertyCategoricalComplete(t *testing.T) {
	f := func(seed uint64, nRaw uint16, uRaw uint8, kRaw uint8) bool {
		n := int(nRaw%500) + 1
		u := int(uRaw%25) + 2
		k := int(kRaw%30) + 2
		ds, err := datagen.Random(datagen.RandomSpec{
			N:          n,
			CatDomains: []int{3, u, u * 2},
			Skew:       0.8,
			DupRate:    0.1,
		}, seed)
		if err != nil {
			return false
		}
		if ds.Tuples.MaxMultiplicity() > k {
			return true
		}
		srv, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, seed^0x777)
		if err != nil {
			return false
		}
		for _, alg := range []Crawler{DFS{}, SliceCover{}, LazySliceCover{}} {
			res, err := alg.Crawl(context.Background(), srv, nil)
			if err != nil {
				return false
			}
			if !res.Tuples.EqualMultiset(ds.Tuples) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
