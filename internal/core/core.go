// Package core implements the hidden-database crawling algorithms of
// Sheng, Zhang, Tao and Jin, "Optimal Algorithms for Crawling a Hidden
// Database in the Web" (PVLDB 5(11), 2012):
//
//   - binary-shrink — the midpoint-splitting baseline for numeric spaces
//     (§2.1); its cost depends on the attribute domain sizes.
//   - rank-shrink — the optimal numeric algorithm (§2.2–2.3), O(d·n/k)
//     queries.
//   - DFS — the data-space-tree baseline for categorical spaces (§3.1).
//   - slice-cover and lazy-slice-cover — the optimal categorical
//     algorithms (§3.2), at most Σ Ui + (n/k)·Σ min{Ui, n/k} queries.
//   - hybrid — the mixed-space algorithm (§5) combining lazy-slice-cover
//     over the categorical prefix with rank-shrink over the numeric
//     subspaces.
//
// Every crawler consumes a hiddendb.Server and returns the complete bag of
// tuples plus the query cost, the paper's efficiency metric. All crawlers
// report progress after every server round-trip, which is what the
// progressiveness experiment (Figure 13) measures.
package core

import (
	"context"
	"errors"
	"fmt"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// ErrUnsolvable is returned when a point query overflows: some point of the
// data space holds more than k identical tuples, so no algorithm can
// retrieve the full bag (§1.1). This is exactly why the paper reports no
// Yahoo! Autos value at k = 64 in Figure 12.
var ErrUnsolvable = errors.New("core: dataset has a point with more than k duplicate tuples; Problem 1 is unsolvable")

// ErrWrongSpace is returned when an algorithm is run on a data space it does
// not support (e.g. rank-shrink on categorical attributes).
var ErrWrongSpace = errors.New("core: algorithm does not support this data space")

// CurvePoint is one sample of the progressiveness curve: after Queries
// server queries, Tuples tuples had been output.
type CurvePoint struct {
	Queries int
	Tuples  int
}

// InFlightAdaptive, assigned to Options.InFlight, makes the parallel
// crawler pick its pipeline depth itself: it starts at the default double
// buffer and widens by one whenever a full-width batch is ready while
// every flight slot is busy — the deterministic signal that one more
// overlapped round trip would save a full round trip of latency. When
// that signal stops, the widening stops: the measured savings have
// flattened. Only full-width batches ever launch through a widened slot,
// so widening launches the same batches earlier rather than launching
// thinner ones; the query count is untouched, as with any fixed depth.
const InFlightAdaptive = -1

// Options tunes a crawl. The zero value is ready to use.
type Options struct {
	// OnProgress, when non-nil, is invoked after every query that reaches
	// the server with the running totals. Calls are serialized — even the
	// parallel engine, whose round trips complete concurrently, never
	// invokes it from two goroutines at once — so the callback needs no
	// locking of its own.
	OnProgress func(CurvePoint)
	// OnTuples, when non-nil, is invoked with each chunk of newly
	// extracted tuples, in output order: the concatenation of all chunks
	// is exactly Result.Tuples. It is what lets a server stream a crawl's
	// output incrementally instead of buffering the whole bag. The chunk
	// is read-only and only valid during the call. With the parallel
	// crawler the callback must be safe for concurrent invocation.
	OnTuples func(dataspace.Bag)
	// QueryFilter, when non-nil, implements the attribute-dependency
	// heuristic of §1.3: a query for which it returns false is assumed to
	// cover no valid point and is skipped (treated as resolved and empty)
	// instead of being sent to the server. Supplying a filter that wrongly
	// rejects a non-empty region makes the crawl incomplete; that is the
	// caller's contract, exactly as in the paper.
	QueryFilter func(dataspace.Query) bool
	// CollectCurve records a CurvePoint per query into Result.Curve.
	CollectCurve bool
	// BatchSize caps how many ready queries the parallel crawler packs
	// into one Server.AnswerBatch round trip. Zero means the crawler's
	// worker count; a batch is wholly in flight while its round trip
	// runs, so values above the worker count are clamped to it. Batching
	// never changes the query count — a batch is answered as if issued
	// sequentially — only the number of round trips. Sequential crawlers
	// ignore it.
	BatchSize int
	// InFlight is the parallel crawler's pipeline depth: how many
	// AnswerBatch round trips it keeps in flight at once. While round
	// trips fly, the next batch accumulates and departs the moment a
	// flight slot frees — speculative double-buffering, which removes the
	// flush-on-completion bubble where a ready query always waited out the
	// round trip in front of it. 1 restores flush-on-completion; zero
	// defaults to 2 (or to workers/BatchSize when a narrowed batch width
	// would otherwise shrink the in-flight query bound below the worker
	// count); InFlightAdaptive lets the dispatcher widen the depth itself
	// while the widening keeps saving round-trip latency. Pipelining never
	// changes the query count, only round trips and wall clock. Sequential
	// crawlers ignore it.
	InFlight int
	// Clock, when non-nil, runs the parallel crawler's pipeline under the
	// given deterministic virtual clock: batches form and depart at
	// virtual instants, and with the server wrapped in
	// hiddendb.NewSimLatency on the same clock, the crawl's wall-clock
	// behaviour under any round-trip latency becomes a fast, reproducible
	// measurement (read it from SimClock.Now). Responses and query counts
	// are untouched. Use one clock per crawl. Sequential crawlers ignore
	// it — a sequential crawl over a SimLatency server drives the clock
	// by itself.
	Clock *hiddendb.SimClock
}

// Result is the outcome of a crawl.
type Result struct {
	// Tuples is the reconstructed bag: exactly the server's hidden
	// database when the crawl succeeds.
	Tuples dataspace.Bag
	// Queries is the number of queries that reached the server — the
	// paper's cost metric. Cache hits (lazy-slice-cover consulting a
	// memoized slice) are free, matching §3.2.
	Queries int
	// Resolved and Overflowed split Queries by server outcome.
	Resolved, Overflowed int
	// Skipped counts queries suppressed by Options.QueryFilter.
	Skipped int
	// Curve is the progressiveness curve (only when CollectCurve is set).
	Curve []CurvePoint
}

// Crawler is a complete-extraction algorithm for Problem 1.
type Crawler interface {
	// Name returns the algorithm's name as used in the paper.
	Name() string
	// Crawl retrieves the entire hidden database behind srv. Cancelling
	// ctx stops the crawl between queries with the ctx's error; queries
	// already answered were paid for (and, behind a journal wrapper,
	// recorded), so a cancelled crawl resumes where it stopped.
	// Cancellation never changes which queries a completing crawl issues —
	// with a live ctx the query count is bit-identical to the pre-context
	// contract's.
	Crawl(ctx context.Context, srv hiddendb.Server, opts *Options) (*Result, error)
}

// session carries the shared machinery of one crawl: the crawl's context,
// the counting (and possibly caching) view of the server, the output bag,
// and progress bookkeeping.
type session struct {
	ctx      context.Context
	srv      hiddendb.Server
	counting *hiddendb.Counting
	schema   *dataspace.Schema
	k        int
	opts     Options
	out      dataspace.Bag
	curve    []CurvePoint
	skipped  int
	// splitDenom parameterizes rank-shrink's 3-way-split threshold
	// (default 4, the paper's constant).
	splitDenom int
}

// splitThreshold returns the denominator of the 3-way-split threshold.
func (s *session) splitThreshold() int {
	if s.splitDenom <= 0 {
		return 4
	}
	return s.splitDenom
}

// newSession wraps srv in a counter and, when cached is true, a memo table
// on top of the counter so repeated queries are free.
func newSession(ctx context.Context, srv hiddendb.Server, opts *Options, cached bool) *session {
	if opts == nil {
		opts = &Options{}
	}
	counting := hiddendb.NewCounting(srv)
	var view hiddendb.Server = counting
	if cached {
		view = hiddendb.NewCaching(counting)
	}
	return &session{
		ctx:      ctx,
		srv:      view,
		counting: counting,
		schema:   srv.Schema(),
		k:        srv.K(),
		opts:     *opts,
	}
}

// emptyResult is the response used for queries suppressed by QueryFilter.
var emptyResult = hiddendb.Result{}

// issue sends q to the server (or suppresses it per the dependency
// heuristic) and records progress. The ctx is consulted first, so a
// cancelled crawl stops promptly even through a streak of free cache hits
// or suppressed queries.
func (s *session) issue(q dataspace.Query) (hiddendb.Result, error) {
	if err := s.ctx.Err(); err != nil {
		return emptyResult, err
	}
	if s.opts.QueryFilter != nil && !s.opts.QueryFilter(q) {
		s.skipped++
		return emptyResult, nil
	}
	before := s.counting.Queries()
	res, err := s.srv.Answer(s.ctx, q)
	if err != nil {
		return res, err
	}
	if s.counting.Queries() != before { // not a cache hit
		s.progress()
	}
	return res, nil
}

// emit appends fully-extracted tuples to the output bag.
func (s *session) emit(tuples dataspace.Bag) {
	s.out = append(s.out, tuples...)
	if s.opts.OnTuples != nil && len(tuples) > 0 {
		s.opts.OnTuples(tuples)
	}
}

// emitMatching appends the subset of tuples covered by q.
func (s *session) emitMatching(tuples dataspace.Bag, q dataspace.Query) {
	start := len(s.out)
	for _, t := range tuples {
		if q.Covers(t) {
			s.out = append(s.out, t)
		}
	}
	if s.opts.OnTuples != nil && len(s.out) > start {
		s.opts.OnTuples(s.out[start:len(s.out):len(s.out)])
	}
}

func (s *session) progress() {
	p := CurvePoint{Queries: s.counting.Queries(), Tuples: len(s.out)}
	if s.opts.CollectCurve {
		s.curve = append(s.curve, p)
	}
	if s.opts.OnProgress != nil {
		s.opts.OnProgress(p)
	}
}

// finish assembles the Result.
func (s *session) finish() *Result {
	// The last curve point may predate the final emits; refresh it.
	if s.opts.CollectCurve && len(s.curve) > 0 {
		s.curve[len(s.curve)-1].Tuples = len(s.out)
	}
	return &Result{
		Tuples:     s.out,
		Queries:    s.counting.Queries(),
		Resolved:   s.counting.Resolved(),
		Overflowed: s.counting.Overflowed(),
		Skipped:    s.skipped,
		Curve:      s.curve,
	}
}

// firstOpenNumeric returns the index of the first numeric attribute whose
// extent in q still spans more than one value, or -1.
func firstOpenNumeric(q dataspace.Query) int {
	sch := q.Schema()
	for i := 0; i < sch.Dims(); i++ {
		if sch.Attr(i).Kind == dataspace.Numeric && !q.Exhausted(i) {
			return i
		}
	}
	return -1
}

// ByName returns the crawler with the given paper name.
func ByName(name string) (Crawler, error) {
	switch name {
	case "binary-shrink":
		return BinaryShrink{}, nil
	case "rank-shrink":
		return RankShrink{}, nil
	case "dfs":
		return DFS{}, nil
	case "slice-cover":
		return SliceCover{}, nil
	case "lazy-slice-cover":
		return LazySliceCover{}, nil
	case "hybrid":
		return Hybrid{}, nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q (want binary-shrink, rank-shrink, dfs, slice-cover, lazy-slice-cover or hybrid)", name)
	}
}

// Names lists the available algorithm names.
func Names() []string {
	return []string{"binary-shrink", "rank-shrink", "dfs", "slice-cover", "lazy-slice-cover", "hybrid"}
}

// ForSchema returns the paper's recommended algorithm for the schema:
// rank-shrink for numeric spaces, lazy-slice-cover for categorical spaces,
// hybrid for mixed ones.
func ForSchema(s *dataspace.Schema) Crawler {
	switch {
	case s.IsNumeric():
		return RankShrink{}
	case s.IsCategorical():
		return LazySliceCover{}
	default:
		return Hybrid{}
	}
}
