package core

import (
	"context"
	"errors"
	"testing"

	"hidb/internal/datagen"
	"hidb/internal/hiddendb"
)

// newServer builds a local server over the dataset for tests.
func newServer(t testing.TB, ds *datagen.Dataset, k int, seed uint64) *hiddendb.Local {
	t.Helper()
	srv, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, seed)
	if err != nil {
		t.Fatalf("NewLocal: %v", err)
	}
	return srv
}

// checkComplete asserts the crawl retrieved exactly the dataset's bag.
func checkComplete(t *testing.T, ds *datagen.Dataset, res *Result) {
	t.Helper()
	if !res.Tuples.EqualMultiset(ds.Tuples) {
		t.Fatalf("crawl of %s incomplete: got %d tuples, want %d (multiset mismatch)",
			ds.Name, len(res.Tuples), len(ds.Tuples))
	}
}

func TestSmokeAllAlgorithms(t *testing.T) {
	numeric, err := datagen.Random(datagen.RandomSpec{
		N:         2000,
		NumRanges: [][2]int64{{0, 1000}, {-500, 500}, {0, 50}},
		DupRate:   0.1,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	categorical, err := datagen.Random(datagen.RandomSpec{
		N:          2000,
		CatDomains: []int{5, 9, 30, 100},
		Skew:       0.8,
		DupRate:    0.05,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := datagen.Random(datagen.RandomSpec{
		N:          2000,
		CatDomains: []int{4, 12},
		NumRanges:  [][2]int64{{0, 2000}, {1, 40}},
		Skew:       0.6,
		DupRate:    0.05,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		crawler Crawler
		ds      *datagen.Dataset
	}{
		{BinaryShrink{}, numeric},
		{RankShrink{}, numeric},
		{DFS{}, categorical},
		{SliceCover{}, categorical},
		{LazySliceCover{}, categorical},
		{Hybrid{}, mixed},
		{Hybrid{}, numeric},
		{Hybrid{}, categorical},
		{Hybrid{EagerSlices: true}, mixed},
	}
	for _, k := range []int{4, 16, 64, 256} {
		for _, c := range cases {
			if c.ds.Tuples.MaxMultiplicity() > k {
				continue // genuinely unsolvable at this k (§1.1)
			}
			srv := newServer(t, c.ds, k, 42)
			res, err := c.crawler.Crawl(context.Background(), srv, nil)
			if err != nil {
				t.Fatalf("%s on %s (k=%d): %v", c.crawler.Name(), c.ds.Name, k, err)
			}
			checkComplete(t, c.ds, res)
			if res.Queries == 0 && len(c.ds.Tuples) > 0 {
				t.Fatalf("%s on %s (k=%d): zero queries reported", c.crawler.Name(), c.ds.Name, k)
			}
		}
	}
}

func TestUnsolvableDetected(t *testing.T) {
	// 10 identical tuples and k=4: every algorithm must report
	// ErrUnsolvable rather than loop or return a wrong bag.
	ds, err := datagen.Random(datagen.RandomSpec{
		N:         1,
		NumRanges: [][2]int64{{0, 100}},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		ds.Tuples = append(ds.Tuples, ds.Tuples[0])
	}
	srv := newServer(t, ds, 4, 1)
	for _, c := range []Crawler{BinaryShrink{}, RankShrink{}, Hybrid{}} {
		_, err := c.Crawl(context.Background(), srv, nil)
		if !errors.Is(err, ErrUnsolvable) {
			t.Errorf("%s: got err %v, want ErrUnsolvable", c.Name(), err)
		}
	}
}
