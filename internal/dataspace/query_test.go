package dataspace

import (
	"math"
	"testing"
	"testing/quick"
)

func numSchema2(t *testing.T) *Schema {
	t.Helper()
	return MustSchema([]Attribute{
		{Name: "X", Kind: Numeric},
		{Name: "Y", Kind: Numeric},
	})
}

func TestUniverseQueryCoversEverything(t *testing.T) {
	s := mixedSchema(t)
	q := UniverseQuery(s)
	tuples := []Tuple{
		{1, 1, 200, -999999},
		{85, 7, 250000, 999999},
		{42, 3, 1000, 0},
	}
	for _, tu := range tuples {
		if !q.Covers(tu) {
			t.Errorf("universe does not cover %v", tu)
		}
	}
	if q.IsPoint() {
		t.Error("universe should not be a point")
	}
}

func TestNewQueryValidation(t *testing.T) {
	s := mixedSchema(t)
	if _, err := NewQuery(s, []Pred{{Wild: true}}); err == nil {
		t.Error("arity mismatch accepted")
	}
	bad := []Pred{
		{Value: 99}, // outside Make's domain [1,85]? no: 99 > 85
		{Wild: true},
		{Lo: 0, Hi: 10},
		{Lo: 0, Hi: 10},
	}
	bad[0].Value = 99
	if _, err := NewQuery(s, bad); err == nil {
		t.Error("out-of-domain categorical value accepted")
	}
	badRange := []Pred{
		{Value: 1}, {Wild: true}, {Lo: 10, Hi: 5}, {Lo: 0, Hi: 0},
	}
	if _, err := NewQuery(s, badRange); err == nil {
		t.Error("empty numeric range accepted")
	}
	wildNum := []Pred{
		{Value: 1}, {Wild: true}, {Wild: true}, {Lo: 0, Hi: 0},
	}
	if _, err := NewQuery(s, wildNum); err == nil {
		t.Error("wildcard on numeric attribute accepted")
	}
}

func TestCovers(t *testing.T) {
	s := mixedSchema(t)
	q := UniverseQuery(s).WithValue(0, 5).WithRange(2, 1000, 2000)
	cases := []struct {
		tu   Tuple
		want bool
	}{
		{Tuple{5, 1, 1500, 0}, true},
		{Tuple{5, 7, 1000, -100}, true},
		{Tuple{5, 7, 2000, 100}, true},
		{Tuple{4, 1, 1500, 0}, false}, // wrong make
		{Tuple{5, 1, 999, 0}, false},  // below range
		{Tuple{5, 1, 2001, 0}, false}, // above range
	}
	for _, c := range cases {
		if got := q.Covers(c.tu); got != c.want {
			t.Errorf("Covers(%v) = %v, want %v", c.tu, got, c.want)
		}
	}
}

func TestSplit2Partition(t *testing.T) {
	s := numSchema2(t)
	q := UniverseQuery(s).WithRange(0, 0, 100)
	left, right, err := q.Split2(0, 40)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := left.Extent(0)
	if lo != 0 || hi != 39 {
		t.Errorf("left extent [%d,%d], want [0,39]", lo, hi)
	}
	lo, hi = right.Extent(0)
	if lo != 40 || hi != 100 {
		t.Errorf("right extent [%d,%d], want [40,100]", lo, hi)
	}
	if !left.Disjoint(right) {
		t.Error("split halves are not disjoint")
	}
	// Split boundaries are rejected outside (lo, hi].
	if _, _, err := q.Split2(0, 0); err == nil {
		t.Error("split at lo accepted (left would be empty)")
	}
	if _, _, err := q.Split2(0, 101); err == nil {
		t.Error("split above hi accepted")
	}
}

func TestSplit3PartitionAndDegeneration(t *testing.T) {
	s := numSchema2(t)
	q := UniverseQuery(s).WithRange(0, 10, 20)

	left, mid, right, hasL, hasR, err := q.Split3(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !hasL || !hasR {
		t.Fatal("interior 3-way split lost a side")
	}
	if lo, hi := mid.Extent(0); lo != 15 || hi != 15 {
		t.Errorf("mid extent [%d,%d], want [15,15]", lo, hi)
	}
	if !mid.Exhausted(0) {
		t.Error("mid should exhaust the split attribute")
	}
	if !left.Disjoint(mid) || !mid.Disjoint(right) || !left.Disjoint(right) {
		t.Error("3-way split pieces overlap")
	}

	// Split at the lower endpoint: no left piece.
	_, _, _, hasL, hasR, err = q.Split3(0, 10)
	if err != nil || hasL || !hasR {
		t.Errorf("split at lo: hasL=%v hasR=%v err=%v, want false true nil", hasL, hasR, err)
	}
	// Split at the upper endpoint: no right piece.
	_, _, _, hasL, hasR, err = q.Split3(0, 20)
	if err != nil || !hasL || hasR {
		t.Errorf("split at hi: hasL=%v hasR=%v err=%v, want true false nil", hasL, hasR, err)
	}
	// Out of range.
	if _, _, _, _, _, err := q.Split3(0, 9); err == nil {
		t.Error("3-way split below lo accepted")
	}
}

// TestSplitsPartitionProperty: for random rectangles and split points, every
// covered tuple lands in exactly one piece — the invariant the crawling
// algorithms' correctness rests on.
func TestSplitsPartitionProperty(t *testing.T) {
	s := numSchema2(t)
	f := func(loRaw, spanRaw, xRaw, v0, v1 int16) bool {
		lo := int64(loRaw)
		hi := lo + int64(spanRaw&0x3FF) + 1 // non-degenerate extent
		q := UniverseQuery(s).WithRange(0, lo, hi)
		x := lo + 1 + (int64(xRaw&0x7FFF) % (hi - lo)) // in (lo, hi]
		tu := Tuple{int64(v0), int64(v1)}

		left, right, err := q.Split2(0, x)
		if err != nil {
			return false
		}
		inQ := q.Covers(tu)
		inL, inR := left.Covers(tu), right.Covers(tu)
		if inQ != (inL || inR) || (inL && inR) {
			return false
		}

		l3, m3, r3, hasL, hasR, err := q.Split3(0, x)
		if err != nil {
			return false
		}
		count := 0
		if hasL && l3.Covers(tu) {
			count++
		}
		if m3.Covers(tu) {
			count++
		}
		if hasR && r3.Covers(tu) {
			count++
		}
		want := 0
		if inQ {
			want = 1
		}
		return count == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustedAndIsPoint(t *testing.T) {
	s := mixedSchema(t)
	q := UniverseQuery(s)
	if q.Exhausted(0) || q.Exhausted(2) {
		t.Error("universe claims exhausted attributes")
	}
	q = q.WithValue(0, 3).WithValue(1, 2).WithRange(2, 7, 7).WithRange(3, -1, -1)
	for i := 0; i < 4; i++ {
		if !q.Exhausted(i) {
			t.Errorf("attribute %d not exhausted", i)
		}
	}
	if !q.IsPoint() {
		t.Error("fully pinned query is not a point")
	}
}

func TestIsSlice(t *testing.T) {
	s := mixedSchema(t)
	q := UniverseQuery(s).WithValue(1, 4)
	attr, val, ok := q.IsSlice()
	if !ok || attr != 1 || val != 4 {
		t.Errorf("IsSlice = (%d,%d,%v), want (1,4,true)", attr, val, ok)
	}
	if _, _, ok := UniverseQuery(s).IsSlice(); ok {
		t.Error("universe claimed to be a slice")
	}
	if _, _, ok := q.WithValue(0, 2).IsSlice(); ok {
		t.Error("two pinned attributes claimed to be a slice")
	}
	if _, _, ok := q.WithRange(2, 5, 10).IsSlice(); ok {
		t.Error("range-constrained query claimed to be a slice")
	}
}

func TestContains(t *testing.T) {
	s := mixedSchema(t)
	u := UniverseQuery(s)
	sub := u.WithValue(0, 3).WithRange(2, 100, 200)
	if !u.Contains(sub) {
		t.Error("universe does not contain its refinement")
	}
	if sub.Contains(u) {
		t.Error("refinement contains the universe")
	}
	if !sub.Contains(sub) {
		t.Error("query does not contain itself")
	}
	other := u.WithValue(0, 4)
	if sub.Contains(other) || other.Contains(sub) {
		t.Error("disjoint value pins claim containment")
	}
}

func TestDisjoint(t *testing.T) {
	s := mixedSchema(t)
	u := UniverseQuery(s)
	a := u.WithValue(0, 1)
	b := u.WithValue(0, 2)
	if !a.Disjoint(b) {
		t.Error("different value pins not disjoint")
	}
	c := u.WithRange(2, 0, 10)
	d := u.WithRange(2, 11, 20)
	if !c.Disjoint(d) {
		t.Error("non-overlapping ranges not disjoint")
	}
	e := u.WithRange(2, 5, 15)
	if c.Disjoint(e) {
		t.Error("overlapping ranges claimed disjoint")
	}
}

func TestQueryKeyCanonical(t *testing.T) {
	s := mixedSchema(t)
	a := UniverseQuery(s).WithValue(0, 3).WithRange(2, 10, 20)
	b := UniverseQuery(s).WithRange(2, 10, 20).WithValue(0, 3)
	if a.Key() != b.Key() {
		t.Error("equal queries have different keys")
	}
	c := a.WithValue(0, 4)
	if a.Key() == c.Key() {
		t.Error("different queries share a key")
	}
}

func TestQueryAppendKeyCanonical(t *testing.T) {
	s := mixedSchema(t)
	a := UniverseQuery(s).WithValue(0, 3).WithRange(2, 10, 20)
	b := UniverseQuery(s).WithRange(2, 10, 20).WithValue(0, 3)
	if string(a.AppendKey(nil)) != string(b.AppendKey(nil)) {
		t.Error("equal queries have different binary keys")
	}
	// The binary key must discriminate exactly as the string key does,
	// including wildcard-vs-value and boundary shifts on either range end.
	variants := []Query{
		a,
		a.WithValue(0, 4),
		UniverseQuery(s).WithRange(2, 10, 20), // wildcard instead of Make=3
		a.WithRange(2, 10, 21),
		a.WithRange(2, 9, 20),
		a.WithRange(3, 0, 0),
		a.WithValue(1, 1),
	}
	for i, x := range variants {
		for j, y := range variants {
			sameBinary := string(x.AppendKey(nil)) == string(y.AppendKey(nil))
			sameString := x.Key() == y.Key()
			if sameBinary != sameString {
				t.Errorf("variants %d,%d: binary key equality %v, string key equality %v",
					i, j, sameBinary, sameString)
			}
		}
	}
	// Appending into a reused buffer must match a fresh encoding.
	buf := make([]byte, 0, 64)
	buf = append(buf[:0], 'x', 'y')
	if got := string(a.AppendKey(buf)[2:]); got != string(a.AppendKey(nil)) {
		t.Error("AppendKey into a prefixed buffer diverges from a fresh encoding")
	}
}

func TestQueryString(t *testing.T) {
	s := mixedSchema(t)
	q := UniverseQuery(s).WithValue(0, 3).WithRange(2, 100, 200)
	want := "Make=3, Body=⋆, Price∈[100,200], Year∈[-inf,+inf]"
	if got := q.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestSentinelsLeaveOverflowSlack(t *testing.T) {
	// NegInf-1 and PosInf+1 must not wrap: the splits compute x±1.
	if NegInf-1 > NegInf || PosInf+1 < PosInf {
		t.Error("sentinels leave no arithmetic slack")
	}
	if NegInf != math.MinInt64+1 || PosInf != math.MaxInt64-1 {
		t.Error("sentinel values changed; update the slack analysis")
	}
}
