package dataspace

import (
	"testing"
	"testing/quick"
)

func TestTupleEqualCompare(t *testing.T) {
	a := Tuple{1, 2, 3}
	b := Tuple{1, 2, 3}
	c := Tuple{1, 2, 4}
	if !a.Equal(b) || a.Equal(c) {
		t.Error("Equal wrong")
	}
	if a.Compare(b) != 0 || a.Compare(c) != -1 || c.Compare(a) != 1 {
		t.Error("Compare wrong on same-length tuples")
	}
	short := Tuple{1, 2}
	if short.Compare(a) != -1 || a.Compare(short) != 1 {
		t.Error("Compare wrong on prefix tuples")
	}
	if a.Equal(short) {
		t.Error("tuples of different arity compare equal")
	}
}

func TestTupleCloneIndependent(t *testing.T) {
	a := Tuple{1, 2}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestTupleValidate(t *testing.T) {
	s := MustSchema([]Attribute{
		{Name: "C", Kind: Categorical, DomainSize: 3},
		{Name: "N", Kind: Numeric},
	})
	if err := (Tuple{2, -5}).Validate(s); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	if err := (Tuple{2}).Validate(s); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := (Tuple{0, 0}).Validate(s); err == nil {
		t.Error("categorical value 0 accepted (domain is 1..U)")
	}
	if err := (Tuple{4, 0}).Validate(s); err == nil {
		t.Error("categorical value above domain accepted")
	}
}

func TestBagEqualMultiset(t *testing.T) {
	a := Bag{{1, 1}, {2, 2}, {1, 1}}
	b := Bag{{2, 2}, {1, 1}, {1, 1}}
	c := Bag{{1, 1}, {2, 2}, {2, 2}}
	if !a.EqualMultiset(b) {
		t.Error("permuted bags not equal")
	}
	if a.EqualMultiset(c) {
		t.Error("bags with different multiplicities equal")
	}
	if a.EqualMultiset(a[:2]) {
		t.Error("bags of different size equal")
	}
	var empty Bag
	if !empty.EqualMultiset(Bag{}) {
		t.Error("empty bags not equal")
	}
}

func TestBagEqualMultisetDoesNotMutate(t *testing.T) {
	a := Bag{{3, 0}, {1, 0}, {2, 0}}
	_ = a.EqualMultiset(Bag{{1, 0}, {2, 0}, {3, 0}})
	if !a[0].Equal(Tuple{3, 0}) {
		t.Error("EqualMultiset reordered its receiver")
	}
}

func TestMaxMultiplicity(t *testing.T) {
	cases := []struct {
		bag  Bag
		want int
	}{
		{Bag{}, 0},
		{Bag{{1}}, 1},
		{Bag{{1}, {2}, {1}, {1}}, 3},
		{Bag{{1}, {1}, {2}, {2}, {2}}, 3},
	}
	for i, c := range cases {
		if got := c.bag.MaxMultiplicity(); got != c.want {
			t.Errorf("case %d: MaxMultiplicity = %d, want %d", i, got, c.want)
		}
	}
}

func TestDistinctPointsAndValues(t *testing.T) {
	b := Bag{{1, 10}, {1, 10}, {1, 20}, {2, 10}}
	if got := b.DistinctPoints(); got != 3 {
		t.Errorf("DistinctPoints = %d, want 3", got)
	}
	dv := b.DistinctValues(2)
	if dv[0] != 2 || dv[1] != 2 {
		t.Errorf("DistinctValues = %v, want [2 2]", dv)
	}
}

func TestBagProject(t *testing.T) {
	b := Bag{{1, 10, 100}, {2, 20, 200}}
	p := b.Project([]int{2, 0})
	want := Bag{{100, 1}, {200, 2}}
	if !p.EqualMultiset(want) {
		t.Errorf("Project = %v, want %v", p, want)
	}
	// Projection must deep-copy: mutating the projection leaves the
	// original intact.
	p[0][0] = 999
	if b[0][2] != 100 {
		t.Error("Project shares storage with the source bag")
	}
}

// Property: EqualMultiset is reflexive and permutation-invariant.
func TestEqualMultisetProperty(t *testing.T) {
	f := func(vals []int8, seed uint8) bool {
		bag := make(Bag, len(vals))
		for i, v := range vals {
			bag[i] = Tuple{int64(v % 4), int64(v / 4)}
		}
		if !bag.EqualMultiset(bag) {
			return false
		}
		// Rotate as a cheap permutation.
		rot := make(Bag, len(bag))
		r := int(seed)
		for i := range bag {
			rot[i] = bag[(i+r)%max(1, len(bag))]
		}
		if len(bag) > 0 && !bag.EqualMultiset(rot) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
