package dataspace

import (
	"strings"
	"testing"
)

func mixedSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema([]Attribute{
		{Name: "Make", Kind: Categorical, DomainSize: 85},
		{Name: "Body", Kind: Categorical, DomainSize: 7},
		{Name: "Price", Kind: Numeric, Min: 200, Max: 250000},
		{Name: "Year", Kind: Numeric},
	})
}

func TestNewSchemaValid(t *testing.T) {
	s := mixedSchema(t)
	if s.Dims() != 4 {
		t.Fatalf("Dims = %d, want 4", s.Dims())
	}
	if s.Cat() != 2 {
		t.Fatalf("Cat = %d, want 2", s.Cat())
	}
	if !s.IsMixed() || s.IsNumeric() || s.IsCategorical() {
		t.Fatalf("kind predicates wrong: mixed=%v numeric=%v categorical=%v",
			s.IsMixed(), s.IsNumeric(), s.IsCategorical())
	}
}

func TestNewSchemaErrors(t *testing.T) {
	cases := []struct {
		name  string
		attrs []Attribute
		want  string
	}{
		{"empty", nil, "at least one attribute"},
		{"no name", []Attribute{{Kind: Numeric}}, "empty name"},
		{"dup name", []Attribute{
			{Name: "A", Kind: Numeric},
			{Name: "A", Kind: Numeric},
		}, "duplicate attribute name"},
		{"cat after num", []Attribute{
			{Name: "N", Kind: Numeric},
			{Name: "C", Kind: Categorical, DomainSize: 3},
		}, "categorical attributes must come first"},
		{"cat without domain", []Attribute{
			{Name: "C", Kind: Categorical},
		}, "DomainSize >= 1"},
		{"num with domain", []Attribute{
			{Name: "N", Kind: Numeric, DomainSize: 5},
		}, "must not set DomainSize"},
		{"min > max", []Attribute{
			{Name: "N", Kind: Numeric, Min: 10, Max: 5},
		}, "Min 10 > Max 5"},
		{"bad kind", []Attribute{
			{Name: "X", Kind: Kind(9)},
		}, "invalid kind"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewSchema(c.attrs)
			if err == nil {
				t.Fatalf("NewSchema succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestSchemaKindPredicates(t *testing.T) {
	num := MustSchema([]Attribute{{Name: "A", Kind: Numeric}})
	if !num.IsNumeric() || num.Cat() != 0 {
		t.Error("pure numeric schema misclassified")
	}
	cat := MustSchema([]Attribute{{Name: "A", Kind: Categorical, DomainSize: 2}})
	if !cat.IsCategorical() || cat.Cat() != 1 {
		t.Error("pure categorical schema misclassified")
	}
}

func TestSchemaBounds(t *testing.T) {
	s := mixedSchema(t)
	lo, hi := s.Attr(0).Bounds()
	if lo != 1 || hi != 85 {
		t.Errorf("categorical bounds = [%d,%d], want [1,85]", lo, hi)
	}
	lo, hi = s.Attr(2).Bounds()
	if lo != 200 || hi != 250000 {
		t.Errorf("bounded numeric = [%d,%d], want [200,250000]", lo, hi)
	}
	lo, hi = s.Attr(3).Bounds()
	if lo != NegInf || hi != PosInf {
		t.Errorf("unbounded numeric = [%d,%d], want sentinels", lo, hi)
	}
}

func TestSchemaProject(t *testing.T) {
	s := mixedSchema(t)
	p, err := s.Project([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dims() != 2 || p.Attr(0).Name != "Make" || p.Attr(1).Name != "Price" {
		t.Fatalf("projection wrong: %s", p)
	}
	if _, err := s.Project([]int{5}); err == nil {
		t.Error("out-of-range projection succeeded")
	}
	// A projection that breaks the categorical-prefix rule must fail.
	if _, err := s.Project([]int{2, 0}); err == nil {
		t.Error("numeric-before-categorical projection succeeded")
	}
}

func TestSchemaIndexOf(t *testing.T) {
	s := mixedSchema(t)
	if i := s.IndexOf("Price"); i != 2 {
		t.Errorf("IndexOf(Price) = %d, want 2", i)
	}
	if i := s.IndexOf("nope"); i != -1 {
		t.Errorf("IndexOf(nope) = %d, want -1", i)
	}
}

func TestSliceQueryCount(t *testing.T) {
	s := mixedSchema(t)
	if got := s.SliceQueryCount(); got != 92 {
		t.Errorf("SliceQueryCount = %d, want 92", got)
	}
}

func TestCatPoints(t *testing.T) {
	s := mixedSchema(t)
	if got := s.CatPoints(); got != 85*7 {
		t.Errorf("CatPoints = %d, want %d", got, 85*7)
	}
	// Saturation on absurdly large products.
	big := make([]Attribute, 8)
	for i := range big {
		big[i] = Attribute{Name: string(rune('A' + i)), Kind: Categorical, DomainSize: 1 << 30}
	}
	s2 := MustSchema(big)
	if s2.CatPoints() <= 0 {
		t.Error("CatPoints overflowed instead of saturating")
	}
}

func TestSchemaString(t *testing.T) {
	got := mixedSchema(t).String()
	want := "Make:cat(85), Body:cat(7), Price:num, Year:num"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestAttrsCopy(t *testing.T) {
	s := mixedSchema(t)
	attrs := s.Attrs()
	attrs[0].Name = "mutated"
	if s.Attr(0).Name != "Make" {
		t.Error("Attrs returned a live reference to internal state")
	}
}

func TestKindString(t *testing.T) {
	if Numeric.String() != "numeric" || Categorical.String() != "categorical" {
		t.Error("Kind.String wrong")
	}
	if !strings.Contains(Kind(7).String(), "7") {
		t.Error("unknown Kind should render its number")
	}
}
