package dataspace

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is one row of the hidden database: its value on every attribute of
// the schema, in schema order. The database is a bag, so identical tuples
// may occur many times.
type Tuple []int64

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	cp := make(Tuple, len(t))
	copy(cp, t)
	return cp
}

// Equal reports whether two tuples agree on every attribute.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically; it exists so bags can be sorted
// canonically for multiset comparison.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		switch {
		case t[i] < u[i]:
			return -1
		case t[i] > u[i]:
			return 1
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Validate checks that the tuple is well-formed for the schema: correct
// arity, and categorical values inside their domains.
func (t Tuple) Validate(s *Schema) error {
	if len(t) != s.Dims() {
		return fmt.Errorf("dataspace: tuple arity %d != schema dims %d", len(t), s.Dims())
	}
	for i, v := range t {
		a := s.Attr(i)
		if a.Kind == Categorical {
			if v < 1 || v > int64(a.DomainSize) {
				return fmt.Errorf("dataspace: tuple value %d for categorical %q outside [1,%d]", v, a.Name, a.DomainSize)
			}
		} else if v < NegInf || v > PosInf {
			return fmt.Errorf("dataspace: tuple value %d for numeric %q outside (NegInf, PosInf)", v, a.Name)
		}
	}
	return nil
}

// Bag is a multiset of tuples. The zero value is an empty bag.
type Bag []Tuple

// Clone deep-copies the bag.
func (b Bag) Clone() Bag {
	cp := make(Bag, len(b))
	for i, t := range b {
		cp[i] = t.Clone()
	}
	return cp
}

// SortCanonical sorts the bag lexicographically in place and returns it.
func (b Bag) SortCanonical() Bag {
	sort.Slice(b, func(i, j int) bool { return b[i].Compare(b[j]) < 0 })
	return b
}

// EqualMultiset reports whether two bags contain exactly the same tuples
// with the same multiplicities, regardless of order.
func (b Bag) EqualMultiset(o Bag) bool {
	if len(b) != len(o) {
		return false
	}
	x := b.Clone().SortCanonical()
	y := o.Clone().SortCanonical()
	for i := range x {
		if !x[i].Equal(y[i]) {
			return false
		}
	}
	return true
}

// MaxMultiplicity returns the largest number of identical tuples in the bag.
// Problem 1 is solvable iff MaxMultiplicity <= k.
func (b Bag) MaxMultiplicity() int {
	if len(b) == 0 {
		return 0
	}
	s := b.Clone().SortCanonical()
	best, run := 1, 1
	for i := 1; i < len(s); i++ {
		if s[i].Equal(s[i-1]) {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 1
		}
	}
	return best
}

// DistinctPoints returns the number of distinct points occupied by the bag.
func (b Bag) DistinctPoints() int {
	if len(b) == 0 {
		return 0
	}
	s := b.Clone().SortCanonical()
	n := 1
	for i := 1; i < len(s); i++ {
		if !s[i].Equal(s[i-1]) {
			n++
		}
	}
	return n
}

// DistinctValues returns, per attribute, the number of distinct values that
// occur in the bag. Used to pick the "top-d attributes by distinct count"
// workloads of Figures 10b and 11b.
func (b Bag) DistinctValues(dims int) []int {
	counts := make([]int, dims)
	for i := 0; i < dims; i++ {
		seen := make(map[int64]struct{})
		for _, t := range b {
			seen[t[i]] = struct{}{}
		}
		counts[i] = len(seen)
	}
	return counts
}

// Project returns a new bag keeping only the given columns of every tuple.
func (b Bag) Project(cols []int) Bag {
	out := make(Bag, len(b))
	for i, t := range b {
		nt := make(Tuple, len(cols))
		for j, c := range cols {
			nt[j] = t[c]
		}
		out[i] = nt
	}
	return out
}
