// Package dataspace models the data space of a hidden database: attribute
// schemas, points/tuples, form queries (one predicate per attribute), and the
// geometric operations (2-way and 3-way splits, refinement) that the crawling
// algorithms of Sheng et al. (VLDB 2012) are built on.
//
// A data space D has d attributes A1..Ad. Numeric attributes have a totally
// ordered integer domain and accept range predicates Ai ∈ [x, y]; categorical
// attributes have a finite unordered domain {1..Ui} and accept equality
// predicates Ai = x or the wildcard Ai = ⋆.
package dataspace

import (
	"fmt"
	"math"
	"strings"
)

// Kind distinguishes numeric from categorical attributes.
type Kind uint8

const (
	// Numeric attributes have a totally ordered integer domain and accept
	// range predicates.
	Numeric Kind = iota
	// Categorical attributes have a finite unordered domain {1..U} and
	// accept equality-or-wildcard predicates.
	Categorical
)

// String returns "numeric" or "categorical".
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Sentinel extent bounds for numeric attributes whose conceptual domain is
// all integers. They leave one unit of slack so that x-1 and x+1 never
// overflow for any in-domain value x.
const (
	NegInf int64 = math.MinInt64 + 1
	PosInf int64 = math.MaxInt64 - 1
)

// Attribute describes one dimension of the data space.
type Attribute struct {
	// Name is a human-readable label, e.g. "Price".
	Name string
	// Kind says whether the attribute is Numeric or Categorical.
	Kind Kind
	// DomainSize is the number of distinct values U of a categorical
	// attribute; its domain is the integers 1..DomainSize. Zero for
	// numeric attributes.
	DomainSize int
	// Min and Max optionally bound a numeric attribute's domain. They are
	// advisory: rank-shrink never needs them, but the binary-shrink
	// baseline requires finite bounds to pick split midpoints. When both
	// are zero the domain is treated as (NegInf, PosInf).
	Min, Max int64
}

// Bounds returns the effective numeric extent of the attribute,
// (NegInf, PosInf) when no explicit bounds were declared.
func (a Attribute) Bounds() (lo, hi int64) {
	if a.Kind == Categorical {
		return 1, int64(a.DomainSize)
	}
	if a.Min == 0 && a.Max == 0 {
		return NegInf, PosInf
	}
	return a.Min, a.Max
}

// Schema is an ordered list of attributes defining a data space. The order
// matters: the algorithms in the paper consume attributes left to right
// (categorical attributes first in a mixed space).
type Schema struct {
	attrs []Attribute
}

// NewSchema validates the attribute list and returns a schema. In a mixed
// space all categorical attributes must precede all numeric ones, matching
// the paper's convention (A1..Acat categorical, the rest numeric).
func NewSchema(attrs []Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("dataspace: schema needs at least one attribute")
	}
	seenNumeric := false
	names := make(map[string]bool, len(attrs))
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("dataspace: attribute %d has empty name", i)
		}
		if names[a.Name] {
			return nil, fmt.Errorf("dataspace: duplicate attribute name %q", a.Name)
		}
		names[a.Name] = true
		switch a.Kind {
		case Categorical:
			if seenNumeric {
				return nil, fmt.Errorf("dataspace: categorical attribute %q after a numeric one; categorical attributes must come first", a.Name)
			}
			if a.DomainSize < 1 {
				return nil, fmt.Errorf("dataspace: categorical attribute %q needs DomainSize >= 1, got %d", a.Name, a.DomainSize)
			}
		case Numeric:
			seenNumeric = true
			if a.DomainSize != 0 {
				return nil, fmt.Errorf("dataspace: numeric attribute %q must not set DomainSize", a.Name)
			}
			if a.Min > a.Max {
				return nil, fmt.Errorf("dataspace: numeric attribute %q has Min %d > Max %d", a.Name, a.Min, a.Max)
			}
			if a.Min < NegInf || a.Max > PosInf {
				return nil, fmt.Errorf("dataspace: numeric attribute %q bounds exceed (NegInf, PosInf)", a.Name)
			}
		default:
			return nil, fmt.Errorf("dataspace: attribute %q has invalid kind %d", a.Name, a.Kind)
		}
	}
	cp := make([]Attribute, len(attrs))
	copy(cp, attrs)
	return &Schema{attrs: cp}, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(attrs []Attribute) *Schema {
	s, err := NewSchema(attrs)
	if err != nil {
		panic(err)
	}
	return s
}

// Dims returns the dimensionality d of the data space.
func (s *Schema) Dims() int { return len(s.attrs) }

// Attr returns the i-th attribute (0-based).
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute {
	cp := make([]Attribute, len(s.attrs))
	copy(cp, s.attrs)
	return cp
}

// Cat returns the number of leading categorical attributes (the paper's
// "cat"). It is 0 for a purely numeric space and Dims() for a purely
// categorical one.
func (s *Schema) Cat() int {
	for i, a := range s.attrs {
		if a.Kind == Numeric {
			return i
		}
	}
	return len(s.attrs)
}

// IsNumeric reports whether every attribute is numeric.
func (s *Schema) IsNumeric() bool { return s.Cat() == 0 }

// IsCategorical reports whether every attribute is categorical.
func (s *Schema) IsCategorical() bool { return s.Cat() == s.Dims() }

// IsMixed reports whether the space has both categorical and numeric
// attributes.
func (s *Schema) IsMixed() bool { c := s.Cat(); return c > 0 && c < s.Dims() }

// IndexOf returns the position of the attribute with the given name, or -1.
func (s *Schema) IndexOf(name string) int {
	for i, a := range s.attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Project returns a new schema keeping only the attributes at the given
// positions, in the given order. The positions must describe a valid
// categorical-prefix ordering.
func (s *Schema) Project(cols []int) (*Schema, error) {
	attrs := make([]Attribute, 0, len(cols))
	for _, c := range cols {
		if c < 0 || c >= len(s.attrs) {
			return nil, fmt.Errorf("dataspace: project column %d out of range [0,%d)", c, len(s.attrs))
		}
		attrs = append(attrs, s.attrs[c])
	}
	return NewSchema(attrs)
}

// SliceQueryCount returns Σ Ui over the categorical attributes: the total
// number of distinct slice queries in the space.
func (s *Schema) SliceQueryCount() int {
	total := 0
	for _, a := range s.attrs {
		if a.Kind == Categorical {
			total += a.DomainSize
		}
	}
	return total
}

// CatPoints returns the number of points in the categorical subspace,
// Π Ui over categorical attributes, saturating at math.MaxInt64.
func (s *Schema) CatPoints() int64 {
	total := int64(1)
	for _, a := range s.attrs {
		if a.Kind != Categorical {
			continue
		}
		u := int64(a.DomainSize)
		if total > math.MaxInt64/u {
			return math.MaxInt64
		}
		total *= u
	}
	return total
}

// String renders the schema compactly, e.g.
// "Make:cat(85), Price:num, Mileage:num".
func (s *Schema) String() string {
	var b strings.Builder
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		if a.Kind == Categorical {
			fmt.Fprintf(&b, ":cat(%d)", a.DomainSize)
		} else {
			b.WriteString(":num")
		}
	}
	return b.String()
}
