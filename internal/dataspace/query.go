package dataspace

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Pred is the predicate a query places on one attribute.
//
// For a numeric attribute the predicate is the inclusive range [Lo, Hi].
// For a categorical attribute it is either the wildcard (Wild=true,
// matching every domain value) or the equality Ai = Value.
type Pred struct {
	// Lo, Hi bound a numeric range predicate (inclusive).
	Lo, Hi int64
	// Wild marks a categorical wildcard predicate (Ai = ⋆).
	Wild bool
	// Value is the constant of a categorical equality predicate.
	Value int64
}

// Query is a conjunction of one predicate per attribute — exactly the kind
// of request a hidden database's search form accepts. A numeric query is
// also a d-dimensional axis-parallel rectangle, which is how the splitting
// algorithms treat it.
//
// Queries are immutable: every refinement operation returns a new Query.
type Query struct {
	schema *Schema
	preds  []Pred
}

// UniverseQuery returns the query covering the whole data space: wildcard on
// every categorical attribute and (NegInf, PosInf) on every numeric one.
func UniverseQuery(s *Schema) Query {
	preds := make([]Pred, s.Dims())
	for i := range preds {
		a := s.Attr(i)
		if a.Kind == Categorical {
			preds[i] = Pred{Wild: true}
		} else {
			preds[i] = Pred{Lo: NegInf, Hi: PosInf}
		}
	}
	return Query{schema: s, preds: preds}
}

// NewQuery builds a query from explicit predicates after validating them
// against the schema.
func NewQuery(s *Schema, preds []Pred) (Query, error) {
	if len(preds) != s.Dims() {
		return Query{}, fmt.Errorf("dataspace: %d predicates for %d attributes", len(preds), s.Dims())
	}
	cp := make([]Pred, len(preds))
	copy(cp, preds)
	q := Query{schema: s, preds: cp}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return q, nil
}

// Validate checks the query's predicates against its schema.
func (q Query) Validate() error {
	if q.schema == nil {
		return fmt.Errorf("dataspace: query has no schema")
	}
	for i, p := range q.preds {
		a := q.schema.Attr(i)
		switch a.Kind {
		case Categorical:
			if !p.Wild && (p.Value < 1 || p.Value > int64(a.DomainSize)) {
				return fmt.Errorf("dataspace: predicate %s=%d outside domain [1,%d]", a.Name, p.Value, a.DomainSize)
			}
		case Numeric:
			if p.Wild {
				return fmt.Errorf("dataspace: wildcard predicate on numeric attribute %q", a.Name)
			}
			if p.Lo > p.Hi {
				return fmt.Errorf("dataspace: empty range [%d,%d] on %q", p.Lo, p.Hi, a.Name)
			}
			if p.Lo < NegInf || p.Hi > PosInf {
				return fmt.Errorf("dataspace: range on %q exceeds (NegInf, PosInf)", a.Name)
			}
		}
	}
	return nil
}

// Schema returns the schema the query is over.
func (q Query) Schema() *Schema { return q.schema }

// Pred returns the predicate on attribute i.
func (q Query) Pred(i int) Pred { return q.preds[i] }

// Preds returns the query's predicates, aligned with the schema's
// attributes. The slice is shared with the query — callers must treat it as
// read-only. It exists so hot evaluation loops (the index engine's columnar
// coversAt) can avoid a per-attribute Pred copy.
func (q Query) Preds() []Pred { return q.preds }

// Covers reports whether the tuple satisfies every predicate of the query.
func (q Query) Covers(t Tuple) bool {
	for i, p := range q.preds {
		v := t[i]
		if q.schema.Attr(i).Kind == Categorical {
			if !p.Wild && v != p.Value {
				return false
			}
		} else if v < p.Lo || v > p.Hi {
			return false
		}
	}
	return true
}

// Extent returns the numeric range [lo, hi] of the query on numeric
// attribute i.
func (q Query) Extent(i int) (lo, hi int64) {
	p := q.preds[i]
	return p.Lo, p.Hi
}

// Exhausted reports whether attribute i's extent has shrunk to a single
// value (numeric) or is pinned to a constant (categorical).
func (q Query) Exhausted(i int) bool {
	p := q.preds[i]
	if q.schema.Attr(i).Kind == Categorical {
		return !p.Wild
	}
	return p.Lo == p.Hi
}

// IsPoint reports whether every attribute is exhausted, i.e. the query has
// degenerated into a single point of the data space. A point query can never
// overflow on a solvable instance.
func (q Query) IsPoint() bool {
	for i := range q.preds {
		if !q.Exhausted(i) {
			return false
		}
	}
	return true
}

// IsSlice reports whether the query is a slice query: a single categorical
// equality predicate, wildcard/full-range everywhere else. When it is, the
// attribute index and constant are returned.
func (q Query) IsSlice() (attr int, value int64, ok bool) {
	attr = -1
	for i, p := range q.preds {
		if q.schema.Attr(i).Kind == Categorical {
			if !p.Wild {
				if attr >= 0 {
					return -1, 0, false
				}
				attr, value = i, p.Value
			}
		} else if p.Lo != NegInf || p.Hi != PosInf {
			return -1, 0, false
		}
	}
	if attr < 0 {
		return -1, 0, false
	}
	return attr, value, true
}

// WithRange returns a copy of the query whose predicate on numeric attribute
// i is replaced by [lo, hi].
func (q Query) WithRange(i int, lo, hi int64) Query {
	preds := make([]Pred, len(q.preds))
	copy(preds, q.preds)
	preds[i] = Pred{Lo: lo, Hi: hi}
	return Query{schema: q.schema, preds: preds}
}

// WithValue returns a copy of the query whose predicate on categorical
// attribute i is replaced by the equality Ai = v.
func (q Query) WithValue(i int, v int64) Query {
	preds := make([]Pred, len(q.preds))
	copy(preds, q.preds)
	preds[i] = Pred{Value: v}
	return Query{schema: q.schema, preds: preds}
}

// Split2 performs the paper's 2-way split of the query's rectangle on
// numeric attribute i at value x: the left part gets extent [lo, x-1] and
// the right part [x, hi]. x must lie in (lo, hi]; otherwise the left part
// would be empty.
func (q Query) Split2(i int, x int64) (left, right Query, err error) {
	lo, hi := q.Extent(i)
	if x <= lo || x > hi {
		return Query{}, Query{}, fmt.Errorf("dataspace: 2-way split at %d outside (%d,%d]", x, lo, hi)
	}
	return q.WithRange(i, lo, x-1), q.WithRange(i, x, hi), nil
}

// Split3 performs the paper's 3-way split on numeric attribute i at value x:
// left [lo, x-1], middle [x, x], right [x+1, hi]. When x coincides with an
// endpoint the corresponding side has an empty extent and hasLeft/hasRight
// is false (the paper "discards" such rectangles).
func (q Query) Split3(i int, x int64) (left, mid, right Query, hasLeft, hasRight bool, err error) {
	lo, hi := q.Extent(i)
	if x < lo || x > hi {
		return Query{}, Query{}, Query{}, false, false, fmt.Errorf("dataspace: 3-way split at %d outside [%d,%d]", x, lo, hi)
	}
	mid = q.WithRange(i, x, x)
	if x > lo {
		left = q.WithRange(i, lo, x-1)
		hasLeft = true
	}
	if x < hi {
		right = q.WithRange(i, x+1, hi)
		hasRight = true
	}
	return left, mid, right, hasLeft, hasRight, nil
}

// Contains reports whether q's region fully contains r's region. Both must
// share a schema.
func (q Query) Contains(r Query) bool {
	for i := range q.preds {
		qp, rp := q.preds[i], r.preds[i]
		if q.schema.Attr(i).Kind == Categorical {
			if qp.Wild {
				continue
			}
			if rp.Wild || rp.Value != qp.Value {
				return false
			}
		} else if rp.Lo < qp.Lo || rp.Hi > qp.Hi {
			return false
		}
	}
	return true
}

// Disjoint reports whether q and r cover disjoint regions of the data space.
func (q Query) Disjoint(r Query) bool {
	for i := range q.preds {
		qp, rp := q.preds[i], r.preds[i]
		if q.schema.Attr(i).Kind == Categorical {
			if !qp.Wild && !rp.Wild && qp.Value != rp.Value {
				return true
			}
		} else if qp.Hi < rp.Lo || rp.Hi < qp.Lo {
			return true
		}
	}
	return false
}

// Key returns a canonical string for the query, usable as a cache key. Two
// queries over the same schema have equal keys iff they specify identical
// predicates.
func (q Query) Key() string {
	var b strings.Builder
	b.Grow(16 * len(q.preds))
	for i, p := range q.preds {
		if i > 0 {
			b.WriteByte('|')
		}
		if q.schema.Attr(i).Kind == Categorical {
			if p.Wild {
				b.WriteByte('*')
			} else {
				b.WriteString(strconv.FormatInt(p.Value, 10))
			}
		} else {
			b.WriteString(strconv.FormatInt(p.Lo, 10))
			b.WriteByte(':')
			b.WriteString(strconv.FormatInt(p.Hi, 10))
		}
	}
	return b.String()
}

// Key-encoding tags. Each predicate contributes a tag byte followed by its
// fixed-width operands, so two queries over the same schema produce equal
// encodings iff their predicates are identical.
const (
	keyWild  = 0x00 // categorical wildcard, no operands
	keyValue = 0x01 // categorical equality, 8-byte value
	keyRange = 0x02 // numeric range, 8-byte lo + 8-byte hi
)

// AppendKey appends a compact binary canonical key for the query to dst and
// returns the extended slice. It is the allocation-free counterpart of Key:
// with a reused buffer it performs no allocation, which is what
// hiddendb.Caching's zero-copy memo lookups rely on. Two queries over the
// same schema have equal keys iff they specify identical predicates.
func (q Query) AppendKey(dst []byte) []byte {
	for i, p := range q.preds {
		if q.schema.Attr(i).Kind == Categorical {
			if p.Wild {
				dst = append(dst, keyWild)
			} else {
				dst = append(dst, keyValue)
				dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Value))
			}
		} else {
			dst = append(dst, keyRange)
			dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Lo))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Hi))
		}
	}
	return dst
}

// String renders the query with attribute names, e.g.
// "Make=3, Body=⋆, Price∈[0,5000]".
func (q Query) String() string {
	var b strings.Builder
	for i, p := range q.preds {
		if i > 0 {
			b.WriteString(", ")
		}
		a := q.schema.Attr(i)
		if a.Kind == Categorical {
			if p.Wild {
				b.WriteString(a.Name + "=⋆")
			} else {
				fmt.Fprintf(&b, "%s=%d", a.Name, p.Value)
			}
		} else {
			lo, hi := "-inf", "+inf"
			if p.Lo != NegInf {
				lo = strconv.FormatInt(p.Lo, 10)
			}
			if p.Hi != PosInf {
				hi = strconv.FormatInt(p.Hi, 10)
			}
			fmt.Fprintf(&b, "%s∈[%s,%s]", a.Name, lo, hi)
		}
	}
	return b.String()
}
