// Package diskstore implements the disk-resident hidden-database engine: a
// second index.Engine whose relation, posting lists and sorted segments
// live in one immutable, checksummed columnar file served through mmap —
// larger-than-RAM stores answer the paper's top-k queries while touching
// only the disk pages a query actually needs.
//
// # File layout and construction
//
// A store file is written once by the streaming Builder (builder.go) and
// never modified: per-attribute int64 column segments in descending
// priority order, per-band posting-list and sorted-segment indexes, the
// relation's selectivity sample, and a CRC-framed JSON footer that
// describes them all (format.go). The builder consumes tuples one at a
// time — datagen.TieredSeq streams a 10M-tuple tier straight into a file —
// and finalizes crash-safely (temp file, fsync, atomic rename), so a crash
// mid-build never leaves a torn store behind the path.
//
// # Query evaluation
//
// Open maps the file read-only and assembles one index.Store per priority
// band from artifacts aliasing the mapped pages (index.NewFromArtifacts):
// the planner v2 cost model, the plan cache, and all five access paths run
// unchanged against on-disk postings. Three properties make the disk
// engine's behaviour bit-identical to the in-memory engine over the same
// relation:
//
//   - band boundaries use index.NewSharded's exact i*n/bands split, and
//     Select/SelectBatch/Count replicate Sharded's priority-ordered
//     early-exit walk and fan-out gates;
//   - the selectivity sample persisted in the footer is the same
//     deterministic stride sample buildSelStats draws, so the cost model
//     sees identical statistics (index.NewSelStats);
//   - bitmap indexes are rebuilt at Open from the on-disk posting lists
//     under the same size/domain gates the in-memory constructor applies.
//
// Result rows are materialized lazily through a small pinned block cache
// (cache.go) whose hit/miss counters surface in EngineStats; planning and
// filtering never materialize anything — they read the mapped columns.
//
// # Integrity
//
// Every byte a reader trusts is checksummed. Open validates the footer
// frame, the segment directory, and the posting-index structure; Verify
// (or OpenOptions.Verify) re-checksums every segment. Damage is never
// served: the file is quarantined — renamed to path+".corrupt", preserving
// the bytes for forensics — and a typed *CorruptionError reports what
// failed and where, mirroring journal.CorruptionError's contract.
package diskstore

import (
	"context"
	"hash/crc32"
	"os"
	"runtime"
	"sync"

	"hidb/internal/dataspace"
	"hidb/internal/index"
	"hidb/internal/wire"
)

// OpenOptions configures Open.
type OpenOptions struct {
	// CacheBlocks bounds the pinned block cache (blocks of 256
	// materialized rows). 0 means the default (1024 blocks).
	CacheBlocks int
	// Verify makes Open checksum every segment before serving (reads the
	// whole file once). Without it only the footer and the index
	// structure are validated; call Verify explicitly for a full audit.
	Verify bool
}

// Store is the disk-resident engine: an opened, immutable store file.
// All methods are safe for concurrent use until Close.
type Store struct {
	path   string
	schema *dataspace.Schema
	n      int
	bands  []*index.Store
	cache  *blockCache
	cols   [][]int64
	segs   []segMeta
	data   []byte
	unmap  func() error

	closeOnce sync.Once
	closeErr  error
}

var _ index.Engine = (*Store)(nil)

// Open maps the store file at path and assembles the engine. A file that
// fails validation — torn, truncated, bit-flipped — is quarantined (renamed
// to path+".corrupt") and a *CorruptionError is returned; other errors
// (missing file, permission) pass through untouched.
func Open(path string, opts OpenOptions) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	data, unmap, err := mapFile(f, fi.Size())
	f.Close()
	if err != nil {
		return nil, err
	}
	s, cerr := assemble(path, data, opts)
	if cerr == nil && opts.Verify {
		cerr = verifySegments(data, s.segs)
	}
	if cerr != nil {
		unmap()
		cerr.Path = path
		os.Rename(path, path+".corrupt")
		return nil, cerr
	}
	s.unmap = unmap
	return s, nil
}

// assemble validates the footer and builds the per-band stores over views
// of the mapped bytes.
func assemble(path string, data []byte, opts OpenOptions) (*Store, *CorruptionError) {
	ft, err := decodeFooter(data)
	if err != nil {
		return nil, err.(*CorruptionError)
	}
	schema, _, serr := wire.DecodeSchema(wire.SchemaMsg{Attributes: ft.Attrs, K: 1})
	if serr != nil {
		return nil, corrupt(-1, "footer schema: %w", serr)
	}
	d := schema.Dims()
	n := ft.N
	if sampled, _ := index.SampleSizeFor(n); len(ft.Sample) != sampled {
		return nil, corrupt(-1, "footer sample holds %d rows, want %d for n=%d", len(ft.Sample), sampled, n)
	}
	rows := make([]dataspace.Tuple, len(ft.Sample))
	for j, r := range ft.Sample {
		rows[j] = dataspace.Tuple(r)
	}
	stats := index.NewSelStats(schema, n, rows)

	type segKey struct {
		kind       string
		attr, band int
	}
	segAt := make(map[segKey]segMeta, len(ft.Segments))
	for _, sg := range ft.Segments {
		segAt[segKey{sg.Kind, sg.Attr, sg.Band}] = sg
	}
	view := func(sg segMeta) []byte { return data[sg.Off : sg.Off+sg.Len] }

	cols := make([][]int64, d)
	for i := 0; i < d; i++ {
		sg := segAt[segKey{segCol, i, -1}]
		if sg.Len != int64(n)*8 {
			return nil, corrupt(sg.Off, "column %d segment holds %d bytes, want %d", i, sg.Len, int64(n)*8)
		}
		cols[i] = int64View(view(sg))
	}

	s := &Store{
		path:   path,
		schema: schema,
		n:      n,
		cache:  newBlockCache(cols, n, opts.CacheBlocks),
		cols:   cols,
		segs:   ft.Segments,
		data:   data,
		bands:  make([]*index.Store, 0, ft.Bands),
	}
	for band := 0; band < ft.Bands; band++ {
		lo, hi := band*n/ft.Bands, (band+1)*n/ft.Bands
		bn := hi - lo
		a := index.Artifacts{
			N:          bn,
			Cols:       make([][]int64, d),
			Post:       make([]map[int64][]int32, d),
			SortedVal:  make([][]int64, d),
			SortedRank: make([][]int32, d),
			RankPos:    make([][]int32, d),
			Stats:      stats,
		}
		if bn > 0 {
			base := int32(lo)
			cache := s.cache
			a.Row = func(r int32) dataspace.Tuple { return cache.row(base + r) }
		}
		for i := 0; i < d; i++ {
			a.Cols[i] = cols[i][lo:hi]
			if schema.Attr(i).Kind == dataspace.Categorical {
				post, err := decodePosting(segAt[segKey{segPostKey, i, band}], segAt[segKey{segPostOff, i, band}], segAt[segKey{segPostRank, i, band}], view, bn)
				if err != nil {
					return nil, err
				}
				a.Post[i] = post
			} else {
				sv, sr, rp := segAt[segKey{segSortVal, i, band}], segAt[segKey{segSortRank, i, band}], segAt[segKey{segRankPos, i, band}]
				if sv.Len != int64(bn)*8 || sr.Len != int64(bn)*4 || rp.Len != int64(bn)*4 {
					return nil, corrupt(sv.Off, "sorted segment of attribute %d band %d is inconsistent with %d tuples", i, band, bn)
				}
				a.SortedVal[i] = int64View(view(sv))
				a.SortedRank[i] = int32View(view(sr))
				a.RankPos[i] = int32View(view(rp))
			}
		}
		st, err := index.NewFromArtifacts(schema, a)
		if err != nil {
			return nil, corrupt(-1, "band %d: %w", band, err)
		}
		s.bands = append(s.bands, st)
	}
	return s, nil
}

// decodePosting rebuilds one band's posting map with rank slices aliasing
// the mapped postrank segment. The offset table is validated structurally:
// monotone, in bounds, and accounting for exactly the band's tuple count
// (every rank appears in exactly one posting list).
func decodePosting(key, off, rank segMeta, view func(segMeta) []byte, bandN int) (map[int64][]int32, *CorruptionError) {
	if key.Len%8 != 0 || off.Len%8 != 0 || rank.Len%4 != 0 {
		return nil, corrupt(key.Off, "posting segments have torn element sizes")
	}
	keys := int64View(view(key))
	offs := int64View(view(off))
	ranks := int32View(view(rank))
	if len(offs) != len(keys)+1 {
		return nil, corrupt(off.Off, "posting offset table holds %d entries for %d keys", len(offs), len(keys))
	}
	if len(ranks) != bandN {
		return nil, corrupt(rank.Off, "posting lists hold %d ranks, band holds %d tuples", len(ranks), bandN)
	}
	post := make(map[int64][]int32, len(keys))
	prev := int64(0)
	for i, v := range keys {
		lo, hi := offs[i], offs[i+1]
		if lo != prev || hi < lo || hi > int64(len(ranks)) {
			return nil, corrupt(off.Off, "posting offsets for value %d are not a partition", v)
		}
		if i > 0 && v <= keys[i-1] {
			return nil, corrupt(key.Off, "posting keys are not strictly ascending")
		}
		prev = hi
		post[v] = ranks[lo:hi:hi]
	}
	if len(keys) > 0 && prev != int64(len(ranks)) {
		return nil, corrupt(off.Off, "posting offsets cover %d of %d ranks", prev, len(ranks))
	}
	return post, nil
}

// verifySegments re-checksums every segment against the directory.
func verifySegments(data []byte, segs []segMeta) *CorruptionError {
	for _, sg := range segs {
		if got := crc32.ChecksumIEEE(data[sg.Off : sg.Off+sg.Len]); got != sg.CRC {
			return corrupt(sg.Off, "segment %s/attr=%d/band=%d CRC mismatch (got %08x, want %08x)", sg.Kind, sg.Attr, sg.Band, got, sg.CRC)
		}
	}
	return nil
}

// Verify re-checksums every segment of the open store (reads the whole
// file once). It does not quarantine — the caller decides what to do with
// a store that was valid at Open and has rotted since.
func (s *Store) Verify() error {
	if err := verifySegments(s.data, s.segs); err != nil {
		err.Path = s.path
		return err
	}
	return nil
}

// Close unmaps the file. The caller must have drained every in-flight
// query: results already returned remain valid (tuples are materialized on
// the heap), but no method may be called after Close.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		if s.unmap != nil {
			s.closeErr = s.unmap()
		}
	})
	return s.closeErr
}

// Path returns the store file's path.
func (s *Store) Path() string { return s.path }

// Bands returns the number of priority-band partitions fixed at build time.
func (s *Store) Bands() int { return len(s.bands) }

// NumShards aliases Bands under the sharded store's introspection name, so
// generic partition-count probes see both engines uniformly.
func (s *Store) NumShards() int { return len(s.bands) }

// Size returns the number of tuples in the store.
func (s *Store) Size() int { return s.n }

// Schema returns the store's schema (decoded from the footer).
func (s *Store) Schema() *dataspace.Schema { return s.schema }

// All materializes the whole relation in priority order — the Engine
// contract's Dump hook. On a larger-than-RAM store this allocates the full
// relation; it exists for tests and measurement, not the query path.
func (s *Store) All() []dataspace.Tuple {
	d := len(s.cols)
	flat := make([]int64, s.n*d)
	out := make([]dataspace.Tuple, s.n)
	for r := 0; r < s.n; r++ {
		t := flat[r*d : (r+1)*d : (r+1)*d]
		for i, col := range s.cols {
			t[i] = col[r]
		}
		out[r] = t
	}
	return out
}

// PlanStats aggregates the per-band planner counters, exactly as
// index.Sharded aggregates its shards'.
func (s *Store) PlanStats() index.PlanStats {
	var ps index.PlanStats
	for _, b := range s.bands {
		ps.Merge(b.PlanStats())
	}
	return ps
}

// EngineStats reports the disk engine and its block-cache counters.
func (s *Store) EngineStats() index.EngineStats {
	hits, misses, resident := s.cache.counters()
	return index.EngineStats{Kind: "disk", CacheHits: hits, CacheMisses: misses, CacheBlocks: resident}
}

// Select returns up to limit+1 tuples matching q in descending priority
// order — bit-identical to the in-memory engines over the same relation.
// Bands are visited in priority order with Sharded's early-exit walk, so an
// overflowing query usually never touches the cold tail of the file.
func (s *Store) Select(q dataspace.Query, limit int) []dataspace.Tuple {
	if limit < 0 {
		limit = 0
	}
	want := limit + 1
	var out []dataspace.Tuple
	for _, b := range s.bands {
		got := b.Select(q, want-len(out)-1)
		if out == nil {
			out = got // common case: the first band already decides
		} else {
			out = append(out, got...)
		}
		if len(out) >= want {
			break
		}
	}
	if out == nil {
		out = []dataspace.Tuple{}
	}
	return out
}

// SelectBatch mirrors index.Sharded's fan-out: each query runs the
// early-exit band walk on its own goroutine, capped at GOMAXPROCS live
// goroutines; a cancelled ctx stops launching and the answered prefix is
// returned. Result i is exactly Select(qs[i], limit).
func (s *Store) SelectBatch(ctx context.Context, qs []dataspace.Query, limit int) [][]dataspace.Tuple {
	if len(s.bands) == 1 {
		return s.bands[0].SelectBatch(ctx, qs, limit)
	}
	out := make([][]dataspace.Tuple, len(qs))
	var wg sync.WaitGroup
	gate := make(chan struct{}, runtime.GOMAXPROCS(0))
	launched := len(qs)
	for i, q := range qs {
		if ctx.Err() != nil {
			launched = i
			break
		}
		wg.Add(1)
		gate <- struct{}{}
		go func(i int, q dataspace.Query) {
			defer wg.Done()
			out[i] = s.Select(q, limit)
			<-gate
		}(i, q)
	}
	wg.Wait()
	return out[:launched]
}

// Count returns the exact number of tuples matching q: the sum of the
// per-band counts. Like Sharded.Count, large stores fan the per-band
// counts out on goroutines; small ones walk serially.
func (s *Store) Count(q dataspace.Query) int {
	const fanOutMin = 1 << 14 // tuples; below this a serial walk is faster
	if len(s.bands) == 1 || s.n < fanOutMin {
		c := 0
		for _, b := range s.bands {
			c += b.Count(q)
		}
		return c
	}
	counts := make([]int, len(s.bands))
	var wg sync.WaitGroup
	for i, b := range s.bands {
		wg.Add(1)
		go func(i int, b *index.Store) {
			defer wg.Done()
			counts[i] = b.Count(q)
		}(i, b)
	}
	wg.Wait()
	c := 0
	for _, v := range counts {
		c += v
	}
	return c
}
