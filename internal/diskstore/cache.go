// The pinned block cache.
//
// Planning and predicate filtering read the mmap'd columns directly — the
// OS page cache serves them — but result emission must materialize heap
// tuples (the Engine contract returns []dataspace.Tuple). A block gathers
// blockRanks consecutive ranks' values out of the d scattered column
// segments into one flat, cache-friendly array; emitting a tuple then
// copies d words out of that array instead of touching d distant mapped
// pages. A crawl's emissions are extremely skewed toward the top ranks
// (every overflowing query returns the same top-k of its region), so a
// small cache of hot blocks absorbs almost all of the gather cost.
//
// Emitted tuples are always fresh copies, never views into a block: a
// caller (a crawl's result bag, a session journal) may retain every tuple
// it ever saw, and a 48-byte tuple pinning its whole 12 KiB block — worse,
// a different rematerialization of it after each eviction — would leak the
// store's size in blocks through the cache. Copying costs d words per
// emitted row, the same as the in-memory engine's construction cost, and
// keeps retained memory proportional to what the caller actually holds.
//
// Lookup is a mutex-guarded map + LRU list — Selects running on concurrent
// goroutines (the batch fan-out) share it safely, and the critical section
// is a map probe plus a list splice. Hit/miss counters are atomics
// surfaced through Store.EngineStats and, over the wire,
// wire.EngineStatsMsg.
package diskstore

import (
	"container/list"
	"sync"
	"sync/atomic"

	"hidb/internal/dataspace"
)

// blockRanks is the block width: 256 ranks × d attributes ≈ 12 KiB of
// gathered payload for the 6-attribute tier schema — big enough to
// amortize the gather loop, small enough that a few hot blocks cover the
// top-of-rank working set.
const blockRanks = 256

// defaultCacheBlocks bounds the resident blocks when OpenOptions does not
// say otherwise: 1024 blocks ≈ 256k gathered rows.
const defaultCacheBlocks = 1024

// promoteTouches is how many misses a block takes before it is gathered
// into the cache. Gathering speculatively on early touches is a net loss:
// a complete crawl emits most ranks only a handful of times, and paying a
// 256-row gather (plus the allocation) for every such cold block costs
// far more than the d-word direct copies it replaces — profiled at ~5x
// the whole crawl's useful work, with the cache thrashing whenever the
// touched-block set outgrows the cap. A high threshold keeps cold sweeps
// on the cheap direct path; the genuinely hot blocks (the re-emitted
// top-of-rank working set) sail past it almost immediately — on a full 1M
// crawl the cache still serves ~30% of all row reads from promoted
// blocks, at crawl times on par with the in-memory engine's.
const promoteTouches = 16

// cacheBlock holds one block's values row-major: rank r of the block
// occupies flat[(r%blockRanks)*d : +d].
type cacheBlock struct {
	id   int32
	flat []int64
}

// blockCache gathers and pins hot rank blocks of the mapped columns.
type blockCache struct {
	cols [][]int64
	n    int
	cap  int

	mu      sync.Mutex
	lru     *list.List // front = most recently used
	blocks  map[int32]*list.Element
	touches map[int32]int8 // miss counts of not-yet-promoted blocks

	hits   atomic.Int64
	misses atomic.Int64
}

func newBlockCache(cols [][]int64, n, capBlocks int) *blockCache {
	if capBlocks < 1 {
		capBlocks = defaultCacheBlocks
	}
	return &blockCache{
		cols:    cols,
		n:       n,
		cap:     capBlocks,
		lru:     list.New(),
		blocks:  make(map[int32]*list.Element, capBlocks),
		touches: make(map[int32]int8),
	}
}

// row returns a freshly allocated copy of the tuple at global rank r —
// safe for the caller to retain indefinitely (see the package comment on
// why it must never be a view into the block).
func (c *blockCache) row(r int32) dataspace.Tuple {
	id := r / blockRanks
	d := len(c.cols)
	t := make(dataspace.Tuple, d)
	off := int(r%blockRanks) * d
	c.mu.Lock()
	if el, ok := c.blocks[id]; ok {
		c.lru.MoveToFront(el)
		copy(t, el.Value.(*cacheBlock).flat[off:off+d])
		c.mu.Unlock()
		c.hits.Add(1)
		return t
	}
	if c.touches[id]++; c.touches[id] >= promoteTouches {
		delete(c.touches, id)
		blk := c.materialize(id)
		el := c.lru.PushFront(blk)
		c.blocks[id] = el
		if c.lru.Len() > c.cap {
			old := c.lru.Back()
			c.lru.Remove(old)
			delete(c.blocks, old.Value.(*cacheBlock).id)
		}
		copy(t, blk.flat[off:off+d])
		c.mu.Unlock()
		c.misses.Add(1)
		return t
	}
	c.mu.Unlock()
	c.misses.Add(1)
	// Cold path: copy straight out of the mapped columns.
	for i, col := range c.cols {
		t[i] = col[r]
	}
	return t
}

// materialize gathers the block's rows from the mapped columns into one
// flat row-major array.
func (c *blockCache) materialize(id int32) *cacheBlock {
	base := int(id) * blockRanks
	cnt := min(blockRanks, c.n-base)
	d := len(c.cols)
	flat := make([]int64, cnt*d)
	for i, col := range c.cols {
		seg := col[base : base+cnt]
		for j, v := range seg {
			flat[j*d+i] = v
		}
	}
	return &cacheBlock{id: id, flat: flat}
}

// counters snapshots the hit/miss counters and the resident block count.
func (c *blockCache) counters() (hits, misses int64, resident int) {
	c.mu.Lock()
	resident = c.lru.Len()
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), resident
}
