//go:build !unix

package diskstore

import (
	"io"
	"os"
	"unsafe"
)

// mapFile on platforms without mmap reads the whole file into memory. The
// backing array is allocated as []uint64 so the byte view is 8-aligned and
// the int64/int32 segment views stay valid casts, exactly as on the mmap
// path. Larger-than-RAM stores are only larger-than-RAM where mmap exists;
// everywhere else the engine still works, it just pays the footprint.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	words := make([]uint64, (size+7)/8)
	b := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), b); err != nil {
		return nil, nil, err
	}
	return b, func() error { return nil }, nil
}
