package diskstore

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/index"
	"hidb/internal/simrand"
)

// buildTier writes a tiered dataset's store file and returns its path.
func buildTier(t *testing.T, p datagen.Pattern, tier datagen.Tier, seed uint64, bands int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.hidb")
	if err := Build(path, datagen.TierSchema(tier), datagen.TieredSeq(p, tier, seed), BuildOptions{Bands: bands}); err != nil {
		t.Fatal(err)
	}
	return path
}

func openStore(t *testing.T, path string, opts OpenOptions) *Store {
	t.Helper()
	s, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// tierQuery mirrors the planner oracle's random query generator: arities
// 0–6, occasionally aiming at the pathological needle conjunction.
func tierQuery(sch *dataspace.Schema, rng *simrand.RNG, n int) dataspace.Query {
	q := dataspace.UniverseQuery(sch)
	needle := rng.Bool(0.25)
	for i := 0; i < 3; i++ {
		if needle {
			q = q.WithValue(i, datagen.PathoNeedle)
		} else if rng.Bool(0.5) {
			q = q.WithValue(i, rng.IntRange(1, 32))
		}
	}
	if rng.Bool(0.3) {
		q = q.WithValue(3, rng.IntRange(1, 1024))
	}
	if rng.Bool(0.4) {
		lo := rng.IntRange(0, int64(n-1))
		q = q.WithRange(4, lo, lo+rng.IntRange(0, int64(n/4)))
	}
	if rng.Bool(0.3) {
		lo := rng.IntRange(0, 1<<20)
		q = q.WithRange(5, lo, lo+rng.IntRange(0, 1<<18))
	}
	return q
}

func sameTuples(a, b []dataspace.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestDiskMatchesMemAcrossPatterns is the cross-engine equivalence oracle:
// on every generator pattern, for random queries of every arity and limit,
// the disk engine must return bit-identical rank-ordered tuples and counts
// to the in-memory engine — and, band for shard, make the same plan
// choices (the persisted sample and the rebuilt bitmaps force the same
// cost-model inputs).
func TestDiskMatchesMemAcrossPatterns(t *testing.T) {
	const bands = 4
	for _, p := range datagen.Patterns {
		t.Run(p.String(), func(t *testing.T) {
			t.Parallel()
			ds := datagen.Tiered(p, datagen.Tier10K, 11)
			mem, err := index.NewSharded(ds.Schema, ds.Tuples, bands)
			if err != nil {
				t.Fatal(err)
			}
			disk := openStore(t, buildTier(t, p, datagen.Tier10K, 11, bands), OpenOptions{Verify: true})
			if disk.Bands() != bands {
				t.Fatalf("Bands() = %d, want %d", disk.Bands(), bands)
			}
			if disk.Size() != mem.Size() {
				t.Fatalf("Size() = %d, want %d", disk.Size(), mem.Size())
			}
			// Queries run against the disk schema (decoded from the
			// footer) and the mem schema; predicates are re-derived per
			// store so both engines validate against their own schema.
			rng := simrand.New(uint64(p) + 707)
			n := ds.N()
			for trial := 0; trial < 150; trial++ {
				qm := tierQuery(ds.Schema, rng, n)
				qd, err := remapQuery(disk.Schema(), qm)
				if err != nil {
					t.Fatal(err)
				}
				for _, limit := range []int{0, 9, 64} {
					got := disk.Select(qd, limit)
					want := mem.Select(qm, limit)
					if !sameTuples(got, want) {
						t.Fatalf("trial %d limit %d: disk returned %d tuples, mem %d (query %v)", trial, limit, len(got), len(want), qm)
					}
				}
				if got, want := disk.Count(qd), mem.Count(qm); got != want {
					t.Fatalf("trial %d: Count = %d, want %d", trial, got, want)
				}
			}
			dps, mps := disk.PlanStats(), mem.PlanStats()
			if dps.Shapes != mps.Shapes || dps.Hits != mps.Hits || dps.Misses != mps.Misses {
				t.Fatalf("plan cache diverged: disk %+v, mem %+v", dps, mps)
			}
			for path, c := range mps.Paths {
				if dps.Paths[path] != c {
					t.Fatalf("plan choices diverged on %s: disk %d, mem %d (disk %v, mem %v)", path, dps.Paths[path], c, dps.Paths, mps.Paths)
				}
			}
			if len(dps.Paths) != len(mps.Paths) {
				t.Fatalf("plan choices diverged: disk %v, mem %v", dps.Paths, mps.Paths)
			}
		})
	}
}

// remapQuery rebuilds a query over another schema instance with the same
// attributes (the disk store's footer-decoded schema).
func remapQuery(sch *dataspace.Schema, q dataspace.Query) (dataspace.Query, error) {
	out := dataspace.UniverseQuery(sch)
	for i := 0; i < sch.Dims(); i++ {
		p := q.Pred(i)
		if sch.Attr(i).Kind == dataspace.Categorical {
			if !p.Wild {
				out = out.WithValue(i, p.Value)
			}
		} else if p.Lo != dataspace.NegInf || p.Hi != dataspace.PosInf {
			out = out.WithRange(i, p.Lo, p.Hi)
		}
	}
	return out, nil
}

// TestDiskSelectBatchMatchesSequential pins the batch contract on the disk
// engine: SelectBatch answers exactly as sequential Selects, and a
// cancelled ctx yields a prefix.
func TestDiskSelectBatchMatchesSequential(t *testing.T) {
	disk := openStore(t, buildTier(t, datagen.PatternRandom, datagen.Tier10K, 3, 4), OpenOptions{})
	rng := simrand.New(99)
	qs := make([]dataspace.Query, 64)
	for i := range qs {
		qs[i] = tierQuery(disk.Schema(), rng, disk.Size())
	}
	got := disk.SelectBatch(context.Background(), qs, 9)
	if len(got) != len(qs) {
		t.Fatalf("answered %d of %d", len(got), len(qs))
	}
	for i, q := range qs {
		if !sameTuples(got[i], disk.Select(q, 9)) {
			t.Fatalf("batch result %d differs from sequential Select", i)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res := disk.SelectBatch(ctx, qs, 9); len(res) != 0 {
		t.Fatalf("cancelled batch answered %d queries, want 0", len(res))
	}
}

// TestEmptyRelationBothEngines is the shared table test pinning the
// unified empty-relation path: every engine — single store, sharded store
// with an over-asking shard count, and a disk store built from zero
// tuples — serves the empty relation through one (empty) partition.
func TestEmptyRelationBothEngines(t *testing.T) {
	sch := datagen.TierSchema(datagen.Tier10K)
	single, err := index.New(sch, nil)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := index.NewSharded(sch, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := sharded.NumShards(); got != 1 {
		t.Fatalf("empty sharded store built %d shards, want 1", got)
	}
	path := filepath.Join(t.TempDir(), "empty.hidb")
	if err := Build(path, sch, func(func(dataspace.Tuple) bool) {}, BuildOptions{Bands: 8}); err != nil {
		t.Fatal(err)
	}
	disk := openStore(t, path, OpenOptions{Verify: true})
	if got := disk.Bands(); got != 1 {
		t.Fatalf("empty disk store built %d bands, want 1", got)
	}
	for name, eng := range map[string]index.Engine{"store": single, "sharded": sharded, "disk": disk} {
		q := dataspace.UniverseQuery(eng.Schema()).WithValue(0, 1)
		if got := eng.Size(); got != 0 {
			t.Errorf("%s: Size = %d, want 0", name, got)
		}
		if got := eng.Select(q, 10); len(got) != 0 {
			t.Errorf("%s: Select returned %d tuples, want 0", name, len(got))
		}
		if got := eng.Select(dataspace.UniverseQuery(eng.Schema()), 0); len(got) != 0 {
			t.Errorf("%s: universe Select returned %d tuples, want 0", name, len(got))
		}
		if got := eng.Count(q); got != 0 {
			t.Errorf("%s: Count = %d, want 0", name, got)
		}
		if got := eng.All(); len(got) != 0 {
			t.Errorf("%s: All returned %d tuples, want 0", name, len(got))
		}
		if got := eng.SelectBatch(context.Background(), []dataspace.Query{q, q}, 5); len(got) != 2 || len(got[0]) != 0 || len(got[1]) != 0 {
			t.Errorf("%s: batch over empty store answered %v", name, got)
		}
	}
}

// TestShardClampUnified pins the satellite bugfix across sizes: the shard
// count is clamped to max(n, 1) for every n, through the same code path.
func TestShardClampUnified(t *testing.T) {
	for _, tc := range []struct {
		n, shards, want int
	}{
		{0, 1, 1}, {0, 8, 1}, {2, 8, 2}, {8, 8, 8}, {100, 8, 8},
	} {
		ds := datagen.Tiered(datagen.PatternSequential, datagen.Tier10K, 1)
		sh, err := index.NewSharded(ds.Schema, ds.Tuples[:tc.n], tc.shards)
		if err != nil {
			t.Fatal(err)
		}
		if got := sh.NumShards(); got != tc.want {
			t.Errorf("n=%d shards=%d: built %d shards, want %d", tc.n, tc.shards, got, tc.want)
		}
	}
}

// TestBuildDeterministic pins byte-identical rebuilds: the format has no
// hidden nondeterminism (map iteration, timestamps), so the same dataset
// always produces the same file.
func TestBuildDeterministic(t *testing.T) {
	p1 := buildTier(t, datagen.PatternRealistic, datagen.Tier10K, 5, 3)
	p2 := buildTier(t, datagen.PatternRealistic, datagen.Tier10K, 5, 3)
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("two builds of the same dataset produced different bytes")
	}
}

// TestEngineStatsCounters exercises the block cache: a repeated hot query
// must hit the cache, and the counters must surface through EngineStats.
func TestEngineStatsCounters(t *testing.T) {
	disk := openStore(t, buildTier(t, datagen.PatternSequential, datagen.Tier10K, 7, 1), OpenOptions{CacheBlocks: 4})
	if es := disk.EngineStats(); es.Kind != "disk" || es.CacheHits != 0 || es.CacheMisses != 0 {
		t.Fatalf("fresh store EngineStats = %+v", es)
	}
	q := dataspace.UniverseQuery(disk.Schema()).WithValue(0, 1)
	for i := 0; i < 10; i++ {
		if got := disk.Select(q, 9); len(got) != 10 {
			t.Fatalf("Select returned %d tuples", len(got))
		}
	}
	es := disk.EngineStats()
	if es.CacheMisses == 0 || es.CacheHits == 0 {
		t.Fatalf("cache counters did not move: %+v", es)
	}
	if es.CacheBlocks < 1 || es.CacheBlocks > 4 {
		t.Fatalf("resident blocks %d escaped the cap", es.CacheBlocks)
	}
	// The in-memory engines identify themselves too.
	ds := datagen.Tiered(datagen.PatternSequential, datagen.Tier10K, 7)
	mem, err := index.New(ds.Schema, ds.Tuples)
	if err != nil {
		t.Fatal(err)
	}
	if es := mem.EngineStats(); es.Kind != "mem" {
		t.Fatalf("mem EngineStats = %+v", es)
	}
}

// TestOpenCorruptionSweep is the torn-file/bit-flip sweep over the footer
// region: every damaged variant must quarantine the file (path+".corrupt")
// and return a typed *CorruptionError, never a panic or a silent success.
func TestOpenCorruptionSweep(t *testing.T) {
	pristine := buildTier(t, datagen.PatternRandom, datagen.Tier10K, 13, 2)
	orig, err := os.ReadFile(pristine)
	if err != nil {
		t.Fatal(err)
	}
	size := len(orig)
	// Locate the footer frame via the trailer so the sweep aims at it.
	footOff := int(orig[size-24])<<56 | int(orig[size-23])<<48 | int(orig[size-22])<<40 | int(orig[size-21])<<32 |
		int(orig[size-20])<<24 | int(orig[size-19])<<16 | int(orig[size-18])<<8 | int(orig[size-17])
	cases := map[string]func([]byte) []byte{
		"truncated-mid-footer":  func(b []byte) []byte { return b[:footOff+10] },
		"truncated-trailer":     func(b []byte) []byte { return b[:size-8] },
		"truncated-to-header":   func(b []byte) []byte { return b[:headerLen] },
		"empty":                 func(b []byte) []byte { return nil },
		"bad-magic":             func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bitflip-footer-length": func(b []byte) []byte { b[footOff+1] ^= 0x40; return b },
		"bitflip-footer-body":   func(b []byte) []byte { b[footOff+20] ^= 0x01; return b },
		"bitflip-footer-crc":    func(b []byte) []byte { b[size-28] ^= 0x10; return b },
		"bitflip-trailer-off":   func(b []byte) []byte { b[size-22] ^= 0x02; return b },
		"garbage-trailer-magic": func(b []byte) []byte { copy(b[size-8:], "XXXXXXXX"); return b },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "store.hidb")
			if err := os.WriteFile(path, mutate(append([]byte(nil), orig...)), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Open(path, OpenOptions{})
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("Open returned %v, want *CorruptionError", err)
			}
			if ce.Path != path {
				t.Fatalf("CorruptionError.Path = %q, want %q", ce.Path, path)
			}
			if _, err := os.Stat(path + ".corrupt"); err != nil {
				t.Fatalf("damaged file was not quarantined: %v", err)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("damaged file still present at %s", path)
			}
		})
	}
}

// TestSegmentRotDetected flips one bit inside a segment payload: the footer
// still validates, so a plain Open serves the file — but Open with Verify
// (and the Verify method) must catch the rot via the segment CRCs.
func TestSegmentRotDetected(t *testing.T) {
	pristine := buildTier(t, datagen.PatternRandom, datagen.Tier10K, 17, 2)
	orig, err := os.ReadFile(pristine)
	if err != nil {
		t.Fatal(err)
	}
	rotted := append([]byte(nil), orig...)
	rotted[headerLen+100] ^= 0x04 // inside the first column segment
	dir := t.TempDir()
	path := filepath.Join(dir, "store.hidb")
	if err := os.WriteFile(path, rotted, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(path, OpenOptions{Verify: true})
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("verifying Open returned %v, want *CorruptionError", err)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("rotted file was not quarantined: %v", err)
	}

	// The Verify method reports rot on an already-open store without
	// quarantining it.
	if err := os.WriteFile(path, rotted, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatalf("non-verifying Open rejected segment rot the footer cannot see: %v", err)
	}
	defer s.Close()
	if err := s.Verify(); !errors.As(err, &ce) {
		t.Fatalf("Verify returned %v, want *CorruptionError", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("Verify must not quarantine: %v", err)
	}
}

// TestBuilderValidatesTuples pins Add-time schema validation.
func TestBuilderValidatesTuples(t *testing.T) {
	sch := datagen.TierSchema(datagen.Tier10K)
	b, err := NewBuilder(filepath.Join(t.TempDir(), "x.hidb"), sch, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Add(dataspace.Tuple{1, 1}); err == nil {
		t.Fatal("Add accepted a tuple of the wrong arity")
	}
}

// TestOpenMissingFile pins that a missing store is an os error, not a
// corruption report.
func TestOpenMissingFile(t *testing.T) {
	_, err := Open(filepath.Join(t.TempDir(), "nope.hidb"), OpenOptions{})
	if !os.IsNotExist(err) {
		t.Fatalf("Open of a missing file returned %v", err)
	}
	var ce *CorruptionError
	if errors.As(err, &ce) {
		t.Fatal("missing file misreported as corruption")
	}
}
