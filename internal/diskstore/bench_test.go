package diskstore

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/index"
)

// benchState lazily builds the shared bench fixtures: the 1M pathological
// tier as a disk store file and as an in-memory sharded store, plus the
// YahooLike dataset both ways. Built once per bench binary; the disk files
// live in one temp dir removed by TestMain.
var benchState struct {
	sync.Once
	dir string

	patho1MPath string
	patho1MMem  *index.Sharded

	yahooPath string
	yahooMem  *index.Sharded
	yahoo     *datagen.Dataset
}

const benchBands = 4

func benchSetup(tb testing.TB) {
	tb.Helper()
	benchState.Do(func() {
		dir, err := os.MkdirTemp("", "hidb-diskbench-*")
		if err != nil {
			tb.Fatal(err)
		}
		benchState.dir = dir

		ds := datagen.Tiered(datagen.PatternPathological, datagen.Tier1M, 1)
		benchState.patho1MPath = filepath.Join(dir, "patho-1m.hidb")
		if err := BuildRanked(benchState.patho1MPath, ds.Schema, ds.Tuples, BuildOptions{Bands: benchBands}); err != nil {
			tb.Fatal(err)
		}
		if benchState.patho1MMem, err = index.NewSharded(ds.Schema, ds.Tuples, benchBands); err != nil {
			tb.Fatal(err)
		}

		yds := datagen.YahooLike(11)
		benchState.yahoo = yds
		byRank := hiddendb.RankOrder(yds.Tuples, 42)
		benchState.yahooPath = filepath.Join(dir, "yahoo.hidb")
		if err := BuildRanked(benchState.yahooPath, yds.Schema, byRank, BuildOptions{Bands: benchBands}); err != nil {
			tb.Fatal(err)
		}
		if benchState.yahooMem, err = index.NewSharded(yds.Schema, byRank, benchBands); err != nil {
			tb.Fatal(err)
		}
	})
}

func TestMain(m *testing.M) {
	code := m.Run()
	if benchState.dir != "" {
		os.RemoveAll(benchState.dir)
	}
	os.Exit(code)
}

func benchOpen(b *testing.B, path string) *Store {
	b.Helper()
	s, err := Open(path, OpenOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// needle1M is the pathological 3-way intersection: each predicate alone
// matches ~1/6 of the million tuples, the conjunction only the bottom ~1k.
func needle1M(sch *dataspace.Schema) dataspace.Query {
	return dataspace.UniverseQuery(sch).
		WithValue(0, datagen.PathoNeedle).
		WithValue(1, datagen.PathoNeedle).
		WithValue(2, datagen.PathoNeedle)
}

// reportMS attaches a deterministic-name timing metric ("_ms" series are
// exempt from the benchjson baseline pin — timing is machine noise).
func reportMS(b *testing.B, label string, d time.Duration) {
	b.ReportMetric(d.Seconds()*1000/float64(b.N), label+"_ms")
}

// BenchmarkIntersect3Way1MDiskCold measures the needle conjunction on a
// freshly opened disk store: empty plan cache, empty block cache — the
// first-query latency a just-started server pays, dominated by the
// planner's bitmap AND over the mapped posting lists.
func BenchmarkIntersect3Way1MDiskCold(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		s := benchOpen(b, benchState.patho1MPath)
		if got := s.Select(needle1M(s.Schema()), 64); len(got) != 65 {
			b.Fatalf("needle select returned %d tuples", len(got))
		}
		s.Close()
	}
	reportMS(b, "intersect3way_1m_disk_cold", time.Since(start))
}

// BenchmarkIntersect3Way1MMemCold is the in-memory pair: the same needle
// query through a cold plan cache (fresh per-band stores are too expensive
// to rebuild per iteration, so "cold" here means an unwarmed plan — the
// store construction cost is what BenchmarkBuild1MDisk measures).
func BenchmarkIntersect3Way1MMemCold(b *testing.B) {
	benchSetup(b)
	s := benchState.patho1MMem
	q := needle1M(s.Schema())
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if got := s.Select(q, 64); len(got) != 65 {
			b.Fatalf("needle select returned %d tuples", len(got))
		}
	}
	reportMS(b, "intersect3way_1m_mem", time.Since(start))
}

// BenchmarkIntersect3Way1MDiskWarm measures the steady state the
// acceptance criterion bounds: plan cached, hot blocks promoted — the
// per-query cost a long-running disk server pays, to compare against
// BenchmarkIntersect3Way1MMemCold's steady state.
func BenchmarkIntersect3Way1MDiskWarm(b *testing.B) {
	benchSetup(b)
	s := benchOpen(b, benchState.patho1MPath)
	defer s.Close()
	q := needle1M(s.Schema())
	for i := 0; i < 20; i++ { // warm plan cache and promote the needle blocks
		s.Select(q, 64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if got := s.Select(q, 64); len(got) != 65 {
			b.Fatalf("needle select returned %d tuples", len(got))
		}
	}
	reportMS(b, "intersect3way_1m_disk_warm", time.Since(start))
}

// crawlEngine runs a full extraction over the engine and returns the paid
// query count and wall time.
func crawlEngine(b *testing.B, eng index.Engine, k, wantTuples int) (int, time.Duration) {
	b.Helper()
	srv, err := hiddendb.NewLocalEngine(eng, k)
	if err != nil {
		b.Fatal(err)
	}
	start := time.Now()
	res, err := core.ForSchema(eng.Schema()).Crawl(context.Background(), srv, nil)
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Tuples) != wantTuples {
		b.Fatalf("crawl extracted %d tuples, want %d", len(res.Tuples), wantTuples)
	}
	return res.Queries, time.Since(start)
}

// BenchmarkCrawlYahooLikeMemVsDisk runs the full YahooLike extraction
// against both engines over identical rank orders and pins the acceptance
// criterion in-bench: the disk crawl must pay exactly the in-memory
// crawl's query count. The _queries metric is the paper's cost measure
// (baseline-pinned); the _ms pair is the engine-swap overhead.
func BenchmarkCrawlYahooLikeMemVsDisk(b *testing.B) {
	benchSetup(b)
	const k = 1000
	n := benchState.yahoo.N()
	b.ResetTimer()
	var memQ, diskQ int
	var memT, diskT time.Duration
	for i := 0; i < b.N; i++ {
		q, t := crawlEngine(b, benchState.yahooMem, k, n)
		memQ, memT = q, memT+t
		disk := benchOpen(b, benchState.yahooPath)
		q, t = crawlEngine(b, disk, k, n)
		disk.Close()
		diskQ, diskT = q, diskT+t
		if diskQ != memQ {
			b.Fatalf("disk crawl paid %d queries, mem paid %d — the engine swap changed the cost metric", diskQ, memQ)
		}
	}
	b.ReportMetric(float64(memQ), "crawl_yahoo_queries")
	reportMS(b, "crawl_yahoo_mem", memT)
	reportMS(b, "crawl_yahoo_disk", diskT)
}

// BenchmarkCrawlPathological1MMemVsDisk is the same engine-swap pin on the
// full 1M pathological crawl — the acceptance criterion's workload: needle
// conjunctions that force deep descents, extracted completely by hybrid.
func BenchmarkCrawlPathological1MMemVsDisk(b *testing.B) {
	benchSetup(b)
	const k = 1000
	b.ResetTimer()
	var memQ, diskQ int
	var memT, diskT time.Duration
	for i := 0; i < b.N; i++ {
		q, t := crawlEngine(b, benchState.patho1MMem, k, datagen.Tier1M.N())
		memQ, memT = q, memT+t
		disk := benchOpen(b, benchState.patho1MPath)
		q, t = crawlEngine(b, disk, k, datagen.Tier1M.N())
		disk.Close()
		diskQ, diskT = q, diskT+t
		if diskQ != memQ {
			b.Fatalf("disk crawl paid %d queries, mem paid %d — the engine swap changed the cost metric", diskQ, memQ)
		}
	}
	b.ReportMetric(float64(memQ), "crawl_patho_1m_queries")
	reportMS(b, "crawl_patho_1m_mem", memT)
	reportMS(b, "crawl_patho_1m_disk", diskT)
}

// BenchmarkBuild1MDisk measures the streaming build of the 1M tier — the
// one-time cost the disk engine pays instead of the in-memory engine's
// per-start construction.
func BenchmarkBuild1MDisk(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		path := filepath.Join(benchState.dir, fmt.Sprintf("build-%d.hidb", i))
		if err := Build(path, datagen.TierSchema(datagen.Tier1M),
			datagen.TieredSeq(datagen.PatternSequential, datagen.Tier1M, 1), BuildOptions{Bands: benchBands}); err != nil {
			b.Fatal(err)
		}
		os.Remove(path)
	}
	reportMS(b, "build_1m_disk", time.Since(start))
}

// BenchmarkCrawl10MDisk is the larger-than-RAM tier end to end: stream the
// 10M-tuple dataset into a store file (never materializing the relation),
// then extract it completely off disk pages. peak_heap_mb records the
// crawler+server peak heap — bounded by the extraction bag, not the
// relation + indexes an in-memory engine would hold — and the _queries
// metric pins the crawl's deterministic cost.
func BenchmarkCrawl10MDisk(b *testing.B) {
	if testing.Short() {
		b.Skip("10M tier build+crawl: minutes of work")
	}
	benchSetup(b)
	const k = 1000
	b.ResetTimer()
	var buildT, crawlT time.Duration
	var queries int
	var peak uint64
	for i := 0; i < b.N; i++ {
		path := filepath.Join(benchState.dir, "seq-10m.hidb")
		start := time.Now()
		if err := Build(path, datagen.TierSchema(datagen.Tier10M),
			datagen.TieredSeq(datagen.PatternSequential, datagen.Tier10M, 1), BuildOptions{Bands: benchBands}); err != nil {
			b.Fatal(err)
		}
		buildT += time.Since(start)
		s := benchOpen(b, path)
		q, t := crawlEngine(b, s, k, datagen.Tier10M.N())
		queries, crawlT = q, crawlT+t
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapInuse > peak {
			peak = ms.HeapInuse
		}
		s.Close()
		os.Remove(path)
	}
	b.ReportMetric(float64(queries), "crawl_10m_queries")
	b.ReportMetric(float64(peak>>20), "crawl_10m_peak_heap_mb")
	reportMS(b, "build_10m_disk", buildT)
	reportMS(b, "crawl_10m_disk", crawlT)
}
