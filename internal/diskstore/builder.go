// The streaming store builder.
//
// A Builder consumes tuples one at a time in descending priority order and
// never holds the relation: Add appends each attribute's value to a
// buffered per-attribute temp column file, and Finish assembles the final
// store from those columns one (band, attribute) slice at a time. Peak
// memory is one band's worth of one column plus the selectivity sample —
// megabytes while building a multi-gigabyte store — which is what lets
// datagen.TieredSeq stream a 10M-tuple tier into a store on a small heap.
//
// Finish is crash-safe the way journal.SaveFile is: the store is written to
// a temp file in the destination directory, fsynced, atomically renamed
// over the destination, and the directory entry is fsynced. A crash at any
// point leaves either the old file or no file, never a torn store; a torn
// write that somehow survives (power cut between rename and data reaching
// the platter) is caught by Open's footer checks and quarantined.
package diskstore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"iter"
	"os"
	"path/filepath"
	"slices"
	"sort"

	"hidb/internal/dataspace"
	"hidb/internal/index"
	"hidb/internal/wire"
)

// BuildOptions configures a store build.
type BuildOptions struct {
	// Bands is the number of contiguous priority-rank partitions, the
	// disk analogue of index.NewSharded's shard count: band boundaries
	// use the same i*n/bands split, each band carries its own posting and
	// sorted-segment indexes, and SelectBatch fans out across bands. A
	// count above the tuple count is clamped exactly as NewSharded clamps
	// shards (the empty relation keeps one empty band). 0 means 1.
	Bands int
}

// addChunk is the per-attribute buffered write size of Add, in values.
const addChunk = 8192

// Builder writes one immutable store file. Not safe for concurrent use.
type Builder struct {
	path   string
	schema *dataspace.Schema
	bands  int
	tmps   []*os.File
	bufs   [][]int64
	n      int
	done   bool
}

// NewBuilder starts a store build at path. Tuples are streamed in with Add
// in descending priority order; Finish writes the store; Close cleans up
// (defer it — it is a no-op after a successful Finish).
func NewBuilder(path string, schema *dataspace.Schema, opts BuildOptions) (*Builder, error) {
	if schema == nil {
		return nil, fmt.Errorf("diskstore: nil schema")
	}
	bands := opts.Bands
	if bands < 0 {
		return nil, fmt.Errorf("diskstore: band count must be >= 0, got %d", bands)
	}
	if bands == 0 {
		bands = 1
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := schema.Dims()
	b := &Builder{path: path, schema: schema, bands: bands, tmps: make([]*os.File, d), bufs: make([][]int64, d)}
	for i := 0; i < d; i++ {
		f, err := os.CreateTemp(dir, filepath.Base(path)+".col-*")
		if err != nil {
			b.Close()
			return nil, err
		}
		b.tmps[i] = f
		b.bufs[i] = make([]int64, 0, addChunk)
	}
	return b, nil
}

// Add appends the next tuple (rank order = call order). The tuple must
// validate against the schema.
func (b *Builder) Add(t dataspace.Tuple) error {
	if b.done {
		return fmt.Errorf("diskstore: Add after Finish")
	}
	if err := t.Validate(b.schema); err != nil {
		return fmt.Errorf("diskstore: tuple at rank %d: %w", b.n, err)
	}
	for i, v := range t {
		b.bufs[i] = append(b.bufs[i], v)
		if len(b.bufs[i]) == addChunk {
			if _, err := b.tmps[i].Write(bytesOfInt64(b.bufs[i])); err != nil {
				return err
			}
			b.bufs[i] = b.bufs[i][:0]
		}
	}
	b.n++
	return nil
}

// Close releases the builder's temp files. After a successful Finish it is
// a no-op; otherwise it aborts the build, leaving the destination path
// untouched.
func (b *Builder) Close() error {
	for i, f := range b.tmps {
		if f != nil {
			f.Close()
			os.Remove(f.Name())
			b.tmps[i] = nil
		}
	}
	return nil
}

// Finish assembles and atomically publishes the store file, then releases
// the temp columns. The builder cannot be reused afterwards.
func (b *Builder) Finish() (err error) {
	if b.done {
		return fmt.Errorf("diskstore: Finish called twice")
	}
	b.done = true
	defer b.Close()
	for i := range b.tmps {
		if len(b.bufs[i]) > 0 {
			if _, err := b.tmps[i].Write(bytesOfInt64(b.bufs[i])); err != nil {
				return err
			}
			b.bufs[i] = nil
		}
	}
	n, d := b.n, b.schema.Dims()
	bands := min(b.bands, max(n, 1))

	dir := filepath.Dir(b.path)
	out, err := os.CreateTemp(dir, filepath.Base(b.path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			out.Close()
			os.Remove(out.Name())
		}
	}()

	sw := &segWriter{w: bufio.NewWriterSize(out, 1<<20)}
	var header [headerLen]byte
	copy(header[:], fileMagic)
	if err := sw.writeRaw(header[:]); err != nil {
		return err
	}

	// Global column segments, streamed straight from the temp columns.
	for i := 0; i < d; i++ {
		if err := sw.writeSegFrom(segCol, i, -1, b.tmps[i], int64(n)*8); err != nil {
			return err
		}
	}

	// Band indexes, one (band, attribute) column slice in memory at a
	// time, collecting the selectivity sample's cells on the way through.
	sampled, stride := index.SampleSizeFor(n)
	sample := make([][]int64, sampled)
	for j := range sample {
		sample[j] = make([]int64, d)
	}
	for band := 0; band < bands; band++ {
		lo, hi := band*n/bands, (band+1)*n/bands
		for i := 0; i < d; i++ {
			col := make([]int64, hi-lo)
			if len(col) > 0 {
				if _, err := b.tmps[i].ReadAt(bytesOfInt64(col), int64(lo)*8); err != nil {
					return err
				}
			}
			if sampled > 0 {
				for j := (lo + stride - 1) / stride; j < sampled && j*stride < hi; j++ {
					sample[j][i] = col[j*stride-lo]
				}
			}
			if b.schema.Attr(i).Kind == dataspace.Categorical {
				err = b.writePosting(sw, i, band, col)
			} else {
				err = b.writeSorted(sw, i, band, col)
			}
			if err != nil {
				return err
			}
		}
	}

	// Footer frame + trailer.
	ft := fileFooter{
		Version:  formatVersion,
		Attrs:    wire.EncodeSchema(b.schema, 1).Attributes, // K is not a store property; 1 is a placeholder
		N:        n,
		Bands:    bands,
		Sample:   sample,
		Segments: sw.segs,
	}
	if err := sw.writeFooter(&ft); err != nil {
		return err
	}
	if err := sw.w.Flush(); err != nil {
		return err
	}
	if err := out.Sync(); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	if err := os.Rename(out.Name(), b.path); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// writePosting builds and writes one band's posting index for a
// categorical attribute: sorted distinct values, a prefix-offset table,
// and the concatenated rank-ascending posting lists (band-local ranks).
func (b *Builder) writePosting(sw *segWriter, attr, band int, col []int64) error {
	post := make(map[int64][]int32)
	for r, v := range col {
		post[v] = append(post[v], int32(r))
	}
	keys := make([]int64, 0, len(post))
	for v := range post {
		keys = append(keys, v)
	}
	slices.Sort(keys)
	offs := make([]int64, len(keys)+1)
	ranks := make([]int32, 0, len(col))
	for i, v := range keys {
		offs[i] = int64(len(ranks))
		ranks = append(ranks, post[v]...)
	}
	offs[len(keys)] = int64(len(ranks))
	if err := sw.writeSeg(segPostKey, attr, band, bytesOfInt64(keys)); err != nil {
		return err
	}
	if err := sw.writeSeg(segPostOff, attr, band, bytesOfInt64(offs)); err != nil {
		return err
	}
	return sw.writeSeg(segPostRank, attr, band, bytesOfInt32(ranks))
}

// writeSorted builds and writes one band's sorted segment for a numeric
// attribute, with exactly newWithStats's sort (value ascending, ties in
// rank order) so the artifacts are bit-identical to the in-memory index.
func (b *Builder) writeSorted(sw *segWriter, attr, band int, col []int64) error {
	n := len(col)
	perm := make([]int32, n)
	for r := range perm {
		perm[r] = int32(r)
	}
	sort.Slice(perm, func(a, b int) bool {
		va, vb := col[perm[a]], col[perm[b]]
		if va != vb {
			return va < vb
		}
		return perm[a] < perm[b]
	})
	vals := make([]int64, n)
	pos := make([]int32, n)
	for p, r := range perm {
		vals[p] = col[r]
		pos[r] = int32(p)
	}
	if err := sw.writeSeg(segSortVal, attr, band, bytesOfInt64(vals)); err != nil {
		return err
	}
	if err := sw.writeSeg(segSortRank, attr, band, bytesOfInt32(perm)); err != nil {
		return err
	}
	return sw.writeSeg(segRankPos, attr, band, bytesOfInt32(pos))
}

// Build streams rows (descending priority order) into a new store file at
// path. The convenience wrapper over NewBuilder/Add/Finish that
// hidb.BuildDisk and the dataset tooling use.
func Build(path string, schema *dataspace.Schema, rows iter.Seq[dataspace.Tuple], opts BuildOptions) error {
	b, err := NewBuilder(path, schema, opts)
	if err != nil {
		return err
	}
	defer b.Close()
	for t := range rows {
		if err := b.Add(t); err != nil {
			return err
		}
	}
	return b.Finish()
}

// BuildRanked builds a store from an already-materialized priority order.
func BuildRanked(path string, schema *dataspace.Schema, byRank []dataspace.Tuple, opts BuildOptions) error {
	return Build(path, schema, slices.Values(byRank), opts)
}

// segWriter appends 8-aligned, CRC'd segments to the output and records
// the directory the footer will carry.
type segWriter struct {
	w    *bufio.Writer
	off  int64
	segs []segMeta
}

func (sw *segWriter) writeRaw(b []byte) error {
	_, err := sw.w.Write(b)
	sw.off += int64(len(b))
	return err
}

var segPad [segAlign]byte

func (sw *segWriter) pad() error {
	if rem := sw.off % segAlign; rem != 0 {
		return sw.writeRaw(segPad[:segAlign-rem])
	}
	return nil
}

func (sw *segWriter) writeSeg(kind string, attr, band int, payload []byte) error {
	sw.segs = append(sw.segs, segMeta{Kind: kind, Attr: attr, Band: band, Off: sw.off, Len: int64(len(payload)), CRC: crc32.ChecksumIEEE(payload)})
	if err := sw.writeRaw(payload); err != nil {
		return err
	}
	return sw.pad()
}

// writeSegFrom streams a segment's payload from a file (the temp columns),
// checksumming on the way through so the payload is never held in memory.
func (sw *segWriter) writeSegFrom(kind string, attr, band int, src *os.File, length int64) error {
	meta := segMeta{Kind: kind, Attr: attr, Band: band, Off: sw.off, Len: length}
	crc := crc32.NewIEEE()
	n, err := io.Copy(io.MultiWriter(sw.w, crc), io.NewSectionReader(src, 0, length))
	sw.off += n
	if err != nil {
		return err
	}
	if n != length {
		return fmt.Errorf("diskstore: column segment %d holds %d bytes, want %d", attr, n, length)
	}
	meta.CRC = crc.Sum32()
	sw.segs = append(sw.segs, meta)
	return sw.pad()
}

// writeFooter frames the footer JSON (length, payload, CRC32 — the journal
// record frame) and closes the file with the fixed-size trailer.
func (sw *segWriter) writeFooter(ft *fileFooter) error {
	payload, err := json.Marshal(ft)
	if err != nil {
		return err
	}
	if int64(len(payload)) > maxFooterLen {
		return fmt.Errorf("diskstore: footer of %d bytes exceeds the format bound", len(payload))
	}
	footOff := sw.off
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(payload)))
	if err := sw.writeRaw(u32[:]); err != nil {
		return err
	}
	if err := sw.writeRaw(payload); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(u32[:], crc32.ChecksumIEEE(payload))
	if err := sw.writeRaw(u32[:]); err != nil {
		return err
	}
	var tr [trailerLen]byte
	binary.BigEndian.PutUint64(tr[0:8], uint64(footOff))
	binary.BigEndian.PutUint64(tr[8:16], uint64(len(payload)))
	copy(tr[16:], trailerMagic)
	return sw.writeRaw(tr[:])
}

// syncDir fsyncs a directory so a just-renamed file's entry is durable.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if df, err := os.Open(dir); err == nil {
		df.Sync()
		df.Close()
	}
}
