//go:build unix

package diskstore

import (
	"os"
	"syscall"
)

// mapFile maps the file read-only. The mapping outlives the *os.File — the
// kernel keeps the pages backed until unmap — so Open can close the file
// descriptor immediately. Queries touching a cold page fault it in from
// disk; the OS page cache, plus the Store's own block cache for
// materialized rows, keeps the hot working set resident.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
