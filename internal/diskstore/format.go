// The on-disk file format.
//
// A store is one immutable file, written once by the Builder and then only
// ever read:
//
//	[header]   "hidbcol1\n" padded to 8 bytes
//	[segments] raw little-endian-native arrays, each padded to an 8-byte
//	           boundary so mmap'd views can be reinterpreted in place
//	[footer]   4-byte big-endian payload length, JSON payload, 4-byte
//	           IEEE CRC32 of the payload (journal/framed.go's record frame)
//	[trailer]  8-byte big-endian footer offset, 8-byte big-endian footer
//	           payload length, 8-byte trailer magic — fixed size, so a
//	           reader can find the footer from the end of the file
//
// The footer is the file's table of contents: the schema (the wire
// package's attribute encoding), the relation size, the band count, the
// persisted selectivity sample, and one directory entry per segment with
// its offset, payload length and CRC32. Everything a reader trusts is
// covered by a checksum: the footer by its frame CRC, each segment by its
// directory CRC (verified on demand — Verify, or OpenOptions.Verify).
//
// Segment payloads are arrays of int64 or int32 in the host's native byte
// order, so Open can serve them as typed slices straight out of the mapped
// file with zero decoding. The format is therefore an engine artifact, not
// an interchange format: a file written on a little-endian host is not
// readable on a big-endian one (rebuild it there instead).
package diskstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"unsafe"

	"hidb/internal/wire"
)

const (
	// fileMagic opens the file; headerLen pads it to segment alignment.
	fileMagic = "hidbcol1\n"
	headerLen = 16
	// trailerMagic closes the file.
	trailerMagic = "hidbtrlr"
	trailerLen   = 24
	// segAlign is the alignment of every segment (and of the footer), so
	// int64 views over the mapped file are always aligned loads.
	segAlign = 8
	// maxFooterLen bounds the footer frame a reader will believe, so a
	// corrupted length field cannot drive a huge allocation.
	maxFooterLen = 64 << 20
	// formatVersion is bumped on any incompatible layout change.
	formatVersion = 1
)

// Segment kinds. "col" segments are global (band == -1): one per attribute,
// the full column in rank order. The index segments are per band with
// band-local ranks: the posting index of a categorical attribute is its
// sorted distinct values (postkey), the prefix-offset table into the rank
// array (postoff, len(postkey)+1 entries), and the concatenated
// rank-ascending posting lists (postrank); the sorted segment of a numeric
// attribute is its values sorted ascending with rank ties (sortval), the
// rank of each sorted cell (sortrank), and the rank→sorted-position
// permutation (rankpos).
const (
	segCol      = "col"
	segPostKey  = "postkey"
	segPostOff  = "postoff"
	segPostRank = "postrank"
	segSortVal  = "sortval"
	segSortRank = "sortrank"
	segRankPos  = "rankpos"
)

// segMeta is one segment-directory entry of the footer.
type segMeta struct {
	Kind string `json:"kind"`
	Attr int    `json:"attr"`
	// Band is the priority band the segment indexes; -1 for the global
	// column segments.
	Band int    `json:"band"`
	Off  int64  `json:"off"`
	Len  int64  `json:"len"` // payload bytes, before padding
	CRC  uint32 `json:"crc"`
}

// fileFooter is the JSON payload of the footer frame.
type fileFooter struct {
	Version int `json:"version"`
	// Attrs is the schema in the wire package's attribute encoding.
	Attrs []wire.Attribute `json:"attrs"`
	N     int              `json:"n"`
	Bands int              `json:"bands"`
	// Sample is the relation's deterministic stride sample, row-major —
	// index.NewSelStats rebuilds the exact selectivity statistics the
	// in-memory engine would compute over the same relation.
	Sample   [][]int64 `json:"sample"`
	Segments []segMeta `json:"segments"`
}

// CorruptionError reports a store file that failed validation: a torn or
// bit-flipped footer, an implausible directory, or a segment whose checksum
// no longer matches. Open quarantines the damaged file (renamed to
// path+".corrupt") before returning it, mirroring journal.CorruptionError's
// contract: the bad bytes are preserved for forensics and the path is free
// for a rebuild.
type CorruptionError struct {
	// Path is the store file (its pre-quarantine name).
	Path string
	// Offset is the file offset implicated, -1 when unknown.
	Offset int64
	// Reason describes the validation failure.
	Reason error
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("diskstore: corrupt store %s at offset %d: %v", e.Path, e.Offset, e.Reason)
}

func (e *CorruptionError) Unwrap() error { return e.Reason }

// corrupt builds a CorruptionError (Path is filled in by Open).
func corrupt(off int64, format string, args ...any) *CorruptionError {
	return &CorruptionError{Offset: off, Reason: fmt.Errorf(format, args...)}
}

// int64View reinterprets an 8-aligned byte slice as []int64 in place.
func int64View(b []byte) []int64 {
	if len(b) < 8 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// int32View reinterprets a 4-aligned byte slice as []int32 in place.
func int32View(b []byte) []int32 {
	if len(b) < 4 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// bytesOfInt64 is the writer-side inverse of int64View.
func bytesOfInt64(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

// bytesOfInt32 is the writer-side inverse of int32View.
func bytesOfInt32(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
}

// decodeFooter locates, checksums and validates the footer of a store
// file's bytes. It is a pure function of the bytes — the fuzz target drives
// it directly — and returns a *CorruptionError (Path unset) on any damage.
func decodeFooter(data []byte) (*fileFooter, error) {
	size := int64(len(data))
	if size < headerLen+trailerLen {
		return nil, corrupt(0, "file holds %d bytes, smaller than any store", size)
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return nil, corrupt(0, "bad file magic")
	}
	tr := data[size-trailerLen:]
	if string(tr[16:]) != trailerMagic {
		return nil, corrupt(size-trailerLen, "bad trailer magic (torn or truncated file)")
	}
	footOff := int64(binary.BigEndian.Uint64(tr[0:8]))
	footLen := int64(binary.BigEndian.Uint64(tr[8:16]))
	if footLen < 0 || footLen > maxFooterLen {
		return nil, corrupt(size-trailerLen, "implausible footer length %d", footLen)
	}
	// The footer frame is [4B len][payload][4B crc] ending at the trailer.
	frameLen := 4 + footLen + 4
	if footOff < headerLen || footOff%segAlign != 0 || footOff+frameLen != size-trailerLen {
		return nil, corrupt(size-trailerLen, "footer frame [%d,+%d) does not abut the trailer", footOff, frameLen)
	}
	frame := data[footOff : footOff+frameLen]
	if got := int64(binary.BigEndian.Uint32(frame[0:4])); got != footLen {
		return nil, corrupt(footOff, "footer frame length %d disagrees with trailer %d", got, footLen)
	}
	payload := frame[4 : 4+footLen]
	wantCRC := binary.BigEndian.Uint32(frame[4+footLen:])
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, corrupt(footOff, "footer CRC mismatch (got %08x, want %08x)", got, wantCRC)
	}
	var ft fileFooter
	if err := json.Unmarshal(payload, &ft); err != nil {
		return nil, corrupt(footOff, "footer payload: %w", err)
	}
	if err := validateFooter(&ft, footOff); err != nil {
		return nil, err
	}
	return &ft, nil
}

// validateFooter checks the directory's internal consistency: version,
// sizes, and one well-formed segment per (kind, attr, band) slot with
// in-bounds, aligned, non-overlapping extents.
func validateFooter(ft *fileFooter, footOff int64) error {
	if ft.Version != formatVersion {
		return corrupt(footOff, "unsupported format version %d", ft.Version)
	}
	if ft.N < 0 || ft.Bands < 1 || len(ft.Attrs) == 0 {
		return corrupt(footOff, "implausible footer (n=%d, bands=%d, %d attrs)", ft.N, ft.Bands, len(ft.Attrs))
	}
	if ft.Bands > max(ft.N, 1) {
		return corrupt(footOff, "%d bands over %d tuples", ft.Bands, ft.N)
	}
	d := len(ft.Attrs)
	for _, row := range ft.Sample {
		if len(row) != d {
			return corrupt(footOff, "sample row holds %d values, schema has %d attributes", len(row), d)
		}
	}
	seen := make(map[[3]int]bool, len(ft.Segments))
	kinds := map[string]int{segCol: 0, segPostKey: 1, segPostOff: 2, segPostRank: 3, segSortVal: 4, segSortRank: 5, segRankPos: 6}
	for i := range ft.Segments {
		sg := &ft.Segments[i]
		kid, ok := kinds[sg.Kind]
		if !ok {
			return corrupt(footOff, "segment %d has unknown kind %q", i, sg.Kind)
		}
		if sg.Attr < 0 || sg.Attr >= d {
			return corrupt(footOff, "segment %d indexes attribute %d of %d", i, sg.Attr, d)
		}
		wantBand := sg.Kind != segCol
		if (wantBand && (sg.Band < 0 || sg.Band >= ft.Bands)) || (!wantBand && sg.Band != -1) {
			return corrupt(footOff, "segment %d (%s) has band %d", i, sg.Kind, sg.Band)
		}
		if sg.Off < headerLen || sg.Off%segAlign != 0 || sg.Len < 0 || sg.Off+sg.Len > footOff {
			return corrupt(sg.Off, "segment %d (%s) extent [%d,+%d) escapes the data region", i, sg.Kind, sg.Off, sg.Len)
		}
		key := [3]int{kid, sg.Attr, sg.Band}
		if seen[key] {
			return corrupt(sg.Off, "duplicate segment %s/attr=%d/band=%d", sg.Kind, sg.Attr, sg.Band)
		}
		seen[key] = true
	}
	// Every slot the schema implies must be present: d column segments,
	// and per band either the posting or the sorted triple per attribute.
	for a, wa := range ft.Attrs {
		if !seen[[3]int{kinds[segCol], a, -1}] {
			return corrupt(footOff, "missing column segment for attribute %d", a)
		}
		var want []string
		switch wa.Kind {
		case "categorical":
			want = []string{segPostKey, segPostOff, segPostRank}
		case "numeric":
			want = []string{segSortVal, segSortRank, segRankPos}
		default:
			return corrupt(footOff, "attribute %d has unknown kind %q", a, wa.Kind)
		}
		for b := 0; b < ft.Bands; b++ {
			for _, k := range want {
				if !seen[[3]int{kinds[k], a, b}] {
					return corrupt(footOff, "missing %s segment for attribute %d band %d", k, a, b)
				}
			}
		}
	}
	return nil
}
