package diskstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"testing"

	"hidb/internal/datagen"
)

// FuzzDecodeFooter fuzzes the footer/trailer decoder over arbitrary file
// images. decodeFooter is a pure function of the bytes, so the target
// needs no filesystem: whatever the fuzzer mutates, the decoder must
// either accept a structurally valid footer or return *CorruptionError —
// never panic, never return a footer that fails its own validation.
func FuzzDecodeFooter(f *testing.F) {
	// Seed 1: a pristine store file.
	path := f.TempDir() + "/seed.hidb"
	if err := Build(path, datagen.TierSchema(datagen.Tier10K), datagen.TieredSeq(datagen.PatternRandom, datagen.Tier10K, 1), BuildOptions{Bands: 2}); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	// Seeds 2..n: truncations at interesting boundaries.
	for _, cut := range []int{0, 1, headerLen, headerLen + 7, len(valid) - trailerLen, len(valid) - trailerLen + 1, len(valid) - 8, len(valid) - 1} {
		f.Add(append([]byte(nil), valid[:cut]...))
	}
	// Bit-flips across header, segment region, footer frame, trailer.
	for _, off := range []int{0, headerLen + 3, len(valid) / 2, len(valid) - trailerLen - 5, len(valid) - trailerLen + 2, len(valid) - 4} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x20
		f.Add(mut)
	}
	// A footer that duplicates a segment directory entry, re-framed with a
	// correct CRC so the fuzzer starts past the checksum wall.
	f.Add(reframeFooter(f, valid, func(ft *fileFooter) {
		ft.Segments = append(ft.Segments, ft.Segments[len(ft.Segments)-1])
	}))
	// A footer whose segment extents escape the data region.
	f.Add(reframeFooter(f, valid, func(ft *fileFooter) {
		ft.Segments[0].Off = 1 << 40
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		ft, err := decodeFooter(data)
		if err != nil {
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("decodeFooter returned untyped error %v", err)
			}
			if ce.Path != "" {
				t.Fatalf("pure decode set Path=%q", ce.Path)
			}
			return
		}
		// Accepted footers must be self-consistent on re-validation.
		if err := validateFooter(ft, int64(len(data))); err != nil {
			t.Fatalf("decoded footer fails its own validation: %v", err)
		}
	})
}

// reframeFooter decodes a valid file's footer, applies mutate, and
// re-writes footer frame + trailer with correct CRC and lengths so only
// the directory content — not the framing — is damaged.
func reframeFooter(f *testing.F, valid []byte, mutate func(*fileFooter)) []byte {
	f.Helper()
	ft, err := decodeFooter(valid)
	if err != nil {
		f.Fatal(err)
	}
	mutate(ft)
	payload, err := json.Marshal(ft)
	if err != nil {
		f.Fatal(err)
	}
	footOff := int64(binary.BigEndian.Uint64(valid[len(valid)-trailerLen:]))
	out := append([]byte(nil), valid[:footOff]...)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(payload)))
	out = append(out, u32[:]...)
	out = append(out, payload...)
	binary.BigEndian.PutUint32(u32[:], crc32.ChecksumIEEE(payload))
	out = append(out, u32[:]...)
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(footOff))
	out = append(out, u64[:]...)
	binary.BigEndian.PutUint64(u64[:], uint64(len(payload)))
	out = append(out, u64[:]...)
	out = append(out, trailerMagic...)
	return out
}
