// Crash-safe journal framing. A journal is persisted mid-crawl and
// reloaded after interruptions that include real crashes: a process killed
// mid-write leaves a torn file, a bad disk flips bits. The v2 format makes
// every record independently verifiable — length-prefixed payloads with a
// per-record CRC32 and a length-prefixed trailer carrying the entry count —
// so a reader can always recover the longest valid prefix of a damaged
// file instead of discarding the whole session's paid queries. The journal
// is an optimization, never the source of truth: a lost tail merely
// re-pays the queries it held, so prefix recovery is always safe.
//
// Layout:
//
//	magic "hidbjnl2\n"
//	record*          [4-byte BE length][payload][4-byte BE CRC32-IEEE(payload)]
//
// The first payload byte tags the record: 'H' (header: the schema message),
// 'E' (one entry), 'T' (trailer: the entry count). A clean file is
// header, entries, trailer, EOF; anything else is damage, cut at the first
// invalid byte.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"hidb/internal/wire"
)

// magicV2 marks a checksummed v2 journal. Files not starting with it are
// read as the legacy JSON-lines format.
const magicV2 = "hidbjnl2\n"

// Record type tags (first payload byte).
const (
	recHeader  = 'H'
	recEntry   = 'E'
	recTrailer = 'T'
)

// maxRecordLen bounds one record's payload, so a corrupted length prefix
// cannot make the reader allocate gigabytes. A record holds one query and
// at most k returned tuples; 64 MiB is far beyond any real entry.
const maxRecordLen = 64 << 20

// trailerMsg is the payload of the terminal record: how many entries a
// complete file holds. A reader that never sees it knows the file is torn
// even when the tear fell exactly on a record boundary.
type trailerMsg struct {
	Entries int `json:"entries"`
}

// CorruptionError reports a torn or corrupted journal. The *Journal
// returned alongside it holds the longest valid prefix of the file — every
// entry up to the damage — and is safe to use; only the damaged tail is
// lost (and must simply be re-paid).
type CorruptionError struct {
	// Entries is how many valid entries were recovered before the damage.
	Entries int
	// Offset is the byte offset at which the damage starts.
	Offset int64
	// Reason describes what was wrong at Offset.
	Reason error
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("journal: corrupted at byte %d after %d valid entries: %v", e.Offset, e.Entries, e.Reason)
}

func (e *CorruptionError) Unwrap() error { return e.Reason }

// writeRecord frames one payload: length prefix, payload, CRC.
func writeRecord(w io.Writer, payload []byte) (int64, error) {
	var frame [4]byte
	binary.BigEndian.PutUint32(frame[:], uint32(len(payload)))
	if _, err := w.Write(frame[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 4, err
	}
	binary.BigEndian.PutUint32(frame[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(frame[:]); err != nil {
		return 4 + int64(len(payload)), err
	}
	return 8 + int64(len(payload)), nil
}

// framedReader reads v2 records, tracking the byte offset so corruption is
// reported where it starts.
type framedReader struct {
	r   io.Reader
	off int64
}

// next returns the next record's payload (including its type tag byte).
// io.EOF is returned only for a clean EOF exactly at a record boundary;
// any other failure — short read, oversized length, CRC mismatch — comes
// back as a descriptive error with the reader positioned at the damage.
func (fr *framedReader) next() ([]byte, error) {
	var frame [4]byte
	n, err := io.ReadFull(fr.r, frame[:])
	if err == io.EOF && n == 0 {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("truncated record length: %w", err)
	}
	fr.off += 4
	length := binary.BigEndian.Uint32(frame[:])
	if length == 0 || length > maxRecordLen {
		return nil, fmt.Errorf("implausible record length %d", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return nil, fmt.Errorf("truncated record payload: %w", err)
	}
	fr.off += int64(length)
	if _, err := io.ReadFull(fr.r, frame[:]); err != nil {
		return nil, fmt.Errorf("truncated record checksum: %w", err)
	}
	fr.off += 4
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(frame[:]); got != want {
		return nil, fmt.Errorf("checksum mismatch (corrupted record)")
	}
	return payload, nil
}

// writeToV2 serializes the journal in the checksummed v2 format. Caller
// holds j.mu (read).
func (j *Journal) writeToV2(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if _, err := io.WriteString(cw, magicV2); err != nil {
		return cw.n, err
	}
	hdr, err := json.Marshal(wire.EncodeSchema(j.schema, j.k))
	if err != nil {
		return cw.n, err
	}
	if _, err := writeRecord(cw, append([]byte{recHeader}, hdr...)); err != nil {
		return cw.n, err
	}
	for _, key := range j.order {
		res := j.entries[key]
		q, err := queryFromKey(j.schema, key)
		if err != nil {
			return cw.n, err
		}
		payload, err := json.Marshal(entryMsg{
			Query:  wire.EncodeQuery(q),
			Result: wire.EncodeResult(res),
		})
		if err != nil {
			return cw.n, err
		}
		if _, err := writeRecord(cw, append([]byte{recEntry}, payload...)); err != nil {
			return cw.n, err
		}
	}
	trailer, err := json.Marshal(trailerMsg{Entries: len(j.order)})
	if err != nil {
		return cw.n, err
	}
	if _, err := writeRecord(cw, append([]byte{recTrailer}, trailer...)); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// readFromV2 decodes a v2 journal whose magic has already been consumed.
// Damage after a valid header yields the recovered prefix plus a
// *CorruptionError; a damaged header yields (nil, *CorruptionError) — there
// is no schema to build a journal against.
func readFromV2(r io.Reader, consumed int64) (*Journal, error) {
	fr := &framedReader{r: r, off: consumed}
	corrupt := func(entries int, at int64, reason error) *CorruptionError {
		return &CorruptionError{Entries: entries, Offset: at, Reason: reason}
	}

	at := fr.off
	payload, err := fr.next()
	if err != nil {
		return nil, corrupt(0, at, fmt.Errorf("header: %w", err))
	}
	if len(payload) < 1 || payload[0] != recHeader {
		return nil, corrupt(0, at, errors.New("header: wrong record type"))
	}
	var hdr wire.SchemaMsg
	if err := json.Unmarshal(payload[1:], &hdr); err != nil {
		return nil, corrupt(0, at, fmt.Errorf("header: %w", err))
	}
	schema, k, err := wire.DecodeSchema(hdr)
	if err != nil {
		return nil, corrupt(0, at, fmt.Errorf("header schema: %w", err))
	}

	j := New(schema, k)
	for {
		at = fr.off
		payload, err := fr.next()
		if err == io.EOF {
			// Torn exactly at a record boundary: no trailer seen.
			return j, corrupt(j.Len(), at, errors.New("missing trailer (torn file)"))
		}
		if err != nil {
			return j, corrupt(j.Len(), at, err)
		}
		switch payload[0] {
		case recEntry:
			var e entryMsg
			if err := json.Unmarshal(payload[1:], &e); err != nil {
				return j, corrupt(j.Len(), at, fmt.Errorf("entry: %w", err))
			}
			q, err := wire.DecodeQuery(schema, e.Query)
			if err != nil {
				return j, corrupt(j.Len(), at, fmt.Errorf("entry query: %w", err))
			}
			res, err := wire.DecodeResult(schema, e.Result)
			if err != nil {
				return j, corrupt(j.Len(), at, fmt.Errorf("entry result: %w", err))
			}
			j.Record(q, res)
		case recTrailer:
			var tr trailerMsg
			if err := json.Unmarshal(payload[1:], &tr); err != nil {
				return j, corrupt(j.Len(), at, fmt.Errorf("trailer: %w", err))
			}
			if tr.Entries != j.Len() {
				// Duplicate records collapse in Record, so a count mismatch
				// from deduplication alone is expected only downward; any
				// mismatch still means the file is not what was written.
				return j, corrupt(j.Len(), at, fmt.Errorf("trailer promises %d entries, read %d", tr.Entries, j.Len()))
			}
			// Bytes after the trailer are ignored, as a sequential reader
			// never reads past the terminal record.
			return j, nil
		default:
			return j, corrupt(j.Len(), at, fmt.Errorf("unknown record type %q", payload[0]))
		}
	}
}

// SaveFile persists the journal to path crash-safely: the bytes are
// written to a temporary file in the same directory, flushed to stable
// storage, and renamed over path — a crash at any instant leaves either
// the old complete file or the new complete file, never a mix. The parent
// directory is created if missing.
func SaveFile(path string, j *Journal) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("journal: save %s: %w", path, err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("journal: save %s: %w", path, err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("journal: save %s: %w", path, err)
	}
	if _, err := j.WriteTo(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("journal: save %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("journal: save %s: %w", path, err)
	}
	syncDir(dir) // best effort: make the rename itself durable
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
// Not all platforms support it; failures are ignored — the rename is
// already atomic with respect to crashes of this process.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// LoadFile reads the journal at path. A missing file returns an error
// wrapping fs.ErrNotExist. A torn or corrupted file is recovered to its
// longest valid prefix: the damaged original is quarantined as
// path+".corrupt" (preserving the evidence), the clean prefix is written
// back to path, and both the recovered journal and a *CorruptionError
// describing the damage are returned — callers should log the error and
// continue with the journal. When not even the header survived, the
// journal is nil and the caller starts fresh; only the unflushed tail's
// queries are ever re-paid.
func LoadFile(path string) (*Journal, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: load %s: %w", path, err)
	}
	j, rerr := ReadFrom(f)
	f.Close()
	var ce *CorruptionError
	if errors.As(rerr, &ce) {
		quarantine(path, j)
		return j, rerr
	}
	if rerr != nil {
		return nil, fmt.Errorf("journal: load %s: %w", path, rerr)
	}
	return j, nil
}

// quarantine moves a damaged journal aside and re-persists the recovered
// prefix (when any survived). Best effort on all counts: the journal is an
// optimization, and the recovered prefix is already in memory.
func quarantine(path string, recovered *Journal) {
	os.Rename(path, path+".corrupt")
	if recovered != nil && recovered.Len() > 0 {
		SaveFile(path, recovered)
	}
}
