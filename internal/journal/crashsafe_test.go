package journal

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/hiddendb"
	"hidb/internal/wire"
)

// writeLegacy serializes j in the pre-checksum JSON-lines format, exactly
// as the old writer did: a header line promising the entry count, then one
// entry per line.
func writeLegacy(t *testing.T, j *Journal) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(headerMsg{Schema: wire.EncodeSchema(j.schema, j.k), Entries: len(j.order)}); err != nil {
		t.Fatal(err)
	}
	for _, key := range j.order {
		q, err := queryFromKey(j.schema, key)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(entryMsg{Query: wire.EncodeQuery(q), Result: wire.EncodeResult(j.entries[key])}); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// populatedJournal builds a journal holding a real (small) crawl's
// entries. Deliberately small: the torn-file test re-reads it once per
// sampled cut point.
func populatedJournal(t *testing.T) *Journal {
	t.Helper()
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          250,
		CatDomains: []int{4},
		NumRanges:  [][2]int64{{0, 500}},
		DupRate:    0.05,
	}, 23)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	j := New(ds.Schema, 8)
	wrapped, err := Wrap(srv, j)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (core.Hybrid{}).Crawl(context.Background(), wrapped, nil); err != nil {
		t.Fatal(err)
	}
	if j.Len() < 10 {
		t.Fatalf("journal too small to exercise recovery: %d entries", j.Len())
	}
	return j
}

// assertPrefixOf fails unless got's entries are a prefix of want's
// insertion order with identical responses.
func assertPrefixOf(t *testing.T, got, want *Journal) {
	t.Helper()
	if got.Len() > want.Len() {
		t.Fatalf("recovered %d entries from a journal of %d", got.Len(), want.Len())
	}
	for i, key := range got.order {
		if want.order[i] != key {
			t.Fatalf("recovered entry %d is %q, want %q (not a prefix)", i, key, want.order[i])
		}
		g, w := got.entries[key], want.entries[key]
		if g.Overflow != w.Overflow || !g.Tuples.EqualMultiset(w.Tuples) {
			t.Fatalf("recovered entry %d differs from the original", i)
		}
	}
}

// TestRecoverTornFile cuts a serialized journal at sampled byte offsets
// (every byte near the start and end, a stride through the middle) and
// checks the reader always recovers a valid prefix: recovered length is
// monotone in the cut position, every recovered entry matches the
// original, and only the full file reads back clean.
func TestRecoverTornFile(t *testing.T) {
	j := populatedJournal(t)
	var buf bytes.Buffer
	if _, err := j.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// A file cut inside the magic is unrecognizable as a journal at all;
	// it must error (any error) without panicking, recovering nothing.
	for cut := 0; cut < len(magicV2); cut++ {
		if _, err := ReadFrom(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("cut %d (inside magic) read clean", cut)
		}
	}

	// Every byte would be quadratic in the file size; sample instead —
	// densely at both ends (header and trailer boundaries live there)
	// plus an odd stride through the middle so cuts land at every kind
	// of intra-record offset.
	var cuts []int
	dense := 300
	stride := len(full) / 200
	if stride < 1 {
		stride = 1
	}
	for cut := len(magicV2); cut <= len(full); cut++ {
		if cut < len(magicV2)+dense || cut > len(full)-dense || (cut-len(magicV2))%stride == 0 {
			cuts = append(cuts, cut)
		}
	}

	prev := 0
	sawClean := false
	for _, cut := range cuts {
		got, err := ReadFrom(bytes.NewReader(full[:cut]))
		var ce *CorruptionError
		switch {
		case err == nil:
			if got.Len() != j.Len() {
				t.Fatalf("cut %d read clean with %d of %d entries", cut, got.Len(), j.Len())
			}
			sawClean = true
		case errors.As(err, &ce):
			if got == nil {
				if ce.Entries != 0 {
					t.Fatalf("cut %d: nil journal but %d entries reported", cut, ce.Entries)
				}
				continue
			}
			if ce.Entries != got.Len() {
				t.Fatalf("cut %d: error reports %d entries, journal has %d", cut, ce.Entries, got.Len())
			}
			assertPrefixOf(t, got, j)
			if got.Len() < prev {
				t.Fatalf("cut %d recovered %d entries, shorter cut recovered %d", cut, got.Len(), prev)
			}
			prev = got.Len()
		default:
			t.Fatalf("cut %d: unexpected error type: %v", cut, err)
		}
	}
	if !sawClean {
		t.Fatal("the untruncated journal never read back clean")
	}
	if prev < j.Len()-1 {
		t.Fatalf("cutting just before the trailer recovered only %d of %d entries", prev, j.Len())
	}
}

// TestRecoverBitFlip flips single bytes inside the entry region and checks
// the CRC catches the damage: the reader returns a valid (possibly
// shortened) prefix, never silently corrupted data.
func TestRecoverBitFlip(t *testing.T) {
	j := populatedJournal(t)
	var buf bytes.Buffer
	if _, err := j.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Flip bytes spread across the file (skipping the magic, which just
	// demotes the file to an unreadable legacy parse — also fine, but not
	// what this test pins).
	for off := len(magicV2) + 1; off < len(full); off += len(full) / 37 {
		damaged := bytes.Clone(full)
		damaged[off] ^= 0x40
		got, err := ReadFrom(bytes.NewReader(damaged))
		if err == nil {
			// The flip landed in a spot the decoder provably re-validated
			// (e.g. inside JSON whitespace there is none — but a flipped
			// bit can still yield a CRC-valid record only with probability
			// ~2^-32, so a clean read means the decode round-tripped).
			// Verify nothing was silently altered.
			if got.Len() != j.Len() {
				t.Fatalf("offset %d: clean read with %d of %d entries", off, got.Len(), j.Len())
			}
			assertPrefixOf(t, got, j)
			continue
		}
		var ce *CorruptionError
		if !errors.As(err, &ce) {
			t.Fatalf("offset %d: unexpected error type: %v", off, err)
		}
		if got != nil {
			assertPrefixOf(t, got, j)
		}
	}
}

// TestSaveLoadFile exercises the crash-safe file helpers: round trip,
// missing file, and recovery-with-quarantine of a torn file.
func TestSaveLoadFile(t *testing.T) {
	j := populatedJournal(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "crawl.journal")

	if _, err := LoadFile(path); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want fs.ErrNotExist", err)
	}

	if err := SaveFile(path, j); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != j.Len() {
		t.Fatalf("round trip lost entries: %d of %d", back.Len(), j.Len())
	}

	// Tear the file mid-way, as a crash during a (non-atomic) write or a
	// truncating filesystem would.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:2*len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := LoadFile(path)
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("torn file: err = %v, want *CorruptionError", err)
	}
	if rec == nil || rec.Len() == 0 {
		t.Fatal("torn file recovered nothing")
	}
	assertPrefixOf(t, rec, j)
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("damaged original not quarantined: %v", err)
	}
	// The clean prefix was written back: the next load is ordinary.
	again, err := LoadFile(path)
	if err != nil {
		t.Fatalf("re-load after recovery: %v", err)
	}
	if again.Len() != rec.Len() {
		t.Fatalf("re-load after recovery: %d entries, want %d", again.Len(), rec.Len())
	}
}

// TestLegacyFormatStillReadable pins backward compatibility: journals
// persisted by the pre-checksum JSON-lines writer still load, and their
// truncation recovers a prefix instead of failing.
func TestLegacyFormatStillReadable(t *testing.T) {
	j := populatedJournal(t)
	legacy := writeLegacy(t, j)

	back, err := ReadFrom(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy journal rejected: %v", err)
	}
	if back.Len() != j.Len() {
		t.Fatalf("legacy round trip lost entries: %d of %d", back.Len(), j.Len())
	}

	rec, err := ReadFrom(bytes.NewReader(legacy[:2*len(legacy)/3]))
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("torn legacy journal: err = %v, want *CorruptionError", err)
	}
	if rec == nil || rec.Len() == 0 {
		t.Fatal("torn legacy journal recovered nothing")
	}
	assertPrefixOf(t, rec, j)
}
