package journal

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// blockingInner is a hidden-database stand-in whose Answer parks on a gate,
// so a test can hold two callers inside the miss window at once.
type blockingInner struct {
	schema  *dataspace.Schema
	gate    chan struct{}
	arrived chan struct{}
	calls   atomic.Int32
}

func (b *blockingInner) Answer(ctx context.Context, q dataspace.Query) (hiddendb.Result, error) {
	b.calls.Add(1)
	b.arrived <- struct{}{}
	select {
	case <-b.gate:
	case <-ctx.Done():
		return hiddendb.Result{}, ctx.Err()
	}
	return hiddendb.Result{}, nil
}

func (b *blockingInner) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]hiddendb.Result, error) {
	out := make([]hiddendb.Result, 0, len(qs))
	for _, q := range qs {
		res, err := b.Answer(ctx, q)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

func (b *blockingInner) K() int                    { return 4 }
func (b *blockingInner) Schema() *dataspace.Schema { return b.schema }

// Two concurrent misses on the same query must charge the inner server
// once: the second caller waits for the first's answer and replays it.
// This is the reconnect-races-zombie-crawl scenario — the retrying client
// opens a new crawl while the severed one is still winding down.
func TestAnswerSingleFlight(t *testing.T) {
	schema := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "C", Kind: dataspace.Categorical, DomainSize: 3},
	})
	inner := &blockingInner{schema: schema, gate: make(chan struct{}), arrived: make(chan struct{}, 2)}
	srv, err := Wrap(inner, New(schema, 4))
	if err != nil {
		t.Fatal(err)
	}
	q := dataspace.UniverseQuery(schema)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := srv.Answer(context.Background(), q); err != nil {
				t.Errorf("Answer: %v", err)
			}
		}()
	}
	// One caller reaches the inner server and parks; give the other caller
	// time to reach the same miss, then open the gate.
	<-inner.arrived
	time.Sleep(10 * time.Millisecond)
	close(inner.gate)
	wg.Wait()

	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("inner server charged %d times for one query, want 1", got)
	}
	if srv.Replays() != 1 {
		t.Fatalf("replays = %d, want 1 (the waiter must replay the winner's answer)", srv.Replays())
	}
}

// A waiter whose ctx dies while the winner is still in flight gets the ctx
// error, not a second paid query.
func TestSingleFlightWaiterHonoursContext(t *testing.T) {
	schema := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "C", Kind: dataspace.Categorical, DomainSize: 3},
	})
	inner := &blockingInner{schema: schema, gate: make(chan struct{}), arrived: make(chan struct{}, 2)}
	srv, err := Wrap(inner, New(schema, 4))
	if err != nil {
		t.Fatal(err)
	}
	q := dataspace.UniverseQuery(schema)

	winnerDone := make(chan error, 1)
	go func() {
		_, err := srv.Answer(context.Background(), q)
		winnerDone <- err
	}()
	<-inner.arrived

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := srv.Answer(ctx, q)
		waiterDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-waiterDone; err != context.Canceled {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}

	close(inner.gate)
	if err := <-winnerDone; err != nil {
		t.Fatalf("winner failed: %v", err)
	}
	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("inner server charged %d times, want 1", got)
	}
}
