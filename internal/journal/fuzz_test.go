package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// FuzzQueryFromKey checks that arbitrary key strings either parse into a
// query whose canonical key round-trips exactly, or are rejected — never
// panic, never mis-parse.
func FuzzQueryFromKey(f *testing.F) {
	schema := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "C", Kind: dataspace.Categorical, DomainSize: 9},
		{Name: "N", Kind: dataspace.Numeric},
	})
	f.Add("*|0:5")
	f.Add("3|-10:10")
	f.Add("*|:")
	f.Add("||")
	f.Add("")
	f.Add("9|-9223372036854775807:9223372036854775806")
	f.Fuzz(func(t *testing.T, key string) {
		q, err := queryFromKey(schema, key)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted inputs may be non-canonical (leading zeros), but the
		// canonical form must be a fixpoint: parse(key).Key() parses back
		// to the same query. Journal lookups only ever see canonical keys
		// produced by Query.Key, so this is the property that matters.
		canon := q.Key()
		q2, err := queryFromKey(schema, canon)
		if err != nil {
			t.Fatalf("canonical key %q (from %q) rejected: %v", canon, key, err)
		}
		if q2.Key() != canon {
			t.Fatalf("canonicalization not idempotent: %q -> %q", canon, q2.Key())
		}
	})
}

// fuzzSeedJournal builds a tiny, fully known journal for the decoder fuzz.
func fuzzSeedJournal(f *testing.F) *Journal {
	f.Helper()
	schema := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "C", Kind: dataspace.Categorical, DomainSize: 3},
		{Name: "N", Kind: dataspace.Numeric},
	})
	j := New(schema, 4)
	for c := int64(1); c <= 3; c++ {
		q, err := dataspace.NewQuery(schema, []dataspace.Pred{{Value: c}, {Lo: 0, Hi: 100}})
		if err != nil {
			f.Fatal(err)
		}
		j.Record(q, hiddendb.Result{
			Tuples:   dataspace.Bag{{c, 7}, {c, 42}},
			Overflow: c == 1,
		})
	}
	return j
}

// recordSpans returns the [start, end) byte spans of each framed record in
// a serialized v2 journal (header, entries, trailer), after the magic.
func recordSpans(f *testing.F, full []byte) [][2]int {
	f.Helper()
	var spans [][2]int
	off := len(magicV2)
	for off < len(full) {
		if off+4 > len(full) {
			f.Fatalf("truncated frame at %d", off)
		}
		n := int(binary.BigEndian.Uint32(full[off:]))
		end := off + 4 + n + 4
		if end > len(full) {
			f.Fatalf("frame at %d overruns the file", off)
		}
		spans = append(spans, [2]int{off, end})
		off = end
	}
	return spans
}

// FuzzReadFrom throws arbitrary bytes at the journal decoder and checks
// the recovery contract: never panic, never allocate unboundedly, and
// whenever a journal comes back (clean or alongside a *CorruptionError)
// it is internally consistent — the reported entry count matches, every
// key is canonical, and the journal re-serializes to a clean file.
func FuzzReadFrom(f *testing.F) {
	j := fuzzSeedJournal(f)
	var buf bytes.Buffer
	if _, err := j.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	spans := recordSpans(f, valid)

	f.Add(valid)                 // clean file
	f.Add(valid[:len(valid)-5])  // torn inside the trailer
	f.Add(valid[:spans[2][0]])   // torn at a record boundary (no trailer)
	f.Add(valid[:spans[1][0]+7]) // torn mid-entry
	flipped := bytes.Clone(valid)
	flipped[spans[1][0]+9] ^= 0x20 // bit flip inside an entry payload
	f.Add(flipped)
	var dup []byte // first entry record duplicated: trailer count mismatch
	dup = append(dup, valid[:spans[2][0]]...)
	dup = append(dup, valid[spans[1][0]:spans[1][1]]...)
	dup = append(dup, valid[spans[2][0]:]...)
	f.Add(dup)
	f.Add([]byte(magicV2))                // magic only
	f.Add([]byte(`{"schema":{}}` + "\n")) // legacy-format header

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadFrom(bytes.NewReader(data))
		var ce *CorruptionError
		switch {
		case err == nil:
			if got == nil {
				t.Fatal("clean read returned a nil journal")
			}
		case errors.As(err, &ce):
			if got != nil && ce.Entries != got.Len() {
				t.Fatalf("error reports %d entries, journal has %d", ce.Entries, got.Len())
			}
			if got == nil && ce.Entries != 0 {
				t.Fatalf("nil journal but %d entries reported", ce.Entries)
			}
		default:
			if got != nil {
				t.Fatalf("non-corruption error %v returned a journal", err)
			}
			return
		}
		if got == nil {
			return
		}
		// Whatever was recovered must be well-formed: canonical keys and a
		// lossless re-serialization.
		for _, key := range got.order {
			q, err := queryFromKey(got.schema, key)
			if err != nil {
				t.Fatalf("recovered key %q does not parse: %v", key, err)
			}
			if q.Key() != key {
				t.Fatalf("recovered key %q is not canonical (re-keys to %q)", key, q.Key())
			}
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("recovered journal does not re-serialize: %v", err)
		}
		back, err := ReadFrom(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-serialized journal does not read back clean: %v", err)
		}
		if back.Len() != got.Len() {
			t.Fatalf("re-serialization lost entries: %d of %d", back.Len(), got.Len())
		}
	})
}

// FuzzParseInt checks the journal's integer parser against the accepted
// grammar: on success the value re-formats to a canonical decimal.
func FuzzParseInt(f *testing.F) {
	f.Add("0")
	f.Add("-17")
	f.Add("9223372036854775806")
	f.Add("--3")
	f.Add("1x")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := parseInt(s)
		if err != nil {
			return
		}
		// Accepted strings must contain only an optional sign and digits.
		body := s
		if len(body) > 0 && body[0] == '-' {
			body = body[1:]
		}
		if len(body) == 0 {
			t.Fatalf("parseInt(%q) accepted an empty body as %d", s, v)
		}
		for _, c := range []byte(body) {
			if c < '0' || c > '9' {
				t.Fatalf("parseInt(%q) accepted a non-digit, got %d", s, v)
			}
		}
	})
}
