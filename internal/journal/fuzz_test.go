package journal

import (
	"testing"

	"hidb/internal/dataspace"
)

// FuzzQueryFromKey checks that arbitrary key strings either parse into a
// query whose canonical key round-trips exactly, or are rejected — never
// panic, never mis-parse.
func FuzzQueryFromKey(f *testing.F) {
	schema := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "C", Kind: dataspace.Categorical, DomainSize: 9},
		{Name: "N", Kind: dataspace.Numeric},
	})
	f.Add("*|0:5")
	f.Add("3|-10:10")
	f.Add("*|:")
	f.Add("||")
	f.Add("")
	f.Add("9|-9223372036854775807:9223372036854775806")
	f.Fuzz(func(t *testing.T, key string) {
		q, err := queryFromKey(schema, key)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted inputs may be non-canonical (leading zeros), but the
		// canonical form must be a fixpoint: parse(key).Key() parses back
		// to the same query. Journal lookups only ever see canonical keys
		// produced by Query.Key, so this is the property that matters.
		canon := q.Key()
		q2, err := queryFromKey(schema, canon)
		if err != nil {
			t.Fatalf("canonical key %q (from %q) rejected: %v", canon, key, err)
		}
		if q2.Key() != canon {
			t.Fatalf("canonicalization not idempotent: %q -> %q", canon, q2.Key())
		}
	})
}

// FuzzParseInt checks the journal's integer parser against the accepted
// grammar: on success the value re-formats to a canonical decimal.
func FuzzParseInt(f *testing.F) {
	f.Add("0")
	f.Add("-17")
	f.Add("9223372036854775806")
	f.Add("--3")
	f.Add("1x")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := parseInt(s)
		if err != nil {
			return
		}
		// Accepted strings must contain only an optional sign and digits.
		body := s
		if len(body) > 0 && body[0] == '-' {
			body = body[1:]
		}
		if len(body) == 0 {
			t.Fatalf("parseInt(%q) accepted an empty body as %d", s, v)
		}
		for _, c := range []byte(body) {
			if c < '0' || c > '9' {
				t.Fatalf("parseInt(%q) accepted a non-digit, got %d", s, v)
			}
		}
	})
}
