// Package journal makes crawls resumable. Real hidden databases cap the
// queries a client may issue per day (the very constraint that motivates the
// paper's cost metric), so a complete crawl may have to span several query
// budgets. A Journal records every (query, response) pair that reached the
// server; because the crawling algorithms are deterministic and the server's
// responses are stable, re-running the algorithm with the journal replayed
// in front of the server fast-forwards for free through everything already
// paid for and continues issuing only new queries.
//
// The journal serializes in a crash-safe checksummed framing (see
// framed.go): per-record CRC32 with a length-prefixed trailer, so a crawl
// interrupted by hiddendb.ErrQuotaExceeded — or by a crash mid-write — can
// persist its state to disk and resume days later; a torn or corrupted
// file recovers its longest valid prefix instead of losing the session.
// SaveFile/LoadFile are the canonical write-temp-fsync-rename persistence
// helpers. Legacy JSON-lines journals are still readable.
package journal

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/wire"
)

// Journal is a replayable log of server responses, keyed by canonical
// query. Safe for concurrent use, so it composes with the parallel crawler.
type Journal struct {
	schema *dataspace.Schema
	k      int

	mu      sync.RWMutex
	entries map[string]hiddendb.Result
	order   []string // insertion order, for deterministic serialization
}

// New creates an empty journal for a server with the given schema and
// return limit.
func New(schema *dataspace.Schema, k int) *Journal {
	return &Journal{
		schema:  schema,
		k:       k,
		entries: make(map[string]hiddendb.Result),
	}
}

// Schema returns the schema the journal was created for.
func (j *Journal) Schema() *dataspace.Schema { return j.schema }

// K returns the return limit the journal was created for.
func (j *Journal) K() int { return j.k }

// Len returns the number of recorded queries.
func (j *Journal) Len() int {
	j.mu.RLock()
	defer j.mu.RUnlock()
	return len(j.order)
}

// Lookup returns the recorded response for q, if any.
func (j *Journal) Lookup(q dataspace.Query) (hiddendb.Result, bool) {
	j.mu.RLock()
	defer j.mu.RUnlock()
	res, ok := j.entries[q.Key()]
	return res, ok
}

// Record stores the response for q. Recording the same query twice is a
// no-op (responses are stable by the problem setup).
func (j *Journal) Record(q dataspace.Query, res hiddendb.Result) {
	key := q.Key()
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.entries[key]; ok {
		return
	}
	j.entries[key] = res
	j.order = append(j.order, key)
}

// entryMsg is the wire form of one journal line.
type entryMsg struct {
	Query  wire.QueryMsg  `json:"query"`
	Result wire.ResultMsg `json:"result"`
}

// headerMsg is the wire form of the journal's first line.
type headerMsg struct {
	Schema wire.SchemaMsg `json:"schema"`
	// Entries is the number of entry lines that follow; a reader can
	// detect truncated journals.
	Entries int `json:"entries"`
}

// WriteTo serializes the journal in the checksummed v2 format (see
// framed.go): length-prefixed records with per-record CRC32 and a trailer
// carrying the entry count, so a torn or bit-flipped file is recoverable
// to its longest valid prefix. It implements io.WriterTo.
func (j *Journal) WriteTo(w io.Writer) (int64, error) {
	j.mu.RLock()
	defer j.mu.RUnlock()
	return j.writeToV2(w)
}

// ReadFrom deserializes a journal written by WriteTo — the checksummed v2
// format, or the legacy JSON-lines format of older files. A damaged file
// does not fail wholesale: the longest valid prefix is recovered and
// returned alongside a *CorruptionError describing the tear (errors.As to
// detect it; the journal is safe to use, only the damaged tail's queries
// must be re-paid). The journal is nil only when not even the header
// survived.
func ReadFrom(r io.Reader) (*Journal, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(magicV2))
	if err == nil && string(magic) == magicV2 {
		br.Discard(len(magicV2))
		return readFromV2(br, int64(len(magicV2)))
	}
	return readFromLegacy(br)
}

// readFromLegacy decodes the pre-checksum JSON-lines format: a header with
// the schema and promised entry count, then one entry per line. Truncation
// mid-entries recovers the valid prefix with a *CorruptionError, matching
// the v2 reader's contract.
func readFromLegacy(r io.Reader) (*Journal, error) {
	dec := json.NewDecoder(r)
	var hdr headerMsg
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("journal: reading header: %w", err)
	}
	schema, k, err := wire.DecodeSchema(hdr.Schema)
	if err != nil {
		return nil, fmt.Errorf("journal: header schema: %w", err)
	}
	j := New(schema, k)
	for i := 0; i < hdr.Entries; i++ {
		var e entryMsg
		if err := dec.Decode(&e); err != nil {
			return j, &CorruptionError{Entries: j.Len(), Offset: dec.InputOffset(), Reason: fmt.Errorf("entry %d of %d: %w (truncated journal)", i, hdr.Entries, err)}
		}
		q, err := wire.DecodeQuery(schema, e.Query)
		if err != nil {
			return j, &CorruptionError{Entries: j.Len(), Offset: dec.InputOffset(), Reason: fmt.Errorf("entry %d query: %w", i, err)}
		}
		res, err := wire.DecodeResult(schema, e.Result)
		if err != nil {
			return j, &CorruptionError{Entries: j.Len(), Offset: dec.InputOffset(), Reason: fmt.Errorf("entry %d result: %w", i, err)}
		}
		j.Record(q, res)
	}
	return j, nil
}

// queryFromKey reconstructs a query from its canonical key. The key format
// is produced by dataspace.Query.Key; round-tripping through it keeps the
// journal independent of map iteration order.
func queryFromKey(s *dataspace.Schema, key string) (dataspace.Query, error) {
	preds := make([]dataspace.Pred, s.Dims())
	rest := key
	for i := 0; i < s.Dims(); i++ {
		var field string
		if idx := indexByte(rest, '|'); idx >= 0 {
			field, rest = rest[:idx], rest[idx+1:]
		} else {
			field, rest = rest, ""
		}
		if s.Attr(i).Kind == dataspace.Categorical {
			if field == "*" {
				preds[i] = dataspace.Pred{Wild: true}
			} else {
				v, err := parseInt(field)
				if err != nil {
					return dataspace.Query{}, fmt.Errorf("journal: bad key field %q: %w", field, err)
				}
				preds[i] = dataspace.Pred{Value: v}
			}
		} else {
			idx := indexByte(field, ':')
			if idx < 0 {
				return dataspace.Query{}, fmt.Errorf("journal: bad numeric key field %q", field)
			}
			lo, err := parseInt(field[:idx])
			if err != nil {
				return dataspace.Query{}, err
			}
			hi, err := parseInt(field[idx+1:])
			if err != nil {
				return dataspace.Query{}, err
			}
			preds[i] = dataspace.Pred{Lo: lo, Hi: hi}
		}
	}
	return dataspace.NewQuery(s, preds)
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func parseInt(s string) (int64, error) {
	var v int64
	neg := false
	if len(s) > 0 && s[0] == '-' {
		neg = true
		s = s[1:]
	}
	if len(s) == 0 {
		return 0, fmt.Errorf("empty integer")
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad digit %q", c)
		}
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Server wraps a hiddendb.Server with a journal: recorded queries are
// answered from the journal at zero cost, new ones are forwarded and
// recorded. It implements hiddendb.Server.
type Server struct {
	inner   hiddendb.Server
	journal *Journal

	mu       sync.Mutex
	replays  int
	inflight map[string]chan struct{}
}

// Wrap builds the journaling view. The journal's schema and k must match
// the server's.
func Wrap(inner hiddendb.Server, j *Journal) (*Server, error) {
	if j.K() != inner.K() {
		return nil, fmt.Errorf("journal: recorded k=%d but server has k=%d", j.K(), inner.K())
	}
	if j.Schema().String() != inner.Schema().String() {
		return nil, fmt.Errorf("journal: schema mismatch: %s vs %s", j.Schema(), inner.Schema())
	}
	return &Server{inner: inner, journal: j, inflight: make(map[string]chan struct{})}, nil
}

// Answer implements hiddendb.Server. Replays are free and ignore ctx —
// they touch no remote resource — while forwarded queries honour it.
//
// Concurrent misses on the same query are single-flighted: only one caller
// pays the inner server, the rest wait and replay the recorded answer.
// Without this, a client that reconnects while its previous (severed)
// crawl is still winding down server-side could race it to the same
// journal miss and be charged twice for one logical query.
func (s *Server) Answer(ctx context.Context, q dataspace.Query) (hiddendb.Result, error) {
	key := q.Key()
	for {
		if res, ok := s.journal.Lookup(q); ok {
			s.mu.Lock()
			s.replays++
			s.mu.Unlock()
			return res, nil
		}
		s.mu.Lock()
		if done, ok := s.inflight[key]; ok {
			// Another caller is paying for this query right now; wait for
			// its verdict and re-check the journal.
			s.mu.Unlock()
			select {
			case <-done:
				continue
			case <-ctx.Done():
				return hiddendb.Result{}, ctx.Err()
			}
		}
		done := make(chan struct{})
		s.inflight[key] = done
		s.mu.Unlock()

		res, err := s.inner.Answer(ctx, q)
		if err == nil {
			s.journal.Record(q, res)
		}
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		close(done)
		return res, err
	}
}

// AnswerBatch implements hiddendb.Server with the sequential contract:
// journaled queries are replayed for free, the remaining ones are forwarded
// to the inner server as a single (deduplicated) batch and recorded. A
// query repeated within the batch is a replay, exactly as if the batch had
// been issued query by query.
func (s *Server) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]hiddendb.Result, error) {
	forward := func(miss []dataspace.Query) ([]hiddendb.Result, error) {
		return s.inner.AnswerBatch(ctx, miss)
	}
	out, replays, err := hiddendb.MemoBatch(qs, s.journal.Lookup, forward, s.journal.Record)
	if replays > 0 {
		s.mu.Lock()
		s.replays += replays
		s.mu.Unlock()
	}
	return out, err
}

// K implements hiddendb.Server.
func (s *Server) K() int { return s.inner.K() }

// Schema implements hiddendb.Server.
func (s *Server) Schema() *dataspace.Schema { return s.inner.Schema() }

// Replays returns how many queries were answered from the journal.
func (s *Server) Replays() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replays
}
