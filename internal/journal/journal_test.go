package journal

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

func testDataset(t *testing.T) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          3000,
		CatDomains: []int{4, 9},
		NumRanges:  [][2]int64{{0, 5000}},
		Skew:       0.6,
		DupRate:    0.05,
	}, 23)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRecordLookup(t *testing.T) {
	ds := testDataset(t)
	j := New(ds.Schema, 16)
	q := dataspace.UniverseQuery(ds.Schema).WithValue(0, 2)
	if _, ok := j.Lookup(q); ok {
		t.Fatal("empty journal answered a query")
	}
	res := hiddendb.Result{Overflow: true, Tuples: ds.Tuples[:3]}
	j.Record(q, res)
	got, ok := j.Lookup(q)
	if !ok || got.Overflow != true || len(got.Tuples) != 3 {
		t.Fatal("recorded entry not returned")
	}
	// Re-recording is a no-op.
	j.Record(q, hiddendb.Result{})
	got, _ = j.Lookup(q)
	if len(got.Tuples) != 3 {
		t.Fatal("re-record overwrote the entry")
	}
	if j.Len() != 1 {
		t.Fatalf("Len = %d, want 1", j.Len())
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	ds := testDataset(t)
	srv, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	j := New(ds.Schema, 16)
	wrapped, err := Wrap(srv, j)
	if err != nil {
		t.Fatal(err)
	}
	// Run a full crawl to populate the journal with a realistic mix of
	// queries (wildcards, pins, ranges, ±inf extents).
	if _, err := (core.Hybrid{}).Crawl(context.Background(), wrapped, nil); err != nil {
		t.Fatal(err)
	}
	if j.Len() == 0 {
		t.Fatal("crawl recorded nothing")
	}

	var buf bytes.Buffer
	if _, err := j.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != j.Len() || back.K() != 16 {
		t.Fatalf("round trip: len %d->%d k=%d", j.Len(), back.Len(), back.K())
	}
	if back.Schema().String() != ds.Schema.String() {
		t.Fatal("schema lost in round trip")
	}
	// Every original entry must replay identically.
	for _, key := range j.order {
		q, err := queryFromKey(ds.Schema, key)
		if err != nil {
			t.Fatalf("key %q: %v", key, err)
		}
		want := j.entries[key]
		got, ok := back.Lookup(q)
		if !ok {
			t.Fatalf("entry %q missing after round trip", key)
		}
		if got.Overflow != want.Overflow || !got.Tuples.EqualMultiset(want.Tuples) {
			t.Fatalf("entry %q differs after round trip", key)
		}
	}
}

func TestReadFromErrors(t *testing.T) {
	if _, err := ReadFrom(strings.NewReader("garbage")); err == nil {
		t.Error("garbage journal accepted")
	}
	// Truncated: header promises entries that never come.
	ds := testDataset(t)
	j := New(ds.Schema, 8)
	j.Record(dataspace.UniverseQuery(ds.Schema), hiddendb.Result{})
	var buf bytes.Buffer
	if _, err := j.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.String()
	trunc = trunc[:strings.Index(trunc, "\n")+1] // keep only the header
	if _, err := ReadFrom(strings.NewReader(trunc)); err == nil {
		t.Error("truncated journal accepted")
	}
}

func TestWrapValidation(t *testing.T) {
	ds := testDataset(t)
	srv, _ := hiddendb.NewLocal(ds.Schema, ds.Tuples, 16, 1)
	if _, err := Wrap(srv, New(ds.Schema, 8)); err == nil {
		t.Error("k mismatch accepted")
	}
	other := dataspace.MustSchema([]dataspace.Attribute{{Name: "X", Kind: dataspace.Numeric}})
	if _, err := Wrap(srv, New(other, 16)); err == nil {
		t.Error("schema mismatch accepted")
	}
}

// TestResumeAfterQuota is the package's reason to exist: a crawl that dies
// on a query quota resumes from its journal and completes, paying in total
// exactly what an uninterrupted crawl pays.
func TestResumeAfterQuota(t *testing.T) {
	ds := testDataset(t)
	k := 16

	// Reference: uninterrupted cost.
	ref, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, 42)
	if err != nil {
		t.Fatal(err)
	}
	full, err := (core.Hybrid{}).Crawl(context.Background(), ref, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted runs: 40 queries per "day".
	journal := New(ds.Schema, k)
	budget := 40
	sessions := 0
	for {
		sessions++
		if sessions > 100 {
			t.Fatal("resume did not converge")
		}
		srv, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, 42)
		if err != nil {
			t.Fatal(err)
		}
		quotaed := hiddendb.NewQuota(srv, budget)
		wrapped, err := Wrap(quotaed, journal)
		if err != nil {
			t.Fatal(err)
		}

		// Persist/restore between sessions, as a real crawler would.
		var buf bytes.Buffer
		if _, err := journal.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		journal, err = ReadFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		wrapped, err = Wrap(quotaed, journal)
		if err != nil {
			t.Fatal(err)
		}

		res, err := (core.Hybrid{}).Crawl(context.Background(), wrapped, nil)
		if errors.Is(err, hiddendb.ErrQuotaExceeded) {
			continue // next day, fresh budget
		}
		if err != nil {
			t.Fatal(err)
		}
		if !res.Tuples.EqualMultiset(ds.Tuples) {
			t.Fatal("resumed crawl incomplete")
		}
		break
	}

	if sessions < 2 {
		t.Fatalf("test did not exercise resume (budget too big? full cost %d)", full.Queries)
	}
	// Total paid queries across all sessions == journal size == the
	// uninterrupted cost (determinism makes the replay exact).
	if journal.Len() != full.Queries {
		t.Fatalf("total paid queries %d != uninterrupted cost %d", journal.Len(), full.Queries)
	}
	t.Logf("completed in %d sessions of %d queries (total %d)", sessions, budget, journal.Len())
}

func TestReplaysCounted(t *testing.T) {
	ds := testDataset(t)
	srv, _ := hiddendb.NewLocal(ds.Schema, ds.Tuples, 16, 42)
	j := New(ds.Schema, 16)
	w1, err := Wrap(srv, j)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (core.Hybrid{}).Crawl(context.Background(), w1, nil); err != nil {
		t.Fatal(err)
	}
	paid := j.Len()

	// Second run over the same journal replays everything.
	w2, err := Wrap(srv, j)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (core.Hybrid{}).Crawl(context.Background(), w2, nil); err != nil {
		t.Fatal(err)
	}
	if j.Len() != paid {
		t.Fatalf("second run paid %d extra queries", j.Len()-paid)
	}
	if w2.Replays() == 0 {
		t.Fatal("second run reported no replays")
	}
}
