package journal

import (
	"context"
	"testing"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// TestAnswerBatchReplaysAndRecords: journaled queries in a batch are free
// replays, new ones reach the inner server exactly once (duplicates within
// the batch included) and are recorded for the next session.
func TestAnswerBatchReplaysAndRecords(t *testing.T) {
	ds := testDataset(t)
	local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	counting := hiddendb.NewCounting(local)
	j := New(ds.Schema, 16)
	srv, err := Wrap(counting, j)
	if err != nil {
		t.Fatal(err)
	}

	u := dataspace.UniverseQuery(ds.Schema)
	a := u.WithValue(0, 1)
	b := u.WithValue(0, 2)
	c := u.WithValue(0, 3)

	// Pay for a up front.
	if _, err := srv.Answer(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	if counting.Queries() != 1 {
		t.Fatalf("setup issued %d queries", counting.Queries())
	}

	// Batch: one replay (a), two new (b, c), one in-batch duplicate (b).
	res, err := srv.AnswerBatch(context.Background(), []dataspace.Query{a, b, c, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("answered %d of 4", len(res))
	}
	if counting.Queries() != 3 {
		t.Fatalf("inner saw %d queries, want 3 (a replayed, b deduped)", counting.Queries())
	}
	if srv.Replays() != 2 {
		t.Fatalf("Replays = %d, want 2 (a, and the duplicate b)", srv.Replays())
	}
	if j.Len() != 3 {
		t.Fatalf("journal has %d entries, want 3", j.Len())
	}
	// The duplicate got the same response as its first occurrence.
	if res[1].Overflow != res[3].Overflow || len(res[1].Tuples) != len(res[3].Tuples) {
		t.Fatal("duplicate answered differently within the batch")
	}

	// Re-running the batch is now entirely free.
	if _, err := srv.AnswerBatch(context.Background(), []dataspace.Query{a, b, c}); err != nil {
		t.Fatal(err)
	}
	if counting.Queries() != 3 {
		t.Fatalf("replayed batch reached the server: %d queries", counting.Queries())
	}
}

// TestAnswerBatchQuotaPrefix: the journal wrapper preserves the
// prefix-on-error contract when the inner server's budget runs out, and a
// resumed batch replays the paid prefix for free.
func TestAnswerBatchQuotaPrefix(t *testing.T) {
	ds := testDataset(t)
	local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	j := New(ds.Schema, 16)
	srv, err := Wrap(hiddendb.NewQuota(local, 2), j)
	if err != nil {
		t.Fatal(err)
	}
	u := dataspace.UniverseQuery(ds.Schema)
	qs := []dataspace.Query{u.WithValue(0, 1), u.WithValue(0, 2), u.WithValue(0, 3), u.WithValue(0, 4)}
	res, err := srv.AnswerBatch(context.Background(), qs)
	if err == nil {
		t.Fatal("quota not surfaced")
	}
	if len(res) != 2 {
		t.Fatalf("answered %d, want the 2-query budget", len(res))
	}
	if j.Len() != 2 {
		t.Fatalf("journal recorded %d, want 2", j.Len())
	}
	// Fresh budget + same journal: only the unpaid queries cost anything.
	counting := hiddendb.NewCounting(local)
	srv2, err := Wrap(counting, j)
	if err != nil {
		t.Fatal(err)
	}
	res, err = srv2.AnswerBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("resumed batch answered %d of 4", len(res))
	}
	if counting.Queries() != 2 {
		t.Fatalf("resumed batch paid %d queries, want 2", counting.Queries())
	}
}
