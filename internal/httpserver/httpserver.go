// Package httpserver exposes a hiddendb.Server over HTTP, emulating a real
// hidden database's web interface: clients learn the search form from
// GET /schema and submit form queries via POST /query, or a whole batch of
// them via POST /batch — B queries for one round trip, answered exactly as
// if they had been submitted to /query one by one. The paper's problem
// setup maps one-to-one onto the endpoints — a response carries at most k
// tuples plus the overflow signal, and repeating a query returns the same
// response.
//
// The handler can also enforce a per-client query quota, modelling the
// per-IP limits that motivate the paper's cost metric. The quota is counted
// in queries, not requests, so batching cannot stretch a budget: a batch
// that would overrun the remaining budget is answered up to the budget and
// flagged, mirroring hiddendb.Quota's sequential semantics.
package httpserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"hidb/internal/hiddendb"
	"hidb/internal/wire"
)

// Handler serves a hidden database over HTTP. It implements http.Handler.
type Handler struct {
	srv hiddendb.Server

	mu sync.Mutex
	// queries counts the form queries served (across all clients).
	queries int
	// requests counts the query-carrying HTTP round trips served (/query
	// and /batch alike) — the denominator of the batching win.
	requests int
	// quota, when positive, caps the number of queries served; further
	// requests get 429.
	quota int
}

// Option configures a Handler.
type Option func(*Handler)

// WithQuota caps the number of /query requests the handler will serve.
func WithQuota(n int) Option {
	return func(h *Handler) { h.quota = n }
}

// New builds a handler over the given server.
func New(srv hiddendb.Server, opts ...Option) *Handler {
	h := &Handler{srv: srv}
	for _, o := range opts {
		o(h)
	}
	return h
}

// Queries returns the number of form queries served so far.
func (h *Handler) Queries() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.queries
}

// Requests returns the number of query-carrying HTTP round trips served so
// far (/query and /batch requests alike). With batching, Requests grows
// ~B× slower than Queries.
func (h *Handler) Requests() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.requests
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/schema" && r.Method == http.MethodGet:
		h.handleSchema(w)
	case r.URL.Path == "/query" && r.Method == http.MethodPost:
		h.handleQuery(w, r)
	case r.URL.Path == "/batch" && r.Method == http.MethodPost:
		h.handleBatch(w, r)
	case r.URL.Path == "/healthz" && r.Method == http.MethodGet:
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func (h *Handler) handleSchema(w http.ResponseWriter) {
	writeJSON(w, wire.EncodeSchema(h.srv.Schema(), h.srv.K()))
}

func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	var msg wire.QueryMsg
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&msg); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	q, err := wire.DecodeQuery(h.srv.Schema(), msg)
	if err != nil {
		http.Error(w, "bad query: "+err.Error(), http.StatusBadRequest)
		return
	}

	h.mu.Lock()
	h.requests++
	if h.quota > 0 && h.queries >= h.quota {
		h.mu.Unlock()
		http.Error(w, "query quota exceeded", http.StatusTooManyRequests)
		return
	}
	h.queries++
	h.mu.Unlock()

	res, err := h.srv.Answer(q)
	if err != nil {
		// The query was not served: refund it, and surface a wrapped
		// server's own budget as 429 — the same typed signal /batch gives —
		// so the two endpoints stay interchangeable.
		h.mu.Lock()
		h.queries--
		h.mu.Unlock()
		if errors.Is(err, hiddendb.ErrQuotaExceeded) {
			http.Error(w, "query quota exceeded", http.StatusTooManyRequests)
			return
		}
		http.Error(w, "server error: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, wire.EncodeResult(res))
}

// handleBatch answers B form queries in one round trip, with exactly the
// per-query semantics of /query: the handler's quota admits the longest
// affordable prefix, and a batch cut short (by the handler's quota or the
// inner server's) reports the answered prefix plus the quotaExceeded flag.
func (h *Handler) handleBatch(w http.ResponseWriter, r *http.Request) {
	var msg wire.BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&msg); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	qs, err := wire.DecodeBatchRequest(h.srv.Schema(), msg)
	if err != nil {
		http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(qs) == 0 {
		http.Error(w, "bad batch: empty", http.StatusBadRequest)
		return
	}

	h.mu.Lock()
	h.requests++
	admitted := len(qs)
	if h.quota > 0 {
		remaining := h.quota - h.queries
		if remaining <= 0 {
			h.mu.Unlock()
			http.Error(w, "query quota exceeded", http.StatusTooManyRequests)
			return
		}
		if admitted > remaining {
			admitted = remaining
		}
	}
	h.queries += admitted // reserved; unanswered queries are refunded below
	h.mu.Unlock()

	res, err := h.srv.AnswerBatch(qs[:admitted])
	if err != nil && !errors.Is(err, hiddendb.ErrQuotaExceeded) {
		// A 500 delivers no responses at all, so none of the admitted
		// queries were served — refund the whole reservation.
		h.mu.Lock()
		h.queries -= admitted
		h.mu.Unlock()
		http.Error(w, "server error: "+err.Error(), http.StatusInternalServerError)
		return
	}
	if n := admitted - len(res); n > 0 {
		h.mu.Lock()
		h.queries -= n
		h.mu.Unlock()
	}
	quotaHit := admitted < len(qs) || errors.Is(err, hiddendb.ErrQuotaExceeded)
	writeJSON(w, wire.EncodeBatchResponse(res, quotaHit))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do than drop the
		// connection, which the encoder error already implies.
		return
	}
}
