// Package httpserver exposes a hiddendb.Server over HTTP, emulating a real
// hidden database's web interface: clients learn the search form from
// GET /schema and submit form queries via POST /query. The paper's problem
// setup maps one-to-one onto the endpoints — a response carries at most k
// tuples plus the overflow signal, and repeating a query returns the same
// response.
//
// The handler can also enforce a per-client query quota, modelling the
// per-IP limits that motivate the paper's cost metric.
package httpserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"hidb/internal/hiddendb"
	"hidb/internal/wire"
)

// Handler serves a hidden database over HTTP. It implements http.Handler.
type Handler struct {
	srv hiddendb.Server

	mu sync.Mutex
	// queries counts the form queries served (across all clients).
	queries int
	// quota, when positive, caps the number of /query requests served;
	// further requests get 429.
	quota int
}

// Option configures a Handler.
type Option func(*Handler)

// WithQuota caps the number of /query requests the handler will serve.
func WithQuota(n int) Option {
	return func(h *Handler) { h.quota = n }
}

// New builds a handler over the given server.
func New(srv hiddendb.Server, opts ...Option) *Handler {
	h := &Handler{srv: srv}
	for _, o := range opts {
		o(h)
	}
	return h
}

// Queries returns the number of form queries served so far.
func (h *Handler) Queries() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.queries
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/schema" && r.Method == http.MethodGet:
		h.handleSchema(w)
	case r.URL.Path == "/query" && r.Method == http.MethodPost:
		h.handleQuery(w, r)
	case r.URL.Path == "/healthz" && r.Method == http.MethodGet:
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func (h *Handler) handleSchema(w http.ResponseWriter) {
	writeJSON(w, wire.EncodeSchema(h.srv.Schema(), h.srv.K()))
}

func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	var msg wire.QueryMsg
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&msg); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	q, err := wire.DecodeQuery(h.srv.Schema(), msg)
	if err != nil {
		http.Error(w, "bad query: "+err.Error(), http.StatusBadRequest)
		return
	}

	h.mu.Lock()
	if h.quota > 0 && h.queries >= h.quota {
		h.mu.Unlock()
		http.Error(w, "query quota exceeded", http.StatusTooManyRequests)
		return
	}
	h.queries++
	h.mu.Unlock()

	res, err := h.srv.Answer(q)
	if err != nil {
		http.Error(w, "server error: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, wire.EncodeResult(res))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do than drop the
		// connection, which the encoder error already implies.
		return
	}
}
