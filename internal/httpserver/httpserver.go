// Package httpserver exposes a hiddendb.Server over HTTP, emulating a real
// hidden database's web interface: clients learn the search form from
// GET /schema and submit form queries via POST /query, or a whole batch of
// them via POST /batch — B queries for one round trip, answered exactly as
// if they had been submitted to /query one by one. The paper's problem
// setup maps one-to-one onto the endpoints — a response carries at most k
// tuples plus the overflow signal, and repeating a query returns the same
// response.
//
// # Per-client sessions
//
// The paper's cost model is per-client: real sites enforce their query
// budgets per IP or API key. With WithSessions, the handler resolves every
// query-carrying request to the caller's session — keyed by the API token
// in the standard "Authorization: Bearer <token>" header (the Token field
// of the /batch and /crawl envelopes is a body-level fallback; requests
// without a token share the anonymous session). Each session owns a
// private quota, memo table, and journal over the one shared store (see
// the session package), so:
//
//   - 429 and the quotaExceeded batch flag are per-token: one client
//     exhausting its budget never blocks another;
//   - query counters are per-token, and a query the session has already
//     paid for (memo hit or journal replay) is answered free of budget;
//   - with a journal directory, a session evicted by the TTL — the budget
//     window — persists its journal and reloads it when the token returns,
//     so a crawl resumes across budgets paying only for new queries.
//
// GET /stats reports the aggregate and per-session counters as a
// wire.StatsMsg, plus the store's query-planner counters (plan-cache hit
// rate and per-access-path execution counts) when the backing server
// exposes them. GET /metrics exposes the same introspection — plus the
// QoS counters: quota 429s, shed 503s by reason, the /batch width
// histogram, the in-flight depth — in the Prometheus text format, so a
// scraper needs no custom exporter (see metrics.go for the series). Both
// endpoints stay served while draining: observability must outlive
// admission.
//
// # The /crawl stream
//
// POST /crawl (session mode's companion endpoint; body: wire.CrawlRequest)
// runs the requested crawling algorithm server-side against the caller's
// session and streams progress as NDJSON (Content-Type
// application/x-ndjson): one wire.CrawlEvent line per extracted tuple —
// the tuple plus the session's paid query count at that moment — and a
// single terminal line with Done set summarizing the crawl. A failure
// mid-crawl (typically the session's budget running dry) is reported on
// the terminal line, since the HTTP status is long committed; the queries
// already paid are journaled, so re-POSTing /crawl after the budget window
// resets fast-forwards for free and finishes the job.
//
// The crawl runs under the request's context: a client that disconnects
// mid-stream cancels its own crawl — only its session's in-flight work,
// never another token's — instead of leaving the server crawling for
// nobody. Everything answered before the hang-up is journaled, so the
// client's return costs only the queries that never ran.
//
// CrawlRequest.Skip is the resume cursor: a reconnecting client states how
// many tuples it already received, and the new stream suppresses that
// prefix — the journal replays the paid queries for free, the wire carries
// only tuples the client has not seen. Cursor resumption relies on the
// deterministic output order of the (same) algorithm.
//
// Every handler honours its request context: cancelled requests stop
// between queries, and a server Shutdown with a cancelled base context
// drains promptly even mid-/crawl.
//
// # Legacy single-quota mode
//
// Without sessions, the handler can still enforce one global quota,
// modelling the per-IP limits that motivate the paper's cost metric. The
// quota is counted in queries, not requests, so batching cannot stretch a
// budget: it caps the total queries served across /query and /batch alike,
// and a batch that would overrun the remaining budget is answered up to
// the budget and flagged, mirroring hiddendb.Quota's sequential semantics.
// On a mid-batch server failure the already-answered prefix — which the
// wrapped server has paid for — is delivered with the error in
// wire.BatchResponse.Error rather than discarded.
package httpserver

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"hidb/internal/core"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/index"
	"hidb/internal/session"
	"hidb/internal/wire"
)

// Handler serves a hidden database over HTTP. It implements http.Handler.
type Handler struct {
	srv hiddendb.Server
	// table holds the per-token sessions; nil in legacy single-quota mode.
	table *session.Table
	// maxInFlight, when positive, sheds query-carrying requests beyond
	// this concurrency with 503 + Retry-After (see WithShedding).
	maxInFlight int
	// shedding also turns away new tokens when the session table is full,
	// instead of evicting an established client's session.
	shedding bool
	// draining flips when Drain is called: every new query-carrying
	// request is shed so in-flight ones can finish before Shutdown.
	draining atomic.Bool

	// QoS counters for GET /metrics, atomics so the scrape path never
	// contends with the serving path.
	quota429     atomic.Int64 // 429 responses (legacy and per-session quotas alike)
	shedCapacity atomic.Int64 // 503s from the in-flight bound
	shedDraining atomic.Int64 // 503s from drain mode
	shedFull     atomic.Int64 // 503s turning unseen tokens off a full session table
	// batchWidths histograms the /batch request widths into
	// batchWidthBounds buckets (the last counts widths beyond every
	// bound, Prometheus's +Inf); batchSum and batchCount carry the
	// histogram's _sum and _count series.
	batchWidths [len(batchWidthBounds) + 1]atomic.Int64
	batchSum    atomic.Int64
	batchCount  atomic.Int64

	mu sync.Mutex
	// inFlight counts the query-carrying requests currently being served.
	inFlight int
	// queries counts the form queries served on the legacy (sessionless)
	// paths; with sessions, per-token counts live in the table and
	// Queries() aggregates both.
	queries int
	// requests counts the query-carrying HTTP round trips served (/query,
	// /batch and /crawl alike) — the denominator of the batching win.
	requests int
	// quota, when positive, caps the number of queries served in legacy
	// mode; further requests get 429.
	quota int
}

// Option configures a Handler.
type Option func(*Handler)

// WithQuota caps the total number of queries the handler will serve,
// across /query and /batch alike (a batch debits one unit per query, so
// batching cannot stretch the budget). Mutually exclusive with
// WithSessions — per-client budgets belong in session.Config.Quota.
func WithQuota(n int) Option {
	return func(h *Handler) { h.quota = n }
}

// WithSessions switches the handler to per-client sessions: every /query,
// /batch and /crawl resolves through the caller's token-keyed session
// (quota, memo, journal — see the session package and the package doc).
func WithSessions(cfg session.Config) Option {
	return func(h *Handler) { h.table = session.NewTable(h.srv, cfg) }
}

// WithShedding bounds the query-carrying requests (/query, /batch,
// /crawl) served concurrently: beyond maxInFlight the handler answers
// 503 with a Retry-After hint instead of queueing unboundedly — an
// overloaded real site does the same, and a retry-enabled client backs
// off and tries again for free. In session mode it also turns away
// tokens it has never seen while the session table is full, protecting
// established clients' sessions (and their journals) from eviction
// churn. maxInFlight <= 0 keeps requests unbounded but still enables
// the table-full protection.
func WithShedding(maxInFlight int) Option {
	return func(h *Handler) {
		h.maxInFlight = maxInFlight
		h.shedding = true
	}
}

// New builds a handler over the given server. Combining WithQuota and
// WithSessions is a configuration error and panics.
func New(srv hiddendb.Server, opts ...Option) *Handler {
	h := &Handler{srv: srv}
	for _, o := range opts {
		o(h)
	}
	if h.table != nil && h.quota > 0 {
		panic("httpserver: WithQuota and WithSessions are mutually exclusive; set session.Config.Quota instead")
	}
	return h
}

// Queries returns the number of paid form queries served so far, across
// all clients (in session mode: live and evicted sessions plus any legacy
// serving; memo hits and journal replays are free).
func (h *Handler) Queries() int {
	h.mu.Lock()
	n := h.queries
	h.mu.Unlock()
	if h.table != nil {
		n += h.table.TotalQueries()
	}
	return n
}

// Requests returns the number of query-carrying HTTP round trips served so
// far (/query, /batch and /crawl requests alike). With batching, Requests
// grows ~B× slower than Queries.
func (h *Handler) Requests() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.requests
}

// Sessions exposes the per-token session table, nil in legacy mode.
func (h *Handler) Sessions() *session.Table { return h.table }

// Drain puts the handler into drain mode: every new query-carrying
// request is shed with 503 + Retry-After while requests already in
// flight run to completion, and /healthz reports not-ready so load
// balancers stop routing here. Call it before http.Server.Shutdown for
// a clean, bounded handover; draining is one-way.
func (h *Handler) Drain() { h.draining.Store(true) }

// Draining reports whether Drain has been called.
func (h *Handler) Draining() bool { return h.draining.Load() }

// InFlight returns the query-carrying requests currently being served.
func (h *Handler) InFlight() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.inFlight
}

// noteRequest counts one query-carrying round trip.
func (h *Handler) noteRequest() {
	h.mu.Lock()
	h.requests++
	h.mu.Unlock()
}

// shedReason distinguishes why a request was turned away: the Retry-After
// hint, the response body and the /metrics counter all depend on it.
type shedReason int

const (
	// shedCapacity is the transient in-flight bound: the overload clears
	// as soon as a slot frees, so the hint is short.
	shedCapacity shedReason = iota
	// shedDraining is the one-way drain before shutdown: this handler
	// will never be ready again at this address, so the hint tells the
	// client to stay away long enough for a restart (or a load-balancer
	// flip) rather than hammering a dying process.
	shedDraining
	// shedTableFull turns an unseen token off a full session table; like
	// capacity it clears when a session expires, so the hint stays short.
	shedTableFull
)

// drainRetryAfterSeconds is the Retry-After hint on drain sheds. Orders of
// magnitude above the capacity hint: retrying a draining server within a
// second is wasted load, since drain is one-way.
const drainRetryAfterSeconds = 30

// shed rejects a request the server cannot take on right now. 503 with
// Retry-After is the transient-overload signal: a retrying client backs
// off at least that long and loses nothing — the queries it will re-ask
// were either never served (paid once, later) or journaled (replayed
// free). The hint and body distinguish transient overload (retry in a
// second) from a one-way drain (come back after the restart).
func (h *Handler) shed(w http.ResponseWriter, reason shedReason) {
	hint, msg := "1", "server is at capacity"
	switch reason {
	case shedCapacity:
		h.shedCapacity.Add(1)
	case shedDraining:
		h.shedDraining.Add(1)
		hint, msg = strconv.Itoa(drainRetryAfterSeconds), "server is draining"
	case shedTableFull:
		h.shedFull.Add(1)
		msg = "session table full"
	}
	w.Header().Set("Retry-After", hint)
	http.Error(w, msg, http.StatusServiceUnavailable)
}

// reject429 answers a quota rejection, counting it for /metrics.
func (h *Handler) reject429(w http.ResponseWriter) {
	h.quota429.Add(1)
	http.Error(w, "query quota exceeded", http.StatusTooManyRequests)
}

// batchWidthBounds are the histogram bucket upper bounds for /batch
// request widths (each bucket is cumulative, Prometheus-style).
var batchWidthBounds = [...]int{1, 2, 4, 8, 16, 32, 64, 128}

// noteBatchWidth records one /batch request of n queries.
func (h *Handler) noteBatchWidth(n int) {
	for i, le := range batchWidthBounds {
		if n <= le {
			h.batchWidths[i].Add(1)
		}
	}
	h.batchWidths[len(batchWidthBounds)].Add(1) // +Inf
	h.batchSum.Add(int64(n))
	h.batchCount.Add(1)
}

// admit gates one query-carrying request through the overload controls:
// a draining handler sheds everything new, and with WithShedding the
// in-flight depth is bounded. On admission the returned release must be
// deferred; ok=false means the 503 is already written.
func (h *Handler) admit(w http.ResponseWriter) (release func(), ok bool) {
	if h.draining.Load() {
		h.shed(w, shedDraining)
		return nil, false
	}
	h.mu.Lock()
	if h.maxInFlight > 0 && h.inFlight >= h.maxInFlight {
		h.mu.Unlock()
		h.shed(w, shedCapacity)
		return nil, false
	}
	h.inFlight++
	h.mu.Unlock()
	return func() {
		h.mu.Lock()
		h.inFlight--
		h.mu.Unlock()
	}, true
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/schema" && r.Method == http.MethodGet:
		h.handleSchema(w)
	case r.URL.Path == "/query" && r.Method == http.MethodPost:
		h.handleQuery(w, r)
	case r.URL.Path == "/batch" && r.Method == http.MethodPost:
		h.handleBatch(w, r)
	case r.URL.Path == "/crawl" && r.Method == http.MethodPost:
		h.handleCrawl(w, r)
	case r.URL.Path == "/stats" && r.Method == http.MethodGet:
		h.handleStats(w)
	case r.URL.Path == "/metrics" && r.Method == http.MethodGet:
		h.handleMetrics(w)
	case r.URL.Path == "/healthz" && r.Method == http.MethodGet:
		h.handleHealthz(w)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

// handleHealthz reports liveness and readiness. The process serving the
// response is by definition live; readiness flips off when the handler
// is draining, with the 503 status carrying the same signal to probes
// that only read status codes. The drain flag is loaded exactly once —
// deriving Ready and Draining from two loads would let a drain flipping
// between them report the contradictory Ready && Draining.
func (h *Handler) handleHealthz(w http.ResponseWriter) {
	draining := h.draining.Load()
	h.mu.Lock()
	inFlight := h.inFlight
	h.mu.Unlock()
	status := struct {
		Live     bool `json:"live"`
		Ready    bool `json:"ready"`
		Draining bool `json:"draining"`
		InFlight int  `json:"inFlight"`
		// Sessions is a pointer so "session table enabled, zero live
		// sessions" serializes as "sessions":0 instead of vanishing into
		// the same absence that means "sessions disabled".
		Sessions *int `json:"sessions,omitempty"`
	}{
		Live:     true,
		Ready:    !draining,
		Draining: draining,
		InFlight: inFlight,
	}
	if h.table != nil {
		n := h.table.Len()
		status.Sessions = &n
	}
	w.Header().Set("Content-Type", "application/json")
	if !status.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(status)
}

func (h *Handler) handleSchema(w http.ResponseWriter) {
	writeJSON(w, wire.EncodeSchema(h.srv.Schema(), h.srv.K()))
}

// resolveSession returns the caller's session. The token comes from the
// Authorization: Bearer header, falling back to the request body's Token
// field; an empty token is the shared anonymous session.
func (h *Handler) resolveSession(w http.ResponseWriter, r *http.Request, bodyToken string) (*session.Session, bool) {
	token := wire.Bearer(r.Header)
	if token == "" {
		token = bodyToken
	}
	// A shedding server at its session cap turns new tokens away rather
	// than evicting an established client's session (and journal) to make
	// room — churn would silently cost evicted clients their replay state.
	if h.shedding && h.table.Full() && !h.table.Has(token) {
		h.shed(w, shedTableFull)
		return nil, false
	}
	sess, err := h.table.Get(token)
	if err != nil {
		http.Error(w, "session error: "+err.Error(), http.StatusInternalServerError)
		return nil, false
	}
	return sess, true
}

func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	release, ok := h.admit(w)
	if !ok {
		return
	}
	defer release()
	var msg wire.QueryMsg
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&msg); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	q, err := wire.DecodeQuery(h.srv.Schema(), msg)
	if err != nil {
		http.Error(w, "bad query: "+err.Error(), http.StatusBadRequest)
		return
	}

	if h.table != nil {
		h.noteRequest()
		sess, ok := h.resolveSession(w, r, "")
		if !ok {
			return
		}
		res, err := sess.Server().Answer(r.Context(), q)
		switch {
		case errors.Is(err, hiddendb.ErrQuotaExceeded):
			h.reject429(w)
		case err != nil:
			http.Error(w, "server error: "+err.Error(), http.StatusInternalServerError)
		default:
			writeJSON(w, wire.EncodeResult(res))
		}
		return
	}

	h.mu.Lock()
	h.requests++
	if h.quota > 0 && h.queries >= h.quota {
		h.mu.Unlock()
		h.reject429(w)
		return
	}
	h.queries++
	h.mu.Unlock()

	res, err := h.srv.Answer(r.Context(), q)
	if err != nil {
		// The query was not served: refund it, and surface a wrapped
		// server's own budget as 429 — the same typed signal /batch gives —
		// so the two endpoints stay interchangeable.
		h.mu.Lock()
		h.queries--
		h.mu.Unlock()
		if errors.Is(err, hiddendb.ErrQuotaExceeded) {
			h.reject429(w)
			return
		}
		http.Error(w, "server error: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, wire.EncodeResult(res))
}

// handleBatch answers B form queries in one round trip, with exactly the
// per-query semantics of /query: the caller's quota admits the longest
// affordable prefix, and a batch cut short (by quota or by a server
// failure) reports the answered prefix — which was paid for and must not
// be discarded — plus the quotaExceeded flag or the error, respectively.
func (h *Handler) handleBatch(w http.ResponseWriter, r *http.Request) {
	release, ok := h.admit(w)
	if !ok {
		return
	}
	defer release()
	var msg wire.BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&msg); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	qs, err := wire.DecodeBatchRequest(h.srv.Schema(), msg)
	if err != nil {
		http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(qs) == 0 {
		http.Error(w, "bad batch: empty", http.StatusBadRequest)
		return
	}
	h.noteBatchWidth(len(qs))

	if h.table != nil {
		h.noteRequest()
		sess, ok := h.resolveSession(w, r, msg.Token)
		if !ok {
			return
		}
		res, err := sess.Server().AnswerBatch(r.Context(), qs)
		h.writeBatch(w, qs, res, err)
		return
	}

	h.mu.Lock()
	h.requests++
	admitted := len(qs)
	if h.quota > 0 {
		remaining := h.quota - h.queries
		if remaining <= 0 {
			h.mu.Unlock()
			h.reject429(w)
			return
		}
		if admitted > remaining {
			admitted = remaining
		}
	}
	h.queries += admitted // reserved; unanswered queries are refunded below
	h.mu.Unlock()

	res, err := h.srv.AnswerBatch(r.Context(), qs[:admitted])
	// Per the Server contract, res is the answered prefix: those queries
	// were served (and counted by any wrapped Counting/Quota decorator),
	// whatever the error. Refund only the queries beyond the prefix, so
	// the handler's counter can never disagree with the wrapped server's.
	if n := admitted - len(res); n > 0 {
		h.mu.Lock()
		h.queries -= n
		h.mu.Unlock()
	}
	if err != nil && !errors.Is(err, hiddendb.ErrQuotaExceeded) {
		if len(res) == 0 {
			// Nothing was served: a plain 500 keeps old clients working.
			http.Error(w, "server error: "+err.Error(), http.StatusInternalServerError)
			return
		}
		// Deliver the paid prefix with the error signal instead of
		// discarding responses the inner server already paid for.
		out := wire.EncodeBatchResponse(res, admitted < len(qs))
		out.Error = err.Error()
		writeJSON(w, out)
		return
	}
	quotaHit := admitted < len(qs) || errors.Is(err, hiddendb.ErrQuotaExceeded)
	writeJSON(w, wire.EncodeBatchResponse(res, quotaHit))
}

// writeBatch encodes a session-mode batch outcome: the answered prefix
// plus the quota flag or error signal, with the contract's 429 for a batch
// that could not start at all.
func (h *Handler) writeBatch(w http.ResponseWriter, qs []dataspace.Query, res []hiddendb.Result, err error) {
	quotaHit := errors.Is(err, hiddendb.ErrQuotaExceeded)
	if err != nil && len(res) == 0 {
		if quotaHit {
			h.reject429(w)
		} else {
			http.Error(w, "server error: "+err.Error(), http.StatusInternalServerError)
		}
		return
	}
	out := wire.EncodeBatchResponse(res, quotaHit)
	if err != nil && !quotaHit {
		out.Error = err.Error()
	}
	writeJSON(w, out)
}

// handleCrawl runs a crawling algorithm server-side against the caller's
// session and streams (tuple, paid-queries-so-far) progress as NDJSON —
// the whole extraction for the price of one round trip. The crawl runs
// under r.Context(): a disconnecting client cancels its own crawl (and
// nothing else — the shared store serves other sessions' requests under
// their own contexts). CrawlRequest.Skip suppresses the stream's first
// Skip tuples for reconnecting clients. See the package doc.
func (h *Handler) handleCrawl(w http.ResponseWriter, r *http.Request) {
	release, ok := h.admit(w)
	if !ok {
		return
	}
	defer release()
	var msg wire.CrawlRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&msg); err != nil && !errors.Is(err, io.EOF) {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if msg.Skip < 0 {
		http.Error(w, "bad request: negative skip cursor", http.StatusBadRequest)
		return
	}
	crawler := core.ForSchema(h.srv.Schema())
	if msg.Algorithm != "" {
		var err error
		crawler, err = core.ByName(msg.Algorithm)
		if err != nil {
			http.Error(w, "bad algorithm: "+err.Error(), http.StatusBadRequest)
			return
		}
	}

	h.noteRequest()
	var target hiddendb.Server
	var paid func() int // the caller's paid-query count, streamed per tuple
	var onPaid func()   // bookkeeping per paid query, before the flush
	// freeBreakdown stamps the terminal line with how many of this crawl's
	// queries were answered for free, and from where (session mode only).
	freeBreakdown := func(*wire.CrawlEvent) {}
	if h.table != nil {
		sess, ok := h.resolveSession(w, r, msg.Token)
		if !ok {
			return
		}
		target = sess.Server()
		paid = sess.Queries
		// Counter values before the crawl, so the terminal line reports this
		// crawl's deltas rather than session-lifetime totals.
		replays0, hits0 := sess.Replays(), sess.CacheHits()
		sharedHits0, sharedWaits0 := sess.SharedHits(), sess.SharedWaits()
		freeBreakdown = func(ev *wire.CrawlEvent) {
			ev.Replays = sess.Replays() - replays0
			ev.CacheHits = sess.CacheHits() - hits0
			ev.SharedHits = sess.SharedHits() - sharedHits0
			ev.SharedWaits = sess.SharedWaits() - sharedWaits0
		}
		// A crawl can outlive the session TTL while being perfectly
		// active; touching per paid query keeps the table from evicting
		// a session that is mid-extraction.
		token := sess.Token()
		onPaid = func() { h.table.Touch(token) }
	} else {
		// Legacy mode: the crawl debits the handler's one global counter
		// per query — the same check-and-reserve /query performs — so
		// concurrent requests can never overrun the quota between them.
		target = &legacyQuota{h: h, inner: h.srv}
		h.mu.Lock()
		exhausted := h.quota > 0 && h.queries >= h.quota
		h.mu.Unlock()
		if exhausted {
			h.reject429(w)
			return
		}
		served := 0
		paid = func() int { return served }
		onPaid = func() { served++ }
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		bw.Flush()
		if flusher != nil {
			flusher.Flush()
		}
	}

	// A vanished client cancels r.Context(), which aborts the crawl at
	// the next query boundary; everything answered before the hang-up is
	// journaled in the caller's session, so the work is never wasted —
	// the client replays it for free on its next attempt (and skips the
	// re-delivery with the resume cursor). Encoding errors alone are
	// ignored: the context is the disconnection signal.
	tuplesSent, toSkip := 0, msg.Skip
	opts := &core.Options{
		OnTuples: func(tuples dataspace.Bag) {
			n := paid()
			for _, t := range tuples {
				if toSkip > 0 {
					toSkip--
					continue
				}
				enc.Encode(wire.CrawlEvent{Tuple: t, Queries: n})
				tuplesSent++
			}
		},
		OnProgress: func(core.CurvePoint) {
			onPaid()
			flush()
		},
	}

	res, err := crawler.Crawl(r.Context(), target, opts)
	final := wire.CrawlEvent{Done: true, Queries: paid(), Tuples: tuplesSent, Skipped: msg.Skip - toSkip}
	final.Engine = h.engineStats()
	freeBreakdown(&final)
	if res != nil {
		final.Resolved = res.Resolved
		final.Overflowed = res.Overflowed
	}
	if err != nil {
		final.Error = err.Error()
		final.QuotaExceeded = errors.Is(err, hiddendb.ErrQuotaExceeded)
	}
	enc.Encode(final)
	flush()
}

// legacyQuota serves a sessionless /crawl through the handler's single
// global counter: each query is checked and reserved under h.mu exactly as
// /query does, so a crawl racing other requests can never overrun -quota,
// and /stats always reflects every query served. Failed queries are
// refunded, mirroring handleQuery.
type legacyQuota struct {
	h     *Handler
	inner hiddendb.Server
}

func (l *legacyQuota) Answer(ctx context.Context, q dataspace.Query) (hiddendb.Result, error) {
	l.h.mu.Lock()
	if l.h.quota > 0 && l.h.queries >= l.h.quota {
		l.h.mu.Unlock()
		return hiddendb.Result{}, hiddendb.ErrQuotaExceeded
	}
	l.h.queries++
	l.h.mu.Unlock()
	res, err := l.inner.Answer(ctx, q)
	if err != nil {
		l.h.mu.Lock()
		l.h.queries--
		l.h.mu.Unlock()
	}
	return res, err
}

// AnswerBatch loops over Answer: the server-side crawlers are sequential,
// so batching buys nothing here, and per-query reservation is what keeps
// the global counter exact under concurrency.
func (l *legacyQuota) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]hiddendb.Result, error) {
	out := make([]hiddendb.Result, 0, len(qs))
	for _, q := range qs {
		res, err := l.Answer(ctx, q)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

func (l *legacyQuota) K() int                    { return l.inner.K() }
func (l *legacyQuota) Schema() *dataspace.Schema { return l.inner.Schema() }

// handleStats reports the aggregate and per-session counters.
func (h *Handler) handleStats(w http.ResponseWriter) {
	h.mu.Lock()
	msg := wire.StatsMsg{Queries: h.queries, Requests: h.requests}
	h.mu.Unlock()
	if h.table != nil {
		msg.Queries += h.table.TotalQueries()
		msg.EvictedSessions = h.table.Evicted()
		for _, s := range h.table.Stats() {
			msg.Sessions = append(msg.Sessions, wire.SessionStatsMsg{
				Token:       s.Token,
				Queries:     s.Queries,
				Resolved:    s.Resolved,
				Overflowed:  s.Overflowed,
				Remaining:   s.Remaining,
				Replays:     s.Replays,
				CacheHits:   s.CacheHits,
				JournalLen:  s.JournalLen,
				SharedHits:  s.SharedHits,
				SharedWaits: s.SharedWaits,
				SharedLeads: s.SharedLeads,
				RateClass:   s.RateClass,
			})
		}
		if sc := h.table.SharedCache(); sc != nil {
			st := sc.Stats()
			msg.SharedCache = &wire.SharedCacheStatsMsg{
				Hits:      st.Hits,
				Waits:     st.Waits,
				Leads:     st.Leads,
				Entries:   st.Entries,
				Bytes:     st.Bytes,
				Evictions: st.Evictions,
				InFlight:  st.InFlight,
			}
		}
	}
	if ps, ok := h.srv.(interface{ PlanStats() index.PlanStats }); ok {
		st := ps.PlanStats()
		msg.Planner = &wire.PlannerStatsMsg{
			Shapes:  st.Shapes,
			Hits:    st.Hits,
			Misses:  st.Misses,
			HitRate: st.HitRate(),
			Paths:   st.Paths,
		}
	}
	msg.Engine = h.engineStats()
	writeJSON(w, msg)
}

// engineStats snapshots the backing server's engine identity and cache
// counters, or nil when the server does not expose them (a remote proxy).
func (h *Handler) engineStats() *wire.EngineStatsMsg {
	es, ok := h.srv.(interface{ EngineStats() index.EngineStats })
	if !ok {
		return nil
	}
	st := es.EngineStats()
	return &wire.EngineStatsMsg{
		Kind:        st.Kind,
		CacheHits:   st.CacheHits,
		CacheMisses: st.CacheMisses,
		CacheBlocks: st.CacheBlocks,
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more to do than drop the
		// connection, which the encoder error already implies.
		return
	}
}
