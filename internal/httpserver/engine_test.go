package httpserver

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"hidb/internal/datagen"
	"hidb/internal/diskstore"
	"hidb/internal/hiddendb"
	"hidb/internal/httpclient"
	"hidb/internal/session"
	"hidb/internal/wire"
)

// TestStatsEngineMem: GET /stats identifies the in-memory engine behind a
// local server; the block-cache counters stay zero (there is no cache).
func TestStatsEngineMem(t *testing.T) {
	h, _ := sessionHandler(t, 200, 10, session.Config{})
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var msg wire.StatsMsg
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		t.Fatal(err)
	}
	if msg.Engine == nil {
		t.Fatal("stats: no engine block from a local store")
	}
	if msg.Engine.Kind != "mem" || msg.Engine.CacheHits != 0 || msg.Engine.CacheMisses != 0 {
		t.Errorf("mem engine stats: %+v", msg.Engine)
	}
}

// TestEngineStatsDisk is the end-to-end disk-engine wiring test: a session
// handler over a disk store built from the server's own rank permutation
// serves a /crawl whose terminal event and /stats both identify the disk
// engine with live block-cache counters — and the crawl pays exactly the
// query count of the same crawl against the in-memory engine.
func TestEngineStatsDisk(t *testing.T) {
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          400,
		CatDomains: []int{4},
		NumRanges:  [][2]int64{{0, 1000}},
		DupRate:    0.05,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	const k, seed = 10, 42
	mem, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "store.hidb")
	if err := diskstore.BuildRanked(path, ds.Schema, hiddendb.RankOrder(ds.Tuples, seed), diskstore.BuildOptions{Bands: 2}); err != nil {
		t.Fatal(err)
	}
	store, err := diskstore.Open(path, diskstore.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	disk, err := hiddendb.NewLocalEngine(store, k)
	if err != nil {
		t.Fatal(err)
	}

	crawlQueries := func(srv hiddendb.Server) (int, *wire.CrawlEvent) {
		ts := httptest.NewServer(New(srv, WithSessions(session.Config{})))
		defer ts.Close()
		c, err := httpclient.DialToken(context.Background(), ts.URL, "tok", nil)
		if err != nil {
			t.Fatal(err)
		}
		var terminal *wire.CrawlEvent
		res, err := c.Crawl(context.Background(), "", 0, func(ev wire.CrawlEvent) {
			if ev.Done {
				terminal = &ev
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Tuples.EqualMultiset(ds.Tuples) {
			t.Fatalf("crawl incomplete: %d of %d tuples", len(res.Tuples), len(ds.Tuples))
		}
		return res.Queries, terminal
	}

	memQ, memEv := crawlQueries(mem)
	diskQ, diskEv := crawlQueries(disk)
	if diskQ != memQ {
		t.Errorf("disk crawl paid %d queries, mem paid %d — the engine swap changed the cost metric", diskQ, memQ)
	}
	if memEv == nil || memEv.Engine == nil || memEv.Engine.Kind != "mem" {
		t.Errorf("mem terminal event engine: %+v", memEv.Engine)
	}
	if diskEv == nil || diskEv.Engine == nil || diskEv.Engine.Kind != "disk" {
		t.Fatalf("disk terminal event engine: %+v", diskEv.Engine)
	}
	if diskEv.Engine.CacheMisses == 0 {
		t.Errorf("disk crawl moved no cache counters: %+v", diskEv.Engine)
	}

	// /stats over the disk handler reports the same identity and counters.
	ts := httptest.NewServer(New(disk, WithSessions(session.Config{})))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var msg wire.StatsMsg
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		t.Fatal(err)
	}
	if msg.Engine == nil || msg.Engine.Kind != "disk" {
		t.Fatalf("disk /stats engine: %+v", msg.Engine)
	}
	if msg.Engine.CacheMisses == 0 || msg.Engine.CacheBlocks < 1 {
		t.Errorf("disk /stats cache counters: %+v", msg.Engine)
	}
}
