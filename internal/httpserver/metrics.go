// GET /metrics: the handler's introspection in the Prometheus text
// exposition format (version 0.0.4), assembled from the same snapshots
// GET /stats serializes as JSON — no new dependencies, no new counters
// beyond the QoS atomics the serving path already maintains. The series
// are written in a fixed order with sorted label values, so the output
// for a quiesced handler is byte-stable (the golden test pins it).
//
// Series:
//
//	hidb_requests_total                query-carrying HTTP round trips
//	hidb_queries_total                 paid form queries (all clients)
//	hidb_inflight                      query-carrying requests being served
//	hidb_draining                      1 once Drain was called
//	hidb_quota_rejected_total          429 responses
//	hidb_shed_total{reason=...}        503s: capacity | draining | session_table_full
//	hidb_batch_width_*                 histogram of /batch request widths
//	hidb_sessions_live                 live sessions (session mode)
//	hidb_sessions_evicted_total        sessions evicted by TTL/LRU
//	hidb_sessions_recovered_journals_total  journals reloaded via prefix recovery
//	hidb_rate_class_sessions{class=...}     live sessions per rate class
//	hidb_shared_cache_*                fleet tier counters (fleet mode)
//	hidb_plan_cache_*, hidb_plan_path_total{path=...}  planner counters
//	hidb_engine_info{kind=...}, hidb_engine_cache_*    store engine counters
package httpserver

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"

	"hidb/internal/index"
)

// metricsWriter accumulates one exposition document. Every series goes
// through meta + sample so the # HELP / # TYPE headers always precede
// their first sample, as the format requires.
type metricsWriter struct {
	buf bytes.Buffer
}

func (m *metricsWriter) meta(name, help, typ string) {
	fmt.Fprintf(&m.buf, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample writes one sample line; labels is a preformatted {...} block or
// empty. Values are integers at heart, so %v never prints exponents.
func (m *metricsWriter) sample(name, labels string, v any) {
	fmt.Fprintf(&m.buf, "%s%s %v\n", name, labels, v)
}

func (m *metricsWriter) counter(name, help string, v any) {
	m.meta(name, help, "counter")
	m.sample(name, "", v)
}

func (m *metricsWriter) gauge(name, help string, v any) {
	m.meta(name, help, "gauge")
	m.sample(name, "", v)
}

// handleMetrics serves the Prometheus text exposition. Like /stats and
// /healthz it bypasses admission control: a draining or saturated server
// must stay observable.
func (h *Handler) handleMetrics(w http.ResponseWriter) {
	var m metricsWriter

	m.counter("hidb_requests_total", "Query-carrying HTTP round trips served (/query, /batch, /crawl).", h.Requests())
	m.counter("hidb_queries_total", "Paid form queries served across all clients.", h.Queries())
	m.gauge("hidb_inflight", "Query-carrying requests currently being served.", h.InFlight())
	drain := 0
	if h.draining.Load() {
		drain = 1
	}
	m.gauge("hidb_draining", "1 once the handler entered drain mode (one-way).", drain)
	m.counter("hidb_quota_rejected_total", "Requests rejected with 429: the caller's query budget ran dry.", h.quota429.Load())

	m.meta("hidb_shed_total", "Requests shed with 503, by reason.", "counter")
	m.sample("hidb_shed_total", `{reason="capacity"}`, h.shedCapacity.Load())
	m.sample("hidb_shed_total", `{reason="draining"}`, h.shedDraining.Load())
	m.sample("hidb_shed_total", `{reason="session_table_full"}`, h.shedFull.Load())

	m.meta("hidb_batch_width", "Queries per /batch request.", "histogram")
	for i, le := range batchWidthBounds {
		m.sample("hidb_batch_width_bucket", fmt.Sprintf(`{le="%d"}`, le), h.batchWidths[i].Load())
	}
	m.sample("hidb_batch_width_bucket", `{le="+Inf"}`, h.batchWidths[len(batchWidthBounds)].Load())
	m.sample("hidb_batch_width_sum", "", h.batchSum.Load())
	m.sample("hidb_batch_width_count", "", h.batchCount.Load())

	if h.table != nil {
		m.gauge("hidb_sessions_live", "Live sessions in the table.", h.table.Len())
		m.counter("hidb_sessions_evicted_total", "Sessions evicted by TTL expiry or LRU pressure.", h.table.Evicted())
		m.counter("hidb_sessions_recovered_journals_total", "Session journals reloaded via longest-valid-prefix recovery.", h.table.RecoveredJournals())
		if classes := h.table.ClassCounts(); len(classes) > 0 {
			names := make([]string, 0, len(classes))
			for name := range classes {
				names = append(names, name)
			}
			sort.Strings(names)
			m.meta("hidb_rate_class_sessions", "Live sessions per named rate class.", "gauge")
			for _, name := range names {
				m.sample("hidb_rate_class_sessions", fmt.Sprintf("{class=%q}", name), classes[name])
			}
		}
		if sc := h.table.SharedCache(); sc != nil {
			st := sc.Stats()
			m.counter("hidb_shared_cache_hits_total", "Queries answered from a populated shared-tier entry.", st.Hits)
			m.counter("hidb_shared_cache_waits_total", "Queries answered by waiting out another session's in-flight fetch.", st.Waits)
			m.counter("hidb_shared_cache_leads_total", "Queries paid by one session and published for the fleet.", st.Leads)
			m.gauge("hidb_shared_cache_entries", "Resident shared-tier entries.", st.Entries)
			m.gauge("hidb_shared_cache_bytes", "Resident shared-tier bytes (0 when unbounded).", st.Bytes)
			m.counter("hidb_shared_cache_evictions_total", "Shared-tier entries dropped by the byte bound.", st.Evictions)
			m.gauge("hidb_shared_cache_inflight", "Queries being led right now.", st.InFlight)
		}
	}

	if ps, ok := h.srv.(interface{ PlanStats() index.PlanStats }); ok {
		st := ps.PlanStats()
		m.gauge("hidb_plan_cache_shapes", "Distinct query shapes with a cached plan.", st.Shapes)
		m.counter("hidb_plan_cache_hits_total", "Plan-cache lookup hits.", st.Hits)
		m.counter("hidb_plan_cache_misses_total", "Plan-cache lookup misses.", st.Misses)
		if len(st.Paths) > 0 {
			paths := make([]string, 0, len(st.Paths))
			for p := range st.Paths {
				paths = append(paths, p)
			}
			sort.Strings(paths)
			m.meta("hidb_plan_path_total", "Executed selections by access path.", "counter")
			for _, p := range paths {
				m.sample("hidb_plan_path_total", fmt.Sprintf("{path=%q}", p), st.Paths[p])
			}
		}
	}

	if es := h.engineStats(); es != nil {
		m.meta("hidb_engine_info", "Store engine identity (value is always 1).", "gauge")
		m.sample("hidb_engine_info", fmt.Sprintf("{kind=%q}", es.Kind), 1)
		m.counter("hidb_engine_cache_hits_total", "Block-cache hits (disk engine; 0 for mem).", es.CacheHits)
		m.counter("hidb_engine_cache_misses_total", "Block-cache misses (disk engine; 0 for mem).", es.CacheMisses)
		m.gauge("hidb_engine_cache_blocks", "Resident materialized blocks (disk engine).", es.CacheBlocks)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(m.buf.Bytes())
}
