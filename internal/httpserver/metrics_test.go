package httpserver

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hidb/internal/dataspace"
	"hidb/internal/session"
	"hidb/internal/wire"
)

// catQuery builds a point query on the test schema's categorical
// attribute (domain {1..4}), everything else wild.
func catQuery(t *testing.T, schema *dataspace.Schema, v int64) wire.QueryMsg {
	t.Helper()
	preds := make([]wire.Pred, schema.Dims())
	for i := range preds {
		if schema.Attr(i).Kind == dataspace.Categorical {
			preds[i] = wire.Pred{Value: &v}
		}
	}
	return wire.QueryMsg{Preds: preds}
}

func postBatchToken(t *testing.T, url, token string, msg wire.BatchRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/batch", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestMetricsGoldenText pins the whole Prometheus exposition, byte for
// byte, after a fixed traffic scenario that lights up every always-present
// series: served queries, a batch, one shed of each deterministic reason,
// a quota rejection, live sessions with a rate class, plan-cache and
// engine counters. Reordering series, renaming one, or changing a label
// breaks dashboards silently — this test makes it loud instead.
func TestMetricsGoldenText(t *testing.T) {
	base, ds := testHandler(t, 120, 8, 0)
	h := New(base.srv,
		WithSessions(session.Config{
			Quota:       2,
			MaxSessions: 2,
			RateClasses: []session.RateClass{{Name: "gold"}}, // explicit unlimited tier
		}),
		WithShedding(0))
	ts := httptest.NewServer(h)
	defer ts.Close()

	// gold-a and bob establish sessions and pay one query each.
	for tok, v := range map[string]int64{"gold-a": 1, "bob": 2} {
		resp := postQueryToken(t, ts.URL, tok, catQuery(t, ds.Schema, v))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("token %s: %s", tok, resp.Status)
		}
	}
	// carol finds the table full: one session_table_full shed.
	resp := postQueryToken(t, ts.URL, "carol", catQuery(t, ds.Schema, 1))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("carol on full table: %s, want 503", resp.Status)
	}
	// gold-a's width-3 batch runs into its quota after one more query.
	var batch wire.BatchRequest
	for _, v := range []int64{2, 3, 4} {
		batch.Queries = append(batch.Queries, catQuery(t, ds.Schema, v))
	}
	bresp := postBatchToken(t, ts.URL, "gold-a", batch)
	var bout wire.BatchResponse
	if err := json.NewDecoder(bresp.Body).Decode(&bout); err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK || !bout.QuotaExceeded || len(bout.Results) != 1 {
		t.Fatalf("batch: status=%s quotaExceeded=%v results=%d", bresp.Status, bout.QuotaExceeded, len(bout.Results))
	}
	// gold-a over budget on /query: one 429.
	resp = postQueryToken(t, ts.URL, "gold-a", catQuery(t, ds.Schema, 3))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota query: %s, want 429", resp.Status)
	}
	// Drain, then one more request: one draining shed.
	h.Drain()
	resp = postQueryToken(t, ts.URL, "bob", catQuery(t, ds.Schema, 3))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain query: %s, want 503", resp.Status)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics while draining: %s, want 200 (observability must outlive admission)", mresp.Status)
	}
	if ct := mresp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type %q", ct)
	}
	got, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != metricsGolden {
		t.Errorf("exposition drifted from golden:\n--- got\n%s\n--- want\n%s", got, metricsGolden)
	}
}

// metricsGolden is the full exposition the scenario above must produce.
const metricsGolden = `# HELP hidb_requests_total Query-carrying HTTP round trips served (/query, /batch, /crawl).
# TYPE hidb_requests_total counter
hidb_requests_total 5
# HELP hidb_queries_total Paid form queries served across all clients.
# TYPE hidb_queries_total counter
hidb_queries_total 3
# HELP hidb_inflight Query-carrying requests currently being served.
# TYPE hidb_inflight gauge
hidb_inflight 0
# HELP hidb_draining 1 once the handler entered drain mode (one-way).
# TYPE hidb_draining gauge
hidb_draining 1
# HELP hidb_quota_rejected_total Requests rejected with 429: the caller's query budget ran dry.
# TYPE hidb_quota_rejected_total counter
hidb_quota_rejected_total 1
# HELP hidb_shed_total Requests shed with 503, by reason.
# TYPE hidb_shed_total counter
hidb_shed_total{reason="capacity"} 0
hidb_shed_total{reason="draining"} 1
hidb_shed_total{reason="session_table_full"} 1
# HELP hidb_batch_width Queries per /batch request.
# TYPE hidb_batch_width histogram
hidb_batch_width_bucket{le="1"} 0
hidb_batch_width_bucket{le="2"} 0
hidb_batch_width_bucket{le="4"} 1
hidb_batch_width_bucket{le="8"} 1
hidb_batch_width_bucket{le="16"} 1
hidb_batch_width_bucket{le="32"} 1
hidb_batch_width_bucket{le="64"} 1
hidb_batch_width_bucket{le="128"} 1
hidb_batch_width_bucket{le="+Inf"} 1
hidb_batch_width_sum 3
hidb_batch_width_count 1
# HELP hidb_sessions_live Live sessions in the table.
# TYPE hidb_sessions_live gauge
hidb_sessions_live 2
# HELP hidb_sessions_evicted_total Sessions evicted by TTL expiry or LRU pressure.
# TYPE hidb_sessions_evicted_total counter
hidb_sessions_evicted_total 0
# HELP hidb_sessions_recovered_journals_total Session journals reloaded via longest-valid-prefix recovery.
# TYPE hidb_sessions_recovered_journals_total counter
hidb_sessions_recovered_journals_total 0
# HELP hidb_rate_class_sessions Live sessions per named rate class.
# TYPE hidb_rate_class_sessions gauge
hidb_rate_class_sessions{class="gold"} 1
# HELP hidb_plan_cache_shapes Distinct query shapes with a cached plan.
# TYPE hidb_plan_cache_shapes gauge
hidb_plan_cache_shapes 1
# HELP hidb_plan_cache_hits_total Plan-cache lookup hits.
# TYPE hidb_plan_cache_hits_total counter
hidb_plan_cache_hits_total 2
# HELP hidb_plan_cache_misses_total Plan-cache lookup misses.
# TYPE hidb_plan_cache_misses_total counter
hidb_plan_cache_misses_total 1
# HELP hidb_plan_path_total Executed selections by access path.
# TYPE hidb_plan_path_total counter
hidb_plan_path_total{path="scan"} 3
# HELP hidb_engine_info Store engine identity (value is always 1).
# TYPE hidb_engine_info gauge
hidb_engine_info{kind="mem"} 1
# HELP hidb_engine_cache_hits_total Block-cache hits (disk engine; 0 for mem).
# TYPE hidb_engine_cache_hits_total counter
hidb_engine_cache_hits_total 0
# HELP hidb_engine_cache_misses_total Block-cache misses (disk engine; 0 for mem).
# TYPE hidb_engine_cache_misses_total counter
hidb_engine_cache_misses_total 0
# HELP hidb_engine_cache_blocks Resident materialized blocks (disk engine).
# TYPE hidb_engine_cache_blocks gauge
hidb_engine_cache_blocks 0
`

// TestHealthzZeroSessionsVisible pins the fixed bug where a session table
// with zero live sessions was indistinguishable from no session table at
// all: the raw JSON must carry "sessions":0, not omit the field.
func TestHealthzZeroSessionsVisible(t *testing.T) {
	base, _ := testHandler(t, 20, 5, 0)

	h := New(base.srv, WithSessions(session.Config{MaxSessions: 4}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if !strings.Contains(rec.Body.String(), `"sessions":0`) {
		t.Errorf("fresh session table healthz omits the zero count: %s", rec.Body.String())
	}

	// Without a session table the field must stay absent — its absence is
	// the "sessions disabled" signal.
	rec = httptest.NewRecorder()
	base.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if strings.Contains(rec.Body.String(), `"sessions"`) {
		t.Errorf("sessionless healthz grew a sessions field: %s", rec.Body.String())
	}
}

// TestHealthzNeverReadyAndDraining races Drain against /healthz scrapes:
// no response may ever claim the contradictory Ready && Draining, which
// the old two-load implementation could produce when the flag flipped
// between its reads.
func TestHealthzNeverReadyAndDraining(t *testing.T) {
	for i := 0; i < 200; i++ {
		base, _ := testHandler(t, 10, 5, 0)
		start := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			base.Drain()
		}()
		var body struct {
			Ready    bool `json:"ready"`
			Draining bool `json:"draining"`
			Live     bool `json:"live"`
		}
		var rec *httptest.ResponseRecorder
		go func() {
			defer wg.Done()
			<-start
			rec = httptest.NewRecorder()
			base.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		}()
		close(start)
		wg.Wait()
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		if body.Ready && body.Draining {
			t.Fatalf("healthz reported Ready && Draining (iteration %d): %s", i, rec.Body.String())
		}
		if !body.Live {
			t.Fatalf("healthz reported not live: %s", rec.Body.String())
		}
		if body.Ready != (rec.Code == http.StatusOK) {
			t.Fatalf("status %d contradicts ready=%v", rec.Code, body.Ready)
		}
	}
}

// TestShedHintsDistinguishDrainFromCapacity pins the fixed bug where a
// drain shed carried the same Retry-After as a transient capacity shed:
// the drain hint must be much larger (drain is one-way; retrying in a
// second is wasted load) and the bodies must name different causes.
func TestShedHintsDistinguishDrainFromCapacity(t *testing.T) {
	read := func(h *Handler, path string) (retryAfter int, body string) {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, strings.NewReader("{}")))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s: status %d, want 503", path, rec.Code)
		}
		ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
		if err != nil {
			t.Fatalf("%s: Retry-After %q: %v", path, rec.Header().Get("Retry-After"), err)
		}
		return ra, strings.TrimSpace(rec.Body.String())
	}

	base, _ := testHandler(t, 20, 5, 0)

	// Capacity: a handler whose only in-flight slot is already taken.
	caph := New(base.srv, WithShedding(1))
	caph.mu.Lock()
	caph.inFlight = 1 // simulate an occupied slot without a live request
	caph.mu.Unlock()
	capHint, capBody := read(caph, "/query")

	drainh := New(base.srv)
	drainh.Drain()
	drainHint, drainBody := read(drainh, "/query")

	if drainHint <= capHint {
		t.Errorf("drain Retry-After %d not larger than capacity's %d", drainHint, capHint)
	}
	if capBody == drainBody {
		t.Errorf("capacity and drain sheds share one body %q — clients cannot tell them apart", capBody)
	}
	if !strings.Contains(drainBody, "draining") {
		t.Errorf("drain shed body %q does not name the drain", drainBody)
	}
}

// TestScrapesRaceCrawl runs /stats, /metrics and /healthz scrapes
// concurrently with a streaming /crawl and mixed queries — the
// observability endpoints read every counter the serving path writes, so
// this is the -race probe for torn snapshots.
func TestScrapesRaceCrawl(t *testing.T) {
	base, ds := testHandler(t, 200, 8, 0)
	h := New(base.srv, WithSessions(session.Config{MaxSessions: 8,
		RateClasses: []session.RateClass{{Name: "gold"}}}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	var wg sync.WaitGroup
	for _, path := range []string{"/stats", "/metrics", "/healthz"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		body, _ := json.Marshal(wire.CrawlRequest{})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/crawl", strings.NewReader(string(body)))
		req.Header.Set("Authorization", "Bearer gold-crawler")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			resp := postQueryToken(t, ts.URL, fmt.Sprintf("q-%d", i%4), catQuery(t, ds.Schema, int64(1+i%4)))
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Wait()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(out), "hidb_queries_total") {
		t.Error("post-race /metrics exposition is missing hidb_queries_total")
	}
}
