package httpserver

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"hidb/internal/datagen"
	"hidb/internal/hiddendb"
	"hidb/internal/httpclient"
	"hidb/internal/session"
	"hidb/internal/wire"
)

// fleetHandler builds a shared-cache session handler whose store is
// wrapped in a Counting server, so tests can pin exactly what the fleet
// paid.
func fleetHandler(t *testing.T, n, k int, cfg session.Config) (*Handler, *hiddendb.Counting, *datagen.Dataset) {
	t.Helper()
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          n,
		CatDomains: []int{4},
		NumRanges:  [][2]int64{{0, 1000}},
		DupRate:    0.05,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, 42)
	if err != nil {
		t.Fatal(err)
	}
	counting := hiddendb.NewCounting(srv)
	return New(counting, WithSessions(cfg)), counting, ds
}

// TestFleetCrawlOverHTTP: with -shared-cache free semantics, a second
// token's /crawl is served from the tier the first token populated — the
// store is paid exactly once, the follower pays nothing, and both /stats
// and the crawl's terminal line surface the shared-tier traffic.
func TestFleetCrawlOverHTTP(t *testing.T) {
	h, counting, ds := fleetHandler(t, 300, 10, session.Config{SharedCache: hiddendb.SharedFree})
	ts := httptest.NewServer(h)
	defer ts.Close()

	leader, err := httpclient.DialToken(context.Background(), ts.URL, "leader", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := leader.Crawl(context.Background(), "", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tuples.EqualMultiset(ds.Tuples) {
		t.Fatalf("leader crawl incomplete: %d of %d tuples", len(res.Tuples), len(ds.Tuples))
	}
	refPaid := counting.Queries()
	if refPaid == 0 || res.Queries != refPaid {
		t.Fatalf("leader paid %d, store answered %d", res.Queries, refPaid)
	}

	// The follower's crawl re-asks the same deterministic query sequence;
	// every answer comes from the tier, so the store is not asked again
	// and the follower's budgetless session pays nothing.
	follower, err := httpclient.DialToken(context.Background(), ts.URL, "follower", nil)
	if err != nil {
		t.Fatal(err)
	}
	var terminal wire.CrawlEvent
	fres, err := follower.Crawl(context.Background(), "", 0, func(ev wire.CrawlEvent) {
		if ev.Done {
			terminal = ev
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fres.Tuples.EqualMultiset(ds.Tuples) {
		t.Fatalf("follower crawl incomplete: %d of %d tuples", len(fres.Tuples), len(ds.Tuples))
	}
	if counting.Queries() != refPaid {
		t.Fatalf("store answered %d after the follower, want still %d", counting.Queries(), refPaid)
	}
	if fres.Queries != 0 {
		t.Fatalf("follower paid %d, want 0", fres.Queries)
	}
	if terminal.SharedHits+terminal.SharedWaits != refPaid {
		t.Fatalf("terminal line reports %d shared answers, want %d",
			terminal.SharedHits+terminal.SharedWaits, refPaid)
	}

	// /stats: the aggregate tier block and the per-session breakdown.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var msg wire.StatsMsg
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		t.Fatal(err)
	}
	if msg.SharedCache == nil {
		t.Fatal("stats carry no sharedCache block in fleet mode")
	}
	if msg.SharedCache.Leads != refPaid {
		t.Errorf("tier leads = %d, want %d", msg.SharedCache.Leads, refPaid)
	}
	if got := msg.SharedCache.Hits + msg.SharedCache.Waits; got != refPaid {
		t.Errorf("tier hits+waits = %d, want %d", got, refPaid)
	}
	if msg.SharedCache.Entries != refPaid {
		t.Errorf("tier entries = %d, want %d", msg.SharedCache.Entries, refPaid)
	}
	if msg.Queries != refPaid {
		t.Errorf("aggregate paid = %d, want %d", msg.Queries, refPaid)
	}
	byToken := map[string]wire.SessionStatsMsg{}
	for _, s := range msg.Sessions {
		byToken[s.Token] = s
	}
	if l := byToken["leader"]; l.SharedLeads != refPaid || l.Queries != refPaid {
		t.Errorf("leader session stats: %+v, want %d leads and %d paid", l, refPaid, refPaid)
	}
	if f := byToken["follower"]; f.SharedHits+f.SharedWaits != refPaid || f.Queries != 0 {
		t.Errorf("follower session stats: %+v, want %d shared answers and 0 paid", f, refPaid)
	}
}

// TestFleetConcurrentCrawlsOverHTTP: M tokens crawling at once — the
// pace-car case. Followers ride the leader's in-flight fetches query by
// query (never waiting for the whole crawl), every token extracts the full
// database, and the fleet pays the store one solo crawl's cost.
func TestFleetConcurrentCrawlsOverHTTP(t *testing.T) {
	h, counting, ds := fleetHandler(t, 300, 10, session.Config{SharedCache: hiddendb.SharedFree})
	ts := httptest.NewServer(h)
	defer ts.Close()

	const m = 4
	var wg sync.WaitGroup
	errs := make([]error, m)
	for i := 0; i < m; i++ {
		c, err := httpclient.DialToken(context.Background(), ts.URL, fmt.Sprintf("tok-%d", i), nil)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, c *httpclient.Client) {
			defer wg.Done()
			res, err := c.Crawl(context.Background(), "", 0, nil)
			if err != nil {
				errs[i] = err
				return
			}
			if !res.Tuples.EqualMultiset(ds.Tuples) {
				errs[i] = fmt.Errorf("incomplete crawl: %d of %d tuples", len(res.Tuples), len(ds.Tuples))
			}
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("token %d: %v", i, err)
		}
	}

	// Solo reference on an identical fresh store.
	srv, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	refCounting := hiddendb.NewCounting(srv)
	refH := New(refCounting, WithSessions(session.Config{}))
	refTS := httptest.NewServer(refH)
	defer refTS.Close()
	refC, err := httpclient.DialToken(context.Background(), refTS.URL, "solo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refC.Crawl(context.Background(), "", 0, nil); err != nil {
		t.Fatal(err)
	}

	if counting.Queries() != refCounting.Queries() {
		t.Fatalf("fleet of %d paid %d, solo reference paid %d — want exactly equal",
			m, counting.Queries(), refCounting.Queries())
	}
}
