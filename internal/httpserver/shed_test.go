package httpserver

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/httpclient"
	"hidb/internal/session"
	"hidb/internal/wire"
)

// gatedServer blocks every Answer until the gate is closed, so a test can
// hold a request in flight deterministically.
type gatedServer struct {
	hiddendb.Server
	gate chan struct{}
}

func (g *gatedServer) Answer(ctx context.Context, q dataspace.Query) (hiddendb.Result, error) {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return hiddendb.Result{}, ctx.Err()
	}
	return g.Server.Answer(ctx, q)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func postQueryToken(t *testing.T, url, token string, msg wire.QueryMsg) *http.Response {
	t.Helper()
	body, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// A handler bounded to one in-flight request sheds the second concurrent
// query with 503 + Retry-After, and serves again once the slot frees up.
func TestShedAtCapacity(t *testing.T) {
	h, ds := testHandler(t, 50, 5, 0)
	gated := &gatedServer{Server: h.srv, gate: make(chan struct{})}
	h = New(gated, WithShedding(1))
	ts := httptest.NewServer(h)
	defer ts.Close()

	u := wire.EncodeQuery(dataspace.UniverseQuery(ds.Schema))
	first := make(chan int, 1)
	go func() {
		resp := postQuery(t, ts.URL, u)
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	waitFor(t, "first request in flight", func() bool { return h.InFlight() == 1 })

	resp := postQuery(t, ts.URL, u)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overload query: got %s, want 503", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("shed response missing Retry-After")
	}

	close(gated.gate)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d", code)
	}
	resp = postQuery(t, ts.URL, u)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-overload query: %s", resp.Status)
	}
	// Only the two served queries were charged; the shed one cost nothing.
	if h.Queries() != 2 {
		t.Errorf("paid queries = %d, want 2", h.Queries())
	}
}

// Drain flips the handler one-way into shedding everything new while
// /healthz reports not-ready, so load balancers stop routing to it.
func TestDrainShedsNewRequests(t *testing.T) {
	h, ds := testHandler(t, 50, 5, 0)
	ts := httptest.NewServer(h)
	defer ts.Close()

	health := func() (int, map[string]any) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := health(); code != http.StatusOK || body["ready"] != true || body["draining"] != false {
		t.Fatalf("pre-drain healthz: code=%d body=%v", code, body)
	}

	h.Drain()
	if !h.Draining() {
		t.Fatal("Draining() false after Drain()")
	}
	code, body := health()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503", code)
	}
	if body["ready"] != false || body["draining"] != true || body["live"] != true {
		t.Fatalf("draining healthz body = %v", body)
	}

	u := wire.EncodeQuery(dataspace.UniverseQuery(ds.Schema))
	resp := postQuery(t, ts.URL, u)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining query: got %s, want 503", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("drain shed missing Retry-After")
	}
	if h.Queries() != 0 {
		t.Errorf("drained requests were charged: %d", h.Queries())
	}
	// /schema stays available: it is free and lets clients finish dialling.
	sresp, err := http.Get(ts.URL + "/schema")
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Errorf("draining /schema: %s", sresp.Status)
	}
}

// With shedding on, a full session table rejects unseen tokens instead of
// evicting an established client's session out from under it; established
// tokens keep being served. Without shedding, LRU eviction still applies.
func TestSessionTableFullRejectsNewTokens(t *testing.T) {
	h, ds := testHandler(t, 50, 5, 0)
	srv := h.srv
	u := wire.EncodeQuery(dataspace.UniverseQuery(ds.Schema))

	shedding := New(srv, WithSessions(session.Config{MaxSessions: 2}), WithShedding(0))
	ts := httptest.NewServer(shedding)
	defer ts.Close()

	for _, tok := range []string{"alice", "bob"} {
		resp := postQueryToken(t, ts.URL, tok, u)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("token %s: %s", tok, resp.Status)
		}
	}
	resp := postQueryToken(t, ts.URL, "carol", u)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new token on full table: got %s, want 503", resp.Status)
	}
	resp = postQueryToken(t, ts.URL, "alice", u)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("established token after rejection: %s", resp.Status)
	}
	if n := shedding.Sessions().Len(); n != 2 {
		t.Errorf("session table has %d entries, want 2", n)
	}

	// Legacy behaviour without WithShedding: the table evicts LRU instead.
	evicting := New(srv, WithSessions(session.Config{MaxSessions: 2}))
	ts2 := httptest.NewServer(evicting)
	defer ts2.Close()
	for _, tok := range []string{"alice", "bob", "carol"} {
		resp := postQueryToken(t, ts2.URL, tok, u)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("evicting table, token %s: %s", tok, resp.Status)
		}
	}
}

// statusRecorder counts 503 responses flowing through the front so the
// test can prove the client was actually shed before succeeding.
type statusRecorder struct {
	inner http.Handler
	shed  atomic.Int32
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w}
	s.inner.ServeHTTP(sw, r)
	if sw.status == http.StatusServiceUnavailable {
		s.shed.Add(1)
	}
}

// A retry-enabled client rides out a shedding server transparently: its
// 503s are transient, so the query lands once the overload clears, and the
// shed attempts cost nothing.
func TestRetryClientRidesOutShedding(t *testing.T) {
	h, ds := testHandler(t, 50, 5, 0)
	gated := &gatedServer{Server: h.srv, gate: make(chan struct{})}
	h = New(gated, WithShedding(1))
	front := &statusRecorder{inner: h}
	ts := httptest.NewServer(front)
	defer ts.Close()

	u := wire.EncodeQuery(dataspace.UniverseQuery(ds.Schema))
	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		resp := postQuery(t, ts.URL, u)
		resp.Body.Close()
	}()
	waitFor(t, "slot occupied", func() bool { return h.InFlight() == 1 })

	c, err := httpclient.DialRetry(context.Background(), ts.URL, "tok", nil, httpclient.RetryPolicy{
		MaxAttempts: 100,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Answer(context.Background(), dataspace.UniverseQuery(c.Schema()))
		done <- err
	}()
	waitFor(t, "client shed at least once", func() bool { return front.shed.Load() >= 1 })
	close(gated.gate)
	<-blocked
	if err := <-done; err != nil {
		t.Fatalf("retry client did not ride out shedding: %v", err)
	}
	if h.Queries() != 2 {
		t.Errorf("paid queries = %d, want 2 (shed attempts must be free)", h.Queries())
	}
}
