package httpserver

import (
	"context"
	"errors"
	"testing"
	"time"

	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/httpclient"
	"hidb/internal/session"

	"net/http/httptest"
)

// slowSharded builds a session handler over a sharded store behind a small
// simulated latency, so a server-side crawl is slow enough for a client
// disconnect to land mid-stream deterministically.
func slowSharded(t *testing.T, n, k int, delay time.Duration, cfg session.Config) (*Handler, *datagen.Dataset, *hiddendb.Local) {
	t.Helper()
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          n,
		CatDomains: []int{4, 6},
		NumRanges:  [][2]int64{{0, 5000}},
		Skew:       0.5,
		DupRate:    0.05,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	local, err := hiddendb.NewLocalSharded(ds.Schema, ds.Tuples, k, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	var shared hiddendb.Server = local
	if delay > 0 {
		shared = hiddendb.NewLatency(shared, delay)
	}
	return New(shared, WithSessions(cfg)), ds, local
}

// settledQueries polls the session's paid-query counter until it stops
// moving — the observable sign the server-side crawl has wound down.
func settledQueries(t *testing.T, sess *session.Session) int {
	t.Helper()
	prev := -1
	for i := 0; i < 100; i++ {
		cur := sess.Queries()
		if cur == prev {
			return cur
		}
		prev = cur
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("session still paying queries after 2s — the disconnected crawl was not cancelled")
	return 0
}

// TestCrawlSeqCancelAndResumeCursor is the acceptance scenario: a client
// cancels CrawlSeq after N tuples (tearing down the stream cancels the
// server-side crawl), and a second /crawl with the resume cursor finishes
// the extraction paying only for queries not already journaled and
// receiving no tuple twice.
func TestCrawlSeqCancelAndResumeCursor(t *testing.T) {
	h, ds, _ := slowSharded(t, 2000, 16, time.Millisecond, session.Config{})
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Reference: what the same algorithm costs uninterrupted.
	refSrv, err := hiddendb.NewLocalSharded(ds.Schema, ds.Tuples, 16, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.ForSchema(ds.Schema).Crawl(context.Background(), refSrv, nil)
	if err != nil {
		t.Fatal(err)
	}

	c, err := httpclient.DialToken(context.Background(), ts.URL, "resumer", nil)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: consume N tuples, then break — the stream tears down and
	// the server cancels this session's crawl.
	const cutoff = 25
	var head dataspace.Bag
	for tuple, err := range c.CrawlSeq(context.Background(), "", 0) {
		if err != nil {
			t.Fatalf("stream error before the cutoff: %v", err)
		}
		head = append(head, tuple)
		if len(head) == cutoff {
			break
		}
	}
	sess, err := h.Sessions().Get("resumer")
	if err != nil {
		t.Fatal(err)
	}
	interrupted := settledQueries(t, sess)
	if interrupted >= ref.Queries {
		t.Fatalf("disconnect did not cancel the crawl: session paid %d of %d reference queries", interrupted, ref.Queries)
	}
	if interrupted == 0 {
		t.Fatal("no queries paid before the cutoff — test is vacuous")
	}
	if jl := sess.JournalLen(); jl != interrupted {
		t.Fatalf("journal holds %d entries for %d paid queries", jl, interrupted)
	}

	// Phase 2: resume with the cursor. The journal replays the paid
	// prefix for free; the stream starts past the tuples already held.
	rest, err := c.Crawl(context.Background(), "", len(head), nil)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if rest.Skipped != len(head) {
		t.Errorf("server skipped %d tuples, want %d", rest.Skipped, len(head))
	}
	combined := append(head, rest.Tuples...)
	if !combined.EqualMultiset(ds.Tuples) {
		t.Fatalf("resumed extraction incomplete or duplicated: %d tuples vs %d", len(combined), len(ds.Tuples))
	}
	if sess.Queries() != ref.Queries {
		t.Errorf("total paid %d queries, want the reference %d — the resume re-paid journaled queries", sess.Queries(), ref.Queries)
	}
	if rest.Queries != ref.Queries {
		t.Errorf("resume reported %d total paid queries, want %d", rest.Queries, ref.Queries)
	}
}

// TestCrawlDisconnectIsolation is the two-token regression: a client that
// disconnects mid-/crawl cancels only its own session's in-flight work;
// a concurrent crawl on another token over the same sharded store runs to
// completion at full fidelity.
func TestCrawlDisconnectIsolation(t *testing.T) {
	h, ds, _ := slowSharded(t, 2000, 16, time.Millisecond, session.Config{})
	ts := httptest.NewServer(h)
	defer ts.Close()

	steady, err := httpclient.DialToken(context.Background(), ts.URL, "steady", nil)
	if err != nil {
		t.Fatal(err)
	}
	flaky, err := httpclient.DialToken(context.Background(), ts.URL, "flaky", nil)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		res *httpclient.CrawlResult
		err error
	}
	steadyDone := make(chan outcome, 1)
	go func() {
		res, err := steady.Crawl(context.Background(), "", 0, nil)
		steadyDone <- outcome{res, err}
	}()

	// flaky hangs up a few tuples in, while steady's crawl is mid-flight.
	got := 0
	for _, err := range flaky.CrawlSeq(context.Background(), "", 0) {
		if err != nil {
			t.Fatalf("flaky stream error: %v", err)
		}
		if got++; got == 10 {
			break
		}
	}

	out := <-steadyDone
	if out.err != nil {
		t.Fatalf("steady crawl failed after flaky's disconnect: %v", out.err)
	}
	if !out.res.Tuples.EqualMultiset(ds.Tuples) {
		t.Fatalf("steady crawl incomplete after flaky's disconnect: %d of %d tuples",
			len(out.res.Tuples), len(ds.Tuples))
	}

	// flaky's own crawl was cancelled, not steady's.
	fs, err := h.Sessions().Get("flaky")
	if err != nil {
		t.Fatal(err)
	}
	if paid := settledQueries(t, fs); paid >= out.res.Queries {
		t.Errorf("flaky paid %d queries after disconnecting at 10 tuples; steady's full crawl cost %d", paid, out.res.Queries)
	}
}

// TestCrawlStreamRejectsNegativeCursor: a malformed resume cursor is a 400,
// not a stream.
func TestCrawlStreamRejectsNegativeCursor(t *testing.T) {
	h, _ := sessionHandler(t, 100, 10, session.Config{})
	ts := httptest.NewServer(h)
	defer ts.Close()
	c, err := httpclient.DialToken(context.Background(), ts.URL, "neg", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Crawl(context.Background(), "", -1, nil); err == nil || errors.Is(err, hiddendb.ErrQuotaExceeded) {
		t.Fatalf("negative cursor: err = %v, want a bad-request error", err)
	}
}
