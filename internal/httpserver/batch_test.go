package httpserver

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/simrand"
	"hidb/internal/wire"
)

func postBatch(t *testing.T, url string, msg wire.BatchRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBatch(t *testing.T, resp *http.Response) wire.BatchResponse {
	t.Helper()
	defer resp.Body.Close()
	var msg wire.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		t.Fatal(err)
	}
	return msg
}

// testBatch builds a mixed query batch over the handler's schema.
func testBatch(sch *dataspace.Schema, n int, seed uint64) []dataspace.Query {
	rng := simrand.New(seed)
	qs := make([]dataspace.Query, n)
	for i := range qs {
		q := dataspace.UniverseQuery(sch)
		if rng.Bool(0.5) {
			q = q.WithValue(0, rng.IntRange(1, 4))
		}
		if rng.Bool(0.7) {
			lo := rng.IntRange(0, 900)
			q = q.WithRange(1, lo, lo+rng.IntRange(0, 100))
		}
		qs[i] = q
	}
	return qs
}

// TestBatchEquivalence is the endpoint's contract: one POST /batch with N
// queries returns byte-for-byte the N responses that N POST /query round
// trips produce, while counting N queries but only one request.
func TestBatchEquivalence(t *testing.T) {
	h, ds := testHandler(t, 400, 10, 0)
	ts := httptest.NewServer(h)
	defer ts.Close()

	qs := testBatch(ds.Schema, 12, 51)
	single := make([]wire.ResultMsg, len(qs))
	for i, q := range qs {
		resp := postQuery(t, ts.URL, wire.EncodeQuery(q))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single query %d: %s", i, resp.Status)
		}
		if err := json.NewDecoder(resp.Body).Decode(&single[i]); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	requestsBefore, queriesBefore := h.Requests(), h.Queries()

	resp := postBatch(t, ts.URL, wire.EncodeBatchRequest(qs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %s", resp.Status)
	}
	msg := decodeBatch(t, resp)
	if msg.QuotaExceeded {
		t.Fatal("unquota'd batch flagged quotaExceeded")
	}
	if len(msg.Results) != len(qs) {
		t.Fatalf("batch answered %d of %d", len(msg.Results), len(qs))
	}
	for i := range qs {
		got, _ := json.Marshal(msg.Results[i])
		want, _ := json.Marshal(single[i])
		if !bytes.Equal(got, want) {
			t.Fatalf("batch result %d differs from /query:\n got %s\nwant %s", i, got, want)
		}
	}
	if h.Queries() != queriesBefore+len(qs) {
		t.Errorf("batch counted %d queries, want %d", h.Queries()-queriesBefore, len(qs))
	}
	if h.Requests() != requestsBefore+1 {
		t.Errorf("batch counted %d requests, want 1", h.Requests()-requestsBefore)
	}
}

// TestBatchMalformed: malformed batches are rejected whole with 400 and
// consume no quota — no partial answering of a broken request.
func TestBatchMalformed(t *testing.T) {
	h, ds := testHandler(t, 50, 10, 0)
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Broken JSON.
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("broken JSON: %s, want 400", resp.Status)
	}

	// Empty batch.
	resp = postBatch(t, ts.URL, wire.BatchRequest{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: %s, want 400", resp.Status)
	}

	// One malformed query (wrong arity) poisons the whole batch, even when
	// the other queries are fine.
	good := wire.EncodeQuery(dataspace.UniverseQuery(ds.Schema))
	resp = postBatch(t, ts.URL, wire.BatchRequest{
		Queries: []wire.QueryMsg{good, {Preds: []wire.Pred{{Wild: true}}}, good},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad arity mid-batch: %s, want 400", resp.Status)
	}

	// A categorical predicate setting both wild and value is invalid too.
	v := int64(2)
	resp = postBatch(t, ts.URL, wire.BatchRequest{
		Queries: []wire.QueryMsg{{Preds: []wire.Pred{{Wild: true, Value: &v}, {}}}},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("wild+value predicate: %s, want 400", resp.Status)
	}

	// GET /batch is not a thing.
	resp, err = http.Get(ts.URL + "/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /batch: %s, want 404", resp.Status)
	}

	if h.Queries() != 0 || h.Requests() != 0 {
		t.Errorf("malformed batches were counted: %d queries, %d requests", h.Queries(), h.Requests())
	}
}

// TestBatchQuotaMidBatch: a batch that overruns the handler's quota is
// answered up to the budget and flagged, and the next batch gets 429 —
// batching cannot stretch a per-IP budget.
func TestBatchQuotaMidBatch(t *testing.T) {
	h, ds := testHandler(t, 200, 10, 5)
	ts := httptest.NewServer(h)
	defer ts.Close()

	qs := testBatch(ds.Schema, 8, 53)
	resp := postBatch(t, ts.URL, wire.EncodeBatchRequest(qs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first batch: %s", resp.Status)
	}
	msg := decodeBatch(t, resp)
	if !msg.QuotaExceeded {
		t.Fatal("over-budget batch not flagged quotaExceeded")
	}
	if len(msg.Results) != 5 {
		t.Fatalf("answered %d queries, want the 5-query budget", len(msg.Results))
	}
	if h.Queries() != 5 {
		t.Fatalf("handler counted %d queries, want 5", h.Queries())
	}

	// Budget spent: the next batch is rejected outright.
	resp = postBatch(t, ts.URL, wire.EncodeBatchRequest(qs[:2]))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-budget batch: %s, want 429", resp.Status)
	}
	// And so is a single query.
	resp = postQuery(t, ts.URL, wire.EncodeQuery(dataspace.UniverseQuery(ds.Schema)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-budget query: %s, want 429", resp.Status)
	}
}

// TestInnerQuotaConsistentAcrossEndpoints: when the wrapped server itself
// enforces a budget (hiddendb.Quota below the handler), /query and /batch
// surface it identically — typed 429 / quotaExceeded flag, with only the
// served queries counted.
func TestInnerQuotaConsistentAcrossEndpoints(t *testing.T) {
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          100,
		CatDomains: []int{4},
		NumRanges:  [][2]int64{{0, 1000}},
		DupRate:    0.05,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	h := New(hiddendb.NewQuota(local, 2))
	ts := httptest.NewServer(h)
	defer ts.Close()

	u := wire.EncodeQuery(dataspace.UniverseQuery(ds.Schema))
	for i := 0; i < 2; i++ {
		resp := postQuery(t, ts.URL, u)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("in-budget query %d: %s", i, resp.Status)
		}
	}
	resp := postQuery(t, ts.URL, u)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("inner quota via /query: %s, want 429", resp.Status)
	}
	if h.Queries() != 2 {
		t.Fatalf("handler counted %d queries, want the 2 served", h.Queries())
	}

	// Same exhaustion through /batch: 200 with an empty prefix + flag.
	resp = postBatch(t, ts.URL, wire.BatchRequest{Queries: []wire.QueryMsg{u, u}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inner quota via /batch: %s", resp.Status)
	}
	msg := decodeBatch(t, resp)
	if !msg.QuotaExceeded || len(msg.Results) != 0 {
		t.Fatalf("batch on spent inner budget: %d results, flag=%v", len(msg.Results), msg.QuotaExceeded)
	}
	if h.Queries() != 2 {
		t.Fatalf("handler counted %d queries after failed batch, want 2", h.Queries())
	}
}

// TestBatchExactBudget: a batch that exactly matches the remaining budget
// is served in full with no flag.
func TestBatchExactBudget(t *testing.T) {
	h, ds := testHandler(t, 200, 10, 4)
	ts := httptest.NewServer(h)
	defer ts.Close()
	qs := testBatch(ds.Schema, 4, 55)
	msg := decodeBatch(t, postBatch(t, ts.URL, wire.EncodeBatchRequest(qs)))
	if msg.QuotaExceeded {
		t.Error("exact-budget batch flagged quotaExceeded")
	}
	if len(msg.Results) != 4 {
		t.Errorf("answered %d of 4", len(msg.Results))
	}
}
