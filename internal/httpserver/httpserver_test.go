package httpserver

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/wire"
)

func testHandler(t *testing.T, n, k, quota int) (*Handler, *datagen.Dataset) {
	t.Helper()
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          n,
		CatDomains: []int{4},
		NumRanges:  [][2]int64{{0, 1000}},
		DupRate:    0.05,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, 42)
	if err != nil {
		t.Fatal(err)
	}
	var opts []Option
	if quota > 0 {
		opts = append(opts, WithQuota(quota))
	}
	return New(srv, opts...), ds
}

func TestSchemaEndpoint(t *testing.T) {
	h, ds := testHandler(t, 100, 10, 0)
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var msg wire.SchemaMsg
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		t.Fatal(err)
	}
	sch, k, err := wire.DecodeSchema(msg)
	if err != nil {
		t.Fatal(err)
	}
	if k != 10 || sch.String() != ds.Schema.String() {
		t.Fatalf("schema mismatch: k=%d %s", k, sch)
	}
}

func postQuery(t *testing.T, url string, msg wire.QueryMsg) *http.Response {
	t.Helper()
	body, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestQueryEndpoint(t *testing.T) {
	h, ds := testHandler(t, 300, 10, 0)
	ts := httptest.NewServer(h)
	defer ts.Close()

	u := dataspace.UniverseQuery(ds.Schema)
	resp := postQuery(t, ts.URL, wire.EncodeQuery(u))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var msg wire.ResultMsg
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		t.Fatal(err)
	}
	if !msg.Overflow || len(msg.Tuples) != 10 {
		t.Fatalf("universe over 300 tuples: overflow=%v len=%d", msg.Overflow, len(msg.Tuples))
	}
	if h.Queries() != 1 {
		t.Fatalf("handler counted %d queries", h.Queries())
	}
}

func TestBadRequests(t *testing.T) {
	h, ds := testHandler(t, 50, 10, 0)
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %s", resp.Status)
	}

	// Wrong arity.
	resp = postQuery(t, ts.URL, wire.QueryMsg{Preds: []wire.Pred{{Wild: true}}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad arity: status %s", resp.Status)
	}

	// Unknown path and method.
	resp, err = http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /query: status %s", resp.Status)
	}
	resp, err = http.Get(ts.URL + "/nothing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nothing: status %s", resp.Status)
	}

	// Bad requests must not consume quota/counters.
	if h.Queries() != 0 {
		t.Errorf("bad requests were counted: %d", h.Queries())
	}
	_ = ds
}

func TestHealthz(t *testing.T) {
	h, _ := testHandler(t, 10, 5, 0)
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %s", resp.Status)
	}
}

func TestQuotaEnforced(t *testing.T) {
	h, ds := testHandler(t, 100, 10, 3)
	ts := httptest.NewServer(h)
	defer ts.Close()
	u := wire.EncodeQuery(dataspace.UniverseQuery(ds.Schema))
	for i := 0; i < 3; i++ {
		resp := postQuery(t, ts.URL, u)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("in-budget query %d: %s", i, resp.Status)
		}
	}
	resp := postQuery(t, ts.URL, u)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget query: %s, want 429", resp.Status)
	}
}
