package httpserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/httpclient"
	"hidb/internal/session"
	"hidb/internal/wire"
)

// sessionHandler builds a per-session handler over a fresh random dataset.
func sessionHandler(t *testing.T, n, k int, cfg session.Config) (*Handler, *datagen.Dataset) {
	t.Helper()
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          n,
		CatDomains: []int{4},
		NumRanges:  [][2]int64{{0, 1000}},
		DupRate:    0.05,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, 42)
	if err != nil {
		t.Fatal(err)
	}
	return New(srv, WithSessions(cfg)), ds
}

// distinctBatch builds n distinct numeric-range queries.
func distinctBatch(sch *dataspace.Schema, n int) []dataspace.Query {
	qs := make([]dataspace.Query, n)
	for i := range qs {
		lo := int64(i * 3)
		qs[i] = dataspace.UniverseQuery(sch).WithRange(1, lo, lo+2)
	}
	return qs
}

// TestSessionIsolationOverHTTP is the acceptance scenario: two crawlers
// with distinct tokens against one server each observe their own quota and
// journal.
func TestSessionIsolationOverHTTP(t *testing.T) {
	h, ds := sessionHandler(t, 200, 10, session.Config{Quota: 3})
	ts := httptest.NewServer(h)
	defer ts.Close()

	alice, err := httpclient.DialToken(context.Background(), ts.URL, "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := httpclient.DialToken(context.Background(), ts.URL, "bob", nil)
	if err != nil {
		t.Fatal(err)
	}

	qs := distinctBatch(ds.Schema, 5)
	// Alice exhausts her budget mid-batch: she gets the paid prefix plus
	// the typed quota signal.
	res, err := alice.AnswerBatch(context.Background(), qs)
	if !errors.Is(err, hiddendb.ErrQuotaExceeded) || len(res) != 3 {
		t.Fatalf("alice batch: %d results, err=%v; want 3 + quota", len(res), err)
	}
	if _, err := alice.Answer(context.Background(), qs[3]); !errors.Is(err, hiddendb.ErrQuotaExceeded) {
		t.Fatalf("alice post-budget query: %v, want quota", err)
	}
	// Bob's budget is untouched by alice's exhaustion.
	if _, err := bob.Answer(context.Background(), qs[0]); err != nil {
		t.Fatalf("bob blocked by alice's quota: %v", err)
	}
	// A query alice already paid for is still served — free — after 429s.
	if _, err := alice.Answer(context.Background(), qs[0]); err != nil {
		t.Fatalf("alice replaying a paid query: %v", err)
	}

	// Each session journals exactly its own paid queries.
	tbl := h.Sessions()
	sa, err := tbl.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := tbl.Get("bob")
	if err != nil {
		t.Fatal(err)
	}
	if sa.JournalLen() != 3 || sb.JournalLen() != 1 {
		t.Fatalf("journals: alice=%d bob=%d, want 3/1", sa.JournalLen(), sb.JournalLen())
	}
	if sa.Queries() != 3 || sb.Queries() != 1 {
		t.Fatalf("paid queries: alice=%d bob=%d, want 3/1", sa.Queries(), sb.Queries())
	}
	if h.Queries() != 4 {
		t.Fatalf("aggregate queries %d, want 4", h.Queries())
	}
}

// TestStatsEndpoint: GET /stats reports aggregate and per-session
// counters.
func TestStatsEndpoint(t *testing.T) {
	h, ds := sessionHandler(t, 200, 10, session.Config{Quota: 10})
	ts := httptest.NewServer(h)
	defer ts.Close()

	alice, err := httpclient.DialToken(context.Background(), ts.URL, "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	qs := distinctBatch(ds.Schema, 4)
	if _, err := alice.AnswerBatch(context.Background(), qs); err != nil {
		t.Fatal(err)
	}
	// A repeat is a free replay, visible in the stats.
	if _, err := alice.Answer(context.Background(), qs[0]); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %s", resp.Status)
	}
	var msg wire.StatsMsg
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		t.Fatal(err)
	}
	if msg.Queries != 4 {
		t.Errorf("aggregate queries %d, want 4", msg.Queries)
	}
	if msg.Requests != 2 { // /schema is not query-carrying: batch + replay
		t.Errorf("requests %d, want 2 (1 batch + 1 replayed query)", msg.Requests)
	}
	if len(msg.Sessions) != 1 {
		t.Fatalf("%d sessions in stats, want 1", len(msg.Sessions))
	}
	s := msg.Sessions[0]
	if s.Token != "alice" || s.Queries != 4 || s.Remaining != 6 || s.Replays != 1 || s.JournalLen != 4 {
		t.Errorf("alice stats: %+v", s)
	}
}

// TestStatsPlannerCounters: GET /stats surfaces the store's query-planner
// introspection — plan-cache hits/misses and per-access-path counts — and
// repeated query shapes show up as cache hits.
func TestStatsPlannerCounters(t *testing.T) {
	h, ds := sessionHandler(t, 200, 10, session.Config{})
	ts := httptest.NewServer(h)
	defer ts.Close()

	cl, err := httpclient.DialToken(context.Background(), ts.URL, "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Eight distinct-value queries of one shape: the first plans, the rest
	// hit the cached plan (session memoization never fires — the values all
	// differ — so every query reaches the store).
	if _, err := cl.AnswerBatch(context.Background(), distinctBatch(ds.Schema, 8)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var msg wire.StatsMsg
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		t.Fatal(err)
	}
	p := msg.Planner
	if p == nil {
		t.Fatal("stats: no planner counters from a local store")
	}
	if p.Hits+p.Misses != 8 {
		t.Errorf("planner lookups = %d hits + %d misses, want 8 total", p.Hits, p.Misses)
	}
	if p.Shapes < 1 || p.Misses < 1 {
		t.Errorf("planner shapes=%d misses=%d, want >= 1 each", p.Shapes, p.Misses)
	}
	if p.Hits != 7 {
		t.Errorf("planner hits = %d, want 7 (one shape, eight queries)", p.Hits)
	}
	if want := float64(p.Hits) / float64(p.Hits+p.Misses); p.HitRate != want {
		t.Errorf("hit rate %v, want %v", p.HitRate, want)
	}
	var executed int64
	for _, c := range p.Paths {
		executed += c
	}
	if executed != 8 {
		t.Errorf("access-path executions sum to %d, want 8: %v", executed, p.Paths)
	}
}

// TestCrawlStream: POST /crawl extracts the complete database in one round
// trip, at exactly the client-side crawl's query cost.
func TestCrawlStream(t *testing.T) {
	h, ds := sessionHandler(t, 400, 10, session.Config{})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c, err := httpclient.DialToken(context.Background(), ts.URL, "streamer", nil)
	if err != nil {
		t.Fatal(err)
	}
	progress := 0
	var sawDone bool
	res, err := c.Crawl(context.Background(), "", 0, func(ev wire.CrawlEvent) {
		if ev.Done {
			sawDone = true
		} else {
			progress++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawDone {
		t.Error("no terminal event observed")
	}
	if progress != len(res.Tuples) {
		t.Errorf("%d progress events for %d tuples", progress, len(res.Tuples))
	}
	if !res.Tuples.EqualMultiset(ds.Tuples) {
		t.Fatalf("streamed crawl incomplete: %d of %d tuples", len(res.Tuples), len(ds.Tuples))
	}
	if h.Requests() != 1 {
		t.Errorf("crawl cost %d round trips, want 1", h.Requests())
	}

	// The paid cost equals the per-session counter and never exceeds a
	// reference client-side crawl (the server-side crawler is the same
	// algorithm over the same store).
	sess, err := h.Sessions().Get("streamer")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Queries() != res.Queries {
		t.Errorf("stream reported %d paid queries, session counted %d", res.Queries, sess.Queries())
	}
}

// TestCrawlStreamQuota: a crawl dying on the session's budget reports it
// on the terminal event with the tuples streamed so far, and a named
// algorithm is honoured.
func TestCrawlStreamQuota(t *testing.T) {
	h, _ := sessionHandler(t, 400, 10, session.Config{Quota: 3})
	ts := httptest.NewServer(h)
	defer ts.Close()

	c, err := httpclient.DialToken(context.Background(), ts.URL, "poor", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Crawl(context.Background(), "hybrid", 0, nil)
	if !errors.Is(err, hiddendb.ErrQuotaExceeded) {
		t.Fatalf("crawl on a 3-query budget: err=%v, want quota", err)
	}
	if res.Queries != 3 {
		t.Errorf("paid %d queries, want the full budget of 3", res.Queries)
	}

	// An unknown algorithm is a 400, not a stream.
	if _, err := c.Crawl(context.Background(), "made-up", 0, nil); err == nil || errors.Is(err, hiddendb.ErrQuotaExceeded) {
		t.Errorf("unknown algorithm: err=%v, want a bad-request error", err)
	}
}

// TestBodyTokenFallback: a client that cannot set headers can pass the
// token in the batch envelope; the header wins when both are present.
func TestBodyTokenFallback(t *testing.T) {
	h, ds := sessionHandler(t, 200, 10, session.Config{Quota: 10})
	ts := httptest.NewServer(h)
	defer ts.Close()

	qs := distinctBatch(ds.Schema, 2)
	msg := wire.EncodeBatchRequest(qs)
	msg.Token = "body-tok"
	resp := postBatch(t, ts.URL, msg)
	decodeBatch(t, resp) // closes body
	sess, err := h.Sessions().Get("body-tok")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Queries() != 2 {
		t.Fatalf("body token session paid %d queries, want 2", sess.Queries())
	}
	if h.Sessions().Len() != 1 {
		t.Fatalf("%d sessions, want 1", h.Sessions().Len())
	}
}

// TestConcurrentSessionBatches exercises many tokens hitting /batch
// concurrently — the -race companion of the session table's contract.
func TestConcurrentSessionBatches(t *testing.T) {
	h, ds := sessionHandler(t, 300, 10, session.Config{Quota: 100})
	ts := httptest.NewServer(h)
	defer ts.Close()

	const tokens = 6
	const perToken = 3
	qs := distinctBatch(ds.Schema, 5)
	var wg sync.WaitGroup
	for i := 0; i < tokens; i++ {
		for g := 0; g < perToken; g++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c, err := httpclient.DialToken(context.Background(), ts.URL, fmt.Sprintf("tok-%d", i), nil)
				if err != nil {
					t.Error(err)
					return
				}
				if res, err := c.AnswerBatch(context.Background(), qs); err != nil || len(res) != len(qs) {
					t.Errorf("token %d: %d results, err=%v", i, len(res), err)
				}
			}(i)
		}
	}
	wg.Wait()

	if got := h.Sessions().Len(); got != tokens {
		t.Fatalf("%d live sessions, want %d", got, tokens)
	}
	for i := 0; i < tokens; i++ {
		sess, err := h.Sessions().Get(fmt.Sprintf("tok-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		// Every distinct query is paid at least once; concurrent repeats
		// of a not-yet-memoized query may each pay (the memo is not a
		// singleflight), but never more than once per batch.
		if q := sess.Queries(); q < len(qs) || q > perToken*len(qs) {
			t.Errorf("token %d paid %d queries, want %d..%d", i, q, len(qs), perToken*len(qs))
		}
	}
}

// failingServer answers through the inner server until failAt queries have
// been served, then fails every further query with a non-quota error — the
// regression double for a backend dying mid-batch.
type failingServer struct {
	hiddendb.Server
	mu     sync.Mutex
	served int
	failAt int
}

func (f *failingServer) Answer(ctx context.Context, q dataspace.Query) (hiddendb.Result, error) {
	f.mu.Lock()
	if f.served >= f.failAt {
		f.mu.Unlock()
		return hiddendb.Result{}, errors.New("backend on fire")
	}
	f.served++
	f.mu.Unlock()
	return f.Server.Answer(ctx, q)
}

func (f *failingServer) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]hiddendb.Result, error) {
	out := make([]hiddendb.Result, 0, len(qs))
	for _, q := range qs {
		res, err := f.Answer(ctx, q)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// TestBatchFailureDeliversPrefix is the answered-prefix regression test:
// when the wrapped server dies mid-batch, the handler must deliver the
// prefix the server already paid for — with the error signal — and count
// exactly those queries, never refunding queries the inner server served.
func TestBatchFailureDeliversPrefix(t *testing.T) {
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          200,
		CatDomains: []int{4},
		NumRanges:  [][2]int64{{0, 1000}},
		DupRate:    0.05,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	inner := hiddendb.NewCounting(&failingServer{Server: local, failAt: 3})
	h := New(inner, WithQuota(100))
	ts := httptest.NewServer(h)
	defer ts.Close()

	qs := distinctBatch(ds.Schema, 5)
	resp := postBatch(t, ts.URL, wire.EncodeBatchRequest(qs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-batch failure: %s, want 200 with the paid prefix", resp.Status)
	}
	msg := decodeBatch(t, resp)
	if len(msg.Results) != 3 {
		t.Fatalf("delivered %d results, want the 3-query paid prefix", len(msg.Results))
	}
	if msg.Error == "" {
		t.Error("mid-batch failure not signalled in the response")
	}
	if msg.QuotaExceeded {
		t.Error("non-quota failure flagged quotaExceeded")
	}
	// The handler's counter agrees with the wrapped server's own count.
	if h.Queries() != inner.Queries() || h.Queries() != 3 {
		t.Fatalf("handler counted %d, wrapped server %d; want both 3", h.Queries(), inner.Queries())
	}

	// The same failure surfaces through the client as prefix + error.
	c, err := httpclient.Dial(context.Background(), ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.AnswerBatch(context.Background(), qs)
	if err == nil || errors.Is(err, hiddendb.ErrQuotaExceeded) {
		t.Fatalf("client error = %v, want a non-quota server failure", err)
	}
	if len(res) != 0 {
		// This second batch replays nothing (no journal in legacy mode):
		// the server fails on its first query, so the prefix is empty.
		t.Fatalf("second batch delivered %d results, want 0", len(res))
	}
}

// TestBatchFailurePrefixThroughSession: the same contract holds through a
// per-token session stack.
func TestBatchFailurePrefixThroughSession(t *testing.T) {
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          200,
		CatDomains: []int{4},
		NumRanges:  [][2]int64{{0, 1000}},
		DupRate:    0.05,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	h := New(&failingServer{Server: local, failAt: 3}, WithSessions(session.Config{Quota: 100}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	c, err := httpclient.DialToken(context.Background(), ts.URL, "alice", nil)
	if err != nil {
		t.Fatal(err)
	}
	qs := distinctBatch(ds.Schema, 5)
	res, err := c.AnswerBatch(context.Background(), qs)
	if err == nil || errors.Is(err, hiddendb.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want a non-quota server failure", err)
	}
	if len(res) != 3 {
		t.Fatalf("delivered %d results, want the 3-query paid prefix", len(res))
	}
	sess, err := h.Sessions().Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Queries() != 3 || sess.JournalLen() != 3 {
		t.Fatalf("session paid %d queries, journaled %d; want 3/3", sess.Queries(), sess.JournalLen())
	}
	// The journaled prefix replays for free even though the backend is
	// still down.
	if _, err := c.Answer(context.Background(), qs[0]); err != nil {
		t.Fatalf("replaying the paid prefix: %v", err)
	}
}

// TestLegacyCrawlSharesGlobalQuota: in sessionless mode, /crawl debits the
// same global counter as /query and /batch — two concurrent crawls can
// never overrun -quota between them.
func TestLegacyCrawlSharesGlobalQuota(t *testing.T) {
	const quota = 5
	h, _ := testHandler(t, 400, 10, quota)
	ts := httptest.NewServer(h)
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := httpclient.Dial(context.Background(), ts.URL, nil)
			if err != nil {
				t.Error(err)
				return
			}
			// The dataset needs far more than 5 queries: both crawls must
			// die on the shared budget.
			if _, err := c.Crawl(context.Background(), "", 0, nil); !errors.Is(err, hiddendb.ErrQuotaExceeded) {
				t.Errorf("crawl err = %v, want quota", err)
			}
		}()
	}
	wg.Wait()
	if h.Queries() != quota {
		t.Fatalf("concurrent crawls served %d queries total, want exactly the %d-query quota", h.Queries(), quota)
	}
	// The budget is spent for every endpoint.
	resp, err := http.Post(ts.URL+"/crawl", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-budget crawl: %s, want 429", resp.Status)
	}
}

// TestQuotaSpansEndpoints pins WithQuota's contract: the budget is counted
// in queries across /query and /batch alike, so batching cannot stretch
// it.
func TestQuotaSpansEndpoints(t *testing.T) {
	h, ds := testHandler(t, 200, 10, 5)
	ts := httptest.NewServer(h)
	defer ts.Close()

	qs := distinctBatch(ds.Schema, 4)
	// Two singles spend 2 of 5...
	for i := 0; i < 2; i++ {
		resp := postQuery(t, ts.URL, wire.EncodeQuery(qs[i]))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single %d: %s", i, resp.Status)
		}
	}
	// ...so a 4-query batch only affords 3.
	msg := decodeBatch(t, postBatch(t, ts.URL, wire.EncodeBatchRequest(qs)))
	if !msg.QuotaExceeded || len(msg.Results) != 3 {
		t.Fatalf("batch after singles: %d results, flag=%v; want 3 + flag", len(msg.Results), msg.QuotaExceeded)
	}
	if h.Queries() != 5 {
		t.Fatalf("counted %d queries across endpoints, want 5", h.Queries())
	}
	// Both endpoints now refuse.
	resp := postQuery(t, ts.URL, wire.EncodeQuery(qs[0]))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-budget single: %s, want 429", resp.Status)
	}
	resp = postBatch(t, ts.URL, wire.EncodeBatchRequest(qs[:1]))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-budget batch: %s, want 429", resp.Status)
	}
}
