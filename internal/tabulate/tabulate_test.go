package tabulate

import (
	"strings"
	"testing"
)

func TestStringAlignment(t *testing.T) {
	tb := New("Title", "name", "queries")
	tb.AddRow("rank-shrink", 549)
	tb.AddRow("binary-shrink", 815)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two data rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Errorf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "queries") {
		t.Errorf("header line %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "----") {
		t.Errorf("separator line %q", lines[2])
	}
	// All data rows align: both cost cells start at the same offset.
	off := strings.Index(lines[4], "815")
	if off < 0 || strings.Index(lines[3], "549") != off {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("", "x", "y")
	tb.AddRow(1.0, 2.345678)
	row := tb.Rows()[0]
	if row[0] != "1" {
		t.Errorf("whole float rendered as %q, want 1", row[0])
	}
	if row[1] != "2.346" {
		t.Errorf("fraction rendered as %q, want 2.346", row[1])
	}
}

func TestCSV(t *testing.T) {
	tb := New("ignored", "a", "b")
	tb.AddRow("plain", `has "quotes", and commas`)
	csv := tb.CSV()
	want := "a,b\nplain,\"has \"\"quotes\"\", and commas\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestNumRows(t *testing.T) {
	tb := New("", "a")
	if tb.NumRows() != 0 {
		t.Error("fresh table has rows")
	}
	tb.AddRow(1)
	tb.AddRow(2)
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestNoTitle(t *testing.T) {
	tb := New("", "a")
	tb.AddRow("x")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("empty title produced a leading blank line")
	}
}
