// Package tabulate renders the experiment harness's results as aligned
// text tables and CSV, so every figure and table of the paper can be
// regenerated as a readable report from `go test -bench` or the
// hidb-experiments command.
package tabulate

import (
	"fmt"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	// Title is printed above the table, e.g. "Figure 10a: cost vs k".
	Title string
	// Header names the columns.
	Header []string
	rows   [][]string
}

// New creates an empty table with the given title and column names.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the formatted rows (shared slice; do not mutate).
func (t *Table) Rows() [][]string { return t.rows }

func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (RFC-4180-style quoting
// for cells containing commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
