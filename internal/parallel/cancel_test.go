package parallel

import (
	"context"
	"errors"
	"sync"
	"testing"

	"hidb/internal/core"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/journal"
)

// cancelMidBatch serves a fixed number of queries — across Answer and
// AnswerBatch alike — then cancels the crawl and fails everything further
// with the ctx's error, cutting batches short at an answered prefix. It
// is the deterministic stand-in for a cancellation landing while batches
// are in flight.
type cancelMidBatch struct {
	hiddendb.Server
	cancel context.CancelFunc

	mu    sync.Mutex
	serve int
}

func (c *cancelMidBatch) take(n int) (granted int, exhausted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n > c.serve {
		n = c.serve
	}
	c.serve -= n
	return n, c.serve == 0
}

// Granted queries are served under a background ctx — they model work
// already on the wire when the cancellation lands, which completes.
func (c *cancelMidBatch) Answer(ctx context.Context, q dataspace.Query) (hiddendb.Result, error) {
	n, exhausted := c.take(1)
	if exhausted {
		defer c.cancel()
	}
	if n == 0 {
		return hiddendb.Result{}, context.Canceled
	}
	return c.Server.Answer(context.Background(), q)
}

func (c *cancelMidBatch) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]hiddendb.Result, error) {
	n, exhausted := c.take(len(qs))
	if exhausted {
		defer c.cancel()
	}
	res, err := c.Server.AnswerBatch(context.Background(), qs[:n])
	if err != nil {
		return res, err
	}
	if n < len(qs) {
		return res, context.Canceled
	}
	return res, nil
}

// TestParallelCancelInvariants cancels a parallel crawl mid-batch and
// asserts the session-stack layers agree: every query the store answered
// is in the journal and debited from the quota, and nothing else is — no
// double pay, no leaked refund — even with batches cut short at answered
// prefixes. The crawl then resumes on the same journal and the combined
// cost equals the sequential reference. Run under -race this also checks
// the cancellation paths' locking.
func TestParallelCancelInvariants(t *testing.T) {
	ds := dataset(t, specs()["mixed"], 19)
	k := 32
	if m := ds.Tuples.MaxMultiplicity(); m > k {
		k = m
	}
	ref, err := (core.Hybrid{}).Crawl(context.Background(), server(t, ds, k), nil)
	if err != nil {
		t.Fatal(err)
	}

	const budget = 1_000_000
	for _, cutoff := range []int{1, 5, 23} {
		ctx, cancel := context.WithCancel(context.Background())
		inner := &cancelMidBatch{Server: server(t, ds, k), cancel: cancel, serve: cutoff}
		counting := hiddendb.NewCounting(inner)
		quota := hiddendb.NewQuota(counting, budget)
		caching := hiddendb.NewCaching(quota)
		jnl := journal.New(ds.Schema, k)
		jsrv, err := journal.Wrap(caching, jnl)
		if err != nil {
			t.Fatal(err)
		}

		_, err = (Crawler{Workers: 8}).Crawl(ctx, jsrv, nil)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cutoff %d: err = %v, want context.Canceled", cutoff, err)
		}

		paid := counting.Queries()
		if paid != cutoff {
			t.Errorf("cutoff %d: store served %d queries", cutoff, paid)
		}
		if jnl.Len() != paid {
			t.Errorf("cutoff %d: journal %d entries for %d served queries", cutoff, jnl.Len(), paid)
		}
		if spent := budget - quota.Remaining(); spent != paid {
			t.Errorf("cutoff %d: quota debited %d for %d served queries", cutoff, spent, paid)
		}

		// Resume on the same journal: free replays, then exactly the
		// queries the cancellation cut off.
		counting2 := hiddendb.NewCounting(server(t, ds, k))
		caching2 := hiddendb.NewCaching(hiddendb.NewQuota(counting2, budget))
		jsrv2, err := journal.Wrap(caching2, jnl)
		if err != nil {
			t.Fatal(err)
		}
		res, err := (Crawler{Workers: 8}).Crawl(context.Background(), jsrv2, nil)
		if err != nil {
			t.Fatalf("cutoff %d: resume: %v", cutoff, err)
		}
		if !res.Tuples.EqualMultiset(ds.Tuples) {
			t.Fatalf("cutoff %d: resumed crawl incomplete", cutoff)
		}
		if paid+counting2.Queries() != ref.Queries {
			t.Errorf("cutoff %d: interrupted %d + resumed %d != reference %d",
				cutoff, paid, counting2.Queries(), ref.Queries)
		}
	}
}

// TestParallelCancelPrompt: a crawl cancelled from outside (no server
// cooperation) drains its workers and returns the ctx error instead of
// hanging — the shutdown path of a long-running server-side crawl.
func TestParallelCancelPrompt(t *testing.T) {
	ds := dataset(t, specs()["mixed"], 23)
	k := 32
	if m := ds.Tuples.MaxMultiplicity(); m > k {
		k = m
	}
	queries := 0
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := (Crawler{Workers: 8}).Crawl(ctx, server(t, ds, k), &core.Options{
		OnProgress: func(core.CurvePoint) {
			queries++
			if queries == 10 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
