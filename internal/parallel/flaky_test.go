package parallel

import (
	"context"
	"errors"
	"testing"

	"hidb/internal/core"
	"hidb/internal/hiddendb"
	"hidb/internal/journal"
)

// flakyStack builds the full client-side decorator stack — journal →
// caching → quota → counting — over a fault-injecting view of the store,
// the way a real crawl meets a flaky remote.
func flakyStack(t *testing.T, inner hiddendb.Server, cfg hiddendb.FlakyConfig, budget int) (srv hiddendb.Server, jnl *journal.Journal, counting *hiddendb.Counting, quota *hiddendb.Quota) {
	t.Helper()
	flaky := hiddendb.NewFlaky(inner, cfg)
	counting = hiddendb.NewCounting(flaky)
	quota = hiddendb.NewQuota(counting, budget)
	caching := hiddendb.NewCaching(quota)
	jnl = journal.New(inner.Schema(), inner.K())
	jsrv, err := journal.Wrap(caching, jnl)
	if err != nil {
		t.Fatal(err)
	}
	return jsrv, jnl, counting, quota
}

// TestFlakyPrefixStitchingThroughBatcher: a transient fault cutting a
// batch short must leave every layer agreeing on the answered prefix —
// the journal holds exactly the served queries, no more and no fewer —
// and a resume on that journal finishes the crawl at the sequential
// reference cost. This is the answered-prefix stitching regression for
// the speculative pipelined dispatcher: results landing before the fault
// are delivered to their waiting workers and recorded, even though other
// batches were in flight when the fault struck.
func TestFlakyPrefixStitchingThroughBatcher(t *testing.T) {
	ds := dataset(t, specs()["mixed"], 67)
	k := 32
	if m := ds.Tuples.MaxMultiplicity(); m > k {
		k = m
	}
	ref, err := (core.Hybrid{}).Crawl(context.Background(), server(t, ds, k), nil)
	if err != nil {
		t.Fatal(err)
	}

	const budget = 1_000_000
	for _, cfg := range []hiddendb.FlakyConfig{
		{FailNth: 17},                  // recurring transient faults
		{AbortFrom: 9, AbortUntil: 12}, // a window of ctx aborts
	} {
		srv, jnl, counting, quota := flakyStack(t, server(t, ds, k), cfg, budget)
		_, err := (Crawler{Workers: 8}).Crawl(context.Background(), srv, &core.Options{InFlight: 2})
		if err == nil {
			t.Fatalf("cfg %+v: crawl survived the fault plan", cfg)
		}
		wantAbort := cfg.AbortUntil > cfg.AbortFrom
		if wantAbort && !hiddendb.Cancelled(err) {
			t.Fatalf("cfg %+v: err = %v, want a cancellation", cfg, err)
		}
		if !wantAbort && !errors.Is(err, hiddendb.ErrInjected) {
			t.Fatalf("cfg %+v: err = %v, want ErrInjected", cfg, err)
		}

		served := counting.Queries()
		if jnl.Len() != served {
			t.Errorf("cfg %+v: journal %d entries for %d served queries — prefix stitching broke",
				cfg, jnl.Len(), served)
		}
		if wantAbort {
			// Aborted queries are refunded: budget agrees with the store.
			if spent := budget - quota.Remaining(); spent != served {
				t.Errorf("cfg %+v: quota spent %d for %d served", cfg, spent, served)
			}
		}

		// Resume on the same journal with the faults gone: replays are
		// free, and the combined paid cost is exactly the sequential
		// reference — nothing double-paid, nothing lost.
		counting2 := hiddendb.NewCounting(server(t, ds, k))
		caching2 := hiddendb.NewCaching(hiddendb.NewQuota(counting2, budget))
		jsrv2, err := journal.Wrap(caching2, jnl)
		if err != nil {
			t.Fatal(err)
		}
		res, err := (Crawler{Workers: 8}).Crawl(context.Background(), jsrv2, &core.Options{InFlight: 2})
		if err != nil {
			t.Fatalf("cfg %+v: resume: %v", cfg, err)
		}
		if !res.Tuples.EqualMultiset(ds.Tuples) {
			t.Fatalf("cfg %+v: resumed crawl incomplete", cfg)
		}
		if served+counting2.Queries() != ref.Queries {
			t.Errorf("cfg %+v: interrupted %d + resumed %d != reference %d",
				cfg, served, counting2.Queries(), ref.Queries)
		}
	}
}
