package parallel

import (
	"context"
	"errors"
	"testing"

	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/hiddendb"
	"hidb/internal/journal"
	"hidb/internal/simrand"
)

// randomSpec draws a random schema shape: purely numeric, purely
// categorical, or mixed, with random domain sizes and cardinality.
func randomSpec(rng *simrand.RNG) datagen.RandomSpec {
	spec := datagen.RandomSpec{
		N:       500 + rng.Intn(2500),
		DupRate: rng.Float64() * 0.1,
		Skew:    rng.Float64(),
	}
	cats := rng.Intn(3)
	nums := rng.Intn(3)
	if cats == 0 && nums == 0 {
		nums = 1
	}
	for i := 0; i < cats; i++ {
		spec.CatDomains = append(spec.CatDomains, 2+rng.Intn(40))
	}
	for i := 0; i < nums; i++ {
		spec.NumRanges = append(spec.NumRanges, [2]int64{0, 50 + rng.Int64n(100_000)})
	}
	return spec
}

// TestSequentialEquivalenceOracle is the randomized oracle behind the
// package's core claim: across random schemas, batch widths and pipeline
// depths, the parallel crawl's paid query count and extracted tuple
// multiset are exactly the sequential algorithm's. Each trial also picks a
// random cancellation point and checks the interruption invariants: the
// journal holds exactly the queries the store served, and a resume on
// that journal completes the extraction with a combined cost equal to the
// sequential reference. Run under -race this doubles as a lock-discipline
// check of the pipelined dispatcher.
func TestSequentialEquivalenceOracle(t *testing.T) {
	rng := simrand.New(0xA11CE)
	batches := []int{1, 4, 16}
	depths := []int{1, 2, 4}
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		spec := randomSpec(rng)
		ds, err := datagen.Random(spec, rng.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		k := 16 + rng.Intn(48)
		if m := ds.Tuples.MaxMultiplicity(); m > k {
			k = m
		}
		ref, err := (core.Hybrid{}).Crawl(context.Background(), server(t, ds, k), nil)
		if err != nil {
			t.Fatalf("trial %d: sequential reference: %v", trial, err)
		}

		for _, batch := range batches {
			for _, depth := range depths {
				res, err := (Crawler{Workers: 16}).Crawl(context.Background(), server(t, ds, k), &core.Options{
					BatchSize: batch,
					InFlight:  depth,
				})
				if err != nil {
					t.Fatalf("trial %d batch=%d depth=%d: %v", trial, batch, depth, err)
				}
				if res.Queries != ref.Queries {
					t.Errorf("trial %d batch=%d depth=%d: cost %d != sequential %d (spec %+v, k=%d)",
						trial, batch, depth, res.Queries, ref.Queries, spec, k)
				}
				if !res.Tuples.EqualMultiset(ds.Tuples) {
					t.Errorf("trial %d batch=%d depth=%d: tuple multiset differs from the database",
						trial, batch, depth)
				}
			}
		}

		// A random cancellation point: cancel the crawl once the store has
		// served cut queries, then verify the interruption invariants and
		// resume to completion.
		cut := 1 + rng.Intn(ref.Queries)
		depth := depths[rng.Intn(len(depths))]
		counting := hiddendb.NewCounting(server(t, ds, k))
		ctx, cancel := context.WithCancel(context.Background())
		caching := hiddendb.NewCaching(counting)
		jnl := journal.New(ds.Schema, k)
		jsrv, err := journal.Wrap(caching, jnl)
		if err != nil {
			t.Fatal(err)
		}
		_, err = (Crawler{Workers: 16}).Crawl(ctx, jsrv, &core.Options{
			InFlight: depth,
			OnProgress: func(p core.CurvePoint) {
				if p.Queries >= cut {
					cancel()
				}
			},
		})
		cancel()
		if err == nil {
			// The cancellation may land after the crawl's last query; a
			// clean finish must then be a complete, cost-exact extraction
			// (checked below via the journal).
			if jnl.Len() != ref.Queries {
				t.Errorf("trial %d: uninterrupted crawl journaled %d queries, want %d", trial, jnl.Len(), ref.Queries)
			}
		} else if !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d cut=%d: err = %v, want context.Canceled", trial, cut, err)
		}
		paid := counting.Queries()
		if jnl.Len() != paid {
			t.Errorf("trial %d cut=%d: journal %d entries for %d served queries", trial, cut, jnl.Len(), paid)
		}

		counting2 := hiddendb.NewCounting(server(t, ds, k))
		caching2 := hiddendb.NewCaching(counting2)
		jsrv2, err := journal.Wrap(caching2, jnl)
		if err != nil {
			t.Fatal(err)
		}
		res, err := (Crawler{Workers: 16}).Crawl(context.Background(), jsrv2, &core.Options{InFlight: depth})
		if err != nil {
			t.Fatalf("trial %d cut=%d: resume: %v", trial, cut, err)
		}
		if !res.Tuples.EqualMultiset(ds.Tuples) {
			t.Fatalf("trial %d cut=%d: resumed crawl incomplete", trial, cut)
		}
		if paid+counting2.Queries() != ref.Queries {
			t.Errorf("trial %d cut=%d depth=%d: interrupted %d + resumed %d != reference %d",
				trial, cut, depth, paid, counting2.Queries(), ref.Queries)
		}
	}
}
