package parallel

import (
	"context"
	"testing"
	"time"

	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/hiddendb"
)

// simCrawl runs one parallel crawl under a fresh virtual clock and returns
// its deterministic virtual elapsed time, round-trip count and query cost.
func simCrawl(t *testing.T, ds *datagen.Dataset, k, workers, batch, depth int, delay time.Duration) (elapsed time.Duration, trips, queries int) {
	t.Helper()
	clock := hiddendb.NewSimClock()
	sim := hiddendb.NewSimLatency(server(t, ds, k), delay, clock)
	res, err := (Crawler{Workers: workers}).Crawl(context.Background(), sim, &core.Options{
		BatchSize: batch,
		InFlight:  depth,
		Clock:     clock,
	})
	if err != nil {
		t.Fatalf("sim crawl (workers=%d depth=%d): %v", workers, depth, err)
	}
	if !res.Tuples.EqualMultiset(ds.Tuples) {
		t.Fatalf("sim crawl (workers=%d depth=%d): incomplete", workers, depth)
	}
	return clock.Now(), sim.Trips(), res.Queries
}

// wideDataset is a workload with a wide fan-out: rank-shrink over a large
// numeric space splits into hundreds of mutually independent rectangles,
// so the crawl keeps far more queries ready than one batch holds — the
// regime where pipeline depth matters. (Chain-dominated crawls are
// insensitive to depth: a dependency chain's next query is only ready when
// its predecessor completes, at which point a flight slot is free in
// either design.)
func wideDataset(t *testing.T) *datagen.Dataset {
	return dataset(t, datagen.RandomSpec{
		N:         20000,
		NumRanges: [][2]int64{{0, 500000}, {0, 2000}},
		DupRate:   0.02,
	}, 101)
}

// TestSimPipelineDeterministic: the virtual clock's whole point — the same
// crawl yields bit-identical virtual elapsed time, round trips and cost on
// every run, regardless of scheduler interleavings.
func TestSimPipelineDeterministic(t *testing.T) {
	ds := wideDataset(t)
	const k, workers, delay = 32, 16, 3 * time.Millisecond
	e1, t1, q1 := simCrawl(t, ds, k, workers, 0, 2, delay)
	e2, t2, q2 := simCrawl(t, ds, k, workers, 0, 2, delay)
	if e1 != e2 || t1 != t2 || q1 != q2 {
		t.Fatalf("virtual runs diverged: (%v, %d trips, %d queries) vs (%v, %d trips, %d queries)",
			e1, t1, q1, e2, t2, q2)
	}
	if e1 == 0 || t1 == 0 {
		t.Fatalf("virtual run measured nothing: elapsed %v, %d trips", e1, t1)
	}
}

// TestSpeculativePipelineBeatsFlushOnCompletion is the tentpole's
// acceptance claim, measured instead of asserted: at 32 workers under a
// simulated 3 ms round trip, the speculative double-buffered dispatcher
// (depth 2) beats the flush-on-completion batcher (depth 1) by at least
// 1.3× in (virtual) wall clock while regressing round trips by at most
// 10%, at bit-identical query cost.
func TestSpeculativePipelineBeatsFlushOnCompletion(t *testing.T) {
	ds := wideDataset(t)
	const k, workers, delay = 32, 32, 3 * time.Millisecond

	ref, err := (core.Hybrid{}).Crawl(context.Background(), server(t, ds, k), nil)
	if err != nil {
		t.Fatal(err)
	}

	e1, t1, q1 := simCrawl(t, ds, k, workers, 0, 1, delay)
	e2, t2, q2 := simCrawl(t, ds, k, workers, 0, 2, delay)

	if q1 != ref.Queries || q2 != ref.Queries {
		t.Fatalf("pipelining changed the cost metric: depth1 %d, depth2 %d, sequential %d",
			q1, q2, ref.Queries)
	}
	if 10*e1 < 13*e2 {
		t.Errorf("depth 2 is only %.2fx faster than flush-on-completion (%v vs %v), want >= 1.3x",
			float64(e1)/float64(e2), e2, e1)
	}
	if 10*t2 > 11*t1 {
		t.Errorf("depth 2 paid %d round trips vs %d at depth 1 — regression above 10%%", t2, t1)
	}
	t.Logf("depth 1: %v in %d trips; depth 2: %v in %d trips (%.2fx faster, %.1f%% more trips); %d queries",
		e1, t1, e2, t2, float64(e1)/float64(e2), 100*float64(t2-t1)/float64(t1), ref.Queries)
}

// TestSimDepthSweepCostInvariant: pipeline depth can never change the
// paper's cost metric, at any batch width.
func TestSimDepthSweepCostInvariant(t *testing.T) {
	ds := dataset(t, specs()["mixed"], 47)
	k := 32
	if m := ds.Tuples.MaxMultiplicity(); m > k {
		k = m
	}
	ref, err := (core.Hybrid{}).Crawl(context.Background(), server(t, ds, k), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 4, 16} {
		for _, depth := range []int{1, 2, 4} {
			_, _, q := simCrawl(t, ds, k, 16, batch, depth, time.Millisecond)
			if q != ref.Queries {
				t.Errorf("batch=%d depth=%d: cost %d != sequential %d", batch, depth, q, ref.Queries)
			}
		}
	}
}

// TestSimSequentialCrawl: a sequential crawl over a SimLatency server
// drives the clock by itself — no holds, no batcher — and its virtual
// elapsed time is exactly queries × delay, since every paid query is one
// round trip.
func TestSimSequentialCrawl(t *testing.T) {
	ds := dataset(t, specs()["mixed"], 53)
	k := 32
	if m := ds.Tuples.MaxMultiplicity(); m > k {
		k = m
	}
	const delay = 5 * time.Millisecond
	clock := hiddendb.NewSimClock()
	sim := hiddendb.NewSimLatency(server(t, ds, k), delay, clock)
	res, err := (core.Hybrid{}).Crawl(context.Background(), sim, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := time.Duration(res.Queries) * delay; clock.Now() != want {
		t.Fatalf("sequential sim elapsed %v, want %d queries x %v = %v", clock.Now(), res.Queries, delay, want)
	}
	if sim.Trips() != res.Queries {
		t.Fatalf("sequential sim paid %d trips for %d queries", sim.Trips(), res.Queries)
	}
}
