package parallel

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/httpclient"
	"hidb/internal/httpserver"
)

func dataset(t *testing.T, spec datagen.RandomSpec, seed uint64) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Random(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func server(t *testing.T, ds *datagen.Dataset, k int) *hiddendb.Local {
	t.Helper()
	srv, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, 42)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func specs() map[string]datagen.RandomSpec {
	return map[string]datagen.RandomSpec{
		"numeric": {
			N: 4000, NumRanges: [][2]int64{{0, 100000}, {0, 500}}, DupRate: 0.05,
		},
		"categorical": {
			N: 4000, CatDomains: []int{5, 12, 80}, Skew: 0.8, DupRate: 0.05,
		},
		"cat1-mixed": {
			N: 4000, CatDomains: []int{17}, NumRanges: [][2]int64{{0, 9999}}, Skew: 0.9,
		},
		"mixed": {
			N: 4000, CatDomains: []int{4, 9}, NumRanges: [][2]int64{{0, 9999}}, Skew: 0.5, DupRate: 0.05,
		},
	}
}

func TestParallelCompleteEverySpace(t *testing.T) {
	seed := uint64(31)
	for name, spec := range specs() {
		ds := dataset(t, spec, seed)
		for _, workers := range []int{1, 4, 16} {
			k := 32
			if m := ds.Tuples.MaxMultiplicity(); m > k {
				k = m
			}
			srv := server(t, ds, k)
			res, err := (Crawler{Workers: workers}).Crawl(context.Background(), srv, nil)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if !res.Tuples.EqualMultiset(ds.Tuples) {
				t.Fatalf("%s workers=%d: incomplete bag (%d vs %d tuples)",
					name, workers, len(res.Tuples), len(ds.Tuples))
			}
		}
	}
}

// TestParallelCostEqualsSequential is the package's core claim: concurrency
// changes wall-clock time, never the query cost.
func TestParallelCostEqualsSequential(t *testing.T) {
	for name, spec := range specs() {
		ds := dataset(t, spec, 57)
		k := 32
		if m := ds.Tuples.MaxMultiplicity(); m > k {
			k = m
		}
		seq, err := (core.Hybrid{}).Crawl(context.Background(), server(t, ds, k), nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 8} {
			par, err := (Crawler{Workers: workers}).Crawl(context.Background(), server(t, ds, k), nil)
			if err != nil {
				t.Fatal(err)
			}
			if par.Queries != seq.Queries {
				t.Errorf("%s workers=%d: parallel cost %d != sequential %d",
					name, workers, par.Queries, seq.Queries)
			}
		}
	}
}

func TestParallelSpeedupUnderLatency(t *testing.T) {
	ds := dataset(t, datagen.RandomSpec{
		N: 3000, NumRanges: [][2]int64{{0, 100000}, {0, 1000}}, DupRate: 0.02,
	}, 91)
	k := 64
	delay := 3 * time.Millisecond
	run := func(workers int) time.Duration {
		srv := hiddendb.NewLatency(server(t, ds, k), delay)
		start := time.Now()
		res, err := (Crawler{Workers: workers}).Crawl(context.Background(), srv, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Tuples.EqualMultiset(ds.Tuples) {
			t.Fatal("incomplete under latency")
		}
		return time.Since(start)
	}
	serial := run(1)
	wide := run(16)
	// With ~n/k*d independent queries and 16 workers, expect a large
	// speedup; assert a conservative 2x to stay robust on loaded machines.
	if wide > serial/2 {
		t.Errorf("16 workers took %v, 1 worker %v — expected at least 2x speedup", wide, serial)
	}
	t.Logf("1 worker: %v, 16 workers: %v (%.1fx)", serial, wide, float64(serial)/float64(wide))
}

func TestParallelUnsolvable(t *testing.T) {
	ds := dataset(t, datagen.RandomSpec{
		N: 1, NumRanges: [][2]int64{{0, 10}},
	}, 3)
	for i := 0; i < 9; i++ {
		ds.Tuples = append(ds.Tuples, ds.Tuples[0])
	}
	srv := server(t, ds, 4)
	_, err := (Crawler{Workers: 8}).Crawl(context.Background(), srv, nil)
	if !errors.Is(err, core.ErrUnsolvable) {
		t.Fatalf("err = %v, want ErrUnsolvable", err)
	}
}

func TestParallelQuotaPropagates(t *testing.T) {
	ds := dataset(t, specs()["mixed"], 11)
	srv := hiddendb.NewQuota(server(t, ds, 16), 10)
	_, err := (Crawler{Workers: 8}).Crawl(context.Background(), srv, nil)
	if !errors.Is(err, hiddendb.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
}

func TestParallelProgressCallbacks(t *testing.T) {
	ds := dataset(t, specs()["mixed"], 13)
	srv := server(t, ds, 32)
	var mu sync.Mutex
	calls := 0
	res, err := (Crawler{Workers: 8}).Crawl(context.Background(), srv, &core.Options{
		OnProgress: func(p core.CurvePoint) {
			mu.Lock()
			calls++
			mu.Unlock()
		},
		CollectCurve: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Queries {
		t.Errorf("OnProgress fired %d times for %d queries", calls, res.Queries)
	}
	if len(res.Curve) != res.Queries {
		t.Errorf("curve has %d points for %d queries", len(res.Curve), res.Queries)
	}
	final := res.Curve[len(res.Curve)-1]
	if final.Tuples != len(res.Tuples) {
		t.Errorf("final curve point %d tuples, want %d", final.Tuples, len(res.Tuples))
	}
}

func TestParallelQueryFilter(t *testing.T) {
	ds := dataset(t, specs()["mixed"], 17)
	valid := map[[2]int64]bool{}
	for _, tu := range ds.Tuples {
		valid[[2]int64{tu[0], tu[1]}] = true
	}
	srv := server(t, ds, 16)
	res, err := (Crawler{Workers: 8}).Crawl(context.Background(), srv, &core.Options{
		QueryFilter: func(q dataspace.Query) bool {
			a, b := q.Pred(0), q.Pred(1)
			if a.Wild || b.Wild {
				return true
			}
			return valid[[2]int64{a.Value, b.Value}]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tuples.EqualMultiset(ds.Tuples) {
		t.Fatal("filtered parallel crawl incomplete")
	}
}

// TestBatchedCrawlReducesRoundTrips is the acceptance property of the
// batched stack: a parallel crawl over HTTP issues the same number of
// queries as a sequential crawl but packs them into ~B× fewer round trips.
func TestBatchedCrawlReducesRoundTrips(t *testing.T) {
	ds := dataset(t, specs()["mixed"], 77)
	k := 32
	if m := ds.Tuples.MaxMultiplicity(); m > k {
		k = m
	}
	seq, err := (core.Hybrid{}).Crawl(context.Background(), server(t, ds, k), nil)
	if err != nil {
		t.Fatal(err)
	}

	handler := httpserver.New(server(t, ds, k))
	ts := httptest.NewServer(handler)
	defer ts.Close()
	client, err := httpclient.Dial(context.Background(), ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (Crawler{Workers: 16}).Crawl(context.Background(), client, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tuples.EqualMultiset(ds.Tuples) {
		t.Fatal("batched remote crawl incomplete")
	}
	if res.Queries != seq.Queries {
		t.Fatalf("batched crawl cost %d != sequential %d — batching changed the metric", res.Queries, seq.Queries)
	}
	if got := handler.Queries(); got != res.Queries {
		t.Fatalf("server answered %d queries, crawler counted %d", got, res.Queries)
	}
	requests := handler.Requests()
	if requests >= res.Queries/2 {
		t.Fatalf("%d queries took %d round trips — batching is not batching", res.Queries, requests)
	}
	t.Logf("%d queries in %d round trips (%.1f queries/request)",
		res.Queries, requests, float64(res.Queries)/float64(requests))
}

// TestBatchSizeDoesNotChangeCost sweeps Options.BatchSize: the query count
// is batching-invariant, per the AnswerBatch contract.
func TestBatchSizeDoesNotChangeCost(t *testing.T) {
	ds := dataset(t, specs()["cat1-mixed"], 79)
	k := 32
	if m := ds.Tuples.MaxMultiplicity(); m > k {
		k = m
	}
	seq, err := (core.Hybrid{}).Crawl(context.Background(), server(t, ds, k), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 3, 16, 64} {
		res, err := (Crawler{Workers: 16}).Crawl(context.Background(), server(t, ds, k), &core.Options{BatchSize: batch})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Tuples.EqualMultiset(ds.Tuples) {
			t.Fatalf("batch=%d: incomplete", batch)
		}
		if res.Queries != seq.Queries {
			t.Fatalf("batch=%d: cost %d != sequential %d", batch, res.Queries, seq.Queries)
		}
	}
}

// TestShardedServerUnderParallelCrawl drives the whole tentpole stack at
// once: a sharded Local answering batches from the parallel crawler, with
// identical results and cost.
func TestShardedServerUnderParallelCrawl(t *testing.T) {
	ds := dataset(t, specs()["mixed"], 83)
	k := 32
	if m := ds.Tuples.MaxMultiplicity(); m > k {
		k = m
	}
	seq, err := (core.Hybrid{}).Crawl(context.Background(), server(t, ds, k), nil)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := hiddendb.NewLocalSharded(ds.Schema, ds.Tuples, k, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (Crawler{Workers: 16}).Crawl(context.Background(), sharded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tuples.EqualMultiset(ds.Tuples) {
		t.Fatal("crawl over sharded server incomplete")
	}
	if res.Queries != seq.Queries {
		t.Fatalf("sharded cost %d != sequential %d", res.Queries, seq.Queries)
	}
}

// flaggingServer mimics a third-party batch server that answers a whole
// batch and reports quota exhaustion alongside the full results (instead
// of the prefix contract this package's servers follow). Like any Server
// under the pipelined batcher it must tolerate concurrent batches, hence
// the mutex around the budget.
type flaggingServer struct {
	inner  hiddendb.Server
	mu     sync.Mutex
	budget int
}

func (f *flaggingServer) take() (ok, exhausted bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.budget <= 0 {
		return false, true
	}
	f.budget--
	return true, f.budget == 0
}

func (f *flaggingServer) Answer(ctx context.Context, q dataspace.Query) (hiddendb.Result, error) {
	ok, _ := f.take()
	if !ok {
		return hiddendb.Result{}, hiddendb.ErrQuotaExceeded
	}
	return f.inner.Answer(ctx, q)
}

func (f *flaggingServer) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]hiddendb.Result, error) {
	out := make([]hiddendb.Result, 0, len(qs))
	exhausted := false
	for _, q := range qs {
		var ok bool
		ok, exhausted = f.take()
		if !ok {
			return out, hiddendb.ErrQuotaExceeded
		}
		res, err := f.inner.Answer(ctx, q)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	if exhausted {
		// Full results plus the error — the shape the batcher must not
		// drop on the floor.
		return out, hiddendb.ErrQuotaExceeded
	}
	return out, nil
}

func (f *flaggingServer) K() int                    { return f.inner.K() }
func (f *flaggingServer) Schema() *dataspace.Schema { return f.inner.Schema() }

// TestBatchErrorWithFullResultsNotDropped: a quota signal attached to a
// fully answered batch must still abort the crawl (deferred to the next
// query) rather than vanish.
func TestBatchErrorWithFullResultsNotDropped(t *testing.T) {
	ds := dataset(t, specs()["mixed"], 19)
	srv := &flaggingServer{inner: server(t, ds, 16), budget: 10}
	_, err := (Crawler{Workers: 8}).Crawl(context.Background(), srv, nil)
	if !errors.Is(err, hiddendb.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
}

func TestName(t *testing.T) {
	if (Crawler{}).Name() != "parallel-hybrid(1)" {
		t.Error("default name wrong")
	}
	if (Crawler{Workers: 8}).Name() != "parallel-hybrid(8)" {
		t.Error("worker count not in name")
	}
}
