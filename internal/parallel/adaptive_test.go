package parallel

import (
	"context"
	"testing"
	"time"

	"hidb/internal/core"
)

// TestAdaptiveDepthMatchesOrBeatsFixed is the adaptive pipeline's
// acceptance claim, measured under the virtual clock: at 32 workers and a
// simulated 3 ms round trip, Options.InFlight = InFlightAdaptive matches
// or beats the fixed double buffer (-inflight 2) in virtual wall clock,
// with zero round-trip regression and bit-identical query cost.
func TestAdaptiveDepthMatchesOrBeatsFixed(t *testing.T) {
	ds := wideDataset(t)
	const k, workers, delay = 32, 32, 3 * time.Millisecond

	e2, t2, q2 := simCrawl(t, ds, k, workers, 0, 2, delay)
	ea, ta, qa := simCrawl(t, ds, k, workers, 0, core.InFlightAdaptive, delay)

	if qa != q2 {
		t.Fatalf("adaptive depth changed the cost metric: %d queries vs %d at fixed depth 2", qa, q2)
	}
	if ea > e2 {
		t.Errorf("adaptive depth is slower than fixed depth 2: %v vs %v", ea, e2)
	}
	if ta > t2 {
		t.Errorf("adaptive depth paid %d round trips vs %d at fixed depth 2 — regression", ta, t2)
	}
	t.Logf("fixed depth 2: %v in %d trips; adaptive: %v in %d trips (%.2fx); %d queries",
		e2, t2, ea, ta, float64(e2)/float64(ea), qa)
}

// TestAdaptiveDepthDeterministic: the widening decisions happen inside
// the dispatcher's deterministic loop, so two adaptive runs agree bit for
// bit on elapsed time, round trips and cost.
func TestAdaptiveDepthDeterministic(t *testing.T) {
	ds := wideDataset(t)
	const k, workers, delay = 32, 16, 3 * time.Millisecond
	e1, t1, q1 := simCrawl(t, ds, k, workers, 0, core.InFlightAdaptive, delay)
	e2, t2, q2 := simCrawl(t, ds, k, workers, 0, core.InFlightAdaptive, delay)
	if e1 != e2 || t1 != t2 || q1 != q2 {
		t.Fatalf("adaptive virtual runs diverged: (%v, %d trips, %d queries) vs (%v, %d trips, %d queries)",
			e1, t1, q1, e2, t2, q2)
	}
}

// TestAdaptiveDepthCostInvariant: adaptive widening can never change the
// paper's cost metric, at any batch width — including narrowed widths,
// where the default depth already compensates and widening goes further.
func TestAdaptiveDepthCostInvariant(t *testing.T) {
	ds := dataset(t, specs()["mixed"], 47)
	k := 32
	if m := ds.Tuples.MaxMultiplicity(); m > k {
		k = m
	}
	ref, err := (core.Hybrid{}).Crawl(context.Background(), server(t, ds, k), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 4, 16} {
		_, _, q := simCrawl(t, ds, k, 16, batch, core.InFlightAdaptive, time.Millisecond)
		if q != ref.Queries {
			t.Errorf("batch=%d adaptive: cost %d != sequential %d", batch, q, ref.Queries)
		}
	}
}
