package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"hidb/internal/core"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// batcher is the concurrent counterpart of core's session plumbing: a
// thread-safe memoizing, counting, filtering view of the server that packs
// the crawl's ready queries into AnswerBatch round trips.
//
// Workers submit queries and block on their result; a single dispatcher
// goroutine drains the ready queue into batches of up to maxBatch and
// issues each batch as one asynchronous Server.AnswerBatch call. Batch
// formation is ack-clocked, the way group commit batches log writes: a
// query that finds the server idle departs immediately (a dependency chain
// pays no batching delay), but while round trips are in flight, newly ready
// queries accumulate and the batch is flushed when it fills or when a
// round trip completes. Batches therefore grow toward the concurrency of
// the crawl without ever idling the connection, and independent full
// batches overlap. A worker-slot semaphore bounds the in-flight query
// count, exactly as the per-query design's did.
//
// Because a batch is answered exactly as if issued sequentially, the set
// (and count) of queries reaching the server is identical to the
// sequential algorithm's — only the round-trip count shrinks, by roughly
// the batch size. This replaces the earlier safeserver design, which
// locked a semaphore and paid a full round trip per query; maxBatch = 1
// degenerates to exactly that behaviour.
//
// Memoization is singleflight: when two workers need the same query (e.g.
// the same slice query from different tree branches) only one enqueues it
// and the other blocks on the first's result.
type batcher struct {
	// ctx is the crawl's context: every batch round trip is issued under
	// it, so cancelling the crawl cancels its in-flight batches at the
	// server (or on the wire) instead of letting them run to completion.
	ctx      context.Context
	inner    hiddendb.Server
	opts     *core.Options
	maxBatch int
	reqs     chan flightReq
	sem      chan struct{}
	donec    chan struct{}
	stop     chan struct{}

	mu      sync.Mutex
	flights map[string]*flight
	// deferred holds an error the server reported alongside a fully
	// answered batch (e.g. a remote quota signal flagged on the last
	// affordable responses): those results were delivered, and the error
	// fails every query after them, as it would sequentially.
	deferred error
	queries  int
	resolve  int
	overfl   int
	skipped  int
	tuples   int
	curve    []core.CurvePoint
}

// flight is one in-progress or completed query.
type flight struct {
	done chan struct{}
	res  hiddendb.Result
	err  error
}

// flightReq pairs a query with the flight awaiting its response.
type flightReq struct {
	q dataspace.Query
	f *flight
}

// newBatcher starts the dispatcher; the caller must close() it after the
// crawl's last Answer has returned. workers bounds the in-flight query
// count; a batch is wholly in flight while its round trip runs, so
// maxBatch is clamped to workers.
func newBatcher(ctx context.Context, inner hiddendb.Server, workers, maxBatch int, opts *core.Options) *batcher {
	if workers < 1 {
		workers = 1
	}
	if maxBatch < 1 || maxBatch > workers {
		maxBatch = workers
	}
	b := &batcher{
		ctx:      ctx,
		inner:    inner,
		opts:     opts,
		maxBatch: maxBatch,
		reqs:     make(chan flightReq, maxBatch),
		sem:      make(chan struct{}, workers),
		// Buffered to the in-flight bound (each in-flight batch holds at
		// least one slot), so completion signals never block the issuing
		// goroutine even when the dispatcher is stalled on the semaphore.
		donec:   make(chan struct{}, workers),
		stop:    make(chan struct{}),
		flights: make(map[string]*flight),
	}
	go b.run()
	return b
}

// close stops the dispatcher. Safe only once no Answer call is pending.
func (b *batcher) close() { close(b.stop) }

// Answer submits q to the dispatcher and waits for its response. Each
// distinct query is issued at most once across all workers. A crawl whose
// ctx is already cancelled fails fast without enqueueing.
func (b *batcher) Answer(q dataspace.Query) (hiddendb.Result, error) {
	if err := b.ctx.Err(); err != nil {
		return hiddendb.Result{}, err
	}
	if b.opts.QueryFilter != nil && !b.opts.QueryFilter(q) {
		b.mu.Lock()
		b.skipped++
		b.mu.Unlock()
		return hiddendb.Result{}, nil
	}
	key := q.Key()
	b.mu.Lock()
	if f, ok := b.flights[key]; ok {
		b.mu.Unlock()
		<-f.done
		return f.res, f.err
	}
	if err := b.deferred; err != nil {
		b.mu.Unlock()
		return hiddendb.Result{}, err
	}
	f := &flight{done: make(chan struct{})}
	b.flights[key] = f
	b.mu.Unlock()

	b.reqs <- flightReq{q: q, f: f}
	<-f.done
	return f.res, f.err
}

// run is the dispatcher loop. Wait for a ready query (reaping completion
// signals meanwhile), greedily drain whatever else is ready, then — while
// the server is busy with earlier batches — keep collecting until the
// batch fills or a round trip completes. Reserve one worker slot per query
// and launch the batch without waiting for it.
func (b *batcher) run() {
	inflight := 0 // batches launched and not yet reaped from donec
	for {
		var first flightReq
	wait:
		for {
			select {
			case first = <-b.reqs:
				break wait
			case <-b.donec:
				inflight--
			case <-b.stop:
				return
			}
		}
		batch := make([]flightReq, 1, b.maxBatch)
		batch[0] = first
	drain:
		for len(batch) < b.maxBatch {
			select {
			case r := <-b.reqs:
				batch = append(batch, r)
			default:
				break drain
			}
		}
		// Ack clock: an idle server gets the batch at once; a busy one
		// buys time for the batch to grow until a completion (or a full
		// batch) flushes it.
	collect:
		for inflight > 0 && len(batch) < b.maxBatch {
			select {
			case r := <-b.reqs:
				batch = append(batch, r)
			case <-b.donec:
				inflight--
				break collect
			}
		}
		// The acquire cannot block at shutdown: stop is only closed once
		// every Answer has returned, i.e. when no batch is pending, and
		// the slots of in-flight batches are released independently of
		// this loop.
		for range batch {
			b.sem <- struct{}{}
		}
		inflight++
		go func(batch []flightReq) {
			b.issue(batch)
			for range batch {
				<-b.sem
			}
			b.donec <- struct{}{}
		}(batch)
	}
}

// issue sends one batch to the server and delivers the responses. Per the
// Server contract an error leaves results for the answered prefix only; the
// requests beyond it all fail with the batch's error.
func (b *batcher) issue(batch []flightReq) {
	qs := make([]dataspace.Query, len(batch))
	for i, r := range batch {
		qs[i] = r.q
	}
	results, err := b.inner.AnswerBatch(b.ctx, qs)
	if err == nil && len(results) < len(batch) {
		err = fmt.Errorf("parallel: server answered %d of %d batched queries without an error", len(results), len(batch))
	}

	b.mu.Lock()
	if err != nil {
		if len(results) == len(batch) {
			// Every query of this batch was answered; the error concerns
			// whatever would come next (a quota flagged on the last
			// affordable responses). Deliver the results and fail later
			// queries instead of dropping the signal.
			b.deferred = err
			err = nil
		} else if errors.Is(err, hiddendb.ErrQuotaExceeded) || hiddendb.Cancelled(err) {
			// The budget died mid-batch, or the crawl was cancelled:
			// this batch's unanswered queries fail below with the error,
			// and every later distinct query is doomed too — budgets
			// never come back within a crawl, and a cancelled ctx stays
			// cancelled. Latch the error so they fail fast instead of
			// each paying a pointless round trip.
			b.deferred = err
		}
	}
	points := make([]core.CurvePoint, len(results))
	for i, res := range results {
		b.queries++
		if res.Overflow {
			b.overfl++
		} else {
			b.resolve++
		}
		points[i] = core.CurvePoint{Queries: b.queries, Tuples: b.tuples}
		if b.opts.CollectCurve {
			b.curve = append(b.curve, points[i])
		}
	}
	b.mu.Unlock()
	if b.opts.OnProgress != nil {
		for _, p := range points {
			b.opts.OnProgress(p)
		}
	}

	for i, r := range batch {
		if i < len(results) {
			r.f.res = results[i]
		} else {
			r.f.err = err
		}
		close(r.f.done)
	}
}

// noteTuples records output growth for the progressiveness curve.
func (b *batcher) noteTuples(n int) {
	b.mu.Lock()
	b.tuples += n
	b.mu.Unlock()
}

// stats snapshots the counters for the final Result.
func (b *batcher) stats() (queries, resolved, overflowed, skipped int, curve []core.CurvePoint) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.opts.CollectCurve && len(b.curve) > 0 {
		b.curve[len(b.curve)-1].Tuples = b.tuples
	}
	return b.queries, b.resolve, b.overfl, b.skipped, b.curve
}
