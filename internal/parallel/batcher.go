package parallel

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hidb/internal/core"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/httpclient"
)

// batcher is the concurrent counterpart of core's session plumbing: a
// thread-safe memoizing, counting, filtering view of the server that packs
// the crawl's ready queries into AnswerBatch round trips.
//
// Workers submit queries and block on their result; a single dispatcher
// goroutine drains the ready queue into batches of up to maxBatch and
// issues each batch as one asynchronous Server.AnswerBatch call. Dispatch
// is speculative and double-buffered: up to depth round trips fly at once,
// and while they do, newly ready queries accumulate into the next batch,
// which departs the moment a flight slot is free — when one is already
// free, immediately, so a dependency chain pays no batching delay. Only
// when all depth slots are busy does the batch wait, growing until a
// completion frees a slot (or it fills to maxBatch and queues for the next
// slot). This removes the flush-on-completion pipeline bubble of the
// previous design, where a query arriving while any round trip was in
// flight always waited for that round trip to finish: with depth ≥ 2 the
// connection stays busy and the ready queue keeps draining behind it.
// depth = 1 restores the old flush-on-completion behaviour exactly, and
// maxBatch = depth = 1 degenerates to the original query-at-a-time
// semaphore.
//
// Because a batch is answered exactly as if issued sequentially, the set
// (and count) of queries reaching the server is identical to the
// sequential algorithm's — pipelining changes only round trips and wall
// clock, never the paper's cost metric.
//
// Memoization is singleflight: when two workers need the same query (e.g.
// the same slice query from different tree branches) only one enqueues it
// and the other blocks on the first's result.
//
// # Virtual time
//
// With a hiddendb.SimClock (core.Options.Clock), the whole pipeline runs
// under deterministic virtual time: the batcher keeps the clock's hold
// count — one hold per runnable worker, per queued request, per completion
// signal — so the clock advances only when every goroutine of the crawl is
// blocked on an in-flight (virtually sleeping) round trip. Launches then
// happen only at quiescence ticks (the clock's idle callback), over the
// pending list in canonical key order — a completion by itself flushes
// nothing; the workers it wakes get to submit their follow-up queries at
// the same virtual instant first, and since any batch launched within a
// simulated instant departs at that instant, the deferral is free. Batch
// sizes, batch membership, round-trip counts and the virtual elapsed time
// therefore depend only on the crawl's dependency structure, not on
// scheduler timing.
type batcher struct {
	// ctx is the crawl's context: every batch round trip is issued under
	// it, so cancelling the crawl cancels its in-flight batches at the
	// server (or on the wire) instead of letting them run to completion.
	ctx      context.Context
	inner    hiddendb.Server
	opts     *core.Options
	maxBatch int
	// depth is the pipeline's base depth. The dispatcher owns the live
	// (possibly widened) value as run's local; partial batches are always
	// gated at this base value, so idleTick reads it directly.
	depth int
	// adaptive lets the dispatcher widen the depth up to maxAdaptiveDepth
	// whenever a full-width batch is blocked on a flight slot — the
	// signal that one more overlapped round trip saves its whole latency.
	// No blocked full batch, no widening: the savings have flattened.
	adaptive bool
	clock    *hiddendb.SimClock // nil outside virtual-time simulations
	reqs     chan flightReq
	donec    chan struct{}
	tickc    chan struct{}
	stop     chan struct{}

	// pendingN, inflightN and depthN mirror the dispatcher's private state
	// for the virtual clock's idle callback, which must decide "is there a
	// batch to flush and a slot to fly it in — or a widening to grant?"
	// from outside the dispatcher goroutine. They are only read at
	// quiescence, when the dispatcher is parked and the values are exact.
	pendingN  atomic.Int32
	inflightN atomic.Int32
	depthN    atomic.Int32

	// progressMu serializes OnProgress callbacks across concurrently
	// completing round trips: the sequential engine invokes the callback
	// serially, so callers write non-thread-safe observers — the parallel
	// engine must honour the same contract. Separate from mu so a slow
	// observer never blocks result delivery or the dispatcher.
	progressMu sync.Mutex

	mu      sync.Mutex
	flights map[string]*flight
	// deferred holds an error the server reported alongside a fully
	// answered batch (e.g. a remote quota signal flagged on the last
	// affordable responses): those results were delivered, and the error
	// fails every query after them, as it would sequentially.
	deferred error
	queries  int
	resolve  int
	overfl   int
	skipped  int
	tuples   int
	curve    []core.CurvePoint
}

// flight is one in-progress or completed query.
type flight struct {
	done chan struct{}
	res  hiddendb.Result
	err  error
	// waiters counts the workers blocked on done; the deliverer mints one
	// clock hold per waiter before waking them. sealed marks the flight
	// delivered, so a late memo hit returns without blocking (and without
	// touching its own hold). Both are guarded by batcher.mu.
	waiters int
	sealed  bool
}

// flightReq pairs a query with the flight awaiting its response. key is
// q.Key(), precomputed by Answer: under a virtual clock the dispatcher
// sorts the pending list by it (see run).
type flightReq struct {
	q   dataspace.Query
	key string
	f   *flight
}

// newBatcher starts the dispatcher; the caller must close() it after the
// crawl's last Answer has returned. maxBatch bounds the width of one round
// trip, depth how many round trips overlap: at most maxBatch×depth queries
// are in flight at once.
func newBatcher(ctx context.Context, inner hiddendb.Server, maxBatch, depth int, adaptive bool, clock *hiddendb.SimClock, opts *core.Options) *batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if depth < 1 {
		depth = 1
	}
	maxDepth := depth
	if adaptive && maxDepth < maxAdaptiveDepth {
		maxDepth = maxAdaptiveDepth
	}
	b := &batcher{
		ctx:      ctx,
		inner:    inner,
		opts:     opts,
		maxBatch: maxBatch,
		depth:    depth,
		adaptive: adaptive,
		clock:    clock,
		reqs:     make(chan flightReq, maxBatch),
		// Buffered to the flight-slot count (the widest the pipeline may
		// ever grow) so completion signals never block a delivering
		// goroutine even when the dispatcher is busy.
		donec:   make(chan struct{}, maxDepth),
		tickc:   make(chan struct{}, 1),
		stop:    make(chan struct{}),
		flights: make(map[string]*flight),
	}
	b.depthN.Store(int32(depth))
	if clock != nil {
		clock.SetIdle(b.idleTick)
	}
	go b.run()
	return b
}

// close stops the dispatcher. Safe only once no Answer call is pending.
func (b *batcher) close() {
	if b.clock != nil {
		b.clock.SetIdle(nil)
		// A tick granted just before SetIdle carries a hold nobody will
		// consume now that the dispatcher is stopping; drop it.
		select {
		case <-b.tickc:
			b.clock.Release()
		default:
		}
	}
	close(b.stop)
}

// idleTick is the SimClock's quiescence callback: wake the dispatcher
// before virtual time advances whenever it could launch something — a
// full-width batch with a flight slot free (or, in adaptive mode, with
// headroom left to widen one), or a partial batch with a base-depth slot
// free. Under a virtual clock the dispatcher launches only on these ticks
// (see run), so the conditions here must cover exactly the launch rules.
// The granted hold rides the tick message and is released by the
// dispatcher once the flush is processed. Runs with the clock's lock
// held, while every crawl goroutine is parked — the atomics are exact.
//
// The partial-flush slot test uses the base depth, never a widened one:
// partial batches do not ride widened slots — see run. Gating partials on
// the widened depth would flush them early and pay extra round trips for
// wall clock the full batches already won.
//
// A tick must never fire when the dispatcher would wake and change
// nothing: it would park back into the identical quiescent state and
// re-tick forever, without virtual time ever passing.
func (b *batcher) idleTick() bool {
	pending := b.pendingN.Load()
	if pending == 0 {
		return false
	}
	inflight, depth := b.inflightN.Load(), b.depthN.Load()
	full := pending >= int32(b.maxBatch) &&
		(inflight < depth || (b.adaptive && depth < maxAdaptiveDepth))
	partial := inflight < int32(b.depth)
	if !full && !partial {
		return false
	}
	select {
	case b.tickc <- struct{}{}:
		return true
	default:
		// A tick is already pending; its hold keeps the clock from
		// advancing, so quiescence cannot actually be reached again before
		// the dispatcher consumes it. Defensive only.
		return false
	}
}

// Answer submits q to the dispatcher and waits for its response. Each
// distinct query is issued at most once across all workers. A crawl whose
// ctx is already cancelled fails fast without enqueueing.
//
// Clock protocol: the calling worker owns one hold. A worker that joins an
// existing flight releases it while blocked (delivery mints it back); the
// worker that creates the flight keeps its hold riding the queued request,
// where the dispatcher assumes it.
func (b *batcher) Answer(q dataspace.Query) (hiddendb.Result, error) {
	if err := b.ctx.Err(); err != nil {
		return hiddendb.Result{}, err
	}
	if b.opts.QueryFilter != nil && !b.opts.QueryFilter(q) {
		b.mu.Lock()
		b.skipped++
		b.mu.Unlock()
		return hiddendb.Result{}, nil
	}
	key := q.Key()
	b.mu.Lock()
	if f, ok := b.flights[key]; ok {
		if f.sealed {
			b.mu.Unlock()
			return f.res, f.err
		}
		f.waiters++
		b.mu.Unlock()
		b.clock.Release()
		<-f.done // delivery minted this worker's hold back
		return f.res, f.err
	}
	if err := b.deferred; err != nil {
		b.mu.Unlock()
		return hiddendb.Result{}, err
	}
	f := &flight{done: make(chan struct{}), waiters: 1}
	b.flights[key] = f
	b.mu.Unlock()

	b.reqs <- flightReq{q: q, key: key, f: f} // the worker's hold rides the request
	<-f.done
	return f.res, f.err
}

// maxAdaptiveDepth caps how far an adaptive pipeline may widen — a
// runaway bound far above any latency×throughput product the crawls here
// produce, not a tuning knob.
const maxAdaptiveDepth = 64

// run is the dispatcher loop. Wait for a trigger — a ready query, a
// completed round trip, or (under a virtual clock) a quiescence tick —
// greedily drain whatever else is ready into the pending batch, then
// launch as much of it as the free flight slots allow. The pending list is
// unbounded: the dispatcher never blocks outside its select, so the ready
// channel cannot back up behind a stalled launch, and — under a virtual
// clock — queries waiting for a slot hold no clock holds, letting
// simulated time pass while they wait.
func (b *batcher) run() {
	var pending []flightReq
	depth := b.depth
	inflight := 0
	held := 0 // clock holds owned by the dispatcher (one per trigger consumed)

	for {
		ticked := false
		select {
		case r := <-b.reqs:
			pending = append(pending, r)
		case <-b.donec:
			inflight--
		case <-b.tickc:
			ticked = true
		case <-b.stop:
			return
		}
		held++
	drain:
		for {
			select {
			case r := <-b.reqs:
				pending = append(pending, r)
				held++
			case <-b.donec:
				inflight--
				held++
			default:
				break drain
			}
		}
		// Launch while a flight slot is free. Under real time this is
		// eager: a full-width batch departs the moment it fills, a partial
		// one speculatively once the ready queue is drained (waiting could
		// only delay it), and widening happens the instant a full batch is
		// blocked. Under a virtual clock every launch decision instead
		// waits for a quiescence tick and processes the pending list in
		// canonical key order: mid-instant, which queries have arrived and
		// in what order is scheduler noise, but the quiescent set is exact
		// — and since a batch launched anywhere within a simulated instant
		// departs at that instant, the deferral costs no virtual time.
		// Batch membership (in particular, which queries are left behind
		// when the slots run out) therefore depends only on the crawl's
		// dependency structure. In adaptive mode a partial batch is
		// additionally gated at the base depth: widened slots carry
		// full-width batches only, so widening can move full batches
		// earlier but never fragments the stream into extra partial round
		// trips.
		if b.clock == nil || ticked {
			if b.clock != nil {
				sort.Slice(pending, func(i, j int) bool {
					return pending[i].key < pending[j].key
				})
			}
			for {
				for len(pending) > 0 && inflight < depth {
					if len(pending) < b.maxBatch && inflight >= b.depth {
						break
					}
					n := min(b.maxBatch, len(pending))
					batch := make([]flightReq, n)
					copy(batch, pending)
					rest := copy(pending, pending[n:])
					pending = pending[:rest]
					inflight++
					b.inflightN.Store(int32(inflight))
					b.clock.Hold() // the issue goroutine's hold
					go b.issue(batch)
				}
				// Adaptive widening: a full-width batch is ready but every
				// slot is busy — launching it now instead of after the
				// next completion saves a round trip of latency, so widen
				// by one and launch it. When no full batch is blocked, the
				// savings have flattened and the depth stays put.
				if !b.adaptive || depth >= maxAdaptiveDepth ||
					inflight < depth || len(pending) < b.maxBatch {
					break
				}
				depth++
				b.depthN.Store(int32(depth))
			}
		}
		b.pendingN.Store(int32(len(pending)))
		b.inflightN.Store(int32(inflight))
		// Park: drop the trigger holds so virtual time can pass while the
		// pending batch waits for a slot or for the next instant's tick.
		for ; held > 0; held-- {
			b.clock.Release()
		}
	}
}

// issue sends one batch to the server and delivers the responses. Per the
// Server contract an error leaves results for the answered prefix only; the
// requests beyond it all fail with the batch's error.
func (b *batcher) issue(batch []flightReq) {
	qs := make([]dataspace.Query, len(batch))
	for i, r := range batch {
		qs[i] = r.q
	}
	results, err := b.inner.AnswerBatch(b.ctx, qs)
	if err == nil && len(results) < len(batch) {
		err = fmt.Errorf("parallel: server answered %d of %d batched queries without an error", len(results), len(batch))
	}

	b.mu.Lock()
	if err != nil {
		if len(results) == len(batch) {
			// Every query of this batch was answered; the error concerns
			// whatever would come next (a quota flagged on the last
			// affordable responses). Deliver the results and fail later
			// queries instead of dropping the signal.
			b.deferred = err
			err = nil
		} else if errors.Is(err, hiddendb.ErrQuotaExceeded) || hiddendb.Cancelled(err) || isTransportExhausted(err) {
			// The budget died mid-batch, the crawl was cancelled, or the
			// retrying transport gave up after its full attempt/budget
			// allowance: this batch's unanswered queries fail below with
			// the error, and every later distinct query is doomed too —
			// budgets never come back within a crawl, a cancelled ctx
			// stays cancelled, and a connection that outlived every
			// retry won't heal for the very next round trip. Latch the
			// error so they fail fast instead of each paying a pointless
			// round trip (for exhausted retries, a pointless full retry
			// cycle).
			b.deferred = err
		}
	}
	points := make([]core.CurvePoint, len(results))
	waiters := 0
	for i, r := range batch {
		if i < len(results) {
			r.f.res = results[i]
			b.queries++
			if results[i].Overflow {
				b.overfl++
			} else {
				b.resolve++
			}
			points[i] = core.CurvePoint{Queries: b.queries, Tuples: b.tuples}
			if b.opts.CollectCurve {
				b.curve = append(b.curve, points[i])
			}
		} else {
			r.f.err = err
		}
		r.f.sealed = true
		waiters += r.f.waiters
	}
	b.mu.Unlock()
	if b.opts.OnProgress != nil {
		b.progressMu.Lock()
		for _, p := range points {
			b.opts.OnProgress(p)
		}
		b.progressMu.Unlock()
	}

	// Clock protocol: mint the woken workers' holds (and the completion
	// signal's) before any of them can run, then retire this goroutine's.
	for i := 0; i < waiters+1; i++ {
		b.clock.Hold()
	}
	for _, r := range batch {
		close(r.f.done)
	}
	b.donec <- struct{}{}
	b.clock.Release()
}

// noteTuples records output growth for the progressiveness curve.
func (b *batcher) noteTuples(n int) {
	b.mu.Lock()
	b.tuples += n
	b.mu.Unlock()
}

// stats snapshots the counters for the final Result.
func (b *batcher) stats() (queries, resolved, overflowed, skipped int, curve []core.CurvePoint) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.opts.CollectCurve && len(b.curve) > 0 {
		b.curve[len(b.curve)-1].Tuples = b.tuples
	}
	return b.queries, b.resolve, b.overfl, b.skipped, b.curve
}

// isTransportExhausted reports whether err is a terminal transport failure:
// the retrying HTTP client already spent every attempt (or its retry
// budget) before surfacing it, so an immediate re-issue cannot succeed.
func isTransportExhausted(err error) bool {
	var te *httpclient.TransportError
	return errors.As(err, &te)
}
