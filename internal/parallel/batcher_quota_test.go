package parallel

import (
	"context"
	"errors"
	"sync"
	"testing"

	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// roundTrips counts AnswerBatch/Answer calls reaching the wrapped server —
// the round trips a real remote client would pay for.
type roundTrips struct {
	hiddendb.Server
	mu    sync.Mutex
	calls int
}

func (r *roundTrips) Answer(ctx context.Context, q dataspace.Query) (hiddendb.Result, error) {
	r.mu.Lock()
	r.calls++
	r.mu.Unlock()
	return r.Server.Answer(ctx, q)
}

func (r *roundTrips) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]hiddendb.Result, error) {
	r.mu.Lock()
	r.calls++
	r.mu.Unlock()
	return r.Server.AnswerBatch(ctx, qs)
}

func (r *roundTrips) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

// TestBatcherFailsFastAfterQuota is the post-quota hammering regression:
// once a round trip reports ErrQuotaExceeded — even with a short answered
// prefix — later distinct queries must fail fast from the latched error
// instead of each paying a doomed round trip against the exhausted server.
func TestBatcherFailsFastAfterQuota(t *testing.T) {
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          200,
		CatDomains: []int{4},
		NumRanges:  [][2]int64{{0, 1000}},
		DupRate:    0.05,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	rt := &roundTrips{Server: hiddendb.NewQuota(local, 2)}

	// maxBatch = depth = 1 keeps the dispatch order deterministic: each
	// Answer is its own round trip.
	b := newBatcher(context.Background(), rt, 1, 1, false, nil, &core.Options{})
	defer b.close()

	qs := make([]dataspace.Query, 5)
	for i := range qs {
		lo := int64(i * 3)
		qs[i] = dataspace.UniverseQuery(ds.Schema).WithRange(1, lo, lo+2)
	}

	// Two queries fit the budget.
	for i := 0; i < 2; i++ {
		if _, err := b.Answer(qs[i]); err != nil {
			t.Fatalf("in-budget query %d: %v", i, err)
		}
	}
	// The third pays the round trip that discovers the exhaustion: the
	// quota cuts the batch short (empty prefix, len(results) < len(batch)).
	if _, err := b.Answer(qs[2]); !errors.Is(err, hiddendb.ErrQuotaExceeded) {
		t.Fatalf("query 2: err=%v, want quota", err)
	}
	after := rt.count()
	if after != 3 {
		t.Fatalf("round trips at exhaustion: %d, want 3", after)
	}

	// Every later distinct query fails fast — zero further round trips.
	for i := 3; i < 5; i++ {
		if _, err := b.Answer(qs[i]); !errors.Is(err, hiddendb.ErrQuotaExceeded) {
			t.Fatalf("post-budget query %d: err=%v, want quota", i, err)
		}
	}
	if got := rt.count(); got != after {
		t.Fatalf("post-budget queries paid %d extra round trips, want 0", got-after)
	}
}

// TestParallelCrawlStopsAtQuota: a whole parallel crawl against an
// exhausted budget issues no storm of doomed round trips — the round-trip
// count stays within the batches in flight when the quota tripped.
func TestParallelCrawlStopsAtQuota(t *testing.T) {
	ds, err := datagen.Random(datagen.RandomSpec{
		N:          2000,
		CatDomains: []int{6},
		NumRanges:  [][2]int64{{0, 5000}},
		DupRate:    0.05,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 7
	const workers = 4
	rt := &roundTrips{Server: hiddendb.NewQuota(local, budget)}

	_, err = Crawler{Workers: workers}.Crawl(context.Background(), rt, nil)
	if !errors.Is(err, hiddendb.ErrQuotaExceeded) {
		t.Fatalf("crawl on a %d-query budget: err=%v, want quota", budget, err)
	}
	// Before the latch fix, every ready query after exhaustion paid its
	// own doomed round trip. With it, only round trips already in flight
	// when the quota tripped can still land: the budget's trips plus at
	// most one per worker.
	if got := rt.count(); got > budget+workers {
		t.Fatalf("%d round trips for a %d-query budget with %d workers; post-quota hammering is back", got, budget, workers)
	}
}
