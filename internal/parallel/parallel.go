// Package parallel runs the paper's crawling algorithms with many queries
// in flight at once. The paper's cost metric is the number of queries, not
// wall-clock time — but a real crawl pays a network round-trip per query,
// and the algorithms' sub-problems (the rectangles produced by a split, the
// children of a data-space-tree node, the per-point numeric sub-crawls of
// hybrid) are mutually independent. Executing them concurrently leaves the
// set of issued queries exactly equal to the sequential algorithms' (each
// region's fate depends only on its own response, and a singleflight memo
// table deduplicates slice queries), so the query cost is unchanged while
// wall-clock time divides by the worker count.
//
// Concurrent sub-problems do not issue their queries one at a time: ready
// queries are drained into batches and sent through Server.AnswerBatch, so
// B concurrently ready queries cost a single round trip. Because a batch is
// answered exactly as if issued sequentially, this changes neither the
// query count nor any response — only the number of round trips, which
// shrinks by roughly the batch size (Options.BatchSize, defaulting to the
// worker count).
//
// Batches are dispatched speculatively, double-buffered: up to
// Options.InFlight round trips (default 2) overlap, and the next batch
// departs the moment a flight slot is free instead of waiting for the
// previous round trip to complete — see batcher. With a
// hiddendb.SimClock in Options.Clock the whole pipeline runs under
// deterministic virtual time, which is how the latency ablation measures
// wall clock reproducibly without sleeping.
package parallel

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"hidb/internal/core"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// Crawler runs hybrid (and its degenerate numeric/categorical forms) with
// many queries in flight. It implements core.Crawler.
type Crawler struct {
	// Workers is the width of one AnswerBatch round trip: the largest
	// batch a single round trip may carry (unless Options.BatchSize lowers
	// it). Up to Options.InFlight round trips (default 2) overlap, so at
	// most Workers × InFlight queries are in flight at once. Zero or one
	// degenerates to (a pipelined equivalent of) the sequential algorithm.
	Workers int
}

// Name implements core.Crawler.
func (c Crawler) Name() string {
	return fmt.Sprintf("parallel-hybrid(%d)", c.workers())
}

func (c Crawler) workers() int {
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

// Crawl implements core.Crawler. Options are honoured; OnProgress and
// QueryFilter callbacks must be safe for concurrent invocation.
// Cancelling ctx aborts the crawl: the in-flight batches are cancelled
// through the server (their answered prefixes are still counted and, in a
// journaled stack, recorded), the workers drain, and the ctx's error is
// returned.
func (c Crawler) Crawl(ctx context.Context, srv hiddendb.Server, opts *core.Options) (*core.Result, error) {
	if opts == nil {
		opts = &core.Options{}
	}
	maxBatch := opts.BatchSize
	if maxBatch <= 0 || maxBatch > c.workers() {
		maxBatch = c.workers()
	}
	depth := opts.InFlight
	adaptive := depth == core.InFlightAdaptive
	if depth <= 0 {
		// Double-buffer by default; with a narrowed batch width, keep at
		// least Workers queries in flight (the pre-pipelining bound) by
		// deepening the pipeline to compensate. Adaptive mode starts from
		// the same default and widens on demand (see batcher).
		depth = max(2, (c.workers()+maxBatch-1)/maxBatch)
	}
	b := newBatcher(ctx, srv, maxBatch, depth, adaptive, opts.Clock, opts)
	defer b.close()
	p := &pool{
		srv:    b,
		clock:  opts.Clock,
		schema: srv.Schema(),
		k:      srv.K(),
		opts:   opts,
		quit:   make(chan struct{}),
	}
	cat := p.schema.Cat()

	// Under a virtual clock the crawl's root goroutine counts as runnable
	// until it has finished seeding tasks; without the hold, the clock
	// could advance while the first spawns are still being set up.
	p.clock.Hold()

	if cat == 0 {
		p.spawn(func() error { return p.rankShrink(dataspace.UniverseQuery(p.schema)) })
	} else if cat == 1 {
		// Theorem 1's cat = 1 case: one slice query per A1 value, each
		// overflowing one finished by rank-shrink — all independent.
		u := p.schema.Attr(0).DomainSize
		p.spawnChildren(int64(u), func(v int64) error {
			q := dataspace.UniverseQuery(p.schema).WithValue(0, v)
			res, err := p.srv.Answer(q)
			if err != nil {
				return err
			}
			if res.Resolved() {
				p.emit(res.Tuples)
				return nil
			}
			return p.rankShrink(q)
		})
	} else {
		root := dataspace.UniverseQuery(p.schema)
		p.spawn(func() error {
			res, err := p.srv.Answer(root)
			if err != nil {
				return err
			}
			if res.Resolved() {
				p.emit(res.Tuples)
				return nil
			}
			return p.node(root, 0, cat)
		})
	}

	p.clock.Release()
	p.wg.Wait()
	if p.err != nil {
		return nil, p.err
	}
	return p.finish(), nil
}

// pool carries the shared state of one parallel crawl.
type pool struct {
	srv    *batcher
	clock  *hiddendb.SimClock // nil outside virtual-time simulations
	schema *dataspace.Schema
	k      int
	opts   *core.Options

	wg sync.WaitGroup

	outMu sync.Mutex
	out   dataspace.Bag

	errOnce sync.Once
	err     error
	quit    chan struct{}
}

// failed reports whether the crawl has aborted.
func (p *pool) failed() bool {
	select {
	case <-p.quit:
		return true
	default:
		return false
	}
}

func (p *pool) fail(err error) {
	p.errOnce.Do(func() {
		p.err = err
		close(p.quit)
	})
}

// spawn runs f as a tracked task, recording its error. Under a virtual
// clock the task's hold is minted by the spawner, before the goroutine
// exists, so the hold count can never dip to zero between the decision to
// spawn and the task starting to run.
func (p *pool) spawn(f func() error) {
	p.wg.Add(1)
	p.clock.Hold()
	go func() {
		defer p.wg.Done()
		defer p.clock.Release()
		if p.failed() {
			return
		}
		if err := f(); err != nil {
			p.fail(err)
		}
	}()
}

// spawnChildren fans out f(v) for v in 1..u, chunked so that a 29,042-value
// domain does not spawn 29,042 goroutines.
func (p *pool) spawnChildren(u int64, f func(v int64) error) {
	const chunk = 128
	for lo := int64(1); lo <= u; lo += chunk {
		hi := lo + chunk - 1
		if hi > u {
			hi = u
		}
		lo, hi := lo, hi
		p.spawn(func() error {
			for v := lo; v <= hi; v++ {
				if p.failed() {
					return nil
				}
				if err := f(v); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

func (p *pool) emit(tuples dataspace.Bag) {
	if len(tuples) == 0 {
		return
	}
	p.outMu.Lock()
	p.out = append(p.out, tuples...)
	p.outMu.Unlock()
	p.srv.noteTuples(len(tuples))
	if p.opts.OnTuples != nil {
		p.opts.OnTuples(tuples)
	}
}

func (p *pool) emitMatching(tuples dataspace.Bag, q dataspace.Query) {
	var kept dataspace.Bag
	for _, t := range tuples {
		if q.Covers(t) {
			kept = append(kept, t)
		}
	}
	if len(kept) > 0 {
		p.emit(kept)
	}
}

func (p *pool) finish() *core.Result {
	queries, resolved, overflowed, skipped, curve := p.srv.stats()
	return &core.Result{
		Tuples:     p.out,
		Queries:    queries,
		Resolved:   resolved,
		Overflowed: overflowed,
		Skipped:    skipped,
		Curve:      curve,
	}
}

// rankShrink is the parallel form of the numeric algorithm: the recursion's
// independent sub-rectangles become tasks.
func (p *pool) rankShrink(q dataspace.Query) error {
	res, err := p.srv.Answer(q)
	if err != nil {
		return err
	}
	if res.Resolved() {
		p.emit(res.Tuples)
		return nil
	}
	dim := firstOpenNumeric(q)
	if dim < 0 {
		return core.ErrUnsolvable
	}
	x, c := splitPivot(res.Tuples, dim, p.k)
	lo, _ := q.Extent(dim)

	if c <= p.k/4 && x > lo {
		left, right, err := q.Split2(dim, x)
		if err != nil {
			return err
		}
		p.spawn(func() error { return p.rankShrink(left) })
		return p.rankShrink(right)
	}
	left, mid, right, hasLeft, hasRight, err := q.Split3(dim, x)
	if err != nil {
		return err
	}
	if hasLeft {
		p.spawn(func() error { return p.rankShrink(left) })
	}
	if hasRight {
		p.spawn(func() error { return p.rankShrink(right) })
	}
	return p.rankShrink(mid)
}

// node is the parallel form of extended-DFS at an overflowing node: every
// child is independent given the (deduplicated) slice responses.
func (p *pool) node(q dataspace.Query, level, cat int) error {
	u := int64(p.schema.Attr(level).DomainSize)
	p.spawnChildren(u, func(v int64) error {
		child := q.WithValue(level, v)
		slice, err := p.srv.Answer(dataspace.UniverseQuery(p.schema).WithValue(level, v))
		if err != nil {
			return err
		}
		if slice.Resolved() {
			p.emitMatching(slice.Tuples, child)
			return nil
		}
		if level+1 == cat {
			return p.rankShrink(child)
		}
		res, err := p.srv.Answer(child)
		if err != nil {
			return err
		}
		if res.Resolved() {
			p.emit(res.Tuples)
			return nil
		}
		return p.node(child, level+1, cat)
	})
	return nil
}

// The two helpers below mirror core's unexported logic; they are duplicated
// rather than exported because they are part of the algorithm, not API.

func firstOpenNumeric(q dataspace.Query) int {
	sch := q.Schema()
	for i := 0; i < sch.Dims(); i++ {
		if sch.Attr(i).Kind == dataspace.Numeric && !q.Exhausted(i) {
			return i
		}
	}
	return -1
}

func splitPivot(resp dataspace.Bag, dim, k int) (x int64, c int) {
	vals := make([]int64, len(resp))
	for i, t := range resp {
		vals[i] = t[dim]
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	idx := k/2 - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	x = vals[idx]
	for _, v := range vals {
		if v == x {
			c++
		}
	}
	return x, c
}
