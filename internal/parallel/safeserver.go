package parallel

import (
	"sync"

	"hidb/internal/core"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// safeServer is the concurrent counterpart of core's session plumbing: a
// thread-safe memoizing, counting, filtering view of the server with a
// semaphore bounding in-flight queries.
//
// Memoization is singleflight: when two workers need the same query (e.g.
// the same slice query from different tree branches) only one issues it and
// the other blocks on the first's result — so the set of queries reaching
// the server is exactly the sequential algorithm's.
type safeServer struct {
	inner hiddendb.Server
	opts  *core.Options
	sem   chan struct{}

	mu      sync.Mutex
	flights map[string]*flight
	queries int
	resolve int
	overfl  int
	skipped int
	tuples  int
	curve   []core.CurvePoint
}

// flight is one in-progress or completed query.
type flight struct {
	done chan struct{}
	res  hiddendb.Result
	err  error
}

func newSafeServer(inner hiddendb.Server, workers int, opts *core.Options) *safeServer {
	return &safeServer{
		inner:   inner,
		opts:    opts,
		sem:     make(chan struct{}, workers),
		flights: make(map[string]*flight),
	}
}

// Answer issues q at most once across all workers.
func (s *safeServer) Answer(q dataspace.Query) (hiddendb.Result, error) {
	if s.opts.QueryFilter != nil && !s.opts.QueryFilter(q) {
		s.mu.Lock()
		s.skipped++
		s.mu.Unlock()
		return hiddendb.Result{}, nil
	}
	key := q.Key()
	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		<-f.done
		return f.res, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	s.sem <- struct{}{} // bound in-flight round-trips
	f.res, f.err = s.inner.Answer(q)
	<-s.sem

	if f.err == nil {
		s.mu.Lock()
		s.queries++
		if f.res.Overflow {
			s.overfl++
		} else {
			s.resolve++
		}
		point := core.CurvePoint{Queries: s.queries, Tuples: s.tuples}
		if s.opts.CollectCurve {
			s.curve = append(s.curve, point)
		}
		s.mu.Unlock()
		if s.opts.OnProgress != nil {
			s.opts.OnProgress(point)
		}
	}
	close(f.done)
	return f.res, f.err
}

// noteTuples records output growth for the progressiveness curve.
func (s *safeServer) noteTuples(n int) {
	s.mu.Lock()
	s.tuples += n
	s.mu.Unlock()
}

// stats snapshots the counters for the final Result.
func (s *safeServer) stats() (queries, resolved, overflowed, skipped int, curve []core.CurvePoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.CollectCurve && len(s.curve) > 0 {
		s.curve[len(s.curve)-1].Tuples = s.tuples
	}
	return s.queries, s.resolve, s.overfl, s.skipped, s.curve
}
