// Session, crawl and stats messages of the wire protocol.
//
// A client identifies itself with an API token. The convention is the
// standard HTTP one — an "Authorization: Bearer <token>" header on every
// request — with a body-level Token field on the /batch and /crawl
// envelopes as a fallback for clients that cannot set headers. When both
// are present the header wins. The server keys quota, journal, and query
// counters by that token; requests without a token share the anonymous
// session.
package wire

import (
	"net/http"
	"strings"
)

// AuthHeader is the HTTP header carrying the client's API token.
const AuthHeader = "Authorization"

// bearerPrefix is the scheme tag of the token convention.
const bearerPrefix = "Bearer "

// SetBearer stamps the token onto the header set in the Authorization:
// Bearer convention. An empty token leaves the headers untouched.
func SetBearer(h http.Header, token string) {
	if token == "" {
		return
	}
	h.Set(AuthHeader, bearerPrefix+token)
}

// Bearer extracts the API token from the Authorization header, or ""
// when the header is absent or carries a different scheme.
func Bearer(h http.Header) string {
	v := h.Get(AuthHeader)
	if len(v) > len(bearerPrefix) && strings.EqualFold(v[:len(bearerPrefix)], bearerPrefix) {
		return v[len(bearerPrefix):]
	}
	return ""
}

// CrawlRequest is the request body of the /crawl endpoint: the server runs
// the named crawling algorithm itself against the caller's session and
// streams progress back as NDJSON CrawlEvent lines. An empty Algorithm
// selects the paper's recommended algorithm for the schema.
type CrawlRequest struct {
	Algorithm string `json:"algorithm,omitempty"`
	// Token is the body-level fallback of the Authorization: Bearer
	// convention.
	Token string `json:"token,omitempty"`
	// Skip is the resume cursor: the number of tuples the client already
	// received from an earlier (interrupted) stream of the same crawl.
	// The server re-runs the algorithm — the journal replays the paid
	// prefix for free — but omits the first Skip tuples from the stream
	// instead of re-sending them. Meaningful only when the algorithm (and
	// its deterministic output order) matches the earlier request's.
	Skip int `json:"skip,omitempty"`
}

// CrawlEvent is one NDJSON line of the /crawl response stream.
//
// Progress lines carry one extracted tuple plus the session's paid query
// count at the moment of extraction. The stream ends with exactly one
// terminal line (Done == true) summarizing the crawl; a crawl that fails
// mid-stream reports the failure there, since the HTTP status is long
// committed — QuotaExceeded marks the caller's session budget as the
// cause, so the client can resume after the budget resets.
type CrawlEvent struct {
	// Tuple is one extracted tuple, attribute values in schema order
	// (progress lines only).
	Tuple []int64 `json:"tuple,omitempty"`
	// Queries is the session's paid query count so far.
	Queries int `json:"queries"`
	// Done marks the terminal summary line.
	Done bool `json:"done,omitempty"`
	// Tuples, Resolved and Overflowed summarize the crawl (terminal
	// line). Tuples counts the tuples streamed in this response — the
	// ones suppressed by the request's Skip cursor are reported in
	// Skipped instead.
	Tuples     int `json:"tuples,omitempty"`
	Resolved   int `json:"resolved,omitempty"`
	Overflowed int `json:"overflowed,omitempty"`
	// Skipped echoes how many already-delivered tuples the resume cursor
	// suppressed (terminal line).
	Skipped int `json:"skipped,omitempty"`
	// Replays, CacheHits, SharedHits and SharedWaits break down how this
	// crawl's queries were answered for free (terminal line): from the
	// session's journal, its private memo table, an already-populated
	// fleet-tier entry, or by waiting out another token's in-flight fetch.
	// Deltas over this crawl only, not session lifetime totals. The shared
	// fields appear only in fleet mode.
	Replays     int `json:"replays,omitempty"`
	CacheHits   int `json:"cacheHits,omitempty"`
	SharedHits  int `json:"sharedHits,omitempty"`
	SharedWaits int `json:"sharedWaits,omitempty"`
	// Engine identifies the store engine that served the crawl and, for
	// the disk engine, its block-cache counters (terminal line; absent
	// when the backing server does not expose engine introspection).
	Engine *EngineStatsMsg `json:"engine,omitempty"`
	// Error reports a crawl that could not complete (terminal line).
	Error string `json:"error,omitempty"`
	// QuotaExceeded marks an Error caused by the session's query budget.
	QuotaExceeded bool `json:"quotaExceeded,omitempty"`
}

// EngineStatsMsg identifies the server's store engine in the /stats
// response and the /crawl terminal event: "mem" for the in-memory columnar
// store, "disk" for the disk-resident one, with the disk engine's pinned
// block-cache counters (lifetime totals, zero for mem).
type EngineStatsMsg struct {
	// Kind is "mem" or "disk".
	Kind string `json:"kind"`
	// CacheHits and CacheMisses count block-cache lookups over the
	// engine's lifetime; CacheBlocks is the resident materialized blocks.
	CacheHits   int64 `json:"cacheHits,omitempty"`
	CacheMisses int64 `json:"cacheMisses,omitempty"`
	CacheBlocks int   `json:"cacheBlocks,omitempty"`
}

// StatsMsg is the response of the GET /stats endpoint.
type StatsMsg struct {
	// Queries is the aggregate paid query count across all clients
	// (including sessions already evicted).
	Queries int `json:"queries"`
	// Requests is the number of query-carrying HTTP round trips served.
	Requests int `json:"requests"`
	// Sessions lists the live per-token sessions (session mode only).
	Sessions []SessionStatsMsg `json:"sessions,omitempty"`
	// EvictedSessions counts sessions already evicted by TTL or LRU
	// pressure; their queries remain in the aggregate.
	EvictedSessions int `json:"evictedSessions,omitempty"`
	// Planner carries the store's query-planner counters when the backing
	// server exposes them (a local store does; a remote proxy may not).
	Planner *PlannerStatsMsg `json:"planner,omitempty"`
	// Engine identifies the store engine ("mem" or "disk") with the disk
	// engine's block-cache counters; absent when the backing server does
	// not expose engine introspection.
	Engine *EngineStatsMsg `json:"engine,omitempty"`
	// SharedCache carries the fleet-wide shared answer tier's aggregate
	// counters; absent in paper mode (shared cache off).
	SharedCache *SharedCacheStatsMsg `json:"sharedCache,omitempty"`
}

// SharedCacheStatsMsg is the fleet-wide shared answer tier's aggregate
// introspection in the /stats response.
type SharedCacheStatsMsg struct {
	// Hits counts queries answered from an already-populated entry; Waits
	// queries answered by waiting out another session's in-flight fetch.
	Hits  int `json:"hits"`
	Waits int `json:"waits"`
	// Leads counts queries some session paid and published — the tier's
	// misses, each charged to exactly one token.
	Leads int `json:"leads"`
	// Entries and Bytes describe the cache's occupancy (Bytes is 0 for an
	// unbounded tier); Evictions counts entries the byte bound dropped.
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes,omitempty"`
	Evictions int   `json:"evictions,omitempty"`
	// InFlight is the number of queries being led right now.
	InFlight int `json:"inFlight,omitempty"`
}

// PlannerStatsMsg is the store's query-planner introspection in the /stats
// response: the plan cache's occupancy and hit ratio, plus how often each
// access path (scan, posting, gallop, range, bitmap) actually executed.
type PlannerStatsMsg struct {
	// Shapes is the number of distinct query shapes with a cached plan.
	Shapes int `json:"shapes"`
	// Hits and Misses count plan-cache lookups since construction.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// HitRate is Hits / (Hits + Misses), 0 before any lookup.
	HitRate float64 `json:"hitRate"`
	// Paths counts executed selections by access path name.
	Paths map[string]int64 `json:"paths,omitempty"`
}

// SessionStatsMsg is one live session's counters in the /stats response.
type SessionStatsMsg struct {
	Token string `json:"token"`
	// Queries counts the queries this client paid for (cache hits and
	// journal replays are free, mirroring the paper's cost metric).
	Queries    int `json:"queries"`
	Resolved   int `json:"resolved,omitempty"`
	Overflowed int `json:"overflowed,omitempty"`
	// Remaining is the unused per-client budget, -1 when unlimited.
	Remaining int `json:"remaining"`
	// Replays counts queries answered from the session's journal.
	Replays int `json:"replays,omitempty"`
	// CacheHits counts queries answered from the session's memo table.
	CacheHits int `json:"cacheHits,omitempty"`
	// JournalLen is the number of (query, response) pairs journaled.
	JournalLen int `json:"journalLen,omitempty"`
	// SharedHits, SharedWaits and SharedLeads are this session's traffic
	// through the fleet-wide shared tier (fleet mode only): answers read
	// from a populated entry, answers waited out of another token's
	// in-flight fetch, and entries this token paid for and published.
	SharedHits  int `json:"sharedHits,omitempty"`
	SharedWaits int `json:"sharedWaits,omitempty"`
	SharedLeads int `json:"sharedLeads,omitempty"`
	// RateClass names the token's resolved qps tier (absent on the
	// default rate) — see session.Config.RateClasses.
	RateClass string `json:"rateClass,omitempty"`
}
