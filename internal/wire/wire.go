// Package wire defines the JSON wire format shared by the HTTP hidden-
// database server and its client: schema descriptions, queries (one
// predicate per attribute, exactly what a search form submits), and query
// responses. The format is deliberately explicit — categorical predicates
// are a value or a wildcard, numeric predicates an inclusive range with
// null standing for ±infinity — so third-party clients can speak it.
package wire

import (
	"fmt"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// Attribute describes one dimension of the data space on the wire.
type Attribute struct {
	Name string `json:"name"`
	// Kind is "numeric" or "categorical".
	Kind string `json:"kind"`
	// DomainSize is the categorical domain size; omitted for numeric.
	DomainSize int `json:"domainSize,omitempty"`
	// Min and Max are optional declared bounds of a numeric attribute.
	Min *int64 `json:"min,omitempty"`
	Max *int64 `json:"max,omitempty"`
}

// SchemaMsg is the response of the /schema endpoint.
type SchemaMsg struct {
	Attributes []Attribute `json:"attributes"`
	// K is the server's return limit.
	K int `json:"k"`
}

// Pred is one predicate of a query on the wire.
//
// For a categorical attribute exactly one of Wild or Value is set; for a
// numeric attribute Lo/Hi bound the range, with null meaning unbounded.
type Pred struct {
	Wild  bool   `json:"wild,omitempty"`
	Value *int64 `json:"value,omitempty"`
	Lo    *int64 `json:"lo,omitempty"`
	Hi    *int64 `json:"hi,omitempty"`
}

// QueryMsg is the request body of the /query endpoint.
type QueryMsg struct {
	Preds []Pred `json:"preds"`
}

// ResultMsg is the response body of the /query endpoint.
type ResultMsg struct {
	// Tuples holds the returned rows, attribute values in schema order.
	Tuples [][]int64 `json:"tuples"`
	// Overflow signals that the result was truncated to k tuples.
	Overflow bool `json:"overflow"`
}

// BatchRequest is the request body of the /batch endpoint: B form queries
// paying one round trip. The server answers them exactly as if they were
// submitted to /query one by one, in order.
type BatchRequest struct {
	Queries []QueryMsg `json:"queries"`
	// Token is the body-level fallback of the Authorization: Bearer
	// convention (see SetBearer); the header wins when both are present.
	Token string `json:"token,omitempty"`
}

// BatchResponse is the response body of the /batch endpoint. Results holds
// one entry per answered query, in request order. When QuotaExceeded is
// true the server's query budget ran out mid-batch: Results covers only the
// prefix answered before the budget was spent, and the remaining queries
// were not executed. A non-empty Error reports a server failure mid-batch:
// Results again covers the prefix paid for and answered before the failure
// (the batch contract's answered-prefix-plus-error, carried over the wire).
type BatchResponse struct {
	Results       []ResultMsg `json:"results"`
	QuotaExceeded bool        `json:"quotaExceeded,omitempty"`
	Error         string      `json:"error,omitempty"`
}

// EncodeBatchRequest converts a query batch to the wire form.
func EncodeBatchRequest(qs []dataspace.Query) BatchRequest {
	msg := BatchRequest{Queries: make([]QueryMsg, len(qs))}
	for i, q := range qs {
		msg.Queries[i] = EncodeQuery(q)
	}
	return msg
}

// DecodeBatchRequest converts the wire form to queries over the schema. A
// single malformed query fails the whole batch — no prefix is answered.
func DecodeBatchRequest(s *dataspace.Schema, msg BatchRequest) ([]dataspace.Query, error) {
	qs := make([]dataspace.Query, len(msg.Queries))
	for i, qm := range msg.Queries {
		q, err := DecodeQuery(s, qm)
		if err != nil {
			return nil, fmt.Errorf("wire: batch query %d: %w", i, err)
		}
		qs[i] = q
	}
	return qs, nil
}

// EncodeBatchResponse converts the answered prefix of a batch to the wire
// form. quotaExceeded marks a batch cut short by the server's budget.
func EncodeBatchResponse(rs []hiddendb.Result, quotaExceeded bool) BatchResponse {
	msg := BatchResponse{Results: make([]ResultMsg, len(rs)), QuotaExceeded: quotaExceeded}
	for i, r := range rs {
		msg.Results[i] = EncodeResult(r)
	}
	return msg
}

// DecodeBatchResponse converts the wire form back to server responses,
// validating every tuple against the schema.
func DecodeBatchResponse(s *dataspace.Schema, msg BatchResponse) (results []hiddendb.Result, quotaExceeded bool, err error) {
	results = make([]hiddendb.Result, len(msg.Results))
	for i, rm := range msg.Results {
		r, err := DecodeResult(s, rm)
		if err != nil {
			return nil, false, fmt.Errorf("wire: batch result %d: %w", i, err)
		}
		results[i] = r
	}
	return results, msg.QuotaExceeded, nil
}

// EncodeSchema converts a schema and return limit to the wire form.
func EncodeSchema(s *dataspace.Schema, k int) SchemaMsg {
	msg := SchemaMsg{K: k, Attributes: make([]Attribute, s.Dims())}
	for i := 0; i < s.Dims(); i++ {
		a := s.Attr(i)
		wa := Attribute{Name: a.Name}
		if a.Kind == dataspace.Categorical {
			wa.Kind = "categorical"
			wa.DomainSize = a.DomainSize
		} else {
			wa.Kind = "numeric"
			if a.Min != 0 || a.Max != 0 {
				min, max := a.Min, a.Max
				wa.Min, wa.Max = &min, &max
			}
		}
		msg.Attributes[i] = wa
	}
	return msg
}

// DecodeSchema converts the wire form back to a schema and return limit.
func DecodeSchema(msg SchemaMsg) (*dataspace.Schema, int, error) {
	attrs := make([]dataspace.Attribute, len(msg.Attributes))
	for i, wa := range msg.Attributes {
		a := dataspace.Attribute{Name: wa.Name}
		switch wa.Kind {
		case "categorical":
			a.Kind = dataspace.Categorical
			a.DomainSize = wa.DomainSize
		case "numeric":
			a.Kind = dataspace.Numeric
			if wa.Min != nil {
				a.Min = *wa.Min
			}
			if wa.Max != nil {
				a.Max = *wa.Max
			}
		default:
			return nil, 0, fmt.Errorf("wire: attribute %q has unknown kind %q", wa.Name, wa.Kind)
		}
		attrs[i] = a
	}
	s, err := dataspace.NewSchema(attrs)
	if err != nil {
		return nil, 0, err
	}
	if msg.K < 1 {
		return nil, 0, fmt.Errorf("wire: invalid return limit k=%d", msg.K)
	}
	return s, msg.K, nil
}

// EncodeQuery converts a query to the wire form.
func EncodeQuery(q dataspace.Query) QueryMsg {
	s := q.Schema()
	msg := QueryMsg{Preds: make([]Pred, s.Dims())}
	for i := 0; i < s.Dims(); i++ {
		p := q.Pred(i)
		if s.Attr(i).Kind == dataspace.Categorical {
			if p.Wild {
				msg.Preds[i] = Pred{Wild: true}
			} else {
				v := p.Value
				msg.Preds[i] = Pred{Value: &v}
			}
		} else {
			wp := Pred{}
			if p.Lo != dataspace.NegInf {
				lo := p.Lo
				wp.Lo = &lo
			}
			if p.Hi != dataspace.PosInf {
				hi := p.Hi
				wp.Hi = &hi
			}
			msg.Preds[i] = wp
		}
	}
	return msg
}

// DecodeQuery converts the wire form to a query over the given schema.
func DecodeQuery(s *dataspace.Schema, msg QueryMsg) (dataspace.Query, error) {
	if len(msg.Preds) != s.Dims() {
		return dataspace.Query{}, fmt.Errorf("wire: query has %d predicates, schema has %d attributes", len(msg.Preds), s.Dims())
	}
	preds := make([]dataspace.Pred, s.Dims())
	for i, wp := range msg.Preds {
		if s.Attr(i).Kind == dataspace.Categorical {
			switch {
			case wp.Wild && wp.Value == nil:
				preds[i] = dataspace.Pred{Wild: true}
			case !wp.Wild && wp.Value != nil:
				preds[i] = dataspace.Pred{Value: *wp.Value}
			default:
				return dataspace.Query{}, fmt.Errorf("wire: categorical predicate %d must set exactly one of wild/value", i)
			}
		} else {
			lo, hi := dataspace.NegInf, dataspace.PosInf
			if wp.Lo != nil {
				lo = *wp.Lo
			}
			if wp.Hi != nil {
				hi = *wp.Hi
			}
			preds[i] = dataspace.Pred{Lo: lo, Hi: hi}
		}
	}
	return dataspace.NewQuery(s, preds)
}

// EncodeResult converts a server response to the wire form.
func EncodeResult(r hiddendb.Result) ResultMsg {
	msg := ResultMsg{Overflow: r.Overflow, Tuples: make([][]int64, len(r.Tuples))}
	for i, t := range r.Tuples {
		msg.Tuples[i] = []int64(t.Clone())
	}
	return msg
}

// DecodeResult converts the wire form back to a server response, validating
// tuple arity against the schema.
func DecodeResult(s *dataspace.Schema, msg ResultMsg) (hiddendb.Result, error) {
	r := hiddendb.Result{Overflow: msg.Overflow, Tuples: make([]dataspace.Tuple, len(msg.Tuples))}
	for i, vals := range msg.Tuples {
		t := dataspace.Tuple(vals)
		if err := t.Validate(s); err != nil {
			return hiddendb.Result{}, fmt.Errorf("wire: tuple %d: %w", i, err)
		}
		r.Tuples[i] = t
	}
	return r, nil
}
