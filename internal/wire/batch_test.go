package wire

import (
	"encoding/json"
	"testing"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

func TestBatchRequestRoundTrip(t *testing.T) {
	sch := testSchema(t)
	u := dataspace.UniverseQuery(sch)
	qs := []dataspace.Query{
		u,
		u.WithValue(0, 7),
		u.WithRange(1, 500, 10000),
		u.WithValue(0, 85).WithRange(1, 200, 200).WithRange(2, -5, 5),
	}
	raw, err := json.Marshal(EncodeBatchRequest(qs))
	if err != nil {
		t.Fatal(err)
	}
	var back BatchRequest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchRequest(sch, back)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("decoded %d queries, want %d", len(got), len(qs))
	}
	for i := range got {
		if got[i].Key() != qs[i].Key() {
			t.Fatalf("query %d round trip: %s != %s", i, got[i], qs[i])
		}
	}
}

func TestDecodeBatchRequestRejectsWholeBatch(t *testing.T) {
	sch := testSchema(t)
	good := EncodeQuery(dataspace.UniverseQuery(sch))
	bad := QueryMsg{Preds: []Pred{{Wild: true}}} // wrong arity
	if _, err := DecodeBatchRequest(sch, BatchRequest{Queries: []QueryMsg{good, bad}}); err == nil {
		t.Error("malformed query in batch accepted")
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	sch := testSchema(t)
	rs := []hiddendb.Result{
		{Tuples: dataspace.Bag{{1, 300, 0}, {2, 400, -1}}, Overflow: true},
		{},
		{Tuples: dataspace.Bag{{85, 250000, 99}}},
	}
	raw, err := json.Marshal(EncodeBatchResponse(rs, true))
	if err != nil {
		t.Fatal(err)
	}
	var back BatchResponse
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	got, quotaExceeded, err := DecodeBatchResponse(sch, back)
	if err != nil {
		t.Fatal(err)
	}
	if !quotaExceeded {
		t.Error("quotaExceeded flag lost")
	}
	if len(got) != len(rs) {
		t.Fatalf("decoded %d results, want %d", len(got), len(rs))
	}
	for i := range got {
		if got[i].Overflow != rs[i].Overflow || len(got[i].Tuples) != len(rs[i].Tuples) {
			t.Fatalf("result %d shape changed in round trip", i)
		}
		for j := range got[i].Tuples {
			if !got[i].Tuples[j].Equal(rs[i].Tuples[j]) {
				t.Fatalf("result %d tuple %d differs", i, j)
			}
		}
	}
	// An invalid tuple fails decoding.
	back.Results[0].Tuples[0] = []int64{1} // wrong arity
	if _, _, err := DecodeBatchResponse(sch, back); err == nil {
		t.Error("invalid tuple accepted")
	}
}
