package wire

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

func testSchema(t *testing.T) *dataspace.Schema {
	t.Helper()
	return dataspace.MustSchema([]dataspace.Attribute{
		{Name: "Make", Kind: dataspace.Categorical, DomainSize: 85},
		{Name: "Price", Kind: dataspace.Numeric, Min: 200, Max: 250000},
		{Name: "Year", Kind: dataspace.Numeric},
	})
}

func TestSchemaRoundTrip(t *testing.T) {
	sch := testSchema(t)
	msg := EncodeSchema(sch, 1000)
	// Through JSON, as the HTTP path does.
	raw, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	var back SchemaMsg
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	got, k, err := DecodeSchema(back)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1000 {
		t.Fatalf("k = %d, want 1000", k)
	}
	if got.String() != sch.String() {
		t.Fatalf("schema round trip: %s != %s", got, sch)
	}
	if got.Attr(1).Min != 200 || got.Attr(1).Max != 250000 {
		t.Fatal("bounds lost in round trip")
	}
	if got.Attr(2).Min != 0 || got.Attr(2).Max != 0 {
		t.Fatal("unbounded attribute gained bounds")
	}
}

func TestDecodeSchemaErrors(t *testing.T) {
	if _, _, err := DecodeSchema(SchemaMsg{
		K: 10, Attributes: []Attribute{{Name: "A", Kind: "fuzzy"}},
	}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, _, err := DecodeSchema(SchemaMsg{
		K: 0, Attributes: []Attribute{{Name: "A", Kind: "numeric"}},
	}); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, _, err := DecodeSchema(SchemaMsg{
		K: 5, Attributes: []Attribute{{Name: "C", Kind: "categorical"}},
	}); err == nil {
		t.Error("categorical without domain accepted")
	}
}

func TestQueryRoundTrip(t *testing.T) {
	sch := testSchema(t)
	queries := []dataspace.Query{
		dataspace.UniverseQuery(sch),
		dataspace.UniverseQuery(sch).WithValue(0, 3),
		dataspace.UniverseQuery(sch).WithRange(1, 1000, 2000),
		dataspace.UniverseQuery(sch).WithValue(0, 85).WithRange(1, 200, 200).WithRange(2, -5, 5),
	}
	for _, q := range queries {
		raw, err := json.Marshal(EncodeQuery(q))
		if err != nil {
			t.Fatal(err)
		}
		var msg QueryMsg
		if err := json.Unmarshal(raw, &msg); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeQuery(sch, msg)
		if err != nil {
			t.Fatalf("decode %s: %v", q, err)
		}
		if got.Key() != q.Key() {
			t.Fatalf("query round trip: %s != %s", got, q)
		}
	}
}

func TestDecodeQueryErrors(t *testing.T) {
	sch := testSchema(t)
	if _, err := DecodeQuery(sch, QueryMsg{Preds: []Pred{{Wild: true}}}); err == nil {
		t.Error("arity mismatch accepted")
	}
	three := func(p Pred) QueryMsg {
		return QueryMsg{Preds: []Pred{p, {}, {}}}
	}
	if _, err := DecodeQuery(sch, three(Pred{})); err == nil {
		t.Error("categorical predicate with neither wild nor value accepted")
	}
	v := int64(3)
	if _, err := DecodeQuery(sch, three(Pred{Wild: true, Value: &v})); err == nil {
		t.Error("categorical predicate with both wild and value accepted")
	}
	lo, hi := int64(10), int64(5)
	bad := QueryMsg{Preds: []Pred{{Wild: true}, {Lo: &lo, Hi: &hi}, {}}}
	if _, err := DecodeQuery(sch, bad); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestResultRoundTrip(t *testing.T) {
	sch := testSchema(t)
	res := hiddendb.Result{
		Overflow: true,
		Tuples: dataspace.Bag{
			{1, 200, -100},
			{85, 250000, 100},
		},
	}
	raw, err := json.Marshal(EncodeResult(res))
	if err != nil {
		t.Fatal(err)
	}
	var msg ResultMsg
	if err := json.Unmarshal(raw, &msg); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(sch, msg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Overflow != res.Overflow || !got.Tuples.EqualMultiset(res.Tuples) {
		t.Fatal("result round trip changed content")
	}
}

func TestDecodeResultValidates(t *testing.T) {
	sch := testSchema(t)
	bad := ResultMsg{Tuples: [][]int64{{99999, 0, 0}}} // Make out of domain
	if _, err := DecodeResult(sch, bad); err == nil {
		t.Error("out-of-domain tuple accepted")
	}
	badArity := ResultMsg{Tuples: [][]int64{{1, 2}}}
	if _, err := DecodeResult(sch, badArity); err == nil {
		t.Error("wrong-arity tuple accepted")
	}
}

func TestEncodeResultClonesTuples(t *testing.T) {
	sch := testSchema(t)
	orig := dataspace.Tuple{1, 300, 0}
	msg := EncodeResult(hiddendb.Result{Tuples: dataspace.Bag{orig}})
	msg.Tuples[0][0] = 42
	if orig[0] != 1 {
		t.Error("EncodeResult shares tuple storage")
	}
	_ = sch
}

// Property: arbitrary in-domain queries survive the wire round trip
// bit-for-bit (by canonical key).
func TestQueryRoundTripProperty(t *testing.T) {
	sch := testSchema(t)
	f := func(makeVal uint8, wild bool, lo, hi int32) bool {
		q := dataspace.UniverseQuery(sch)
		if !wild {
			q = q.WithValue(0, int64(makeVal%85)+1)
		}
		l, h := int64(lo), int64(hi)
		if l > h {
			l, h = h, l
		}
		q = q.WithRange(2, l, h)
		raw, err := json.Marshal(EncodeQuery(q))
		if err != nil {
			return false
		}
		var msg QueryMsg
		if err := json.Unmarshal(raw, &msg); err != nil {
			return false
		}
		got, err := DecodeQuery(sch, msg)
		return err == nil && got.Key() == q.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
