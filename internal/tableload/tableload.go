// Package tableload turns delimited text files (CSV/TSV with a header row)
// into crawlable datasets, so hidb-server can expose real data rather than
// only the synthetic workloads. Columns whose every value parses as an
// integer become numeric attributes (with bounds taken from the data);
// everything else becomes a categorical attribute whose string values are
// dictionary-encoded as 1..U. Because the data-space convention puts
// categorical attributes first, the loader reorders columns and keeps the
// mapping, and can decode extracted tuples back to the original strings and
// column order.
package tableload

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hidb/internal/datagen"
	"hidb/internal/dataspace"
)

// Options configures loading.
type Options struct {
	// Comma is the field delimiter; 0 means auto-detect: '\t' if the
	// header contains one, else ','.
	Comma rune
	// Name labels the resulting dataset; defaults to "table".
	Name string
	// MaxDomain caps the inferred categorical domain size. A column with
	// more distinct strings than this fails the load (crawling cost for a
	// categorical attribute grows with its domain, so an unbounded
	// free-text column is almost certainly a mistake). 0 means 1 << 20.
	MaxDomain int
}

// Loaded is a dataset plus everything needed to map tuples back to the
// source file's strings and column order.
type Loaded struct {
	// Dataset is the crawlable form: categorical columns first.
	Dataset *datagen.Dataset
	// SourceColumns names the file's columns in file order.
	SourceColumns []string
	// SchemaToSource maps schema attribute positions to file columns.
	SchemaToSource []int
	// Dicts holds, per schema attribute, the categorical value names
	// (index v-1 names value v); nil entries are numeric attributes.
	Dicts [][]string
}

// Read loads a delimited file with a header row.
func Read(r io.Reader, opts Options) (*Loaded, error) {
	if opts.MaxDomain == 0 {
		opts.MaxDomain = 1 << 20
	}
	if opts.Name == "" {
		opts.Name = "table"
	}

	br := bufio.NewReader(r)
	if opts.Comma == 0 {
		head, err := br.Peek(4096)
		if err != nil && err != io.EOF && err != bufio.ErrBufferFull {
			return nil, fmt.Errorf("tableload: peeking header: %w", err)
		}
		line := string(head)
		if i := strings.IndexByte(line, '\n'); i >= 0 {
			line = line[:i]
		}
		if strings.ContainsRune(line, '\t') {
			opts.Comma = '\t'
		} else {
			opts.Comma = ','
		}
	}
	cr := csv.NewReader(br)
	cr.Comma = opts.Comma
	cr.ReuseRecord = true

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("tableload: reading header: %w", err)
	}
	cols := len(header)
	if cols == 0 {
		return nil, fmt.Errorf("tableload: empty header")
	}
	names := make([]string, cols)
	for i, h := range header {
		names[i] = strings.TrimSpace(h)
		if names[i] == "" {
			names[i] = fmt.Sprintf("col%d", i+1)
		}
	}

	// First pass: gather raw string cells.
	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tableload: row %d: %w", len(rows)+2, err)
		}
		if len(rec) != cols {
			return nil, fmt.Errorf("tableload: row %d has %d fields, header has %d", len(rows)+2, len(rec), cols)
		}
		row := make([]string, cols)
		for i, cell := range rec {
			row[i] = strings.TrimSpace(cell)
		}
		rows = append(rows, row)
	}

	// Infer column kinds: numeric iff every value parses as int64.
	isNumeric := make([]bool, cols)
	for c := 0; c < cols; c++ {
		isNumeric[c] = len(rows) > 0
		for _, row := range rows {
			if _, err := strconv.ParseInt(row[c], 10, 64); err != nil {
				isNumeric[c] = false
				break
			}
		}
	}

	// Schema order: categorical columns first, then numeric, each group in
	// file order.
	var order []int
	for c := 0; c < cols; c++ {
		if !isNumeric[c] {
			order = append(order, c)
		}
	}
	catCount := len(order)
	for c := 0; c < cols; c++ {
		if isNumeric[c] {
			order = append(order, c)
		}
	}

	// Dictionary-encode categorical columns and bound numeric ones.
	attrs := make([]dataspace.Attribute, cols)
	dicts := make([][]string, cols)
	encoded := make([]map[string]int64, cols)
	for pos, c := range order {
		if pos < catCount {
			encoded[pos] = make(map[string]int64)
			for _, row := range rows {
				v := row[c]
				if _, ok := encoded[pos][v]; !ok {
					encoded[pos][v] = int64(len(encoded[pos]) + 1)
					dicts[pos] = append(dicts[pos], v)
				}
			}
			u := len(encoded[pos])
			if u == 0 {
				u = 1 // empty file: keep the schema valid
				dicts[pos] = []string{""}
			}
			if u > opts.MaxDomain {
				return nil, fmt.Errorf("tableload: column %q has %d distinct values, above the %d cap — free-text column?",
					names[c], u, opts.MaxDomain)
			}
			attrs[pos] = dataspace.Attribute{
				Name:       names[c],
				Kind:       dataspace.Categorical,
				DomainSize: u,
			}
		} else {
			min, max := int64(0), int64(0)
			for i, row := range rows {
				v, _ := strconv.ParseInt(row[c], 10, 64)
				if i == 0 || v < min {
					min = v
				}
				if i == 0 || v > max {
					max = v
				}
			}
			if len(rows) == 0 {
				min, max = 0, 1
			}
			if min == 0 && max == 0 {
				max = 1 // (0,0) means "unbounded" to the schema; avoid it
			}
			attrs[pos] = dataspace.Attribute{
				Name: names[c],
				Kind: dataspace.Numeric,
				Min:  min,
				Max:  max,
			}
		}
	}
	schema, err := dataspace.NewSchema(attrs)
	if err != nil {
		return nil, fmt.Errorf("tableload: inferred schema invalid: %w", err)
	}

	tuples := make(dataspace.Bag, len(rows))
	for i, row := range rows {
		t := make(dataspace.Tuple, cols)
		for pos, c := range order {
			if pos < catCount {
				t[pos] = encoded[pos][row[c]]
			} else {
				t[pos], _ = strconv.ParseInt(row[c], 10, 64)
			}
		}
		tuples[i] = t
	}

	return &Loaded{
		Dataset: &datagen.Dataset{
			Name:   opts.Name,
			Schema: schema,
			Tuples: tuples,
		},
		SourceColumns:  names,
		SchemaToSource: order,
		Dicts:          dicts,
	}, nil
}

// DecodeTuple renders an extracted tuple back to the source file's strings,
// in source column order.
func (l *Loaded) DecodeTuple(t dataspace.Tuple) ([]string, error) {
	if len(t) != l.Dataset.Schema.Dims() {
		return nil, fmt.Errorf("tableload: tuple arity %d != schema dims %d", len(t), l.Dataset.Schema.Dims())
	}
	out := make([]string, len(t))
	for pos, src := range l.SchemaToSource {
		if dict := l.Dicts[pos]; dict != nil {
			v := t[pos]
			if v < 1 || int(v) > len(dict) {
				return nil, fmt.Errorf("tableload: value %d outside dictionary of %q", v, l.Dataset.Schema.Attr(pos).Name)
			}
			out[src] = dict[v-1]
		} else {
			out[src] = strconv.FormatInt(t[pos], 10)
		}
	}
	return out, nil
}

// WriteTSV writes a bag back as a TSV with the source header and decoded
// categorical values.
func (l *Loaded) WriteTSV(w io.Writer, tuples dataspace.Bag) error {
	bw := bufio.NewWriter(w)
	for i, name := range l.SourceColumns {
		if i > 0 {
			bw.WriteByte('\t')
		}
		bw.WriteString(name)
	}
	bw.WriteByte('\n')
	for _, t := range tuples {
		cells, err := l.DecodeTuple(t)
		if err != nil {
			return err
		}
		for i, c := range cells {
			if i > 0 {
				bw.WriteByte('\t')
			}
			bw.WriteString(c)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
