package tableload

import (
	"strings"
	"testing"
)

// FuzzRead feeds arbitrary bytes to the loader: it must reject or load
// cleanly (valid schema, decodable tuples), never panic.
func FuzzRead(f *testing.F) {
	f.Add("a,b\n1,x\n2,y\n")
	f.Add("a\tb\n1\t2\n")
	f.Add("only-header\n")
	f.Add("")
	f.Add("a,b\n1\n")
	f.Add("a,b\n\"unterminated")
	f.Fuzz(func(t *testing.T, src string) {
		l, err := Read(strings.NewReader(src), Options{MaxDomain: 1000})
		if err != nil {
			return
		}
		if err := l.Dataset.Validate(); err != nil {
			t.Fatalf("loaded dataset invalid: %v", err)
		}
		for _, tu := range l.Dataset.Tuples {
			if _, err := l.DecodeTuple(tu); err != nil {
				t.Fatalf("loaded tuple not decodable: %v", err)
			}
		}
	})
}
