package tableload

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"hidb/internal/core"
	"hidb/internal/hiddendb"
)

const carsTSV = `make	body	price	year
bmw	sedan	17500	2009
bmw	sedan	17500	2009
bmw	coupe	3299	2001
audi	convertible	50000	2011
audi	sedan	21000	2010
`

func TestReadTSV(t *testing.T) {
	l, err := Read(strings.NewReader(carsTSV), Options{Name: "cars"})
	if err != nil {
		t.Fatal(err)
	}
	ds := l.Dataset
	if ds.N() != 5 {
		t.Fatalf("n = %d, want 5", ds.N())
	}
	// make and body become categorical (2 and 3 values); price and year
	// numeric with data-derived bounds.
	sch := ds.Schema
	if sch.Cat() != 2 || sch.Dims() != 4 {
		t.Fatalf("schema %s: cat=%d dims=%d", sch, sch.Cat(), sch.Dims())
	}
	if sch.Attr(0).Name != "make" || sch.Attr(0).DomainSize != 2 {
		t.Errorf("attr0 = %+v", sch.Attr(0))
	}
	if sch.Attr(1).Name != "body" || sch.Attr(1).DomainSize != 3 {
		t.Errorf("attr1 = %+v", sch.Attr(1))
	}
	pi := sch.IndexOf("price")
	if pi < 0 || sch.Attr(pi).Min != 3299 || sch.Attr(pi).Max != 50000 {
		t.Errorf("price bounds wrong: %+v", sch.Attr(pi))
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// The duplicate row survives as a bag duplicate.
	if ds.Tuples.MaxMultiplicity() != 2 {
		t.Errorf("max multiplicity = %d, want 2", ds.Tuples.MaxMultiplicity())
	}
}

func TestReadCSVAutoDetect(t *testing.T) {
	csv := strings.ReplaceAll(carsTSV, "\t", ",")
	l, err := Read(strings.NewReader(csv), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Dataset.N() != 5 || l.Dataset.Schema.Cat() != 2 {
		t.Fatalf("CSV auto-detect failed: n=%d cat=%d", l.Dataset.N(), l.Dataset.Schema.Cat())
	}
}

func TestDecodeTupleRoundTrip(t *testing.T) {
	l, err := Read(strings.NewReader(carsTSV), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, tu := range l.Dataset.Tuples {
		cells, err := l.DecodeTuple(tu)
		if err != nil {
			t.Fatal(err)
		}
		wantLines := strings.Split(strings.TrimSpace(carsTSV), "\n")[1:]
		want := strings.Split(wantLines[i], "\t")
		for c := range want {
			if cells[c] != want[c] {
				t.Fatalf("row %d col %d: %q != %q", i, c, cells[c], want[c])
			}
		}
	}
	// Arity and dictionary errors.
	if _, err := l.DecodeTuple(l.Dataset.Tuples[0][:2]); err == nil {
		t.Error("wrong arity accepted")
	}
	bad := l.Dataset.Tuples[0].Clone()
	bad[0] = 99
	if _, err := l.DecodeTuple(bad); err == nil {
		t.Error("out-of-dictionary value accepted")
	}
}

func TestWriteTSVRoundTrip(t *testing.T) {
	l, err := Read(strings.NewReader(carsTSV), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.WriteTSV(&buf, l.Dataset.Tuples); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !back.Dataset.Tuples.EqualMultiset(l.Dataset.Tuples) {
		t.Fatal("TSV round trip changed the bag")
	}
}

func TestLoadedDatasetIsCrawlable(t *testing.T) {
	l, err := Read(strings.NewReader(carsTSV), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := hiddendb.NewLocal(l.Dataset.Schema, l.Dataset.Tuples, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (core.Hybrid{}).Crawl(context.Background(), srv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tuples.EqualMultiset(l.Dataset.Tuples) {
		t.Fatal("crawl of loaded dataset incomplete")
	}
}

func TestReadErrors(t *testing.T) {
	// Ragged row.
	if _, err := Read(strings.NewReader("a,b\n1\n"), Options{}); err == nil {
		t.Error("ragged row accepted")
	}
	// Domain cap.
	var sb strings.Builder
	sb.WriteString("text\n")
	for i := 0; i < 50; i++ {
		sb.WriteString(strings.Repeat("x", i+1) + "\n")
	}
	if _, err := Read(strings.NewReader(sb.String()), Options{MaxDomain: 10}); err == nil {
		t.Error("over-cap categorical column accepted")
	}
}

func TestReadEmptyFile(t *testing.T) {
	l, err := Read(strings.NewReader("a,b\n"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Dataset.N() != 0 {
		t.Fatalf("n = %d, want 0", l.Dataset.N())
	}
	// The inferred schema must still be valid (placeholder domains/bounds).
	if l.Dataset.Schema.Dims() != 2 {
		t.Fatalf("dims = %d, want 2", l.Dataset.Schema.Dims())
	}
}

func TestNumericColumnWithNegatives(t *testing.T) {
	src := "delta\n-5\n0\n17\n"
	l, err := Read(strings.NewReader(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := l.Dataset.Schema.Attr(0)
	if a.Min != -5 || a.Max != 17 {
		t.Fatalf("bounds [%d,%d], want [-5,17]", a.Min, a.Max)
	}
}

func TestMixedDigitsAndTextIsCategorical(t *testing.T) {
	src := "zip\n02139\nN/A\n10001\n"
	l, err := Read(strings.NewReader(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Dataset.Schema.Attr(0).Kind.String() != "categorical" {
		t.Error("column with a non-numeric cell inferred as numeric")
	}
	if l.Dataset.Schema.Attr(0).DomainSize != 3 {
		t.Errorf("domain = %d, want 3", l.Dataset.Schema.Attr(0).DomainSize)
	}
}
