package hiddendb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hidb/internal/dataspace"
	"hidb/internal/simrand"
)

// batchQueries builds a query stream with repeats, the shape a crawl's
// ready queue produces.
func batchQueries(sch *dataspace.Schema, n int, seed uint64) []dataspace.Query {
	rng := simrand.New(seed)
	qs := make([]dataspace.Query, n)
	for i := range qs {
		q := dataspace.UniverseQuery(sch)
		if rng.Bool(0.6) {
			q = q.WithValue(0, rng.IntRange(1, 4))
		}
		if rng.Bool(0.6) {
			lo := rng.IntRange(0, 80)
			q = q.WithRange(1, lo, lo+rng.IntRange(0, 20))
		}
		qs[i] = q
	}
	return qs
}

func sameResult(a, b Result) bool {
	if a.Overflow != b.Overflow || len(a.Tuples) != len(b.Tuples) {
		return false
	}
	for i := range a.Tuples {
		if !a.Tuples[i].Equal(b.Tuples[i]) {
			return false
		}
	}
	return true
}

// TestAnswerBatchMatchesSequential is the tentpole invariant: for every
// server in the stack — plain Local, sharded Local, and the full decorator
// tower — a batch is answered exactly as the same queries issued one at a
// time.
func TestAnswerBatchMatchesSequential(t *testing.T) {
	sch := testSchema(t)
	bag := testBag(2000, 21)
	qs := batchQueries(sch, 64, 22)

	build := map[string]func() Server{
		"local": func() Server {
			srv, err := NewLocal(sch, bag, 25, 5)
			if err != nil {
				t.Fatal(err)
			}
			return srv
		},
		"sharded": func() Server {
			srv, err := NewLocalSharded(sch, bag, 25, 5, 4)
			if err != nil {
				t.Fatal(err)
			}
			return srv
		},
		"decorated": func() Server {
			srv, err := NewLocalSharded(sch, bag, 25, 5, 3)
			if err != nil {
				t.Fatal(err)
			}
			return NewQuota(NewCaching(NewCounting(srv)), 1<<20)
		},
	}
	for name, mk := range build {
		seq := mk()
		want := make([]Result, len(qs))
		for i, q := range qs {
			res, err := seq.Answer(context.Background(), q)
			if err != nil {
				t.Fatalf("%s: sequential query %d: %v", name, i, err)
			}
			want[i] = res
		}
		got, err := mk().AnswerBatch(context.Background(), qs)
		if err != nil {
			t.Fatalf("%s: AnswerBatch: %v", name, err)
		}
		if len(got) != len(qs) {
			t.Fatalf("%s: batch answered %d of %d", name, len(got), len(qs))
		}
		for i := range got {
			if !sameResult(got[i], want[i]) {
				t.Fatalf("%s: batch result %d differs from sequential Answer", name, i)
			}
		}
	}
}

// TestShardedLocalIdenticalToLocal pins that sharding is invisible in the
// responses: same (bag, k, seed) means bit-identical answers.
func TestShardedLocalIdenticalToLocal(t *testing.T) {
	sch := testSchema(t)
	bag := testBag(1500, 23)
	plain, err := NewLocal(sch, bag, 30, 9)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewLocalSharded(sch, bag, 30, 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Shards() != 1 || sharded.Shards() != 7 {
		t.Fatalf("Shards() = %d/%d, want 1/7", plain.Shards(), sharded.Shards())
	}
	for i, q := range batchQueries(sch, 100, 24) {
		a, _ := plain.Answer(context.Background(), q)
		b, _ := sharded.Answer(context.Background(), q)
		if !sameResult(a, b) {
			t.Fatalf("query %d: sharded response differs from plain (query %s)", i, q)
		}
	}
	if !plain.Dump().EqualMultiset(sharded.Dump()) {
		t.Fatal("sharded Dump differs")
	}
}

// TestLocalBatchInvalidQuery: an invalid query fails the batch at its
// position, answering the prefix before it — the sequential semantics.
func TestLocalBatchInvalidQuery(t *testing.T) {
	sch := testSchema(t)
	srv, _ := NewLocal(sch, testBag(200, 25), 10, 3)
	// A second schema instance defeats the fast pointer check so the bad
	// value is actually validated, as a foreign client's query would be.
	foreign := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "C", Kind: dataspace.Categorical, DomainSize: 4},
		{Name: "N", Kind: dataspace.Numeric, Min: 0, Max: 100},
	})
	good := dataspace.UniverseQuery(foreign)
	bad := good.WithValue(0, 99) // outside the domain [1,4]
	res, err := srv.AnswerBatch(context.Background(), []dataspace.Query{good, good, bad, good})
	if err == nil {
		t.Fatal("invalid query in batch not reported")
	}
	if len(res) != 2 {
		t.Fatalf("batch answered %d queries before the invalid one, want 2", len(res))
	}
}

// TestQuotaBatchMidExhaustion is the quota-mid-batch contract: the admitted
// prefix is answered, the error is ErrQuotaExceeded, and the budget ends up
// exactly spent.
func TestQuotaBatchMidExhaustion(t *testing.T) {
	sch := testSchema(t)
	srv, _ := NewLocal(sch, testBag(300, 27), 10, 4)
	counting := NewCounting(srv)
	quota := NewQuota(counting, 5)
	qs := batchQueries(sch, 8, 28)

	res, err := quota.AnswerBatch(context.Background(), qs)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	if len(res) != 5 {
		t.Fatalf("answered %d queries, want the 5-query budget", len(res))
	}
	if quota.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", quota.Remaining())
	}
	if counting.Queries() != 5 {
		t.Fatalf("inner server saw %d queries, want 5", counting.Queries())
	}
	// A spent budget rejects the next batch outright.
	if _, err := quota.AnswerBatch(context.Background(), qs[:2]); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("spent quota answered another batch: %v", err)
	}
	// And an empty batch is free.
	if res, err := quota.AnswerBatch(context.Background(), nil); err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v %d", err, len(res))
	}
}

// TestCountingBatch: a B-query batch counts as B queries — the cost metric
// is batching-invariant.
func TestCountingBatch(t *testing.T) {
	sch := testSchema(t)
	srv, _ := NewLocal(sch, testBag(500, 29), 20, 6)
	c := NewCounting(srv)
	qs := batchQueries(sch, 17, 30)
	if _, err := c.AnswerBatch(context.Background(), qs); err != nil {
		t.Fatal(err)
	}
	if c.Queries() != 17 {
		t.Fatalf("Queries = %d, want 17", c.Queries())
	}
	if c.Resolved()+c.Overflowed() != 17 {
		t.Fatal("resolved+overflowed != queries")
	}
}

// TestCachingBatchDedupes: within one batch, repeats of a query are hits
// and only distinct queries reach the inner server — exactly the sequential
// accounting.
func TestCachingBatchDedupes(t *testing.T) {
	sch := testSchema(t)
	srv, _ := NewLocal(sch, testBag(500, 31), 20, 7)
	counting := NewCounting(srv)
	caching := NewCaching(counting)

	u := dataspace.UniverseQuery(sch)
	a := u.WithValue(0, 1)
	b := u.WithValue(0, 2)
	qs := []dataspace.Query{a, b, a, a, b, u}

	res, err := caching.AnswerBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(qs) {
		t.Fatalf("answered %d of %d", len(res), len(qs))
	}
	if counting.Queries() != 3 {
		t.Fatalf("inner saw %d queries, want 3 distinct", counting.Queries())
	}
	if caching.Misses() != 3 || caching.Hits() != 3 {
		t.Fatalf("hits/misses = %d/%d, want 3/3", caching.Hits(), caching.Misses())
	}
	if !sameResult(res[0], res[2]) || !sameResult(res[0], res[3]) || !sameResult(res[1], res[4]) {
		t.Fatal("repeated queries answered differently within one batch")
	}
	// A second batch of the same queries is all hits.
	if _, err := caching.AnswerBatch(context.Background(), qs); err != nil {
		t.Fatal(err)
	}
	if counting.Queries() != 3 {
		t.Fatalf("second batch reached the server: %d queries", counting.Queries())
	}
}

// TestCachingBatchErrorAccounting: a batch cut short by an inner error
// accounts exactly like sequential issuing — a cached query positioned
// after the failure is never "answered" and must not count as a hit.
func TestCachingBatchErrorAccounting(t *testing.T) {
	sch := testSchema(t)
	srv, _ := NewLocal(sch, testBag(300, 39), 10, 5)
	quota := NewQuota(srv, 1)
	caching := NewCaching(quota)

	u := dataspace.UniverseQuery(sch)
	cached := u.WithValue(0, 1)
	fresh := u.WithValue(0, 2)
	if _, err := caching.Answer(context.Background(), cached); err != nil { // spends the whole budget
		t.Fatal(err)
	}
	if caching.Hits() != 0 || caching.Misses() != 1 {
		t.Fatalf("setup hits/misses = %d/%d", caching.Hits(), caching.Misses())
	}
	res, err := caching.AnswerBatch(context.Background(), []dataspace.Query{fresh, cached})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	if len(res) != 0 {
		t.Fatalf("answered %d queries on a spent budget, want 0", len(res))
	}
	// Sequentially, Answer(fresh) fails first and cached is never reached:
	// the counters must not move.
	if caching.Hits() != 0 || caching.Misses() != 1 {
		t.Fatalf("failed batch moved counters: hits/misses = %d/%d, want 0/1", caching.Hits(), caching.Misses())
	}
}

// TestLatencyBatchIsOneRoundTrip: B batched queries pay the delay once.
func TestLatencyBatchIsOneRoundTrip(t *testing.T) {
	sch := testSchema(t)
	srv, _ := NewLocal(sch, testBag(200, 33), 20, 8)
	delay := 40 * time.Millisecond
	lat := NewLatency(srv, delay)
	qs := batchQueries(sch, 10, 34)
	start := time.Now()
	if _, err := lat.AnswerBatch(context.Background(), qs); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*delay {
		t.Fatalf("10-query batch took %v — paying per-query latency, not per-round-trip", elapsed)
	}
}

// singleOnly implements only the legacy single-query contract.
type singleOnly struct {
	inner Server
	fail  int // answer this many queries, then error
}

func (s *singleOnly) Answer(q dataspace.Query) (Result, error) {
	if s.fail == 0 {
		return Result{}, fmt.Errorf("singleOnly: out of answers")
	}
	s.fail--
	return s.inner.Answer(context.Background(), q)
}
func (s *singleOnly) K() int                    { return s.inner.K() }
func (s *singleOnly) Schema() *dataspace.Schema { return s.inner.Schema() }

// TestBatchedAdapter: Batched upgrades a legacy Single by looping,
// preserving prefix-on-error and honouring ctx between queries.
func TestBatchedAdapter(t *testing.T) {
	sch := testSchema(t)
	srv, _ := NewLocal(sch, testBag(300, 35), 15, 9)
	up := Batched(&singleOnly{inner: srv, fail: 3})
	qs := batchQueries(sch, 6, 36)
	res, err := up.AnswerBatch(context.Background(), qs)
	if err == nil {
		t.Fatal("adapter swallowed the inner error")
	}
	if len(res) != 3 {
		t.Fatalf("adapter answered %d queries before the failure, want 3", len(res))
	}
	for i, r := range res {
		want, _ := srv.Answer(context.Background(), qs[i])
		if !sameResult(r, want) {
			t.Fatalf("adapter result %d differs from direct Answer", i)
		}
	}
	if up.K() != srv.K() || up.Schema() != srv.Schema() {
		t.Fatal("adapter does not forward K/Schema")
	}
}

// TestCountingCachingConcurrent hammers the measurement wrappers from many
// goroutines mixing Answer and AnswerBatch; under -race this is the
// concurrency-safety proof, and the totals must still reconcile.
func TestCountingCachingConcurrent(t *testing.T) {
	sch := testSchema(t)
	srv, _ := NewLocalSharded(sch, testBag(1000, 37), 20, 11, 4)
	counting := NewCounting(srv)
	caching := NewCaching(counting)

	const goroutines = 8
	var wg sync.WaitGroup
	var issued sync.Map // key -> true, the distinct queries sent
	total := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qs := batchQueries(sch, 120, 40+uint64(g)%4) // overlapping streams
			for _, q := range qs {
				issued.Store(q.Key(), true)
			}
			for i := 0; i < len(qs); i += 6 {
				if i%2 == 0 {
					if _, err := caching.AnswerBatch(context.Background(), qs[i:i+6]); err != nil {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
				} else {
					for _, q := range qs[i : i+6] {
						if _, err := caching.Answer(context.Background(), q); err != nil {
							t.Errorf("goroutine %d: %v", g, err)
							return
						}
					}
				}
				total[g] += 6
			}
		}(g)
	}
	wg.Wait()

	sum := 0
	for _, n := range total {
		sum += n
	}
	if got := caching.Hits() + caching.Misses(); got != sum {
		t.Fatalf("hits+misses = %d, want %d issued", got, sum)
	}
	distinct := 0
	issued.Range(func(_, _ any) bool { distinct++; return true })
	// Without singleflight a distinct query may reach the server more than
	// once under concurrency, but never fewer times than once, and the
	// counter must agree with the cache's miss count.
	if counting.Queries() != caching.Misses() {
		t.Fatalf("inner queries %d != misses %d", counting.Queries(), caching.Misses())
	}
	if counting.Queries() < distinct {
		t.Fatalf("inner saw %d queries for %d distinct", counting.Queries(), distinct)
	}
}
