package hiddendb

import (
	"context"
	"errors"
	"testing"
	"time"

	"hidb/internal/dataspace"
)

// fakeClock drives a RateLimited deterministically: take()'s refill math
// reads the swapped clock, and each sleep advances it by the requested
// wait, so no test time passes.
type fakeClock struct {
	now time.Time
}

func (c *fakeClock) get() time.Time { return c.now }

func rateLimitedForTest(t *testing.T, srv Server, perSecond float64, burst int) (*RateLimited, *fakeClock) {
	t.Helper()
	rl, err := NewRateLimited(srv, perSecond, burst)
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{now: time.Unix(1000, 0)}
	rl.now = clk.get
	rl.last = clk.now
	return rl, clk
}

// TestRateLimitThrottlesToSustainedRate: a burst-sized prefix is free,
// then each query pays 1/rate of (virtual) waiting — and responses are
// untouched.
func TestRateLimitThrottlesToSustainedRate(t *testing.T) {
	sch := testSchema(t)
	srv, err := NewLocal(sch, testBag(200, 53), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	rl, clk := rateLimitedForTest(t, srv, 10, 2) // 10 qps, burst 2

	var waited time.Duration
	rl.sleep = func(ctx context.Context, d time.Duration) error {
		waited += d
		clk.now = clk.now.Add(d)
		return ctx.Err()
	}

	q := dataspace.UniverseQuery(sch)
	want, err := srv.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := rl.Answer(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResult(res, want) {
			t.Fatal("rate limiter altered a response")
		}
	}
	if waited != 0 {
		t.Fatalf("burst queries waited %v, want 0", waited)
	}
	// The bucket is empty: five more queries cost 100ms each at 10 qps.
	for i := 0; i < 5; i++ {
		if _, err := rl.Answer(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	if want := 500 * time.Millisecond; waited != want {
		t.Fatalf("5 post-burst queries waited %v, want %v", waited, want)
	}

	// A batch wider than the burst drains in instalments at the same
	// sustained rate: 10 queries = 1s of virtual waiting.
	waited = 0
	if _, err := rl.AnswerBatch(context.Background(), batchQueries(sch, 10, 62)); err != nil {
		t.Fatal(err)
	}
	if want := 1 * time.Second; waited != want {
		t.Fatalf("10-query batch waited %v, want %v", waited, want)
	}
}

// TestRateLimitWaitCancels: a throttled query stops waiting the moment
// its ctx dies — the "throttled crawls cancel promptly" contract — and a
// cancelled wait issues nothing.
func TestRateLimitWaitCancels(t *testing.T) {
	sch := testSchema(t)
	srv, err := NewLocal(sch, testBag(100, 54), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	counting := NewCounting(srv)
	rl, err := NewRateLimited(counting, 0.5, 1) // one query per 2s
	if err != nil {
		t.Fatal(err)
	}
	q := dataspace.UniverseQuery(sch)
	if _, err := rl.Answer(context.Background(), q); err != nil {
		t.Fatal(err) // burst token: immediate
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = rl.Answer(ctx, q)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled wait blocked %v — the rate limiter ignored the ctx", elapsed)
	}
	if counting.Queries() != 1 {
		t.Fatalf("cancelled wait issued a query: %d served, want 1", counting.Queries())
	}
}

// TestRateLimitCancelledWaitRefunds: a multi-instalment batch wait that
// dies mid-way refunds the instalments already drained — the caller
// issued nothing, so its next queries must not pay for the phantom work.
func TestRateLimitCancelledWaitRefunds(t *testing.T) {
	sch := testSchema(t)
	srv, err := NewLocal(sch, testBag(200, 56), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	rl, _ := rateLimitedForTest(t, srv, 1, 2) // 1 qps, burst 2, bucket full
	rl.sleep = func(ctx context.Context, d time.Duration) error {
		return context.Canceled // the refill wait dies immediately
	}
	// 6 queries = 3 burst-sized instalments: the first drains the full
	// bucket, the second hits the (cancelled) wait.
	if _, err := rl.AnswerBatch(context.Background(), batchQueries(sch, 6, 63)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The two drained tokens are back: two queries pass with no wait.
	rl.sleep = func(ctx context.Context, d time.Duration) error {
		t.Fatalf("post-refund query waited %v — the cancelled instalments were not refunded", d)
		return nil
	}
	for i, q := range batchQueries(sch, 2, 64) {
		if _, err := rl.Answer(context.Background(), q); err != nil {
			t.Fatalf("post-refund query %d: %v", i, err)
		}
	}
}

// TestRateLimitRejectsBadRate: non-positive rates are configuration
// errors, not silent no-ops.
func TestRateLimitRejectsBadRate(t *testing.T) {
	sch := testSchema(t)
	srv, err := NewLocal(sch, testBag(10, 55), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range []float64{0, -1} {
		if _, err := NewRateLimited(srv, rate, 1); err == nil {
			t.Errorf("rate %v accepted", rate)
		}
	}
}
