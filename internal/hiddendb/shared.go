// The fleet-wide shared answer cache: the "pace car" tier under the
// per-session decorator stacks.
//
// The paper's cost model charges every client the full query count, so N
// clients crawling the same hidden store pay N times for identical
// knowledge. Shared is the opt-in server-side remedy: one process-wide memo
// of the store's answers, keyed by canonical query, that every session's
// stack reads through. The first session to ask a query leads — it pays the
// store through its own quota and counter and populates the entry — while
// concurrent followers block on the per-key single-flight and read the
// answer the moment the leader lands it, never re-issuing the query. A
// still-running crawl is therefore streamed incrementally: a follower
// crawling the same store rides one query behind the leader at worst,
// never waiting for the whole crawl to finish. A leader that fails — its
// crawl cancelled, its budget exhausted, its session evicted mid-flight —
// hands leadership to a follower instead of orphaning them (see
// memo.Flight).
//
// Accounting is the point, and it is policy-gated, never implicit:
// SharedOff (the default) keeps the tier out of the stack entirely, so
// paper-mode costs are bit-identical; SharedFree places the tier above the
// session's quota and counter, so a shared hit is free — M crawlers of one
// store at ~1x total cost; SharedCharged places it below them, so a hit
// saves the store's work but still debits the client — the paper's
// accounting preserved while the fleet shares compute.
package hiddendb

import (
	"context"
	"fmt"
	"sync/atomic"

	"hidb/internal/dataspace"
	"hidb/internal/memo"
)

// SharedCachePolicy selects whether and how the fleet-wide shared answer
// cache participates in a session stack.
type SharedCachePolicy int

const (
	// SharedOff is paper mode: no shared tier, every client pays its full
	// query count. The default, bit-identical to a stack without the tier.
	SharedOff SharedCachePolicy = iota
	// SharedFree serves shared hits free of the client's quota and counter:
	// only the leading session pays the store. The fleet-scale mode.
	SharedFree
	// SharedCharged serves shared hits from the cache — saving the store's
	// work — but still debits the client's quota and counter, preserving
	// the paper's per-client accounting exactly.
	SharedCharged
)

// String returns the policy's flag spelling: off, free or charged.
func (p SharedCachePolicy) String() string {
	switch p {
	case SharedOff:
		return "off"
	case SharedFree:
		return "free"
	case SharedCharged:
		return "charged"
	}
	return fmt.Sprintf("SharedCachePolicy(%d)", int(p))
}

// ParseSharedCachePolicy parses the flag spelling accepted by String.
func ParseSharedCachePolicy(s string) (SharedCachePolicy, error) {
	switch s {
	case "off", "":
		return SharedOff, nil
	case "free":
		return SharedFree, nil
	case "charged":
		return SharedCharged, nil
	}
	return SharedOff, fmt.Errorf("hiddendb: unknown shared-cache policy %q (want off, free or charged)", s)
}

// sharedEntrySize estimates one cached answer's resident bytes for the LRU
// bound: the key, the result header, and every tuple's values.
func sharedEntrySize(key string, res Result) int64 {
	n := int64(len(key)) + 64
	for _, t := range res.Tuples {
		n += int64(len(t))*8 + 24
	}
	return n
}

// Shared is one hidden store's fleet-wide answer cache plus its per-key
// single-flight. Create one per served store and hand each session a View.
// Safe for concurrent use by any number of views.
type Shared struct {
	cache  *memo.Cache[Result]
	flight *memo.Flight[Result]
	hits   atomic.Int64
	waits  atomic.Int64
	leads  atomic.Int64
}

// NewShared builds an empty shared cache. maxBytes > 0 bounds its resident
// size with per-shard LRU eviction (an evicted answer is simply re-paid by
// its next asker — the cache is an optimization, never the source of
// truth); 0 is unbounded.
func NewShared(maxBytes int64) *Shared {
	return &Shared{
		cache:  memo.New(maxBytes, sharedEntrySize),
		flight: memo.NewFlight[Result](),
	}
}

// Hits returns how many queries were answered from an already-cached entry.
func (s *Shared) Hits() int { return int(s.hits.Load()) }

// Waits returns how many queries were answered by waiting out a concurrent
// leader's in-flight fetch — the follower side of the pace car.
func (s *Shared) Waits() int { return int(s.waits.Load()) }

// Leads returns how many queries some session led: paid through its own
// stack and populated into the cache.
func (s *Shared) Leads() int { return int(s.leads.Load()) }

// Entries returns the number of answers currently cached.
func (s *Shared) Entries() int { return s.cache.Len() }

// Bytes returns the estimated resident size of a bounded cache (0 when
// unbounded).
func (s *Shared) Bytes() int64 { return s.cache.Bytes() }

// Evictions returns how many answers the byte bound has evicted.
func (s *Shared) Evictions() int { return s.cache.Evictions() }

// InFlightWaits returns the number of keys currently being led.
func (s *Shared) InFlightWaits() int { return s.flight.InFlight() }

// SharedStats is a point-in-time snapshot of the tier's counters.
type SharedStats struct {
	// Hits counts answers served from a cached entry; Waits answers served
	// by waiting on a leader's in-flight fetch. Both are free under
	// SharedFree.
	Hits  int
	Waits int
	// Leads counts queries some session paid and populated.
	Leads int
	// Entries and Bytes describe the cache's occupancy; Evictions how many
	// entries the byte bound has dropped.
	Entries   int
	Bytes     int64
	Evictions int
	// InFlight is the number of keys currently being led.
	InFlight int
}

// Stats snapshots the tier's counters.
func (s *Shared) Stats() SharedStats {
	return SharedStats{
		Hits:      s.Hits(),
		Waits:     s.Waits(),
		Leads:     s.Leads(),
		Entries:   s.Entries(),
		Bytes:     s.Bytes(),
		Evictions: s.Evictions(),
		InFlight:  s.InFlightWaits(),
	}
}

// View returns one session's server through the shared tier. inner is the
// chain that pays when this session leads a miss: under SharedFree the
// session's quota → rate limit → counter → store chain (a hit skips it
// entirely, hence is free); under SharedCharged the bare store (quota and
// counter sit above the view and charge hits and leads alike). Each view
// keeps per-session hit/wait/lead counters alongside the tier-wide ones.
func (s *Shared) View(inner Server) *SharedView {
	return &SharedView{shared: s, inner: inner}
}

// SharedView is one session's window onto a Shared tier. It implements
// Server; safe for concurrent use when inner is.
type SharedView struct {
	shared *Shared
	inner  Server
	hits   atomic.Int64
	waits  atomic.Int64
	leads  atomic.Int64
}

// Hits returns this session's answers served from an already-cached entry.
func (v *SharedView) Hits() int { return int(v.hits.Load()) }

// Waits returns this session's answers served by waiting on another
// session's in-flight fetch.
func (v *SharedView) Waits() int { return int(v.waits.Load()) }

// Leads returns the queries this session led (paid and populated).
func (v *SharedView) Leads() int { return int(v.leads.Load()) }

// Answer implements Server. A cached answer returns immediately; a query
// some other session is fetching right now blocks until that leader lands
// or fails (handing leadership over on failure); otherwise this session
// leads: the query is paid through inner — this session's budget — and the
// answer is published for the fleet. Per-key single-flight guarantees the
// store is asked each query at most once however many sessions race on it.
func (v *SharedView) Answer(ctx context.Context, q dataspace.Query) (Result, error) {
	bufp := keyBufPool.Get().(*[]byte)
	keyb := q.AppendKey((*bufp)[:0])
	res, ok := v.shared.cache.Get(keyb)
	if ok {
		v.hits.Add(1)
		v.shared.hits.Add(1)
		*bufp = keyb[:0]
		keyBufPool.Put(bufp)
		return res, nil
	}
	key := string(keyb)
	*bufp = keyb[:0]
	keyBufPool.Put(bufp)

	res, via, err := v.shared.flight.Do(ctx, key,
		func() (Result, bool) { return v.shared.cache.GetString(key) },
		func() (Result, error) {
			r, err := v.inner.Answer(ctx, q)
			if err == nil {
				v.shared.cache.Set(key, r)
			}
			return r, err
		})
	if err != nil {
		return res, err
	}
	switch via {
	case memo.Led:
		v.leads.Add(1)
		v.shared.leads.Add(1)
	case memo.Waited:
		v.waits.Add(1)
		v.shared.waits.Add(1)
	default: // memo.Hit: cached between our miss and the flight's re-check
		v.hits.Add(1)
		v.shared.hits.Add(1)
	}
	return res, nil
}

// AnswerBatch implements Server by issuing the queries one at a time: each
// query independently hits, waits or leads, which preserves the sequential
// contract exactly — results is the answered prefix and the error describes
// the first query that could not be answered. (The per-shard batch fan-out
// happens below the tier only for the queries this session actually leads;
// a fleet at steady state answers most of a batch from the cache without
// touching the store at all.)
func (v *SharedView) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]Result, error) {
	out := make([]Result, 0, len(qs))
	for _, q := range qs {
		res, err := v.Answer(ctx, q)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// K implements Server.
func (v *SharedView) K() int { return v.inner.K() }

// Schema implements Server.
func (v *SharedView) Schema() *dataspace.Schema { return v.inner.Schema() }
