package hiddendb

import (
	"context"
	"errors"
	"testing"

	"hidb/internal/dataspace"
)

// flakyQueries builds distinct valid queries over the simTestServer schema.
func flakyQueries(schema *dataspace.Schema, n int) []dataspace.Query {
	qs := make([]dataspace.Query, n)
	for i := range qs {
		qs[i] = dataspace.UniverseQuery(schema).WithValue(0, int64(1+i%6))
		if i >= 6 {
			lo := int64(i * 10)
			qs[i] = qs[i].WithRange(1, lo, lo+5)
		}
	}
	return qs
}

// TestFlakyFailNth: every nth attempt fails with ErrInjected, at exactly
// the position a sequential caller would observe, across Answer and
// AnswerBatch alike.
func TestFlakyFailNth(t *testing.T) {
	srv, schema := simTestServer(t, 200, 20)
	counting := NewCounting(srv)
	flaky := NewFlaky(counting, FlakyConfig{FailNth: 3})
	qs := flakyQueries(schema, 8)

	// Attempts 1,2 succeed; attempt 3 faults.
	for i := 0; i < 2; i++ {
		if _, err := flaky.Answer(context.Background(), qs[i]); err != nil {
			t.Fatalf("attempt %d: %v", i+1, err)
		}
	}
	if _, err := flaky.Answer(context.Background(), qs[2]); !errors.Is(err, ErrInjected) {
		t.Fatalf("attempt 3: err = %v, want ErrInjected", err)
	}
	if counting.Queries() != 2 {
		t.Fatalf("inner server saw %d queries, want 2 (the fault must not be served)", counting.Queries())
	}

	// A batch spanning the next fault (attempts 4,5,6) is cut at the
	// answered prefix: two served, the third faulted.
	res, err := flaky.AnswerBatch(context.Background(), qs[3:8])
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("batch err = %v, want ErrInjected", err)
	}
	if len(res) != 2 {
		t.Fatalf("batch answered %d queries, want the 2-query prefix", len(res))
	}
	if counting.Queries() != 4 {
		t.Fatalf("inner server saw %d queries, want 4", counting.Queries())
	}
	// Queries beyond the fault were never attempted: the counter resumes
	// right after the faulted position.
	if got := flaky.Attempts(); got != 6 {
		t.Fatalf("attempts = %d, want 6", got)
	}
	if got := flaky.Injected(); got != 2 {
		t.Fatalf("injected = %d, want 2", got)
	}
	if flaky.K() != srv.K() || flaky.Schema() != srv.Schema() {
		t.Fatal("Flaky does not forward K/Schema")
	}
}

// TestFlakyAbortWindow: faults inside the abort window read as context
// cancellation — Cancelled(err) holds — so a Quota above the flaky layer
// refunds them and budget agrees with queries served.
func TestFlakyAbortWindow(t *testing.T) {
	srv, schema := simTestServer(t, 200, 20)
	counting := NewCounting(srv)
	flaky := NewFlaky(counting, FlakyConfig{AbortFrom: 2, AbortUntil: 4})
	const budget = 100
	quota := NewQuota(flaky, budget)
	qs := flakyQueries(schema, 8)

	// Attempts 0,1 succeed.
	if _, err := quota.AnswerBatch(context.Background(), qs[:2]); err != nil {
		t.Fatal(err)
	}
	// Attempts 2,3 are aborts; the batch 2..6 cuts at an empty prefix.
	res, err := quota.AnswerBatch(context.Background(), qs[2:6])
	if !Cancelled(err) {
		t.Fatalf("abort-window err = %v, want a cancellation", err)
	}
	if len(res) != 0 {
		t.Fatalf("aborted batch answered %d queries", len(res))
	}
	// Cancelled queries are refunded in full: spent equals served.
	if spent := budget - quota.Remaining(); spent != counting.Queries() {
		t.Fatalf("quota spent %d, server served %d — abort was charged", spent, counting.Queries())
	}
	// Attempt 3 is the window's second abort (single-query path).
	if _, err := quota.Answer(context.Background(), qs[6]); !Cancelled(err) {
		t.Fatalf("err = %v, want a cancellation", err)
	}
	if spent := budget - quota.Remaining(); spent != counting.Queries() {
		t.Fatalf("quota spent %d, server served %d after single abort", spent, counting.Queries())
	}
	// Past the window, queries flow again.
	if _, err := quota.AnswerBatch(context.Background(), qs[4:8]); err != nil {
		t.Fatalf("past the abort window: %v", err)
	}
	if spent := budget - quota.Remaining(); spent != counting.Queries() {
		t.Fatalf("final: quota spent %d, server served %d", spent, counting.Queries())
	}
}

// TestFlakyTransientDebited pins the documented Quota semantics for
// non-cancellation faults below the quota: the failing query stays debited
// (the site saw the request), the queries beyond it are refunded.
func TestFlakyTransientDebited(t *testing.T) {
	srv, schema := simTestServer(t, 200, 20)
	counting := NewCounting(srv)
	flaky := NewFlaky(counting, FlakyConfig{FailNth: 3})
	const budget = 100
	quota := NewQuota(flaky, budget)
	qs := flakyQueries(schema, 6)

	res, err := quota.AnswerBatch(context.Background(), qs)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if len(res) != 2 {
		t.Fatalf("answered prefix %d, want 2", len(res))
	}
	served := counting.Queries()
	if served != 2 {
		t.Fatalf("served %d, want 2", served)
	}
	if spent := budget - quota.Remaining(); spent != served+1 {
		t.Fatalf("quota spent %d for %d served + 1 rejected, want %d", spent, served, served+1)
	}
}

// TestFlakyProbSeeded: probabilistic faults are a pure function of the
// seed — two servers with equal seeds inject identical fault streams, a
// different seed a different one.
func TestFlakyProbSeeded(t *testing.T) {
	_, schema := simTestServer(t, 100, 10)
	run := func(seed uint64) []bool {
		srv, _ := simTestServer(t, 100, 10)
		flaky := NewFlaky(srv, FlakyConfig{Seed: seed, FailProb: 0.3})
		qs := flakyQueries(schema, 40)
		out := make([]bool, len(qs))
		for i, q := range qs {
			_, err := flaky.Answer(context.Background(), q)
			out[i] = err != nil
		}
		return out
	}
	a, b, c := run(11), run(11), run(13)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	faults, diff := 0, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("equal seeds diverged at attempt %d", i)
		}
		if a[i] {
			faults++
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("FailProb=0.3 injected %d/%d faults — not probabilistic", faults, len(a))
	}
	if !diff {
		t.Fatal("distinct seeds produced identical fault streams")
	}
}

// TestFlakyInnerErrorWins: when the inner server fails before the injected
// fault's position is reached, the inner (shorter) answered prefix and
// error are returned untouched.
func TestFlakyInnerErrorWins(t *testing.T) {
	srv, schema := simTestServer(t, 200, 20)
	quota := NewQuota(srv, 2)
	flaky := NewFlaky(quota, FlakyConfig{FailNth: 5}) // fault would land at attempt 5
	qs := flakyQueries(schema, 4)

	res, err := flaky.AnswerBatch(context.Background(), qs)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want the inner quota error", err)
	}
	if len(res) != 2 {
		t.Fatalf("answered prefix %d, want the quota's 2", len(res))
	}
}
