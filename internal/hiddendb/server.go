// Package hiddendb simulates the server side of a hidden database exactly as
// the problem setup of Sheng et al. (VLDB 2012, §1.1) specifies:
//
//   - the database D is a bag of tuples over a data space;
//   - a query returns the full qualifying bag q(D) when |q(D)| <= k
//     ("resolved"), and otherwise the k qualifying tuples of highest
//     priority plus an overflow signal;
//   - repeating an overflowing query returns the same k tuples.
//
// Priorities are a fixed random permutation of the tuples, mirroring the
// paper's experimental setup ("each tuple is assigned a random priority, so
// that if a query overflows, always the k tuples with the highest priorities
// are returned").
//
// The package also provides the measurement wrappers the crawling algorithms
// and the experiment harness are built on: a query counter, a memoizing
// cache (the "lazy" in lazy-slice-cover), and a quota enforcer that models
// the per-IP query budgets real sites impose.
package hiddendb

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hidb/internal/dataspace"
	"hidb/internal/index"
	"hidb/internal/simrand"
)

// Result is the server's response to one query.
type Result struct {
	// Tuples holds q(D) if the query resolved, else the k highest-priority
	// qualifying tuples. Callers must treat the tuples as read-only.
	Tuples dataspace.Bag
	// Overflow is the signal that q(D) has more tuples than were returned.
	Overflow bool
}

// Resolved reports whether the query was answered completely.
func (r Result) Resolved() bool { return !r.Overflow }

// Server is the query interface a crawler sees. Implementations must be
// deterministic: issuing the same query twice yields the same response.
type Server interface {
	// Answer runs one form query against the hidden database.
	Answer(q dataspace.Query) (Result, error)
	// K returns the server's return limit.
	K() int
	// Schema describes the data space the server's form exposes.
	Schema() *dataspace.Schema
}

// ErrQuotaExceeded is returned by a QuotaServer once its budget is spent.
var ErrQuotaExceeded = errors.New("hiddendb: query quota exceeded")

// Local is an in-process Server backed by an index.Store.
type Local struct {
	store *index.Store
	k     int
}

// NewLocal builds a local server over the bag with return limit k. The
// priority permutation is drawn from the given seed, so the same
// (bag, k, seed) triple always yields an identical server.
func NewLocal(schema *dataspace.Schema, bag dataspace.Bag, k int, seed uint64) (*Local, error) {
	if k < 1 {
		return nil, fmt.Errorf("hiddendb: return limit k must be >= 1, got %d", k)
	}
	rng := simrand.New(seed)
	perm := rng.Perm(len(bag))
	byRank := make([]dataspace.Tuple, len(bag))
	for rank, idx := range perm {
		byRank[rank] = bag[idx]
	}
	store, err := index.New(schema, byRank)
	if err != nil {
		return nil, err
	}
	return &Local{store: store, k: k}, nil
}

// Answer implements Server.
func (l *Local) Answer(q dataspace.Query) (Result, error) {
	if q.Schema() != l.store.Schema() {
		if err := q.Validate(); err != nil {
			return Result{}, fmt.Errorf("hiddendb: invalid query: %w", err)
		}
	}
	got := l.store.Select(q, l.k)
	if len(got) > l.k {
		return Result{Tuples: dataspace.Bag(got[:l.k]), Overflow: true}, nil
	}
	return Result{Tuples: dataspace.Bag(got)}, nil
}

// K implements Server.
func (l *Local) K() int { return l.k }

// Schema implements Server.
func (l *Local) Schema() *dataspace.Schema { return l.store.Schema() }

// Size returns n, the number of tuples in the hidden database. A real
// hidden server would not expose this; it exists for experiments and tests.
func (l *Local) Size() int { return l.store.Size() }

// Dump returns the ground-truth bag (priority order). Test/measurement only.
func (l *Local) Dump() dataspace.Bag { return dataspace.Bag(l.store.All()) }

// Counting wraps a Server and counts the queries that actually reach it.
// This is the paper's cost metric.
type Counting struct {
	inner    Server
	queries  int
	resolved int
	overflow int
}

// NewCounting wraps srv with a fresh counter.
func NewCounting(srv Server) *Counting { return &Counting{inner: srv} }

// Answer implements Server, incrementing the counters.
func (c *Counting) Answer(q dataspace.Query) (Result, error) {
	res, err := c.inner.Answer(q)
	if err != nil {
		return res, err
	}
	c.queries++
	if res.Overflow {
		c.overflow++
	} else {
		c.resolved++
	}
	return res, nil
}

// K implements Server.
func (c *Counting) K() int { return c.inner.K() }

// Schema implements Server.
func (c *Counting) Schema() *dataspace.Schema { return c.inner.Schema() }

// Queries returns the number of queries issued so far.
func (c *Counting) Queries() int { return c.queries }

// Resolved returns how many of the issued queries resolved.
func (c *Counting) Resolved() int { return c.resolved }

// Overflowed returns how many of the issued queries overflowed.
func (c *Counting) Overflowed() int { return c.overflow }

// Reset zeroes the counters.
func (c *Counting) Reset() { c.queries, c.resolved, c.overflow = 0, 0, 0 }

// Caching wraps a Server and memoizes responses by canonical query key.
// A repeated query is answered from the cache and does not count against the
// inner server. Lazy-slice-cover and hybrid rely on this to consult a slice
// query many times while paying for it once.
//
// The memo key is the compact binary encoding of Query.AppendKey, built
// into a buffer reused across calls: a cache hit performs no allocation at
// all (the map lookup is a zero-copy string conversion), and a miss pays
// one key-string allocation when the entry is stored. Caching is not safe
// for concurrent use; the parallel crawler has its own singleflight memo.
type Caching struct {
	inner  Server
	cache  map[string]Result
	keyBuf []byte
	hits   int
	misses int
}

// NewCaching wraps srv with an empty memo table.
func NewCaching(srv Server) *Caching {
	return &Caching{inner: srv, cache: make(map[string]Result)}
}

// Answer implements Server with memoization.
func (c *Caching) Answer(q dataspace.Query) (Result, error) {
	c.keyBuf = q.AppendKey(c.keyBuf[:0])
	if res, ok := c.cache[string(c.keyBuf)]; ok {
		c.hits++
		return res, nil
	}
	res, err := c.inner.Answer(q)
	if err != nil {
		return res, err
	}
	c.misses++
	c.cache[string(c.keyBuf)] = res
	return res, nil
}

// K implements Server.
func (c *Caching) K() int { return c.inner.K() }

// Schema implements Server.
func (c *Caching) Schema() *dataspace.Schema { return c.inner.Schema() }

// Hits returns how many queries were served from the cache.
func (c *Caching) Hits() int { return c.hits }

// Misses returns how many queries fell through to the inner server (and
// were then memoized). Hits() + Misses() is the number of successfully
// answered queries.
func (c *Caching) Misses() int { return c.misses }

// Quota wraps a Server and fails with ErrQuotaExceeded after budget
// queries, modelling per-IP limits of real sites ("most systems have a
// control on how many queries can be submitted by the same IP address").
// Safe for concurrent use when the inner server is.
type Quota struct {
	inner  Server
	mu     sync.Mutex
	budget int
	used   int
}

// NewQuota wraps srv with the given query budget.
func NewQuota(srv Server, budget int) *Quota {
	return &Quota{inner: srv, budget: budget}
}

// Answer implements Server, debiting the budget.
func (q *Quota) Answer(query dataspace.Query) (Result, error) {
	q.mu.Lock()
	if q.used >= q.budget {
		q.mu.Unlock()
		return Result{}, ErrQuotaExceeded
	}
	q.used++
	q.mu.Unlock()
	return q.inner.Answer(query)
}

// K implements Server.
func (q *Quota) K() int { return q.inner.K() }

// Schema implements Server.
func (q *Quota) Schema() *dataspace.Schema { return q.inner.Schema() }

// Remaining returns the unused budget.
func (q *Quota) Remaining() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.budget - q.used
}

// Latency wraps a Server and sleeps for a fixed duration before answering,
// simulating the network round-trip of a real remote hidden database. It is
// what makes the parallel crawler's speedup measurable in tests and
// benchmarks. Safe for concurrent use when the inner server is (Local is:
// it is read-only after construction).
type Latency struct {
	inner Server
	delay time.Duration
}

// NewLatency wraps srv with a per-query delay.
func NewLatency(srv Server, delay time.Duration) *Latency {
	return &Latency{inner: srv, delay: delay}
}

// Answer implements Server after the simulated round-trip delay.
func (l *Latency) Answer(q dataspace.Query) (Result, error) {
	time.Sleep(l.delay)
	return l.inner.Answer(q)
}

// K implements Server.
func (l *Latency) K() int { return l.inner.K() }

// Schema implements Server.
func (l *Latency) Schema() *dataspace.Schema { return l.inner.Schema() }
