// Package hiddendb simulates the server side of a hidden database exactly as
// the problem setup of Sheng et al. (VLDB 2012, §1.1) specifies:
//
//   - the database D is a bag of tuples over a data space;
//   - a query returns the full qualifying bag q(D) when |q(D)| <= k
//     ("resolved"), and otherwise the k qualifying tuples of highest
//     priority plus an overflow signal;
//   - repeating an overflowing query returns the same k tuples.
//
// Priorities are a fixed random permutation of the tuples, mirroring the
// paper's experimental setup ("each tuple is assigned a random priority, so
// that if a query overflows, always the k tuples with the highest priorities
// are returned").
//
// # The batched contract
//
// The paper's cost metric is the query count, but a production crawler pays
// a round trip per query. Server therefore carries two entry points with one
// semantics: AnswerBatch(qs) answers exactly as if the queries were issued
// sequentially through Answer, so the query count — the paper's metric — is
// independent of how queries are packed into batches, while the round-trip
// count divides by the batch size. Single-query implementations are upgraded
// with the Batched adapter.
//
// # Context
//
// Every entry point takes a context.Context first, and the whole stack
// honours it: a cancelled crawl stops between queries, a deadline aborts a
// remote round trip, a shutting-down server drains instead of hanging. The
// invariant is the same as batching's: with a live context the responses —
// and therefore the paper's query count — are bit-identical to a
// context-free execution; cancellation only decides where the sequential
// prefix ends. A query cut off by cancellation was never served and is
// never charged (see Quota), so the counter, the budget and the journal
// always agree after an abort.
//
// The package also provides the measurement wrappers the crawling algorithms
// and the experiment harness are built on: a query counter, a memoizing
// cache (the "lazy" in lazy-slice-cover), a quota enforcer that models
// the per-IP query budgets real sites impose, and a token-bucket rate
// limiter modelling their per-client throttling. All wrappers are safe for
// concurrent use when their inner server is, and propagate batches natively.
package hiddendb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hidb/internal/dataspace"
	"hidb/internal/index"
	"hidb/internal/memo"
	"hidb/internal/simrand"
)

// Result is the server's response to one query.
type Result struct {
	// Tuples holds q(D) if the query resolved, else the k highest-priority
	// qualifying tuples. Callers must treat the tuples as read-only.
	Tuples dataspace.Bag
	// Overflow is the signal that q(D) has more tuples than were returned.
	Overflow bool
}

// Resolved reports whether the query was answered completely.
func (r Result) Resolved() bool { return !r.Overflow }

// Server is the query interface a crawler sees. Implementations must be
// deterministic: issuing the same query twice yields the same response.
type Server interface {
	// Answer runs one form query against the hidden database. A cancelled
	// or expired ctx aborts the query with the ctx's error before it is
	// served.
	Answer(ctx context.Context, q dataspace.Query) (Result, error)
	// AnswerBatch answers the queries exactly as if they were issued
	// sequentially through Answer, in order: results[i] is the response to
	// qs[i], and the server-side query count grows by len(qs). On failure
	// the returned slice holds the responses of the queries answered
	// before the failing one (len(results) < len(qs)) and the error
	// describes the first query that could not be answered — a ctx
	// cancelled mid-batch ends the prefix at the first unserved query and
	// reports the ctx's error.
	AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]Result, error)
	// K returns the server's return limit.
	K() int
	// Schema describes the data space the server's form exposes.
	Schema() *dataspace.Schema
}

// Single is the legacy pre-context, pre-batching server contract: one query
// per call, no cancellation. It exists so third-party wrappers written
// against the original interface keep working — pass them through Batched
// to obtain a full Server.
type Single interface {
	Answer(q dataspace.Query) (Result, error)
	K() int
	Schema() *dataspace.Schema
}

// Batched upgrades a legacy single-query server to the full Server
// contract: AnswerBatch loops over Answer — which trivially satisfies the
// batch-equals-sequential semantics — and the ctx is checked before every
// inner call, giving even a context-oblivious implementation prompt
// between-query cancellation.
func Batched(s Single) Server {
	return &batched{s}
}

type batched struct{ Single }

// Answer implements Server, honouring ctx before the legacy call.
func (b *batched) Answer(ctx context.Context, q dataspace.Query) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return b.Single.Answer(q)
}

// AnswerBatch implements Server by issuing the queries one at a time.
func (b *batched) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]Result, error) {
	out := make([]Result, 0, len(qs))
	for _, q := range qs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		res, err := b.Single.Answer(q)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// ErrQuotaExceeded is returned by a QuotaServer once its budget is spent.
var ErrQuotaExceeded = errors.New("hiddendb: query quota exceeded")

// Local is an in-process Server backed by an index.Engine — a single
// index.Store, or a priority-range index.Sharded store that answers batches
// with a parallel per-shard fan-out.
type Local struct {
	store index.Engine
	k     int
}

// NewLocal builds a local server over the bag with return limit k. The
// priority permutation is drawn from the given seed, so the same
// (bag, k, seed) triple always yields an identical server.
func NewLocal(schema *dataspace.Schema, bag dataspace.Bag, k int, seed uint64) (*Local, error) {
	byRank, err := rankPermutation(bag, k, seed)
	if err != nil {
		return nil, err
	}
	store, err := index.New(schema, byRank)
	if err != nil {
		return nil, err
	}
	return &Local{store: store, k: k}, nil
}

// NewLocalSharded builds a local server whose store is partitioned into the
// given number of priority-range shards. Responses are bit-identical to
// NewLocal with the same (bag, k, seed); only AnswerBatch's execution
// changes — the batch fans out across the shards in parallel, each shard
// with its own scratch pool.
func NewLocalSharded(schema *dataspace.Schema, bag dataspace.Bag, k int, seed uint64, shards int) (*Local, error) {
	byRank, err := rankPermutation(bag, k, seed)
	if err != nil {
		return nil, err
	}
	store, err := index.NewSharded(schema, byRank, shards)
	if err != nil {
		return nil, err
	}
	return &Local{store: store, k: k}, nil
}

// NewLocalEngine wraps an already-built index.Engine — an in-memory Store
// or Sharded store, or a diskstore.Store opened from a file — as a local
// server with return limit k. The engine's rank order is taken as the
// priority order verbatim; it is the caller's job to have arranged it (the
// disk builder bakes the permutation in at build time, so an opened store
// answers bit-identically to NewLocal over the same bag and seed).
func NewLocalEngine(store index.Engine, k int) (*Local, error) {
	if k < 1 {
		return nil, fmt.Errorf("hiddendb: return limit k must be >= 1, got %d", k)
	}
	if store == nil {
		return nil, fmt.Errorf("hiddendb: nil engine")
	}
	return &Local{store: store, k: k}, nil
}

// RankOrder arranges the bag in the descending priority order the local
// servers use: the seed's random permutation. Exported so a disk-store
// build can bake the exact NewLocal priority order into the file.
func RankOrder(bag dataspace.Bag, seed uint64) []dataspace.Tuple {
	byRank, _ := rankPermutation(bag, 1, seed)
	return byRank
}

// rankPermutation arranges the bag in descending priority order per the
// seed's random permutation.
func rankPermutation(bag dataspace.Bag, k int, seed uint64) ([]dataspace.Tuple, error) {
	if k < 1 {
		return nil, fmt.Errorf("hiddendb: return limit k must be >= 1, got %d", k)
	}
	rng := simrand.New(seed)
	perm := rng.Perm(len(bag))
	byRank := make([]dataspace.Tuple, len(bag))
	for rank, idx := range perm {
		byRank[rank] = bag[idx]
	}
	return byRank, nil
}

// Answer implements Server.
func (l *Local) Answer(ctx context.Context, q dataspace.Query) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if q.Schema() != l.store.Schema() {
		if err := q.Validate(); err != nil {
			return Result{}, fmt.Errorf("hiddendb: invalid query: %w", err)
		}
	}
	return l.result(l.store.Select(q, l.k)), nil
}

// AnswerBatch implements Server. On a sharded store the batch is evaluated
// by all shards in parallel; the responses are nevertheless exactly the
// sequential Answer responses, in order. A ctx cancelled mid-batch stops
// the store's evaluation (and, on a sharded store, its fan-out) and
// returns the answered prefix with the ctx's error.
func (l *Local) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]Result, error) {
	valid := len(qs)
	var verr error
	for i, q := range qs {
		if q.Schema() != l.store.Schema() {
			if err := q.Validate(); err != nil {
				valid, verr = i, fmt.Errorf("hiddendb: invalid query: %w", err)
				break
			}
		}
	}
	got := l.store.SelectBatch(ctx, qs[:valid], l.k)
	out := make([]Result, len(got))
	for i, g := range got {
		out[i] = l.result(g)
	}
	if len(got) < valid {
		// The store stopped early: only a cancelled ctx does that.
		return out, ctx.Err()
	}
	return out, verr
}

func (l *Local) result(got []dataspace.Tuple) Result {
	if len(got) > l.k {
		return Result{Tuples: dataspace.Bag(got[:l.k]), Overflow: true}
	}
	return Result{Tuples: dataspace.Bag(got)}
}

// K implements Server.
func (l *Local) K() int { return l.k }

// Schema implements Server.
func (l *Local) Schema() *dataspace.Schema { return l.store.Schema() }

// Size returns n, the number of tuples in the hidden database. A real
// hidden server would not expose this; it exists for experiments and tests.
func (l *Local) Size() int { return l.store.Size() }

// Shards returns the number of priority-range partitions backing the
// server — shards of an in-memory store, bands of a disk store, 1 for an
// unpartitioned store.
func (l *Local) Shards() int {
	if s, ok := l.store.(interface{ NumShards() int }); ok {
		return s.NumShards()
	}
	return 1
}

// Dump returns the ground-truth bag (priority order). Test/measurement only.
func (l *Local) Dump() dataspace.Bag { return dataspace.Bag(l.store.All()) }

// PlanStats reports the backing store's query-planner counters: cached plan
// shapes, cache hits and misses, and how often each access path executed.
// The counters are cumulative since construction and safe to read while
// queries are in flight.
func (l *Local) PlanStats() index.PlanStats { return l.store.PlanStats() }

// EngineStats reports which engine implementation backs the server ("mem"
// or "disk") and, for disk engines, the block-cache hit/miss counters.
func (l *Local) EngineStats() index.EngineStats { return l.store.EngineStats() }

// Counting wraps a Server and counts the queries that actually reach it.
// This is the paper's cost metric. Safe for concurrent use: the counters
// are atomics, so concurrent crawls over one server never serialize on a
// statistics lock.
type Counting struct {
	inner    Server
	queries  atomic.Int64
	resolved atomic.Int64
	overflow atomic.Int64
}

// NewCounting wraps srv with a fresh counter.
func NewCounting(srv Server) *Counting { return &Counting{inner: srv} }

// Answer implements Server, incrementing the counters.
func (c *Counting) Answer(ctx context.Context, q dataspace.Query) (Result, error) {
	res, err := c.inner.Answer(ctx, q)
	if err != nil {
		return res, err
	}
	c.note(res)
	return res, nil
}

// AnswerBatch implements Server; a batch counts as len(results) queries,
// exactly as the sequential contract requires.
func (c *Counting) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]Result, error) {
	results, err := c.inner.AnswerBatch(ctx, qs)
	for _, res := range results {
		c.note(res)
	}
	return results, err
}

func (c *Counting) note(res Result) {
	c.queries.Add(1)
	if res.Overflow {
		c.overflow.Add(1)
	} else {
		c.resolved.Add(1)
	}
}

// K implements Server.
func (c *Counting) K() int { return c.inner.K() }

// Schema implements Server.
func (c *Counting) Schema() *dataspace.Schema { return c.inner.Schema() }

// Queries returns the number of queries issued so far.
func (c *Counting) Queries() int { return int(c.queries.Load()) }

// Resolved returns how many of the issued queries resolved.
func (c *Counting) Resolved() int { return int(c.resolved.Load()) }

// Overflowed returns how many of the issued queries overflowed.
func (c *Counting) Overflowed() int { return int(c.overflow.Load()) }

// Reset zeroes the counters.
func (c *Counting) Reset() {
	c.queries.Store(0)
	c.resolved.Store(0)
	c.overflow.Store(0)
}

// Caching wraps a Server and memoizes responses by canonical query key.
// A repeated query is answered from the cache and does not count against the
// inner server. Lazy-slice-cover and hybrid rely on this to consult a slice
// query many times while paying for it once.
//
// The memo key is the compact binary encoding of Query.AppendKey, built
// into a pool-recycled buffer: a cache hit performs no allocation at all
// (the map lookup is a zero-copy string conversion), and a miss pays one
// key-string allocation when the entry is stored. The table is the memo
// package's sharded cache and the hit/miss counters are atomics, so Caching
// is safe for concurrent use — many workers (or one batched dispatcher) can
// share a memo without serializing on a single lock. The same memo core,
// byte-bounded and shared process-wide, backs the Shared fleet tier.
type Caching struct {
	inner  Server
	cache  *memo.Cache[Result]
	hits   atomic.Int64
	misses atomic.Int64
}

// NewCaching wraps srv with an empty memo table.
func NewCaching(srv Server) *Caching {
	return &Caching{inner: srv, cache: memo.New[Result](0, nil)}
}

// keyBufPool recycles AppendKey buffers so cache hits allocate nothing even
// under concurrent use (a per-Caching buffer would need its own lock).
var keyBufPool = sync.Pool{New: func() any { return new([]byte) }}

func (c *Caching) lookup(key []byte) (Result, bool) {
	return c.cache.Get(key)
}

func (c *Caching) store(key []byte, res Result) {
	c.cache.Set(string(key), res)
}

// Answer implements Server with memoization.
func (c *Caching) Answer(ctx context.Context, q dataspace.Query) (Result, error) {
	bufp := keyBufPool.Get().(*[]byte)
	key := q.AppendKey((*bufp)[:0])
	res, ok := c.lookup(key)
	if ok {
		c.hits.Add(1)
		*bufp = key[:0]
		keyBufPool.Put(bufp)
		return res, nil
	}
	res, err := c.inner.Answer(ctx, q)
	if err == nil {
		c.misses.Add(1)
		c.store(key, res)
	}
	*bufp = key[:0]
	keyBufPool.Put(bufp)
	return res, err
}

// AnswerBatch implements Server with memoization and the sequential
// contract: cached queries are answered for free, the remaining misses are
// forwarded to the inner server as one (deduplicated) batch, and a query
// repeated within the batch counts as a hit — exactly as if the batch had
// been issued query by query.
func (c *Caching) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]Result, error) {
	out, hits, err := MemoBatch(qs,
		func(q dataspace.Query) (Result, bool) {
			bufp := keyBufPool.Get().(*[]byte)
			key := q.AppendKey((*bufp)[:0])
			res, ok := c.lookup(key)
			*bufp = key[:0]
			keyBufPool.Put(bufp)
			return res, ok
		},
		func(miss []dataspace.Query) ([]Result, error) { return c.inner.AnswerBatch(ctx, miss) },
		func(q dataspace.Query, res Result) {
			c.misses.Add(1)
			bufp := keyBufPool.Get().(*[]byte)
			key := q.AppendKey((*bufp)[:0])
			c.store(key, res)
			*bufp = key[:0]
			keyBufPool.Put(bufp)
		})
	c.hits.Add(int64(hits))
	return out, err
}

// MemoBatch answers a batch through a memo table with the sequential
// contract, and is the shared engine of Caching.AnswerBatch and the
// journal wrapper's. Queries found by lookup are free; the remaining
// distinct queries are forwarded in order as one batch (an in-batch repeat
// rides on its first occurrence, since a sequential caller would find it
// memoized by then); each answered miss is handed to record before results
// are assembled. When forward fails, the answered prefix ends at the first
// unanswered query, exactly as if the batch had been issued one by one —
// in particular the returned hit count covers only that prefix, so memo
// accounting never counts queries a sequential caller would not have
// reached.
func MemoBatch(
	qs []dataspace.Query,
	lookup func(dataspace.Query) (Result, bool),
	forward func([]dataspace.Query) ([]Result, error),
	record func(dataspace.Query, Result),
) (results []Result, hits int, err error) {
	out := make([]Result, len(qs))
	// missOf[i] indexes qs[i]'s entry in the forwarded batch, -1 for a
	// memo hit; missPos[j] is the position of miss j's first occurrence.
	missOf := make([]int, len(qs))
	var missPos []int
	var missQs []dataspace.Query
	seen := make(map[string]int)
	for i, q := range qs {
		if res, ok := lookup(q); ok {
			out[i] = res
			missOf[i] = -1
			continue
		}
		key := q.Key()
		if j, ok := seen[key]; ok {
			missOf[i] = j
			continue
		}
		seen[key] = len(missQs)
		missOf[i] = len(missQs)
		missPos = append(missPos, i)
		missQs = append(missQs, q)
	}
	var missRes []Result
	if len(missQs) > 0 {
		missRes, err = forward(missQs)
		for j, res := range missRes {
			record(missQs[j], res)
		}
	}
	for i := range qs {
		j := missOf[i]
		if j >= 0 && j >= len(missRes) {
			// First unanswered miss (or a repeat of one): the sequential
			// prefix ends here; later queries were never issued, so their
			// hits are not counted.
			return out[:i], hits, err
		}
		if j >= 0 {
			out[i] = missRes[j]
			if missPos[j] != i {
				hits++ // in-batch repeat of an answered miss
			}
		} else {
			hits++ // memo hit
		}
	}
	return out, hits, err
}

// K implements Server.
func (c *Caching) K() int { return c.inner.K() }

// Schema implements Server.
func (c *Caching) Schema() *dataspace.Schema { return c.inner.Schema() }

// Hits returns how many queries were served from the cache.
func (c *Caching) Hits() int { return int(c.hits.Load()) }

// Misses returns how many queries fell through to the inner server (and
// were then memoized). Hits() + Misses() is the number of successfully
// answered queries.
func (c *Caching) Misses() int { return int(c.misses.Load()) }

// Quota wraps a Server and fails with ErrQuotaExceeded after budget
// queries, modelling per-IP limits of real sites ("most systems have a
// control on how many queries can be submitted by the same IP address").
// Safe for concurrent use when the inner server is.
type Quota struct {
	inner  Server
	mu     sync.Mutex
	budget int
	used   int
}

// NewQuota wraps srv with the given query budget.
func NewQuota(srv Server, budget int) *Quota {
	return &Quota{inner: srv, budget: budget}
}

// Cancelled reports whether err is a context cancellation or deadline
// expiry — the typed signal that a query was aborted before being served,
// as opposed to rejected by the server. Budget accounting depends on the
// distinction: a rejected query stays debited (the site saw it), a
// cancelled one never went out and is refunded in full.
func Cancelled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Answer implements Server, debiting the budget. A query aborted by ctx
// cancellation is refunded: it never reached the hidden database, so after
// an abort the budget spent always equals the queries actually served.
func (q *Quota) Answer(ctx context.Context, query dataspace.Query) (Result, error) {
	q.mu.Lock()
	if q.used >= q.budget {
		q.mu.Unlock()
		return Result{}, ErrQuotaExceeded
	}
	q.used++
	q.mu.Unlock()
	res, err := q.inner.Answer(ctx, query)
	if err != nil && Cancelled(err) {
		q.mu.Lock()
		q.used--
		q.mu.Unlock()
	}
	return res, err
}

// AnswerBatch implements Server with sequential debiting semantics: the
// batch is admitted up to the remaining budget, the admitted prefix is
// answered, and a batch cut short by the budget returns the answered prefix
// plus ErrQuotaExceeded — exactly what a sequential caller would observe.
// A batch cut short by ctx cancellation instead refunds every unanswered
// query, including the first unserved one: cancellation happens on the
// client's side of the wire, so nothing beyond the answered prefix was
// ever submitted.
func (q *Quota) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	q.mu.Lock()
	allowed := q.budget - q.used
	if allowed <= 0 {
		q.mu.Unlock()
		return nil, ErrQuotaExceeded
	}
	if allowed > len(qs) {
		allowed = len(qs)
	}
	q.used += allowed
	q.mu.Unlock()
	res, err := q.inner.AnswerBatch(ctx, qs[:allowed])
	if err != nil {
		// The failing query stays debited — unless the failure is a
		// cancellation, in which case it was never served; refund the
		// queries the inner server never reached either way.
		refund := allowed - len(res) - 1
		if Cancelled(err) {
			refund = allowed - len(res)
		}
		if refund > 0 {
			q.mu.Lock()
			q.used -= refund
			q.mu.Unlock()
		}
		return res, err
	}
	if allowed < len(qs) {
		return res, ErrQuotaExceeded
	}
	return res, nil
}

// K implements Server.
func (q *Quota) K() int { return q.inner.K() }

// Schema implements Server.
func (q *Quota) Schema() *dataspace.Schema { return q.inner.Schema() }

// Remaining returns the unused budget.
func (q *Quota) Remaining() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.budget - q.used
}

// Latency wraps a Server and sleeps for a fixed duration before answering,
// simulating the network round-trip of a real remote hidden database. It is
// what makes the parallel crawler's speedup measurable in tests and
// benchmarks. A batch pays the delay once — the whole point of batching is
// that B queries cost one round trip. Safe for concurrent use when the
// inner server is (Local is: it is read-only after construction).
type Latency struct {
	inner Server
	delay time.Duration
}

// NewLatency wraps srv with a per-round-trip delay.
func NewLatency(srv Server, delay time.Duration) *Latency {
	return &Latency{inner: srv, delay: delay}
}

// sleepCtx waits for the delay or the ctx, whichever ends first, returning
// the ctx's error on cancellation. It is what keeps a simulated-latency
// server from blocking shutdown for the full delay.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Answer implements Server after the simulated round-trip delay. A ctx
// cancelled during the delay aborts the query immediately — the simulated
// round trip never completes, so nothing is served.
func (l *Latency) Answer(ctx context.Context, q dataspace.Query) (Result, error) {
	if err := sleepCtx(ctx, l.delay); err != nil {
		return Result{}, err
	}
	return l.inner.Answer(ctx, q)
}

// AnswerBatch implements Server: one simulated round trip for the whole
// batch, abortable by ctx exactly as Answer's is.
func (l *Latency) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]Result, error) {
	if err := sleepCtx(ctx, l.delay); err != nil {
		return nil, err
	}
	return l.inner.AnswerBatch(ctx, qs)
}

// K implements Server.
func (l *Latency) K() int { return l.inner.K() }

// Schema implements Server.
func (l *Latency) Schema() *dataspace.Schema { return l.inner.Schema() }
