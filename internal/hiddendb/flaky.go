// Deterministic fault injection. A real hidden database fails in ways the
// simulator's happy path never exercises: transient 5xxs, a load balancer
// dropping the nth request, a client abort racing an in-flight batch. The
// answered-prefix contract — AnswerBatch returns the responses of the
// queries answered before the failure, and the error describes the first
// query that was not — is what keeps counters, quotas and journals
// agreeing through all of them, and Flaky exists to pin that agreement
// with repeatable tests: every fault it injects is a pure function of its
// seed and the query-arrival order, so a failing run replays exactly.
package hiddendb

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"hidb/internal/dataspace"
	"hidb/internal/simrand"
)

// ErrInjected is the transient failure Flaky injects. It is distinct from
// every real error in the stack, so tests can assert a crawl died of the
// injected fault and nothing else.
var ErrInjected = errors.New("hiddendb: injected transient fault")

// FlakyConfig selects which faults a Flaky server injects. All counting is
// in query attempts — the position a query would have in the sequential
// issue order — so a batch that faults at its i-th query fails exactly
// where a sequential caller would have failed.
type FlakyConfig struct {
	// Seed drives the FailProb coin flips. Equal seeds give equal fault
	// streams.
	Seed uint64
	// FailNth, when positive, fails every FailNth-th query attempt with
	// ErrInjected (the 1-based attempt counter is global across Answer and
	// AnswerBatch).
	FailNth int
	// FailProb, when positive, fails each attempt with this probability,
	// drawn deterministically from Seed.
	FailProb float64
	// AbortFrom and AbortUntil, when AbortUntil > AbortFrom, fail every
	// attempt whose 0-based index lies in [AbortFrom, AbortUntil) with
	// context.Canceled — a window of client aborts. Cancellation-flavoured
	// faults exercise the refund path: Cancelled(err) holds, so a Quota
	// above the Flaky layer refunds the query, exactly as it would for a
	// real ctx abort.
	AbortFrom, AbortUntil int
}

// Flaky wraps a Server with deterministic, seeded fault injection per
// FlakyConfig. A faulted query never reaches the inner server; in a batch,
// the queries before the fault are answered (and paid for) normally and
// returned as the answered prefix, per the Server contract. Safe for
// concurrent use; the global attempt order is whatever order queries
// arrive at this layer.
type Flaky struct {
	inner Server
	cfg   FlakyConfig

	mu       sync.Mutex
	rng      *simrand.RNG
	attempts int
	injected int
}

// NewFlaky wraps srv with the given fault plan.
func NewFlaky(srv Server, cfg FlakyConfig) *Flaky {
	return &Flaky{inner: srv, cfg: cfg, rng: simrand.New(cfg.Seed)}
}

// Attempts returns how many query attempts this layer has seen (served or
// faulted).
func (f *Flaky) Attempts() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts
}

// Injected returns how many faults have been injected so far.
func (f *Flaky) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// faultLocked advances the attempt counter and returns the fault for this
// attempt, or nil to let it through. Callers hold f.mu.
func (f *Flaky) faultLocked() error {
	i := f.attempts
	f.attempts++
	var err error
	switch {
	case f.cfg.AbortUntil > f.cfg.AbortFrom && i >= f.cfg.AbortFrom && i < f.cfg.AbortUntil:
		err = fmt.Errorf("hiddendb: injected abort of query attempt %d: %w", i, context.Canceled)
	case f.cfg.FailNth > 0 && (i+1)%f.cfg.FailNth == 0:
		err = fmt.Errorf("hiddendb: query attempt %d: %w", i, ErrInjected)
	case f.cfg.FailProb > 0 && f.rng.Bool(f.cfg.FailProb):
		err = fmt.Errorf("hiddendb: query attempt %d: %w", i, ErrInjected)
	}
	if err != nil {
		f.injected++
	}
	return err
}

// Answer implements Server, possibly injecting a fault instead of serving.
func (f *Flaky) Answer(ctx context.Context, q dataspace.Query) (Result, error) {
	f.mu.Lock()
	err := f.faultLocked()
	f.mu.Unlock()
	if err != nil {
		return Result{}, err
	}
	return f.inner.Answer(ctx, q)
}

// AnswerBatch implements Server with the answered-prefix contract: fault
// positions are decided for the batch in sequential order, the prefix
// before the first fault is forwarded (and answered, and paid for)
// normally, and the fault fails everything from its position on. Queries
// past the fault are not counted as attempts — a sequential caller would
// have stopped before issuing them.
func (f *Flaky) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]Result, error) {
	cut, ferr := len(qs), error(nil)
	f.mu.Lock()
	for i := range qs {
		if err := f.faultLocked(); err != nil {
			cut, ferr = i, err
			break
		}
	}
	f.mu.Unlock()
	if cut == 0 {
		// The first query faulted: nothing to forward. Returning here —
		// rather than handing an empty batch down the stack — matters to
		// the measurement decorators below, which charge a round trip
		// (one latency delay) per AnswerBatch call regardless of width; a
		// sequential caller would have issued nothing.
		return nil, ferr
	}
	res, err := f.inner.AnswerBatch(ctx, qs[:cut])
	if err != nil {
		// The inner server failed before the injected fault's position was
		// even reached; its (shorter) answered prefix and error win.
		return res, err
	}
	return res, ferr
}

// K implements Server.
func (f *Flaky) K() int { return f.inner.K() }

// Schema implements Server.
func (f *Flaky) Schema() *dataspace.Schema { return f.inner.Schema() }
