package hiddendb

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"hidb/internal/dataspace"
)

// RateLimited wraps a Server and throttles the queries that reach it to a
// sustained rate, modelling the queries-per-second limits real hidden
// databases enforce per client on top of their daily budgets. It is a
// token bucket: burst tokens accumulate while the client is idle, each
// query consumes one, and a query arriving to an empty bucket waits for
// the refill — or for its ctx, whichever comes first, so a throttled crawl
// cancels promptly instead of sleeping out its backlog.
//
// Throttling changes only the timing of queries, never their responses or
// count: a batch waits until every one of its queries is affordable and is
// then answered in one round trip, exactly as a sequential caller paying
// per query would eventually be. A wait aborted by ctx issues nothing.
//
// Safe for concurrent use; concurrent waiters drain the refill in FIFO-ish
// order (each recomputes its wait under the bucket lock).
type RateLimited struct {
	inner Server

	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	// now and sleep are the limiter's clock and wait primitive, swappable
	// in tests so throttling is verifiable without real waiting.
	now   func() time.Time
	sleep func(context.Context, time.Duration) error
}

// NewRateLimited wraps srv with a token bucket of the given sustained rate
// (queries per second; must be positive) and burst capacity (queries that
// may be issued back-to-back after an idle period; values below 1 are
// raised to 1). The bucket starts full.
func NewRateLimited(srv Server, perSecond float64, burst int) (*RateLimited, error) {
	if perSecond <= 0 || math.IsInf(perSecond, 0) || math.IsNaN(perSecond) {
		return nil, fmt.Errorf("hiddendb: rate limit must be a positive number of queries/second, got %v", perSecond)
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &RateLimited{
		inner:  srv,
		rate:   perSecond,
		burst:  b,
		tokens: b,
		last:   time.Now(),
		now:    time.Now,
		sleep:  sleepCtx,
	}, nil
}

// take blocks until n tokens have been consumed or ctx is done. Requests
// larger than the burst drain the bucket in burst-sized instalments, so an
// arbitrarily wide batch is still admitted at the sustained rate. A wait
// aborted by ctx refunds the instalments already consumed (capped at the
// bucket's capacity), so a cancelled caller — who issued nothing — does
// not leave the next queries throttled for work that never happened.
func (r *RateLimited) take(ctx context.Context, n int) error {
	taken := 0.0
	refund := func() {
		if taken > 0 {
			r.mu.Lock()
			r.tokens = math.Min(r.burst, r.tokens+taken)
			r.mu.Unlock()
		}
	}
	for n > 0 {
		step := n
		if s := int(r.burst); step > s {
			step = s
		}
		for {
			r.mu.Lock()
			now := r.now()
			r.tokens = math.Min(r.burst, r.tokens+now.Sub(r.last).Seconds()*r.rate)
			r.last = now
			if r.tokens >= float64(step) {
				r.tokens -= float64(step)
				r.mu.Unlock()
				break
			}
			wait := time.Duration((float64(step) - r.tokens) / r.rate * float64(time.Second))
			r.mu.Unlock()
			if err := r.sleep(ctx, wait); err != nil {
				refund()
				return err
			}
		}
		taken += float64(step)
		n -= step
	}
	if err := ctx.Err(); err != nil {
		refund()
		return err
	}
	return nil
}

// Answer implements Server, waiting for one token first.
func (r *RateLimited) Answer(ctx context.Context, q dataspace.Query) (Result, error) {
	if err := r.take(ctx, 1); err != nil {
		return Result{}, err
	}
	return r.inner.Answer(ctx, q)
}

// AnswerBatch implements Server: the batch waits until all its queries are
// affordable, then costs one round trip. A wait cancelled mid-way issues
// nothing and returns the ctx's error (an empty answered prefix).
func (r *RateLimited) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	if err := r.take(ctx, len(qs)); err != nil {
		return nil, err
	}
	return r.inner.AnswerBatch(ctx, qs)
}

// K implements Server.
func (r *RateLimited) K() int { return r.inner.K() }

// Schema implements Server.
func (r *RateLimited) Schema() *dataspace.Schema { return r.inner.Schema() }
