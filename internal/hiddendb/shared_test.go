package hiddendb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"hidb/internal/dataspace"
)

func TestSharedCachePolicyRoundTrip(t *testing.T) {
	for _, p := range []SharedCachePolicy{SharedOff, SharedFree, SharedCharged} {
		got, err := ParseSharedCachePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseSharedCachePolicy(%q) = %v, %v; want %v, nil", p.String(), got, err, p)
		}
	}
	if _, err := ParseSharedCachePolicy("never"); err == nil {
		t.Error("ParseSharedCachePolicy accepted an unknown spelling")
	}
	if p, err := ParseSharedCachePolicy(""); err != nil || p != SharedOff {
		t.Errorf("empty spelling = %v, %v; want SharedOff, nil", p, err)
	}
}

// TestSharedViewSingleLeader: every query is paid by exactly one of the
// views racing on it — the tier's core guarantee.
func TestSharedViewSingleLeader(t *testing.T) {
	sch := testSchema(t)
	srv, err := NewLocal(sch, testBag(500, 1), 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	counting := NewCounting(srv)
	shared := NewShared(0)

	const views, queries = 8, 20
	qs := make([]dataspace.Query, queries)
	u := dataspace.UniverseQuery(sch)
	for i := range qs {
		qs[i] = u.WithRange(1, 0, int64(i))
	}
	var wg sync.WaitGroup
	vs := make([]*SharedView, views)
	for i := range vs {
		vs[i] = shared.View(counting)
		wg.Add(1)
		go func(v *SharedView) {
			defer wg.Done()
			for _, q := range qs {
				if _, err := v.Answer(context.Background(), q); err != nil {
					t.Errorf("Answer: %v", err)
				}
			}
		}(vs[i])
	}
	wg.Wait()

	if counting.Queries() != queries {
		t.Fatalf("store paid %d queries for %d distinct across %d views, want exactly %d",
			counting.Queries(), queries, views, queries)
	}
	if shared.Leads() != queries {
		t.Fatalf("Leads = %d, want %d", shared.Leads(), queries)
	}
	if free := shared.Hits() + shared.Waits(); free != (views-1)*queries {
		t.Fatalf("hits+waits = %d, want %d", free, (views-1)*queries)
	}
	var perView int
	for _, v := range vs {
		perView += v.Hits() + v.Waits() + v.Leads()
	}
	if perView != views*queries {
		t.Fatalf("per-view counters sum to %d, want %d", perView, views*queries)
	}
	if shared.Entries() != queries {
		t.Fatalf("Entries = %d, want %d", shared.Entries(), queries)
	}
	if shared.InFlightWaits() != 0 {
		t.Fatalf("in-flight registry not drained: %d", shared.InFlightWaits())
	}
}

// TestSharedViewAnswersMatch: an answer served via the tier — hit, wait or
// lead — is the store's answer, bit for bit.
func TestSharedViewAnswersMatch(t *testing.T) {
	sch := testSchema(t)
	srv, err := NewLocal(sch, testBag(400, 7), 25, 42)
	if err != nil {
		t.Fatal(err)
	}
	shared := NewShared(0)
	v := shared.View(srv)
	u := dataspace.UniverseQuery(sch)
	for c := int64(1); c <= 4; c++ {
		q := u.WithValue(0, c)
		want, err := srv.Answer(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ { // lead, then hit
			got, err := v.Answer(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if got.Overflow != want.Overflow || len(got.Tuples) != len(want.Tuples) {
				t.Fatalf("round %d: overflow=%v len=%d, want %v %d",
					round, got.Overflow, len(got.Tuples), want.Overflow, len(want.Tuples))
			}
			for i := range got.Tuples {
				if fmt.Sprint(got.Tuples[i]) != fmt.Sprint(want.Tuples[i]) {
					t.Fatalf("round %d: tuple %d = %v, want %v", round, i, got.Tuples[i], want.Tuples[i])
				}
			}
		}
	}
	if v.Leads() != 4 || v.Hits() != 4 {
		t.Fatalf("leads=%d hits=%d, want 4 and 4", v.Leads(), v.Hits())
	}
}

// TestSharedViewBatchPrefix: a batch cut short below the tier still
// delivers the answered prefix, per the Server contract.
func TestSharedViewBatchPrefix(t *testing.T) {
	sch := testSchema(t)
	srv, err := NewLocal(sch, testBag(300, 3), 25, 42)
	if err != nil {
		t.Fatal(err)
	}
	quota := NewQuota(srv, 2)
	shared := NewShared(0)
	v := shared.View(quota)
	u := dataspace.UniverseQuery(sch)
	qs := []dataspace.Query{u.WithValue(0, 1), u.WithValue(0, 2), u.WithValue(0, 3)}
	res, err := v.AnswerBatch(context.Background(), qs)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	if len(res) != 2 {
		t.Fatalf("answered prefix = %d, want 2", len(res))
	}
	// The failed third query must not have been published.
	if shared.Entries() != 2 {
		t.Fatalf("Entries = %d after a failed lead, want 2", shared.Entries())
	}
	// A second view with budget picks the two cached answers up free and
	// pays only the third.
	quota2 := NewQuota(srv, 2)
	v2 := shared.View(quota2)
	if _, err := v2.AnswerBatch(context.Background(), qs); err != nil {
		t.Fatalf("follower batch: %v", err)
	}
	if quota2.Remaining() != 1 {
		t.Fatalf("follower paid %d, want 1 (two shared hits)", 2-quota2.Remaining())
	}
}

// TestSharedBounded: a byte-bounded tier evicts old answers and re-pays
// them on the next ask — the cache is an optimization, never truth.
func TestSharedBounded(t *testing.T) {
	sch := testSchema(t)
	srv, err := NewLocal(sch, testBag(500, 5), 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	counting := NewCounting(srv)
	shared := NewShared(512) // tiny: a handful of answers fleet-wide
	v := shared.View(counting)
	u := dataspace.UniverseQuery(sch)
	const n = 64
	for i := 0; i < n; i++ {
		if _, err := v.Answer(context.Background(), u.WithRange(1, 0, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if shared.Evictions() == 0 {
		t.Fatal("tiny bound never evicted")
	}
	// Each shard may retain one entry over its budget (the never-evict-fresh
	// guarantee), so occupancy — not exact bytes — is what the bound pins.
	if shared.Entries() >= n {
		t.Fatalf("Entries = %d of %d inserted; bound held nothing", shared.Entries(), n)
	}
	// Re-asking everything still terminates and still answers correctly;
	// evicted entries are re-led.
	for i := 0; i < n; i++ {
		if _, err := v.Answer(context.Background(), u.WithRange(1, 0, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if counting.Queries() < n {
		t.Fatalf("store paid %d < %d distinct queries", counting.Queries(), n)
	}
}

// TestSharedViewLeaderErrorNotCached: a leader's failure is returned to it
// alone and poisons nothing — the next asker leads again and succeeds.
func TestSharedViewLeaderErrorNotCached(t *testing.T) {
	sch := testSchema(t)
	srv, err := NewLocal(sch, testBag(200, 9), 25, 42)
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	failOnce := serverFunc{inner: srv, answer: func(ctx context.Context, q dataspace.Query) (Result, error) {
		if !failed {
			failed = true
			return Result{}, ErrInjected
		}
		return srv.Answer(ctx, q)
	}}
	shared := NewShared(0)
	v := shared.View(failOnce)
	q := dataspace.UniverseQuery(sch).WithValue(0, 1)
	if _, err := v.Answer(context.Background(), q); !errors.Is(err, ErrInjected) {
		t.Fatalf("first ask = %v, want injected fault", err)
	}
	if shared.Entries() != 0 {
		t.Fatal("failed lead was published")
	}
	if _, err := v.Answer(context.Background(), q); err != nil {
		t.Fatalf("retry after failed lead: %v", err)
	}
	// Only the successful, published lead is counted — a failed fetch
	// deposits nothing, so it is not a lead.
	if v.Leads() != 1 {
		t.Fatalf("Leads = %d, want 1 (the successful retry)", v.Leads())
	}
}

// serverFunc overrides Answer on an inner server (test seam).
type serverFunc struct {
	inner  Server
	answer func(ctx context.Context, q dataspace.Query) (Result, error)
}

func (s serverFunc) Answer(ctx context.Context, q dataspace.Query) (Result, error) {
	return s.answer(ctx, q)
}

func (s serverFunc) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]Result, error) {
	out := make([]Result, 0, len(qs))
	for _, q := range qs {
		res, err := s.answer(ctx, q)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

func (s serverFunc) K() int                    { return s.inner.K() }
func (s serverFunc) Schema() *dataspace.Schema { return s.inner.Schema() }
