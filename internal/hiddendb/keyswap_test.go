package hiddendb_test

// Caching switched its memo key from the string Query.Key to the binary
// Query.AppendKey encoding. The test here pins the behavioural contract of
// that swap from the algorithms' point of view: lazy-slice-cover's query
// count — the paper's cost metric — must be exactly what the canonical
// string key would produce. If the binary key were coarser (two different
// queries colliding), the crawl would receive a wrong cached answer and
// fail the completeness check; if it were finer (one query under two
// keys), some canonical key would reach the inner server twice.

import (
	"context"
	"testing"

	"hidb/internal/core"
	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
)

// recorder counts, per canonical string key, how often each distinct query
// reaches the inner server.
type recorder struct {
	inner hiddendb.Server
	seen  map[string]int
}

func (r *recorder) Answer(q dataspace.Query) (hiddendb.Result, error) {
	r.seen[q.Key()]++
	return r.inner.Answer(context.Background(), q)
}

func (r *recorder) K() int                    { return r.inner.K() }
func (r *recorder) Schema() *dataspace.Schema { return r.inner.Schema() }

func TestLazySliceCoverQueryCountUnchangedByKeySwap(t *testing.T) {
	ds := datagen.NSFLikeN(2500, 11)
	srv, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{inner: srv, seen: map[string]int{}}
	res, err := core.LazySliceCover{}.Crawl(context.Background(), hiddendb.Batched(rec), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tuples.EqualMultiset(ds.Tuples) {
		t.Fatal("crawl incomplete — a memo-key collision returned a wrong cached answer")
	}
	for key, c := range rec.seen {
		if c > 1 {
			t.Errorf("query %q reached the server %d times — the binary memo key is finer than the canonical key", key, c)
		}
	}
	if res.Queries != len(rec.seen) {
		t.Errorf("query cost %d != %d distinct canonical queries — the key swap changed the cost metric",
			res.Queries, len(rec.seen))
	}
}
