package hiddendb

import (
	"context"
	"errors"
	"testing"

	"hidb/internal/dataspace"
	"hidb/internal/simrand"
)

func testSchema(t *testing.T) *dataspace.Schema {
	t.Helper()
	return dataspace.MustSchema([]dataspace.Attribute{
		{Name: "C", Kind: dataspace.Categorical, DomainSize: 4},
		{Name: "N", Kind: dataspace.Numeric, Min: 0, Max: 100},
	})
}

func testBag(n int, seed uint64) dataspace.Bag {
	rng := simrand.New(seed)
	bag := make(dataspace.Bag, n)
	for i := range bag {
		bag[i] = dataspace.Tuple{rng.IntRange(1, 4), rng.IntRange(0, 100)}
	}
	return bag
}

func TestLocalResolvedIffSmall(t *testing.T) {
	sch := testSchema(t)
	bag := testBag(500, 1)
	srv, err := NewLocal(sch, bag, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	u := dataspace.UniverseQuery(sch)

	res, err := srv.Answer(context.Background(), u)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Overflow || len(res.Tuples) != 50 {
		t.Fatalf("universe: overflow=%v len=%d, want true 50", res.Overflow, len(res.Tuples))
	}

	// A query matching <= k tuples must resolve with the exact bag.
	q := u.WithValue(0, 1).WithRange(1, 0, 5)
	want := 0
	for _, tu := range bag {
		if q.Covers(tu) {
			want++
		}
	}
	if want > 50 {
		t.Skip("unlucky seed: narrow query still overflows")
	}
	res, err = srv.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflow || len(res.Tuples) != want {
		t.Fatalf("narrow query: overflow=%v len=%d, want false %d", res.Overflow, len(res.Tuples), want)
	}
}

func TestLocalDeterministicResponses(t *testing.T) {
	sch := testSchema(t)
	bag := testBag(300, 2)
	srv, err := NewLocal(sch, bag, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	u := dataspace.UniverseQuery(sch)
	a, err := srv.Answer(context.Background(), u)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		b, err := srv.Answer(context.Background(), u)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Tuples) != len(b.Tuples) || a.Overflow != b.Overflow {
			t.Fatal("repeated query changed shape")
		}
		for i := range a.Tuples {
			if !a.Tuples[i].Equal(b.Tuples[i]) {
				t.Fatal("repeated query returned different tuples — violates the problem setup")
			}
		}
	}
}

func TestLocalSameSeedSameServer(t *testing.T) {
	sch := testSchema(t)
	bag := testBag(300, 3)
	a, _ := NewLocal(sch, bag, 10, 99)
	b, _ := NewLocal(sch, bag, 10, 99)
	u := dataspace.UniverseQuery(sch)
	ra, _ := a.Answer(context.Background(), u)
	rb, _ := b.Answer(context.Background(), u)
	for i := range ra.Tuples {
		if !ra.Tuples[i].Equal(rb.Tuples[i]) {
			t.Fatal("equal seeds produced different priority orders")
		}
	}
	c, _ := NewLocal(sch, bag, 10, 100)
	rc, _ := c.Answer(context.Background(), u)
	same := true
	for i := range ra.Tuples {
		if !ra.Tuples[i].Equal(rc.Tuples[i]) {
			same = false
			break
		}
	}
	if same {
		t.Log("warning: different seeds produced identical top-k (possible but unlikely)")
	}
}

func TestLocalRejectsBadK(t *testing.T) {
	if _, err := NewLocal(testSchema(t), nil, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestLocalDumpIsGroundTruth(t *testing.T) {
	sch := testSchema(t)
	bag := testBag(100, 4)
	srv, _ := NewLocal(sch, bag, 10, 5)
	if srv.Size() != 100 {
		t.Fatalf("Size = %d, want 100", srv.Size())
	}
	if !srv.Dump().EqualMultiset(bag) {
		t.Fatal("Dump is not the original bag")
	}
}

func TestCounting(t *testing.T) {
	sch := testSchema(t)
	srv, _ := NewLocal(sch, testBag(500, 5), 20, 6)
	c := NewCounting(srv)
	u := dataspace.UniverseQuery(sch)

	if _, err := c.Answer(context.Background(), u); err != nil {
		t.Fatal(err)
	}
	narrow := u.WithValue(0, 2).WithRange(1, 0, 2)
	if _, err := c.Answer(context.Background(), narrow); err != nil {
		t.Fatal(err)
	}
	if c.Queries() != 2 {
		t.Fatalf("Queries = %d, want 2", c.Queries())
	}
	if c.Overflowed()+c.Resolved() != 2 {
		t.Fatal("resolved+overflowed != queries")
	}
	c.Reset()
	if c.Queries() != 0 || c.Resolved() != 0 || c.Overflowed() != 0 {
		t.Fatal("Reset did not zero counters")
	}
	if c.K() != 20 || c.Schema() != sch {
		t.Fatal("Counting does not forward K/Schema")
	}
}

func TestCachingDedupes(t *testing.T) {
	sch := testSchema(t)
	srv, _ := NewLocal(sch, testBag(500, 7), 20, 8)
	counting := NewCounting(srv)
	caching := NewCaching(counting)
	u := dataspace.UniverseQuery(sch)

	r1, _ := caching.Answer(context.Background(), u)
	r2, _ := caching.Answer(context.Background(), u)
	r3, _ := caching.Answer(context.Background(), u)
	if counting.Queries() != 1 {
		t.Fatalf("inner saw %d queries, want 1", counting.Queries())
	}
	if caching.Hits() != 2 {
		t.Fatalf("Hits = %d, want 2", caching.Hits())
	}
	if len(r1.Tuples) != len(r2.Tuples) || len(r2.Tuples) != len(r3.Tuples) {
		t.Fatal("cache returned different responses")
	}

	// Semantically equal but separately built queries share the cache key.
	q1 := u.WithValue(0, 3)
	q2 := dataspace.UniverseQuery(sch).WithValue(0, 3)
	caching.Answer(context.Background(), q1)
	caching.Answer(context.Background(), q2)
	if counting.Queries() != 2 {
		t.Fatalf("equal queries not deduped: inner saw %d", counting.Queries())
	}
	if caching.K() != 20 || caching.Schema() != sch {
		t.Fatal("Caching does not forward K/Schema")
	}
}

func TestCachingHitMissAccounting(t *testing.T) {
	sch := testSchema(t)
	srv, _ := NewLocal(sch, testBag(500, 7), 20, 8)
	counting := NewCounting(srv)
	caching := NewCaching(counting)
	rng := simrand.New(13)

	// Issue a randomized stream with many repeats; the memo key is the
	// binary AppendKey encoding, so distinct queries must miss exactly once
	// and repeats must always hit.
	issued := 0
	distinct := map[string]bool{}
	for i := 0; i < 400; i++ {
		q := dataspace.UniverseQuery(sch)
		if rng.Bool(0.7) {
			q = q.WithValue(0, rng.IntRange(1, 4))
		}
		if rng.Bool(0.7) {
			lo := rng.IntRange(0, 90)
			q = q.WithRange(1, lo, lo+rng.IntRange(0, 4))
		}
		if _, err := caching.Answer(context.Background(), q); err != nil {
			t.Fatal(err)
		}
		issued++
		distinct[q.Key()] = true
	}
	if caching.Hits()+caching.Misses() != issued {
		t.Fatalf("Hits(%d) + Misses(%d) != %d issued", caching.Hits(), caching.Misses(), issued)
	}
	if caching.Misses() != len(distinct) {
		t.Fatalf("Misses = %d, want %d (one per distinct canonical key)", caching.Misses(), len(distinct))
	}
	if counting.Queries() != caching.Misses() {
		t.Fatalf("inner server saw %d queries, want Misses() = %d", counting.Queries(), caching.Misses())
	}
}

func TestQuota(t *testing.T) {
	sch := testSchema(t)
	srv, _ := NewLocal(sch, testBag(100, 9), 10, 10)
	q := NewQuota(srv, 3)
	u := dataspace.UniverseQuery(sch)
	for i := 0; i < 3; i++ {
		if _, err := q.Answer(context.Background(), u); err != nil {
			t.Fatalf("query %d within budget failed: %v", i, err)
		}
	}
	if q.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", q.Remaining())
	}
	if _, err := q.Answer(context.Background(), u); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-budget query: err = %v, want ErrQuotaExceeded", err)
	}
	if q.K() != 10 || q.Schema() != sch {
		t.Fatal("Quota does not forward K/Schema")
	}
}

func TestTopKPriorityConsistency(t *testing.T) {
	// The k tuples returned for a broader query must include every
	// qualifying tuple returned for a narrower one that overflows too —
	// because priorities are global. (This is the property the paper's
	// "same k tuples may always be returned" behaviour rests on.)
	sch := testSchema(t)
	bag := testBag(2000, 11)
	srv, _ := NewLocal(sch, bag, 30, 12)
	broad := dataspace.UniverseQuery(sch)
	rb, _ := srv.Answer(context.Background(), broad)
	if !rb.Overflow {
		t.Skip("universe did not overflow")
	}
	// Narrow to C=1 (still likely overflowing with 2000 tuples).
	narrow := broad.WithValue(0, 1)
	rn, _ := srv.Answer(context.Background(), narrow)
	if !rn.Overflow {
		t.Skip("narrow query did not overflow")
	}
	// Every broad-result tuple with C=1 that ranks in the top 30 of the
	// narrow result must appear there. Check subset relation on the first
	// few: the highest-priority C=1 tuple of the broad response must be
	// the narrow response's first tuple.
	var firstC1 dataspace.Tuple
	for _, tu := range rb.Tuples {
		if tu[0] == 1 {
			firstC1 = tu
			break
		}
	}
	if firstC1 != nil && !rn.Tuples[0].Equal(firstC1) {
		t.Fatal("global priority order violated between broad and narrow queries")
	}
}

func TestResultResolved(t *testing.T) {
	if (Result{Overflow: true}).Resolved() {
		t.Error("overflowing result claims resolved")
	}
	if !(Result{}).Resolved() {
		t.Error("empty result not resolved")
	}
}
