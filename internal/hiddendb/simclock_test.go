package hiddendb

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"hidb/internal/dataspace"
	"hidb/internal/simrand"
)

// simTestServer builds a small deterministic local server.
func simTestServer(t *testing.T, n, k int) (*Local, *dataspace.Schema) {
	t.Helper()
	schema := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "C", Kind: dataspace.Categorical, DomainSize: 6},
		{Name: "N", Kind: dataspace.Numeric, Min: 0, Max: 10_000},
	})
	rng := simrand.New(7)
	bag := make(dataspace.Bag, n)
	for i := range bag {
		bag[i] = dataspace.Tuple{int64(1 + rng.Intn(6)), rng.IntRange(0, 10_000)}
	}
	srv, err := NewLocal(schema, bag, k, 42)
	if err != nil {
		t.Fatal(err)
	}
	return srv, schema
}

func TestSimClockSequentialSleep(t *testing.T) {
	c := NewSimClock()
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %v", c.Now())
	}
	// With no holds and no competing sleepers, Sleep returns immediately
	// after advancing the clock.
	for i := 1; i <= 3; i++ {
		if err := c.Sleep(context.Background(), 5*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if want := time.Duration(i) * 5 * time.Millisecond; c.Now() != want {
			t.Fatalf("after %d sleeps clock at %v, want %v", i, c.Now(), want)
		}
	}
	// Zero and negative durations are free.
	if err := c.Sleep(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if c.Now() != 15*time.Millisecond {
		t.Fatalf("zero sleep moved the clock to %v", c.Now())
	}
}

func TestSimClockNilSafe(t *testing.T) {
	var c *SimClock
	c.Hold()
	c.Release()
	c.SetIdle(nil)
	if c.Now() != 0 {
		t.Fatal("nil clock has a time")
	}
	if err := c.Sleep(context.Background(), time.Second); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(ctx, time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("nil clock sleep under cancelled ctx: %v", err)
	}
}

// TestSimClockConcurrentSleepersWakeTogether drives the hold protocol by
// hand: two held goroutines sleeping to the same deadline wake at the same
// virtual instant, and the clock advances only once both are asleep.
func TestSimClockConcurrentSleepersWakeTogether(t *testing.T) {
	c := NewSimClock()
	const d = 3 * time.Millisecond
	var wg sync.WaitGroup
	woke := make(chan time.Duration, 2)
	for i := 0; i < 2; i++ {
		c.Hold() // minted by the "spawner", as the batcher does
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Release()
			if err := c.Sleep(context.Background(), d); err != nil {
				t.Error(err)
			}
			woke <- c.Now()
		}()
	}
	wg.Wait()
	close(woke)
	for at := range woke {
		if at != d {
			t.Fatalf("sleeper woke at %v, want %v", at, d)
		}
	}
	if c.Now() != d {
		t.Fatalf("clock at %v after both slept %v", c.Now(), d)
	}
}

// TestSimClockStaggeredDeadlines: with one goroutine holding, the clock
// cannot advance; once it sleeps further out, the earlier deadline fires
// first and the clock visits each deadline in order.
func TestSimClockStaggeredDeadlines(t *testing.T) {
	c := NewSimClock()
	order := make(chan int, 2)
	var wg sync.WaitGroup
	c.Hold()
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer c.Release()
		c.Sleep(context.Background(), 2*time.Millisecond)
		order <- 1
		c.Sleep(context.Background(), 4*time.Millisecond) // until t=6ms
		order <- 2
	}()
	c.Hold()
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer c.Release()
		c.Sleep(context.Background(), 4*time.Millisecond) // until t=4ms
	}()
	wg.Wait()
	if got := c.Now(); got != 6*time.Millisecond {
		t.Fatalf("clock ended at %v, want 6ms", got)
	}
	if first, second := <-order, <-order; first != 1 || second != 2 {
		t.Fatalf("wake order %d,%d", first, second)
	}
}

// TestSimClockSleepCancelled: a ctx cancelled during a virtual sleep wakes
// the sleeper with the ctx's error and without advancing the clock past
// deadlines that were never reached.
func TestSimClockSleepCancelled(t *testing.T) {
	c := NewSimClock()
	ctx, cancel := context.WithCancel(context.Background())
	// Two holds: one for the test goroutine itself (still runnable — it is
	// about to cancel), one minted for the sleeper. With the test's hold
	// outstanding the clock cannot advance, so the sleep must end by
	// cancellation.
	c.Hold()
	c.Hold()
	errc := make(chan error, 1)
	go func() {
		errc <- c.Sleep(ctx, time.Hour)
	}()
	// Give the sleeper a moment to register, then cancel.
	time.Sleep(time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sleep returned %v", err)
	}
	if c.Now() != 0 {
		t.Fatalf("cancellation advanced the clock to %v", c.Now())
	}
	c.Release()
	c.Release()
}

// TestSimClockIdleCallback: the idle callback fires at quiescence, may
// schedule work for the current instant (keeping the clock still), and the
// clock advances once it declines.
func TestSimClockIdleCallback(t *testing.T) {
	c := NewSimClock()
	fired := 0
	c.SetIdle(func() bool {
		fired++
		if fired == 1 {
			// Claim the granted hold and release it right away: work that
			// ran and finished within the instant.
			go c.Release()
			return true
		}
		return false
	})
	c.Hold()
	done := make(chan struct{})
	go func() {
		c.Sleep(context.Background(), time.Millisecond)
		close(done)
	}()
	// The sleeping goroutine releases the only hold; idle fires once,
	// schedules nothing durable, then the clock advances and the sleeper
	// wakes.
	<-done
	if c.Now() != time.Millisecond {
		t.Fatalf("clock at %v", c.Now())
	}
	if fired < 2 {
		t.Fatalf("idle callback fired %d times, want at least 2", fired)
	}
	c.Release()
}

func TestSimLatencySequentialServer(t *testing.T) {
	srv, schema := simTestServer(t, 500, 50)
	clock := NewSimClock()
	const delay = 2 * time.Millisecond
	sim := NewSimLatency(srv, delay, clock)
	if sim.K() != srv.K() || sim.Schema() != srv.Schema() {
		t.Fatal("SimLatency does not forward K/Schema")
	}
	if sim.Clock() != clock {
		t.Fatal("SimLatency does not expose its clock")
	}

	u := dataspace.UniverseQuery(schema)
	want, err := srv.Answer(context.Background(), u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.Answer(context.Background(), u)
	if err != nil {
		t.Fatal(err)
	}
	if got.Overflow != want.Overflow || len(got.Tuples) != len(want.Tuples) {
		t.Fatal("simulated latency changed a response")
	}
	if clock.Now() != delay {
		t.Fatalf("one round trip left the clock at %v, want %v", clock.Now(), delay)
	}

	// A batch pays the delay once.
	qs := []dataspace.Query{u, u.WithValue(0, 1), u.WithValue(0, 2)}
	res, err := sim.AnswerBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(qs) {
		t.Fatalf("batch answered %d of %d", len(res), len(qs))
	}
	if clock.Now() != 2*delay {
		t.Fatalf("batch round trip left the clock at %v, want %v", clock.Now(), 2*delay)
	}
	if sim.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", sim.Trips())
	}
}

// TestSimLatencyCancelledNotServed: a ctx cancelled before the virtual
// round trip completes aborts the query unserved — Trips stays put, so
// nothing was charged downstream.
func TestSimLatencyCancelledNotServed(t *testing.T) {
	srv, schema := simTestServer(t, 100, 10)
	clock := NewSimClock()
	sim := NewSimLatency(srv, time.Hour, clock)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.Answer(ctx, dataspace.UniverseQuery(schema)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := sim.AnswerBatch(ctx, []dataspace.Query{dataspace.UniverseQuery(schema)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
	if sim.Trips() != 0 {
		t.Fatalf("cancelled round trips still counted: %d", sim.Trips())
	}
	if clock.Now() != 0 {
		t.Fatalf("cancelled round trips advanced the clock to %v", clock.Now())
	}
}
