package hiddendb

import (
	"context"
	"errors"
	"testing"
	"time"

	"hidb/internal/dataspace"
)

// TestLatencySleepAbortsOnCancel is the shutdown-path regression: a
// Latency wrapper must abandon its simulated delay the moment the ctx is
// cancelled, not block for the full duration. Before the fix a 30s
// simulated round trip held server shutdown hostage for 30s.
func TestLatencySleepAbortsOnCancel(t *testing.T) {
	sch := testSchema(t)
	srv, err := NewLocal(sch, testBag(100, 50), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	lat := NewLatency(srv, 30*time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = lat.Answer(ctx, dataspace.UniverseQuery(sch))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled Answer blocked %v — the sleep ignored the ctx", elapsed)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	start = time.Now()
	if _, err := lat.AnswerBatch(ctx2, []dataspace.Query{dataspace.UniverseQuery(sch)}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("batch err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled AnswerBatch blocked %v", elapsed)
	}
}

// TestQuotaRefundsCancelledQuery: a query aborted by cancellation never
// reached the server and must not consume budget, while a server-rejected
// query stays debited — the distinction that keeps the budget equal to
// the queries actually served after an abort.
func TestQuotaRefundsCancelledQuery(t *testing.T) {
	sch := testSchema(t)
	srv, err := NewLocal(sch, testBag(100, 51), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	quota := NewQuota(srv, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := quota.Answer(ctx, dataspace.UniverseQuery(sch)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if quota.Remaining() != 5 {
		t.Fatalf("cancelled query consumed budget: %d remaining, want 5", quota.Remaining())
	}
	// A batch cut short by cancellation refunds every unserved query.
	qs := batchQueries(sch, 4, 60)
	if _, err := quota.AnswerBatch(ctx, qs); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
	if quota.Remaining() != 5 {
		t.Fatalf("cancelled batch consumed budget: %d remaining, want 5", quota.Remaining())
	}
	// Sanity: a live ctx serves and debits normally.
	if _, err := quota.Answer(context.Background(), dataspace.UniverseQuery(sch)); err != nil {
		t.Fatal(err)
	}
	if quota.Remaining() != 4 {
		t.Fatalf("served query not debited: %d remaining, want 4", quota.Remaining())
	}
}

// TestLocalBatchCancelledPrefix: a Local server whose batch is cancelled
// mid-evaluation returns a contiguous answered prefix plus the ctx error,
// and the prefix responses are bit-identical to live answers.
func TestLocalBatchCancelledPrefix(t *testing.T) {
	sch := testSchema(t)
	srv, err := NewLocalSharded(sch, testBag(500, 52), 10, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	qs := batchQueries(sch, 8, 61)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := srv.AnswerBatch(ctx, qs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range res {
		want, werr := srv.Answer(context.Background(), qs[i])
		if werr != nil {
			t.Fatal(werr)
		}
		if !sameResult(r, want) {
			t.Fatalf("cancelled-batch prefix result %d differs from a live Answer", i)
		}
	}
}
