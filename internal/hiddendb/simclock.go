// A deterministic virtual clock for latency simulation.
//
// The parallel ablation's question — how much wall-clock time does a
// pipelined batcher save under a 3 ms round trip? — used to be answered by
// actually sleeping 3 ms per round trip, which made the measurement slow
// and the answer a property of the loaded machine it ran on. SimClock
// replaces real time with discrete-event time: round trips register a
// virtual deadline and block; the clock jumps straight to the earliest
// deadline, but only when the whole simulated system is quiescent — no
// goroutine is doing work that could still issue a round trip "now". The
// same crawl therefore always observes the same virtual elapsed time,
// regardless of scheduler interleavings or machine load, and a simulated
// minute of network latency costs microseconds of real time.
//
// Quiescence is cooperative, counted by holds. Every participant that is
// runnable — a crawl worker computing on a response, a dispatcher packing a
// batch, a message sitting in a channel waiting to be processed — owns one
// hold; a participant blocked waiting for a round trip owns none. When the
// hold count reaches zero, nothing can happen except by time passing, so
// the clock advances to the next deadline and wakes the round trips due
// then (restoring their holds). The parallel crawler's batcher maintains
// the holds for all of its goroutines and messages; a sequential crawl
// needs no holds at all — with no concurrency there is never anything to
// wait for, and Sleep simply advances the clock (see Sleep).
package hiddendb

import (
	"container/heap"
	"context"
	"sync"
	"time"

	"hidb/internal/dataspace"
)

// SimClock is a deterministic virtual clock. Create one per simulated
// crawl with NewSimClock, wire the server with NewSimLatency and — for the
// parallel crawler — hand the same clock to core.Options.Clock so the
// dispatcher can keep the hold count. Mixing two independently-driven
// crawls on one clock is not supported: the quiescence rule is "nothing in
// this simulation is runnable", which a foreign crawl would falsify.
type SimClock struct {
	mu       sync.Mutex
	now      time.Duration
	active   int
	sleepers sleeperHeap
	// idle, when non-nil, is consulted at quiescence before time advances.
	// Returning true means the callback scheduled more work for the current
	// instant (it is granted one hold, which the scheduled work must
	// eventually Release); false lets the clock advance. The parallel
	// dispatcher uses this to flush a partially filled batch exactly when
	// the simulated instant has no more queries to offer — the
	// deterministic analogue of "the connection would otherwise go idle".
	idle func() bool
}

// sleeper is one goroutine blocked until a virtual deadline.
type sleeper struct {
	deadline time.Duration
	ch       chan struct{}
	fired    bool
	// counted records whether the sleeper released a hold when it went to
	// sleep (and so must be handed one back on waking).
	counted bool
	index   int
}

// sleeperHeap is a min-heap of sleepers by deadline.
type sleeperHeap []*sleeper

func (h sleeperHeap) Len() int           { return len(h) }
func (h sleeperHeap) Less(i, j int) bool { return h[i].deadline < h[j].deadline }
func (h sleeperHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *sleeperHeap) Push(x any)        { s := x.(*sleeper); s.index = len(*h); *h = append(*h, s) }
func (h *sleeperHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}
func (h sleeperHeap) peek() *sleeper { return h[0] }

// NewSimClock returns a virtual clock at time zero.
func NewSimClock() *SimClock {
	return &SimClock{}
}

// Now returns the current virtual time — after a simulated crawl, its
// deterministic virtual elapsed time. A nil clock reads as zero.
func (c *SimClock) Now() time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Hold marks one participant (goroutine or in-flight message) runnable:
// while any hold is outstanding the clock will not advance. Nil-safe, so
// callers can thread an optional clock without guarding every call.
func (c *SimClock) Hold() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.active++
	c.mu.Unlock()
}

// Release drops a hold taken with Hold. When the last hold is released the
// system is quiescent: the idle callback gets a chance to schedule more
// work at the current instant, and otherwise the clock advances to the
// next deadline. Nil-safe.
func (c *SimClock) Release() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.active--
	c.advanceLocked()
	c.mu.Unlock()
}

// SetIdle installs (or, with nil, removes) the quiescence callback. See
// the idle field. Nil-safe.
func (c *SimClock) SetIdle(f func() bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.idle = f
	c.mu.Unlock()
}

// Sleep blocks the caller until d of virtual time has passed, or until ctx
// is cancelled (returning the ctx's error, with the caller runnable
// again). A caller inside the hold protocol has its hold released for the
// duration of the sleep and restored on waking; a caller outside it (a
// sequential crawl — the only goroutine in the simulation) finds the clock
// with no holds and no competing sleepers, so the deadline is reached
// immediately and Sleep returns without blocking at all.
func (c *SimClock) Sleep(ctx context.Context, d time.Duration) error {
	if c == nil {
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	if d <= 0 {
		c.mu.Unlock()
		return nil
	}
	s := &sleeper{deadline: c.now + d, ch: make(chan struct{})}
	if c.active > 0 {
		c.active--
		s.counted = true
	}
	heap.Push(&c.sleepers, s)
	c.advanceLocked()
	c.mu.Unlock()

	select {
	case <-s.ch:
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		if !s.fired {
			heap.Remove(&c.sleepers, s.index)
			s.fired = true
			if s.counted {
				c.active++ // the caller is runnable again
			}
		}
		c.mu.Unlock()
		return ctx.Err()
	}
}

// advanceLocked advances virtual time while the system is quiescent: no
// holds outstanding, the idle callback (if any) has nothing left to
// schedule, and at least one sleeper is due. All sleepers sharing the
// earliest deadline wake together — they complete at the same virtual
// instant — and each counted sleeper gets its hold back before its channel
// closes, so the hold count can never read zero while woken work is
// pending.
func (c *SimClock) advanceLocked() {
	for c.active == 0 {
		// The idle callback is consulted even with no sleeper due: a
		// pending batch with no round trip in flight still needs its
		// quiescence flush, or the simulation would stall at time zero.
		if c.idle != nil && c.idle() {
			c.active++ // the hold granted to the work idle() scheduled
			return
		}
		if c.sleepers.Len() == 0 {
			return
		}
		c.now = c.sleepers.peek().deadline
		for c.sleepers.Len() > 0 && c.sleepers.peek().deadline == c.now {
			s := heap.Pop(&c.sleepers).(*sleeper)
			s.fired = true
			if s.counted {
				c.active++
			}
			close(s.ch)
		}
		// Uncounted sleepers (sequential callers) restore no hold; if more
		// uncounted sleepers remain the loop would wake them too, which is
		// why one clock drives at most one crawl.
	}
}

// SimLatency wraps a Server so that every round trip — one Answer, or one
// whole AnswerBatch — costs a fixed delay of *virtual* time on the given
// SimClock, the deterministic counterpart of the Latency decorator's real
// sleep. Like Latency, a batch pays the delay once; a ctx cancelled during
// the virtual wait aborts the round trip before it is served, so nothing
// is charged. Responses are untouched: simulated latency can never change
// the paper's query count, only the (virtual) wall clock.
type SimLatency struct {
	inner Server
	delay time.Duration
	clock *SimClock

	mu    sync.Mutex
	trips int
}

// NewSimLatency wraps srv with a per-round-trip virtual delay on clock.
func NewSimLatency(srv Server, delay time.Duration, clock *SimClock) *SimLatency {
	return &SimLatency{inner: srv, delay: delay, clock: clock}
}

// Clock returns the virtual clock the delays accrue on.
func (l *SimLatency) Clock() *SimClock { return l.clock }

// Trips returns how many round trips have been served (and paid the
// simulated delay) so far.
func (l *SimLatency) Trips() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.trips
}

func (l *SimLatency) noteTrip() {
	l.mu.Lock()
	l.trips++
	l.mu.Unlock()
}

// Answer implements Server after one simulated round trip.
func (l *SimLatency) Answer(ctx context.Context, q dataspace.Query) (Result, error) {
	if err := l.clock.Sleep(ctx, l.delay); err != nil {
		return Result{}, err
	}
	l.noteTrip()
	return l.inner.Answer(ctx, q)
}

// AnswerBatch implements Server: one simulated round trip for the whole
// batch, exactly as Latency charges one real delay.
func (l *SimLatency) AnswerBatch(ctx context.Context, qs []dataspace.Query) ([]Result, error) {
	if err := l.clock.Sleep(ctx, l.delay); err != nil {
		return nil, err
	}
	l.noteTrip()
	return l.inner.AnswerBatch(ctx, qs)
}

// K implements Server.
func (l *SimLatency) K() int { return l.inner.K() }

// Schema implements Server.
func (l *SimLatency) Schema() *dataspace.Schema { return l.inner.Schema() }
