package progress

import (
	"math"
	"testing"

	"hidb/internal/core"
)

func linearCurve(n int) []core.CurvePoint {
	out := make([]core.CurvePoint, n)
	for i := range out {
		out[i] = core.CurvePoint{Queries: i + 1, Tuples: (i + 1) * 10}
	}
	return out
}

func TestNormalize(t *testing.T) {
	c := Normalize(linearCurve(10))
	if len(c) != 10 {
		t.Fatalf("len = %d", len(c))
	}
	last := c[len(c)-1]
	if last.QueryFrac != 1 || last.TupleFrac != 1 {
		t.Fatalf("final point %+v, want (1,1)", last)
	}
	if c[4].QueryFrac != 0.5 || c[4].TupleFrac != 0.5 {
		t.Fatalf("midpoint %+v, want (0.5,0.5)", c[4])
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	if Normalize(nil) != nil {
		t.Error("nil raw curve should normalize to nil")
	}
	if Normalize([]core.CurvePoint{{Queries: 0, Tuples: 0}}) != nil {
		t.Error("zero totals should normalize to nil")
	}
}

func TestAt(t *testing.T) {
	c := Normalize(linearCurve(10))
	if got := c.At(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("At(0.5) = %v", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(1); got != 1 {
		t.Errorf("At(1) = %v, want 1", got)
	}
	var empty Curve
	if empty.At(0.5) != 0 {
		t.Error("empty curve At != 0")
	}
}

func TestDeciles(t *testing.T) {
	c := Normalize(linearCurve(100))
	d := c.Deciles()
	for i, v := range d {
		want := float64(i+1) / 10
		if math.Abs(v-want) > 0.02 {
			t.Errorf("decile %d = %v, want ~%v", i+1, v, want)
		}
	}
}

func TestMaxDeviationLinear(t *testing.T) {
	c := Normalize(linearCurve(50))
	if dev := c.MaxDeviation(); dev > 0.03 {
		t.Errorf("linear curve deviation %v", dev)
	}
}

func TestMaxDeviationBackLoaded(t *testing.T) {
	// Everything arrives in the last query: deviation near 1.
	raw := make([]core.CurvePoint, 100)
	for i := range raw {
		raw[i] = core.CurvePoint{Queries: i + 1, Tuples: 0}
	}
	raw[99].Tuples = 1000
	c := Normalize(raw)
	if dev := c.MaxDeviation(); dev < 0.9 {
		t.Errorf("back-loaded curve deviation %v, want ~1", dev)
	}
	if area := c.AreaDeviation(); area < 0.4 {
		t.Errorf("back-loaded area deviation %v, want ~0.5", area)
	}
}

func TestAreaDeviationLinear(t *testing.T) {
	c := Normalize(linearCurve(50))
	if area := c.AreaDeviation(); area > 0.02 {
		t.Errorf("linear curve area deviation %v", area)
	}
	var tiny Curve
	if tiny.AreaDeviation() != 0 {
		t.Error("degenerate curve area != 0")
	}
}

func TestString(t *testing.T) {
	c := Normalize(linearCurve(10))
	s := c.String()
	if s == "" || s[0] != '[' {
		t.Errorf("String = %q", s)
	}
}
