// Package progress analyzes the progressiveness of a crawl: how steadily an
// algorithm churns out new tuples as it spends queries. The paper's Figure
// 13 plots the percentage of tuples output against the percentage of
// queries issued and observes near-linear progress for the hybrid
// algorithm; this package computes that curve and quantifies its deviation
// from the ideal diagonal.
package progress

import (
	"fmt"
	"math"

	"hidb/internal/core"
)

// Point is one sample of a normalized progressiveness curve.
type Point struct {
	// QueryFrac is the fraction of all eventually-issued queries, in [0,1].
	QueryFrac float64
	// TupleFrac is the fraction of all eventually-output tuples, in [0,1].
	TupleFrac float64
}

// Curve is a normalized progressiveness curve, monotone in both coordinates.
type Curve []Point

// Normalize converts a raw per-query curve (absolute counts) into fractions
// of the final totals. An empty or single-point raw curve yields nil.
func Normalize(raw []core.CurvePoint) Curve {
	if len(raw) == 0 {
		return nil
	}
	last := raw[len(raw)-1]
	if last.Queries == 0 || last.Tuples == 0 {
		return nil
	}
	out := make(Curve, len(raw))
	for i, p := range raw {
		out[i] = Point{
			QueryFrac: float64(p.Queries) / float64(last.Queries),
			TupleFrac: float64(p.Tuples) / float64(last.Tuples),
		}
	}
	return out
}

// At returns the tuple fraction achieved once frac of the queries have been
// issued, by stepwise interpolation of the curve.
func (c Curve) At(frac float64) float64 {
	if len(c) == 0 {
		return 0
	}
	best := 0.0
	for _, p := range c {
		if p.QueryFrac <= frac {
			best = p.TupleFrac
		} else {
			break
		}
	}
	return best
}

// Deciles samples the curve at 10%, 20%, …, 100% of the queries — the
// series Figure 13 plots.
func (c Curve) Deciles() [10]float64 {
	var out [10]float64
	for i := 1; i <= 10; i++ {
		out[i-1] = c.At(float64(i) / 10)
	}
	return out
}

// MaxDeviation returns the largest vertical distance between the curve and
// the ideal diagonal y = x. A perfectly progressive crawl has deviation 0;
// an algorithm that outputs everything at the end approaches 1.
func (c Curve) MaxDeviation() float64 {
	max := 0.0
	for _, p := range c {
		d := math.Abs(p.TupleFrac - p.QueryFrac)
		if d > max {
			max = d
		}
	}
	return max
}

// AreaDeviation returns the mean absolute deviation from the diagonal,
// integrated over the query axis (a curve-level L1 distance in [0,1]).
func (c Curve) AreaDeviation() float64 {
	if len(c) < 2 {
		return 0
	}
	area := 0.0
	for i := 1; i < len(c); i++ {
		dx := c[i].QueryFrac - c[i-1].QueryFrac
		mid := (c[i].TupleFrac + c[i-1].TupleFrac) / 2
		midX := (c[i].QueryFrac + c[i-1].QueryFrac) / 2
		area += math.Abs(mid-midX) * dx
	}
	return area
}

// String renders the deciles compactly for logs.
func (c Curve) String() string {
	d := c.Deciles()
	s := "["
	for i, v := range d {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.0f%%", v*100)
	}
	return s + "]"
}
