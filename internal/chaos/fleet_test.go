package chaos

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"hidb/internal/datagen"
	"hidb/internal/hiddendb"
	"hidb/internal/httpclient"
	"hidb/internal/httpserver"
	"hidb/internal/session"
)

// TestChaosFleet is the fleet-mode resilience pass: a shared-cache server
// (SharedFree policy) with one leader token and two followers crawling
// concurrently. The leader's client crashes mid-crawl — its /crawl stream
// is severed by a scripted body truncation — and a fresh client reconnects
// with the same token, replaying the crash-safe journal and finishing the
// crawl. The followers ride through a hostile transport (seeded drops and
// 503s) on retrying clients the whole time. The server itself stays alive:
// the shared tier is in-memory fleet state, and the point of the pass is
// that client-side failure never perturbs fleet accounting.
//
// However the crash and the faults interleave with the pace-car tier, three
// things must hold: every token's stitched crawl delivers the exact dataset
// bag, the hidden store is charged exactly the fault-free solo reference
// count (the tier dedups across tokens, the journal dedups across the
// leader's two lives), and both the crash and the transport faults
// demonstrably fired.
func TestChaosFleet(t *testing.T) {
	const k = 10
	const algo = "hybrid"
	spec := datagen.RandomSpec{N: 60, CatDomains: []int{4}, NumRanges: [][2]int64{{0, 500}}, DupRate: 0.05}
	ds, err := datagen.Random(spec, 17)
	if err != nil {
		t.Fatal(err)
	}

	// Fault-free solo reference on an identical fresh store.
	refLocal, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, 42)
	if err != nil {
		t.Fatal(err)
	}
	refCounting := hiddendb.NewCounting(refLocal)
	refTS := httptest.NewServer(httpserver.New(refCounting, httpserver.WithSessions(session.Config{})))
	refClient, err := httpclient.DialToken(context.Background(), refTS.URL, "solo", nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refClient.Crawl(context.Background(), algo, 0, nil)
	refTS.Close()
	if err != nil {
		t.Fatal(err)
	}

	// The fleet server: same data, same store seed, shared tier on, crash-
	// safe journals on. It stays up for the whole test.
	local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, 42)
	if err != nil {
		t.Fatal(err)
	}
	counting := hiddendb.NewCounting(local)
	h := httpserver.New(counting, httpserver.WithSessions(session.Config{
		SharedCache: hiddendb.SharedFree,
		JournalDir:  t.TempDir(),
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	const followers = 2
	var wg sync.WaitGroup
	errs := make([]error, 1+followers)
	tr := New(nil)
	tr.Seed(33, 0.15)

	// Leader: its first crawl connection is severed mid-stream — the client
	// process "crashes" — and a fresh client then attaches to the same token
	// and finishes. The first life's journal replays on resume, so the
	// second life re-earns the early answers for free and only pays for
	// queries no one has led yet.
	trLeader := New(nil)
	trLeader.Script("/crawl",
		Fault{Kind: TruncateBody, Byte: 400},
		Fault{Kind: Pass},
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		leader, err := httpclient.DialToken(context.Background(), ts.URL, "leader",
			&http.Client{Transport: trLeader})
		if err != nil {
			errs[0] = err
			return
		}
		if _, err := leader.Crawl(context.Background(), algo, 0, nil); err == nil {
			errs[0] = fmt.Errorf("leader crawl survived its own mid-stream crash")
			return
		}

		reborn, err := httpclient.DialToken(context.Background(), ts.URL, "leader", nil)
		if err != nil {
			errs[0] = err
			return
		}
		res, err := reborn.Crawl(context.Background(), algo, 0, nil)
		if err != nil {
			errs[0] = fmt.Errorf("resumed leader crawl: %w", err)
			return
		}
		if !res.Tuples.EqualMultiset(ref.Tuples) {
			errs[0] = fmt.Errorf("resumed leader crawl has %d tuples, reference %d", len(res.Tuples), len(ref.Tuples))
		}
	}()

	// Followers: hostile transport, retrying clients, full crawls.
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clock := hiddendb.NewSimClock()
			c, err := httpclient.DialRetry(context.Background(), ts.URL,
				fmt.Sprintf("follower-%d", i), &http.Client{Transport: tr},
				httpclient.RetryPolicy{MaxAttempts: 10, Clock: clock})
			if err != nil {
				errs[1+i] = err
				return
			}
			res, err := c.Crawl(context.Background(), algo, 0, nil)
			if err != nil {
				errs[1+i] = fmt.Errorf("follower %d crawl: %w (faults %v)", i, err, tr.Counts())
				return
			}
			if !res.Tuples.EqualMultiset(ref.Tuples) {
				errs[1+i] = fmt.Errorf("follower %d crawl has %d tuples, reference %d", i, len(res.Tuples), len(ref.Tuples))
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	// The whole fleet — leader crash, journal resume, hostile followers —
	// paid the store exactly one fault-free solo crawl.
	if counting.Queries() != ref.Queries {
		t.Errorf("hidden store charged %d queries, fault-free solo reference %d (faults %v)",
			counting.Queries(), ref.Queries, tr.Counts())
	}
	sc := h.Sessions().SharedCache()
	if sc == nil {
		t.Fatal("fleet server has no shared tier")
	}
	if sc.Hits()+sc.Waits() == 0 {
		t.Error("shared tier answered nothing; the fleet pass did not exercise it")
	}
	if sc.Leads() != ref.Queries {
		t.Errorf("shared tier led %d queries, want the reference count %d", sc.Leads(), ref.Queries)
	}
	if trLeader.Faults() < 1 {
		t.Errorf("the leader's mid-stream crash never fired")
	}
	if tr.Faults() < 1 {
		t.Errorf("no follower transport faults fired; the pass was not hostile")
	}
}
