package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// Scripted faults are consumed one per matching request, in order, and
// suppressed requests never reach the server.
func TestScriptedFaultsInOrder(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	tr := New(nil)
	tr.Script("/a",
		Fault{Kind: DropBeforeSend},
		Fault{Kind: InjectStatus, Status: 503},
		Fault{Kind: Pass},
	)
	client := &http.Client{Transport: tr}

	if _, err := client.Get(ts.URL + "/a"); err == nil {
		t.Fatal("drop-before-send returned no error")
	}
	if hits.Load() != 0 {
		t.Fatalf("dropped request reached the server (%d hits)", hits.Load())
	}

	resp, err := client.Get(ts.URL + "/a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("injected status: got %d, want 503", resp.StatusCode)
	}
	if hits.Load() != 0 {
		t.Fatalf("injected-status request reached the server (%d hits)", hits.Load())
	}

	resp, err = client.Get(ts.URL + "/a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || hits.Load() != 1 {
		t.Fatalf("pass-through request: status %d, hits %d", resp.StatusCode, hits.Load())
	}

	// Other paths are untouched by the script.
	resp, err = client.Get(ts.URL + "/b")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("unscripted path was faulted (hits %d)", hits.Load())
	}
	if tr.Faults() != 2 {
		t.Fatalf("Faults() = %d, want 2", tr.Faults())
	}
}

// DropAfterSend loses the response but the server has done the work.
func TestDropAfterSendReachesServer(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	tr := New(nil)
	tr.Script("/", Fault{Kind: DropAfterSend})
	client := &http.Client{Transport: tr}
	if _, err := client.Get(ts.URL + "/x"); err == nil {
		t.Fatal("drop-after-send returned no error")
	}
	if hits.Load() != 1 {
		t.Fatalf("server hits = %d, want 1 (the request must go through)", hits.Load())
	}
}

// TruncateBody delivers exactly the allowed prefix, then read errors.
func TestTruncateBody(t *testing.T) {
	payload := strings.Repeat("x", 100)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer ts.Close()

	tr := New(nil)
	tr.Script("/", Fault{Kind: TruncateBody, Byte: 10})
	client := &http.Client{Transport: tr}
	resp, err := client.Get(ts.URL + "/s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("truncated body read to EOF without error")
	}
	if string(got) != payload[:10] {
		t.Fatalf("read %q before the cut, want the first 10 bytes", got)
	}
}

// A seeded transport injects the same fault schedule every time; a
// different seed diverges.
func TestSeededDeterminism(t *testing.T) {
	schedule := func(seed uint64) []Kind {
		tr := New(nil)
		tr.Seed(seed, 0.5)
		var kinds []Kind
		for i := 0; i < 64; i++ {
			path := "/query"
			if i%3 == 0 {
				path = "/crawl"
			}
			tr.mu.Lock()
			kinds = append(kinds, tr.pick(path).Kind)
			tr.mu.Unlock()
		}
		return kinds
	}
	a, b, c := schedule(7), schedule(7), schedule(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
	// Streaming paths only ever suffer body truncation from the random layer.
	tr := New(nil)
	tr.Seed(11, 1)
	for i := 0; i < 32; i++ {
		tr.mu.Lock()
		f := tr.pick("/crawl")
		tr.mu.Unlock()
		if f.Kind != TruncateBody {
			t.Fatalf("random fault on /crawl is %v, want truncate-body", f.Kind)
		}
	}
}

// Timeout faults look like net timeouts so deadline-aware callers can
// classify them.
func TestTimeoutFaultIsNetTimeout(t *testing.T) {
	tr := New(nil)
	tr.Script("/", Fault{Kind: Timeout})
	client := &http.Client{Transport: tr}
	_, err := client.Get("http://127.0.0.1:0/never-sent")
	if err == nil {
		t.Fatal("timeout fault returned no error")
	}
	if !isTimeout(err) {
		t.Fatalf("timeout fault error %v does not report Timeout()", err)
	}
}

func isTimeout(err error) bool {
	for err != nil {
		if te, ok := err.(interface{ Timeout() bool }); ok && te.Timeout() {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
