package chaos

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hidb/internal/datagen"
	"hidb/internal/hiddendb"
	"hidb/internal/httpclient"
	"hidb/internal/httpserver"
	"hidb/internal/session"
)

// restartFront simulates a server crash-and-restart behind a stable
// address: at scripted crawl-connection indices it drains the current
// handler (in-flight work finishes), persists every session journal via
// Close, and swaps in a fresh handler that reloads those journals from the
// same directory — exactly what a supervised process restart does.
type restartFront struct {
	t  *testing.T
	mk func() *httpserver.Handler

	mu        sync.Mutex
	cur       *httpserver.Handler
	crawls    int
	restartAt map[int]bool
	restarts  int
}

func (f *restartFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	if r.URL.Path == "/crawl" {
		if f.restartAt[f.crawls] {
			f.restart()
		}
		f.crawls++
	}
	h := f.cur
	f.mu.Unlock()
	h.ServeHTTP(w, r)
}

// restart is called with f.mu held.
func (f *restartFront) restart() {
	old := f.cur
	old.Drain()
	deadline := time.Now().Add(10 * time.Second)
	for old.InFlight() > 0 {
		if time.Now().After(deadline) {
			f.t.Error("restart: drain timed out with requests in flight")
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := old.Sessions().Close(); err != nil {
		f.t.Errorf("restart: persisting journals: %v", err)
	}
	f.cur = f.mk()
	f.restarts++
}

// TestChaosSoak is the end-to-end resilience soak: every crawling
// algorithm extracts its database through a hostile network (seeded random
// drops, fabricated 503s, timeouts, and two scripted mid-stream body
// truncations) while the server crashes and restarts twice, reloading its
// crash-safe session journals. However hostile the run, three things must
// hold: the stitched crawl delivers the exact dataset bag (no duplicate,
// no lost tuples), the hidden store is charged exactly the fault-free
// sequential reference count (reconnects and restarts replay journaled
// answers for free), and the faults demonstrably fired.
func TestChaosSoak(t *testing.T) {
	numeric := datagen.RandomSpec{N: 60, NumRanges: [][2]int64{{0, 2000}, {0, 300}}, DupRate: 0.05}
	categorical := datagen.RandomSpec{N: 60, CatDomains: []int{6, 7}, DupRate: 0.05}
	mixed := datagen.RandomSpec{N: 60, CatDomains: []int{4}, NumRanges: [][2]int64{{0, 500}}, DupRate: 0.05}

	cases := []struct {
		algo string
		spec datagen.RandomSpec
		seed uint64
	}{
		{"binary-shrink", numeric, 101},
		{"rank-shrink", numeric, 102},
		{"dfs", categorical, 103},
		{"slice-cover", categorical, 104},
		{"lazy-slice-cover", categorical, 105},
		{"hybrid", mixed, 106},
	}
	const k = 10

	for _, tc := range cases {
		t.Run(tc.algo, func(t *testing.T) {
			ds, err := datagen.Random(tc.spec, 17)
			if err != nil {
				t.Fatal(err)
			}

			// Fault-free sequential reference.
			refLocal, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, 42)
			if err != nil {
				t.Fatal(err)
			}
			refShared := hiddendb.NewCounting(refLocal)
			refTS := httptest.NewServer(httpserver.New(refShared, httpserver.WithSessions(session.Config{})))
			refClient, err := httpclient.DialToken(context.Background(), refTS.URL, "soak", nil)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := refClient.Crawl(context.Background(), tc.algo, 0, nil)
			refTS.Close()
			if err != nil {
				t.Fatal(err)
			}
			if refShared.Queries() != ref.Queries {
				t.Fatalf("reference disagrees with the store: client paid %d, store served %d", ref.Queries, refShared.Queries())
			}

			// Chaos run: same data, same store seed, hostile everything.
			dir := t.TempDir()
			local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, 42)
			if err != nil {
				t.Fatal(err)
			}
			shared := hiddendb.NewCounting(local)
			front := &restartFront{
				t: t,
				mk: func() *httpserver.Handler {
					return httpserver.New(shared,
						httpserver.WithSessions(session.Config{JournalDir: dir}),
						httpserver.WithShedding(8))
				},
				restartAt: map[int]bool{1: true, 2: true},
			}
			front.cur = front.mk()
			ts := httptest.NewServer(front)
			defer ts.Close()

			tr := New(nil)
			// Two guaranteed mid-stream severs force connections 1 and 2 —
			// the ones the front crashes the server on — and the third
			// connection is left alone so every run terminates.
			tr.Script("/crawl",
				Fault{Kind: TruncateBody, Byte: 400},
				Fault{Kind: TruncateBody, Byte: 700},
				Fault{Kind: Pass},
			)
			tr.Seed(tc.seed, 0.15)

			clock := hiddendb.NewSimClock()
			c, err := httpclient.DialRetry(context.Background(), ts.URL, "soak", &http.Client{Transport: tr}, httpclient.RetryPolicy{
				MaxAttempts: 10,
				Clock:       clock,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Crawl(context.Background(), tc.algo, 0, nil)
			if err != nil {
				t.Fatalf("chaos crawl failed: %v (faults %v)", err, tr.Counts())
			}

			if !res.Tuples.EqualMultiset(ref.Tuples) {
				t.Errorf("stitched crawl has %d tuples, reference %d (duplicate or lost tuples)", len(res.Tuples), len(ref.Tuples))
			}
			if shared.Queries() != ref.Queries {
				t.Errorf("hidden store charged %d queries, fault-free reference %d (faults %v, restarts %d)",
					shared.Queries(), ref.Queries, tr.Counts(), front.restarts)
			}
			if res.Queries > ref.Queries {
				t.Errorf("client-visible paid count %d exceeds the reference %d", res.Queries, ref.Queries)
			}
			if front.restarts != 2 {
				t.Errorf("server restarted %d times, want 2", front.restarts)
			}
			if tr.Faults() < 2 {
				t.Errorf("only %d faults fired; the soak was not hostile", tr.Faults())
			}
		})
	}
}
