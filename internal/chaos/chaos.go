// Package chaos provides a fault-injecting http.RoundTripper for testing
// the client stack's resilience guarantees end to end: requests dropped
// before they reach the server, responses lost after the server has done
// the work, streaming bodies severed mid-tuple, fabricated 5xx answers
// from a flaky intermediary, and client-observed timeouts.
//
// Faults come from two sources that compose:
//
//   - Scripted schedules, attached per URL path with Script: each matching
//     request consumes the next fault in its list (an exhausted list means
//     no fault). Scripts make a test's hostile sequence exact and
//     repeatable — "sever the first crawl stream at byte 600, let the
//     retry through".
//   - Seeded randomness, enabled with Seed: requests with no scripted
//     fault draw from a simrand.RNG, so a soak can hammer the stack with a
//     storm that is hostile yet perfectly reproducible from its seed.
//
// The transport never invents work the server did not do — an injected
// fault either suppresses a request entirely (the server sees nothing) or
// damages a response the server has already produced. That makes it the
// right instrument for the package's sacred invariant: however hostile the
// schedule, a retrying client must pay exactly the fault-free query count,
// because every repeated query is replayed from the server's session
// journal for free.
package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"hidb/internal/simrand"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// Pass lets the request through untouched.
	Pass Kind = iota
	// DropBeforeSend fails the request without sending it: the server
	// never sees it, as with a refused or unreachable connection.
	DropBeforeSend
	// DropAfterSend sends the request and discards the response: the
	// server has done (and charged for) the work, but the client learns
	// nothing — a response lost in transit.
	DropAfterSend
	// TruncateBody delivers the response headers, then severs the body
	// after Byte bytes — a connection reset mid-stream.
	TruncateBody
	// InjectStatus suppresses the request and fabricates a bodyless
	// response with Status (default 503), as a struggling intermediary
	// would.
	InjectStatus
	// Timeout fails the request with a timeout-flavoured transport error
	// without sending it.
	Timeout
)

func (k Kind) String() string {
	switch k {
	case Pass:
		return "pass"
	case DropBeforeSend:
		return "drop-before-send"
	case DropAfterSend:
		return "drop-after-send"
	case TruncateBody:
		return "truncate-body"
	case InjectStatus:
		return "inject-status"
	case Timeout:
		return "timeout"
	default:
		return fmt.Sprintf("chaos.Kind(%d)", int(k))
	}
}

// Fault is one injected failure.
type Fault struct {
	Kind   Kind
	Byte   int // TruncateBody: response bytes allowed through
	Status int // InjectStatus: HTTP status to fabricate; 0 means 503
}

// faultError is the transport-level error surfaced for suppressed or
// damaged exchanges. It implements net.Error so timeout faults look like
// real deadline expiries to the caller.
type faultError struct {
	kind Kind
	op   string
}

func (e *faultError) Error() string   { return "chaos: " + e.kind.String() + " on " + e.op }
func (e *faultError) Timeout() bool   { return e.kind == Timeout }
func (e *faultError) Temporary() bool { return true }

// Transport injects faults into requests flowing through an inner
// http.RoundTripper. The zero value is not usable; build one with New.
// Safe for concurrent use.
type Transport struct {
	inner http.RoundTripper

	mu      sync.Mutex
	scripts map[string][]Fault // path prefix → pending scripted faults
	rng     *simrand.RNG       // nil → no random faults
	prob    float64
	counts  map[Kind]int
}

// New wraps inner (http.DefaultTransport when nil) with a fault injector
// that, until configured via Script or Seed, passes everything through.
func New(inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{
		inner:   inner,
		scripts: make(map[string][]Fault),
		counts:  make(map[Kind]int),
	}
}

// Script queues faults for requests whose URL path starts with prefix.
// Each matching request consumes one entry in order; when the list runs
// out, matching requests fall back to the random layer (or pass through).
func (t *Transport) Script(prefix string, faults ...Fault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.scripts[prefix] = append(t.scripts[prefix], faults...)
}

// Seed arms the random fault layer: every request without a scripted fault
// suffers one with probability prob, drawn deterministically from the
// seed. Streaming paths (/crawl) get body truncation at a random offset;
// other paths get drops, fabricated 5xx answers and timeouts — never body
// truncation, which a unary JSON client cannot distinguish from a server
// bug.
func (t *Transport) Seed(seed uint64, prob float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rng = simrand.New(seed)
	t.prob = prob
}

// Faults returns how many faults have been injected so far.
func (t *Transport) Faults() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := 0
	for _, n := range t.counts {
		total += n
	}
	return total
}

// Counts returns per-kind injection counts (Pass is never counted).
func (t *Transport) Counts() map[Kind]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[Kind]int, len(t.counts))
	for k, n := range t.counts {
		out[k] = n
	}
	return out
}

// pick decides the fault for one request. Called with t.mu held.
func (t *Transport) pick(path string) Fault {
	for prefix, pending := range t.scripts {
		if strings.HasPrefix(path, prefix) && len(pending) > 0 {
			f := pending[0]
			t.scripts[prefix] = pending[1:]
			return f
		}
	}
	if t.rng == nil || !t.rng.Bool(t.prob) {
		return Fault{Kind: Pass}
	}
	if strings.HasPrefix(path, "/crawl") {
		// Streaming endpoint: sever the body somewhere in the first ~4KB.
		return Fault{Kind: TruncateBody, Byte: t.rng.Intn(4096)}
	}
	switch t.rng.Intn(4) {
	case 0:
		return Fault{Kind: DropBeforeSend}
	case 1:
		return Fault{Kind: DropAfterSend}
	case 2:
		return Fault{Kind: InjectStatus, Status: 503}
	default:
		return Fault{Kind: Timeout}
	}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	f := t.pick(req.URL.Path)
	if f.Kind != Pass {
		t.counts[f.Kind]++
	}
	t.mu.Unlock()

	op := req.Method + " " + req.URL.Path
	switch f.Kind {
	case DropBeforeSend, Timeout:
		// Per the RoundTripper contract the body must be closed even when
		// the request is never sent.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &faultError{kind: f.Kind, op: op}
	case InjectStatus:
		if req.Body != nil {
			req.Body.Close()
		}
		status := f.Status
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		return &http.Response{
			Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
			StatusCode: status,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"X-Chaos": []string{"injected"}},
			Body:       io.NopCloser(strings.NewReader("")),
			Request:    req,
		}, nil
	}

	resp, err := t.inner.RoundTrip(req)
	if err != nil || f.Kind == Pass {
		return resp, err
	}
	switch f.Kind {
	case DropAfterSend:
		// The server has answered; lose the response on the way back.
		resp.Body.Close()
		return nil, &faultError{kind: f.Kind, op: op}
	case TruncateBody:
		resp.Body = &truncatedBody{rc: resp.Body, remaining: f.Byte, op: op}
		return resp, nil
	default:
		return resp, nil
	}
}

// truncatedBody delivers at most remaining bytes, then fails every read
// like a reset connection would.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int
	op        string
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, &faultError{kind: TruncateBody, op: b.op}
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= n
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }
