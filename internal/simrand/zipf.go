package simrand

import (
	"math"
	"sort"
)

// Zipf samples integers in [1, n] with P(v) ∝ 1/v^s. Real hidden databases
// (car makes, NSF program managers, PI organizations) are heavily skewed, so
// the synthetic stand-ins for the paper's datasets draw categorical values
// from Zipf marginals.
//
// The implementation precomputes the CDF and samples by binary search: O(n)
// memory, O(log n) per draw, exact (no rejection), deterministic given the
// RNG. Domain sizes in this repo top out around 29042 (the NSF PI-name
// attribute), so the precomputed table is cheap.
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a Zipf sampler over [1, n] with exponent s >= 0.
// s = 0 degenerates to the uniform distribution.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n < 1 {
		panic("simrand: NewZipf with n < 1")
	}
	if s < 0 {
		panic("simrand: NewZipf with s < 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for v := 1; v <= n; v++ {
		sum += math.Pow(float64(v), -s)
		cdf[v-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1.0
	return &Zipf{rng: rng, cdf: cdf}
}

// N returns the domain size.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw samples one value in [1, N()].
func (z *Zipf) Draw() int64 {
	u := z.rng.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return int64(i + 1)
}

// ShuffledZipf is a Zipf sampler whose ranks are randomly mapped onto domain
// values, so the most frequent value is not always 1. This mirrors real
// categorical data where the popular value is an arbitrary domain member.
type ShuffledZipf struct {
	z    *Zipf
	map_ []int64
}

// NewShuffledZipf builds a Zipf sampler over [1, n] with exponent s and a
// random rank-to-value permutation.
func NewShuffledZipf(rng *RNG, n int, s float64) *ShuffledZipf {
	perm := rng.Perm(n)
	m := make([]int64, n)
	for rank, val := range perm {
		m[rank] = int64(val + 1)
	}
	return &ShuffledZipf{z: NewZipf(rng, n, s), map_: m}
}

// Draw samples one value in [1, N()].
func (s *ShuffledZipf) Draw() int64 {
	return s.map_[s.z.Draw()-1]
}

// N returns the domain size.
func (s *ShuffledZipf) N() int { return s.z.N() }
