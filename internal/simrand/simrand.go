// Package simrand provides a small deterministic random toolkit for the
// dataset generators and the hidden-database simulator: a SplitMix64 core
// generator, uniform helpers, permutations, and a Zipf sampler.
//
// Determinism matters here: the paper's experiments assign every tuple a
// random priority so that an overflowing query always returns the same k
// tuples. A seeded generator makes whole experiment runs reproducible
// bit-for-bit, which the test suite relies on.
package simrand

import "math"

// RNG is a SplitMix64 pseudo-random generator. It is tiny, fast, passes
// BigCrush, and — unlike math/rand's global state — is trivially
// reproducible and safe to embed per-dataset.
type RNG struct {
	state uint64
}

// New returns a generator seeded with the given value. Distinct seeds yield
// independent-looking streams.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int64n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int64n(n int64) int64 {
	if n <= 0 {
		panic("simrand: Int64n with n <= 0")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method (unbiased).
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("simrand: Uint64n with n == 0")
	}
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 computes the 128-bit product of a and b.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// IntRange returns a uniform int64 in [lo, hi] inclusive.
func (r *RNG) IntRange(lo, hi int64) int64 {
	if lo > hi {
		panic("simrand: IntRange with lo > hi")
	}
	span := uint64(hi - lo + 1)
	if span == 0 { // full int64 range
		return int64(r.Uint64())
	}
	return lo + int64(r.Uint64n(span))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using the provided swap
// function (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, via the Box–Muller transform.
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Geometric returns a sample from the geometric distribution with success
// probability p: the number of failures before the first success (>= 0).
func (r *RNG) Geometric(p float64) int64 {
	if p <= 0 || p > 1 {
		panic("simrand: Geometric needs p in (0,1]")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int64(math.Floor(math.Log(u) / math.Log(1-p)))
}
