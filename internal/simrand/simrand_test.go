package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/1000 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(1)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nProperty(t *testing.T) {
	r := New(7)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntRangeInclusive(t *testing.T) {
	r := New(3)
	lo, hi := int64(-5), int64(5)
	seen := make(map[int64]bool)
	for i := 0; i < 2000; i++ {
		v := r.IntRange(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 11 {
		t.Errorf("IntRange hit %d of 11 values in 2000 draws", len(seen))
	}
	if r.IntRange(7, 7) != 7 {
		t.Error("degenerate range wrong")
	}
}

func TestUniformityRough(t *testing.T) {
	r := New(99)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for b, c := range counts {
		if c < n/buckets*8/10 || c > n/buckets*12/10 {
			t.Errorf("bucket %d has %d draws, want ~%d", b, c, n/buckets)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Error("Shuffle lost elements")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(19)
	p := 0.25
	const n = 50000
	sum := int64(0)
	for i := 0; i < n; i++ {
		v := r.Geometric(p)
		if v < 0 {
			t.Fatalf("Geometric returned negative %d", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	want := (1 - p) / p // = 3
	if math.Abs(mean-want) > 0.15 {
		t.Errorf("geometric mean = %v, want ~%v", mean, want)
	}
	if New(1).Geometric(1) != 0 {
		t.Error("Geometric(1) must be 0")
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(23)
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Errorf("Bool(0.3) hit rate %v", frac)
	}
}
