package simrand

import (
	"math"
	"testing"
)

func TestZipfRangeAndSkew(t *testing.T) {
	rng := New(7)
	z := NewZipf(rng, 100, 1.0)
	counts := make([]int, 101)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Draw()
		if v < 1 || v > 100 {
			t.Fatalf("Zipf draw %d out of [1,100]", v)
		}
		counts[v]++
	}
	// Rank 1 must dominate rank 10 roughly 10:1 under s=1.
	ratio := float64(counts[1]) / float64(counts[10])
	if ratio < 6 || ratio > 16 {
		t.Errorf("count(1)/count(10) = %v, want ~10", ratio)
	}
	// Frequencies must be (statistically) non-increasing near the head.
	if counts[1] < counts[2] || counts[2] < counts[5] {
		t.Error("Zipf head frequencies not decreasing")
	}
}

func TestZipfUniformDegeneration(t *testing.T) {
	rng := New(9)
	z := NewZipf(rng, 10, 0)
	counts := make([]int, 11)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	for v := 1; v <= 10; v++ {
		if math.Abs(float64(counts[v])-n/10) > n/10*0.15 {
			t.Errorf("s=0 value %d has %d draws, want ~%d", v, counts[v], n/10)
		}
	}
}

func TestZipfSingleValue(t *testing.T) {
	z := NewZipf(New(1), 1, 2.0)
	for i := 0; i < 100; i++ {
		if z.Draw() != 1 {
			t.Fatal("Zipf over domain of 1 returned a different value")
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(New(1), 0, 1) },
		func() { NewZipf(New(1), 5, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Zipf parameters did not panic")
				}
			}()
			f()
		}()
	}
}

func TestShuffledZipfRangeAndMass(t *testing.T) {
	rng := New(21)
	s := NewShuffledZipf(rng, 50, 1.2)
	if s.N() != 50 {
		t.Fatalf("N = %d, want 50", s.N())
	}
	counts := make(map[int64]int)
	const n = 50000
	for i := 0; i < n; i++ {
		v := s.Draw()
		if v < 1 || v > 50 {
			t.Fatalf("ShuffledZipf draw %d out of [1,50]", v)
		}
		counts[v]++
	}
	// The heaviest value holds the Zipf head mass, wherever it is mapped.
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	if float64(best)/n < 0.15 {
		t.Errorf("head mass %v too small for s=1.2", float64(best)/n)
	}
}

func TestZipfDeterministicGivenSeed(t *testing.T) {
	a := NewZipf(New(3), 20, 0.8)
	b := NewZipf(New(3), 20, 0.8)
	for i := 0; i < 100; i++ {
		if a.Draw() != b.Draw() {
			t.Fatal("Zipf draws diverged under equal seeds")
		}
	}
}
