// Package memo is the reusable answer-memo core of the server stack: a
// sharded, concurrency-safe map from a compact binary key to an immutable
// value, with an optional bounded-memory LRU, plus a per-key single-flight
// (Flight) whose leadership survives a failed leader.
//
// It was extracted from hiddendb.Caching so that one implementation backs
// both the per-session memo tables (unbounded, private to one token) and
// the fleet-wide shared answer cache (bounded, one per served store, read
// by every session). The cache stores values, never computes them; the
// policy questions — who pays for a miss, what a hit costs — live in the
// callers.
package memo

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// numShards is the number of lock-scoped segments of a Cache. A power of
// two so the shard pick is a mask, sized to make lock collisions rare at
// the parallelism the server stack targets.
const numShards = 16

// Cache is a sharded map from binary key to V. Lookups by []byte key are
// zero-copy (no allocation on the hit path); a stored key pays one string
// allocation. With a positive byte bound the cache becomes an LRU: each
// shard owns maxBytes/numShards and evicts its least recently used entries
// beyond it. The zero value is not usable; call New.
type Cache[V any] struct {
	shards [numShards]cacheShard[V]
	// sizeOf estimates one entry's resident bytes; nil (unbounded caches)
	// skips size accounting entirely.
	sizeOf    func(key string, v V) int64
	evictions atomic.Int64
}

// cacheShard is one lock-scoped segment of the table.
type cacheShard[V any] struct {
	mu sync.Mutex
	m  map[string]*list.Element
	// lru orders the shard's entries, front = most recently used. Only
	// maintained when the cache is bounded.
	lru      *list.List
	maxBytes int64 // 0 = unbounded
	bytes    int64
}

type cacheEntry[V any] struct {
	key  string
	v    V
	size int64
}

// New builds a cache. maxBytes > 0 bounds the resident size: sizeOf
// estimates each entry's bytes (nil panics when maxBytes > 0) and least
// recently used entries are evicted beyond the bound. maxBytes == 0 is the
// unbounded memo table hiddendb.Caching uses.
func New[V any](maxBytes int64, sizeOf func(key string, v V) int64) *Cache[V] {
	if maxBytes > 0 && sizeOf == nil {
		panic("memo: a bounded cache needs a sizeOf estimator")
	}
	c := &Cache[V]{}
	if maxBytes > 0 {
		c.sizeOf = sizeOf
	}
	perShard := maxBytes / numShards
	if maxBytes > 0 && perShard < 1 {
		perShard = 1
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*list.Element)
		c.shards[i].maxBytes = perShard
		if maxBytes > 0 {
			c.shards[i].lru = list.New()
		}
	}
	return c
}

// shardFor picks the lock-scoped segment for a key (FNV-1a).
func shardFor(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h & (numShards - 1)
}

// Get returns the value stored under key. The []byte key is looked up with
// a zero-copy string conversion, so a hit allocates nothing.
func (c *Cache[V]) Get(key []byte) (V, bool) {
	sh := &c.shards[shardFor(string(key))]
	sh.mu.Lock()
	el, ok := sh.m[string(key)] // zero-copy lookup
	var v V
	if ok {
		e := el.Value.(*cacheEntry[V])
		v = e.v
		if sh.lru != nil {
			sh.lru.MoveToFront(el)
		}
	}
	sh.mu.Unlock()
	return v, ok
}

// GetString is Get for callers that already hold a string key.
func (c *Cache[V]) GetString(key string) (V, bool) {
	sh := &c.shards[shardFor(key)]
	sh.mu.Lock()
	el, ok := sh.m[key]
	var v V
	if ok {
		e := el.Value.(*cacheEntry[V])
		v = e.v
		if sh.lru != nil {
			sh.lru.MoveToFront(el)
		}
	}
	sh.mu.Unlock()
	return v, ok
}

// Set stores v under key. Storing an existing key is a no-op — memo values
// are stable by contract — so concurrent writers never flap an entry. On a
// bounded cache the shard then evicts least recently used entries beyond
// its byte budget (never the one just stored: a value a caller is about to
// rely on must survive at least its own insertion).
func (c *Cache[V]) Set(key string, v V) {
	sh := &c.shards[shardFor(key)]
	sh.mu.Lock()
	if _, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		return
	}
	e := &cacheEntry[V]{key: key, v: v}
	if sh.lru == nil {
		el := &list.Element{Value: e}
		sh.m[key] = el
		sh.mu.Unlock()
		return
	}
	e.size = c.sizeOf(key, v)
	sh.m[key] = sh.lru.PushFront(e)
	sh.bytes += e.size
	evicted := 0
	for sh.bytes > sh.maxBytes && sh.lru.Len() > 1 {
		back := sh.lru.Back()
		victim := back.Value.(*cacheEntry[V])
		sh.lru.Remove(back)
		delete(sh.m, victim.key)
		sh.bytes -= victim.size
		evicted++
	}
	sh.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(int64(evicted))
	}
}

// Len returns the number of entries currently stored.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns the estimated resident size of a bounded cache (0 for an
// unbounded one, which keeps no size accounting).
func (c *Cache[V]) Bytes() int64 {
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// Evictions returns how many entries the byte bound has evicted.
func (c *Cache[V]) Evictions() int { return int(c.evictions.Load()) }

// Via reports how Flight.Do obtained its value.
type Via int

const (
	// Led: this caller held the key's leadership and paid fetch itself.
	Led Via = iota
	// Hit: lookup found the value (possibly after waiting out a leader).
	Hit
	// Waited: a concurrent leader paid fetch and handed the value over.
	Waited
)

// call is one key's in-flight fetch. The leader deposits the value in the
// call itself before closing done, so waiters never depend on the backing
// cache still holding the entry (an LRU may have evicted it by the time
// they wake).
type call[V any] struct {
	done chan struct{}
	v    V
	ok   bool
}

// Flight single-flights fetches per key: while one caller (the leader) is
// computing a key's value, every other caller for the same key blocks on
// the in-flight entry and receives the leader's value without computing —
// or paying for — it again. A leader that fails does not poison the key:
// its waiters wake, re-check the cache, and one of them assumes leadership
// with its own fetch (and its own budget), so a cancelled or quota-starved
// leader can never orphan its followers. The zero value is not usable;
// call NewFlight.
type Flight[V any] struct {
	mu sync.Mutex
	m  map[string]*call[V]
}

// NewFlight returns an empty in-flight registry.
func NewFlight[V any]() *Flight[V] {
	return &Flight[V]{m: make(map[string]*call[V])}
}

// InFlight returns the number of keys currently being fetched.
func (f *Flight[V]) InFlight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.m)
}

// Do returns the key's value: from lookup if present, from a concurrent
// leader's in-flight fetch if one is running, else by fetching as the
// leader itself. lookup is re-consulted after every wait, so Do composes
// with any cache the leader's fetch populates. A fetch error is returned
// only to the leader that incurred it; waiters retry (and at most one of
// them becomes the next leader), which bounds the retries by the number of
// waiters — no livelock. A ctx cancelled while waiting returns ctx.Err()
// without consuming anything.
//
// At-most-one-fetch contract: a successful fetch must make its value
// visible to lookup before it returns (SharedView's fetch publishes to the
// cache, then returns). Do leans on that ordering to close the window
// between a caller's lookup miss and its registration: the final lookup
// re-check below runs under f.mu, after which a registered leader is the
// only party that can fetch the key.
func (f *Flight[V]) Do(ctx context.Context, key string, lookup func() (V, bool), fetch func() (V, error)) (V, Via, error) {
	waited := false
	for {
		if v, ok := lookup(); ok {
			if waited {
				return v, Waited, nil
			}
			return v, Hit, nil
		}
		f.mu.Lock()
		if c, ok := f.m[key]; ok {
			f.mu.Unlock()
			select {
			case <-c.done:
				if c.ok {
					return c.v, Waited, nil
				}
				// The leader failed; its failure is its own (a cancelled
				// crawl, an exhausted budget). Re-check the cache and race
				// for leadership.
				waited = true
				continue
			case <-ctx.Done():
				var zero V
				return zero, Waited, ctx.Err()
			}
		}
		// No leader in flight — but one may have landed and deregistered
		// between our lookup miss above and taking f.mu. A leader publishes
		// to the cache before deregistering, so re-checking lookup while
		// holding f.mu is authoritative: a miss here proves the key has
		// never been fetched and no fetch is running, and registering now
		// makes us the only party that can fetch it.
		if v, ok := lookup(); ok {
			f.mu.Unlock()
			if waited {
				return v, Waited, nil
			}
			return v, Hit, nil
		}
		c := &call[V]{done: make(chan struct{})}
		f.m[key] = c
		f.mu.Unlock()

		v, err := fetch()
		if err == nil {
			c.v, c.ok = v, true
		}
		f.mu.Lock()
		delete(f.m, key)
		f.mu.Unlock()
		close(c.done)
		return v, Led, err
	}
}
