package memo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheGetSet(t *testing.T) {
	c := New[int](0, nil)
	if _, ok := c.Get([]byte("a")); ok {
		t.Fatal("empty cache reports a hit")
	}
	c.Set("a", 1)
	c.Set("a", 2) // no-op: memo values are stable
	if v, ok := c.Get([]byte("a")); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	if v, ok := c.GetString("a"); !ok || v != 1 {
		t.Fatalf("GetString(a) = %d, %v; want 1, true", v, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if c.Bytes() != 0 || c.Evictions() != 0 {
		t.Fatalf("unbounded cache reports bytes=%d evictions=%d", c.Bytes(), c.Evictions())
	}
}

func TestCacheLRUEvicts(t *testing.T) {
	// All keys land in one shard (identical content hashes identically is
	// not enough — use keys that map to the same shard by construction:
	// shard choice is content-hash based, so probe until three keys share
	// a shard).
	sizeOf := func(key string, v int) int64 { return 10 }
	var keys []string
	want := shardFor("k-0")
	for i := 0; len(keys) < 4; i++ {
		k := fmt.Sprintf("k-%d", i)
		if shardFor(k) == want {
			keys = append(keys, k)
		}
	}
	c := New[int](16*25, sizeOf) // 25 bytes per shard: two 10-byte entries fit
	c.Set(keys[0], 0)
	c.Set(keys[1], 1)
	if _, ok := c.GetString(keys[0]); !ok {
		t.Fatal("both entries should fit")
	}
	// keys[0] is now most recently used; inserting keys[2] must evict
	// keys[1].
	c.Set(keys[2], 2)
	if _, ok := c.GetString(keys[1]); ok {
		t.Fatal("LRU entry survived past the byte bound")
	}
	if _, ok := c.GetString(keys[0]); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if c.Evictions() == 0 {
		t.Fatal("eviction not counted")
	}
	if c.Bytes() > 16*25 {
		t.Fatalf("resident bytes %d exceed the bound", c.Bytes())
	}
}

func TestCacheBoundedNeverEvictsFreshEntry(t *testing.T) {
	// An entry bigger than the whole shard budget still survives its own
	// insertion: the caller that stored it is about to rely on it.
	c := New[int](16, func(string, int) int64 { return 1 << 20 })
	c.Set("huge", 7)
	if v, ok := c.GetString("huge"); !ok || v != 7 {
		t.Fatal("oversized entry evicted at insertion")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := New[int](4096, func(key string, v int) int64 { return int64(len(key)) + 8 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k-%d", i%100)
				c.Set(key, i%100)
				if v, ok := c.Get([]byte(key)); ok && v != i%100 {
					t.Errorf("Get(%s) = %d, want %d", key, v, i%100)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFlightSingleFlight(t *testing.T) {
	c := New[int](0, nil)
	f := NewFlight[int]()
	var fetches atomic.Int32
	var done sync.WaitGroup
	entered := make(chan struct{})
	release := make(chan struct{})
	const workers = 16
	done.Add(workers)
	var leads, waits atomic.Int32
	for i := 0; i < workers; i++ {
		go func() {
			defer done.Done()
			v, via, err := f.Do(context.Background(), "k",
				func() (int, bool) { return c.GetString("k") },
				func() (int, error) {
					fetches.Add(1)
					close(entered)
					<-release
					c.Set("k", 42)
					return 42, nil
				})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v; want 42, nil", v, err)
			}
			switch via {
			case Led:
				leads.Add(1)
			case Waited:
				waits.Add(1)
			}
		}()
	}
	<-entered
	if f.InFlight() != 1 {
		t.Fatalf("InFlight = %d with a leader fetching, want 1", f.InFlight())
	}
	close(release)
	done.Wait()
	if got := fetches.Load(); got != 1 {
		t.Fatalf("%d fetches for one key, want exactly 1", got)
	}
	if leads.Load() != 1 {
		t.Fatalf("%d leaders, want exactly 1", leads.Load())
	}
	if f.InFlight() != 0 {
		t.Fatalf("in-flight registry not drained: %d", f.InFlight())
	}
}

// TestFlightLeaderFailureHandsOver: a failing leader returns its own error
// and its waiters retry — exactly one of them becomes the next leader and
// succeeds, so a cancelled leader can never orphan its followers.
func TestFlightLeaderFailureHandsOver(t *testing.T) {
	c := New[int](0, nil)
	f := NewFlight[int]()
	boom := errors.New("leader cancelled")
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})

	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = f.Do(context.Background(), "k",
			func() (int, bool) { return c.GetString("k") },
			func() (int, error) {
				close(leaderIn)
				<-leaderGo
				return 0, boom
			})
	}()
	<-leaderIn

	// Two followers pile onto the in-flight entry, then the leader fails.
	var followerFetches atomic.Int32
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := f.Do(context.Background(), "k",
				func() (int, bool) { return c.GetString("k") },
				func() (int, error) {
					followerFetches.Add(1)
					c.Set("k", 99)
					return 99, nil
				})
			if err != nil {
				t.Errorf("follower failed: %v", err)
			}
			results <- v
		}()
	}
	close(leaderGo)
	wg.Wait()
	if !errors.Is(leaderErr, boom) {
		t.Fatalf("leader error = %v, want %v", leaderErr, boom)
	}
	for i := 0; i < 2; i++ {
		if v := <-results; v != 99 {
			t.Fatalf("follower got %d, want 99", v)
		}
	}
	if got := followerFetches.Load(); got != 1 {
		t.Fatalf("%d follower fetches after handover, want exactly 1", got)
	}
}

func TestFlightWaiterCtxCancel(t *testing.T) {
	c := New[int](0, nil)
	f := NewFlight[int]()
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.Do(context.Background(), "k",
			func() (int, bool) { return c.GetString("k") },
			func() (int, error) {
				close(leaderIn)
				<-leaderGo
				c.Set("k", 1)
				return 1, nil
			})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := f.Do(ctx, "k",
		func() (int, bool) { return c.GetString("k") },
		func() (int, error) { t.Error("cancelled waiter must not fetch"); return 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}
	close(leaderGo)
	wg.Wait()
}

func TestFlightLookupHit(t *testing.T) {
	c := New[int](0, nil)
	f := NewFlight[int]()
	c.Set("k", 5)
	v, via, err := f.Do(context.Background(), "k",
		func() (int, bool) { return c.GetString("k") },
		func() (int, error) { t.Error("must not fetch on a lookup hit"); return 0, nil })
	if err != nil || v != 5 || via != Hit {
		t.Fatalf("Do = %d, %v, %v; want 5, Hit, nil", v, via, err)
	}
}

// TestFlightNeverDoubleFetches hammers the window between a caller's lookup
// miss and its registration: a leader that completes (publish, deregister)
// inside that window must not leave the late caller believing it is a fresh
// leader for an unfetched key. The fetch count per key has to be exactly
// one however the schedule lands — the invariant the fleet accounting
// (store-paid == distinct queries) is built on.
func TestFlightNeverDoubleFetches(t *testing.T) {
	const keys = 64
	const askers = 8
	c := New[int](0, nil)
	f := NewFlight[int]()
	var fetches atomic.Int64
	var wg sync.WaitGroup
	for a := 0; a < askers; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				key := fmt.Sprintf("k-%d", i)
				v, _, err := f.Do(context.Background(), key,
					func() (int, bool) { return c.GetString(key) },
					func() (int, error) {
						fetches.Add(1)
						c.Set(key, i)
						return i, nil
					})
				if err != nil || v != i {
					t.Errorf("Do(%s) = %d, %v; want %d, nil", key, v, err, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := fetches.Load(); got != keys {
		t.Fatalf("%d fetches for %d keys; a key was fetched twice", got, keys)
	}
}
