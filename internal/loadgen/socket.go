package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"hidb/internal/datagen"
	"hidb/internal/dataspace"
	"hidb/internal/hiddendb"
	"hidb/internal/httpserver"
	"hidb/internal/session"
	"hidb/internal/wire"
)

// RunSocket performs the load run over a real TCP socket with real
// sleeps, measuring actual latencies and throughput. With baseURL empty
// it serves the generated dataset itself on a loopback listener (the
// self-contained throughput mode); with a URL it drives an external
// hidb-server, fetching the schema from GET /schema and reading the paid
// query total from GET /stats. Real scheduling makes the Report
// non-deterministic — that is the point; the deterministic artifact
// comes from RunSim.
func RunSocket(cfg Config, baseURL string) (*Report, error) {
	cfg = cfg.withDefaults()
	var schema *dataspace.Schema
	var shutdown func()
	if baseURL == "" {
		ds, err := datagen.ByName(cfg.Dataset, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		k := cfg.K
		if m := ds.Tuples.MaxMultiplicity(); m > k {
			k = m
		}
		local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, cfg.Seed)
		if err != nil {
			return nil, err
		}
		h := httpserver.New(local,
			httpserver.WithSessions(session.Config{
				Quota:       cfg.Quota,
				MaxSessions: cfg.Sessions,
			}),
			httpserver.WithShedding(cfg.MaxInFlight))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: h}
		go hs.Serve(ln)
		baseURL = "http://" + ln.Addr().String()
		schema = ds.Schema
		shutdown = func() { hs.Close() }
	} else {
		var err error
		schema, err = fetchSchema(baseURL)
		if err != nil {
			return nil, err
		}
	}
	if shutdown != nil {
		defer shutdown()
	}

	be := &sockBackend{base: baseURL, client: &http.Client{}}
	d := newDriver(cfg, schema, be)
	for _, c := range d.clients {
		d.warmup(c)
	}
	paid0, _ := fetchQueries(baseURL)
	start := time.Now()
	var wg sync.WaitGroup
	for _, c := range d.clients {
		wg.Add(1)
		go func(c *client) {
			defer wg.Done()
			d.run(c)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	paid1, err := fetchQueries(baseURL)
	if err != nil {
		paid1 = paid0 // keep the report usable; Errors already counts transport trouble
	}
	return d.report(elapsed, paid1-paid0), nil
}

// fetchSchema learns an external server's data space from GET /schema.
func fetchSchema(baseURL string) (*dataspace.Schema, error) {
	resp, err := http.Get(baseURL + "/schema")
	if err != nil {
		return nil, fmt.Errorf("loadgen: fetch schema: %w", err)
	}
	defer resp.Body.Close()
	var msg wire.SchemaMsg
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		return nil, fmt.Errorf("loadgen: decode schema: %w", err)
	}
	schema, _, err := wire.DecodeSchema(msg)
	return schema, err
}

// fetchQueries reads the server's paid-query total from GET /stats.
func fetchQueries(baseURL string) (int, error) {
	resp, err := http.Get(baseURL + "/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var msg wire.StatsMsg
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		return 0, err
	}
	return msg.Queries, nil
}

// sockBackend serves ops over a real HTTP connection.
type sockBackend struct {
	base   string
	client *http.Client
}

func (b *sockBackend) sleep(_ *client, d time.Duration) { time.Sleep(d) }

func (b *sockBackend) do(_ *client, method, path, token string, body []byte, stopAfter int) (opResult, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, b.base+path, bytes.NewReader(body))
	if err != nil {
		return opResult{}, err
	}
	if token != "" {
		wire.SetBearer(req.Header, token)
	}
	start := time.Now()
	resp, err := b.client.Do(req)
	if err != nil {
		return opResult{}, err
	}
	defer resp.Body.Close()

	var buf bytes.Buffer
	if stopAfter > 0 {
		// Read whole lines until the hang-up threshold, then cancel the
		// request — the mid-stream disconnect of a flaky client.
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for lines := 0; lines < stopAfter && sc.Scan(); lines++ {
			buf.Write(sc.Bytes())
			buf.WriteByte('\n')
		}
		cancel()
	} else if _, err := io.Copy(&buf, resp.Body); err != nil {
		return opResult{}, err
	}
	return opResult{
		status:  resp.StatusCode,
		body:    buf.Bytes(),
		elapsed: time.Since(start),
	}, nil
}
