package loadgen

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"hidb/internal/dataspace"
	"hidb/internal/simrand"
	"hidb/internal/wire"
)

// backend abstracts how ops reach the server — in-process under a virtual
// clock (RunSim) or over a socket (RunSocket) — so both modes share one
// schedule.
type backend interface {
	// do performs one HTTP exchange under the client's identity.
	// stopAfter > 0 hangs up (cancels the request) after that many
	// response lines — the Abort op's mid-stream disconnect.
	do(c *client, method, path, token string, body []byte, stopAfter int) (opResult, error)
	// sleep pauses the client between ops.
	sleep(c *client, d time.Duration)
}

// opResult is one HTTP exchange's outcome.
type opResult struct {
	status  int
	body    []byte
	elapsed time.Duration
}

// client is one virtual token session.
type client struct {
	index int
	token string
	rng   *simrand.RNG
	// phased marks the client's first sleep as already carrying its
	// deadline-residue offset (see simBackend.sleep).
	phased bool
	// cursor is the crawl resume position: tuples received so far across
	// this client's /crawl streams, sent as wire.CrawlRequest.Skip.
	cursor int
	// aborted marks a crawl hang-up whose follow-up counts as a resume.
	aborted bool
	// badN makes each BadToken op's unseen token unique.
	badN int
}

// driver walks every client through the op schedule and accumulates the
// Report.
type driver struct {
	cfg     Config
	schema  *dataspace.Schema
	be      backend
	clients []*client

	mu  sync.Mutex
	rep Report
}

func newDriver(cfg Config, schema *dataspace.Schema, be backend) *driver {
	d := &driver{cfg: cfg, schema: schema, be: be}
	d.clients = make([]*client, cfg.Sessions)
	for i := range d.clients {
		d.clients[i] = &client{
			index: i,
			token: fmt.Sprintf("load-%04d", i),
			// Offsetting the seed per client keeps the streams
			// independent; +1 keeps client 0 off the raw config seed.
			rng: simrand.New(cfg.Seed + uint64(i) + 1),
		}
	}
	return d
}

// warmup issues one universe query under the client's token, so the
// session table holds every legitimate token before concurrent ops begin —
// which is what makes the BadToken op's table-full sheds deterministic.
func (d *driver) warmup(c *client) {
	body, _ := json.Marshal(wire.QueryMsg{Preds: d.wildPreds()})
	d.be.do(c, "POST", "/query", c.token, body, 0)
}

// run performs the client's whole schedule: think, op, repeat.
func (d *driver) run(c *client) {
	half := d.cfg.Think / 2
	if half < 1 {
		half = 1
	}
	for i := 0; i < d.cfg.Ops; i++ {
		d.be.sleep(c, half+time.Duration(c.rng.Int64n(int64(half))))
		d.op(c)
	}
}

// op draws one op from the mix and performs it.
func (d *driver) op(c *client) {
	m := d.cfg.Mix
	w := c.rng.Intn(m.total())
	switch {
	case w < m.Query:
		d.count(func(r *Report) { r.OpQuery++ })
		d.opQuery(c)
	case w < m.Query+m.Batch:
		d.count(func(r *Report) { r.OpBatch++ })
		d.opBatch(c)
	case w < m.Query+m.Batch+m.Crawl:
		d.count(func(r *Report) { r.OpCrawl++ })
		d.opCrawl(c)
	case w < m.Query+m.Batch+m.Crawl+m.Abort:
		d.count(func(r *Report) { r.OpAbort++ })
		d.opAbort(c)
	default:
		d.count(func(r *Report) { r.OpBadToken++ })
		d.opBadToken(c)
	}
}

func (d *driver) opQuery(c *client) {
	body, _ := json.Marshal(wire.QueryMsg{Preds: d.randPreds(c)})
	res, err := d.be.do(c, "POST", "/query", c.token, body, 0)
	d.note(res, err)
}

func (d *driver) opBatch(c *client) {
	msg := wire.BatchRequest{Queries: make([]wire.QueryMsg, d.cfg.BatchWidth)}
	for i := range msg.Queries {
		msg.Queries[i] = wire.QueryMsg{Preds: d.randPreds(c)}
	}
	body, _ := json.Marshal(msg)
	res, err := d.be.do(c, "POST", "/batch", c.token, body, 0)
	ok := d.note(res, err)
	if !ok {
		return
	}
	var out wire.BatchResponse
	if json.Unmarshal(res.body, &out) == nil && out.QuotaExceeded {
		d.count(func(r *Report) { r.Quota429++ })
	}
}

func (d *driver) opCrawl(c *client) {
	resumed := c.aborted
	c.aborted = false
	res, err := d.crawl(c, 0)
	if !d.note(res, err) {
		return
	}
	if resumed {
		d.count(func(r *Report) { r.Resumed++ })
	}
}

// opAbort starts a crawl, hangs up after a few NDJSON lines, then
// reconnects with the resume cursor and lets the crawl finish — the flaky
// client's full round trip. Only the resumed stream's latency is sampled;
// the hang-up is the failure being simulated, not an answered op.
func (d *driver) opAbort(c *client) {
	stop := 1 + c.rng.Intn(4)
	d.crawl(c, stop)
	d.count(func(r *Report) { r.Aborted++ })
	res, err := d.crawl(c, 0)
	if d.note(res, err) {
		d.count(func(r *Report) { r.Resumed++ })
	}
	c.aborted = false
}

// opBadToken queries under a token the server has never seen. With the
// session table full (warmup filled it) a shedding server answers 503
// rather than evicting an established session, so this op lands in
// Shed503 via note.
func (d *driver) opBadToken(c *client) {
	c.badN++
	token := fmt.Sprintf("zz-%04d-%d", c.index, c.badN)
	body, _ := json.Marshal(wire.QueryMsg{Preds: d.randPreds(c)})
	res, err := d.be.do(c, "POST", "/query", token, body, 0)
	d.note(res, err)
}

// crawl posts one /crawl stream from the client's cursor and advances the
// cursor by the tuples received — complete stream or hang-up alike.
func (d *driver) crawl(c *client, stopAfter int) (opResult, error) {
	msg := wire.CrawlRequest{Algorithm: d.cfg.Algorithm, Skip: c.cursor}
	body, _ := json.Marshal(msg)
	res, err := d.be.do(c, "POST", "/crawl", c.token, body, stopAfter)
	if err != nil || res.status != 200 {
		return res, err
	}
	tuples := 0
	for _, ev := range parseEvents(res.body) {
		if ev.Done {
			if ev.QuotaExceeded {
				d.count(func(r *Report) { r.Quota429++ })
			}
			continue
		}
		if ev.Tuple != nil {
			tuples++
		}
	}
	c.cursor += tuples
	if stopAfter > 0 {
		c.aborted = true
	}
	d.count(func(r *Report) { r.Tuples += tuples })
	return res, err
}

// note books one exchange's outcome and reports whether it succeeded.
func (d *driver) note(res opResult, err error) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rep.Ops++
	switch {
	case err != nil:
		d.rep.Errors++
		return false
	case res.status == 429:
		d.rep.Quota429++
		return false
	case res.status == 503:
		d.rep.Shed503++
		return false
	case res.status >= 300:
		d.rep.Errors++
		return false
	}
	d.rep.Latencies = append(d.rep.Latencies, res.elapsed)
	return true
}

func (d *driver) count(f func(*Report)) {
	d.mu.Lock()
	f(&d.rep)
	d.mu.Unlock()
}

// report finalizes the Report. elapsed and paid come from the backend
// (virtual clock + in-process handler, or real clock + GET /stats).
func (d *driver) report(elapsed time.Duration, paid int) *Report {
	d.rep.Name = fmt.Sprintf("loadgen/%s/s%dx%d", d.cfg.Dataset, d.cfg.Sessions, d.cfg.Ops)
	d.rep.Elapsed = elapsed
	d.rep.PaidQueries = paid
	return &d.rep
}

// wildPreds is the universe query's predicate list.
func (d *driver) wildPreds() []wire.Pred {
	preds := make([]wire.Pred, d.schema.Dims())
	for i := range preds {
		if d.schema.Attr(i).Kind == dataspace.Categorical {
			preds[i] = wire.Pred{Wild: true}
		}
	}
	return preds
}

// randPreds builds a random form query: every attribute wild except one,
// constrained to a random point (categorical) or range (numeric).
func (d *driver) randPreds(c *client) []wire.Pred {
	preds := d.wildPreds()
	i := c.rng.Intn(d.schema.Dims())
	attr := d.schema.Attr(i)
	if attr.Kind == dataspace.Categorical {
		v := 1 + c.rng.Int64n(int64(attr.DomainSize))
		preds[i] = wire.Pred{Value: &v}
		return preds
	}
	min, max := attr.Min, attr.Max
	if min == 0 && max == 0 {
		min, max = 0, 1<<20
	}
	a := min + c.rng.Int64n(max-min+1)
	b := min + c.rng.Int64n(max-min+1)
	if a > b {
		a, b = b, a
	}
	preds[i] = wire.Pred{Lo: &a, Hi: &b}
	return preds
}

// parseEvents splits an NDJSON /crawl body into its events, ignoring any
// trailing partial line a hang-up may have cut.
func parseEvents(body []byte) []wire.CrawlEvent {
	var events []wire.CrawlEvent
	for len(body) > 0 {
		nl := -1
		for j, ch := range body {
			if ch == '\n' {
				nl = j
				break
			}
		}
		if nl < 0 {
			break
		}
		var ev wire.CrawlEvent
		if json.Unmarshal(body[:nl], &ev) == nil {
			events = append(events, ev)
		}
		body = body[nl+1:]
	}
	return events
}
