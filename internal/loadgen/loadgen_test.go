package loadgen

import (
	"bytes"
	"testing"
	"time"
)

// testConfig is a run small enough for CI yet busy enough to exercise
// every outcome: a tight quota forces 429s, a tight in-flight bound plus
// full-table bad tokens force 503s, and the mix hits every endpoint.
func testConfig() Config {
	return Config{
		Sessions:    24,
		Ops:         6,
		Seed:        7,
		Dataset:     "adult",
		N:           600,
		K:           64,
		BatchWidth:  4,
		Latency:     2 * time.Millisecond,
		Think:       8 * time.Millisecond,
		Quota:       12,
		MaxInFlight: 8,
	}
}

// TestSimDeterministicArtifact is the loadgen acceptance claim: the same
// seed produces the same run, down to the artifact's bytes — sheds,
// rejections, percentiles and virtual elapsed time included.
func TestSimDeterministicArtifact(t *testing.T) {
	r1, err := RunSim(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	a1, err := r1.Artifact()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(a1); err != nil {
		t.Fatalf("artifact fails its own schema check: %v", err)
	}
	r2, err := RunSim(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r2.Artifact()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a1, a2) {
		t.Fatalf("same seed, different artifacts:\n--- run 1\n%s\n--- run 2\n%s", a1, a2)
	}
}

// TestSimMixedOpCoverage proves the schedule reaches every endpoint and
// every outcome class the QoS layer distinguishes.
func TestSimMixedOpCoverage(t *testing.T) {
	cfg := testConfig()
	rep, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Sessions * cfg.Ops; rep.Ops != want {
		t.Errorf("Ops = %d, want %d", rep.Ops, want)
	}
	if rep.OpQuery == 0 || rep.OpBatch == 0 || rep.OpCrawl == 0 || rep.OpAbort == 0 || rep.OpBadToken == 0 {
		t.Errorf("mix missed an endpoint: query=%d batch=%d crawl=%d abort=%d badtoken=%d",
			rep.OpQuery, rep.OpBatch, rep.OpCrawl, rep.OpAbort, rep.OpBadToken)
	}
	if rep.Errors != 0 {
		t.Errorf("sim run reported %d transport errors", rep.Errors)
	}
	if rep.Quota429 == 0 {
		t.Error("tight quota produced no 429s")
	}
	if rep.Shed503 == 0 {
		t.Error("tight in-flight bound and full table produced no 503s")
	}
	if rep.Aborted == 0 || rep.Resumed == 0 {
		t.Errorf("abort/resume path unexercised: aborted=%d resumed=%d", rep.Aborted, rep.Resumed)
	}
	if rep.Tuples == 0 {
		t.Error("no crawl tuples received")
	}
	if rep.PaidQueries == 0 {
		t.Error("no queries were paid for")
	}
	if len(rep.Latencies) == 0 {
		t.Error("no latency samples recorded")
	}
	if rep.Elapsed <= 0 {
		t.Errorf("virtual elapsed = %v, want > 0", rep.Elapsed)
	}
}

// TestSocketSelfServe smoke-tests the real-socket backend end to end on a
// loopback listener: tiny run, real sleeps.
func TestSocketSelfServe(t *testing.T) {
	cfg := Config{
		Sessions: 4,
		Ops:      3,
		Seed:     3,
		Dataset:  "adult",
		N:        200,
		Quota:    40,
		Think:    time.Millisecond,
	}
	rep, err := RunSocket(cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("socket run reported %d errors", rep.Errors)
	}
	if want := cfg.Sessions * cfg.Ops; rep.Ops != want {
		t.Errorf("Ops = %d, want %d", rep.Ops, want)
	}
	if rep.PaidQueries == 0 {
		t.Error("no queries were paid for")
	}
	art, err := rep.Artifact()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(art); err != nil {
		t.Errorf("socket artifact invalid: %v", err)
	}
}

// TestValidateRejectsBadArtifacts pins the -check gate's failure modes.
func TestValidateRejectsBadArtifacts(t *testing.T) {
	cases := map[string]string{
		"not json":        `{"benchmarks": [`,
		"empty":           `{"benchmarks": []}`,
		"missing metrics": `{"benchmarks": [{"name": "x", "iterations": 1, "metrics": {"ops": 1}}]}`,
		"nameless":        `{"benchmarks": [{"name": "", "iterations": 1, "metrics": {}}]}`,
	}
	for name, doc := range cases {
		if err := Validate([]byte(doc)); err == nil {
			t.Errorf("%s: Validate accepted %q", name, doc)
		}
	}
	rep := &Report{Name: "ok", Ops: 1, Latencies: []time.Duration{time.Millisecond}, Elapsed: time.Second}
	good, err := rep.Artifact()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(good); err != nil {
		t.Errorf("Validate rejected a healthy artifact: %v", err)
	}
}
