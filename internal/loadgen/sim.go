package loadgen

import (
	"bytes"
	"context"
	"net/http"
	"sync"
	"time"

	"hidb/internal/datagen"
	"hidb/internal/hiddendb"
	"hidb/internal/httpserver"
	"hidb/internal/session"
	"hidb/internal/wire"
)

// RunSim performs the whole load run in-process under a virtual clock:
// the handler is built over the generated dataset with per-token sessions
// and shedding, every round trip costs Config.Latency of virtual time
// (hiddendb.SimLatency), and every think pause is a virtual sleep. The
// run finishes in milliseconds of real time regardless of the simulated
// latency, and its Report — sheds, quota rejections, latency percentiles,
// the virtual elapsed time — is bit-reproducible from Config.Seed.
//
// # The deadline-residue scheme
//
// Determinism needs more than seeded RNGs: two virtual clients waking at
// the same virtual instant run concurrently for real, and whichever
// reaches the in-flight gate first wins the last slot — a data race in
// the shed counts. RunSim makes ties impossible instead of racing them:
// with S sessions, every sleep duration is rounded up to a multiple of
// S nanoseconds (the round-trip latency too), and client i's first sleep
// alone is lengthened by i extra nanoseconds. Every later deadline of
// client i therefore stays ≡ i (mod S) — distinct residues, so no two
// clients ever share a deadline, at most one goroutine wakes per virtual
// instant, and the whole run serializes into one deterministic order
// while the *virtual intervals* still overlap exactly as real traffic
// would (a client mid-round-trip holds its in-flight slot while others
// wake, probe the gate, and shed). The rounding perturbs durations by
// under S nanoseconds — noise against millisecond-scale latencies.
func RunSim(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	ds, err := datagen.ByName(cfg.Dataset, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := cfg.K
	if m := ds.Tuples.MaxMultiplicity(); m > k {
		k = m
	}
	local, err := hiddendb.NewLocal(ds.Schema, ds.Tuples, k, cfg.Seed)
	if err != nil {
		return nil, err
	}
	clock := hiddendb.NewSimClock()
	stride := time.Duration(cfg.Sessions)
	srv := hiddendb.NewSimLatency(local, quantUp(cfg.Latency, stride), clock)
	h := httpserver.New(srv,
		httpserver.WithSessions(session.Config{
			Quota:       cfg.Quota,
			MaxSessions: cfg.Sessions,
		}),
		httpserver.WithShedding(cfg.MaxInFlight))

	be := &simBackend{h: h, clock: clock, stride: stride}
	d := newDriver(cfg, ds.Schema, be)

	// Warmup runs sequentially on this goroutine — outside the hold
	// protocol its virtual sleeps resolve instantly — and registers every
	// legitimate token, filling the session table before concurrent ops
	// begin so the BadToken sheds are deterministic.
	for _, c := range d.clients {
		d.warmup(c)
	}

	// Hold while spawning so the clock cannot advance before every
	// client's first sleep is registered; each client's hold is minted
	// here, before its goroutine exists.
	clock.Hold()
	var wg sync.WaitGroup
	for _, c := range d.clients {
		wg.Add(1)
		clock.Hold()
		go func(c *client) {
			defer wg.Done()
			defer clock.Release()
			d.run(c)
		}(c)
	}
	clock.Release()
	wg.Wait()

	return d.report(clock.Now(), h.Queries()), nil
}

// quantUp rounds d up to a positive multiple of stride.
func quantUp(d, stride time.Duration) time.Duration {
	if stride <= 1 {
		return d
	}
	if r := d % stride; r != 0 {
		d += stride - r
	}
	if d <= 0 {
		d = stride
	}
	return d
}

// simBackend serves ops by calling the handler in-process, measuring
// elapsed time on the virtual clock.
type simBackend struct {
	h      *httpserver.Handler
	clock  *hiddendb.SimClock
	stride time.Duration
}

func (b *simBackend) sleep(c *client, d time.Duration) {
	d = quantUp(d, b.stride)
	if !c.phased {
		// The client's one-time residue offset; see RunSim's doc.
		d += time.Duration(c.index)
		c.phased = true
	}
	b.clock.Sleep(context.Background(), d)
}

func (b *simBackend) do(c *client, method, path, token string, body []byte, stopAfter int) (opResult, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, "http://loadgen.sim"+path, bytes.NewReader(body))
	if err != nil {
		return opResult{}, err
	}
	if token != "" {
		wire.SetBearer(req.Header, token)
	}
	w := &memWriter{cancel: cancel, stopAfter: stopAfter}
	start := b.clock.Now()
	b.h.ServeHTTP(w, req)
	return opResult{
		status:  w.statusCode(),
		body:    w.buf.Bytes(),
		elapsed: b.clock.Now() - start,
	}, nil
}

// memWriter is the in-process ResponseWriter: it buffers the response and,
// with stopAfter set, cancels the request after that many complete lines —
// the virtual client hanging up mid-stream.
type memWriter struct {
	header    http.Header
	status    int
	buf       bytes.Buffer
	lines     int
	stopAfter int
	cancel    context.CancelFunc
	cancelled bool
}

func (w *memWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}

func (w *memWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
}

func (w *memWriter) Write(p []byte) (int, error) {
	w.WriteHeader(http.StatusOK)
	n, err := w.buf.Write(p)
	if w.stopAfter > 0 && !w.cancelled {
		for _, ch := range p {
			if ch == '\n' {
				w.lines++
			}
		}
		if w.lines >= w.stopAfter {
			w.cancelled = true
			w.cancel()
		}
	}
	return n, err
}

// Flush makes the handler's streaming path exercise its flush branch.
func (w *memWriter) Flush() {}

func (w *memWriter) statusCode() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}
