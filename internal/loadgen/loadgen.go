// Package loadgen drives synthetic token-session traffic against the HTTP
// hidden-database server — the load half of the observability layer. It
// spins up Config.Sessions virtual clients, each owning an API token and a
// deterministic RNG, and has every client walk a mixed op schedule: form
// queries (POST /query), batched queries (POST /batch), server-side crawls
// (POST /crawl) including deliberate mid-stream aborts with cursor-resumed
// reconnects, and requests under tokens the server has never seen (which a
// full session table must turn away). Between ops a client thinks for a
// randomized interval, so the request streams interleave like real
// traffic.
//
// The driver has two back ends with one schedule:
//
//   - RunSim serves the traffic in-process under a hiddendb.SimClock with
//     SimLatency supplying the round-trip delay, so thousands of sessions
//     run in milliseconds of real time and — because every virtual
//     deadline is unique by construction (see the residue scheme in
//     sim.go) — the whole run, shed 503s and quota 429s included, is
//     bit-reproducible from the seed.
//   - RunSocket sends the same schedule over a real TCP socket with real
//     sleeps, for throughput measurements of an actual server process.
//
// Either way the outcome is a Report whose Artifact serializes in the
// benchjson snapshot shape ({"benchmarks":[{name, iterations, metrics}]}),
// so the same tooling that diffs the paper's pinned query counts can diff
// load runs: p50/p95/p99/max latency, qps, shed and quota-rejection
// counts, and the paid query total. QoS knobs shape timing only — the
// paid_queries metric is as pinned as any other *_queries metric.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"
)

// Mix weighs the op schedule. Each virtual client draws its next op from
// these weights with its own RNG; a zero weight disables the op.
type Mix struct {
	// Query is one random form query via POST /query.
	Query int
	// Batch is Config.BatchWidth random queries via one POST /batch.
	Batch int
	// Crawl runs the server-side crawl to completion via POST /crawl,
	// resuming from the client's cursor when an earlier crawl aborted.
	Crawl int
	// Abort starts a /crawl, hangs up after a few NDJSON lines, then
	// reconnects with the resume cursor — the retry path of a flaky
	// client.
	Abort int
	// BadToken queries under a token the server has never seen; with the
	// session table full, a shedding server must refuse it.
	BadToken int
}

// DefaultMix exercises every endpoint with queries dominating, the shape
// of real crawler traffic.
func DefaultMix() Mix {
	return Mix{Query: 6, Batch: 2, Crawl: 1, Abort: 1, BadToken: 1}
}

func (m Mix) total() int {
	return m.Query + m.Batch + m.Crawl + m.Abort + m.BadToken
}

// Config parameterizes one load run. The zero value is completed by
// withDefaults; only Sessions and Ops are usually worth setting.
type Config struct {
	// Sessions is the number of virtual token sessions. Default 64.
	Sessions int
	// Ops is the number of schedule ops each session performs. Default 8.
	Ops int
	// Seed makes the whole schedule (and, under RunSim, the whole run)
	// reproducible. Default 1.
	Seed uint64
	// Dataset names the served workload, resolved by datagen.ByName
	// ("yahoo", "nsf", "adult", "adult-numeric"). Default "adult".
	Dataset string
	// N overrides the dataset cardinality; zero means 2000 (not the
	// paper's full size — load runs want a small hidden database).
	N int
	// K is the server's return limit; raised to the dataset's maximum
	// multiplicity so crawls stay solvable. Default 64.
	K int
	// BatchWidth is the /batch op's query count. Default 8.
	BatchWidth int
	// Latency is the per-round-trip delay RunSim charges on the virtual
	// clock (RunSocket measures real latency instead). Default 2ms.
	Latency time.Duration
	// Think bounds each client's randomized pause between ops, drawn
	// uniformly from [Think/2, Think). Default 10ms.
	Think time.Duration
	// Quota is each session's query budget (session.Config.Quota);
	// zero means unlimited.
	Quota int
	// MaxInFlight bounds concurrently served query-carrying requests
	// (httpserver.WithShedding); zero keeps requests unbounded while
	// still shedding unseen tokens off a full table. RunSocket against
	// an external URL ignores it (the remote server's own limits rule).
	MaxInFlight int
	// Algorithm is the /crawl algorithm name; empty lets the server
	// pick the paper's recommendation for the schema.
	Algorithm string
	// Mix weighs the op schedule; a zero Mix means DefaultMix.
	Mix Mix
}

func (c Config) withDefaults() Config {
	if c.Sessions <= 0 {
		c.Sessions = 64
	}
	if c.Ops <= 0 {
		c.Ops = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Dataset == "" {
		c.Dataset = "adult"
	}
	if c.N <= 0 {
		c.N = 2000
	}
	if c.K <= 0 {
		c.K = 64
	}
	if c.BatchWidth <= 0 {
		c.BatchWidth = 8
	}
	if c.Latency <= 0 {
		c.Latency = 2 * time.Millisecond
	}
	if c.Think <= 0 {
		c.Think = 10 * time.Millisecond
	}
	if c.Mix.total() == 0 {
		c.Mix = DefaultMix()
	}
	return c
}

// Report is the outcome of one load run.
type Report struct {
	// Name identifies the run in the artifact:
	// loadgen/<dataset>/s<sessions>x<ops>.
	Name string
	// Ops counts schedule ops performed (sessions × per-session ops),
	// split by kind in the OpXxx fields below.
	Ops int
	// OpQuery..OpBadToken split Ops by schedule kind, so a run can prove
	// its mix exercised every endpoint. Not part of the artifact metrics.
	OpQuery, OpBatch, OpCrawl, OpAbort, OpBadToken int
	// Shed503 counts 503 responses (capacity, drain or table-full sheds).
	Shed503 int
	// Quota429 counts quota rejections: 429 responses plus /crawl streams
	// whose terminal line reported the session budget spent.
	Quota429 int
	// Aborted and Resumed count the Abort op's deliberate hang-ups and
	// the cursor-resumed reconnects that followed (Abort ops and Crawl
	// ops after an abort both resume).
	Aborted int
	Resumed int
	// Errors counts transport failures and unexpected HTTP statuses —
	// zero in a healthy run, and always zero under RunSim.
	Errors int
	// Tuples counts crawl tuples received over all /crawl streams.
	Tuples int
	// PaidQueries is the server's paid-query total over the whole run —
	// the paper's cost metric, read from the handler, warmup included.
	PaidQueries int
	// Elapsed is the run's wall clock: virtual under RunSim (hence
	// deterministic), real under RunSocket.
	Elapsed time.Duration
	// Latencies holds one sample per op that got a 2xx answer (sheds and
	// 429s are counted, not timed).
	Latencies []time.Duration
}

// metrics flattens the report into the artifact's metric map.
func (r *Report) metrics() map[string]float64 {
	sorted := append([]time.Duration(nil), r.Latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	elapsed := r.Elapsed
	qps := 0.0
	if elapsed > 0 {
		qps = float64(r.Ops) / elapsed.Seconds()
	}
	return map[string]float64{
		"p50_ms":       ms(percentile(sorted, 50)),
		"p95_ms":       ms(percentile(sorted, 95)),
		"p99_ms":       ms(percentile(sorted, 99)),
		"max_ms":       ms(percentile(sorted, 100)),
		"ops":          float64(r.Ops),
		"qps":          qps,
		"shed_503":     float64(r.Shed503),
		"quota_429":    float64(r.Quota429),
		"aborted":      float64(r.Aborted),
		"resumed":      float64(r.Resumed),
		"errors":       float64(r.Errors),
		"tuples":       float64(r.Tuples),
		"paid_queries": float64(r.PaidQueries),
		"elapsed_ms":   ms(elapsed),
	}
}

// percentile reads the p-th percentile (nearest-rank) from an ascending
// sample; an empty sample reads zero.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// artifactDoc mirrors scripts/benchjson's snapshot document.
type artifactDoc struct {
	Benchmarks []artifactBench `json:"benchmarks"`
}

type artifactBench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Artifact serializes the report in the benchjson snapshot shape. The
// encoding is canonical — json.Marshal orders map keys — so two runs with
// identical outcomes produce identical bytes, which is the determinism
// contract RunSim's tests (and `make loadgen-smoke`) pin with a plain file
// compare.
func (r *Report) Artifact() ([]byte, error) {
	doc := artifactDoc{Benchmarks: []artifactBench{{
		Name:       r.Name,
		Iterations: int64(r.Ops),
		Metrics:    r.metrics(),
	}}}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Validate schema-checks an artifact: the benchjson document shape, one
// benchmark per run, every required metric present, finite and
// non-negative, and the latency percentiles monotone. `hidb-loadgen
// -check` runs it in CI against the smoke run's output.
func Validate(data []byte) error {
	var doc artifactDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("loadgen: artifact is not a benchjson document: %w", err)
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("loadgen: artifact has no benchmarks")
	}
	required := []string{
		"p50_ms", "p95_ms", "p99_ms", "max_ms", "ops", "qps",
		"shed_503", "quota_429", "aborted", "resumed", "errors",
		"tuples", "paid_queries", "elapsed_ms",
	}
	for _, b := range doc.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("loadgen: artifact benchmark with empty name")
		}
		for _, key := range required {
			v, ok := b.Metrics[key]
			if !ok {
				return fmt.Errorf("loadgen: %s: missing metric %q", b.Name, key)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("loadgen: %s: metric %q = %v out of range", b.Name, key, v)
			}
		}
		p50, p95, p99, max := b.Metrics["p50_ms"], b.Metrics["p95_ms"], b.Metrics["p99_ms"], b.Metrics["max_ms"]
		if p50 > p95 || p95 > p99 || p99 > max {
			return fmt.Errorf("loadgen: %s: latency percentiles not monotone: p50=%v p95=%v p99=%v max=%v",
				b.Name, p50, p95, p99, max)
		}
	}
	return nil
}
