package index

import (
	"slices"
	"testing"

	"hidb/internal/datagen"
	"hidb/internal/simrand"
)

// refIntersect computes the reference intersection of rank lists.
func refIntersect(lists ...[]int32) []int32 {
	count := make(map[int32]int)
	for _, l := range lists {
		for _, r := range l {
			count[r]++
		}
	}
	var out []int32
	for r, c := range count {
		if c == len(lists) {
			out = append(out, r)
		}
	}
	slices.Sort(out)
	return out
}

// randomList draws a sorted duplicate-free rank list over [0, n).
func randomList(rng *simrand.RNG, n int, density float64) []int32 {
	var out []int32
	for r := 0; r < n; r++ {
		if rng.Bool(density) {
			out = append(out, int32(r))
		}
	}
	return out
}

// runList builds a list of consecutive runs: runLen set ranks, gap unset,
// repeating over [0, n).
func runList(n, runLen, gap int) []int32 {
	var out []int32
	for r := 0; r < n; {
		for j := 0; j < runLen && r < n; j++ {
			out = append(out, int32(r))
			r++
		}
		r += gap
	}
	return out
}

func TestContainerKindSelection(t *testing.T) {
	// One long run → run container.
	runs := buildRankBitmap(runList(5000, 5000, 0))
	if k := runs.cs[0].kind; k != containerRun {
		t.Fatalf("a single 5000-rank run built kind %d, want run", k)
	}
	// A sparse scatter → array container.
	rng := simrand.New(1)
	sparse := buildRankBitmap(randomList(rng, 60000, 0.01))
	if k := sparse.cs[0].kind; k != containerArray {
		t.Fatalf("a ~600-rank scatter built kind %d, want array", k)
	}
	// A dense scatter → bitmap container (too many ranks for an array, too
	// fragmented for runs).
	dense := buildRankBitmap(randomList(rng, 60000, 0.5))
	if k := dense.cs[0].kind; k != containerBitmap {
		t.Fatalf("a ~30000-rank scatter built kind %d, want bitmap", k)
	}
}

func TestRankBitmapContains(t *testing.T) {
	rng := simrand.New(3)
	// Span several 65536-rank blocks with mixed densities so all three
	// container kinds appear.
	list := slices.Concat(
		randomList(rng, 60000, 0.003),
		offset(runList(30000, 800, 50), 1<<16),
		offset(randomList(rng, 60000, 0.6), 1<<17),
	)
	bm := buildRankBitmap(list)
	if bm.card != len(list) {
		t.Fatalf("card = %d, want %d", bm.card, len(list))
	}
	member := make(map[int32]bool, len(list))
	for _, r := range list {
		member[r] = true
	}
	for probe := int32(0); probe < 3<<16; probe += 97 {
		key := uint16(probe >> 16)
		ki := -1
		for i, k := range bm.keys {
			if k == key {
				ki = i
			}
		}
		got := false
		if ki >= 0 {
			got = bm.cs[ki].contains(uint16(probe))
		}
		if got != member[probe] {
			t.Fatalf("contains(%d) = %v, want %v", probe, got, member[probe])
		}
	}
}

func offset(list []int32, by int32) []int32 {
	out := make([]int32, len(list))
	for i, r := range list {
		out[i] = r + by
	}
	return out
}

func TestIntersectAgainstReference(t *testing.T) {
	rng := simrand.New(5)
	n := 3 << 16 // three blocks
	cases := [][][]int32{
		{randomList(rng, n, 0.03), randomList(rng, n, 0.04)},
		{randomList(rng, n, 0.3), randomList(rng, n, 0.25), randomList(rng, n, 0.2)},
		{runList(n, 1000, 300), randomList(rng, n, 0.1)},
		{runList(n, 64, 64), runList(n, 96, 32), randomList(rng, n, 0.5)},
		// Disjoint block sets: empty intersection via key skipping.
		{runList(1<<16, 100, 100), offset(runList(1<<16, 100, 100), 1<<17)},
		// A sparse driver against dense others (the probe strategy).
		{randomList(rng, n, 0.001), randomList(rng, n, 0.6), randomList(rng, n, 0.7)},
	}
	words := make([]uint64, bitmapWords)
	for ci, lists := range cases {
		want := refIntersect(lists...)
		bms := make([]*rankBitmap, len(lists))
		for i, l := range lists {
			bms[i] = buildRankBitmap(l)
		}
		got := intersectInto(bms, words, nil, -1)
		if !slices.Equal(got, want) {
			t.Fatalf("case %d: intersectInto returned %d ranks, want %d (first diff around %v)",
				ci, len(got), len(want), firstDiff(got, want))
		}
		if c := intersectCount(bms, words); c != len(want) {
			t.Fatalf("case %d: intersectCount = %d, want %d", ci, c, len(want))
		}
		// max truncation returns exactly the prefix.
		if len(want) > 3 {
			trunc := intersectInto(bms, words, nil, 3)
			if !slices.Equal(trunc, want[:3]) {
				t.Fatalf("case %d: truncated intersection = %v, want %v", ci, trunc, want[:3])
			}
		}
	}
}

func firstDiff(a, b []int32) [2]int32 {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return [2]int32{a[i], b[i]}
		}
	}
	return [2]int32{-1, -1}
}

func TestAndWordsAllKinds(t *testing.T) {
	rng := simrand.New(7)
	lists := map[string][]int32{
		"array":  randomList(rng, 1<<16, 0.01),
		"bitmap": randomList(rng, 1<<16, 0.5),
		"run":    runList(1<<16, 500, 200),
	}
	words := make([]uint64, bitmapWords)
	ref := make([]uint64, bitmapWords)
	for nameA, la := range lists {
		for nameB, lb := range lists {
			ca := buildContainer(la)
			cb := buildContainer(lb)
			ca.writeWords(words)
			cb.andWords(words)
			// Reference: materialize both and AND.
			tmp := make([]uint64, bitmapWords)
			ca.writeWords(ref)
			cb.writeWords(tmp)
			for i := range ref {
				ref[i] &= tmp[i]
			}
			if !slices.Equal(words, ref) {
				t.Fatalf("andWords(%s over %s) diverges from materialized AND", nameB, nameA)
			}
		}
	}
}

func TestSetClearRange(t *testing.T) {
	words := make([]uint64, bitmapWords)
	setRange(words, 0, 1<<16-1)
	for i, w := range words {
		if w != ^uint64(0) {
			t.Fatalf("full setRange left word %d = %x", i, w)
		}
	}
	clearRange(words, 64, 191) // exactly words 1 and 2
	if words[0] != ^uint64(0) || words[1] != 0 || words[2] != 0 || words[3] != ^uint64(0) {
		t.Fatal("aligned clearRange wrong")
	}
	clear(words)
	setRange(words, 3, 3) // single bit, single word
	if words[0] != 1<<3 {
		t.Fatalf("single-bit setRange = %x", words[0])
	}
	setRange(words, 60, 70) // straddles a word boundary
	if words[0] != 1<<3|uint64(0xF)<<60 || words[1] != (1<<7)-1 {
		t.Fatalf("straddling setRange = %x %x", words[0], words[1])
	}
	clearRange(words, 70, 60) // inverted: no-op
	if words[1] != (1<<7)-1 {
		t.Fatal("inverted clearRange should be a no-op")
	}
}

func TestBuildRankBitmapMatchesPostingList(t *testing.T) {
	// End-to-end: a store's bitmap index must agree with its posting lists.
	s := tierStore(t, datagen.PatternRandom, 61)
	words := make([]uint64, bitmapWords)
	for i := 0; i < 3; i++ {
		for v, list := range s.post[i] {
			bm := s.bitmaps[i].get(v)
			if bm == nil {
				t.Fatalf("attr %d value %d: posting list exists but bitmap missing", i, v)
			}
			got := intersectInto([]*rankBitmap{bm}, words, nil, -1)
			if !slices.Equal(got, list) {
				t.Fatalf("attr %d value %d: bitmap enumerates %d ranks, posting list has %d",
					i, v, len(got), len(list))
			}
		}
		if s.bitmaps[i].get(-99) != nil {
			t.Fatalf("attr %d: absent value returned a bitmap", i)
		}
	}
	var nilIdx *bitmapIndex
	if nilIdx.get(1) != nil {
		t.Fatal("nil bitmapIndex.get should return nil")
	}
}
