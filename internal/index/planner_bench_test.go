package index

import (
	"sync"
	"testing"

	"hidb/internal/datagen"
	"hidb/internal/dataspace"
)

// patho1M lazily builds the shared million-tuple pathological store: every
// match of the needle conjunction sits at the bottom of the rank space, so
// no access path can early-exit near the top — the workload the bitmap
// path exists for. Built once per bench binary (~1M tuples × 6 attributes
// plus all indexes).
var patho1M struct {
	once sync.Once
	s    *Store
}

func patho1MStore(b *testing.B) *Store {
	b.Helper()
	patho1M.once.Do(func() {
		d := datagen.Tiered(datagen.PatternPathological, datagen.Tier1M, 1)
		s, err := New(d.Schema, d.Tuples)
		if err != nil {
			b.Fatal(err)
		}
		patho1M.s = s
	})
	return patho1M.s
}

// needleQuery is the 3-way intersection C1=C2=C3=needle: each predicate
// alone matches ~31k of the million tuples, the conjunction only the
// bottom ~1k ranks.
func needleQuery(s *Store) dataspace.Query {
	return dataspace.UniverseQuery(s.Schema()).
		WithValue(0, datagen.PathoNeedle).
		WithValue(1, datagen.PathoNeedle).
		WithValue(2, datagen.PathoNeedle)
}

// BenchmarkSelect3WayIntersect1M measures planner v2 on the needle
// conjunction — the cost model routes it to the word-parallel bitmap AND.
// Compare against BenchmarkSelect3WayIntersect1MV1, the v1 plan on the
// identical query (the acceptance-criteria speedup pair).
func BenchmarkSelect3WayIntersect1M(b *testing.B) {
	s := patho1MStore(b)
	q := needleQuery(s)
	s.Select(q, 64) // warm the plan cache and scratch pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Select(q, 64); len(got) != 65 {
			b.Fatalf("needle select returned %d tuples", len(got))
		}
	}
}

// BenchmarkSelect3WayIntersect1MV1 runs the identical needle query through
// the v1 planner: choosePlan picks the tightest posting list (~31k ranks)
// and walks it with per-candidate column probes, blind to the intersection
// being three orders of magnitude smaller.
func BenchmarkSelect3WayIntersect1MV1(b *testing.B) {
	s := patho1MStore(b)
	q := needleQuery(s)
	preds := q.Preds()
	pl := s.choosePlan(preds, s.Size()/4)
	if pl.primary < 0 || !s.isCat[pl.primary] {
		b.Fatal("expected a posting-list plan")
	}
	s.Select(q, 64) // same warmup as the v2 side
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := v1Select(s, preds, pl, 65); len(got) != 65 {
			b.Fatalf("v1 needle select returned %d tuples", len(got))
		}
	}
}

// BenchmarkSelectLowCardEq1M measures a single low-cardinality equality on
// the 1M store. The sampled cost model sends this broad predicate (~3%
// selective) to the early-exiting chunked scan, not the 31k-rank posting
// walk the fixed n/4 margin used to pick.
func BenchmarkSelectLowCardEq1M(b *testing.B) {
	s := patho1MStore(b)
	q := dataspace.UniverseQuery(s.Schema()).WithValue(1, 5)
	s.Select(q, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Select(q, 64); len(got) != 65 {
			b.Fatalf("low-card equality returned %d tuples", len(got))
		}
	}
}

// BenchmarkSelectRangeEq1M measures range ∩ equality on the 1M store: a
// 5k-rank numeric segment filtered by a categorical probe, rank-restored
// with the pooled sort.
func BenchmarkSelectRangeEq1M(b *testing.B) {
	s := patho1MStore(b)
	q := dataspace.UniverseQuery(s.Schema()).
		WithRange(4, 0, 5000).
		WithValue(0, datagen.PathoNeedle+1)
	s.Select(q, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Select(q, 64); len(got) == 0 {
			b.Fatal("range ∩ equality matched nothing")
		}
	}
}

// BenchmarkCount3Way1M measures the popcount fast path: an all-bitmap
// conjunction counted without enumerating a single candidate.
func BenchmarkCount3Way1M(b *testing.B) {
	s := patho1MStore(b)
	q := needleQuery(s)
	want := s.Size() / 1024
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := s.Count(q); c != want {
			b.Fatalf("needle count = %d, want %d", c, want)
		}
	}
}
