//go:build !race

package index

// raceEnabled gates tests whose invariants the race detector breaks by
// design (sync.Pool deliberately drops items under -race, so pooled paths
// allocate nondeterministically).
const raceEnabled = false
