package index

import (
	"testing"

	"hidb/internal/dataspace"
	"hidb/internal/simrand"
)

// benchStore builds a 50k-tuple store shaped like the paper's mixed
// workloads: two categorical attributes (one low-, one mid-cardinality) and
// two numeric ones. Run with -benchmem: the acceptance bar for the engine
// is at most one allocation per Select (the result slice) on every path.
func benchStore(b *testing.B) *Store {
	b.Helper()
	sch := dataspace.MustSchema([]dataspace.Attribute{
		{Name: "C1", Kind: dataspace.Categorical, DomainSize: 8},
		{Name: "C2", Kind: dataspace.Categorical, DomainSize: 50},
		{Name: "N1", Kind: dataspace.Numeric, Min: 0, Max: 100000},
		{Name: "N2", Kind: dataspace.Numeric, Min: -1000, Max: 1000},
	})
	rng := simrand.New(1)
	tuples := make([]dataspace.Tuple, 50000)
	for i := range tuples {
		tuples[i] = dataspace.Tuple{
			rng.IntRange(1, 8),
			rng.IntRange(1, 50),
			rng.IntRange(0, 100000),
			rng.IntRange(-1000, 1000),
		}
	}
	s, err := New(sch, tuples)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchSelect(b *testing.B, q dataspace.Query, limit int) {
	s := benchStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := s.Select(q, limit)
		if len(got) == 0 {
			b.Fatal("benchmark query matched nothing")
		}
	}
}

// BenchmarkSelectScan exercises the priority-ordered columnar scan: the
// universe query overflows immediately, so the scan stops after limit+1.
func BenchmarkSelectScan(b *testing.B) {
	s := benchStore(b)
	q := dataspace.UniverseQuery(s.Schema())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Select(q, 256); len(got) != 257 {
			b.Fatalf("scan returned %d tuples", len(got))
		}
	}
}

// BenchmarkSelectPosting exercises the single posting-list path
// (~1k candidates out of 50k).
func BenchmarkSelectPosting(b *testing.B) {
	s := benchStore(b)
	q := dataspace.UniverseQuery(s.Schema()).WithValue(1, 7)
	benchSelect(b, q, 256)
}

// BenchmarkSelectRange exercises the numeric-range path: pooled scratch
// ranks plus one allocation-free sort (~1k candidates).
func BenchmarkSelectRange(b *testing.B) {
	s := benchStore(b)
	q := dataspace.UniverseQuery(s.Schema()).WithRange(2, 0, 2000)
	benchSelect(b, q, 256)
}

// BenchmarkSelectIntersectPostings exercises posting ∩ posting on an
// overflowing two-predicate query — the acceptance-criteria workload.
func BenchmarkSelectIntersectPostings(b *testing.B) {
	s := benchStore(b)
	q := dataspace.UniverseQuery(s.Schema()).WithValue(0, 3).WithValue(1, 7)
	benchSelect(b, q, 64)
}

// BenchmarkSelectIntersectPostingRange exercises posting ∩ numeric-range
// via the rank→sorted-position lookup, also overflowing at limit 64.
func BenchmarkSelectIntersectPostingRange(b *testing.B) {
	s := benchStore(b)
	q := dataspace.UniverseQuery(s.Schema()).WithValue(1, 7).WithRange(2, 0, 20000)
	benchSelect(b, q, 64)
}

// BenchmarkSelectGallop pins the galloping-merge intersection itself
// (bypassing the planner's cache heuristic, which prefers column probes at
// this store size), so regressions in the large-store path stay visible.
func BenchmarkSelectGallop(b *testing.B) {
	s := benchStore(b)
	q := dataspace.UniverseQuery(s.Schema()).WithValue(0, 3).WithValue(1, 7)
	preds := q.Preds()
	pl := s.choosePlan(preds, s.Size()/4)
	if pl.secondary < 0 || !s.isCat[pl.secondary] {
		b.Fatal("expected a posting ∩ posting plan")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.selectGallop(preds, pl, 65); len(got) != 65 {
			b.Fatalf("gallop returned %d tuples", len(got))
		}
	}
}

// BenchmarkCount covers the index-backed Count fast path on a
// two-predicate query (no ordering, no allocation).
func BenchmarkCount(b *testing.B) {
	s := benchStore(b)
	q := dataspace.UniverseQuery(s.Schema()).WithValue(1, 7).WithRange(2, 0, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := s.Count(q); c == 0 {
			b.Fatal("count returned 0")
		}
	}
}

// BenchmarkCountScanBaseline measures what Count cost before the
// index-backed fast path: a full priority-order scan with Covers.
func BenchmarkCountScanBaseline(b *testing.B) {
	s := benchStore(b)
	q := dataspace.UniverseQuery(s.Schema()).WithValue(1, 7).WithRange(2, 0, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := 0
		for _, t := range s.All() {
			if q.Covers(t) {
				c++
			}
		}
		if c == 0 {
			b.Fatal("count returned 0")
		}
	}
}
